// Deterministic pseudo-random number generation for simulations.
//
// We use xoshiro256** seeded through splitmix64: fast, high quality, and --
// unlike std::mt19937 -- with a representation-stable output sequence across
// standard-library implementations, so recorded experiment results are
// reproducible bit-for-bit anywhere.

#pragma once

#include <cstdint>

#include "common/util.hpp"

namespace pmsb {

/// splitmix64 single step; also used standalone as a cheap avalanche mixer
/// for deriving cell payload words from a cell id.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless avalanche mix of a single value (splitmix64 finalizer).
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling, so
  /// the result is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Geometric number of failures before first success, success prob p in
  /// (0, 1]. Mean (1-p)/p.
  std::uint64_t next_geometric(double p);

  /// Split off an independent generator (for per-port streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace pmsb
