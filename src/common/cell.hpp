// Cells (fixed-size packets) and link flits.
//
// The paper's switches move fixed-size packets ("cells") as sequences of
// w-bit words, one word per link per clock cycle (section 3.2). Routing
// information must be present in the first word (the header), because the
// switch decides the destination -- and may begin cut-through -- as soon as
// the head word arrives.
//
// In-band format of the head word (low bits first):
//     [ dest : dest_bits | tag : remaining bits ]
// `tag` carries the low bits of the cell id, giving the verification
// scoreboard an extra integrity check. Payload words are derived from the
// cell id with an avalanche mixer, so any datapath corruption (wrong stage,
// wrong address, overwritten latch) is detected when the delivered word
// sequence is compared against the expected cell.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/util.hpp"

namespace pmsb {

/// What an on-chip link carries during one clock cycle: one w-bit word plus
/// framing. `sop` marks the head word of a cell. Words of one cell travel in
/// consecutive cycles (synchronous link, no gaps inside a cell).
struct Flit {
  bool valid = false;
  bool sop = false;
  Word data = 0;

  friend bool operator==(const Flit&, const Flit&) = default;
};

/// Geometry of the cell format on a particular switch configuration.
struct CellFormat {
  unsigned word_bits = 16;    ///< w: link and memory-stage width, 1..64.
  unsigned dest_bits = 4;     ///< log2(#outputs), low bits of head word.
  unsigned length_words = 16; ///< L: cell length in words (multiple of 2n).

  /// Bits of the head word left for the id tag.
  unsigned tag_bits() const { return word_bits > dest_bits ? word_bits - dest_bits : 0; }
};

/// Build the full word sequence of a cell.
std::vector<Word> make_cell_words(std::uint64_t cell_id, unsigned dest, const CellFormat& fmt);

/// The k-th word of cell `cell_id` (k in [0, length)); head word for k == 0.
Word cell_word(std::uint64_t cell_id, unsigned dest, unsigned k, const CellFormat& fmt);

/// Extract the destination output port from a head word.
unsigned decode_dest(Word head, const CellFormat& fmt);

/// Extract the id tag from a head word.
std::uint64_t decode_tag(Word head, const CellFormat& fmt);

/// True if `words` is exactly the cell `cell_id` -> `dest` under `fmt`.
bool cell_matches(const std::vector<Word>& words, std::uint64_t cell_id, unsigned dest,
                  const CellFormat& fmt);

}  // namespace pmsb
