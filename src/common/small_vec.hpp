// SmallVec: a tiny vector with inline storage for the common case and a
// heap spill for the rare one. The cycle kernel stores one buffer address
// per cell segment; nearly every configuration uses one segment per cell
// (cell_words == 2n), so carrying those addresses in std::vector meant one
// heap allocation per switched cell on the hot path. SmallVec keeps up to
// `N` elements inline (no allocation) and falls back to a std::vector
// only for configurations with more segments per cell.
//
// Only what the kernel needs is implemented: push_back, indexing,
// iteration, size, front. Elements must be trivially copyable.

#pragma once

#include <cstddef>
#include <initializer_list>
#include <type_traits>
#include <vector>

#include "common/util.hpp"

namespace pmsb {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>, "SmallVec holds POD-like elements only");
  static_assert(N >= 1, "inline capacity must be at least one element");

 public:
  SmallVec() = default;
  SmallVec(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  void push_back(const T& v) {
    if (size_ < N) {
      inline_[size_] = v;
    } else {
      if (size_ == N) {  // First spill: move the inline prefix to the heap.
        heap_.reserve(2 * N);
        heap_.assign(inline_, inline_ + N);
      }
      heap_.push_back(v);
    }
    ++size_;
  }

  void clear() {
    size_ = 0;
    heap_.clear();
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](std::size_t i) const { return data()[i]; }
  T& operator[](std::size_t i) { return data()[i]; }
  const T& front() const {
    PMSB_CHECK(size_ > 0, "front() of empty SmallVec");
    return data()[0];
  }

  T* data() { return size_ <= N ? inline_ : heap_.data(); }
  const T* data() const { return size_ <= N ? inline_ : heap_.data(); }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

 private:
  T inline_[N] = {};
  std::size_t size_ = 0;
  std::vector<T> heap_;
};

/// Segment addresses of one buffered cell. Inline capacity 4 covers every
/// paper configuration (Telegraphos and PRIZMA cells are 1-2 segments).
using SegAddrs = SmallVec<std::uint32_t, 4>;

}  // namespace pmsb
