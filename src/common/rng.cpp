#include "common/rng.hpp"

#include <cmath>

namespace pmsb {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  PMSB_CHECK(bound > 0, "next_below(0)");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t Rng::next_geometric(double p) {
  PMSB_CHECK(p > 0.0 && p <= 1.0, "geometric probability out of range");
  if (p >= 1.0) return 0;
  // Inversion: floor(log(U) / log(1-p)) with U in (0,1].
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::split() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

}  // namespace pmsb
