// Small utilities shared by every pmsb module.
//
// PMSB_CHECK is the library's internal invariant check: it is *always* on
// (the simulator is a verification artifact; a silently-wrong simulator is
// worse than a slow one), prints a useful message and aborts. Use it for
// modelling invariants (e.g. "an SRAM bank is accessed at most once per
// cycle"), not for user-input validation -- user-facing constructors throw
// std::invalid_argument instead.

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace pmsb {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::fprintf(stderr, "pmsb invariant violated: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg.c_str());
  std::abort();
}

#define PMSB_CHECK(cond, msg)                                      \
  do {                                                             \
    if (!(cond)) ::pmsb::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Cycle count. Simulations run for at most a few billion cycles; 64 bits
/// never wraps.
using Cycle = std::int64_t;

/// A data word travelling on a link or stored in one memory stage.
/// Physical width is Config::word_bits (<= 64); upper bits must be zero.
using Word = std::uint64_t;

/// Number of bits needed to address/encode `n` distinct values (n >= 1).
constexpr unsigned bits_for(std::uint64_t n) {
  unsigned b = 0;
  std::uint64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++b;
  }
  return b == 0 ? 1 : b;
}

/// Mask with the low `bits` bits set (bits in [0,64]).
constexpr std::uint64_t low_mask(unsigned bits) {
  return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace pmsb
