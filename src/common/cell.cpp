#include "common/cell.hpp"

namespace pmsb {

Word cell_word(std::uint64_t cell_id, unsigned dest, unsigned k, const CellFormat& fmt) {
  PMSB_CHECK(fmt.word_bits >= 1 && fmt.word_bits <= 64, "word width out of range");
  PMSB_CHECK(k < fmt.length_words, "word index beyond cell length");
  const Word wmask = low_mask(fmt.word_bits);
  if (k == 0) {
    const Word dmask = low_mask(fmt.dest_bits);
    PMSB_CHECK((dest & ~dmask) == 0, "destination does not fit in dest_bits");
    const Word tag = mix64(cell_id) & low_mask(fmt.tag_bits());
    return ((tag << fmt.dest_bits) | dest) & wmask;
  }
  // Payload: avalanche-mixed function of (id, k). Distinct per cell and per
  // position, so datapath mix-ups are detectable.
  return mix64(cell_id * 0x100000001b3ULL + k) & wmask;
}

std::vector<Word> make_cell_words(std::uint64_t cell_id, unsigned dest, const CellFormat& fmt) {
  std::vector<Word> words(fmt.length_words);
  for (unsigned k = 0; k < fmt.length_words; ++k) words[k] = cell_word(cell_id, dest, k, fmt);
  return words;
}

unsigned decode_dest(Word head, const CellFormat& fmt) {
  return static_cast<unsigned>(head & low_mask(fmt.dest_bits));
}

std::uint64_t decode_tag(Word head, const CellFormat& fmt) {
  return (head >> fmt.dest_bits) & low_mask(fmt.tag_bits());
}

bool cell_matches(const std::vector<Word>& words, std::uint64_t cell_id, unsigned dest,
                  const CellFormat& fmt) {
  if (words.size() != fmt.length_words) return false;
  for (unsigned k = 0; k < fmt.length_words; ++k) {
    if (words[k] != cell_word(cell_id, dest, k, fmt)) return false;
  }
  return true;
}

}  // namespace pmsb
