#include "area/models.hpp"

#include "common/util.hpp"

namespace pmsb::area {

namespace {

/// Control bundle width of the figure-5 pipeline: address + two link ids +
/// operation encoding.
double ctrl_bits(unsigned n, unsigned words_per_stage) {
  return bits_for(words_per_stage) + 2.0 * bits_for(n) + 2.0;
}

/// Sum an inventory in register-bit equivalents, given the relative weights
/// of drivers / decoded-line FFs / decoders (crossings are separate: they
/// are wire-pitch area, independent of device area).
double regbit_equiv(const PeriphInventory& inv, double driver_w, double line_w,
                    double decoder_w) {
  return inv.data_reg_bits + inv.ctrl_reg_bits + driver_w * inv.driver_bits +
         line_w * inv.line_pipe_bits +
         decoder_w * inv.decoder_instances * inv.words_per_stage;
}

constexpr double kDriverWeight = 0.5;   ///< Tristate driver vs register bit.
constexpr double kLineFfWeight = 0.8;   ///< Decoded-line FF (dynamic) vs reg.
/// "A decoded address pipeline register is 2.3 times smaller than the normal
///  address decoder" (section 4.4): decoder area per word line.
constexpr double kDecoderWeight = 2.3 * kLineFfWeight;
constexpr double kCrossingUm2 = 6.25;   ///< (2.5 um metal pitch)^2 at 1.0 um.

}  // namespace

PeriphInventory pipelined_inventory(unsigned n, unsigned w, unsigned words_per_stage) {
  const double S = 2.0 * n;
  PeriphInventory inv;
  inv.words_per_stage = words_per_stage;
  // One latch row per input plus the single shared output row (figure 4).
  inv.data_reg_bits = n * S * w + S * w;
  inv.ctrl_reg_bits = (S - 1) * ctrl_bits(n, words_per_stage);
  // Figure 7(b): one real decoder at stage 0, decoded word lines pipelined.
  inv.decoder_instances = 1;
  inv.line_pipe_bits = (S - 1) * words_per_stage;
  // Every input latch drives its stage bus; the output row drives the links.
  inv.driver_bits = (n + 1.0) * S * w;
  // Two datapath blocks of 2nw x nw link-wire crossings (section 4.4: "the
  // area of this block approaches the minimum possible area of a crossbar").
  inv.crossbar_crossings = 2.0 * (2.0 * n * w) * (n * w);
  return inv;
}

PeriphInventory wide_inventory(unsigned n, unsigned w, unsigned words_per_stage) {
  const double S = 2.0 * n;  // Wide word = one cell = 2n link words.
  PeriphInventory inv;
  inv.words_per_stage = words_per_stage;
  // Double input buffering *and* double output buffering (figure 3 and the
  // [KaSC91] output feature): two register rows per port on each side.
  inv.data_reg_bits = 2.0 * n * S * w + 2.0 * n * S * w;
  inv.ctrl_reg_bits = bits_for(words_per_stage);  // One address register.
  inv.decoder_instances = 1;
  inv.line_pipe_bits = 0;
  // Write-path drivers (staging rows onto the wide bus), cut-through bypass
  // drivers from the fill rows, and output-row link drivers.
  inv.driver_bits = (1.0 + 0.5 + 1.0) * n * S * w;
  // The output crossbar plus the cut-through bypass buses: two wire blocks,
  // same footprint class as the pipelined datapath blocks (figure 3 needs
  // both; section 3.2 calls out the extra buses and crossbar explicitly).
  inv.crossbar_crossings = 2.0 * (2.0 * n * w) * (n * w);
  return inv;
}

TechParams full_custom_1um() {
  TechParams t;
  t.name = "1.0um full-custom CMOS (ES2)";
  // Calibrate the register-bit area against the paper's single anchor: the
  // Telegraphos III peripheral datapath is ~9 mm^2 (section 4.4).
  const PeriphInventory t3 = pipelined_inventory(8, 16, 256);
  const double equiv = regbit_equiv(t3, kDriverWeight, kLineFfWeight, kDecoderWeight);
  const double wire_um2 = kCrossingUm2 * t3.crossbar_crossings;
  const double reg = (9.0e6 - wire_um2) / equiv;
  t.reg_bit_um2 = reg;
  t.driver_bit_um2 = kDriverWeight * reg;
  t.decoder_um2_per_word = kDecoderWeight * reg;
  t.line_pipe_ratio = 1.0 / 2.3;
  t.crossing_um2 = kCrossingUm2;
  // 64 Kbit of storage occupies the ~36 mm^2 of the 45 mm^2 figure-8 block
  // that is not peripheral datapath.
  t.sram_bit_um2 = 36.0e6 / 65536.0;
  t.cycle_ns_worst = 16.0;
  return t;
}

TechParams std_cell_1um() {
  TechParams t = full_custom_1um();
  t.name = "1.0um standard cells (ES2)";
  // Section 4.4: the full-custom peripheral is 4.5x smaller than what the
  // standard-cell flow would need at the same node.
  constexpr double kStdCellPenalty = 4.5;
  t.reg_bit_um2 *= kStdCellPenalty;
  t.driver_bit_um2 *= kStdCellPenalty;
  t.decoder_um2_per_word *= kStdCellPenalty;
  t.crossing_um2 *= kStdCellPenalty;  // No circuit-under-wire overlap.
  t.cycle_ns_worst = 40.0;            // Telegraphos II link word rate.
  return t;
}

double peripheral_mm2(const PeriphInventory& inv, const TechParams& tech) {
  const double line_ff_um2 = tech.decoder_um2_per_word * tech.line_pipe_ratio;
  const double um2 = inv.data_reg_bits * tech.reg_bit_um2 +
                     inv.ctrl_reg_bits * tech.reg_bit_um2 +
                     inv.driver_bits * tech.driver_bit_um2 +
                     inv.line_pipe_bits * line_ff_um2 +
                     inv.decoder_instances * inv.words_per_stage * tech.decoder_um2_per_word +
                     inv.crossbar_crossings * tech.crossing_um2;
  return um2 * 1e-6;
}

double sram_mm2(double bits, const TechParams& tech) { return bits * tech.sram_bit_um2 * 1e-6; }

SharedVsInput shared_vs_input(unsigned n, unsigned w, double cells_per_input_hi,
                              double cells_per_output_hs) {
  SharedVsInput r;
  r.width_cells = 2.0 * n * w;
  // Figure 9: both organizations are 2nw bit-cells wide. A depth of C cells
  // per port is n * C * (2nw) total bits, i.e. a height of C * n bit-cell
  // rows at width 2nw (one cell = one 2n-word quantum of w bits).
  r.input_height_cells = cells_per_input_hi * n;
  r.shared_height_cells = cells_per_output_hs * n;
  r.input_memory_area = r.width_cells * r.input_height_cells;
  r.shared_memory_area = r.width_cells * r.shared_height_cells;
  // One pitch-matched w-bit n x n crossbar (input buffering) versus the two
  // shared-buffer datapath blocks; each is roughly 2nw x nw.
  const double block = (2.0 * n * w) * (n * w);
  r.input_fabric_area = block;
  r.shared_fabric_area = 2.0 * block;
  r.input_total = r.input_memory_area + r.input_fabric_area;
  r.shared_total = r.shared_memory_area + r.shared_fabric_area;
  return r;
}

double prizma_crossbar_ratio(unsigned n, unsigned banks_m) {
  // n x M router (and M x n selector) versus the pipelined n x 2n blocks.
  return static_cast<double>(banks_m) / (2.0 * n);
}

Telegraphos2Floorplan telegraphos2_floorplan() { return Telegraphos2Floorplan{}; }

FullCustomGain full_custom_gain() { return FullCustomGain{}; }

double std_cell_periph_mm2(unsigned n_ports) {
  // 41 mm^2 at 4x4, growing with the square of the link count.
  const double scale = static_cast<double>(n_ports) / 4.0;
  return 41.0 * scale * scale;
}

double aggregate_gbps(unsigned width_bits, double cycle_ns) {
  return static_cast<double>(width_bits) / cycle_ns;
}

double per_link_gbps(unsigned n, unsigned w, double cycle_ns) {
  (void)n;  // Each link carries w bits per cycle regardless of n.
  return static_cast<double>(w) / cycle_ns;
}

}  // namespace pmsb::area
