// VLSI silicon-cost models for the section 4 and 5 comparisons.
//
// The paper's area arguments are first-order component inventories (register
// bits, decoders, drivers, crossbar wire area) multiplied by per-element
// area constants of the 1.0 um full-custom CMOS process of Telegraphos III.
// We reproduce them the same way: build the inventory of each organization
// explicitly, convert to mm^2 with constants calibrated once against the
// single anchor the paper provides (Telegraphos III's ~9 mm^2 peripheral
// area, section 4.4), and then *measure* the derived claims (13 mm^2 wide
// memory, 16x PRIZMA crossbars, 18x standard-cell 8x8, factor 22) against
// the paper's numbers. The calibration uses only the anchor, never the
// numbers under test.

#pragma once

#include <cstdint>
#include <string>

namespace pmsb::area {

// ---------------------------------------------------------------------------
// Component inventory of a shared-buffer peripheral datapath
// ---------------------------------------------------------------------------

/// What surrounds the storage arrays of a shared buffer: everything the
/// paper calls "peripheral circuitry" (input/output registers, tristate
/// drivers, control registers, address circuitry) plus the link-wire
/// crossbar area of the input/output datapath blocks.
struct PeriphInventory {
  double data_reg_bits = 0;     ///< Input latch rows + output register rows.
  double ctrl_reg_bits = 0;     ///< Control-signal pipeline registers (fig. 5).
  double decoder_instances = 0; ///< Full address decoders.
  double line_pipe_bits = 0;    ///< Decoded word-line pipeline FFs (fig. 7b).
  double driver_bits = 0;       ///< Tristate bus drivers (w bits each count w).
  double crossbar_crossings = 0;///< Link-wire crossing count of datapath blocks.
  unsigned words_per_stage = 0; ///< D (decoder size).
};

/// Pipelined-memory organization (figure 4): one input latch row per input,
/// one shared output row, control pipeline, one decoder plus the pipelined
/// decoded word lines, and two link-wire datapath blocks of ~2nw x nw.
PeriphInventory pipelined_inventory(unsigned n, unsigned w, unsigned words_per_stage);

/// Wide-memory organization (figure 3, [KaSC91]): double input buffering,
/// double output buffering, one decoder, plus the cut-through bypass buses,
/// extra tristate drivers, and the output crossbar.
PeriphInventory wide_inventory(unsigned n, unsigned w, unsigned words_per_stage);

// ---------------------------------------------------------------------------
// Technology constants
// ---------------------------------------------------------------------------

struct TechParams {
  std::string name;
  double reg_bit_um2;        ///< One (static) register bit.
  double driver_bit_um2;     ///< One tristate driver bit.
  double decoder_um2_per_word;  ///< Decoder area per decoded word line.
  double line_pipe_ratio;    ///< Decoded-line FF vs decoder-per-word area
                             ///< ("2.3 times smaller", section 4.4) => 1/2.3.
  double crossing_um2;       ///< One link-wire crossing (active under wires).
  double sram_bit_um2;       ///< Storage array bit.
  double cycle_ns_worst;     ///< Worst-case clock (timing model).
};

/// 1.0 um full-custom CMOS (ES2), calibrated so that the Telegraphos III
/// peripheral inventory evaluates to the paper's ~9 mm^2 (section 4.4).
TechParams full_custom_1um();

/// Same node, standard cells: the paper gives the 4x4 peripheral as 41 mm^2
/// where full-custom needs 9 mm^2 for the 8x8 (section 4.4).
TechParams std_cell_1um();

/// Convert an inventory to mm^2 under a technology.
double peripheral_mm2(const PeriphInventory& inv, const TechParams& tech);

/// Storage-array area in mm^2 for `bits` of SRAM.
double sram_mm2(double bits, const TechParams& tech);

// ---------------------------------------------------------------------------
// Section 5.1: shared versus input buffering floorplan (figure 9)
// ---------------------------------------------------------------------------

struct SharedVsInput {
  // Both memories are 2nw bit-cells wide (equal aggregate throughput).
  double width_cells;        ///< 2nw.
  double input_height_cells; ///< H_i: per-input buffer depth for equal loss.
  double shared_height_cells;///< H_s.
  double input_memory_area;  ///< 2nw * H_i (cell^2 units).
  double shared_memory_area; ///< 2nw * H_s.
  double input_fabric_area;  ///< One w-bit n x n crossbar, pitch-matched: 2nw x nw.
  double shared_fabric_area; ///< Two datapath blocks of 2nw x nw.
  double input_total;
  double shared_total;
};

/// Evaluate figure 9 with measured equal-performance buffer heights
/// (cells per port) coming from simulation (bench E9 supplies them).
SharedVsInput shared_vs_input(unsigned n, unsigned w, double cells_per_input_hi,
                              double cells_per_output_hs);

// ---------------------------------------------------------------------------
// Section 5.3: PRIZMA crossbar cost
// ---------------------------------------------------------------------------

/// "The PRIZMA crossbars have a complexity proportional to n x M each, while
///  our crossbars have a complexity proportional to n x 2n each."
double prizma_crossbar_ratio(unsigned n, unsigned banks_m);

// ---------------------------------------------------------------------------
// Section 4 constants: the Telegraphos prototypes
// ---------------------------------------------------------------------------

struct Telegraphos2Floorplan {
  double sram_mm2 = 11.0;       ///< 8 x (1.5 x 0.9 mm^2) compiled SRAMs.
  double periph_mm2 = 15.0;     ///< Standard-cell peripheral regions.
  double routing_mm2 = 5.5;     ///< Memory-bus routing.
  double total_mm2() const { return sram_mm2 + periph_mm2 + routing_mm2; }
  double chip_mm2 = 8.5 * 8.5;
};
Telegraphos2Floorplan telegraphos2_floorplan();

/// Section 4.4: full-custom vs standard-cell "factor of 22".
struct FullCustomGain {
  double link_factor = 2.0;    ///< 8x8 vs 4x4.
  double clock_factor = 2.5;   ///< 2.5x faster clock.
  double area_factor = 4.5;    ///< 4.5x smaller peripheral area.
  double combined() const { return link_factor * clock_factor * area_factor; }
};
FullCustomGain full_custom_gain();

/// Standard-cell peripheral area scaled to p ports, from the paper's
/// quadratic growth ("the peripheral circuit area grows with the square of
/// the number of links"): 41 mm^2 at 4x4.
double std_cell_periph_mm2(unsigned n_ports);

// ---------------------------------------------------------------------------
// Section 3.5: packet-size quantum / aggregate throughput arithmetic
// ---------------------------------------------------------------------------

/// Aggregate buffer throughput in Gb/s for a buffer `width_bits` wide cycled
/// every `cycle_ns` nanoseconds.
double aggregate_gbps(unsigned width_bits, double cycle_ns);

/// Per-link throughput in Gb/s for an n x n switch with link width w bits.
double per_link_gbps(unsigned n, unsigned w, double cycle_ns);

}  // namespace pmsb::area
