#include "obs/flight_recorder.hpp"

namespace pmsb::obs {

const char* to_string(FlightStage s) {
  switch (s) {
    case FlightStage::kWaitGrant: return "wait_grant";
    case FlightStage::kBuffer: return "buffer";
    case FlightStage::kSerialize: return "serialize";
    case FlightStage::kTotal: return "total";
  }
  return "?";
}

FlightRecorder::FlightRecorder(unsigned n_ports, unsigned cell_words,
                               FlightRecorderConfig cfg)
    : n_ports_(n_ports), cell_words_(cell_words), cfg_(cfg) {
  PMSB_CHECK(n_ports_ > 0 && cell_words_ > 0, "flight recorder needs a real geometry");
  stages_.assign(kFlightStageCount, HdrHistogram(cfg_.precision_bits));
  if (cfg_.per_pair) {
    pairs_.assign(static_cast<std::size_t>(n_ports_) * n_ports_,
                  HdrHistogram(cfg_.precision_bits));
  }
}

void FlightRecorder::attach(EventHub& hub) {
  SwitchEvents ev;
  ev.on_head = [this](unsigned, Cycle a0, unsigned) { on_head(a0); };
  ev.on_drop = [this](unsigned, Cycle a0, DropReason) { on_drop(a0); };
  ev.on_read_grant = [this](unsigned output, unsigned input, Cycle tr, Cycle t0,
                            Cycle a0, bool) { on_read_grant(output, input, tr, t0, a0); };
  sub_ = hub.subscribe(std::move(ev));
}

void FlightRecorder::register_metrics(MetricsRegistry& m, const std::string& prefix) {
  m_completed_ = m.counter(prefix + ".completed");
  m_dropped_ = m.counter(prefix + ".dropped");
}

const HdrHistogram& FlightRecorder::pair_total(unsigned input, unsigned output) const {
  PMSB_CHECK(cfg_.per_pair, "pair_total requires FlightRecorderConfig::per_pair");
  PMSB_CHECK(input < n_ports_ && output < n_ports_, "pair index out of range");
  return pairs_[static_cast<std::size_t>(input) * n_ports_ + output];
}

void FlightRecorder::on_head(Cycle a0) {
  if (a0 < cfg_.warmup) return;
  ++heads_;
}

void FlightRecorder::on_drop(Cycle a0) {
  if (a0 < cfg_.warmup) return;
  ++dropped_;
  if (m_dropped_ != nullptr) m_dropped_->inc();
}

void FlightRecorder::on_read_grant(unsigned output, unsigned input, Cycle tr, Cycle t0,
                                   Cycle a0) {
  if (a0 < cfg_.warmup) return;
  PMSB_CHECK(t0 > a0 && tr >= t0, "flight stages out of order");
  const std::uint64_t wait = static_cast<std::uint64_t>(t0 - a0);
  const std::uint64_t buffer = static_cast<std::uint64_t>(tr - t0);
  const std::uint64_t serialize = cell_words_;
  const std::uint64_t total = wait + buffer + serialize;
  stages_[static_cast<unsigned>(FlightStage::kWaitGrant)].add(wait);
  stages_[static_cast<unsigned>(FlightStage::kBuffer)].add(buffer);
  stages_[static_cast<unsigned>(FlightStage::kSerialize)].add(serialize);
  stages_[static_cast<unsigned>(FlightStage::kTotal)].add(total);
  if (cfg_.per_pair) {
    pairs_[static_cast<std::size_t>(input) * n_ports_ + output].add(total);
  }
  ++completed_;
  if (m_completed_ != nullptr) m_completed_->inc();
}

void FlightRecorder::merge(const FlightRecorder& other) {
  PMSB_CHECK(n_ports_ == other.n_ports_ && cell_words_ == other.cell_words_,
             "flight recorder merge with mismatched geometry");
  PMSB_CHECK(cfg_.per_pair == other.cfg_.per_pair &&
                 cfg_.precision_bits == other.cfg_.precision_bits,
             "flight recorder merge with mismatched config");
  for (unsigned s = 0; s < kFlightStageCount; ++s) stages_[s].merge(other.stages_[s]);
  for (std::size_t i = 0; i < pairs_.size(); ++i) pairs_[i].merge(other.pairs_[i]);
  heads_ += other.heads_;
  completed_ += other.completed_;
  dropped_ += other.dropped_;
}

void FlightRecorder::clear() {
  for (auto& h : stages_) h.clear();
  for (auto& h : pairs_) h.clear();
  heads_ = 0;
  completed_ = 0;
  dropped_ = 0;
}

}  // namespace pmsb::obs
