#include "obs/metrics.hpp"

namespace pmsb::obs {

Counter* MetricsRegistry::counter(const std::string& name) {
  if (!enabled_) return nullptr;
  for (auto& e : counters_) {
    if (e.name == name) return e.counter.get();
  }
  counters_.push_back(CounterEntry{name, std::make_unique<Counter>()});
  return counters_.back().counter.get();
}

void MetricsRegistry::add_gauge(const std::string& name, std::function<double()> fn) {
  if (!enabled_) return;
  PMSB_CHECK(fn != nullptr, "gauge needs a sampling callback");
  gauges_.push_back(GaugeEntry{name, std::move(fn), GaugeStats{}});
}

Histogram* MetricsRegistry::histogram(const std::string& name, std::size_t max_value) {
  if (!enabled_) return nullptr;
  for (auto& e : hists_) {
    if (e.name == name) {
      PMSB_CHECK(e.max_value == max_value,
                 "histogram re-requested with a different max_value");
      return e.hist.get();
    }
  }
  hists_.push_back(HistEntry{name, max_value, std::make_unique<Histogram>(max_value)});
  return hists_.back().hist.get();
}

HdrHistogram* MetricsRegistry::hdr_histogram(const std::string& name,
                                             unsigned precision_bits) {
  if (!enabled_) return nullptr;
  for (auto& e : hdr_hists_) {
    if (e.name == name) {
      PMSB_CHECK(e.hist->precision_bits() == precision_bits,
                 "hdr_histogram re-requested with a different precision");
      return e.hist.get();
    }
  }
  hdr_hists_.push_back(HdrEntry{name, std::make_unique<HdrHistogram>(precision_bits)});
  return hdr_hists_.back().hist.get();
}

void MetricsRegistry::sample(Cycle t) {
  if (!enabled_) return;
  for (auto& g : gauges_) {
    const double v = g.fn();
    GaugeStats& s = g.stats;
    if (s.samples == 0) {
      s.min = s.max = v;
    } else {
      if (v < s.min) s.min = v;
      if (v > s.max) s.max = v;
    }
    s.last = v;
    s.sum += v;
    ++s.samples;
  }
  last_sample_ = t;
  ++samples_taken_;
  for (auto& h : hooks_) h.fn(t);
}

std::uint64_t MetricsRegistry::add_sample_hook(std::function<void(Cycle)> fn) {
  if (!enabled_) return 0;
  PMSB_CHECK(fn != nullptr, "sample hook needs a callback");
  const std::uint64_t id = next_hook_id_++;
  hooks_.push_back(HookEntry{id, std::move(fn)});
  return id;
}

void MetricsRegistry::remove_sample_hook(std::uint64_t id) {
  if (id == 0) return;
  for (std::size_t i = 0; i < hooks_.size(); ++i) {
    if (hooks_[i].id == id) {
      hooks_.erase(hooks_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void MetricsRegistry::reset() {
  for (auto& e : counters_) e.counter->reset();
  for (auto& g : gauges_) g.stats = GaugeStats{};
  for (auto& e : hists_) e.hist->clear();
  for (auto& e : hdr_hists_) e.hist->clear();
  samples_taken_ = 0;
  last_sample_ = 0;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  for (const auto& e : counters_) {
    if (e.name == name) return e.counter.get();
  }
  return nullptr;
}

const GaugeStats* MetricsRegistry::find_gauge(const std::string& name) const {
  for (const auto& g : gauges_) {
    if (g.name == name) return &g.stats;
  }
  return nullptr;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  for (const auto& e : hists_) {
    if (e.name == name) return e.hist.get();
  }
  return nullptr;
}

const HdrHistogram* MetricsRegistry::find_hdr_histogram(const std::string& name) const {
  for (const auto& e : hdr_hists_) {
    if (e.name == name) return e.hist.get();
  }
  return nullptr;
}

std::vector<MetricsRegistry::CounterView> MetricsRegistry::counters() const {
  std::vector<CounterView> out;
  out.reserve(counters_.size());
  for (const auto& e : counters_) out.push_back({e.name, e.counter->value()});
  return out;
}

std::vector<MetricsRegistry::GaugeView> MetricsRegistry::gauges() const {
  std::vector<GaugeView> out;
  out.reserve(gauges_.size());
  for (const auto& g : gauges_) out.push_back({g.name, g.stats});
  return out;
}

std::vector<MetricsRegistry::HistogramView> MetricsRegistry::histograms() const {
  std::vector<HistogramView> out;
  out.reserve(hists_.size());
  for (const auto& e : hists_) out.push_back({e.name, e.hist.get()});
  return out;
}

std::vector<MetricsRegistry::HdrHistogramView> MetricsRegistry::hdr_histograms() const {
  std::vector<HdrHistogramView> out;
  out.reserve(hdr_hists_.size());
  for (const auto& e : hdr_hists_) out.push_back({e.name, e.hist.get()});
  return out;
}

}  // namespace pmsb::obs
