#include "obs/trace_buffer.hpp"

#include <cstdio>

namespace pmsb::obs {

namespace {

// Mirrors rtl/ctrl_pipeline.hpp's StageOp encoding without depending on it
// (obs sits below rtl in the layering).
const char* wave_op_name(std::uint32_t op) {
  switch (op) {
    case 1: return "write";
    case 2: return "read";
    case 3: return "write+snoop";
    default: return "none";
  }
}

const char* drop_reason_name(std::uint32_t r) {
  switch (r) {
    case 0: return "buffer full";
    case 1: return "no slot";
    case 2: return "output over limit";
    default: return "?";
  }
}

}  // namespace

const char* to_string(TraceEvent e) {
  switch (e) {
    case TraceEvent::kHead: return "head";
    case TraceEvent::kWriteWave: return "write-wave";
    case TraceEvent::kReadGrant: return "read-grant";
    case TraceEvent::kCutThrough: return "cut-through";
    case TraceEvent::kSnoop: return "snoop";
    case TraceEvent::kDrop: return "drop";
    case TraceEvent::kWaveInit: return "wave-init";
    case TraceEvent::kViolation: return "violation";
  }
  return "?";
}

std::string format(const TraceRecord& r) {
  char buf[128];
  switch (r.event) {
    case TraceEvent::kHead:
      std::snprintf(buf, sizeof buf, "head       in=%u dest=%u", r.input, r.output);
      break;
    case TraceEvent::kWriteWave:
      std::snprintf(buf, sizeof buf, "write-wave in=%u addr=%u slack=%u", r.input, r.addr,
                    r.arg);
      break;
    case TraceEvent::kReadGrant:
      std::snprintf(buf, sizeof buf, "read-grant out=%u in=%u addr=%u", r.output, r.input,
                    r.addr);
      break;
    case TraceEvent::kCutThrough:
      std::snprintf(buf, sizeof buf, "cut-thru   out=%u in=%u", r.output, r.input);
      break;
    case TraceEvent::kSnoop:
      std::snprintf(buf, sizeof buf, "snoop      out=%u in=%u addr=%u", r.output, r.input,
                    r.addr);
      break;
    case TraceEvent::kDrop:
      std::snprintf(buf, sizeof buf, "drop       in=%u (%s)", r.input,
                    drop_reason_name(r.arg));
      break;
    case TraceEvent::kWaveInit:
      std::snprintf(buf, sizeof buf, "M0 %-11s addr=%u in=%u out=%u", wave_op_name(r.arg),
                    r.addr, r.input, r.output);
      break;
    case TraceEvent::kViolation:
      std::snprintf(buf, sizeof buf, "VIOLATION  invariant=%u digest=%08x", r.arg, r.addr);
      break;
  }
  return buf;
}

TraceBuffer::TraceBuffer(std::size_t capacity) : ring_(capacity) {
  PMSB_CHECK(capacity > 0, "trace buffer needs at least one slot");
}

std::size_t TraceBuffer::size() const {
  return total_ < ring_.size() ? static_cast<std::size_t>(total_) : ring_.size();
}

const TraceRecord& TraceBuffer::at(std::size_t i) const {
  PMSB_CHECK(i < size(), "trace record index out of range");
  const std::uint64_t oldest = total_ - size();
  return ring_[static_cast<std::size_t>((oldest + i) % ring_.size())];
}

void TraceBuffer::for_each(const std::function<void(const TraceRecord&)>& fn) const {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) fn(at(i));
}

void TraceBuffer::clear() { total_ = 0; }

}  // namespace pmsb::obs
