// Structured observability: a registry of cheap named counters, sampled
// gauges, and histograms that components register into once and update from
// their hot paths at the cost of a pointer test plus an increment.
//
// Design rules (the zero-cost-when-disabled contract):
//  * A component caches raw Counter* pointers at register_metrics() time.
//    With no registry attached (or a disabled one) those pointers are null
//    and the hot path pays exactly one predictable branch.
//  * Gauges are pull-based: the registry stores a callback and only invokes
//    it when sample() runs (the Engine calls sample() every `period` cycles
//    -- see Engine::set_metrics). Components pay nothing between samples.
//  * Names are hierarchical by convention ("switch.free_list.in_use");
//    registration order is preserved so snapshots are deterministic.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/util.hpp"
#include "stats/hdr_histogram.hpp"
#include "stats/histogram.hpp"

namespace pmsb::obs {

/// A monotonically increasing named count. Pointer-stable for the lifetime
/// of the owning registry.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  /// High-water style update: raise to `v` if larger.
  void record_max(std::uint64_t v) {
    if (v > value_) value_ = v;
  }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Accumulated statistics of one gauge across sample() calls.
struct GaugeStats {
  std::uint64_t samples = 0;
  double last = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;

  double mean() const { return samples == 0 ? 0.0 : sum / static_cast<double>(samples); }
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  /// Disabling makes counter() return nullptr and add_gauge()/histogram()
  /// no-ops, so instrumented components stay on their null-pointer fast
  /// path. Flip before registering components.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Create-or-get a counter. Returns nullptr when disabled.
  Counter* counter(const std::string& name);

  /// Register a gauge sampled on every sample() call. No-op when disabled.
  void add_gauge(const std::string& name, std::function<double()> fn);

  /// Create-or-get a histogram (values clamped to [0, max_value]).
  /// Returns nullptr when disabled. Re-requesting an existing name with a
  /// different max_value is a PMSB_CHECK failure -- the caller would get a
  /// histogram with a different clamp than it asked for.
  Histogram* histogram(const std::string& name, std::size_t max_value);

  /// Create-or-get a constant-memory log-bucketed histogram for unbounded
  /// (latency-like) values. Returns nullptr when disabled. Re-requesting an
  /// existing name with a different precision is a PMSB_CHECK failure.
  HdrHistogram* hdr_histogram(const std::string& name,
                              unsigned precision_bits = HdrHistogram::kDefaultPrecisionBits);

  /// Pull every gauge once. The Engine calls this on its sampling period.
  /// Sample hooks (e.g. the TimeSeriesSampler) fire after gauges update, so
  /// a hook observes the freshly pulled values.
  void sample(Cycle t);

  /// Register a callback invoked at the end of every sample(). Returns an
  /// id for remove_sample_hook(); returns 0 (no-op) when disabled.
  std::uint64_t add_sample_hook(std::function<void(Cycle)> fn);
  void remove_sample_hook(std::uint64_t id);

  Cycle last_sample_cycle() const { return last_sample_; }
  std::uint64_t samples_taken() const { return samples_taken_; }

  /// Zero all counters, gauge accumulations, and histograms (registrations
  /// survive; cached Counter* pointers stay valid).
  void reset();

  // ---- Introspection (reporting-time only) ---------------------------------

  const Counter* find_counter(const std::string& name) const;
  const GaugeStats* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;
  const HdrHistogram* find_hdr_histogram(const std::string& name) const;

  // Index-based access in registration order: lets per-sample consumers
  // (TimeSeriesSampler) read values without building name-copying views.
  std::size_t counter_count() const { return counters_.size(); }
  const std::string& counter_name(std::size_t i) const { return counters_[i].name; }
  std::uint64_t counter_value(std::size_t i) const { return counters_[i].counter->value(); }
  std::size_t gauge_count() const { return gauges_.size(); }
  const std::string& gauge_name(std::size_t i) const { return gauges_[i].name; }
  /// Value pulled by the most recent sample() (0.0 before the first).
  double gauge_last(std::size_t i) const { return gauges_[i].stats.last; }

  struct CounterView {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeView {
    std::string name;
    GaugeStats stats;
  };
  struct HistogramView {
    std::string name;
    const Histogram* hist;
  };
  struct HdrHistogramView {
    std::string name;
    const HdrHistogram* hist;
  };

  std::vector<CounterView> counters() const;
  std::vector<GaugeView> gauges() const;
  std::vector<HistogramView> histograms() const;
  std::vector<HdrHistogramView> hdr_histograms() const;

 private:
  struct GaugeEntry {
    std::string name;
    std::function<double()> fn;
    GaugeStats stats;
  };
  struct CounterEntry {
    std::string name;
    std::unique_ptr<Counter> counter;  ///< unique_ptr: pointer stability.
  };
  struct HistEntry {
    std::string name;
    std::size_t max_value;  ///< Remembered to reject mismatched re-requests.
    std::unique_ptr<Histogram> hist;
  };
  struct HdrEntry {
    std::string name;
    std::unique_ptr<HdrHistogram> hist;
  };
  struct HookEntry {
    std::uint64_t id;
    std::function<void(Cycle)> fn;
  };

  bool enabled_;
  std::vector<CounterEntry> counters_;
  std::vector<GaugeEntry> gauges_;
  std::vector<HistEntry> hists_;
  std::vector<HdrEntry> hdr_hists_;
  std::vector<HookEntry> hooks_;
  std::uint64_t next_hook_id_ = 1;
  Cycle last_sample_ = 0;
  std::uint64_t samples_taken_ = 0;
};

}  // namespace pmsb::obs
