// Bounded ring-buffer event trace: the hot-path trace mechanism of the
// cycle-accurate switches. Components push small typed records (a handful of
// integers, no formatting, no I/O); formatting happens only when a drain
// (sim/trace.hpp's Tracer) renders the records -- either live as they are
// pushed, or after the run by walking the retained window.
//
// The buffer never allocates after construction and overwrites the oldest
// record when full, so it is safe to leave attached during long runs: the
// last `capacity` events before an assertion failure are always available.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/util.hpp"

namespace pmsb::obs {

enum class TraceEvent : std::uint8_t {
  kHead,       ///< Head word latched: input, output = destination.
  kWriteWave,  ///< Write wave granted: input, addr = first segment, arg = t0 - a0 slack.
  kReadGrant,  ///< Read wave granted: output, input, addr = first segment.
  kCutThrough, ///< Departure initiated before tail arrival: output, input.
  kSnoop,      ///< Same-cycle write+read co-grant: output, input, addr.
  kDrop,       ///< Cell lost: input, arg = DropReason.
  kWaveInit,   ///< M0 initiation this cycle: addr, arg = StageOp, input/output.
  kViolation,  ///< Invariant check failed: arg = check::Invariant id, addr =
               ///< state digest of the violating cycle (see src/check/).
};

const char* to_string(TraceEvent e);

/// One trace record. Deliberately flat and small (24 bytes): pushing one is
/// a few stores.
struct TraceRecord {
  Cycle t = 0;
  TraceEvent event = TraceEvent::kHead;
  std::uint16_t input = 0;
  std::uint16_t output = 0;
  std::uint32_t addr = 0;
  std::uint32_t arg = 0;  ///< Event-specific: slack, DropReason, StageOp, flags.
};

/// Human-readable single-line rendering (no cycle prefix; drains add it).
std::string format(const TraceRecord& r);

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity);

  void push(const TraceRecord& r) {
    ring_[static_cast<std::size_t>(total_ % ring_.size())] = r;
    ++total_;
    if (live_drain_) live_drain_(r);
  }

  std::size_t capacity() const { return ring_.size(); }
  /// Records currently retained (<= capacity).
  std::size_t size() const;
  /// Records pushed over the buffer's lifetime.
  std::uint64_t total() const { return total_; }
  /// Records lost to wraparound.
  std::uint64_t overwritten() const { return total_ - size(); }

  /// Retained record `i`, 0 = oldest still in the buffer.
  const TraceRecord& at(std::size_t i) const;

  /// Invoke `fn` on every retained record, oldest first.
  void for_each(const std::function<void(const TraceRecord&)>& fn) const;

  void clear();

  /// Optional live drain, invoked on every push (e.g. Tracer formatting to a
  /// FILE*). Costs an indirect call per record while set -- attach only when
  /// watching a run interactively.
  void set_live_drain(std::function<void(const TraceRecord&)> drain) {
    live_drain_ = std::move(drain);
  }

 private:
  std::vector<TraceRecord> ring_;
  std::uint64_t total_ = 0;
  std::function<void(const TraceRecord&)> live_drain_;
};

}  // namespace pmsb::obs
