#include "obs/perfetto.hpp"

#include <cstdio>

#include "obs/json_writer.hpp"

namespace pmsb::obs {

void PerfettoTrace::set_track_name(unsigned tid, const std::string& name, unsigned pid) {
  Event e;
  e.ph = 'M';
  e.pid = pid;
  e.tid = tid;
  e.name = "thread_name";
  e.string_arg = name;
  events_.push_back(std::move(e));
}

void PerfettoTrace::counter(std::int64_t ts, unsigned tid, const std::string& name,
                            const std::vector<std::pair<std::string, double>>& series,
                            unsigned pid) {
  Event e;
  e.ph = 'C';
  e.ts = ts;
  e.pid = pid;
  e.tid = tid;
  e.name = name;
  e.args = series;
  events_.push_back(std::move(e));
}

void PerfettoTrace::complete(std::int64_t ts, std::int64_t dur, unsigned tid,
                             const std::string& name,
                             const std::vector<std::pair<std::string, double>>& args,
                             unsigned pid) {
  PMSB_CHECK(dur >= 0, "complete event with negative duration");
  Event e;
  e.ph = 'X';
  e.ts = ts;
  e.dur = dur;
  e.pid = pid;
  e.tid = tid;
  e.name = name;
  e.args = args;
  events_.push_back(std::move(e));
}

void PerfettoTrace::instant(std::int64_t ts, unsigned tid, const std::string& name,
                            unsigned pid) {
  Event e;
  e.ph = 'i';
  e.ts = ts;
  e.pid = pid;
  e.tid = tid;
  e.name = name;
  events_.push_back(std::move(e));
}

std::string PerfettoTrace::json() const {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const auto& e : events_) {
    w.begin_object();
    w.field("ph", std::string_view(&e.ph, 1));
    w.field("pid", e.pid);
    w.field("tid", e.tid);
    w.field("name", std::string_view(e.name));
    if (e.ph == 'M') {
      w.key("args").begin_object().field("name", std::string_view(e.string_arg)).end_object();
    } else {
      w.field("ts", std::int64_t{e.ts});
      if (e.ph == 'X') w.field("dur", std::int64_t{e.dur});
      if (e.ph == 'i') w.field("s", "t");
      if (!e.args.empty()) {
        w.key("args").begin_object();
        for (const auto& [k, v] : e.args) w.field(std::string_view(k), v);
        w.end_object();
      }
    }
    w.end_object();
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

void PerfettoTrace::write(const std::string& path) const {
  const std::string doc = json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  PMSB_CHECK(f != nullptr, "cannot open trace output file");
  const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = (n == doc.size()) && (std::fclose(f) == 0);
  PMSB_CHECK(ok, "short write on trace output file");
}

}  // namespace pmsb::obs
