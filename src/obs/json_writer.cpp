#include "obs/json_writer.hpp"

#include <cmath>
#include <cstdio>

namespace pmsb::obs {

void JsonWriter::before_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // key() already placed the comma and the ':' separator.
  }
  PMSB_CHECK(stack_.empty() ? !wrote_top_level_ : stack_.back() == '[',
             "JSON value needs a key inside an object");
  if (comma_pending_) out_ += ',';
}

void JsonWriter::append_escaped(std::string_view s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back('{');
  comma_pending_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PMSB_CHECK(!stack_.empty() && stack_.back() == '{', "end_object without begin_object");
  PMSB_CHECK(!key_pending_, "dangling key at end_object");
  stack_.pop_back();
  out_ += '}';
  comma_pending_ = true;
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back('[');
  comma_pending_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PMSB_CHECK(!stack_.empty() && stack_.back() == '[', "end_array without begin_array");
  stack_.pop_back();
  out_ += ']';
  comma_pending_ = true;
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  PMSB_CHECK(!stack_.empty() && stack_.back() == '{', "key() outside an object");
  PMSB_CHECK(!key_pending_, "two keys in a row");
  if (comma_pending_) out_ += ',';
  append_escaped(k);
  out_ += ':';
  comma_pending_ = false;
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    out_ += buf;
  }
  comma_pending_ = true;
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  comma_pending_ = true;
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  comma_pending_ = true;
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  comma_pending_ = true;
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  append_escaped(v);
  comma_pending_ = true;
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  comma_pending_ = true;
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  PMSB_CHECK(complete(), "JSON document is incomplete");
  return out_;
}

}  // namespace pmsb::obs
