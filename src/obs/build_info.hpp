// Build provenance baked in at compile time, emitted under the BENCH JSON
// "runtime" block so every artifact records which toolchain, flags, and
// commit produced it. Runtime-only by design: provenance varies between
// checkouts and build trees, and the determinism diffs
// (tools/diff_bench_json.py) strip "runtime".

#pragma once

namespace pmsb::obs {

/// Compiler family and version, e.g. "gcc 13.2.0".
const char* build_compiler();

/// The CMAKE_CXX_FLAGS (+ build-type flags) this library was compiled with;
/// empty if CMake did not pass them through.
const char* build_flags();

/// Short git commit hash of the source tree at configure time, or "unknown"
/// outside a git checkout.
const char* build_git_sha();

}  // namespace pmsb::obs
