// Chrome/Perfetto trace-event export. Builds a JSON document in the legacy
// trace-event format ({"traceEvents": [...]}) that both chrome://tracing and
// ui.perfetto.dev load directly, giving every bench a zoomable timeline of
// its counters and worker activity.
//
// Track mapping convention used across the repo:
//  * pid 1 is the simulation; each track is a (pid, tid) pair named via a
//    thread_name metadata event (set_track_name).
//  * Registry time series render as "C" (counter) events -- one track per
//    component (the metric-name prefix before the first '.'), with that
//    component's series as the event args, so related counters stack in one
//    chart.
//  * Fabric workers render as "X" (complete) slices on their own tracks
//    (active vs. barrier-wait spans).
//
// Timestamps are microseconds by convention in the trace-event format; we map
// 1 simulated cycle -> 1 us for counter tracks (wall-clock-derived spans say
// so in their track names). Events must be appended in non-decreasing ts
// order per track; tools/validate_perfetto.py enforces this in CI.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/util.hpp"

namespace pmsb::obs {

class PerfettoTrace {
 public:
  /// Name the (pid, tid) track; emitted as a thread_name metadata event.
  void set_track_name(unsigned tid, const std::string& name, unsigned pid = 1);

  /// Counter event: args render as stacked series in one counter chart.
  void counter(std::int64_t ts, unsigned tid, const std::string& name,
               const std::vector<std::pair<std::string, double>>& series,
               unsigned pid = 1);

  /// Complete event: a slice [ts, ts + dur] on the track.
  void complete(std::int64_t ts, std::int64_t dur, unsigned tid, const std::string& name,
                const std::vector<std::pair<std::string, double>>& args = {},
                unsigned pid = 1);

  /// Instant event (ph "i", scope thread).
  void instant(std::int64_t ts, unsigned tid, const std::string& name, unsigned pid = 1);

  std::size_t event_count() const { return events_.size(); }

  /// The complete JSON document.
  std::string json() const;

  /// Write json() to `path`; PMSB_CHECKs on I/O failure.
  void write(const std::string& path) const;

 private:
  struct Event {
    char ph;  ///< 'C', 'X', 'i', or 'M' (metadata).
    std::int64_t ts = 0;
    std::int64_t dur = 0;  ///< 'X' only.
    unsigned pid = 1;
    unsigned tid = 0;
    std::string name;
    std::string string_arg;  ///< 'M' only: the track name.
    std::vector<std::pair<std::string, double>> args;
  };

  std::vector<Event> events_;
};

}  // namespace pmsb::obs
