#include "obs/timeseries.hpp"

#include "obs/perfetto.hpp"

namespace pmsb::obs {

TimeSeriesSampler::TimeSeriesSampler(MetricsRegistry* m, std::size_t capacity)
    : reg_(m), capacity_(capacity) {
  PMSB_CHECK(capacity_ > 0, "time-series ring needs capacity >= 1");
  if (reg_ != nullptr && reg_->enabled()) {
    hook_id_ = reg_->add_sample_hook([this](Cycle t) { snapshot(t); });
  }
}

TimeSeriesSampler::~TimeSeriesSampler() {
  if (reg_ != nullptr && hook_id_ != 0) reg_->remove_sample_hook(hook_id_);
}

void TimeSeriesSampler::snapshot(Cycle t) {
  if (reg_ == nullptr || !reg_->enabled()) return;
  const std::size_t nc = reg_->counter_count();
  const std::size_t ng = reg_->gauge_count();
  if (prev_counters_.size() < nc) prev_counters_.resize(nc, 0);

  Row row;
  row.t = t;
  row.counter_deltas.resize(nc);
  for (std::size_t i = 0; i < nc; ++i) {
    const std::uint64_t v = reg_->counter_value(i);
    row.counter_deltas[i] = v - prev_counters_[i];
    prev_counters_[i] = v;
  }
  row.gauges.resize(ng);
  for (std::size_t i = 0; i < ng; ++i) row.gauges[i] = reg_->gauge_last(i);

  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(row));
  } else {
    ring_[head_] = std::move(row);
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

const TimeSeriesSampler::Row& TimeSeriesSampler::at(std::size_t i) const {
  PMSB_CHECK(i < ring_.size(), "time-series row index out of range");
  return ring_[(head_ + i) % ring_.size()];
}

TimeSeriesSampler::Series TimeSeriesSampler::series() const {
  Series s;
  s.dropped = dropped();
  if (reg_ != nullptr && reg_->enabled()) {
    for (std::size_t i = 0; i < reg_->counter_count(); ++i)
      s.counter_columns.push_back(reg_->counter_name(i));
    for (std::size_t i = 0; i < reg_->gauge_count(); ++i)
      s.gauge_columns.push_back(reg_->gauge_name(i));
  }
  s.rows.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    Row row = at(i);
    row.counter_deltas.resize(s.counter_columns.size(), 0);
    row.gauges.resize(s.gauge_columns.size(), 0.0);
    s.rows.push_back(std::move(row));
  }
  return s;
}

namespace {
std::string component_of(const std::string& name) {
  const std::size_t dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}
std::string series_of(const std::string& name) {
  const std::size_t dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}
}  // namespace

void TimeSeriesSampler::to_perfetto(PerfettoTrace& out) const {
  const Series s = series();
  if (s.rows.empty()) return;

  // Discover components in column order; each gets one counter track.
  std::vector<std::string> components;
  auto tid_of = [&components](const std::string& name) -> unsigned {
    const std::string comp = component_of(name);
    for (std::size_t i = 0; i < components.size(); ++i) {
      if (components[i] == comp) return static_cast<unsigned>(i);
    }
    components.push_back(comp);
    return static_cast<unsigned>(components.size() - 1);
  };
  std::vector<unsigned> counter_tid, gauge_tid;
  for (const auto& c : s.counter_columns) counter_tid.push_back(tid_of(c));
  for (const auto& g : s.gauge_columns) gauge_tid.push_back(tid_of(g));
  for (std::size_t i = 0; i < components.size(); ++i)
    out.set_track_name(static_cast<unsigned>(i), components[i]);

  for (const auto& row : s.rows) {
    for (std::size_t comp = 0; comp < components.size(); ++comp) {
      std::vector<std::pair<std::string, double>> args;
      for (std::size_t i = 0; i < s.counter_columns.size(); ++i) {
        if (counter_tid[i] != comp) continue;
        args.emplace_back(series_of(s.counter_columns[i]) + "/delta",
                          static_cast<double>(row.counter_deltas[i]));
      }
      for (std::size_t i = 0; i < s.gauge_columns.size(); ++i) {
        if (gauge_tid[i] != comp) continue;
        args.emplace_back(series_of(s.gauge_columns[i]), row.gauges[i]);
      }
      if (!args.empty()) {
        out.counter(row.t, static_cast<unsigned>(comp), components[comp], args);
      }
    }
  }
}

}  // namespace pmsb::obs
