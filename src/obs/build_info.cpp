#include "obs/build_info.hpp"

// PMSB_GIT_SHA and PMSB_CXX_FLAGS are per-file compile definitions set in
// src/CMakeLists.txt (only this translation unit rebuilds when they change).

namespace pmsb::obs {

const char* build_compiler() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

const char* build_flags() {
#ifdef PMSB_CXX_FLAGS
  return PMSB_CXX_FLAGS;
#else
  return "";
#endif
}

const char* build_git_sha() {
#ifdef PMSB_GIT_SHA
  return PMSB_GIT_SHA;
#else
  return "unknown";
#endif
}

}  // namespace pmsb::obs
