// Cell flight recorder: an EventHub subscriber that decomposes every cell's
// life inside the shared buffer into the paper's pipeline stages and feeds
// each stage's residency into HDR histograms, so a bench can answer "is the
// delay queueing, pipeline, or serialization?" instead of reporting one
// end-to-end number.
//
// Stage decomposition (all cycles, per delivered cell):
//   wait_grant = t0 - a0        address/write-wave grant delay: the head
//                               arrived at the end of a0 and the write wave
//                               was granted at t0, inside the paper's
//                               [a0 + 1, a0 + 2n] acceptance window.
//   buffer     = tr - t0        residency between write initiation and read
//                               initiation: output queueing plus the wave
//                               pipeline (0 when the read cut through in the
//                               same cycle the write started).
//   serialize  = L              output serialization: cell_words words leave
//                               at one word per cycle after tr.
//   total      = tr + L - a0  = wait_grant + buffer + serialize.
//
// The decomposition is *additive by construction*: all four histograms are
// recorded at the single on_read_grant event (which carries output, input,
// tr, t0, a0), so they always hold the same sample set and
// sum(total) == sum(wait_grant) + sum(buffer) + sum(serialize) exactly.
// Recording needs no per-cell state, which keeps attachment cheap and makes
// recorders merge deterministically across fabric shards (node order).
//
// Both PipelinedSwitch and FastSwitch emit the same event stream, so the
// recorder attaches to either (and to every node of a mixed fabric).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/util.hpp"
#include "core/event_hub.hpp"
#include "obs/metrics.hpp"
#include "stats/hdr_histogram.hpp"

namespace pmsb::obs {

enum class FlightStage : unsigned {
  kWaitGrant = 0,  ///< t0 - a0: address/write-wave grant delay.
  kBuffer,         ///< tr - t0: output queueing + wave pipeline.
  kSerialize,      ///< L: output serialization.
  kTotal,          ///< tr + L - a0: head-to-tail-departure latency.
};
inline constexpr unsigned kFlightStageCount = 4;
const char* to_string(FlightStage s);

struct FlightRecorderConfig {
  /// Cells whose head arrived before `warmup` are not recorded.
  Cycle warmup = 0;
  /// Also keep one total-latency histogram per (input, output) pair
  /// (n_ports^2 histograms -- enable for benches, not for every fabric node).
  bool per_pair = false;
  unsigned precision_bits = HdrHistogram::kDefaultPrecisionBits;
};

class FlightRecorder {
 public:
  /// `cell_words` is the serialization length L of the attached switch
  /// (SwitchConfig::cell_words).
  FlightRecorder(unsigned n_ports, unsigned cell_words, FlightRecorderConfig cfg = {});

  /// Subscribe to a switch's event hub (replaces any previous attachment);
  /// the subscription is dropped on destruction or detach().
  void attach(EventHub& hub);
  void detach() { sub_.reset(); }

  /// Optional live counters (null-pointer fast path when `m` is disabled).
  void register_metrics(MetricsRegistry& m, const std::string& prefix = "flight");

  const HdrHistogram& stage(FlightStage s) const {
    return stages_[static_cast<unsigned>(s)];
  }
  /// Total-latency histogram for one (input, output) pair; requires per_pair.
  const HdrHistogram& pair_total(unsigned input, unsigned output) const;

  std::uint64_t heads() const { return heads_; }        ///< Post-warmup head arrivals.
  std::uint64_t completed() const { return completed_; }///< Cells fully recorded.
  std::uint64_t dropped() const { return dropped_; }    ///< Post-warmup drops.
  unsigned n_ports() const { return n_ports_; }
  unsigned cell_words() const { return cell_words_; }
  const FlightRecorderConfig& config() const { return cfg_; }

  /// Fold another recorder's histograms and counts in; geometries and
  /// configs must match. Merging in a fixed (node) order keeps fabric-wide
  /// percentiles bit-identical at any shard count.
  void merge(const FlightRecorder& other);
  void clear();

 private:
  void on_head(Cycle a0);
  void on_drop(Cycle a0);
  void on_read_grant(unsigned output, unsigned input, Cycle tr, Cycle t0, Cycle a0);

  unsigned n_ports_;
  unsigned cell_words_;
  FlightRecorderConfig cfg_;
  std::vector<HdrHistogram> stages_;  ///< kFlightStageCount entries.
  std::vector<HdrHistogram> pairs_;   ///< n^2 entries when cfg_.per_pair.
  std::uint64_t heads_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  Counter* m_completed_ = nullptr;  ///< Null when metrics are detached.
  Counter* m_dropped_ = nullptr;
  Subscription sub_;
};

}  // namespace pmsb::obs
