// Time-series sampling of the metrics registry: a bounded ring of per-sample
// snapshots taken on the Engine's existing metric grid (see
// Engine::set_metrics), so a bench can show *when* buffer pressure built up
// instead of one end-of-run aggregate.
//
// The sampler registers a sample hook on the registry and, each time the
// engine samples, records one row: the delta of every counter since the
// previous snapshot (registration order) and the freshly pulled value of
// every gauge. Deltas rather than absolutes: rows stay meaningful after the
// ring wraps, and counter *rates* are what a timeline renders.
//
// Because the engine replays metric-sample boundaries exactly when idle
// skipping (Engine::skip_to) and samples on the same grid at any thread
// count, the retained rows are bit-identical across PMSB_THREADS and
// PMSB_IDLE_SKIP -- so the exported `timeseries` section stays inside the
// determinism-diffed part of the BENCH JSON.
//
// Lifetime: the registry must outlive the sampler (the sampler unhooks in
// its destructor). Declare the registry first.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/util.hpp"
#include "obs/metrics.hpp"

namespace pmsb::obs {

class PerfettoTrace;

class TimeSeriesSampler {
 public:
  struct Row {
    Cycle t = 0;
    std::vector<std::uint64_t> counter_deltas;  ///< Since the previous snapshot.
    std::vector<double> gauges;                 ///< Values pulled at this sample.
  };

  /// Resolved export form: column names plus rows padded to full width (a
  /// counter registered mid-run yields zeros for earlier rows).
  struct Series {
    std::vector<std::string> counter_columns;
    std::vector<std::string> gauge_columns;
    std::vector<Row> rows;        ///< Oldest retained first.
    std::uint64_t dropped = 0;    ///< Rows lost to ring wrap.
  };

  /// Hooks into `m` (no-op if null or disabled; the sampler then stays
  /// empty, preserving the zero-cost-when-disabled contract).
  explicit TimeSeriesSampler(MetricsRegistry* m, std::size_t capacity = 512);
  ~TimeSeriesSampler();
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Take one snapshot now; normally invoked via the registry's sample hook.
  void snapshot(Cycle t);

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t dropped() const { return total_ - ring_.size(); }
  /// Row i of the retained window, 0 = oldest.
  const Row& at(std::size_t i) const;

  Series series() const;

  /// Render as Perfetto counter tracks: one track per component (metric-name
  /// prefix before the first '.'), that component's series as stacked args.
  /// Counter columns are suffixed "/delta" to distinguish them from gauges.
  void to_perfetto(PerfettoTrace& out) const;

 private:
  MetricsRegistry* reg_;
  std::uint64_t hook_id_ = 0;
  std::size_t capacity_;
  std::vector<Row> ring_;  ///< Insertion-ordered ring; head_ is the oldest.
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> prev_counters_;  ///< Absolutes at last snapshot.
};

}  // namespace pmsb::obs
