// Minimal streaming JSON writer (no external dependency): handles comma
// placement, string escaping, and non-finite doubles (emitted as null so the
// output always parses). Used by bench::BenchJson to emit the
// BENCH_<name>.json artifacts that form the repo's perf trajectory.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/util.hpp"

namespace pmsb::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Next value's key (only valid directly inside an object).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);  ///< NaN / inf are written as null.
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& null();

  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// True once every container opened has been closed and a top-level value
  /// was written.
  bool complete() const { return stack_.empty() && wrote_top_level_; }

  /// The document; asserts completeness (an unbalanced writer is a bug).
  const std::string& str() const;

 private:
  void before_value();
  void append_escaped(std::string_view s);

  std::string out_;
  std::vector<char> stack_;       ///< '{' or '[' per open container.
  bool comma_pending_ = false;    ///< A value/key needs a ',' first.
  bool key_pending_ = false;      ///< key() written, value must follow.
  bool wrote_top_level_ = false;
};

}  // namespace pmsb::obs
