// Per-slot invariant audit for the slot-level shared buffer, mirroring the
// cycle-accurate InvariantChecker in spirit: conservation, occupancy bounds,
// and drop-attribution consistency, independent of which admission policy
// is plugged in. Wired into run_slot_sim behind PMSB_CHECK=1.

#pragma once

#include "arch/shared_buffer.hpp"
#include "common/util.hpp"

namespace pmsb::check {

class SharedBufferAuditor {
 public:
  explicit SharedBufferAuditor(const SharedBufferModel& model) : model_(model) {}

  /// Aborts (PMSB_CHECK) on the first violated invariant:
  ///  - conservation: injected == delivered + dropped + resident
  ///  - resident matches the sum of the logical per-output queues
  ///  - resident never exceeds the pool capacity
  ///  - the drop-reason split and the per-output drop counters both sum
  ///    to the total drop count
  ///  - no queue exceeds the policy's static bound, if it declares one
  void after_step(Cycle slot) const;

 private:
  const SharedBufferModel& model_;
};

}  // namespace pmsb::check
