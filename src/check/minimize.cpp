#include "check/minimize.hpp"

#include <algorithm>

namespace pmsb::check {

namespace {

struct Budget {
  unsigned used = 0;
  unsigned max = 0;
  bool exhausted() const { return used >= max; }
};

/// One differential run against the shrink candidate; true iff it still
/// fails in the original category.
bool still_fails(const FuzzSpec& spec, const std::vector<ScheduledCell>& cells,
                 const std::string& category, Budget& budget, std::string* first_issue) {
  if (budget.exhausted()) return false;
  ++budget.used;
  const RunOutcome o = run(spec, cells);
  if (o.ok || issue_category(o.issues.front()) != category) return false;
  if (first_issue) *first_issue = o.issues.front();
  return true;
}

/// Greedy chunked removal: try dropping [pos, pos+chunk) for halving chunk
/// sizes, keeping every removal that preserves the failure category.
bool shrink_cells(FuzzSpec& spec, std::vector<ScheduledCell>& cells,
                  const std::string& category, Budget& budget, std::string* first_issue) {
  bool progress = false;
  for (std::size_t chunk = std::max<std::size_t>(1, cells.size() / 2); chunk >= 1;
       chunk /= 2) {
    std::size_t pos = 0;
    while (pos < cells.size() && !budget.exhausted()) {
      std::vector<ScheduledCell> candidate;
      candidate.reserve(cells.size());
      candidate.insert(candidate.end(), cells.begin(),
                       cells.begin() + static_cast<std::ptrdiff_t>(pos));
      candidate.insert(candidate.end(),
                       cells.begin() + static_cast<std::ptrdiff_t>(
                                           std::min(cells.size(), pos + chunk)),
                       cells.end());
      if (!candidate.empty() && still_fails(spec, candidate, category, budget, first_issue)) {
        cells = std::move(candidate);
        progress = true;
        // Do not advance: the next chunk now starts at `pos`.
      } else {
        pos += chunk;
      }
    }
    if (chunk == 1) break;
  }
  return progress;
}

/// Drop cells that no longer fit a reduced configuration.
std::vector<ScheduledCell> filter_ports(const std::vector<ScheduledCell>& cells, unsigned n) {
  std::vector<ScheduledCell> out;
  for (const ScheduledCell& c : cells) {
    if (c.input < n && c.dest < n) out.push_back(c);
  }
  return out;
}

/// Config bisection: one pass over the structural parameters, keeping every
/// reduction under which the failure category survives.
bool shrink_config(FuzzSpec& spec, std::vector<ScheduledCell>& cells,
                   const std::string& category, Budget& budget, std::string* first_issue) {
  bool progress = false;

  if (spec.segments > 1) {
    FuzzSpec s = spec;
    s.segments = 1;
    if (still_fails(s, cells, category, budget, first_issue)) {
      spec = s;
      progress = true;
    }
  }
  while (spec.capacity_cells > 2 && !budget.exhausted()) {
    FuzzSpec s = spec;
    s.capacity_cells = std::max(2u, spec.capacity_cells / 2);
    // Keep the shrunk config admissible (limit may not exceed capacity).
    s.out_queue_limit = std::min(s.out_queue_limit, s.capacity_cells);
    if (!still_fails(s, cells, category, budget, first_issue)) break;
    spec = s;
    progress = true;
  }
  while (spec.n > 2 && !budget.exhausted()) {
    FuzzSpec s = spec;
    s.n = spec.n / 2;
    std::vector<ScheduledCell> kept = filter_ports(cells, s.n);
    if (kept.empty() || !still_fails(s, kept, category, budget, first_issue)) break;
    spec = s;
    cells = std::move(kept);
    progress = true;
  }
  if (!cells.empty()) {
    unsigned max_slot = 0;
    for (const ScheduledCell& c : cells) max_slot = std::max(max_slot, c.slot);
    if (max_slot + 1 < spec.slots) {
      FuzzSpec s = spec;
      s.slots = max_slot + 1;
      if (still_fails(s, cells, category, budget, first_issue)) {
        spec = s;
        progress = true;
      }
    }
  }
  if (spec.out_queue_limit != 0) {
    FuzzSpec s = spec;
    s.out_queue_limit = 0;
    if (still_fails(s, cells, category, budget, first_issue)) {
      spec = s;
      progress = true;
    }
  }
  return progress;
}

}  // namespace

Repro minimize(const FuzzSpec& spec, std::vector<ScheduledCell> cells,
               const RunOutcome& outcome, unsigned max_runs, MinimizeStats* stats) {
  PMSB_CHECK(!outcome.ok && !outcome.issues.empty(), "minimize() needs a failing outcome");
  Repro repro;
  repro.spec = spec;
  repro.category = issue_category(outcome.issues.front());
  repro.first_issue = outcome.issues.front();

  Budget budget{0, max_runs};
  const std::size_t before = cells.size();
  std::string issue = repro.first_issue;

  bool progress = true;
  while (progress && !budget.exhausted()) {
    progress = shrink_cells(repro.spec, cells, repro.category, budget, &issue);
    progress = shrink_config(repro.spec, cells, repro.category, budget, &issue) || progress;
  }

  repro.cells = std::move(cells);
  repro.first_issue = issue;
  if (stats) {
    stats->runs = budget.used;
    stats->cells_before = before;
    stats->cells_after = repro.cells.size();
  }
  return repro;
}

}  // namespace pmsb::check
