#include "check/slot_invariants.hpp"

namespace pmsb::check {

void SharedBufferAuditor::after_step(Cycle slot) const {
  (void)slot;
  const FlowCounts& c = model_.counts();
  PMSB_CHECK(c.injected == c.delivered + c.dropped + model_.resident(),
             "shared buffer leaks cells: injected != delivered + dropped + resident");

  std::uint64_t queued = 0;
  for (unsigned o = 0; o < model_.ports(); ++o) queued += model_.queue_len(o);
  PMSB_CHECK(queued == model_.resident(), "resident count disagrees with queue lengths");

  PMSB_CHECK(model_.capacity() == 0 || model_.resident() <= model_.capacity(),
             "shared pool occupancy exceeds capacity");

  const SharedBufferModel::DropSplit& split = model_.drop_split();
  PMSB_CHECK(split.total() == c.dropped, "drop-reason split does not sum to total drops");
  std::uint64_t per_output = 0;
  for (std::uint64_t d : model_.drops_by_output()) per_output += d;
  PMSB_CHECK(per_output == c.dropped, "per-output drop counters do not sum to total drops");

  const std::size_t cap = model_.policy().hard_queue_cap();
  if (cap != 0) {
    for (unsigned o = 0; o < model_.ports(); ++o) {
      PMSB_CHECK(model_.queue_len(o) <= cap, "queue exceeds the policy's static bound");
    }
  }
}

}  // namespace pmsb::check
