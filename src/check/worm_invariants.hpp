// Wormhole-transport invariants, checked live inside every WormRouter when
// PMSB_CHECK=1 (check::env_enabled()):
//
//  * Per-lane FIFO bound: a (input, lane) FIFO never exceeds its credit
//    allotment (lane_depth = buffer_flits / lanes) -- the credit protocol's
//    whole guarantee.
//  * Per-lane message contiguity: flits of one message occupy a lane
//    back-to-back (head, seq 0..L-1, tail) with no interleaving -- the
//    virtual-channel allocator must hold a lane from head to tail.
//  * Per-output credit bound: returned credits never exceed lane_depth
//    (a credit overflow means a flit was double-counted somewhere).
//  * Flit conservation per router per cycle: every flit that entered
//    (accepted off a link or injected by a source) is either buffered in a
//    lane FIFO or has been forwarded/delivered -- flits_in == flits_out +
//    held, checked at the end of every eval.
//
// The auditor deliberately takes plain scalars (no fabric types) so the
// check layer stays below src/fabric in the include graph.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pmsb::check {

class WormAuditor {
 public:
  WormAuditor(unsigned ports, unsigned lanes, unsigned lane_depth, unsigned message_flits);

  /// A flit entered FIFO (in_port, lane); depth_after is its new size.
  void on_push(unsigned in_port, unsigned lane, bool head, bool tail, std::uint64_t msg,
               std::uint32_t seq, std::size_t depth_after);

  /// A credit returned for (out_port, lane); credits_after is the new count.
  void on_credit(unsigned out_port, unsigned lane, unsigned credits_after);

  /// End-of-eval conservation: flits accepted == flits forwarded + buffered.
  void on_cycle_end(std::uint64_t flits_in, std::uint64_t flits_out,
                    std::uint64_t held) const;

 private:
  struct LaneState {
    bool mid = false;  ///< Between a head and its tail.
    std::uint64_t msg = 0;
    std::uint32_t next_seq = 0;
  };

  unsigned lanes_;
  unsigned lane_depth_;
  unsigned message_flits_;
  std::vector<LaneState> in_lane_;  ///< [in_port * lanes + lane]
};

}  // namespace pmsb::check
