#include "check/repro.hpp"

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>

#include "obs/json_writer.hpp"

namespace pmsb::check {

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

std::string to_json(const Repro& r) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("pmsb_repro", 1);
  w.field("category", r.category);
  w.field("first_issue", r.first_issue);
  w.key("spec").begin_object();
  w.field("n", r.spec.n);
  w.field("segments", r.spec.segments);
  w.field("capacity_cells", r.spec.capacity_cells);
  w.field("out_queue_limit", r.spec.out_queue_limit);
  w.field("cut_through", r.spec.cut_through);
  w.field("pattern", r.spec.pattern);
  w.field("load", r.spec.load);
  w.field("hot_fraction", r.spec.hot_fraction);
  w.field("slots", r.spec.slots);
  w.field("seed", r.spec.seed);
  w.field("fault_suppress_write_period", r.spec.fault_suppress_write_period);
  w.end_object();
  w.key("cells").begin_array();
  for (const ScheduledCell& c : r.cells) {
    w.begin_array().value(c.input).value(c.slot).value(c.dest).end_array();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool write_repro_file(const Repro& r, const std::string& path, std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    if (err) *err = "cannot open " + path + " for writing";
    return false;
  }
  const std::string doc = to_json(r);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok && err) *err = "short write to " + path;
  return ok;
}

// ---------------------------------------------------------------------------
// Parsing (minimal strict JSON)
// ---------------------------------------------------------------------------

namespace {

/// JSON value tree. Numbers are kept as doubles (repro integers are small
/// enough for exact double representation).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue* out, std::string* err) {
    err_ = err;
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    if (err_ && err_->empty()) *err_ = msg + " (offset " + std::to_string(pos_) + ")";
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool expect(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool literal(const char* word, JsonValue* out, JsonValue::Kind kind, bool bval) {
    for (const char* p = word; *p; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return fail("bad literal");
    }
    out->kind = kind;
    out->b = bval;
    return true;
  }

  bool string(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("truncated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            // Repro documents only escape control characters; decode the
            // BMP code point as a raw byte when < 0x80, else reject.
            if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            if (code >= 0x80) return fail("non-ASCII \\u escape unsupported");
            out->push_back(static_cast<char>(code));
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    try {
      out->num = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return fail("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of document");
    const char c = s_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        out->kind = JsonValue::Kind::kObject;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          std::string key;
          if (!string(&key)) return false;
          if (!expect(':')) return false;
          JsonValue v;
          if (!value(&v)) return false;
          out->obj.emplace(std::move(key), std::move(v));
          skip_ws();
          if (pos_ < s_.size() && s_[pos_] == ',') {
            ++pos_;
            skip_ws();
            continue;
          }
          return expect('}');
        }
      }
      case '[': {
        ++pos_;
        out->kind = JsonValue::Kind::kArray;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          JsonValue v;
          if (!value(&v)) return false;
          out->arr.push_back(std::move(v));
          skip_ws();
          if (pos_ < s_.size() && s_[pos_] == ',') {
            ++pos_;
            continue;
          }
          return expect(']');
        }
      }
      case '"':
        out->kind = JsonValue::Kind::kString;
        return string(&out->str);
      case 't': return literal("true", out, JsonValue::Kind::kBool, true);
      case 'f': return literal("false", out, JsonValue::Kind::kBool, false);
      case 'n': return literal("null", out, JsonValue::Kind::kNull, false);
      default: return number(out);
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string* err_ = nullptr;
};

bool get_number(const JsonValue& obj, const char* key, double* out, std::string* err) {
  const auto it = obj.obj.find(key);
  if (it == obj.obj.end() || it->second.kind != JsonValue::Kind::kNumber) {
    if (err) *err = std::string("missing or non-numeric field \"") + key + "\"";
    return false;
  }
  *out = it->second.num;
  return true;
}

template <typename T>
bool get_uint(const JsonValue& obj, const char* key, T* out, std::string* err) {
  double d = 0.0;
  if (!get_number(obj, key, &d, err)) return false;
  if (d < 0 || d != static_cast<double>(static_cast<std::uint64_t>(d))) {
    if (err) *err = std::string("field \"") + key + "\" is not a non-negative integer";
    return false;
  }
  *out = static_cast<T>(d);
  return true;
}

}  // namespace

bool parse_repro(const std::string& json, Repro* out, std::string* err) {
  JsonValue root;
  std::string perr;
  JsonParser parser(json);
  if (!parser.parse(&root, &perr)) {
    if (err) *err = "malformed JSON: " + perr;
    return false;
  }
  if (root.kind != JsonValue::Kind::kObject) {
    if (err) *err = "repro document is not an object";
    return false;
  }
  unsigned version = 0;
  if (!get_uint(root, "pmsb_repro", &version, err)) return false;
  if (version != 1) {
    if (err) *err = "unsupported repro version " + std::to_string(version);
    return false;
  }
  const auto cat = root.obj.find("category");
  if (cat != root.obj.end() && cat->second.kind == JsonValue::Kind::kString) {
    out->category = cat->second.str;
  }
  const auto fi = root.obj.find("first_issue");
  if (fi != root.obj.end() && fi->second.kind == JsonValue::Kind::kString) {
    out->first_issue = fi->second.str;
  }

  const auto spec_it = root.obj.find("spec");
  if (spec_it == root.obj.end() || spec_it->second.kind != JsonValue::Kind::kObject) {
    if (err) *err = "missing \"spec\" object";
    return false;
  }
  const JsonValue& s = spec_it->second;
  FuzzSpec& spec = out->spec;
  if (!get_uint(s, "n", &spec.n, err) || !get_uint(s, "segments", &spec.segments, err) ||
      !get_uint(s, "capacity_cells", &spec.capacity_cells, err) ||
      !get_uint(s, "out_queue_limit", &spec.out_queue_limit, err) ||
      !get_uint(s, "pattern", &spec.pattern, err) ||
      !get_uint(s, "slots", &spec.slots, err) || !get_uint(s, "seed", &spec.seed, err) ||
      !get_uint(s, "fault_suppress_write_period", &spec.fault_suppress_write_period, err)) {
    return false;
  }
  if (!get_number(s, "load", &spec.load, err) ||
      !get_number(s, "hot_fraction", &spec.hot_fraction, err)) {
    return false;
  }
  const auto ct = s.obj.find("cut_through");
  if (ct == s.obj.end() || ct->second.kind != JsonValue::Kind::kBool) {
    if (err) *err = "missing boolean \"cut_through\"";
    return false;
  }
  spec.cut_through = ct->second.b;

  const auto cells_it = root.obj.find("cells");
  if (cells_it == root.obj.end() || cells_it->second.kind != JsonValue::Kind::kArray) {
    if (err) *err = "missing \"cells\" array";
    return false;
  }
  out->cells.clear();
  std::vector<long long> last_slot(out->spec.n, -1);
  for (const JsonValue& c : cells_it->second.arr) {
    if (c.kind != JsonValue::Kind::kArray || c.arr.size() != 3 ||
        c.arr[0].kind != JsonValue::Kind::kNumber ||
        c.arr[1].kind != JsonValue::Kind::kNumber ||
        c.arr[2].kind != JsonValue::Kind::kNumber) {
      if (err) *err = "cell entries must be [input, slot, dest] number triples";
      return false;
    }
    ScheduledCell cell;
    cell.input = static_cast<unsigned>(c.arr[0].num);
    cell.slot = static_cast<unsigned>(c.arr[1].num);
    cell.dest = static_cast<unsigned>(c.arr[2].num);
    if (cell.input >= out->spec.n || cell.dest >= out->spec.n ||
        cell.slot >= out->spec.slots) {
      if (err) *err = "cell entry out of range for the spec";
      return false;
    }
    if (static_cast<long long>(cell.slot) <= last_slot[cell.input]) {
      if (err) *err = "cells of one input must occupy strictly increasing slots";
      return false;
    }
    last_slot[cell.input] = cell.slot;
    out->cells.push_back(cell);
  }
  return true;
}

bool read_repro_file(const std::string& path, Repro* out, std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  return parse_repro(text, out, err);
}

ReplayResult replay(const Repro& r) {
  ReplayResult res;
  res.expected_category = r.category;
  res.outcome = run(r.spec, r.cells);
  res.reproduced = !res.outcome.ok &&
                   (r.category.empty() ||
                    issue_category(res.outcome.issues.front()) == r.category);
  return res;
}

bool replay_file(const std::string& path, ReplayResult* out, std::string* err) {
  Repro r;
  if (!read_repro_file(path, &r, err)) return false;
  *out = replay(r);
  return true;
}

}  // namespace pmsb::check
