#include "check/worm_invariants.hpp"

#include <string>

#include "common/util.hpp"

namespace pmsb::check {

WormAuditor::WormAuditor(unsigned ports, unsigned lanes, unsigned lane_depth,
                         unsigned message_flits)
    : lanes_(lanes), lane_depth_(lane_depth), message_flits_(message_flits) {
  in_lane_.resize(static_cast<std::size_t>(ports) * lanes);
}

void WormAuditor::on_push(unsigned in_port, unsigned lane, bool head, bool tail,
                          std::uint64_t msg, std::uint32_t seq, std::size_t depth_after) {
  PMSB_CHECK(depth_after <= lane_depth_,
             "worm lane FIFO exceeds its credit allotment (port " +
                 std::to_string(in_port) + " lane " + std::to_string(lane) + ")");
  LaneState& st = in_lane_[static_cast<std::size_t>(in_port) * lanes_ + lane];
  if (!st.mid) {
    PMSB_CHECK(head && seq == 0, "worm lane received a body flit with no message open");
    st.msg = msg;
    st.next_seq = 0;
  } else {
    PMSB_CHECK(!head, "worm lane received a head flit mid-message (interleaving)");
    PMSB_CHECK(msg == st.msg, "worm lane interleaved two messages");
  }
  PMSB_CHECK(seq == st.next_seq, "worm flit sequence gap within a message");
  ++st.next_seq;
  if (tail) {
    PMSB_CHECK(st.next_seq == message_flits_, "worm tail flit at the wrong length");
    st.mid = false;
  } else {
    st.mid = true;
  }
}

void WormAuditor::on_credit(unsigned out_port, unsigned lane, unsigned credits_after) {
  PMSB_CHECK(credits_after <= lane_depth_,
             "worm credit overflow (port " + std::to_string(out_port) + " lane " +
                 std::to_string(lane) + ")");
}

void WormAuditor::on_cycle_end(std::uint64_t flits_in, std::uint64_t flits_out,
                               std::uint64_t held) const {
  PMSB_CHECK(flits_in == flits_out + held, "worm router flit conservation violated");
}

}  // namespace pmsb::check
