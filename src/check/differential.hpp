// Differential verification harness: one randomized traffic schedule, many
// implementations of the same switching semantics.
//
// The paper gives three views of the shared-buffer switch that must agree:
// the word-level pipelined switch with either address-path organization
// (figures 7a/7b are "logically equivalent" circuits, section 3.3), the
// half-quantum dual organization (section 3.5), and the slot-level
// shared-buffer behavioural model of the section 2 comparison. The harness
// drives all of them from ONE deterministic cell schedule and compares:
//
//   * PipelinedSwitch(kPerStageDecoders) vs PipelinedSwitch(kDecodedPipeline)
//     -- bit-exact: per-output delivered-cell sequences, per-reason drop
//     counts, and the full per-cycle buffer-occupancy trajectory must match.
//   * PipelinedSwitch vs DualPipelinedSwitch -- same cells, different cell
//     quantum; per-(input,output) FIFO delivery sequences must match exactly
//     whenever no model dropped anything (drops depend on timing, so droppy
//     runs are compared per model by their own scoreboard + invariants).
//   * PipelinedSwitch vs FastSwitch (core/fast_switch.hpp) -- the behavioural
//     model used for cold fabric nodes; per-(input,output) FIFO sequences
//     match exactly on drop-free runs, drop counts statistically, and kNoSlot
//     (a latch-window artifact) must never occur.
//   * Cycle-accurate vs SharedBufferModel (slot-level) -- conservation is
//     exact, delivery counts exact on drop-free runs, drop counts compared
//     statistically (the slot abstraction rounds all timing to cell slots).
//
// Every cycle-accurate run carries a Scoreboard (end-to-end integrity) and
// an InvariantChecker (src/check/invariants.hpp); their findings are folded
// into the outcome. Any issue makes the run a failure that the minimizer
// (check/minimize.hpp) can shrink into a .repro.json.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cell.hpp"
#include "core/config.hpp"
#include "core/dual_switch.hpp"

namespace pmsb::check {

/// One randomized configuration point of the fuzz space. Everything needed
/// to regenerate a run is here + the cell schedule; both serialize into
/// .repro.json (check/repro.hpp).
struct FuzzSpec {
  unsigned n = 4;               ///< Ports (switch is n x n, S = 2n stages).
  unsigned segments = 1;        ///< m: cell_words = m * 2n.
  unsigned capacity_cells = 32; ///< Shared-buffer capacity in whole cells.
  unsigned out_queue_limit = 0; ///< Anti-hogging cap (0 = unlimited).
  bool cut_through = true;
  unsigned pattern = 0;         ///< 0 uniform, 1 permutation, 2 hotspot(output 0).
  double load = 0.6;            ///< Per-input Bernoulli arrival rate per slot.
  double hot_fraction = 0.5;    ///< Pattern 2 only.
  unsigned slots = 200;         ///< Schedule length in cell slots.
  std::uint64_t seed = 1;
  /// Fault injection into run A only (FaultPlan::suppress_write_grant_period):
  /// non-zero turns the run into a deliberately broken switch for
  /// demonstrating detection -> minimization -> replay.
  unsigned fault_suppress_write_period = 0;

  unsigned cell_words() const { return segments * 2 * n; }
  /// 16 tag bits so a schedule index (< 65536 cells) round-trips through the
  /// head word exactly -- deliveries are identified without ambiguity.
  CellFormat cell_format() const {
    return CellFormat{bits_for(n) + 16, bits_for(n), cell_words()};
  }
  CellFormat dual_cell_format() const { return CellFormat{bits_for(n) + 16, bits_for(n), n}; }
  SwitchConfig switch_config() const;
  DualSwitchConfig dual_config() const;
};

/// One scheduled cell: input `input` starts a cell in slot `slot` (head word
/// on the wire at cycle slot * L + 1 for a model with L-word cells). The
/// schedule index doubles as the cell uid.
struct ScheduledCell {
  unsigned input = 0;
  unsigned slot = 0;
  unsigned dest = 0;
};

/// Deterministic schedule for `spec`: per-slot Bernoulli(load) arrivals per
/// input with the spec's destination pattern, all derived from spec.seed.
std::vector<ScheduledCell> generate_cells(const FuzzSpec& spec);

/// Per-model tallies (reporting; also serialized into repro files).
struct ModelSummary {
  std::string model;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t violations = 0;  ///< Invariant-checker findings (cycle models).
};

struct RunOutcome {
  bool ok = true;
  /// Human-readable findings, each prefixed by category: "invariant:",
  /// "scoreboard:", "diff:", or "harness:". The first issue's category is
  /// what the minimizer preserves while shrinking.
  std::vector<std::string> issues;
  std::vector<ModelSummary> summaries;
};

/// Run every model over `cells` and cross-check. Deterministic: same spec +
/// cells always produce the same outcome.
RunOutcome run(const FuzzSpec& spec, const std::vector<ScheduledCell>& cells);

/// generate_cells + run.
RunOutcome run(const FuzzSpec& spec);

/// Category prefix of an issue string ("invariant", "diff", ...).
std::string issue_category(const std::string& issue);

}  // namespace pmsb::check
