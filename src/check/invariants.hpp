// Always-on machine checking of the paper's structural invariants.
//
// The paper's central claims about the pipelined-memory shared buffer are
// *invariants*, not statistics: at most one wave initiation per cycle at M0
// (section 3.2), every accepted cell's write wave initiated within the 2n-cycle
// latch window so input latches are never clobbered (section 3.2, DESIGN.md
// invariant 2), staggered output-row initiation (section 3.4), automatic
// cut-through only when legal (section 3.3), and exact conservation of cells
// and buffer addresses. This checker turns each of them into a per-cycle
// machine-checked property:
//
//   * it subscribes to the switch's EventHub to observe every
//     head/accept/drop/read-grant as it happens, and
//   * it registers as an Engine CycleObserver so that after every commit
//     phase it can cross-reference the free list, reservation table, and
//     output queues -- the only moment the cross-component conservation
//     equations are meaningful.
//
// Violations are *recorded*, never aborted on: they increment per-invariant
// obs::MetricsRegistry counters, push a kViolation TraceBuffer record carrying
// the violating cycle and a state digest, and retain the first 64 messages for
// reporting. The differential harness (check/differential.hpp) and the fuzz
// corpus (tools/fuzz_differential) treat any violation as a failure.
//
// Cost: nothing unless attached. Attachment is opt-in per run -- Testbench
// attaches automatically when the PMSB_CHECK environment variable (or the
// pmsb_check CMake option) is set, so production bench numbers are untouched.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dual_switch.hpp"
#include "core/switch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_buffer.hpp"
#include "sim/engine.hpp"

namespace pmsb::check {

/// True when invariant checking was requested for this process: the
/// PMSB_CHECK environment variable is set to a non-empty, non-"0" value, or
/// the library was compiled with -DPMSB_CHECK_DEFAULT_ON (the `pmsb_check`
/// CMake option) and the variable does not override it to "0".
bool env_enabled();

/// The enforced invariants, each with its paper reference (DESIGN.md
/// "Verification" lists the exact statements).
enum class Invariant : std::uint8_t {
  kSingleInitiation,    ///< <= 1 M0 wave initiation per cycle (section 3.2).
  kWriteWindow,         ///< a0 < t0 <= a0 + S: write wave inside the latch window.
  kAddressExclusivity,  ///< Free list == queued + reserved addresses, no aliasing.
  kConservation,        ///< arrived = accepted + dropped(by reason) + pending;
                        ///< accepted = departed + queued.
  kOutputStagger,       ///< Per-output initiations >= L cycles apart; <= 1
                        ///< transmission start per cycle (section 3.4).
  kCutThrough,          ///< Cut-through flag and snoop legality (section 3.3).
  kDropReason,          ///< kNoSlot never occurs for single-segment cells.
};

inline constexpr std::size_t kInvariantCount = 7;

const char* to_string(Invariant inv);

/// One recorded violation (the first 64 are retained verbatim).
struct Violation {
  Cycle cycle = 0;
  Invariant invariant = Invariant::kSingleInitiation;
  std::uint32_t digest = 0;  ///< mix64 digest of the violating cycle's state.
  std::string message;
};

class InvariantChecker : public CycleObserver {
 public:
  InvariantChecker() = default;

  /// Hook a cycle-accurate switch: subscribes to its EventHub (coexisting
  /// with scoreboards, fabric bridges, and any other subscriber) and
  /// registers with the engine's post-commit observer list. Attach exactly
  /// once.
  void attach(PipelinedSwitch& sw, Engine& engine);
  void attach(DualPipelinedSwitch& sw, Engine& engine);

  /// Per-invariant violation counters under `prefix`.violations.<name>.
  void register_metrics(obs::MetricsRegistry& m, const std::string& prefix = "check");

  /// Push a kViolation record per violation (arg = Invariant id, addr =
  /// state digest). Null detaches.
  void set_trace(obs::TraceBuffer* tb) { trace_ = tb; }

  bool ok() const { return total_ == 0; }
  std::uint64_t total_violations() const { return total_; }
  std::uint64_t count(Invariant inv) const {
    return per_invariant_[static_cast<std::size_t>(inv)];
  }
  /// First 64 violations, in order of detection.
  const std::vector<Violation>& violations() const { return violations_; }

  // CycleObserver: the per-cycle structural checks.
  void on_cycle_end(Cycle t) override;

 private:
  void on_head(unsigned input, Cycle a0, unsigned dest);
  void on_accept(unsigned input, Cycle a0, Cycle t0);
  void on_drop(unsigned input, Cycle a0, DropReason why);
  void on_read_grant(unsigned output, unsigned input, Cycle tr, Cycle t0, Cycle a0,
                     bool cut);

  void check_conservation(Cycle t, const SwitchStats& s, unsigned pending,
                          std::size_t queued);
  void check_initiation_rate(Cycle t, const SwitchStats& s);
  void check_address_exclusivity(Cycle t);

  void violate(Cycle t, Invariant inv, std::string msg);
  std::uint32_t state_digest(Cycle t) const;

  void init_common(unsigned n_ports, unsigned stages, unsigned segments,
                   Cycle cell_len, bool cut_through, Engine& engine);
  SwitchEvents make_events();

  PipelinedSwitch* psw_ = nullptr;
  DualPipelinedSwitch* dsw_ = nullptr;
  Subscription events_sub_;  ///< Our slot on the DUT's EventHub.

  unsigned n_ = 0;        ///< Ports.
  unsigned S_ = 0;        ///< Stages (2n single organization, n dual).
  unsigned m_ = 0;        ///< Segments per cell.
  Cycle cell_len_ = 0;    ///< Cell length in cycles (= minimum read spacing).
  bool cut_through_allowed_ = true;

  // Shadow state accumulated from events, cross-checked against SwitchStats.
  std::uint64_t ev_heads_ = 0;
  std::uint64_t ev_accepts_ = 0;
  std::uint64_t ev_drops_[3] = {0, 0, 0};  ///< Indexed by DropReason.
  std::uint64_t ev_read_grants_ = 0;
  std::vector<Cycle> last_read_grant_;     ///< Per output; -1 = never.
  Cycle last_grant_cycle_ = -1;
  unsigned grants_in_cycle_ = 0;

  // Previous-cycle counter snapshots for rate checks.
  std::uint64_t prev_mem_inits_ = 0;
  std::uint64_t prev_write_inits_ = 0;
  std::uint64_t prev_read_inits_ = 0;
  std::uint64_t prev_snoop_inits_ = 0;

  // Scratch for the address-exclusivity walk (no per-cycle allocation).
  std::vector<std::uint8_t> addr_refs_;
  std::vector<std::uint8_t> addr_marked_;

  std::vector<Violation> violations_;
  std::uint64_t total_ = 0;
  std::uint64_t per_invariant_[kInvariantCount] = {};
  obs::TraceBuffer* trace_ = nullptr;
  obs::Counter* counters_[kInvariantCount] = {};
};

}  // namespace pmsb::check
