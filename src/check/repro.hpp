// .repro.json serialization and replay of minimized failing runs.
//
// A repro file is self-contained: the FuzzSpec, the explicit cell schedule
// (so replay does not depend on the traffic generator's RNG staying
// bit-compatible), and the failure category it witnesses. Written by the
// fuzzer (tools/fuzz_differential) after minimization, consumed by
// tools/replay_repro and by the regression test suite.
//
// The reader is a deliberately small strict JSON parser -- the repo has no
// external JSON dependency, and repro files are tiny.

#pragma once

#include <string>
#include <vector>

#include "check/differential.hpp"
#include "check/minimize.hpp"

namespace pmsb::check {

/// Serialize to the .repro.json document (schema key "pmsb_repro": 1).
std::string to_json(const Repro& r);

/// Write to_json(r) to `path`. False + *err on I/O failure.
bool write_repro_file(const Repro& r, const std::string& path, std::string* err);

/// Parse a .repro.json document. False + *err on malformed input.
bool parse_repro(const std::string& json, Repro* out, std::string* err);

/// Read + parse `path`.
bool read_repro_file(const std::string& path, Repro* out, std::string* err);

struct ReplayResult {
  bool reproduced = false;     ///< Run failed again in the recorded category.
  std::string expected_category;
  RunOutcome outcome;
};

/// Re-run a repro's differential check.
ReplayResult replay(const Repro& r);

/// read_repro_file + replay. False + *err if the file cannot be loaded.
bool replay_file(const std::string& path, ReplayResult* out, std::string* err);

}  // namespace pmsb::check
