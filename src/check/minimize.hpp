// Failure minimizer: shrink a failing differential run to a small,
// replayable witness.
//
// When the fuzzer finds a spec + schedule whose differential run fails, the
// raw witness is typically hundreds of cells on a large configuration --
// useless for debugging. minimize() applies
//
//   1. greedy chunked cell removal (delta debugging, halving chunk sizes
//      down to single cells), and
//   2. config bisection: fewer segments per cell, smaller buffer capacity,
//      fewer ports (dropping cells that no longer fit), fewer slots,
//
// re-running the differential harness after each candidate reduction and
// keeping it only if the run still fails *in the same category* as the
// original failure (issue_category of the first issue), so shrinking never
// wanders to an unrelated failure. The result serializes to .repro.json
// (check/repro.hpp) and replays via tools/replay_repro.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/differential.hpp"

namespace pmsb::check {

/// A replayable failing run: the (possibly shrunk) spec and schedule plus
/// the failure it reproduces.
struct Repro {
  FuzzSpec spec;
  std::vector<ScheduledCell> cells;
  std::string category;  ///< issue_category of the first issue ("invariant", ...).
  std::string first_issue;
};

struct MinimizeStats {
  unsigned runs = 0;           ///< Differential runs spent shrinking.
  std::size_t cells_before = 0;
  std::size_t cells_after = 0;
};

/// Shrink a known-failing (spec, cells) pair. `outcome` must be the failing
/// run's result (outcome.ok == false). `max_runs` bounds the shrink effort;
/// the original failure is always preserved, so minimize() never returns a
/// passing repro.
Repro minimize(const FuzzSpec& spec, std::vector<ScheduledCell> cells,
               const RunOutcome& outcome, unsigned max_runs = 400,
               MinimizeStats* stats = nullptr);

}  // namespace pmsb::check
