#include "check/invariants.hpp"

#include <cstdlib>

#include "common/rng.hpp"

namespace pmsb::check {

bool env_enabled() {
  const char* v = std::getenv("PMSB_CHECK");
#ifdef PMSB_CHECK_DEFAULT_ON
  return v == nullptr || (v[0] != '0' && v[0] != '\0');
#else
  return v != nullptr && v[0] != '\0' && v[0] != '0';
#endif
}

const char* to_string(Invariant inv) {
  switch (inv) {
    case Invariant::kSingleInitiation: return "single_initiation";
    case Invariant::kWriteWindow: return "write_window";
    case Invariant::kAddressExclusivity: return "address_exclusivity";
    case Invariant::kConservation: return "conservation";
    case Invariant::kOutputStagger: return "output_stagger";
    case Invariant::kCutThrough: return "cut_through";
    case Invariant::kDropReason: return "drop_reason";
  }
  return "?";
}

SwitchEvents InvariantChecker::make_events() {
  SwitchEvents ev;
  ev.on_head = [this](unsigned i, Cycle a0, unsigned dest) { on_head(i, a0, dest); };
  ev.on_accept = [this](unsigned i, Cycle a0, Cycle t0) { on_accept(i, a0, t0); };
  ev.on_drop = [this](unsigned i, Cycle a0, DropReason why) { on_drop(i, a0, why); };
  ev.on_read_grant = [this](unsigned o, unsigned i, Cycle tr, Cycle t0, Cycle a0,
                            bool cut) { on_read_grant(o, i, tr, t0, a0, cut); };
  return ev;
}

void InvariantChecker::init_common(unsigned n_ports, unsigned stages, unsigned segments,
                                   Cycle cell_len, bool cut_through, Engine& engine) {
  PMSB_CHECK(psw_ == nullptr && dsw_ == nullptr, "invariant checker attached twice");
  n_ = n_ports;
  S_ = stages;
  m_ = segments;
  cell_len_ = cell_len;
  cut_through_allowed_ = cut_through;
  last_read_grant_.assign(n_ports, -1);
  engine.add_cycle_observer(this);
}

void InvariantChecker::attach(PipelinedSwitch& sw, Engine& engine) {
  const SwitchConfig& cfg = sw.config();
  init_common(cfg.n_ports, cfg.stages(), cfg.segments_per_cell(),
              static_cast<Cycle>(cfg.cell_words), cfg.cut_through, engine);
  psw_ = &sw;
  addr_refs_.assign(cfg.capacity_segments, 0);
  addr_marked_.assign(cfg.capacity_segments, 0);
  events_sub_ = sw.events().subscribe(make_events());
}

void InvariantChecker::attach(DualPipelinedSwitch& sw, Engine& engine) {
  const DualSwitchConfig& cfg = sw.config();
  init_common(cfg.n_ports, cfg.stages(), 1, static_cast<Cycle>(cfg.cell_words()),
              cfg.cut_through, engine);
  dsw_ = &sw;
  events_sub_ = sw.events().subscribe(make_events());
}

void InvariantChecker::register_metrics(obs::MetricsRegistry& m, const std::string& prefix) {
  for (std::size_t i = 0; i < kInvariantCount; ++i) {
    counters_[i] =
        m.counter(prefix + ".violations." + to_string(static_cast<Invariant>(i)));
  }
}

std::uint32_t InvariantChecker::state_digest(Cycle t) const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(t);
  const SwitchStats* s = psw_ ? &psw_->stats() : (dsw_ ? &dsw_->stats() : nullptr);
  if (s != nullptr) {
    h = mix64(h ^ s->heads_seen);
    h = mix64(h ^ s->accepted);
    h = mix64(h ^ s->dropped());
    h = mix64(h ^ s->read_grants);
  }
  if (psw_) h = mix64(h ^ (static_cast<std::uint64_t>(psw_->buffer_in_use()) << 32 |
                           psw_->queued_cells()));
  if (dsw_) h = mix64(h ^ (static_cast<std::uint64_t>(dsw_->buffer_in_use()) << 32 |
                           dsw_->queued_cells()));
  return static_cast<std::uint32_t>(h);
}

void InvariantChecker::violate(Cycle t, Invariant inv, std::string msg) {
  ++total_;
  ++per_invariant_[static_cast<std::size_t>(inv)];
  if (counters_[static_cast<std::size_t>(inv)]) {
    counters_[static_cast<std::size_t>(inv)]->inc();
  }
  const std::uint32_t digest = state_digest(t);
  if (trace_) {
    trace_->push({t, obs::TraceEvent::kViolation, 0, 0, digest,
                  static_cast<std::uint32_t>(inv)});
  }
  if (violations_.size() < 64) {
    violations_.push_back(Violation{t, inv, digest,
                                    "cycle " + std::to_string(t) + ": " + std::move(msg)});
  }
}

void InvariantChecker::on_head(unsigned, Cycle, unsigned) { ++ev_heads_; }

void InvariantChecker::on_accept(unsigned input, Cycle a0, Cycle t0) {
  ++ev_accepts_;
  if (t0 <= a0 || t0 > a0 + static_cast<Cycle>(S_)) {
    violate(t0, Invariant::kWriteWindow,
            "write wave for input " + std::to_string(input) + " at t0=" +
                std::to_string(t0) + " outside window (a0=" + std::to_string(a0) +
                ", S=" + std::to_string(S_) + "]");
  }
}

void InvariantChecker::on_drop(unsigned input, Cycle a0, DropReason why) {
  const auto idx = static_cast<std::size_t>(why);
  if (idx < 3) ++ev_drops_[idx];
  if (why == DropReason::kNoSlot && m_ == 1) {
    violate(a0 + static_cast<Cycle>(S_), Invariant::kDropReason,
            "kNoSlot drop for a single-segment cell (input " + std::to_string(input) +
                ", a0=" + std::to_string(a0) +
                "): the arbiter broke the write-window guarantee");
  }
}

void InvariantChecker::on_read_grant(unsigned output, unsigned input, Cycle tr, Cycle t0,
                                     Cycle a0, bool cut) {
  ++ev_read_grants_;
  if (tr == last_grant_cycle_) {
    if (++grants_in_cycle_ > 1) {
      violate(tr, Invariant::kOutputStagger,
              "two packet transmissions started in one cycle (shared output row)");
    }
  } else {
    last_grant_cycle_ = tr;
    grants_in_cycle_ = 1;
  }
  if (output < last_read_grant_.size()) {
    const Cycle last = last_read_grant_[output];
    if (last >= 0 && tr - last < cell_len_) {
      violate(tr, Invariant::kOutputStagger,
              "output " + std::to_string(output) + " re-initiated after " +
                  std::to_string(tr - last) + " < L=" + std::to_string(cell_len_) +
                  " cycles");
    }
    last_read_grant_[output] = tr;
  }
  if (tr < t0) {
    violate(tr, Invariant::kCutThrough,
            "read wave initiated before the cell's write wave (tr=" + std::to_string(tr) +
                " < t0=" + std::to_string(t0) + ")");
  }
  if (tr <= a0) {
    violate(tr, Invariant::kCutThrough,
            "read wave initiated before the head word was latched (input " +
                std::to_string(input) + ")");
  }
  const bool expect_cut = tr < a0 + cell_len_ - 1;
  if (cut != expect_cut) {
    violate(tr, Invariant::kCutThrough,
            std::string("cut-through flag ") + (cut ? "set" : "clear") +
                " but tail arrival says otherwise (tr=" + std::to_string(tr) +
                ", a0=" + std::to_string(a0) + ", L=" + std::to_string(cell_len_) + ")");
  }
  if (tr == t0 && !cut_through_allowed_) {
    violate(tr, Invariant::kCutThrough, "snooping read granted with cut-through disabled");
  }
}

void InvariantChecker::check_initiation_rate(Cycle t, const SwitchStats& s) {
  const std::uint64_t dw = s.write_initiations - prev_write_inits_;
  const std::uint64_t dr = s.read_initiations - prev_read_inits_;
  const std::uint64_t ds = s.snoop_initiations - prev_snoop_inits_;
  if (psw_) {
    const std::uint64_t mem = psw_->memory().initiations();
    const std::uint64_t dm = mem - prev_mem_inits_;
    if (dm > 1) {
      violate(t, Invariant::kSingleInitiation,
              std::to_string(dm) + " wave initiations at M0 in one cycle");
    }
    if (dw + dr + ds != dm) {
      violate(t, Invariant::kSingleInitiation,
              "stats initiation count disagrees with the memory (" +
                  std::to_string(dw + dr + ds) + " vs " + std::to_string(dm) + ")");
    }
    prev_mem_inits_ = mem;
  } else {
    // Dual organization (section 3.5): one read from one group plus one
    // write (or write+snoop) into the other -- never two of the same kind.
    if (dr > 1) {
      violate(t, Invariant::kSingleInitiation,
              std::to_string(dr) + " read initiations in one cycle (dual)");
    }
    if (dw + ds > 1) {
      violate(t, Invariant::kSingleInitiation,
              std::to_string(dw + ds) + " write initiations in one cycle (dual)");
    }
  }
  prev_write_inits_ = s.write_initiations;
  prev_read_inits_ = s.read_initiations;
  prev_snoop_inits_ = s.snoop_initiations;
}

void InvariantChecker::check_conservation(Cycle t, const SwitchStats& s, unsigned pending,
                                          std::size_t queued) {
  if (s.heads_seen != s.accepted + s.dropped() + pending) {
    violate(t, Invariant::kConservation,
            "cell conservation broken: heads=" + std::to_string(s.heads_seen) +
                " != accepted=" + std::to_string(s.accepted) + " + dropped=" +
                std::to_string(s.dropped()) + " + pending=" + std::to_string(pending));
  }
  if (s.accepted != s.read_grants + queued) {
    violate(t, Invariant::kConservation,
            "buffered-cell conservation broken: accepted=" + std::to_string(s.accepted) +
                " != departed=" + std::to_string(s.read_grants) + " + queued=" +
                std::to_string(queued));
  }
  if (ev_heads_ != s.heads_seen || ev_accepts_ != s.accepted ||
      ev_read_grants_ != s.read_grants) {
    violate(t, Invariant::kConservation,
            "event stream disagrees with stats (heads " + std::to_string(ev_heads_) + "/" +
                std::to_string(s.heads_seen) + ", accepts " + std::to_string(ev_accepts_) +
                "/" + std::to_string(s.accepted) + ", reads " +
                std::to_string(ev_read_grants_) + "/" + std::to_string(s.read_grants) + ")");
  }
  if (ev_drops_[0] != s.dropped_no_addr || ev_drops_[1] != s.dropped_no_slot ||
      ev_drops_[2] != s.dropped_out_limit) {
    violate(t, Invariant::kConservation,
            "per-reason drop events disagree with stats (" + std::to_string(ev_drops_[0]) +
                "/" + std::to_string(s.dropped_no_addr) + ", " +
                std::to_string(ev_drops_[1]) + "/" + std::to_string(s.dropped_no_slot) +
                ", " + std::to_string(ev_drops_[2]) + "/" +
                std::to_string(s.dropped_out_limit) + ")");
  }
}

void InvariantChecker::check_address_exclusivity(Cycle t) {
  const FreeList& fl = psw_->free_list();
  const auto cap = fl.total();
  addr_refs_.assign(cap, 0);
  addr_marked_.assign(cap, 0);

  psw_->out_queues().for_each([&](unsigned output, const BufferedCell& c) {
    for (std::uint32_t a : c.seg_addrs) {
      if (a >= cap) {
        violate(t, Invariant::kAddressExclusivity,
                "queued cell for output " + std::to_string(output) +
                    " references out-of-range address " + std::to_string(a));
        continue;
      }
      addr_marked_[a] = 1;
      if (!fl.is_allocated(a)) {
        violate(t, Invariant::kAddressExclusivity,
                "queued cell for output " + std::to_string(output) +
                    " references free address " + std::to_string(a));
      }
      if (++addr_refs_[a] > 1) {
        violate(t, Invariant::kAddressExclusivity,
                "address " + std::to_string(a) + " aliased by two queued cells");
      }
    }
  });

  psw_->reservations().for_each([&](Cycle slot, const SlotOp& op) {
    if (slot <= t) {
      violate(t, Invariant::kAddressExclusivity,
              "stale reservation at cycle " + std::to_string(slot) + " never consumed");
      return;
    }
    if (op.has_write) {
      if (op.w_addr >= cap || !fl.is_allocated(op.w_addr)) {
        violate(t, Invariant::kAddressExclusivity,
                "write reserved at cycle " + std::to_string(slot) +
                    " targets unallocated address " + std::to_string(op.w_addr));
      } else {
        addr_marked_[op.w_addr] = 1;
      }
    }
    if (op.has_read) {
      if (op.r_addr >= cap || !fl.is_allocated(op.r_addr)) {
        violate(t, Invariant::kAddressExclusivity,
                "read reserved at cycle " + std::to_string(slot) +
                    " targets unallocated address " + std::to_string(op.r_addr));
      } else {
        addr_marked_[op.r_addr] = 1;
        // A read-only slot belongs to a departing (popped) cell; its address
        // must not simultaneously belong to a queued cell.
        if (!op.has_write && ++addr_refs_[op.r_addr] > 1) {
          violate(t, Invariant::kAddressExclusivity,
                  "departing segment address " + std::to_string(op.r_addr) +
                      " aliased by a queued cell");
        }
      }
    }
  });

  // Leak sweep: every allocated address must be accounted for by a queued
  // cell or an outstanding reservation. (Referenced-but-free was already
  // reported in the walks above.)
  for (std::uint32_t a = 0; a < cap; ++a) {
    if (fl.is_allocated(a) && addr_marked_[a] == 0) {
      violate(t, Invariant::kAddressExclusivity,
              "address " + std::to_string(a) +
                  " allocated but referenced by no queue or reservation (leak)");
    }
  }
}

void InvariantChecker::on_cycle_end(Cycle t) {
  if (psw_ != nullptr) {
    check_initiation_rate(t, psw_->stats());
    check_conservation(t, psw_->stats(), psw_->pending_cells(), psw_->queued_cells());
    check_address_exclusivity(t);
  } else if (dsw_ != nullptr) {
    check_initiation_rate(t, dsw_->stats());
    check_conservation(t, dsw_->stats(), dsw_->pending_cells(), dsw_->queued_cells());
  }
}

}  // namespace pmsb::check
