#include "check/differential.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <optional>
#include <unordered_map>
#include <type_traits>

#include "arch/shared_buffer.hpp"
#include "check/invariants.hpp"
#include "common/rng.hpp"
#include "core/fast_switch.hpp"
#include "core/scoreboard.hpp"
#include "core/switch.hpp"
#include "sim/engine.hpp"
#include "traffic/generators.hpp"

namespace pmsb::check {

SwitchConfig FuzzSpec::switch_config() const {
  SwitchConfig cfg;
  cfg.n_ports = n;
  cfg.word_bits = bits_for(n) + 16;
  cfg.cell_words = cell_words();
  cfg.capacity_segments = capacity_cells * segments;
  cfg.cut_through = cut_through;
  cfg.out_queue_limit = out_queue_limit;
  return cfg;
}

DualSwitchConfig FuzzSpec::dual_config() const {
  DualSwitchConfig cfg;
  cfg.n_ports = n;
  cfg.word_bits = bits_for(n) + 16;
  // Split the same total cell capacity across the two memory groups.
  cfg.capacity_segments_per_group = (capacity_cells + 1) / 2;
  cfg.cut_through = cut_through;
  return cfg;
}

std::vector<ScheduledCell> generate_cells(const FuzzSpec& spec) {
  PMSB_CHECK(spec.n >= 2 && spec.slots > 0, "fuzz spec needs n >= 2 and slots > 0");
  PMSB_CHECK(static_cast<std::uint64_t>(spec.slots) * spec.n < 65536,
             "schedule too large: uids must fit the 16 head-word tag bits");
  Rng seeder(spec.seed);
  std::unique_ptr<DestPattern> dests;
  switch (spec.pattern) {
    case 1: {
      Rng r = seeder.split();
      dests = std::make_unique<PermutationDest>(random_permutation(spec.n, r));
      break;
    }
    case 2:
      dests = std::make_unique<HotspotDest>(spec.n, 0, spec.hot_fraction);
      break;
    default:
      dests = std::make_unique<UniformDest>(spec.n);
      break;
  }
  std::vector<Rng> per_input;
  per_input.reserve(spec.n);
  for (unsigned i = 0; i < spec.n; ++i) per_input.push_back(seeder.split());

  std::vector<ScheduledCell> cells;
  for (unsigned s = 0; s < spec.slots; ++s) {
    for (unsigned i = 0; i < spec.n; ++i) {
      if (!per_input[i].next_bool(spec.load)) continue;
      cells.push_back(ScheduledCell{i, s, dests->pick(i, per_input[i])});
    }
  }
  return cells;
}

std::string issue_category(const std::string& issue) {
  const auto pos = issue.find(':');
  return pos == std::string::npos ? issue : issue.substr(0, pos);
}

namespace {

/// Drives one input link with the exact cells of a schedule: cell k starts
/// at a fixed cycle (slot * L), head word on the wire one cycle later --
/// the same wire protocol as CellSource, but fully deterministic so every
/// model sees the identical arrival process.
class ReplaySource : public Component {
 public:
  struct Entry {
    std::uint64_t uid;
    unsigned dest;
    Cycle start;  ///< eval cycle that drives the head (on wire at start+1).
  };

  ReplaySource(unsigned input, WireLink* link, const CellFormat& fmt)
      : input_(input), link_(link), fmt_(fmt) {}

  /// Entries must be appended in increasing, non-overlapping start order.
  void add(std::uint64_t uid, unsigned dest, Cycle start) {
    PMSB_CHECK(entries_.empty() ||
                   start >= entries_.back().start + static_cast<Cycle>(fmt_.length_words),
               "replay cells overlap on one input link");
    entries_.push_back(Entry{uid, dest, start});
  }

  void set_on_inject(std::function<void(const CellSource::Injection&)> cb) {
    on_inject_ = std::move(cb);
  }

  bool done() const { return next_ == entries_.size() && !sending_; }

  void eval(Cycle t) override {
    if (sending_) {
      link_->drive_next(Flit{true, false, cell_word(uid_, dest_, word_idx_, fmt_)});
      if (++word_idx_ == fmt_.length_words) sending_ = false;
      return;
    }
    if (next_ < entries_.size() && t == entries_[next_].start) {
      const Entry& e = entries_[next_++];
      uid_ = e.uid;
      dest_ = e.dest;
      word_idx_ = 1;
      sending_ = fmt_.length_words > 1;
      link_->drive_next(Flit{true, true, cell_word(uid_, dest_, 0, fmt_)});
      if (on_inject_) on_inject_(CellSource::Injection{uid_, input_, dest_, t + 1});
    }
  }
  void commit(Cycle) override {}
  bool has_commit() const override { return false; }
  std::string name() const override { return "replay_source"; }

 private:
  unsigned input_;
  WireLink* link_;
  CellFormat fmt_;
  std::vector<Entry> entries_;
  std::size_t next_ = 0;

  bool sending_ = false;
  unsigned word_idx_ = 0;
  std::uint64_t uid_ = 0;
  unsigned dest_ = 0;
  std::function<void(const CellSource::Injection&)> on_inject_;
};

/// Per-cycle buffer-occupancy sampler (the exact-trajectory half of the
/// figure 7a/7b equivalence check).
template <typename SwitchT>
class OccupancyProbe : public CycleObserver {
 public:
  explicit OccupancyProbe(const SwitchT* sw) : sw_(sw) {}
  void on_cycle_end(Cycle) override { trace_.push_back(sw_->buffer_in_use()); }
  const std::vector<std::uint32_t>& trace() const { return trace_; }

 private:
  const SwitchT* sw_;
  std::vector<std::uint32_t> trace_;
};

struct CycleRunResult {
  std::vector<std::vector<std::uint64_t>> per_output;  ///< Delivered uids, in order.
  std::vector<std::uint32_t> occupancy;
  SwitchStats stats;
  std::vector<std::string> issues;
  std::uint64_t violations = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
};

template <typename SwitchT, typename ConfigT>
CycleRunResult run_cycle_model(const ConfigT& cfg, const CellFormat& fmt, const FuzzSpec& spec,
                               const std::vector<ScheduledCell>& cells, AddrPathMode mode,
                               const FaultPlan& fault, const std::string& label) {
  CycleRunResult res;
  res.per_output.resize(spec.n);

  SwitchT sw(cfg, mode);
  if constexpr (std::is_same_v<SwitchT, PipelinedSwitch>) {
    if (!fault.none()) sw.set_fault_plan(fault);
  }
  Engine engine;
  Scoreboard sb(spec.n, spec.n, fmt);

  const Cycle L = static_cast<Cycle>(fmt.length_words);
  std::vector<std::unique_ptr<ReplaySource>> sources;
  std::vector<std::unique_ptr<CellSink>> sinks;
  for (unsigned i = 0; i < spec.n; ++i) {
    sources.push_back(std::make_unique<ReplaySource>(i, &sw.in_link(i), fmt));
    sources.back()->set_on_inject(
        [&sb](const CellSource::Injection& inj) { sb.on_inject(inj); });
  }
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const ScheduledCell& c = cells[k];
    sources.at(c.input)->add(static_cast<std::uint64_t>(k), c.dest,
                             static_cast<Cycle>(c.slot) * L);
  }
  for (unsigned o = 0; o < spec.n; ++o) {
    sinks.push_back(std::make_unique<CellSink>(o, &sw.out_link(o), fmt));
    sinks.back()->set_on_deliver([&res, &sb, &fmt](const CellSink::Delivery& d) {
      sb.on_deliver(d);
      res.per_output.at(d.output).push_back(decode_tag(d.words[0], fmt));
    });
  }
  SwitchEvents ev;
  ev.on_accept = [&sb](unsigned i, Cycle a0, Cycle t0) { sb.on_accept(i, a0, t0); };
  ev.on_drop = [&sb](unsigned i, Cycle a0, DropReason why) { sb.on_drop(i, a0, why); };
  const Subscription sb_sub = sw.events().subscribe(std::move(ev));

  InvariantChecker checker;
  checker.attach(sw, engine);  // Its own subscription; coexists with sb_sub.
  OccupancyProbe<SwitchT> probe(&sw);
  engine.add_cycle_observer(&probe);

  for (auto& s : sources) engine.add(s.get());
  engine.add(&sw);
  for (auto& s : sinks) engine.add(s.get());

  // Fixed-length run: schedule + worst-case drain (a full buffer serves one
  // cell per output per L cycles) + wire/sink flush. Fixed length keeps the
  // occupancy trajectories of compared runs index-aligned.
  const Cycle total = static_cast<Cycle>(spec.slots) * L +
                      static_cast<Cycle>(spec.capacity_cells + 2) * L + 4 * spec.n + 32;
  engine.run(total);

  res.stats = sw.stats();
  res.occupancy = probe.trace();
  res.violations = checker.total_violations();
  res.injected = sb.injected();
  res.delivered = sb.delivered();
  for (const Violation& v : checker.violations()) {
    res.issues.push_back("invariant: [" + label + "] " + to_string(v.invariant) + ": " +
                         v.message);
  }
  for (const std::string& e : sb.errors()) {
    res.issues.push_back("scoreboard: [" + label + "] " + e);
  }
  if (!sw.drained() || !sb.fully_drained()) {
    res.issues.push_back("harness: [" + label + "] not drained after " +
                         std::to_string(total) + " cycles");
  }
  for (const auto& s : sources) {
    if (!s->done()) {
      res.issues.push_back("harness: [" + label + "] source did not finish its schedule");
      break;
    }
  }
  return res;
}

/// The behavioural FastSwitch over the same schedule, with the same wire
/// protocol, scoreboard, and fixed run length as the cycle-accurate runs --
/// but no invariant checker or occupancy probe (the fast model has none of
/// the checked structures; its occupancy is slot-shaped by design).
CycleRunResult run_fast_model(const SwitchConfig& cfg, const CellFormat& fmt,
                              const FuzzSpec& spec, const std::vector<ScheduledCell>& cells) {
  const std::string label = "fast";
  CycleRunResult res;
  res.per_output.resize(spec.n);

  FastSwitch sw(cfg);
  Engine engine;
  Scoreboard sb(spec.n, spec.n, fmt);

  const Cycle L = static_cast<Cycle>(fmt.length_words);
  std::vector<std::unique_ptr<ReplaySource>> sources;
  std::vector<std::unique_ptr<CellSink>> sinks;
  for (unsigned i = 0; i < spec.n; ++i) {
    sources.push_back(std::make_unique<ReplaySource>(i, &sw.in_link(i), fmt));
    sources.back()->set_on_inject(
        [&sb](const CellSource::Injection& inj) { sb.on_inject(inj); });
  }
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const ScheduledCell& c = cells[k];
    sources.at(c.input)->add(static_cast<std::uint64_t>(k), c.dest,
                             static_cast<Cycle>(c.slot) * L);
  }
  for (unsigned o = 0; o < spec.n; ++o) {
    sinks.push_back(std::make_unique<CellSink>(o, &sw.out_link(o), fmt));
    sinks.back()->set_on_deliver([&res, &sb, &fmt](const CellSink::Delivery& d) {
      sb.on_deliver(d);
      res.per_output.at(d.output).push_back(decode_tag(d.words[0], fmt));
    });
  }
  SwitchEvents ev;
  ev.on_accept = [&sb](unsigned i, Cycle a0, Cycle t0) { sb.on_accept(i, a0, t0); };
  ev.on_drop = [&sb](unsigned i, Cycle a0, DropReason why) { sb.on_drop(i, a0, why); };
  const Subscription sb_sub = sw.events().subscribe(std::move(ev));

  for (auto& s : sources) engine.add(s.get());
  engine.add(&sw);
  for (auto& s : sinks) engine.add(s.get());

  const Cycle total = static_cast<Cycle>(spec.slots) * L +
                      static_cast<Cycle>(spec.capacity_cells + 2) * L + 4 * spec.n + 32;
  engine.run(total);

  res.stats = sw.stats();
  res.injected = sb.injected();
  res.delivered = sb.delivered();
  for (const std::string& e : sb.errors()) {
    res.issues.push_back("scoreboard: [" + label + "] " + e);
  }
  if (!sw.drained() || !sb.fully_drained()) {
    res.issues.push_back("harness: [" + label + "] not drained after " +
                         std::to_string(total) + " cycles");
  }
  for (const auto& s : sources) {
    if (!s->done()) {
      res.issues.push_back("harness: [" + label + "] source did not finish its schedule");
      break;
    }
  }
  return res;
}

void diff_exact_pair(const CycleRunResult& a, const CycleRunResult& b, unsigned n,
                     std::vector<std::string>& issues) {
  for (unsigned o = 0; o < n; ++o) {
    const auto& sa = a.per_output[o];
    const auto& sb = b.per_output[o];
    const std::size_t len = std::min(sa.size(), sb.size());
    for (std::size_t i = 0; i < len; ++i) {
      if (sa[i] != sb[i]) {
        issues.push_back("diff: [7a-vs-7b] output " + std::to_string(o) + " delivery " +
                         std::to_string(i) + " differs: uid " + std::to_string(sa[i]) +
                         " vs " + std::to_string(sb[i]));
        break;
      }
    }
    if (sa.size() != sb.size()) {
      issues.push_back("diff: [7a-vs-7b] output " + std::to_string(o) + " delivered " +
                       std::to_string(sa.size()) + " vs " + std::to_string(sb.size()) +
                       " cells");
    }
  }
  if (a.stats.dropped_no_addr != b.stats.dropped_no_addr ||
      a.stats.dropped_no_slot != b.stats.dropped_no_slot ||
      a.stats.dropped_out_limit != b.stats.dropped_out_limit) {
    issues.push_back("diff: [7a-vs-7b] per-reason drop counts differ: (" +
                     std::to_string(a.stats.dropped_no_addr) + "," +
                     std::to_string(a.stats.dropped_no_slot) + "," +
                     std::to_string(a.stats.dropped_out_limit) + ") vs (" +
                     std::to_string(b.stats.dropped_no_addr) + "," +
                     std::to_string(b.stats.dropped_no_slot) + "," +
                     std::to_string(b.stats.dropped_out_limit) + ")");
  }
  const std::size_t len = std::min(a.occupancy.size(), b.occupancy.size());
  for (std::size_t t = 0; t < len; ++t) {
    if (a.occupancy[t] != b.occupancy[t]) {
      issues.push_back("diff: [7a-vs-7b] occupancy trajectories diverge at cycle " +
                       std::to_string(t) + ": " + std::to_string(a.occupancy[t]) + " vs " +
                       std::to_string(b.occupancy[t]));
      break;
    }
  }
}

/// Per-(input,output) FIFO sequences from per-output delivery order.
///
/// What a sink decodes from a delivered head word is not the schedule index
/// itself but its 16-bit avalanche tag (cell_word mixes the id before
/// packing). Bug fix: this used to look the tag up as if it WERE the index,
/// which always missed and silently bucketed every delivery under input 0 --
/// turning the documented per-(input,output) check into a per-output
/// total-order check. Inverting the mix over the schedule restores the
/// intended bucketing. (Tag collisions would merge two cells' buckets; both
/// compared runs use the same mapping, so the check stays deterministic.)
std::vector<std::vector<std::uint64_t>> pair_sequences(
    const CycleRunResult& r, const std::vector<ScheduledCell>& cells, const CellFormat& fmt,
    unsigned n) {
  std::unordered_map<std::uint64_t, unsigned> input_of_tag;
  input_of_tag.reserve(cells.size());
  for (std::size_t k = 0; k < cells.size(); ++k) {
    input_of_tag[mix64(k) & low_mask(fmt.tag_bits())] = cells[k].input;
  }
  std::vector<std::vector<std::uint64_t>> pairs(static_cast<std::size_t>(n) * n);
  for (unsigned o = 0; o < n; ++o) {
    for (std::uint64_t uid : r.per_output[o]) {
      const auto it = input_of_tag.find(uid);
      const unsigned input = it != input_of_tag.end() ? it->second : 0;
      pairs[static_cast<std::size_t>(input) * n + o].push_back(uid);
    }
  }
  return pairs;
}

}  // namespace

RunOutcome run(const FuzzSpec& spec, const std::vector<ScheduledCell>& cells) {
  RunOutcome out;
  const CellFormat fmt = spec.cell_format();
  const CellFormat dual_fmt = spec.dual_cell_format();
  const SwitchConfig cfg = spec.switch_config();
  const DualSwitchConfig dual_cfg = spec.dual_config();
  try {
    cfg.validate();
    dual_cfg.validate();
  } catch (const std::exception& e) {
    // An inadmissible spec (e.g. hand-edited repro file) is a harness issue,
    // not a model divergence -- report it instead of terminating.
    out.issues.push_back(std::string("harness: config rejected: ") + e.what());
    out.ok = false;
    return out;
  }

  FaultPlan fault;
  fault.suppress_write_grant_period = spec.fault_suppress_write_period;

  // Run A carries the (optional) injected fault; B and D are reference runs.
  CycleRunResult a = run_cycle_model<PipelinedSwitch>(cfg, fmt, spec, cells,
                                                      AddrPathMode::kDecodedPipeline, fault,
                                                      "pipelined-7b");
  CycleRunResult b = run_cycle_model<PipelinedSwitch>(cfg, fmt, spec, cells,
                                                      AddrPathMode::kPerStageDecoders,
                                                      FaultPlan{}, "pipelined-7a");
  CycleRunResult d = run_cycle_model<DualPipelinedSwitch>(dual_cfg, dual_fmt, spec, cells,
                                                          AddrPathMode::kDecodedPipeline,
                                                          FaultPlan{}, "dual");
  CycleRunResult f = run_fast_model(cfg, fmt, spec, cells);

  for (auto* r : {&a, &b, &d, &f}) {
    for (std::string& s : r->issues) out.issues.push_back(std::move(s));
  }

  // Exact pair: the two address-path organizations of the same switch.
  diff_exact_pair(a, b, spec.n, out.issues);

  // Pipelined vs dual: exact per-(input,output) FIFO equality on drop-free
  // runs (drop timing is organization-specific, so droppy runs are covered
  // per model by their own scoreboard + invariant checks).
  if (fault.none() && a.stats.dropped() == 0 && d.stats.dropped() == 0) {
    const auto pa = pair_sequences(a, cells, fmt, spec.n);
    const auto pd = pair_sequences(d, cells, fmt, spec.n);
    for (std::size_t p = 0; p < pa.size(); ++p) {
      if (pa[p] != pd[p]) {
        out.issues.push_back(
            "diff: [pipelined-vs-dual] (input " + std::to_string(p / spec.n) + ", output " +
            std::to_string(p % spec.n) + ") FIFO sequences differ on a drop-free run");
      }
    }
  }

  // Pipelined vs fast model: same pinning discipline as the dual switch --
  // exact per-(input,output) FIFO equality whenever neither dropped (both
  // preserve each pair's arrival order; drop *timing* is model-specific).
  if (fault.none() && a.stats.dropped() == 0 && f.stats.dropped() == 0) {
    const auto pa = pair_sequences(a, cells, fmt, spec.n);
    const auto pf = pair_sequences(f, cells, fmt, spec.n);
    for (std::size_t p = 0; p < pa.size(); ++p) {
      if (pa[p] != pf[p]) {
        out.issues.push_back(
            "diff: [pipelined-vs-fast] (input " + std::to_string(p / spec.n) + ", output " +
            std::to_string(p % spec.n) + ") FIFO sequences differ on a drop-free run");
      }
    }
  }
  // The fast model admits at head arrival: the kNoSlot class (a latch-window
  // artifact of the pipelined datapath) must never appear.
  if (f.stats.dropped_no_slot != 0) {
    out.issues.push_back("diff: [fast] behavioural model produced " +
                         std::to_string(f.stats.dropped_no_slot) + " kNoSlot drops");
  }
  // Droppy runs: statistical comparison under the same regime guard as the
  // slot model below (the fast model's buffer occupancy has no wave-level
  // address recycling, so the same two regimes are excluded).
  if (fault.none() && spec.out_queue_limit == 0 && spec.capacity_cells >= spec.n) {
    const std::uint64_t tol =
        std::max<std::uint64_t>(16, static_cast<std::uint64_t>(0.25 * cells.size()));
    const std::uint64_t cyc = a.stats.dropped();
    const std::uint64_t fst = f.stats.dropped();
    const std::uint64_t delta = cyc > fst ? cyc - fst : fst - cyc;
    if (delta > tol) {
      out.issues.push_back("diff: [fast] drop counts diverge beyond tolerance: cycle " +
                           std::to_string(cyc) + " vs fast " + std::to_string(fst) +
                           " (tol " + std::to_string(tol) + ")");
    }
  }

  // Slot-level shared-buffer model over the same schedule.
  SharedBufferModel slot_model(spec.n, spec.capacity_cells, spec.out_queue_limit);
  {
    std::vector<std::optional<SlotTraffic::Arrival>> arrivals(spec.n);
    std::size_t k = 0;
    const Cycle drain_slots = static_cast<Cycle>(spec.capacity_cells) + 4;
    for (Cycle s = 0; s < static_cast<Cycle>(spec.slots) + drain_slots; ++s) {
      std::fill(arrivals.begin(), arrivals.end(), std::nullopt);
      while (k < cells.size() && cells[k].slot == static_cast<unsigned>(s)) {
        arrivals[cells[k].input] = SlotTraffic::Arrival{cells[k].dest};
        ++k;
      }
      slot_model.step(s, arrivals);
    }
  }
  const FlowCounts& sc = slot_model.counts();
  if (sc.injected != cells.size()) {
    out.issues.push_back("harness: slot model saw " + std::to_string(sc.injected) +
                         " arrivals for a schedule of " + std::to_string(cells.size()));
  }
  if (sc.injected != sc.delivered + sc.dropped + slot_model.resident()) {
    out.issues.push_back("diff: [slot] conservation broken: injected " +
                         std::to_string(sc.injected) + " != delivered " +
                         std::to_string(sc.delivered) + " + dropped " +
                         std::to_string(sc.dropped) + " + resident " +
                         std::to_string(slot_model.resident()));
  }
  if (fault.none()) {
    if (a.stats.dropped() == 0 && sc.dropped == 0 && sc.delivered != a.delivered) {
      out.issues.push_back("diff: [slot] drop-free delivery counts differ: slot " +
                           std::to_string(sc.delivered) + " vs cycle " +
                           std::to_string(a.delivered));
    }
    // The slot abstraction rounds all timing to whole cell slots, so droppy
    // runs are compared statistically: gross divergence means one of the
    // models mis-accounts cells, small deltas are abstraction noise. Two
    // spec regimes make the comparison meaningless rather than noisy, so
    // they are skipped (drops there stay covered bit-exactly by the
    // 7a-vs-7b diff above):
    //  * a binding out_queue_limit -- the slot model sees a same-slot burst
    //    at full queue depth and drops it, while the cycle switch staggers
    //    the arrivals and starts draining immediately;
    //  * capacity < n -- the cycle switch recycles a buffer address as soon
    //    as the read wave initiates behind the write wave, so a handful of
    //    addresses sustain a full-width same-slot burst at line rate (the
    //    paper's statistical multiplexing at word granularity), where the
    //    slot model holds every resident cell for whole slots and drops.
    if (spec.out_queue_limit == 0 && spec.capacity_cells >= spec.n) {
      const std::uint64_t tol =
          std::max<std::uint64_t>(16, static_cast<std::uint64_t>(0.25 * sc.injected));
      const std::uint64_t cyc = a.stats.dropped();
      const std::uint64_t delta = cyc > sc.dropped ? cyc - sc.dropped : sc.dropped - cyc;
      if (delta > tol) {
        out.issues.push_back("diff: [slot] drop counts diverge beyond tolerance: cycle " +
                             std::to_string(cyc) + " vs slot " + std::to_string(sc.dropped) +
                             " (tol " + std::to_string(tol) + ")");
      }
    }
  }

  out.summaries.push_back(ModelSummary{"pipelined-7b", a.injected, a.delivered,
                                       a.stats.dropped(), a.violations});
  out.summaries.push_back(ModelSummary{"pipelined-7a", b.injected, b.delivered,
                                       b.stats.dropped(), b.violations});
  out.summaries.push_back(ModelSummary{"dual", d.injected, d.delivered, d.stats.dropped(),
                                       d.violations});
  out.summaries.push_back(ModelSummary{"fast", f.injected, f.delivered, f.stats.dropped(), 0});
  out.summaries.push_back(ModelSummary{"slot", sc.injected, sc.delivered, sc.dropped, 0});
  out.ok = out.issues.empty();
  return out;
}

RunOutcome run(const FuzzSpec& spec) { return run(spec, generate_cells(spec)); }

}  // namespace pmsb::check
