// Traffic generation.
//
// Two granularities:
//  * Word-level (CellSource / CellSink): Components that drive/observe the
//    cycle-accurate switches' links one word per cycle, with framing. Load p
//    is the fraction of cycles the link carries data.
//  * Slot-level (SlotTraffic): per-cell-slot arrival processes for the
//    behavioural architecture models of src/arch (one slot = one cell time).
//
// Destination patterns cover the paper's evaluation workloads: uniform
// (sections 2, 3.4), permutation (contention-free), hotspot (stress), and
// fixed (directed tests).

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/cell.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/wire.hpp"
#include "stats/stats.hpp"

namespace pmsb {

// ---------------------------------------------------------------------------
// Destination patterns
// ---------------------------------------------------------------------------

/// Chooses an output for each new cell from input `src`.
class DestPattern {
 public:
  virtual ~DestPattern() = default;
  virtual unsigned pick(unsigned src, Rng& rng) = 0;
};

/// Uniformly random over all n outputs.
class UniformDest : public DestPattern {
 public:
  explicit UniformDest(unsigned n) : n_(n) {}
  unsigned pick(unsigned, Rng& rng) override { return static_cast<unsigned>(rng.next_below(n_)); }

 private:
  unsigned n_;
};

/// Fixed permutation: input i always sends to perm[i] (contention-free when
/// perm is a bijection).
class PermutationDest : public DestPattern {
 public:
  explicit PermutationDest(std::vector<unsigned> perm) : perm_(std::move(perm)) {}
  unsigned pick(unsigned src, Rng&) override { return perm_.at(src); }

 private:
  std::vector<unsigned> perm_;
};

/// Hotspot: probability `hot_fraction` to the hot output, else uniform.
class HotspotDest : public DestPattern {
 public:
  HotspotDest(unsigned n, unsigned hot, double hot_fraction)
      : n_(n), hot_(hot), frac_(hot_fraction) {}
  unsigned pick(unsigned, Rng& rng) override {
    if (rng.next_bool(frac_)) return hot_;
    return static_cast<unsigned>(rng.next_below(n_));
  }

 private:
  unsigned n_;
  unsigned hot_;
  double frac_;
};

/// Hot senders (tree saturation, sender-resolved): a `frac` share of the
/// inputs -- every round(1/frac)-th, never the hot output itself -- send
/// *all* their traffic to the hot output; every other input sends uniform
/// background over the non-hot outputs. Unlike HotspotDest, background
/// sources never generate hot-destined traffic themselves, so their carried
/// throughput isolates in-network head-of-line blocking behind the
/// saturated hot tree -- the quantity virtual channels rescue.
class HotSendersDest : public DestPattern {
 public:
  HotSendersDest(unsigned n, unsigned hot, double frac)
      : n_(n), hot_(hot),
        every_(frac >= 1.0 ? 1u : static_cast<unsigned>(1.0 / frac + 0.5)) {}
  unsigned pick(unsigned src, Rng& rng) override {
    if (src % every_ == every_ - 1 || n_ <= 1) return hot_;
    unsigned d = static_cast<unsigned>(rng.next_below(n_ - 1));
    if (d >= hot_) ++d;  // background: uniform over the non-hot outputs
    return d;
  }

 private:
  unsigned n_;
  unsigned hot_;
  unsigned every_;
};

/// Incast: inputs 0..fan_in-1 all converge on the `sink` output (the
/// many-to-one datacenter pattern); the remaining inputs spread uniformly
/// over the other outputs.
class IncastDest : public DestPattern {
 public:
  IncastDest(unsigned n, unsigned sink, unsigned fan_in)
      : n_(n), sink_(sink), fan_in_(fan_in) {}
  unsigned pick(unsigned src, Rng& rng) override {
    if (src < fan_in_ || n_ <= 1) return sink_;
    unsigned d = static_cast<unsigned>(rng.next_below(n_ - 1));
    if (d >= sink_) ++d;  // uniform over outputs other than the sink
    return d;
  }

 private:
  unsigned n_;
  unsigned sink_;
  unsigned fan_in_;
};

// ---------------------------------------------------------------------------
// Word-level source / sink for the cycle-accurate switches
// ---------------------------------------------------------------------------

/// Arrival process shape for CellSource.
enum class ArrivalKind {
  kGeometric,  ///< Idle gaps are geometric; cell heads are unsynchronized
               ///< across links (the section 3.4 analysis assumes this).
  kSlotted,    ///< Cells may start only at multiples of the cell length; all
               ///< links share slot boundaries (maximal head collisions).
  kSaturated,  ///< Back-to-back cells, load 1.0.
};

/// Drives one input link of a cycle-accurate switch with framed cells.
class CellSource : public Component {
 public:
  struct Injection {
    std::uint64_t uid;
    unsigned input;
    unsigned dest;
    Cycle head_on_wire;  ///< Cycle the head word occupies the link.
  };

  CellSource(unsigned input, WireLink* link, const CellFormat& fmt, DestPattern* dests,
             ArrivalKind kind, double load, Rng rng);

  /// Called at the moment a cell's head is driven (for scoreboards).
  void set_on_inject(std::function<void(const Injection&)> cb) { on_inject_ = std::move(cb); }

  /// Stop starting new cells (a cell in progress still completes).
  void set_enabled(bool on) { enabled_ = on; }

  std::uint64_t cells_injected() const { return cells_injected_; }

  void eval(Cycle t) override;
  void commit(Cycle t) override;
  bool has_commit() const override { return false; }
  bool is_quiescent(Cycle t) const override;
  Cycle next_wake(Cycle t) const override;
  void skip(Cycle t, Cycle n) override;
  std::string name() const override { return "cell_source"; }

 private:
  void begin_gap();

  unsigned input_;
  WireLink* link_;
  CellFormat fmt_;
  DestPattern* dests_;
  ArrivalKind kind_;
  double load_;
  Rng rng_;
  bool enabled_ = true;

  // Sender state.
  bool sending_ = false;
  unsigned word_idx_ = 0;
  std::uint64_t uid_ = 0;
  unsigned dest_ = 0;
  Cycle gap_left_ = 0;

  std::uint64_t next_seq_ = 0;
  std::uint64_t cells_injected_ = 0;
  std::function<void(const Injection&)> on_inject_;
};

/// Observes one output link: re-assembles cells, checks framing, and hands
/// completed cells to a callback.
class CellSink : public Component {
 public:
  struct Delivery {
    unsigned output;
    std::vector<Word> words;
    Cycle head_cycle;  ///< Cycle the head word was on the output wire.
    Cycle tail_cycle;
  };

  CellSink(unsigned output, WireLink* link, const CellFormat& fmt);

  void set_on_deliver(std::function<void(const Delivery&)> cb) { on_deliver_ = std::move(cb); }

  std::uint64_t cells_delivered() const { return cells_delivered_; }

  void eval(Cycle t) override;
  void commit(Cycle t) override;
  bool has_commit() const override { return false; }
  bool is_quiescent(Cycle) const override { return !receiving_ && !link_->now().valid; }
  std::string name() const override { return "cell_sink"; }

 private:
  unsigned output_;
  WireLink* link_;
  CellFormat fmt_;

  bool receiving_ = false;
  std::vector<Word> words_;
  Cycle head_cycle_ = 0;

  std::uint64_t cells_delivered_ = 0;
  std::function<void(const Delivery&)> on_deliver_;
};

// ---------------------------------------------------------------------------
// Slot-level arrivals for the behavioural models
// ---------------------------------------------------------------------------

/// One arrival decision per input per slot: Bernoulli(p) with a destination
/// pattern, or bursty on/off (geometric burst lengths, all cells of a burst
/// to one destination -- the classic bursty-traffic model).
class SlotTraffic {
 public:
  struct Arrival {
    unsigned dest;
  };

  /// Bernoulli arrivals at rate `load`.
  SlotTraffic(unsigned n_inputs, double load, DestPattern* dests, Rng rng);

  /// Bursty on/off arrivals: mean burst `mean_burst` cells (geometric), one
  /// destination per burst; off periods sized so the average rate is `load`.
  static SlotTraffic bursty(unsigned n_inputs, double load, double mean_burst,
                            DestPattern* dests, Rng rng);

  /// Heavy-tailed bursty arrivals: burst lengths from a bounded discrete
  /// Pareto with the given tail `shape` (> 1) and mean `mean_burst` cells,
  /// one destination per burst, geometric off gaps sized so the average
  /// rate is `load`. Inputs start with independent gaps (desynchronized).
  static SlotTraffic bursty_pareto(unsigned n_inputs, double load, double mean_burst,
                                   double shape, DestPattern* dests, Rng rng);

  /// Arrivals for this slot, indexed by input (nullopt = no arrival).
  const std::vector<std::optional<Arrival>>& step();

  double offered_load() const { return load_; }
  std::uint64_t arrivals_so_far() const { return arrivals_; }

 private:
  enum class Burstiness { kNone, kGeometric, kPareto };

  SlotTraffic(unsigned n_inputs, double load, double mean_burst, Burstiness mode,
              DestPattern* dests, Rng rng);

  struct BurstState {
    bool in_burst = false;
    unsigned dest = 0;
  };

  /// Pareto-mode per-input state: slots of silence left, then cells of the
  /// current burst left.
  struct ParetoState {
    Cycle gap_left = 0;
    std::uint64_t burst_left = 0;
    unsigned dest = 0;
  };

  std::uint64_t draw_pareto_len();

  unsigned n_;
  double load_;
  Burstiness mode_ = Burstiness::kNone;
  double p_start_ = 0.0;  ///< Off->on transition probability (geometric mode).
  double p_stop_ = 0.0;   ///< On->off transition probability (geometric mode).
  double pareto_xm_ = 0.0;     ///< Pareto scale (minimum burst, pre-rounding).
  double pareto_shape_ = 0.0;  ///< Pareto tail index.
  double p_gap_ = 0.0;         ///< Geometric off-gap success probability.
  DestPattern* dests_;
  Rng rng_;
  std::vector<BurstState> burst_;
  std::vector<ParetoState> pareto_;
  std::vector<std::optional<Arrival>> slot_;
  std::uint64_t arrivals_ = 0;
};

/// A bijective shuffle of {0..n-1} (for PermutationDest).
std::vector<unsigned> random_permutation(unsigned n, Rng& rng);

}  // namespace pmsb
