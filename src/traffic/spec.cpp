#include "traffic/spec.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace pmsb::traffic {
namespace {

[[noreturn]] void bad(const std::string& text, const std::string& why) {
  throw std::invalid_argument("bad traffic spec \"" + text + "\": " + why);
}

/// The comma-separated numbers after the colon, as doubles.
std::vector<double> parse_args(const std::string& text, const std::string& rest,
                               std::size_t max_args) {
  std::vector<double> out;
  std::stringstream ss(rest);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) bad(text, "empty argument");
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') bad(text, "not a number: \"" + tok + "\"");
    out.push_back(v);
  }
  if (out.size() > max_args) bad(text, "too many arguments");
  return out;
}

double checked_load(const std::string& text, double v) {
  if (v < 0.0 || v > 1.0) bad(text, "load must be in [0, 1]");
  return v;
}

}  // namespace

GeneratorSpec GeneratorSpec::parse(const std::string& text) {
  const std::size_t colon = text.find(':');
  const std::string name = text.substr(0, colon);
  const std::string rest = colon == std::string::npos ? "" : text.substr(colon + 1);
  if (colon != std::string::npos && rest.empty()) bad(text, "trailing colon");

  GeneratorSpec spec;
  if (name == "uniform" || name == "permutation") {
    spec.kind = name == "uniform" ? Kind::kUniform : Kind::kPermutation;
    const auto args = parse_args(text, rest, 1);
    if (args.size() >= 1) spec.load = checked_load(text, args[0]);
  } else if (name == "hotspot" || name == "hotsenders") {
    spec.kind = name == "hotspot" ? Kind::kHotspot : Kind::kHotSenders;
    const auto args = parse_args(text, rest, 2);
    if (args.empty()) bad(text, "hotspot needs a fraction (" + name + ":FRAC[,LOAD])");
    if (args[0] <= 0.0 || args[0] > 1.0) bad(text, "hotspot fraction must be in (0, 1]");
    spec.hot_fraction = args[0];
    if (args.size() >= 2) spec.load = checked_load(text, args[1]);
  } else if (name == "incast") {
    spec.kind = Kind::kIncast;
    const auto args = parse_args(text, rest, 2);
    if (args.empty()) bad(text, "incast needs a fan-in (incast:FAN[,LOAD])");
    if (args[0] < 1.0 || args[0] != static_cast<unsigned>(args[0]))
      bad(text, "incast fan-in must be a positive integer");
    spec.fan_in = static_cast<unsigned>(args[0]);
    if (args.size() >= 2) spec.load = checked_load(text, args[1]);
  } else if (name == "bursty") {
    spec.kind = Kind::kBursty;
    const auto args = parse_args(text, rest, 2);
    if (args.empty()) bad(text, "bursty needs a load (bursty:LOAD[,MEAN_BURST])");
    spec.load = checked_load(text, args[0]);
    if (args.size() >= 2) {
      if (args[1] < 1.0) bad(text, "mean burst must be >= 1");
      spec.mean_burst = args[1];
    }
  } else if (name == "pareto") {
    spec.kind = Kind::kPareto;
    const auto args = parse_args(text, rest, 3);
    if (args.empty()) bad(text, "pareto needs a load (pareto:LOAD[,SHAPE[,MEAN_BURST]])");
    spec.load = checked_load(text, args[0]);
    if (args.size() >= 2) {
      if (args[1] <= 1.0) bad(text, "pareto shape must be > 1");
      spec.shape = args[1];
    }
    if (args.size() >= 3) {
      if (args[2] < 1.0) bad(text, "mean burst must be >= 1");
      spec.mean_burst = args[2];
    }
  } else {
    bad(text, "unknown kind \"" + name + "\"");
  }
  return spec;
}

std::string GeneratorSpec::describe() const {
  const auto num = [](double v) {
    std::ostringstream os;
    os << v;
    return os.str();
  };
  std::string s;
  switch (kind) {
    case Kind::kUniform: s = "uniform"; break;
    case Kind::kPermutation: s = "permutation"; break;
    case Kind::kHotspot: s = "hotspot:" + num(hot_fraction); break;
    case Kind::kHotSenders: s = "hotsenders:" + num(hot_fraction); break;
    case Kind::kIncast: s = "incast:" + std::to_string(fan_in); break;
    case Kind::kBursty: s = "bursty:" + num(load.value_or(0.0)) + "," + num(mean_burst); break;
    case Kind::kPareto:
      return "pareto:" + num(load.value_or(0.0)) + "," + num(shape) + "," + num(mean_burst);
  }
  if (kind == Kind::kBursty) return s;
  if (load.has_value()) {
    s += (kind == Kind::kHotspot || kind == Kind::kHotSenders || kind == Kind::kIncast)
             ? ","
             : ":";
    s += num(*load);
  }
  return s;
}

std::unique_ptr<DestPattern> GeneratorSpec::make_dest(unsigned n, Rng& rng) const {
  switch (kind) {
    case Kind::kPermutation:
      return std::make_unique<PermutationDest>(random_permutation(n, rng));
    case Kind::kHotspot:
      return std::make_unique<HotspotDest>(n, /*hot=*/0, hot_fraction);
    case Kind::kHotSenders:
      return std::make_unique<HotSendersDest>(n, /*hot=*/0, hot_fraction);
    case Kind::kIncast: {
      const unsigned fan = fan_in == 0 ? n / 2 : (fan_in > n ? n : fan_in);
      return std::make_unique<IncastDest>(n, /*sink=*/0, fan);
    }
    case Kind::kUniform:
    case Kind::kBursty:  // burstiness shapes arrivals, not destinations
    case Kind::kPareto:
      return std::make_unique<UniformDest>(n);
  }
  return std::make_unique<UniformDest>(n);
}

SlotTraffic GeneratorSpec::make_slot_traffic(unsigned n_inputs, double fallback_load,
                                             DestPattern* dests, Rng rng) const {
  const double l = load_or(fallback_load);
  switch (kind) {
    case Kind::kBursty:
      return SlotTraffic::bursty(n_inputs, l, mean_burst, dests, rng);
    case Kind::kPareto:
      return SlotTraffic::bursty_pareto(n_inputs, l, mean_burst, shape, dests, rng);
    default:
      return SlotTraffic(n_inputs, l, dests, rng);
  }
}

}  // namespace pmsb::traffic
