#include "traffic/messages.hpp"

namespace pmsb {

BurstyCellSource::BurstyCellSource(unsigned input, WireLink* link, const CellFormat& fmt,
                                   DestPattern* dests, double load, double mean_burst_cells,
                                   Rng rng)
    : input_(input), link_(link), fmt_(fmt), dests_(dests), load_(load),
      p_stop_(1.0 / mean_burst_cells), rng_(rng) {
  PMSB_CHECK(link != nullptr && dests != nullptr, "source needs a link and a pattern");
  PMSB_CHECK(load > 0.0 && load <= 1.0, "load must be in (0, 1]");
  PMSB_CHECK(mean_burst_cells >= 1.0, "mean burst below one cell");
}

void BurstyCellSource::roll_gap() {
  if (load_ >= 1.0) {
    gap_left_ = 0;
    return;
  }
  // Mean on-period = mean_burst * L cycles; off/on ratio = (1-p)/p.
  const double mean_on = fmt_.length_words / p_stop_;
  const double mean_gap = mean_on * (1.0 - load_) / load_;
  const double q = 1.0 / (1.0 + mean_gap);
  gap_left_ = static_cast<Cycle>(rng_.next_geometric(q));
}

void BurstyCellSource::eval(Cycle t) {
  if (sending_) {
    link_->drive_next(Flit{true, false, cell_word(uid_, dest_, word_idx_, fmt_)});
    ++word_idx_;
    if (word_idx_ == fmt_.length_words) {
      sending_ = false;
      if (rng_.next_bool(p_stop_)) {
        in_burst_ = false;
        roll_gap();
      }
    }
    return;
  }
  if (!in_burst_) {
    if (gap_left_ > 0) {
      --gap_left_;
      return;
    }
    if (!enabled_) return;
    in_burst_ = true;
    dest_ = dests_->pick(input_, rng_);
  }
  // Start the next cell of the burst (back-to-back).
  uid_ = (static_cast<std::uint64_t>(input_) << 40) | (0x8000000000ULL >> 1) | next_seq_++;
  word_idx_ = 0;
  sending_ = true;
  ++cells_injected_;
  link_->drive_next(Flit{true, true, cell_word(uid_, dest_, 0, fmt_)});
  if (on_inject_) on_inject_(CellSource::Injection{uid_, input_, dest_, t + 1});
  ++word_idx_;
}

void BurstyCellSource::commit(Cycle) {}

}  // namespace pmsb
