// Bursty word-level traffic: trains of back-to-back cells to a single
// destination (the "bursts larger than the buffers" regime of section 2.1).
// Used to stress the cycle-accurate switches the way [Dally90]-style
// multi-flit messages stress input-queued networks: a burst of B cells to
// one output behaves like one long message of B*L words.

#pragma once

#include <cstdint>
#include <functional>

#include "common/cell.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/wire.hpp"
#include "traffic/generators.hpp"

namespace pmsb {

/// Drives one input link with on/off bursts of cells. During a burst, cells
/// go back-to-back to one destination; burst lengths are geometric with the
/// given mean; off periods are sized so the long-run link load is `load`.
class BurstyCellSource : public Component {
 public:
  BurstyCellSource(unsigned input, WireLink* link, const CellFormat& fmt, DestPattern* dests,
                   double load, double mean_burst_cells, Rng rng);

  void set_on_inject(std::function<void(const CellSource::Injection&)> cb) {
    on_inject_ = std::move(cb);
  }
  void set_enabled(bool on) { enabled_ = on; }
  std::uint64_t cells_injected() const { return cells_injected_; }

  void eval(Cycle t) override;
  void commit(Cycle t) override;
  std::string name() const override { return "bursty_cell_source"; }

 private:
  void roll_gap();

  unsigned input_;
  WireLink* link_;
  CellFormat fmt_;
  DestPattern* dests_;
  double load_;
  double p_stop_;  ///< Probability the burst ends after each cell.
  Rng rng_;
  bool enabled_ = true;

  bool sending_ = false;
  bool in_burst_ = false;
  unsigned word_idx_ = 0;
  unsigned dest_ = 0;
  std::uint64_t uid_ = 0;
  Cycle gap_left_ = 0;

  std::uint64_t next_seq_ = 0;
  std::uint64_t cells_injected_ = 0;
  std::function<void(const CellSource::Injection&)> on_inject_;
};

}  // namespace pmsb
