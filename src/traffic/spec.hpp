// Textual workload specs -- one tiny grammar shared by benches, tests, the
// fabric config and the fuzz corpus, so "uniform:0.8" means the same thing
// everywhere instead of each bench growing its own flag parser:
//
//   uniform[:LOAD]               uniformly random destinations
//   permutation[:LOAD]           a fixed random bijection (contention-free)
//   hotspot:FRAC[,LOAD]          fraction FRAC of traffic to one hot output
//   hotsenders:FRAC[,LOAD]       FRAC of the inputs send only to the hot
//                                output; the rest send uniform background
//                                over the non-hot outputs
//   incast:FAN[,LOAD]            inputs 0..FAN-1 converge on one output
//   bursty:LOAD[,MEAN_BURST]     geometric on/off bursts, uniform dests
//   pareto:LOAD[,SHAPE[,MEAN_BURST]]  heavy-tailed bursts, uniform dests
//
// LOAD is optional everywhere it appears; when omitted, the consumer's own
// load setting applies (GeneratorSpec::load_or). parse() throws
// std::invalid_argument with a message naming the offending spec -- callers
// that must not throw (config validation) wrap it.

#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "traffic/generators.hpp"

namespace pmsb::traffic {

struct GeneratorSpec {
  enum class Kind { kUniform, kPermutation, kHotspot, kHotSenders, kIncast, kBursty, kPareto };

  Kind kind = Kind::kUniform;
  std::optional<double> load;  ///< Spec-embedded load, overrides the caller's.
  double hot_fraction = 0.3;   ///< kHotspot / kHotSenders: hot share.
  unsigned fan_in = 0;         ///< kIncast: converging inputs (0 = half of n).
  double mean_burst = 8.0;     ///< kBursty / kPareto: mean burst length (cells).
  double shape = 1.4;          ///< kPareto: tail index (> 1).

  /// Parse the grammar above; throws std::invalid_argument on any error.
  static GeneratorSpec parse(const std::string& text);

  /// Canonical round-trippable form, e.g. "hotspot:0.25,0.9".
  std::string describe() const;

  /// The load to run at: the spec's own if present, else `fallback`.
  double load_or(double fallback) const { return load.has_value() ? *load : fallback; }

  /// Destination pattern over `n` endpoints. Bursty/pareto shape arrivals,
  /// not destinations, so they yield uniform destinations here. `rng` seeds
  /// the permutation draw only; the returned pattern itself is stateless
  /// per pick() and safe to share across router threads.
  std::unique_ptr<DestPattern> make_dest(unsigned n, Rng& rng) const;

  /// Slot-level arrival process at `load_or(fallback_load)` (the only place
  /// the bursty/pareto shapes take effect; other kinds are Bernoulli).
  SlotTraffic make_slot_traffic(unsigned n_inputs, double fallback_load,
                                DestPattern* dests, Rng rng) const;
};

}  // namespace pmsb::traffic
