#include "traffic/generators.hpp"

#include <cmath>

namespace pmsb {

// ---------------------------------------------------------------------------
// CellSource
// ---------------------------------------------------------------------------

CellSource::CellSource(unsigned input, WireLink* link, const CellFormat& fmt, DestPattern* dests,
                       ArrivalKind kind, double load, Rng rng)
    : input_(input), link_(link), fmt_(fmt), dests_(dests), kind_(kind), load_(load),
      rng_(rng) {
  PMSB_CHECK(link != nullptr && dests != nullptr, "source needs a link and a pattern");
  PMSB_CHECK(load > 0.0 && load <= 1.0, "load must be in (0, 1]");
  PMSB_CHECK(fmt.length_words >= 2, "cells must be at least two words");
}

void CellSource::begin_gap() {
  if (kind_ != ArrivalKind::kGeometric) {
    gap_left_ = 0;
    return;
  }
  if (load_ >= 1.0) {
    gap_left_ = 0;
    return;
  }
  // Link load = L / (L + E[gap])  =>  E[gap] = L (1 - p) / p. A geometric
  // gap with success probability q has mean (1-q)/q; solve for q.
  const double mean_gap =
      static_cast<double>(fmt_.length_words) * (1.0 - load_) / load_;
  const double q = 1.0 / (1.0 + mean_gap);
  gap_left_ = static_cast<Cycle>(rng_.next_geometric(q));
}

void CellSource::eval(Cycle t) {
  if (sending_) {
    link_->drive_next(Flit{true, false, cell_word(uid_, dest_, word_idx_, fmt_)});
    ++word_idx_;
    if (word_idx_ == fmt_.length_words) {
      sending_ = false;
      begin_gap();
    }
    return;
  }

  bool start = false;
  switch (kind_) {
    case ArrivalKind::kGeometric:
      if (gap_left_ > 0) {
        --gap_left_;
      } else {
        start = enabled_;
      }
      break;
    case ArrivalKind::kSlotted:
      start = enabled_ && ((t + 1) % fmt_.length_words == 0) && rng_.next_bool(load_);
      break;
    case ArrivalKind::kSaturated:
      start = enabled_;
      break;
  }
  if (!start) return;

  uid_ = (static_cast<std::uint64_t>(input_) << 40) | next_seq_++;
  dest_ = dests_->pick(input_, rng_);
  word_idx_ = 0;
  sending_ = true;
  ++cells_injected_;
  link_->drive_next(Flit{true, true, cell_word(uid_, dest_, 0, fmt_)});
  if (on_inject_) on_inject_(Injection{uid_, input_, dest_, t + 1});
  ++word_idx_;
  if (word_idx_ == fmt_.length_words) {  // unreachable for L >= 2, kept for safety
    sending_ = false;
    begin_gap();
  }
}

void CellSource::commit(Cycle) {}

// Quiescence: a source is idle exactly when eval() would neither drive the
// link nor consume RNG draws. kGeometric spends its pre-drawn gap with no
// draws, so the whole gap is skippable; kSlotted draws at every slot
// boundary while enabled, so its wake is the next boundary (never beyond);
// kSaturated never idles while enabled. A disabled source of any kind only
// burns its gap counter down, which skip() compensates.

bool CellSource::is_quiescent(Cycle t) const {
  if (sending_) return false;
  if (!enabled_) return true;
  switch (kind_) {
    case ArrivalKind::kGeometric:
      return gap_left_ > 0;
    case ArrivalKind::kSlotted:
      return (t + 1) % fmt_.length_words != 0;
    case ArrivalKind::kSaturated:
      return false;
  }
  return false;
}

Cycle CellSource::next_wake(Cycle t) const {
  if (!enabled_) return kNeverWake;
  switch (kind_) {
    case ArrivalKind::kGeometric:
      return t + gap_left_;
    case ArrivalKind::kSlotted: {
      // Earliest t' >= t with (t' + 1) % L == 0 and t' > t when t is itself
      // a boundary (is_quiescent already returned false there).
      const Cycle l = static_cast<Cycle>(fmt_.length_words);
      return t + (l - 1 - (t % l) + l) % l;
    }
    case ArrivalKind::kSaturated:
      return t;
  }
  return kNeverWake;
}

void CellSource::skip(Cycle, Cycle n) {
  // Stepping n idle cycles decrements the gap counter once per cycle,
  // saturating at zero (it keeps decrementing while disabled).
  if (!sending_ && gap_left_ > 0) gap_left_ = gap_left_ > n ? gap_left_ - n : 0;
}

// ---------------------------------------------------------------------------
// CellSink
// ---------------------------------------------------------------------------

CellSink::CellSink(unsigned output, WireLink* link, const CellFormat& fmt)
    : output_(output), link_(link), fmt_(fmt) {
  PMSB_CHECK(link != nullptr, "sink needs a link");
  words_.reserve(fmt.length_words);
}

void CellSink::eval(Cycle t) {
  const Flit& f = link_->now();
  if (!receiving_) {
    if (!f.valid) return;
    PMSB_CHECK(f.sop, "output link emitted a body word with no head");
    receiving_ = true;
    words_.clear();
    head_cycle_ = t;
    words_.push_back(f.data);
  } else {
    PMSB_CHECK(f.valid, "gap inside a cell on an output link (underrun)");
    PMSB_CHECK(!f.sop, "unexpected head inside a cell on an output link");
    words_.push_back(f.data);
  }
  if (words_.size() == fmt_.length_words) {
    receiving_ = false;
    ++cells_delivered_;
    if (on_deliver_) on_deliver_(Delivery{output_, words_, head_cycle_, t});
  }
}

void CellSink::commit(Cycle) {}

// ---------------------------------------------------------------------------
// SlotTraffic
// ---------------------------------------------------------------------------

SlotTraffic::SlotTraffic(unsigned n_inputs, double load, DestPattern* dests, Rng rng)
    : SlotTraffic(n_inputs, load, 1.0, Burstiness::kNone, dests, rng) {}

SlotTraffic SlotTraffic::bursty(unsigned n_inputs, double load, double mean_burst,
                                DestPattern* dests, Rng rng) {
  return SlotTraffic(n_inputs, load, mean_burst, Burstiness::kGeometric, dests, rng);
}

SlotTraffic SlotTraffic::bursty_pareto(unsigned n_inputs, double load, double mean_burst,
                                       double shape, DestPattern* dests, Rng rng) {
  SlotTraffic t(n_inputs, load, mean_burst, Burstiness::kPareto, dests, rng);
  PMSB_CHECK(shape > 1.0, "pareto burst lengths need shape > 1 for a finite mean");
  t.pareto_shape_ = shape;
  // Continuous Pareto(xm, s) has mean xm s / (s - 1); pick xm for `mean_burst`.
  t.pareto_xm_ = mean_burst * (shape - 1.0) / shape;
  const double mean_gap = load >= 1.0 ? 0.0 : mean_burst * (1.0 - load) / load;
  t.p_gap_ = 1.0 / (1.0 + mean_gap);
  t.pareto_.resize(n_inputs);
  // Independent initial gaps desynchronize the inputs' on/off phases.
  for (ParetoState& st : t.pareto_) {
    st.gap_left = static_cast<Cycle>(t.rng_.next_geometric(t.p_gap_));
  }
  return t;
}

SlotTraffic::SlotTraffic(unsigned n_inputs, double load, double mean_burst, Burstiness mode,
                         DestPattern* dests, Rng rng)
    : n_(n_inputs), load_(load), mode_(mode), dests_(dests), rng_(rng),
      burst_(n_inputs), slot_(n_inputs) {
  PMSB_CHECK(n_inputs > 0, "traffic needs at least one input");
  PMSB_CHECK(load > 0.0 && load <= 1.0, "load must be in (0, 1]");
  PMSB_CHECK(dests != nullptr, "traffic needs a destination pattern");
  if (mode_ != Burstiness::kNone) {
    PMSB_CHECK(mean_burst >= 1.0, "mean burst below one cell");
  }
  if (mode_ == Burstiness::kGeometric) {
    p_stop_ = 1.0 / mean_burst;
    // Stationary on-fraction p_start/(p_start + p_stop) must equal `load`.
    p_start_ = load >= 1.0 ? 1.0 : load * p_stop_ / (1.0 - load);
    if (p_start_ > 1.0) p_start_ = 1.0;
  }
}

std::uint64_t SlotTraffic::draw_pareto_len() {
  // Inverse-CDF draw, rounded up and clamped: heavy-tailed but bounded so a
  // single burst cannot stall a sweep.
  constexpr std::uint64_t kMaxBurst = 1u << 16;
  const double u = rng_.next_double();
  const double len = pareto_xm_ * std::pow(1.0 - u, -1.0 / pareto_shape_);
  if (!(len >= 1.0)) return 1;
  if (len >= static_cast<double>(kMaxBurst)) return kMaxBurst;
  return static_cast<std::uint64_t>(std::ceil(len));
}

const std::vector<std::optional<SlotTraffic::Arrival>>& SlotTraffic::step() {
  for (unsigned i = 0; i < n_; ++i) {
    slot_[i].reset();
    if (mode_ == Burstiness::kNone) {
      if (rng_.next_bool(load_)) {
        slot_[i] = Arrival{dests_->pick(i, rng_)};
        ++arrivals_;
      }
      continue;
    }
    if (mode_ == Burstiness::kPareto) {
      ParetoState& st = pareto_[i];
      if (st.gap_left > 0) {
        --st.gap_left;
        continue;
      }
      if (st.burst_left == 0) {
        st.burst_left = draw_pareto_len();
        st.dest = dests_->pick(i, rng_);
      }
      slot_[i] = Arrival{st.dest};
      ++arrivals_;
      if (--st.burst_left == 0) {
        st.gap_left = static_cast<Cycle>(rng_.next_geometric(p_gap_));
      }
      continue;
    }
    BurstState& b = burst_[i];
    if (!b.in_burst) {
      if (rng_.next_bool(p_start_)) {
        b.in_burst = true;
        b.dest = dests_->pick(i, rng_);
      }
    }
    if (b.in_burst) {
      slot_[i] = Arrival{b.dest};
      ++arrivals_;
      if (rng_.next_bool(p_stop_)) b.in_burst = false;
    }
  }
  return slot_;
}

std::vector<unsigned> random_permutation(unsigned n, Rng& rng) {
  std::vector<unsigned> p(n);
  for (unsigned i = 0; i < n; ++i) p[i] = i;
  for (unsigned i = n; i > 1; --i) {
    const auto j = static_cast<unsigned>(rng.next_below(i));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

}  // namespace pmsb
