// SweepRunner: run a vector of INDEPENDENT sweep points in parallel and
// return their results in submission order.
//
// Every paper experiment is a sweep over (architecture, n, load, seed)
// points, each of which builds its own model, Rng, and metrics from scratch
// -- embarrassingly parallel work that the seed repo ran strictly
// sequentially. The determinism contract (DESIGN.md "Parallel sweeps"):
//
//   * A sweep point is a closure owning everything it touches mutably
//     (model, Rng(seed), MetricsRegistry). Closures never share mutable
//     state; shared inputs (configs) are read-only.
//   * Results come back indexed by submission order, so tables and
//     BENCH_*.json built from them are byte-identical at ANY thread count
//     (including 1, which runs inline on the calling thread with no pool).
//   * A closure that throws has its exception captured and rethrown on the
//     caller -- the earliest-submitted failure wins, after all points end.
//
// Thread-count resolution (first match wins):
//   1. set_thread_override() -- benches wire their --threads flag to this;
//   2. the PMSB_THREADS environment variable;
//   3. std::thread::hardware_concurrency().

#pragma once

#include <chrono>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/util.hpp"
#include "exp/thread_pool.hpp"

namespace pmsb::exp {

/// Resolved worker count for sweeps (>= 1): override, then PMSB_THREADS,
/// then hardware_concurrency.
unsigned thread_count();

/// Force the sweep width (0 clears the override). Not thread-safe: call
/// from main before the first sweep.
void set_thread_override(unsigned threads);

/// Scan argv for "--threads N" / "--threads=N", apply it as the override,
/// and return the resolved thread_count(). Unrelated arguments are ignored
/// (benches also receive google-benchmark-style flags in CI wrappers).
unsigned parse_threads_arg(int argc, char** argv);

/// Wall-clock stopwatch for the BenchJson runtime block.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

class SweepRunner {
 public:
  /// threads = 0 resolves through thread_count(). With 1 thread no pool is
  /// created and every point runs inline on the caller.
  explicit SweepRunner(unsigned threads = 0)
      : threads_(threads == 0 ? thread_count() : threads) {
    PMSB_CHECK(threads_ >= 1, "sweep runner needs at least one thread");
    if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
  }

  unsigned threads() const { return threads_; }

  /// Run every closure in `points`; result i is points[i]()'s return value.
  template <typename Fn>
  auto run(std::vector<Fn> points) -> std::vector<decltype(points.front()())> {
    using R = decltype(points.front()());
    const std::size_t n = points.size();
    std::vector<std::optional<R>> slots(n);
    std::vector<std::exception_ptr> errors(n);

    if (!pool_) {
      for (std::size_t i = 0; i < n; ++i) slots[i].emplace(points[i]());
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        pool_->submit([&, i] {
          try {
            slots[i].emplace(points[i]());
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      pool_->wait_idle();
      for (std::size_t i = 0; i < n; ++i) {
        if (errors[i]) std::rethrow_exception(errors[i]);
      }
    }

    std::vector<R> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(std::move(*slots[i]));
    return out;
  }

  /// Map `fn` over `items`; result i is fn(items[i]). `fn` must be
  /// const-callable from several threads at once (capture shared inputs by
  /// value or const reference only).
  template <typename Item, typename Fn>
  auto map(const std::vector<Item>& items, Fn fn)
      -> std::vector<decltype(fn(items.front()))> {
    using R = decltype(fn(items.front()));
    std::vector<std::function<R()>> points;
    points.reserve(items.size());
    for (const Item& item : items)
      points.push_back([&fn, &item] { return fn(item); });
    return run(std::move(points));
  }

 private:
  unsigned threads_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace pmsb::exp
