// Fixed-size worker pool for the experiment runner (src/exp/sweep.hpp).
//
// Deliberately minimal: a FIFO work queue of type-erased closures, a fixed
// set of worker threads, and a graceful shutdown that FINISHES all queued
// work before joining (a sweep submitted before destruction is never
// silently dropped -- determinism of the bench output depends on every
// submitted point running exactly once). Completion/ordering/exception
// semantics live one level up in SweepRunner, which is what the benches use.

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/util.hpp"

namespace pmsb::exp {

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (>= 1).
  explicit ThreadPool(unsigned threads);

  /// Drains the queue (queued tasks still run), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task. Tasks are picked up in FIFO order by whichever worker
  /// frees up first; nothing may be submitted after shutdown began.
  void submit(std::function<void()> fn);

  /// Block until the queue is empty and no worker is executing a task.
  void wait_idle();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< Signals workers: work or shutdown.
  std::condition_variable idle_cv_;  ///< Signals waiters: pool went idle.
  unsigned active_ = 0;              ///< Tasks currently executing.
  bool shutdown_ = false;
};

}  // namespace pmsb::exp
