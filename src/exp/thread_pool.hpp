// Fixed-size worker pool for the experiment runner (src/exp/sweep.hpp) and
// the fabric engines (src/fabric/).
//
// Deliberately minimal: a FIFO work queue of type-erased closures, a fixed
// set of worker threads, and a graceful shutdown that FINISHES all queued
// work before joining (a sweep submitted before destruction is never
// silently dropped -- determinism of the bench output depends on every
// submitted point running exactly once). Completion/ordering/exception
// semantics live one level up in SweepRunner, which is what the benches use.
//
// The optional on_worker_start hook runs once in each worker thread before
// it takes any task, with the worker's index -- the place for CPU affinity
// or NUMA placement (see pin_current_thread / pin_threads_env). Placement is
// a wall-clock concern only; simulation results never depend on it.

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/util.hpp"

namespace pmsb::exp {

struct ThreadPoolOptions {
  /// Called in each worker thread, with its index in [0, threads), before
  /// the worker takes any task.
  std::function<void(unsigned worker)> on_worker_start;
};

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (>= 1).
  explicit ThreadPool(unsigned threads) : ThreadPool(threads, ThreadPoolOptions{}) {}
  ThreadPool(unsigned threads, ThreadPoolOptions opts);

  /// Drains the queue (queued tasks still run), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task. Tasks are picked up in FIFO order by whichever worker
  /// frees up first; nothing may be submitted after shutdown began.
  void submit(std::function<void()> fn);

  /// Block until the queue is empty and no worker is executing a task.
  void wait_idle();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop(unsigned index);

  ThreadPoolOptions opts_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< Signals workers: work or shutdown.
  std::condition_variable idle_cv_;  ///< Signals waiters: pool went idle.
  unsigned active_ = 0;              ///< Tasks currently executing.
  bool shutdown_ = false;
};

/// Pin the calling thread to CPU `cpu % hardware_concurrency`. Returns false
/// (and changes nothing) on platforms without an affinity API or when the
/// kernel rejects the mask. Topology-aware placement for long-lived workers:
/// the fabric pins worker i to CPU i so neighboring shards keep their cache
/// affinity across rounds.
bool pin_current_thread(unsigned cpu);

/// Process-wide opt-in for worker pinning (PMSB_PIN_THREADS=1, read once).
/// Off by default: pinning helps dedicated machines and hurts shared ones.
bool pin_threads_env();

}  // namespace pmsb::exp
