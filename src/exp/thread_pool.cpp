#include "exp/thread_pool.hpp"

#include <cstdlib>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pmsb::exp {

bool pin_current_thread(unsigned cpu) {
#if defined(__linux__)
  const unsigned n = std::thread::hardware_concurrency();
  if (n == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % n, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

bool pin_threads_env() {
  static const bool on = [] {
    const char* v = std::getenv("PMSB_PIN_THREADS");
    return v != nullptr && v[0] == '1' && v[1] == '\0';
  }();
  return on;
}

ThreadPool::ThreadPool(unsigned threads, ThreadPoolOptions opts) : opts_(std::move(opts)) {
  PMSB_CHECK(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  PMSB_CHECK(queue_.empty(), "thread pool joined with work still queued");
}

void ThreadPool::submit(std::function<void()> fn) {
  PMSB_CHECK(fn != nullptr, "null task submitted to thread pool");
  {
    std::lock_guard<std::mutex> lk(mu_);
    PMSB_CHECK(!shutdown_, "submit() after thread pool shutdown began");
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop(unsigned index) {
  if (opts_.on_worker_start) opts_.on_worker_start(index);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return !queue_.empty() || shutdown_; });
      // Graceful shutdown: exit only once the queue has fully drained.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace pmsb::exp
