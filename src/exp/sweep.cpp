#include "exp/sweep.hpp"

#include <cstdlib>
#include <cstring>
#include <thread>

namespace pmsb::exp {

namespace {

unsigned g_override = 0;

unsigned parse_count(const char* s) {
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 1) return 0;
  return static_cast<unsigned>(v);
}

}  // namespace

void set_thread_override(unsigned threads) { g_override = threads; }

unsigned thread_count() {
  if (g_override >= 1) return g_override;
  if (const unsigned env = parse_count(std::getenv("PMSB_THREADS")); env >= 1) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

unsigned parse_threads_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--threads") == 0 && i + 1 < argc) {
      if (const unsigned v = parse_count(argv[i + 1]); v >= 1) set_thread_override(v);
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      if (const unsigned v = parse_count(a + 10); v >= 1) set_thread_override(v);
    }
  }
  return thread_count();
}

}  // namespace pmsb::exp
