// FastSwitch: a slot-granularity behavioural model of PipelinedSwitch.
//
// Same external contract as the cycle-accurate switch -- word-level WireLink
// ports with framed cells, the EventHub head/accept/drop/read-grant stream,
// SwitchStats, drained() -- but none of the internal machinery (no pipelined
// memory waves, no input-latch windows, no reservation table). Cells are
// reassembled per input, admitted or dropped at head arrival, queued per
// output in FIFO order, and relayed out as soon as the output link is free.
//
// Semantics contract (pinned by src/check/differential.cpp and the fuzz
// corpus, see `run()`'s "fast" model summary):
//  * Words pass through verbatim: delivered cells are bit-identical to the
//    injected ones (payload integrity, uid tags).
//  * Per-(input, output) delivery order equals the cycle-accurate switch's
//    exactly on drop-free runs (both preserve each pair's arrival order).
//  * Drops use the same classification (kOutputLimit at the per-output cap,
//    else kNoAddress when the shared buffer is full; never kNoSlot) and
//    match the cycle-accurate counts statistically, not per-cell. A cell
//    that meets a full buffer is held pending through the same latch window
//    [a0+1, a0+2n] the cycle-accurate switch gives it and admitted if space
//    frees in time — without this grace period the model over-drops on
//    bursts near capacity (found by the fuzz corpus).
//  * Timing is approximate but causal: a relay never emits a word before
//    the cycle after that word arrived (cut-through shape), and an output
//    transmits at most one cell per L cycles.
//
// Intended use: cold nodes of a fabric::Fabric (FabricConfig::fast_node)
// and fast load sweeps where per-wave accuracy is not needed.

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/event_hub.hpp"
#include "core/switch.hpp"  // SwitchStats
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/wire.hpp"

namespace pmsb {

class FastSwitch : public Component {
 public:
  explicit FastSwitch(const SwitchConfig& cfg);

  const SwitchConfig& config() const { return cfg_; }

  WireLink& in_link(unsigned i) { return in_links_.at(i); }
  WireLink& out_link(unsigned o) { return out_links_.at(o); }

  /// Multi-subscriber event fan-out (see core/event_hub.hpp).
  EventHub& events() { return events_; }
  const EventHub& events() const { return events_; }

  /// Register occupancy gauges under `prefix.`-qualified names.
  void register_metrics(obs::MetricsRegistry& m, const std::string& prefix = "fast_switch");

  // Component interface.
  void eval(Cycle t) override;
  void commit(Cycle t) override;
  bool is_quiescent(Cycle t) const override;
  void skip(Cycle t, Cycle n) override;
  std::string name() const override { return "fast_switch"; }

  const SwitchStats& stats() const { return stats_; }
  /// Buffer occupancy in cells (the behavioural model has no segments).
  std::uint32_t buffer_in_use() const { return resident_; }
  std::size_t queued_cells() const {
    std::size_t n = 0;
    for (const auto& q : oq_) n += q.size();
    return n;
  }

  /// True once no cell is arriving, buffered, queued, or transmitting.
  bool drained() const;

 private:
  /// One buffered cell. Shared between the receive FSM (still filling it)
  /// and the transmit FSM (already relaying it) during cut-through.
  struct Cell {
    unsigned input = 0;
    unsigned dest = 0;
    Cycle a0 = 0;          ///< Head-arrival cycle.
    unsigned filled = 0;   ///< Words latched so far.
    std::vector<Word> words;
  };
  using CellPtr = std::shared_ptr<Cell>;

  struct RxFsm {
    bool receiving = false;
    unsigned phase = 0;  ///< Next word index to latch.
    CellPtr cell;        ///< Null while swallowing a dropped cell's body.
  };
  struct TxFsm {
    bool active = false;
    unsigned phase = 0;  ///< Next word index to drive.
    CellPtr cell;
  };

  /// A head that saw a full buffer, waiting out its latch window
  /// [a0+1, a0+window_] for space to free (admitted then) or expiry
  /// (dropped kNoAddress, like the cycle-accurate addr-starved case).
  struct PendingCell {
    bool valid = false;
    Cycle a0 = 0;
    unsigned dest = 0;
    CellPtr cell;
  };

  void admit_or_expire_pending(Cycle t);
  void process_arrival(unsigned i, Cycle t);
  void run_output(unsigned o, Cycle t);

  SwitchConfig cfg_;
  CellFormat fmt_;
  unsigned L_;               ///< Words per cell.
  unsigned window_;          ///< Latch-window length (2n, = cfg.stages()).
  unsigned capacity_cells_;  ///< Shared-buffer capacity in cells.

  std::vector<WireLink> in_links_;
  std::vector<WireLink> out_links_;
  std::vector<RxFsm> rx_;
  std::vector<TxFsm> tx_;
  std::vector<PendingCell> pending_;
  std::vector<std::deque<CellPtr>> oq_;  ///< Accepted cells awaiting relay.
  std::uint32_t resident_ = 0;           ///< Cells owning buffer space.

  EventHub events_;
  SwitchStats stats_;
};

}  // namespace pmsb
