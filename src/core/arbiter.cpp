#include "core/arbiter.hpp"

namespace pmsb {

RoundRobin::RoundRobin(unsigned n) : n_(n) { PMSB_CHECK(n > 0, "round-robin over zero links"); }

int RoundRobin::pick(const std::function<bool(unsigned)>& eligible) {
  for (unsigned k = 0; k < n_; ++k) {
    const unsigned idx = (ptr_ + k) % n_;
    if (eligible(idx)) {
      ptr_ = (idx + 1) % n_;
      return static_cast<int>(idx);
    }
  }
  return -1;
}

}  // namespace pmsb
