// DualPipelinedSwitch: the half-quantum organization of section 3.5.
//
// "Consider a shared-buffer n x n switch with 2n pipelined memory stages...
//  when the packets are of size n words each... The shared buffer will
//  consist of two pipelined memories, with n stages each. Each packet is
//  stored into one or the other of these two memories. In each and every
//  cycle, one read operation of one outgoing packet is initiated from one of
//  the two memories -- whichever the desired packet happens to be in. In the
//  same cycle, one write operation of one incoming packet must also be
//  initiated; this will be initiated into the other one of the two
//  memories."
//
// Cells are exactly n words (one segment), so this variant sustains full
// line rate on all links with half the packet-size quantum of the single
// 2n-stage organization. Reads and writes use different memory groups in
// the same cycle, so neither group's single port is ever double-booked; the
// shared output register row still allows only one packet transmission to
// *start* per cycle. Same-cycle cut-through (write + snooping read) is
// possible when no regular read was granted that cycle (the snoop shares
// the write's bus, not a memory port, but it does occupy the output row).

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/arbiter.hpp"
#include "core/free_list.hpp"
#include "core/input_latches.hpp"
#include "core/output_row.hpp"
#include "core/pipelined_memory.hpp"
#include "core/switch.hpp"  // SwitchEvents, DropReason, SwitchStats
#include "sim/engine.hpp"
#include "sim/wire.hpp"

namespace pmsb {

struct DualSwitchConfig {
  unsigned n_ports = 4;
  unsigned word_bits = 16;
  unsigned capacity_segments_per_group = 128;  ///< Cells per memory group.
  bool cut_through = true;
  double clock_mhz = 62.5;

  unsigned stages() const { return n_ports; }          ///< Per group.
  unsigned cell_words() const { return n_ports; }      ///< Half quantum.
  unsigned dest_bits() const { return bits_for(n_ports); }
  CellFormat cell_format() const { return CellFormat{word_bits, dest_bits(), cell_words()}; }
  /// Non-throwing check with structured issues (see core/config.hpp).
  ConfigValidation check() const;
  /// Throws std::invalid_argument(check().summary()) on any issue.
  void validate() const;
};

class DualPipelinedSwitch : public Component {
 public:
  explicit DualPipelinedSwitch(const DualSwitchConfig& cfg,
                               AddrPathMode addr_mode = AddrPathMode::kDecodedPipeline);

  const DualSwitchConfig& config() const { return cfg_; }

  WireLink& in_link(unsigned i) { return in_links_.at(i); }
  WireLink& out_link(unsigned o) { return out_links_.at(o); }

  /// Multi-subscriber event fan-out (see core/event_hub.hpp).
  EventHub& events() { return events_; }
  const EventHub& events() const { return events_; }

  void eval(Cycle t) override;
  void commit(Cycle t) override;
  std::string name() const override { return "dual_pipelined_switch"; }

  const SwitchStats& stats() const { return stats_; }
  std::uint32_t buffer_in_use() const { return free_[0].in_use() + free_[1].in_use(); }
  bool drained() const;

  /// Committed cells across all per-output lists (verification).
  std::size_t queued_cells() const {
    std::size_t n = 0;
    for (const auto& q : queues_) n += q.size();
    return n;
  }

  /// Cells latched but not yet accepted or dropped (at most one per input).
  unsigned pending_cells() const {
    unsigned c = 0;
    for (const auto& p : pending_) c += p.valid ? 1 : 0;
    return c;
  }

  /// Cycles in which BOTH a read and a write wave were initiated (the
  /// section 3.5 claim: the organization supports 1 + 1 per cycle).
  std::uint64_t dual_initiation_cycles() const { return dual_cycles_; }

 private:
  struct InFsm {
    bool receiving = false;
    unsigned phase = 0;
    unsigned dest = 0;
    Cycle a0 = 0;
  };
  struct Pending {
    bool valid = false;
    Cycle a0 = 0;
    unsigned dest = 0;
    bool addr_starved = false;  ///< No allowed group had space at some cycle.
  };
  struct DualCell {
    unsigned input;
    unsigned dest;
    unsigned group;
    std::uint32_t addr;
    Cycle a0;
    Cycle t0;
  };

  /// Returns the group read from, or -1.
  int grant_read(Cycle t);
  void grant_write(Cycle t, int read_group);
  void expire_pending(Cycle t);
  void process_arrivals(Cycle t);

  DualSwitchConfig cfg_;
  unsigned S_;  ///< Stages per group = n.

  PipelinedMemory mem_[2];
  InputLatches ir_;
  OutputRow orow_;
  FreeList free_[2];
  RoundRobin rr_read_;
  RoundRobin rr_write_;

  std::vector<std::deque<DualCell>> queues_;        ///< Committed, per output.
  std::vector<DualCell> staged_pushes_;

  std::vector<WireLink> in_links_;
  std::vector<WireLink> out_links_;
  std::vector<InFsm> in_fsm_;
  std::vector<Pending> pending_;
  std::vector<Cycle> next_read_ok_;

  EventHub events_;
  SwitchStats stats_;
  std::uint64_t dual_cycles_ = 0;
};

}  // namespace pmsb
