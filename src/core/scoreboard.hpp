// End-to-end verification scoreboard for the cycle-accurate switches.
//
// Wiring: CellSources report injections; the switch reports per-input
// accept/drop decisions (which occur in per-input arrival order); CellSinks
// report re-assembled deliveries. The scoreboard checks, independently of
// the device under test:
//
//   * payload integrity -- the delivered word sequence is bit-exact;
//   * per-(input,output) FIFO order -- a delivered cell must be the oldest
//     outstanding cell of its (source, destination) pair;
//   * conservation -- injected = delivered + dropped + resident;
//   * latency accounting (head-in to head-out), with warmup support.
//
// Failures are recorded (not aborted) so gtest can report them.

#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/cell.hpp"
#include "core/switch.hpp"
#include "stats/stats.hpp"
#include "traffic/generators.hpp"

namespace pmsb {

class Scoreboard {
 public:
  Scoreboard(unsigned n_inputs, unsigned n_outputs, const CellFormat& fmt);

  /// Hook everything up. Works for any switch exposing events() (an
  /// EventHub); the scoreboard subscribes additively, so other observers on
  /// the same switch keep working. Sources may be CellSource or
  /// BurstyCellSource (anything with set_on_inject).
  template <typename SwitchT, typename SourceT>
  void attach(SwitchT& sw, std::vector<std::unique_ptr<SourceT>>& sources,
              std::vector<std::unique_ptr<CellSink>>& sinks) {
    for (auto& src : sources)
      src->set_on_inject([this](const CellSource::Injection& inj) { on_inject(inj); });
    for (auto& snk : sinks)
      snk->set_on_deliver([this](const CellSink::Delivery& d) { on_deliver(d); });
    SwitchEvents ev;
    ev.on_accept = [this](unsigned i, Cycle a0, Cycle t0) { on_accept(i, a0, t0); };
    ev.on_drop = [this](unsigned i, Cycle a0, DropReason why) { on_drop(i, a0, why); };
    events_sub_ = sw.events().subscribe(std::move(ev));
  }

  // Raw entry points (used directly by tests and by the dual switch).
  void on_inject(const CellSource::Injection& inj);
  void on_accept(unsigned input, Cycle a0, Cycle t0);
  void on_drop(unsigned input, Cycle a0, DropReason why);
  void on_deliver(const CellSink::Delivery& d);

  /// When link pipelining (sim/link_pipeline.hpp) sits between the sources
  /// and the switch, the switch observes each head `delay` cycles after it
  /// left the generator; tell the scoreboard so its arrival-cycle
  /// cross-checks account for it.
  void set_input_wire_delay(Cycle delay) { input_delay_ = delay; }

  /// All checks passed so far.
  bool ok() const { return errors_.empty(); }
  const std::vector<std::string>& errors() const { return errors_; }

  /// After draining: nothing outstanding anywhere.
  bool fully_drained() const;

  std::uint64_t injected() const { return injected_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }

  LatencyStats& latency() { return latency_; }
  const LatencyStats& latency() const { return latency_; }

 private:
  struct Record {
    std::uint64_t uid;
    unsigned input;
    unsigned dest;
    Cycle head_on_wire;
  };

  void fail(std::string msg);

  unsigned n_in_;
  unsigned n_out_;
  CellFormat fmt_;

  /// Injected, awaiting the switch's accept/drop decision (per input, FIFO).
  std::vector<std::deque<Record>> awaiting_decision_;
  /// Accepted, awaiting delivery (per input x output, FIFO).
  std::vector<std::deque<Record>> in_flight_;  // [input * n_out_ + dest]

  std::uint64_t injected_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;

  LatencyStats latency_;
  std::vector<std::string> errors_;
  Cycle input_delay_ = 0;
  Subscription events_sub_;  ///< Our slot on the DUT's EventHub.
};

}  // namespace pmsb
