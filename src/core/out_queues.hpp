// Per-output "ready to depart" lists (the paper's outgoing-link logic keeps
// "the list of ready to depart packets", section 4.2).
//
// One FIFO per outgoing link, holding references to buffered cells (their
// segment addresses in the shared buffer). A cell is pushed when its write
// wave is granted (it is then readable from that cycle on, including during
// its own storing via cut-through) and popped when its read wave initiates.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/small_vec.hpp"
#include "common/util.hpp"

namespace pmsb {

/// A cell resident in (or streaming through) the shared buffer.
struct BufferedCell {
  unsigned input = 0;                   ///< Arrival link.
  unsigned dest = 0;                    ///< Departure link.
  Cycle head_arrival = 0;               ///< a0: head word latched at end of this cycle.
  Cycle write_start = 0;                ///< t0: write-wave initiation cycle.
  SegAddrs seg_addrs;                   ///< One buffer address per segment.
};

class OutQueues {
 public:
  explicit OutQueues(unsigned n_outputs);

  /// Stage a cell for output `dest`; visible to front()/empty() after tick().
  void push(BufferedCell cell);

  bool empty(unsigned output) const;
  const BufferedCell& front(unsigned output) const;

  /// Remove the head-of-line cell of `output` (effective immediately; the
  /// arbiter pops at most one queue per cycle).
  BufferedCell pop(unsigned output);

  /// Clock edge: commit staged pushes.
  void tick();

  /// Cells queued (committed) across all outputs. O(1): a running count is
  /// maintained so per-cycle instrumentation can read it for free.
  std::size_t total_size() const { return committed_; }
  std::size_t size(unsigned output) const { return queues_.at(output).size(); }
  unsigned outputs() const { return static_cast<unsigned>(queues_.size()); }

  /// Lifetime high-water mark of total_size() (updated at tick()).
  std::size_t peak_total_size() const { return peak_total_; }

  /// Invoke fn(output, cell) on every committed queued cell, head-of-line
  /// first per output. Verification only (the invariant checker walks the
  /// queues to prove per-address exclusivity).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (unsigned o = 0; o < queues_.size(); ++o) {
      for (const BufferedCell& c : queues_[o]) fn(o, c);
    }
  }

 private:
  std::vector<std::deque<BufferedCell>> queues_;
  std::vector<BufferedCell> staged_;
  std::size_t committed_ = 0;
  std::size_t peak_total_ = 0;
};

}  // namespace pmsb
