// The pipelined memory proper (figures 4, 5, 7): S single-ported SRAM
// stages, the control-signal pipeline, and the address path (per-stage
// decoders or the decoded-address pipeline of figure 7b).
//
// One wave is initiated per cycle at stage 0; exec_cycle() then performs, at
// every stage s, whatever the control pipeline presents to it -- which is by
// construction the operation stage s-1 performed in the previous cycle.

#pragma once

#include <cstdint>
#include <vector>

#include "core/input_latches.hpp"
#include "core/output_row.hpp"
#include "rtl/addr_decoder.hpp"
#include "rtl/ctrl_pipeline.hpp"
#include "rtl/sram_bank.hpp"

namespace pmsb {

class PipelinedMemory {
 public:
  PipelinedMemory(unsigned stages, std::size_t words_per_stage, unsigned word_bits,
                  AddrPathMode addr_mode = AddrPathMode::kDecodedPipeline);

  unsigned stages() const { return static_cast<unsigned>(banks_.size()); }

  /// Initiate a wave at stage 0 for the current cycle (at most one/cycle).
  void initiate(const StageCtrl& c) {
    ++initiations_;
    ctrl_.initiate(c);
  }

  /// Lifetime count of stage-0 wave initiations (observability).
  std::uint64_t initiations() const { return initiations_; }

  /// Execute all stages for the current cycle: writes take their data from
  /// the input latches; reads (and write snoops) load the output row.
  void exec_cycle(const InputLatches& ir, OutputRow& orow);

  /// Clock edge.
  void tick();

  /// Any wave still travelling down the pipeline?
  bool busy() const { return ctrl_.busy(); }

  const SramBank& bank(unsigned s) const { return banks_.at(s); }
  const CtrlPipeline& ctrl() const { return ctrl_; }
  const AddressPath& addr_path() const { return addr_path_; }

 private:
  std::vector<SramBank> banks_;
  CtrlPipeline ctrl_;
  AddressPath addr_path_;
  std::uint64_t initiations_ = 0;
};

}  // namespace pmsb
