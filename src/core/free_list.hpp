// Buffer-address management: a free list of segment addresses.
//
// The paper treats address management as orthogonal to the pipelined-memory
// organization ("the buffer (address) management circuits are independent of
// the pipelined memory", section 3.3); Telegraphos keeps a hardware free
// list. We model exactly that: a LIFO of free segment addresses, with
// two-phase semantics -- addresses freed during a cycle become allocatable
// the next cycle, as a hardware free list returning entries through a
// register would behave.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/small_vec.hpp"
#include "common/util.hpp"

namespace pmsb {

class FreeList {
 public:
  explicit FreeList(std::uint32_t n_addresses);

  std::uint32_t total() const { return total_; }

  /// Addresses allocatable this cycle.
  std::uint32_t available() const { return static_cast<std::uint32_t>(free_.size()); }

  /// True if `count` addresses can be allocated this cycle.
  bool can_alloc(std::uint32_t count) const { return available() >= count; }

  /// Allocate `count` addresses (caller must have checked can_alloc).
  /// Returned inline (no heap traffic) for cells of up to 4 segments --
  /// this runs once per accepted cell on the simulation hot path.
  SegAddrs alloc(std::uint32_t count);

  /// Return an address; visible to alloc() from the next cycle.
  void release(std::uint32_t addr);

  /// Clock edge: freed addresses become allocatable.
  void tick();

  /// Lifetime high-water mark of occupied addresses (buffer occupancy).
  std::uint32_t peak_in_use() const { return peak_in_use_; }

  /// Addresses occupied this cycle: allocated ones plus releases staged for
  /// the next clock edge (their data is still live until tick()).
  std::uint32_t in_use() const;

  /// True while `addr` is allocated (false once release() was called, even
  /// before the tick() that makes it allocatable again). Verification only.
  bool is_allocated(std::uint32_t addr) const { return allocated_.at(addr); }

 private:
  std::uint32_t total_;
  std::vector<std::uint32_t> free_;      ///< Allocatable now.
  std::vector<std::uint32_t> returned_;  ///< Freed this cycle.
  std::vector<bool> allocated_;          ///< Double-alloc/free detector.
  std::uint32_t peak_in_use_ = 0;
};

}  // namespace pmsb
