#include "core/event_hub.hpp"

#include <algorithm>

namespace pmsb {

Subscription EventHub::subscribe(SwitchEvents ev) {
  const std::uint64_t id = state_->next_id++;
  state_->entries.push_back(detail::EventHubState::Entry{id, std::move(ev)});
  return Subscription(state_, id);
}

void Subscription::reset() {
  if (id_ == 0) return;
  if (auto s = state_.lock()) {
    auto& v = s->entries;
    v.erase(std::remove_if(v.begin(), v.end(),
                           [this](const auto& e) { return e.id == id_; }),
            v.end());
  }
  state_.reset();
  id_ = 0;
}

bool Subscription::active() const { return id_ != 0 && !state_.expired(); }

}  // namespace pmsb
