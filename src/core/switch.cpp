#include "core/switch.hpp"

namespace pmsb {

PipelinedSwitch::PipelinedSwitch(const SwitchConfig& cfg, AddrPathMode addr_mode)
    : cfg_((cfg.validate(), cfg)),
      S_(cfg.stages()),
      m_(cfg.segments_per_cell()),
      mem_(S_, cfg.capacity_segments, cfg.word_bits, addr_mode),
      ir_(cfg.n_ports, S_, cfg.word_bits),
      orow_(S_, cfg.n_ports, cfg.word_bits),
      free_(cfg.capacity_segments),
      oq_(cfg.n_ports),
      resv_(static_cast<std::size_t>(m_) * S_ + S_ + 2),
      rr_read_(cfg.n_ports),
      rr_write_(cfg.n_ports),
      in_links_(cfg.n_ports),
      out_links_(cfg.n_ports),
      in_fsm_(cfg.n_ports),
      pending_(cfg.n_ports),
      next_read_ok_(cfg.n_ports, 0) {}

void PipelinedSwitch::register_metrics(obs::MetricsRegistry& m, const std::string& prefix) {
  // Counters: updated from the hot path through the cached pointers.
  m_wave_init_ = m.counter(prefix + ".wave_initiations");
  m_cut_through_ = m.counter(prefix + ".cut_through_cells");
  m_read_stall_ = m.counter(prefix + ".stalled_read_initiations");
  // Gauges: pulled only when the engine's sampling period fires.
  m.add_gauge(prefix + ".free_list.in_use",
              [this] { return static_cast<double>(free_.in_use()); });
  m.add_gauge(prefix + ".free_list.peak_in_use",
              [this] { return static_cast<double>(free_.peak_in_use()); });
  m.add_gauge(prefix + ".out_queues.total_depth",
              [this] { return static_cast<double>(oq_.total_size()); });
  m.add_gauge(prefix + ".out_queues.peak_depth",
              [this] { return static_cast<double>(oq_.peak_total_size()); });
  for (unsigned o = 0; o < cfg_.n_ports; ++o) {
    m.add_gauge(prefix + ".out_queues.depth." + std::to_string(o),
                [this, o] { return static_cast<double>(oq_.size(o)); });
  }
  m.add_gauge(prefix + ".mem.initiations",
              [this] { return static_cast<double>(mem_.initiations()); });
}

void PipelinedSwitch::eval(Cycle t) {
  ++stats_.cycles;
  // Order within the cycle (all steps read only state committed at end of
  // t-1, except where noted):
  //  1. Arbitrate / execute the stage-0 slot; drop expired pending cells.
  //  2. Execute all memory stages per the control pipeline.
  //  3. Drive outgoing links from the output-row loads of this cycle
  //     (register -> pad driver path: value appears on the wire at t+1).
  //  4. Latch arriving words; register new pending cells. This runs after
  //     arbitration so a pending head becomes eligible the cycle *after*
  //     its arrival cycle (window [a0+1, a0+S]).
  arbitrate_and_initiate(t);
  mem_.exec_cycle(ir_, orow_);
  orow_.drive_links(out_links_);
  process_arrivals(t);
}

void PipelinedSwitch::arbitrate_and_initiate(Cycle t) {
  bool read_granted = false;
  if (resv_.slot_free(t)) {
    // New grant: reads have priority over writes (section 3.2: "higher
    // priority is given to the outgoing links").
    read_granted = try_grant_read(t);
    if (!read_granted) try_grant_write(t);
  }
  // A cycle in which queued cells exist but no read wave was granted is a
  // stalled read initiation: the stage-0 slot was reserved by a continuing
  // wave, or every eligible output was pacing (next_read_ok_) or gated.
  if (!read_granted && oq_.total_size() != 0) {
    ++stats_.read_stall_cycles;
    if (m_read_stall_) m_read_stall_->inc();
  }
  // Pending cells that see a full buffer this cycle lose their window
  // guarantee; record it so an eventual drop is attributed correctly.
  if (!free_.can_alloc(m_)) {
    for (auto& p : pending_) {
      if (p.valid) p.addr_starved = true;
    }
  }
  expire_pending(t);

  const SlotOp op = resv_.take(t);
  if (op.empty()) {
    ++stats_.idle_cycles;
    return;
  }

  StageCtrl c;
  if (op.has_write && op.has_read) {
    PMSB_CHECK(op.w_addr == op.r_addr, "snoop slot with mismatched addresses");
    c.op = StageOp::kWriteSnoop;
    ++stats_.snoop_initiations;
  } else if (op.has_write) {
    c.op = StageOp::kWrite;
    ++stats_.write_initiations;
  } else {
    c.op = StageOp::kRead;
    ++stats_.read_initiations;
  }
  c.addr = op.has_write ? op.w_addr : op.r_addr;
  c.in_link = op.in_link;
  c.out_link = op.out_link;
  c.head = op.has_read ? op.r_head : op.w_head;

  if (op.has_write) {
    // The wave consumes IR[in][s] at cycle t+s; forbid earlier overwrites.
    ir_.protect_for_wave(op.in_link, t, op.w_a0);
  }
  if (op.has_read) {
    // The segment's buffer address is recycled once its read wave has been
    // initiated: any re-allocation writes strictly behind this read at
    // every stage (DESIGN.md section 4).
    free_.release(op.r_addr);
  }
  if (m_wave_init_) m_wave_init_->inc();
  if (tracing()) {
    trace_push({t, obs::TraceEvent::kWaveInit, static_cast<std::uint16_t>(c.in_link),
                static_cast<std::uint16_t>(c.out_link), c.addr,
                static_cast<std::uint32_t>(c.op)});
  }
  mem_.initiate(c);
}

bool PipelinedSwitch::try_grant_read(Cycle t) {
  if (!resv_.progression_free(t, S_, m_)) return false;
  const int o = rr_read_.pick([&](unsigned out) {
    return next_read_ok_[out] <= t && !oq_.empty(out) &&
           (!output_gate_ || output_gate_(out));
  });
  if (o < 0) return false;

  BufferedCell cell = oq_.pop(static_cast<unsigned>(o));
  resv_.reserve_reads(t, S_, cell.seg_addrs, static_cast<unsigned>(o));
  next_read_ok_[o] = t + static_cast<Cycle>(m_) * S_;
  ++stats_.read_grants;
  // Cut-through: departure initiated before the tail word has arrived
  // (tail on the input wire during a0 + L - 1).
  const bool cut = t < cell.head_arrival + static_cast<Cycle>(cfg_.cell_words) - 1;
  if (cut) {
    ++stats_.cut_through_cells;
    if (m_cut_through_) m_cut_through_->inc();
  }
  if (tracing()) {
    trace_push({t, obs::TraceEvent::kReadGrant, static_cast<std::uint16_t>(cell.input),
                static_cast<std::uint16_t>(o), cell.seg_addrs.front(), 0});
    if (cut)
      trace_push({t, obs::TraceEvent::kCutThrough, static_cast<std::uint16_t>(cell.input),
                  static_cast<std::uint16_t>(o), cell.seg_addrs.front(), 0});
  }
  events_.read_grant(static_cast<unsigned>(o), cell.input, t, cell.write_start,
                     cell.head_arrival, cut);
  return true;
}

bool PipelinedSwitch::try_grant_write(Cycle t) {
  if (!resv_.progression_free(t, S_, m_)) return false;
  const int i = rr_write_.pick([&](unsigned in) {
    return pending_[in].valid && free_.can_alloc(m_);
  });
  if (i < 0) return false;
  if (fault_.suppress_write_grant_period != 0 &&
      ++fault_write_grants_ % fault_.suppress_write_grant_period == 0) {
    // Injected arbiter bug: the grant this cell was owed never happens, so
    // its latch-window deadline can silently pass (see FaultPlan).
    return false;
  }

  Pending& p = pending_[i];
  const SegAddrs addrs = free_.alloc(m_);
  resv_.reserve_writes(t, S_, addrs, static_cast<unsigned>(i), p.a0);
  ++stats_.accepted;
  if (tracing())
    trace_push({t, obs::TraceEvent::kWriteWave, static_cast<std::uint16_t>(i), 0,
                addrs.front(), static_cast<std::uint32_t>(t - p.a0)});
  events_.accept(static_cast<unsigned>(i), p.a0, t);

  // Automatic cut-through (section 3.3): if the destination is idle and has
  // nothing queued ahead of this cell, co-initiate the snooping read on the
  // very same slots.
  const unsigned dest = p.dest;
  if (cfg_.cut_through && next_read_ok_[dest] <= t && oq_.empty(dest) &&
      (!output_gate_ || output_gate_(dest))) {
    resv_.attach_snoop_reads(t, S_, addrs, dest);
    next_read_ok_[dest] = t + static_cast<Cycle>(m_) * S_;
    ++stats_.read_grants;
    ++stats_.snoop_cells;
    const bool cut = t < p.a0 + static_cast<Cycle>(cfg_.cell_words) - 1;
    if (cut) {
      ++stats_.cut_through_cells;
      if (m_cut_through_) m_cut_through_->inc();
    }
    if (tracing()) {
      trace_push({t, obs::TraceEvent::kSnoop, static_cast<std::uint16_t>(i),
                  static_cast<std::uint16_t>(dest), addrs.front(), 0});
      if (cut)
        trace_push({t, obs::TraceEvent::kCutThrough, static_cast<std::uint16_t>(i),
                    static_cast<std::uint16_t>(dest), addrs.front(), 0});
    }
    events_.read_grant(dest, static_cast<unsigned>(i), t, t, p.a0, cut);
  } else {
    oq_.push(BufferedCell{static_cast<unsigned>(i), dest, p.a0, t, addrs});
  }
  p.valid = false;
  return true;
}

void PipelinedSwitch::expire_pending(Cycle t) {
  for (unsigned i = 0; i < cfg_.n_ports; ++i) {
    Pending& p = pending_[i];
    if (!p.valid) continue;
    const Cycle deadline = p.a0 + static_cast<Cycle>(S_);
    PMSB_CHECK(t <= deadline, "pending write survived past its latch window");
    if (t < deadline) continue;
    // Last chance was this cycle and it was not granted: the latches will be
    // reused, the cell is lost. A cell that was ever blocked on buffer space
    // during its window is a buffer-full loss; only a cell that had space
    // available throughout yet never got a stage-0 slot is a slot-miss
    // (impossible for single-segment cells -- DESIGN.md invariant 2).
    const DropReason why = p.addr_starved ? DropReason::kNoAddress : DropReason::kNoSlot;
    if (why == DropReason::kNoAddress)
      ++stats_.dropped_no_addr;
    else
      ++stats_.dropped_no_slot;
    events_.drop(i, p.a0, why);
    if (tracing())
      trace_push({t, obs::TraceEvent::kDrop, static_cast<std::uint16_t>(i), 0, 0,
                  static_cast<std::uint32_t>(why)});
    p.valid = false;
  }
}

void PipelinedSwitch::process_arrivals(Cycle t) {
  for (unsigned i = 0; i < cfg_.n_ports; ++i) {
    const Flit& f = in_links_[i].now();
    InFsm& fsm = in_fsm_[i];
    if (!fsm.receiving) {
      if (!f.valid) continue;
      PMSB_CHECK(f.sop, "cell body word arrived while the input expected a head");
      fsm.receiving = true;
      fsm.phase = 0;
      fsm.dest = decode_dest(f.data, cfg_.cell_format());
      PMSB_CHECK(fsm.dest < cfg_.n_ports, "destination out of range");
      fsm.a0 = t;
      ir_.latch(i, 0, f.data, t);
      fsm.phase = 1;
      PMSB_CHECK(!pending_[i].valid, "new head while the previous cell is unresolved");
      ++stats_.heads_seen;
      events_.head(i, t, fsm.dest);
      if (tracing())
        trace_push({t, obs::TraceEvent::kHead, static_cast<std::uint16_t>(i),
                    static_cast<std::uint16_t>(fsm.dest), 0, 0});
      // Anti-hogging threshold (arrival-time discard): a saturated output is
      // not allowed to absorb the whole shared pool.
      if (cfg_.out_queue_limit != 0 && oq_.size(fsm.dest) >= cfg_.out_queue_limit) {
        ++stats_.dropped_out_limit;
        events_.drop(i, t, DropReason::kOutputLimit);
        if (tracing())
          trace_push({t, obs::TraceEvent::kDrop, static_cast<std::uint16_t>(i),
                      static_cast<std::uint16_t>(fsm.dest), 0,
                      static_cast<std::uint32_t>(DropReason::kOutputLimit)});
        continue;
      }
      pending_[i] = Pending{true, t, fsm.dest, false};
    } else {
      PMSB_CHECK(f.valid && !f.sop, "gap or unexpected head inside a cell");
      ir_.latch(i, fsm.phase % S_, f.data, t);
      ++fsm.phase;
      if (fsm.phase == cfg_.cell_words) fsm.receiving = false;
    }
  }
}

void PipelinedSwitch::commit(Cycle t) {
  ir_.tick(t);
  mem_.tick();
  orow_.tick();
  free_.tick();
  oq_.tick();
  for (auto& l : in_links_) l.tick();
  for (auto& l : out_links_) l.tick();
}

bool PipelinedSwitch::drained() const {
  if (oq_.total_size() != 0 || free_.in_use() != 0 || mem_.busy()) return false;
  for (const auto& f : in_fsm_) {
    if (f.receiving) return false;
  }
  for (const auto& p : pending_) {
    if (p.valid) return false;
  }
  return true;
}

bool PipelinedSwitch::is_quiescent(Cycle) const {
  // Fully drained AND the link wires carry nothing: a drained switch may
  // still be shifting a departed cell's tail words onto an output link, and
  // an arriving head on an input link would be consumed by the next eval.
  // In this state eval() takes the empty-slot early exit (touching only the
  // cycles/idle_cycles counters, compensated by skip()) and commit() ticks
  // empty structures and idle wires.
  if (!drained()) return false;
  for (const auto& l : in_links_) {
    if (!l.idle()) return false;
  }
  for (const auto& l : out_links_) {
    if (!l.idle()) return false;
  }
  return true;
}

void PipelinedSwitch::skip(Cycle, Cycle n) {
  // Each skipped cycle would have taken the idle path of eval().
  stats_.cycles += static_cast<std::uint64_t>(n);
  stats_.idle_cycles += static_cast<std::uint64_t>(n);
}

}  // namespace pmsb
