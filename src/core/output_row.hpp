// The single shared row of output buffer registers (figure 4).
//
// "Figure 4 uses only one row of output buffer registers shared among all
//  outgoing links, with the restriction that no two outgoing links can
//  start sending out packets in the same cycle." (section 3.2)
//
// OR[s] is loaded at the end of the cycle in which stage s performs a read
// (or snoops a write bus), and drives the selected outgoing link during the
// following cycle. Because read waves advance one stage per cycle, each
// OR[s] value is consumed exactly one cycle after it is loaded; the class
// asserts that sharing discipline (one load per stage per cycle; one
// register driving a given link per cycle -- the latter via WireLink's
// single-driver check).

#pragma once

#include <cstdint>
#include <vector>

#include "common/cell.hpp"
#include "common/util.hpp"
#include "sim/wire.hpp"

namespace pmsb {

class OutputRow {
 public:
  OutputRow(unsigned stages, unsigned n_outputs, unsigned word_bits);

  /// Stage s captures `data` this cycle, to drive `out_link` next cycle.
  /// `sop` marks the head word of a cell (stage 0 of the head segment).
  void load(unsigned s, Word data, unsigned out_link, bool sop);

  /// Put every value loaded this cycle onto its outgoing link for the next
  /// cycle (the register -> link-driver path). Call once per eval, after the
  /// memory stages executed.
  void drive_links(std::vector<WireLink>& out_links);

  /// Clock edge.
  void tick();

 private:
  unsigned stages_;
  unsigned n_outputs_;
  Word mask_;

  struct Slot {
    bool valid = false;
    unsigned out_link = 0;
    Flit flit;
  };
  std::vector<Slot> staged_;  ///< Loads performed this cycle.
};

}  // namespace pmsb
