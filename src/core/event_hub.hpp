// Multi-subscriber switch event API.
//
// Every cycle-accurate switch publishes its head/accept/drop/read-grant
// notifications through an EventHub. Any number of observers -- scoreboard,
// invariant checker, fabric port bridges, metrics adapters, tests -- attach
// additively with subscribe() and detach via the returned RAII Subscription;
// none of them can sever the others (the failure mode of the old
// single-consumer set_events() slot, which needed a fragile "events replaced"
// re-chain hook to keep the invariant checker alive).
//
// Semantics:
//  * Fan-out is in registration order: for each event, subscribers see it in
//    the order their subscribe() calls ran. Tests rely on this.
//  * Subscription is move-only; destroying (or reset()-ing) it removes the
//    callbacks. The hub's state is shared, so a Subscription outliving its
//    switch is safe -- reset() becomes a no-op.
//  * Callbacks fire during the switch's eval phase, on the simulation thread
//    that owns the switch. Do not subscribe or unsubscribe from inside a
//    callback (the fan-out loop walks the subscriber list).

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/util.hpp"

namespace pmsb {

enum class DropReason : std::uint8_t {
  kNoAddress,    ///< Shared buffer full for the whole acceptance window.
  kNoSlot,       ///< No stage-0 slot in the window (should not occur for
                 ///< single-segment cells; counted, never silently ignored).
  kOutputLimit,  ///< Destination's per-output occupancy cap reached (the
                 ///< anti-hogging threshold, SwitchConfig::out_queue_limit).
};

/// One subscriber's callbacks. All are optional; they fire during eval of the
/// cycle named in their arguments.
struct SwitchEvents {
  /// A cell's head word was latched (end of cycle a0), destined to `dest`.
  std::function<void(unsigned input, Cycle a0, unsigned dest)> on_head;
  /// The cell that arrived at (input, a0) was granted its write wave at t0.
  std::function<void(unsigned input, Cycle a0, Cycle t0)> on_accept;
  /// The cell that arrived at (input, a0) was dropped.
  std::function<void(unsigned input, Cycle a0, DropReason why)> on_drop;
  /// A read wave was granted at tr for the cell that arrived at (input,a0)
  /// and was written from t0; `cut_through` = departure began before the
  /// tail had arrived.
  std::function<void(unsigned output, unsigned input, Cycle tr, Cycle t0, Cycle a0,
                     bool cut_through)>
      on_read_grant;
};

namespace detail {
/// Shared between an EventHub and its outstanding Subscriptions so either
/// side may die first.
struct EventHubState {
  struct Entry {
    std::uint64_t id;
    SwitchEvents ev;
  };
  std::vector<Entry> entries;  ///< Registration order.
  std::uint64_t next_id = 1;
};
}  // namespace detail

/// RAII handle for one subscriber slot. Default-constructed = inactive.
class Subscription {
 public:
  Subscription() = default;
  Subscription(Subscription&& o) noexcept : state_(std::move(o.state_)), id_(o.id_) {
    o.state_.reset();
    o.id_ = 0;
  }
  Subscription& operator=(Subscription&& o) noexcept {
    if (this != &o) {
      reset();
      state_ = std::move(o.state_);
      id_ = o.id_;
      o.state_.reset();
      o.id_ = 0;
    }
    return *this;
  }
  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;
  ~Subscription() { reset(); }

  /// Unsubscribe now (idempotent; no-op if the hub is already gone).
  void reset();

  /// True while this handle still holds a live subscriber slot.
  bool active() const;

 private:
  friend class EventHub;
  Subscription(std::weak_ptr<detail::EventHubState> s, std::uint64_t id)
      : state_(std::move(s)), id_(id) {}

  std::weak_ptr<detail::EventHubState> state_;
  std::uint64_t id_ = 0;
};

/// The per-switch fan-out point. Owned by the switch; emit methods are called
/// from the switch's eval phase and loop over subscribers in registration
/// order. An empty hub costs one vector-empty test per event.
class EventHub {
 public:
  EventHub() : state_(std::make_shared<detail::EventHubState>()) {}
  EventHub(const EventHub&) = delete;
  EventHub& operator=(const EventHub&) = delete;

  /// Attach callbacks; they stay installed until the returned Subscription is
  /// destroyed or reset().
  Subscription subscribe(SwitchEvents ev);

  std::size_t subscriber_count() const { return state_->entries.size(); }
  bool empty() const { return state_->entries.empty(); }

  // --- Emission (switch internals) -------------------------------------
  void head(unsigned input, Cycle a0, unsigned dest) const {
    for (const auto& e : state_->entries)
      if (e.ev.on_head) e.ev.on_head(input, a0, dest);
  }
  void accept(unsigned input, Cycle a0, Cycle t0) const {
    for (const auto& e : state_->entries)
      if (e.ev.on_accept) e.ev.on_accept(input, a0, t0);
  }
  void drop(unsigned input, Cycle a0, DropReason why) const {
    for (const auto& e : state_->entries)
      if (e.ev.on_drop) e.ev.on_drop(input, a0, why);
  }
  void read_grant(unsigned output, unsigned input, Cycle tr, Cycle t0, Cycle a0,
                  bool cut_through) const {
    for (const auto& e : state_->entries)
      if (e.ev.on_read_grant) e.ev.on_read_grant(output, input, tr, t0, a0, cut_through);
  }

 private:
  std::shared_ptr<detail::EventHubState> state_;
};

}  // namespace pmsb
