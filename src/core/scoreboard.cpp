#include "core/scoreboard.hpp"

#include <memory>

namespace pmsb {

Scoreboard::Scoreboard(unsigned n_inputs, unsigned n_outputs, const CellFormat& fmt)
    : n_in_(n_inputs), n_out_(n_outputs), fmt_(fmt), awaiting_decision_(n_inputs),
      in_flight_(static_cast<std::size_t>(n_inputs) * n_outputs) {}

void Scoreboard::fail(std::string msg) {
  if (errors_.size() < 64) errors_.push_back(std::move(msg));
}

void Scoreboard::on_inject(const CellSource::Injection& inj) {
  ++injected_;
  if (inj.input >= n_in_ || inj.dest >= n_out_) {
    fail("injection with out-of-range ports");
    return;
  }
  awaiting_decision_[inj.input].push_back(Record{inj.uid, inj.input, inj.dest, inj.head_on_wire});
}

void Scoreboard::on_accept(unsigned input, Cycle a0, Cycle t0) {
  if (input >= n_in_ || awaiting_decision_[input].empty()) {
    fail("accept event with no cell awaiting a decision");
    return;
  }
  Record r = awaiting_decision_[input].front();
  awaiting_decision_[input].pop_front();
  if (r.head_on_wire + input_delay_ != a0)
    fail("accept event cycle mismatch: expected a0=" +
         std::to_string(r.head_on_wire + input_delay_) + " got " + std::to_string(a0));
  if (t0 <= a0) fail("write wave granted before the head word was latched");
  in_flight_[static_cast<std::size_t>(input) * n_out_ + r.dest].push_back(r);
}

void Scoreboard::on_drop(unsigned input, Cycle a0, DropReason) {
  ++dropped_;
  if (input >= n_in_ || awaiting_decision_[input].empty()) {
    fail("drop event with no cell awaiting a decision");
    return;
  }
  Record r = awaiting_decision_[input].front();
  awaiting_decision_[input].pop_front();
  if (r.head_on_wire + input_delay_ != a0) fail("drop event cycle mismatch");
}

void Scoreboard::on_deliver(const CellSink::Delivery& d) {
  ++delivered_;
  if (d.output >= n_out_) {
    fail("delivery on out-of-range output");
    return;
  }
  if (d.words.size() != fmt_.length_words) {
    fail("delivered cell has wrong length");
    return;
  }
  // The delivered cell must be the oldest in-flight cell of exactly one
  // (input, d.output) pair -- per-pair FIFO order through the shared buffer.
  for (unsigned i = 0; i < n_in_; ++i) {
    auto& q = in_flight_[static_cast<std::size_t>(i) * n_out_ + d.output];
    if (q.empty()) continue;
    const Record& r = q.front();
    if (cell_matches(d.words, r.uid, r.dest, fmt_)) {
      latency_.record(r.head_on_wire, d.head_cycle);
      q.pop_front();
      return;
    }
  }
  fail("delivered cell at output " + std::to_string(d.output) +
       " matches no head-of-line in-flight cell (corruption or reordering), head word=" +
       std::to_string(d.words[0]));
}

bool Scoreboard::fully_drained() const {
  for (const auto& q : awaiting_decision_) {
    if (!q.empty()) return false;
  }
  for (const auto& q : in_flight_) {
    if (!q.empty()) return false;
  }
  return true;
}

}  // namespace pmsb
