#include "core/routing_table.hpp"

namespace pmsb {

RoutingTable::RoutingTable(unsigned vc_bits)
    : vc_bits_(vc_bits), entries_(std::size_t{1} << vc_bits) {
  PMSB_CHECK(vc_bits >= 1 && vc_bits <= 20, "vc_bits out of a sane range");
}

void RoutingTable::program(std::uint32_t vc, std::uint16_t out_port, std::uint32_t next_vc) {
  PMSB_CHECK(vc < entries_.size(), "VC beyond the table");
  PMSB_CHECK(next_vc < entries_.size(), "next-hop VC beyond the VC space");
  entries_[vc] = Entry{true, out_port, next_vc};
}

void RoutingTable::invalidate(std::uint32_t vc) {
  PMSB_CHECK(vc < entries_.size(), "VC beyond the table");
  entries_[vc] = Entry{};
}

const RoutingTable::Entry& RoutingTable::lookup(std::uint32_t vc) const {
  PMSB_CHECK(vc < entries_.size(), "VC beyond the table");
  return entries_[vc];
}

std::uint32_t head_vc(Word head, const CellFormat& fmt, unsigned vc_bits) {
  return static_cast<std::uint32_t>(decode_tag(head, fmt) & low_mask(vc_bits));
}

Word make_translated_head(Word head, const CellFormat& fmt, unsigned vc_bits,
                          std::uint16_t out_port, std::uint32_t next_vc) {
  PMSB_CHECK((out_port & ~low_mask(fmt.dest_bits)) == 0, "output port beyond dest field");
  const Word tag = decode_tag(head, fmt);
  const Word new_tag = (tag & ~low_mask(vc_bits)) | next_vc;
  return (new_tag << fmt.dest_bits) | out_port;
}

HeaderTranslator::HeaderTranslator(WireLink* from, WireLink* to, const CellFormat& fmt,
                                   const RoutingTable* table)
    : from_(from), to_(to), fmt_(fmt), table_(table) {
  PMSB_CHECK(from != nullptr && to != nullptr && table != nullptr,
             "translator needs links and a table");
  PMSB_CHECK(table->vc_bits() <= fmt.tag_bits(), "VC field wider than the header tag");
}

void HeaderTranslator::eval(Cycle) {
  const Flit& f = from_->now();
  if (!f.valid) return;
  if (f.sop) {
    PMSB_CHECK(!forwarding_ && !discarding_, "head arrived inside a cell");
    const std::uint32_t vc = head_vc(f.data, fmt_, table_->vc_bits());
    const RoutingTable::Entry& e = table_->lookup(vc);
    words_left_ = fmt_.length_words;
    if (!e.valid) {
      ++cells_unroutable_;
      discarding_ = true;
    } else {
      ++cells_translated_;
      forwarding_ = true;
      to_->drive_next(Flit{true, true, make_translated_head(f.data, fmt_, table_->vc_bits(),
                                                            e.out_port, e.next_vc)});
    }
  } else if (forwarding_) {
    to_->drive_next(f);
  }
  if (forwarding_ || discarding_) {
    if (--words_left_ == 0) {
      forwarding_ = false;
      discarding_ = false;
    }
  }
}

void HeaderTranslator::commit(Cycle) {}

}  // namespace pmsb
