#include "core/dual_switch.hpp"

#include <stdexcept>

namespace pmsb {

ConfigValidation DualSwitchConfig::check() const {
  ConfigValidation v;
  auto issue = [&v](ConfigIssue::Code c, std::string msg) {
    v.issues.push_back(ConfigIssue{c, std::move(msg)});
  };
  if (n_ports < 2)
    issue(ConfigIssue::Code::kBadPorts, "dual organization needs n_ports >= 2");
  if (word_bits < 1 || word_bits > 64)
    issue(ConfigIssue::Code::kBadWordBits, "word_bits must be in [1, 64]");
  else if (dest_bits() >= word_bits)
    issue(ConfigIssue::Code::kHeadTooNarrow,
          "head word too narrow for the destination field");
  if (capacity_segments_per_group == 0)
    issue(ConfigIssue::Code::kBadCapacity, "capacity must be >= 1 cell per group");
  if (clock_mhz <= 0) issue(ConfigIssue::Code::kBadClock, "clock_mhz must be positive");
  return v;
}

void DualSwitchConfig::validate() const {
  const ConfigValidation v = check();
  if (!v.ok()) throw std::invalid_argument(v.summary());
}

DualPipelinedSwitch::DualPipelinedSwitch(const DualSwitchConfig& cfg, AddrPathMode addr_mode)
    : cfg_((cfg.validate(), cfg)),
      S_(cfg.stages()),
      mem_{PipelinedMemory(S_, cfg.capacity_segments_per_group, cfg.word_bits, addr_mode),
           PipelinedMemory(S_, cfg.capacity_segments_per_group, cfg.word_bits, addr_mode)},
      ir_(cfg.n_ports, S_, cfg.word_bits),
      orow_(S_, cfg.n_ports, cfg.word_bits),
      free_{FreeList(cfg.capacity_segments_per_group), FreeList(cfg.capacity_segments_per_group)},
      rr_read_(cfg.n_ports),
      rr_write_(cfg.n_ports),
      queues_(cfg.n_ports),
      in_links_(cfg.n_ports),
      out_links_(cfg.n_ports),
      in_fsm_(cfg.n_ports),
      pending_(cfg.n_ports),
      next_read_ok_(cfg.n_ports, 0) {}

void DualPipelinedSwitch::eval(Cycle t) {
  ++stats_.cycles;
  const int read_group = grant_read(t);
  grant_write(t, read_group);
  // Record address starvation for drop attribution: a pending write that
  // cannot find space in any group it is allowed to use this cycle has lost
  // its window guarantee.
  const bool space0 = read_group != 0 && free_[0].can_alloc(1);
  const bool space1 = read_group != 1 && free_[1].can_alloc(1);
  if (!space0 && !space1) {
    for (auto& p : pending_) {
      if (p.valid) p.addr_starved = true;
    }
  }
  expire_pending(t);
  mem_[0].exec_cycle(ir_, orow_);
  mem_[1].exec_cycle(ir_, orow_);
  orow_.drive_links(out_links_);
  process_arrivals(t);
}

int DualPipelinedSwitch::grant_read(Cycle t) {
  const int o = rr_read_.pick([&](unsigned out) {
    return next_read_ok_[out] <= t && !queues_[out].empty();
  });
  if (o < 0) return -1;
  DualCell cell = queues_[o].front();
  queues_[o].pop_front();
  next_read_ok_[o] = t + static_cast<Cycle>(S_);

  StageCtrl c;
  c.op = StageOp::kRead;
  c.addr = cell.addr;
  c.out_link = static_cast<std::uint16_t>(o);
  c.head = true;
  mem_[cell.group].initiate(c);
  free_[cell.group].release(cell.addr);
  ++stats_.read_initiations;
  ++stats_.read_grants;
  const bool cut = t < cell.a0 + static_cast<Cycle>(cfg_.cell_words()) - 1;
  if (cut) ++stats_.cut_through_cells;
  events_.read_grant(static_cast<unsigned>(o), cell.input, t, cell.t0, cell.a0, cut);
  return static_cast<int>(cell.group);
}

void DualPipelinedSwitch::grant_write(Cycle t, int read_group) {
  // "One write operation ... will be initiated into the other one of the two
  //  memories" -- the group being read this cycle is off limits.
  const auto group_allowed = [&](unsigned g) {
    return static_cast<int>(g) != read_group && free_[g].can_alloc(1);
  };
  const int i = rr_write_.pick([&](unsigned in) {
    return pending_[in].valid && (group_allowed(0) || group_allowed(1));
  });
  if (i < 0) return;

  // Prefer the group with more free space (keeps the two halves balanced).
  unsigned g;
  if (group_allowed(0) && group_allowed(1))
    g = free_[0].available() >= free_[1].available() ? 0 : 1;
  else
    g = group_allowed(0) ? 0 : 1;

  Pending& p = pending_[i];
  const std::uint32_t addr = free_[g].alloc(1)[0];
  ir_.protect_for_wave(static_cast<unsigned>(i), t, p.a0);
  ++stats_.accepted;
  events_.accept(static_cast<unsigned>(i), p.a0, t);

  StageCtrl c;
  c.addr = addr;
  c.in_link = static_cast<std::uint16_t>(i);
  c.head = true;

  const unsigned dest = p.dest;
  const bool can_snoop = cfg_.cut_through && read_group < 0 && next_read_ok_[dest] <= t &&
                         queues_[dest].empty();
  if (can_snoop) {
    c.op = StageOp::kWriteSnoop;
    c.out_link = static_cast<std::uint16_t>(dest);
    next_read_ok_[dest] = t + static_cast<Cycle>(S_);
    free_[g].release(addr);  // Streams straight through; recycled immediately.
    ++stats_.snoop_initiations;
    ++stats_.snoop_cells;
    ++stats_.read_grants;
    const bool cut = t < p.a0 + static_cast<Cycle>(cfg_.cell_words()) - 1;
    if (cut) ++stats_.cut_through_cells;
    events_.read_grant(dest, static_cast<unsigned>(i), t, t, p.a0, cut);
  } else {
    c.op = StageOp::kWrite;
    ++stats_.write_initiations;
    staged_pushes_.push_back(DualCell{static_cast<unsigned>(i), dest, g, addr, p.a0, t});
  }
  mem_[g].initiate(c);
  if (read_group >= 0) ++dual_cycles_;
  p.valid = false;
}

void DualPipelinedSwitch::expire_pending(Cycle t) {
  for (unsigned i = 0; i < cfg_.n_ports; ++i) {
    Pending& p = pending_[i];
    if (!p.valid) continue;
    const Cycle deadline = p.a0 + static_cast<Cycle>(S_);
    PMSB_CHECK(t <= deadline, "pending write survived past its latch window");
    if (t < deadline) continue;
    if (p.addr_starved)
      ++stats_.dropped_no_addr;
    else
      ++stats_.dropped_no_slot;
    events_.drop(i, p.a0,
                 p.addr_starved ? DropReason::kNoAddress : DropReason::kNoSlot);
    p.valid = false;
  }
}

void DualPipelinedSwitch::process_arrivals(Cycle t) {
  for (unsigned i = 0; i < cfg_.n_ports; ++i) {
    const Flit& f = in_links_[i].now();
    InFsm& fsm = in_fsm_[i];
    if (!fsm.receiving) {
      if (!f.valid) continue;
      PMSB_CHECK(f.sop, "cell body word arrived while the input expected a head");
      fsm.receiving = true;
      fsm.dest = decode_dest(f.data, cfg_.cell_format());
      PMSB_CHECK(fsm.dest < cfg_.n_ports, "destination out of range");
      fsm.a0 = t;
      ir_.latch(i, 0, f.data, t);
      fsm.phase = 1;
      PMSB_CHECK(!pending_[i].valid, "new head while the previous cell is unresolved");
      pending_[i] = Pending{true, t, fsm.dest, false};
      ++stats_.heads_seen;
      events_.head(i, t, fsm.dest);
    } else {
      PMSB_CHECK(f.valid && !f.sop, "gap or unexpected head inside a cell");
      ir_.latch(i, fsm.phase % S_, f.data, t);
      ++fsm.phase;
      if (fsm.phase == cfg_.cell_words()) fsm.receiving = false;
    }
  }
}

void DualPipelinedSwitch::commit(Cycle t) {
  ir_.tick(t);
  mem_[0].tick();
  mem_[1].tick();
  orow_.tick();
  free_[0].tick();
  free_[1].tick();
  for (auto& c : staged_pushes_) queues_[c.dest].push_back(c);
  staged_pushes_.clear();
  for (auto& l : in_links_) l.tick();
  for (auto& l : out_links_) l.tick();
}

bool DualPipelinedSwitch::drained() const {
  if (mem_[0].busy() || mem_[1].busy()) return false;
  if (free_[0].in_use() != 0 || free_[1].in_use() != 0) return false;
  for (const auto& q : queues_) {
    if (!q.empty()) return false;
  }
  for (const auto& f : in_fsm_) {
    if (f.receiving) return false;
  }
  for (const auto& p : pending_) {
    if (p.valid) return false;
  }
  return true;
}

}  // namespace pmsb
