#include "core/reservation.hpp"

namespace pmsb {

ReservationTable::ReservationTable(std::size_t horizon) : ring_(horizon) {
  PMSB_CHECK(horizon >= 2, "reservation horizon too small");
}

bool ReservationTable::slot_free(Cycle t) const {
  const Entry& e = at(t);
  return e.cycle != t || e.op.empty();
}

bool ReservationTable::progression_free(Cycle t0, Cycle step, unsigned count) const {
  PMSB_CHECK(static_cast<std::size_t>(step) * count < ring_.size() + static_cast<std::size_t>(step),
             "reservation beyond the table horizon");
  for (unsigned k = 0; k < count; ++k) {
    if (!slot_free(t0 + static_cast<Cycle>(k) * step)) return false;
  }
  return true;
}

ReservationTable::Entry& ReservationTable::occupied_at(Cycle t) {
  Entry& e = at(t);
  if (e.cycle != t) {
    PMSB_CHECK(e.cycle < t, "reservation ring wrapped onto a live entry");
    e = Entry{t, SlotOp{}};
  }
  return e;
}

void ReservationTable::reserve_writes(Cycle t0, Cycle step, AddrSpan addrs,
                                      unsigned in_link, Cycle a0) {
  for (unsigned k = 0; k < addrs.size(); ++k) {
    const Cycle t = t0 + static_cast<Cycle>(k) * step;
    PMSB_CHECK(slot_free(t), "write reservation over an occupied slot");
    Entry& e = occupied_at(t);
    e.op.has_write = true;
    e.op.w_addr = addrs[k];
    e.op.in_link = static_cast<std::uint16_t>(in_link);
    e.op.w_head = (k == 0);
    e.op.w_a0 = a0 + static_cast<Cycle>(k) * step;
  }
}

void ReservationTable::reserve_reads(Cycle t0, Cycle step, AddrSpan addrs,
                                     unsigned out_link) {
  for (unsigned k = 0; k < addrs.size(); ++k) {
    const Cycle t = t0 + static_cast<Cycle>(k) * step;
    PMSB_CHECK(slot_free(t), "read reservation over an occupied slot");
    Entry& e = occupied_at(t);
    e.op.has_read = true;
    e.op.r_addr = addrs[k];
    e.op.out_link = static_cast<std::uint16_t>(out_link);
    e.op.r_head = (k == 0);
  }
}

void ReservationTable::attach_snoop_reads(Cycle t0, Cycle step, AddrSpan addrs,
                                          unsigned out_link) {
  for (unsigned k = 0; k < addrs.size(); ++k) {
    const Cycle t = t0 + static_cast<Cycle>(k) * step;
    Entry& e = at(t);
    PMSB_CHECK(e.cycle == t && e.op.has_write && !e.op.has_read,
               "snoop read must attach to a pending write slot");
    PMSB_CHECK(e.op.w_addr == addrs[k], "snoop read address differs from the write address");
    e.op.has_read = true;
    e.op.r_addr = addrs[k];
    e.op.out_link = static_cast<std::uint16_t>(out_link);
    e.op.r_head = (k == 0);
  }
}

SlotOp ReservationTable::take(Cycle t) {
  Entry& e = at(t);
  if (e.cycle != t) return SlotOp{};
  SlotOp op = e.op;
  e = Entry{};
  return op;
}

}  // namespace pmsb
