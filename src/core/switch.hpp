// PipelinedSwitch: the paper's shared-buffer crossbar switch built around a
// pipelined memory (sections 3.2-3.4), cycle-accurate at word granularity.
//
// Datapath per figure 4, control per figure 5:
//
//   in links -> input latch rows IR[i][0..S-1]
//                    |                                S = 2n stages
//                    v
//          M0 -> M1 -> ... -> M(S-1)     (single-ported SRAM banks,
//                    |                    one wave initiation per cycle)
//                    v
//           shared output register row -> out links
//
// Operation summary (timing conventions in DESIGN.md):
//  * Head word of a cell on input link i during cycle a0 -> latched into
//    IR[i][0] at the end of a0. The write wave must initiate at some
//    t0 in [a0+1, a0+S] -- before the latches are reused -- which the
//    read-priority + round-robin arbiter guarantees whenever a buffer
//    address is available (DESIGN.md invariant 2).
//  * Each cycle the arbiter initiates at most one wave at M0: a reserved
//    continuing segment, else a read (priority to outgoing links,
//    section 3.2), else a write. When a write is granted for a cell whose
//    output is idle and unqueued, a snooping read is co-initiated on the
//    same slots: automatic cut-through with head latency a0 -> a0+2.
//  * Multi-segment cells (cell_words = m * S) reserve the arithmetic
//    progression {t0 + k*S} of stage-0 slots up front; segment data is
//    always latched before its wave needs it (window arithmetic in
//    DESIGN.md).

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/arbiter.hpp"
#include "core/config.hpp"
#include "core/event_hub.hpp"
#include "core/free_list.hpp"
#include "core/input_latches.hpp"
#include "core/out_queues.hpp"
#include "core/output_row.hpp"
#include "core/pipelined_memory.hpp"
#include "core/reservation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_buffer.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "sim/wire.hpp"

namespace pmsb {

// DropReason and SwitchEvents moved to core/event_hub.hpp (re-exported here).

/// Aggregate run statistics of one switch instance.
struct SwitchStats {
  std::uint64_t heads_seen = 0;       ///< Cells whose head arrived.
  std::uint64_t accepted = 0;         ///< Cells granted a write wave.
  std::uint64_t dropped_no_addr = 0;
  std::uint64_t dropped_no_slot = 0;
  std::uint64_t dropped_out_limit = 0;
  std::uint64_t read_grants = 0;      ///< Cells granted a read wave (departures).
  std::uint64_t cut_through_cells = 0;///< Departure initiated before tail arrival.
  std::uint64_t snoop_cells = 0;      ///< Same-cycle write+read co-grants.
  std::uint64_t write_initiations = 0;
  std::uint64_t read_initiations = 0;
  std::uint64_t snoop_initiations = 0;
  std::uint64_t idle_cycles = 0;      ///< Cycles with no stage-0 initiation.
  std::uint64_t read_stall_cycles = 0;///< Cycles with queued cells but no read wave.
  std::uint64_t cycles = 0;

  std::uint64_t dropped() const {
    return dropped_no_addr + dropped_no_slot + dropped_out_limit;
  }
};

/// Test-only fault injection (src/check/): deliberately mis-arbitrate so the
/// invariant checker, minimizer, and replay tool can be demonstrated against
/// a switch that is known to be broken. All-zero = no faults.
struct FaultPlan {
  /// Every k-th otherwise-eligible write grant is silently skipped (k > 0
  /// enables). Starves pending cells past their latch-window deadline: the
  /// bug class the paper's 2n-cycle write-window invariant forbids.
  unsigned suppress_write_grant_period = 0;

  bool none() const { return suppress_write_grant_period == 0; }
};

class PipelinedSwitch : public Component {
 public:
  explicit PipelinedSwitch(const SwitchConfig& cfg,
                           AddrPathMode addr_mode = AddrPathMode::kDecodedPipeline);

  const SwitchConfig& config() const { return cfg_; }

  WireLink& in_link(unsigned i) { return in_links_.at(i); }
  WireLink& out_link(unsigned o) { return out_links_.at(o); }

  /// Multi-subscriber event fan-out: observers call
  /// `events().subscribe(SwitchEvents{...})` and hold the returned
  /// Subscription for as long as they want the callbacks.
  EventHub& events() { return events_; }
  const EventHub& events() const { return events_; }

  /// Inject arbitration faults (verification demos only; see FaultPlan).
  void set_fault_plan(const FaultPlan& f) { fault_ = f; }
  const FaultPlan& fault_plan() const { return fault_; }

  /// Live formatting of every trace record to the tracer's sink. For the
  /// bounded, allocation-free mechanism use set_trace() instead (and
  /// optionally attach the Tracer as the buffer's live drain).
  void set_tracer(Tracer* t) { tracer_ = t; }

  /// Attach a ring-buffer event trace: the switch pushes typed records
  /// (head, write-wave, read-grant, cut-through, snoop, drop, wave-init)
  /// instead of formatting text on the hot path. Null detaches.
  void set_trace(obs::TraceBuffer* tb) { trace_ = tb; }

  /// Register this switch's counters and gauges into `m` under
  /// `prefix.`-qualified names (see DESIGN.md "Observability"). Counter
  /// pointers are cached; with no registry (or a disabled one) they stay
  /// null and the hot path is unaffected.
  void register_metrics(obs::MetricsRegistry& m, const std::string& prefix = "switch");

  /// Flow-control gate: when set, a packet transmission (read wave or
  /// cut-through snoop) toward `output` may only START in cycles where the
  /// gate returns true -- e.g. when a credit bridge (net/credit_bridge.hpp)
  /// still holds downstream buffer credits. Queued cells simply wait; this
  /// is how the Telegraphos outgoing-link logic applies credit-based flow
  /// control (section 4.2) without touching the buffer organization.
  void set_output_gate(std::function<bool(unsigned output)> gate) {
    output_gate_ = std::move(gate);
  }

  // Component interface.
  void eval(Cycle t) override;
  void commit(Cycle t) override;
  bool is_quiescent(Cycle t) const override;
  void skip(Cycle t, Cycle n) override;
  std::string name() const override { return "pipelined_switch"; }

  const SwitchStats& stats() const { return stats_; }
  const PipelinedMemory& memory() const { return mem_; }
  std::uint32_t buffer_in_use() const { return free_.in_use(); }
  std::uint32_t buffer_peak() const { return free_.peak_in_use(); }
  std::size_t queued_cells() const { return oq_.total_size(); }

  // Read-only views for the invariant checker (src/check/invariants.hpp):
  // it cross-references the free list, reservation table, and output queues
  // to prove per-address exclusivity and cell conservation every cycle.
  const FreeList& free_list() const { return free_; }
  const OutQueues& out_queues() const { return oq_; }
  const ReservationTable& reservations() const { return resv_; }

  /// Cells whose head has been latched but whose accept/drop decision is
  /// still pending (at most one per input).
  unsigned pending_cells() const {
    unsigned c = 0;
    for (const auto& p : pending_) c += p.valid ? 1 : 0;
    return c;
  }

  /// True once no cell is arriving, buffered, queued, or in flight.
  bool drained() const;

 private:
  struct InFsm {
    bool receiving = false;
    unsigned phase = 0;   ///< Next word index to latch.
    unsigned dest = 0;
    Cycle a0 = 0;
  };
  struct Pending {
    bool valid = false;
    Cycle a0 = 0;
    unsigned dest = 0;
    /// The shared buffer was full during at least one cycle of this cell's
    /// acceptance window (drop classification: buffer-full, not slot-miss).
    bool addr_starved = false;
  };

  void arbitrate_and_initiate(Cycle t);
  void process_arrivals(Cycle t);
  bool try_grant_read(Cycle t);
  bool try_grant_write(Cycle t);
  void expire_pending(Cycle t);

  /// True if any trace consumer is attached (guards record construction).
  bool tracing() const { return trace_ != nullptr || tracer_ != nullptr; }
  void trace_push(const obs::TraceRecord& r) {
    if (trace_) trace_->push(r);
    if (tracer_) tracer_->record(r);
  }

  SwitchConfig cfg_;
  unsigned S_;  ///< Stages = 2n.
  unsigned m_;  ///< Segments per cell.

  PipelinedMemory mem_;
  InputLatches ir_;
  OutputRow orow_;
  FreeList free_;
  OutQueues oq_;
  ReservationTable resv_;
  RoundRobin rr_read_;
  RoundRobin rr_write_;

  std::vector<WireLink> in_links_;
  std::vector<WireLink> out_links_;
  std::vector<InFsm> in_fsm_;
  std::vector<Pending> pending_;
  std::vector<Cycle> next_read_ok_;  ///< Earliest next read initiation per output.

  EventHub events_;
  SwitchStats stats_;
  FaultPlan fault_;
  std::uint64_t fault_write_grants_ = 0;  ///< Eligible write grants seen (fault pacing).
  Tracer* tracer_ = nullptr;
  obs::TraceBuffer* trace_ = nullptr;
  // Cached registry counters (null = not registered = zero hot-path cost).
  obs::Counter* m_wave_init_ = nullptr;
  obs::Counter* m_cut_through_ = nullptr;
  obs::Counter* m_read_stall_ = nullptr;
  std::function<bool(unsigned)> output_gate_;
};

}  // namespace pmsb
