#include "core/output_row.hpp"

namespace pmsb {

OutputRow::OutputRow(unsigned stages, unsigned n_outputs, unsigned word_bits)
    : stages_(stages), n_outputs_(n_outputs), mask_(low_mask(word_bits)), staged_(stages) {
  PMSB_CHECK(stages > 0 && n_outputs > 0, "degenerate output row");
}

void OutputRow::load(unsigned s, Word data, unsigned out_link, bool sop) {
  PMSB_CHECK(s < stages_, "output-row stage out of range");
  PMSB_CHECK(out_link < n_outputs_, "output link out of range");
  PMSB_CHECK((data & ~mask_) == 0, "output word wider than the link");
  Slot& slot = staged_[s];
  PMSB_CHECK(!slot.valid, "output register loaded twice in one cycle");
  slot.valid = true;
  slot.out_link = out_link;
  slot.flit = Flit{true, sop, data};
}

void OutputRow::drive_links(std::vector<WireLink>& out_links) {
  PMSB_CHECK(out_links.size() == n_outputs_, "output link count mismatch");
  for (const auto& slot : staged_) {
    if (slot.valid) out_links[slot.out_link].drive_next(slot.flit);
  }
}

void OutputRow::tick() {
  for (auto& slot : staged_) slot = Slot{};
}

}  // namespace pmsb
