#include "core/pipelined_memory.hpp"

namespace pmsb {

PipelinedMemory::PipelinedMemory(unsigned stages, std::size_t words_per_stage, unsigned word_bits,
                                 AddrPathMode addr_mode)
    : ctrl_(stages), addr_path_(stages, words_per_stage, addr_mode) {
  PMSB_CHECK(stages >= 1, "pipelined memory needs at least one stage");
  banks_.reserve(stages);
  for (unsigned s = 0; s < stages; ++s) banks_.emplace_back(words_per_stage, word_bits);
}

void PipelinedMemory::exec_cycle(const InputLatches& ir, OutputRow& orow) {
  for (unsigned s = 0; s < stages(); ++s) {
    const StageCtrl& c = ctrl_.at(s);
    // The address path runs every cycle (it checks 7a/7b equivalence even on
    // idle stages in the decoded-pipeline mode).
    const long addr = addr_path_.active_addr(s, c.addr, !c.idle());
    switch (c.op) {
      case StageOp::kNone:
        break;
      case StageOp::kWrite:
        banks_[s].write(static_cast<std::size_t>(addr), ir.read(c.in_link, s));
        break;
      case StageOp::kRead:
        orow.load(s, banks_[s].read(static_cast<std::size_t>(addr)), c.out_link,
                  c.head && s == 0);
        break;
      case StageOp::kWriteSnoop: {
        const Word bus =
            banks_[s].write_snoop(static_cast<std::size_t>(addr), ir.read(c.in_link, s));
        orow.load(s, bus, c.out_link, c.head && s == 0);
        break;
      }
    }
  }
}

void PipelinedMemory::tick() {
  for (auto& b : banks_) b.tick();
  ctrl_.tick();
  addr_path_.tick();
}

}  // namespace pmsb
