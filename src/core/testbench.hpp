// Testbench harness: a switch (any of the cycle-accurate variants), one
// traffic source per input, one sink per output, an optional verification
// scoreboard, all registered with a simulation engine. Used by the gtest
// suites, the bench binaries, and the examples, so they all drive the
// device under test the same way.

#pragma once

#include <memory>
#include <type_traits>
#include <vector>

#include "check/invariants.hpp"
#include "core/scoreboard.hpp"
#include "core/switch.hpp"
#include "sim/engine.hpp"
#include "traffic/generators.hpp"
#include "traffic/messages.hpp"

namespace pmsb {

enum class PatternKind { kUniform, kPermutation, kHotspot };

struct TrafficSpec {
  ArrivalKind arrivals = ArrivalKind::kGeometric;
  PatternKind pattern = PatternKind::kUniform;
  double load = 0.5;
  double hot_fraction = 0.5;  ///< For kHotspot (hot output = 0).
  std::uint64_t seed = 1;
  bool bursty = false;        ///< Use BurstyCellSource instead.
  double mean_burst_cells = 8.0;
};

/// Harness around any switch type with in_link()/out_link()/events().
template <typename SwitchT, typename ConfigT>
class Testbench {
 public:
  Testbench(const ConfigT& cfg, unsigned n_ports, const CellFormat& fmt,
            const TrafficSpec& spec, bool with_scoreboard = true)
      : sw_(cfg), scoreboard_(n_ports, n_ports, fmt) {
    Rng seeder(spec.seed);
    switch (spec.pattern) {
      case PatternKind::kUniform:
        dests_ = std::make_unique<UniformDest>(n_ports);
        break;
      case PatternKind::kPermutation: {
        Rng r = seeder.split();
        dests_ = std::make_unique<PermutationDest>(random_permutation(n_ports, r));
        break;
      }
      case PatternKind::kHotspot:
        dests_ = std::make_unique<HotspotDest>(n_ports, 0, spec.hot_fraction);
        break;
    }
    for (unsigned i = 0; i < n_ports; ++i) {
      if (spec.bursty) {
        bursty_sources_.push_back(std::make_unique<BurstyCellSource>(
            i, &sw_.in_link(i), fmt, dests_.get(), spec.load, spec.mean_burst_cells,
            seeder.split()));
      } else {
        sources_.push_back(std::make_unique<CellSource>(i, &sw_.in_link(i), fmt, dests_.get(),
                                                        spec.arrivals, spec.load,
                                                        seeder.split()));
      }
    }
    for (unsigned o = 0; o < n_ports; ++o)
      sinks_.push_back(std::make_unique<CellSink>(o, &sw_.out_link(o), fmt));

    if (with_scoreboard) {
      if (spec.bursty)
        scoreboard_.attach(sw_, bursty_sources_, sinks_);
      else
        scoreboard_.attach(sw_, sources_, sinks_);
    }
    for (auto& s : sources_) engine_.add(s.get());
    for (auto& s : bursty_sources_) engine_.add(s.get());
    engine_.add(&sw_);
    for (auto& s : sinks_) engine_.add(s.get());

    // Invariant checking (src/check/) rides along on every harnessed run
    // when requested via PMSB_CHECK=1 (or the pmsb_check CMake option).
    // Scoreboard and checker each hold their own EventHub subscription,
    // so attachment order no longer matters.
    if constexpr (std::is_same_v<SwitchT, PipelinedSwitch> ||
                  std::is_same_v<SwitchT, DualPipelinedSwitch>) {
      if (check::env_enabled()) {
        attach_checker();
        enforce_checker_ = true;
      }
    }
  }

  /// PMSB_CHECK=1 runs enforce the invariants at teardown: any recorded
  /// violation aborts loudly (skipped for deliberately-faulted DUTs, whose
  /// violations are the expected output of the fault demo).
  ~Testbench() {
    if (!enforce_checker_ || !checker_ || checker_->ok()) return;
    if constexpr (std::is_same_v<SwitchT, PipelinedSwitch>) {
      if (!sw_.fault_plan().none()) return;
    }
    PMSB_CHECK(checker_->ok(),
               "PMSB_CHECK run recorded " + std::to_string(checker_->total_violations()) +
                   " invariant violations; first: " +
                   checker_->violations().front().message);
  }

  void run(Cycle cycles) { engine_.run(cycles); }

  /// Stop injecting and run until the switch drains (or `max` cycles pass).
  /// Returns true if fully drained.
  bool drain(Cycle max = 100000) {
    for (auto& s : sources_) s->set_enabled(false);
    for (auto& s : bursty_sources_) s->set_enabled(false);
    const bool ok = engine_.run_until([&](Cycle) { return sw_.drained(); }, max);
    if (ok) engine_.run(4 * sw_.config().n_ports + 8);  // Flush trailing wires into sinks.
    return ok;
  }

  SwitchT& dut() { return sw_; }
  Engine& engine() { return engine_; }
  Scoreboard& scoreboard() { return scoreboard_; }

  /// Attach (or return the already-attached) invariant checker. Only
  /// instantiable for the switch types the checker supports.
  check::InvariantChecker& attach_checker() {
    if (!checker_) {
      checker_ = std::make_unique<check::InvariantChecker>();
      checker_->attach(sw_, engine_);
    }
    return *checker_;
  }
  /// Null unless attach_checker() ran (directly or via PMSB_CHECK=1).
  check::InvariantChecker* checker() { return checker_.get(); }

  std::uint64_t injected() const {
    std::uint64_t total = 0;
    for (const auto& s : sources_) total += s->cells_injected();
    for (const auto& s : bursty_sources_) total += s->cells_injected();
    return total;
  }
  std::uint64_t delivered() const {
    std::uint64_t total = 0;
    for (const auto& s : sinks_) total += s->cells_delivered();
    return total;
  }

 private:
  SwitchT sw_;
  Engine engine_;
  Scoreboard scoreboard_;
  std::unique_ptr<check::InvariantChecker> checker_;
  bool enforce_checker_ = false;
  std::unique_ptr<DestPattern> dests_;
  std::vector<std::unique_ptr<CellSource>> sources_;
  std::vector<std::unique_ptr<BurstyCellSource>> bursty_sources_;
  std::vector<std::unique_ptr<CellSink>> sinks_;
};

using PipelinedTestbench = Testbench<PipelinedSwitch, SwitchConfig>;

}  // namespace pmsb
