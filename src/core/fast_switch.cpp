#include "core/fast_switch.hpp"

#include "common/cell.hpp"

namespace pmsb {

FastSwitch::FastSwitch(const SwitchConfig& cfg)
    : cfg_(cfg), fmt_(cfg.cell_format()), L_(cfg.cell_words), window_(cfg.stages()),
      capacity_cells_(cfg.capacity_cells()), in_links_(cfg.n_ports),
      out_links_(cfg.n_ports), rx_(cfg.n_ports), tx_(cfg.n_ports),
      pending_(cfg.n_ports), oq_(cfg.n_ports) {
  cfg.validate();
}

void FastSwitch::register_metrics(obs::MetricsRegistry& m, const std::string& prefix) {
  m.add_gauge(prefix + ".buffer.in_use",
              [this] { return static_cast<double>(resident_); });
  m.add_gauge(prefix + ".queued_cells",
              [this] { return static_cast<double>(queued_cells()); });
}

void FastSwitch::eval(Cycle t) {
  ++stats_.cycles;
  // Pending cells resolve before new arrivals register, mirroring the
  // cycle-accurate eval order (arbitrate, then latch) — a pending head
  // becomes eligible the cycle after its arrival cycle.
  admit_or_expire_pending(t);
  for (unsigned i = 0; i < cfg_.n_ports; ++i) process_arrival(i, t);
  bool drove = false;
  for (unsigned o = 0; o < cfg_.n_ports; ++o) {
    run_output(o, t);
    drove = drove || tx_[o].active || out_links_[o].now().valid;
  }
  if (!drove) ++stats_.idle_cycles;
}

void FastSwitch::admit_or_expire_pending(Cycle t) {
  for (unsigned i = 0; i < cfg_.n_ports; ++i) {
    PendingCell& p = pending_[i];
    if (!p.valid) continue;
    if (resident_ < capacity_cells_) {
      ++stats_.accepted;
      ++stats_.write_initiations;
      ++resident_;
      events_.accept(i, p.a0, t);
      oq_[p.dest].push_back(p.cell);
      p = PendingCell{};
    } else if (t >= p.a0 + static_cast<Cycle>(window_)) {
      // Window over with the buffer still full: the addr-starved loss class
      // (the fast model has no stage-0 slot, so kNoSlot cannot happen).
      ++stats_.dropped_no_addr;
      events_.drop(i, p.a0, DropReason::kNoAddress);
      p = PendingCell{};  // The rx FSM keeps swallowing the dead cell's body.
    }
  }
}

void FastSwitch::process_arrival(unsigned i, Cycle t) {
  RxFsm& rx = rx_[i];
  const Flit& f = in_links_[i].now();
  if (!rx.receiving) {
    if (!f.valid) return;
    PMSB_CHECK(f.sop, "fast switch: body word with no head on input link");
    PMSB_CHECK(!pending_[i].valid, "fast switch: new head while the previous cell is unresolved");
    const unsigned dest = decode_dest(f.data, fmt_);
    PMSB_CHECK(dest < cfg_.n_ports, "fast switch: destination out of range");
    ++stats_.heads_seen;
    events_.head(i, t, dest);
    rx.receiving = true;
    rx.phase = 1;
    // Head-time admission: same classification and priority as the
    // cycle-accurate switch (output cap first, then shared-buffer space);
    // no latch-window deadline exists here, so kNoSlot never occurs.
    if (cfg_.out_queue_limit > 0 && oq_[dest].size() >= cfg_.out_queue_limit) {
      ++stats_.dropped_out_limit;
      events_.drop(i, t, DropReason::kOutputLimit);
      rx.cell.reset();
    } else if (resident_ >= capacity_cells_) {
      // Full buffer: not a drop yet. The cycle-accurate switch keeps the
      // cell in its input latches through the window [a0+1, a0+2n] and
      // grants it if an address frees; hold it pending the same way.
      rx.cell = std::make_shared<Cell>();
      rx.cell->input = i;
      rx.cell->dest = dest;
      rx.cell->a0 = t;
      rx.cell->words.resize(L_);
      rx.cell->words[0] = f.data;
      rx.cell->filled = 1;
      pending_[i] = PendingCell{true, t, dest, rx.cell};
    } else {
      ++stats_.accepted;
      ++stats_.write_initiations;
      ++resident_;
      events_.accept(i, t, t + 1);
      rx.cell = std::make_shared<Cell>();
      rx.cell->input = i;
      rx.cell->dest = dest;
      rx.cell->a0 = t;
      rx.cell->words.resize(L_);
      rx.cell->words[0] = f.data;
      rx.cell->filled = 1;
      oq_[dest].push_back(rx.cell);
    }
    return;  // L >= 2 always (validated), so the head never ends the cell.
  }
  PMSB_CHECK(f.valid, "fast switch: gap inside a cell on an input link");
  PMSB_CHECK(!f.sop, "fast switch: unexpected head inside a cell");
  if (rx.cell) {
    rx.cell->words[rx.phase] = f.data;
    rx.cell->filled = rx.phase + 1;
  }
  if (++rx.phase == L_) {
    rx.receiving = false;
    rx.cell.reset();
  }
}

void FastSwitch::run_output(unsigned o, Cycle t) {
  TxFsm& tx = tx_[o];
  if (!tx.active && !oq_[o].empty()) {
    const CellPtr& head = oq_[o].front();
    // With cut-through the relay starts the cycle after the head arrived
    // (head on the output wire at a0 + 2, the paper's best case); without
    // it the whole cell must have arrived first.
    const Cycle ready = cfg_.cut_through ? head->a0 + 1 : head->a0 + static_cast<Cycle>(L_);
    if (t >= ready) {
      tx.cell = head;
      oq_[o].pop_front();
      tx.active = true;
      tx.phase = 0;
      PMSB_CHECK(resident_ > 0, "fast switch: transmit from an empty buffer");
      --resident_;  // Buffer space frees at departure start, as in the
                    // cycle-accurate switch's read initiation.
      ++stats_.read_grants;
      ++stats_.read_initiations;
      const bool cut = t < tx.cell->a0 + static_cast<Cycle>(L_) - 1;
      if (cut) ++stats_.cut_through_cells;
      events_.read_grant(o, tx.cell->input, t, tx.cell->a0 + 1, tx.cell->a0, cut);
    }
  }
  if (tx.active) {
    PMSB_CHECK(tx.phase < tx.cell->filled, "fast switch: relay ran ahead of arrival");
    out_links_[o].drive_next(Flit{true, tx.phase == 0, tx.cell->words[tx.phase]});
    if (++tx.phase == L_) {
      tx.active = false;
      tx.cell.reset();
    }
  }
}

void FastSwitch::commit(Cycle) {
  for (auto& l : in_links_) l.tick();
  for (auto& l : out_links_) l.tick();
}

bool FastSwitch::drained() const {
  if (resident_ != 0) return false;
  for (const auto& r : rx_) {
    if (r.receiving) return false;
  }
  for (const auto& p : pending_) {
    if (p.valid) return false;
  }
  for (const auto& x : tx_) {
    if (x.active) return false;
  }
  for (const auto& q : oq_) {
    if (!q.empty()) return false;
  }
  return true;
}

bool FastSwitch::is_quiescent(Cycle) const {
  if (!drained()) return false;
  for (const auto& l : in_links_) {
    if (!l.idle()) return false;
  }
  for (const auto& l : out_links_) {
    if (!l.idle()) return false;
  }
  return true;
}

void FastSwitch::skip(Cycle, Cycle n) {
  stats_.cycles += static_cast<std::uint64_t>(n);
  stats_.idle_cycles += static_cast<std::uint64_t>(n);
}

}  // namespace pmsb
