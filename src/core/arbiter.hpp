// Round-robin arbitration helper.
//
// The switch grants at most one read-wave and (in the dual organization) one
// write-wave initiation per cycle; candidates are selected round-robin so no
// link starves. The starvation bound matters for correctness, not just
// fairness: the no-double-buffering window proof (DESIGN.md, invariant 2)
// relies on each competing link being granted at most once while a pending
// write waits.

#pragma once

#include <functional>

#include "common/util.hpp"

namespace pmsb {

class RoundRobin {
 public:
  explicit RoundRobin(unsigned n);

  /// Scan from the pointer; return the first index for which `eligible`
  /// holds and advance the pointer past it, or -1 if none is eligible.
  int pick(const std::function<bool(unsigned)>& eligible);

  unsigned size() const { return n_; }
  unsigned pointer() const { return ptr_; }

 private:
  unsigned n_;
  unsigned ptr_ = 0;
};

}  // namespace pmsb
