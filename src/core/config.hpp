// Configuration of a pipelined-memory shared-buffer switch.
//
// The natural geometry (section 3.2): an n x n switch has S = 2n memory
// stages; the cell size is S words (or a multiple m*S); the shared buffer
// stores up to `capacity_segments` segments (one segment = one word in each
// stage = one buffer address). The three Telegraphos prototypes (section 4)
// are provided as named configurations.

#pragma once

#include <cstdint>
#include <string>

#include "common/cell.hpp"
#include "common/util.hpp"

namespace pmsb {

struct SwitchConfig {
  unsigned n_ports = 4;            ///< n: incoming links = outgoing links.
  unsigned word_bits = 16;         ///< w: link/memory width per cycle.
  unsigned cell_words = 8;         ///< L: cell size in words, multiple of 2n.
  unsigned capacity_segments = 64; ///< Buffer addresses (words per stage).
  bool cut_through = true;         ///< Allow same-cycle write+snoop reads.
  double clock_mhz = 62.5;         ///< For cycles -> bits/s conversions only.
  /// Anti-hogging threshold: a cell is discarded at arrival if its output
  /// already has this many cells queued (0 = unlimited). Keeps one saturated
  /// output from monopolizing the shared pool -- the per-output limits real
  /// shared-buffer switches add (cf. [DeEI95], [KVES95]).
  unsigned out_queue_limit = 0;
  /// Section 4.3 option: extra pipeline stages on the long input/output link
  /// wires ("split in two or more pipeline stages each ... the logic of the
  /// switch operation remains unaffected"). Modelled outside the switch by
  /// sim/link_pipeline.hpp; recorded here so testbenches can apply it.
  unsigned link_pipe_stages = 0;

  unsigned stages() const { return 2 * n_ports; }
  unsigned segments_per_cell() const { return cell_words / stages(); }
  unsigned dest_bits() const { return bits_for(n_ports); }

  CellFormat cell_format() const {
    return CellFormat{word_bits, dest_bits(), cell_words};
  }

  /// Capacity measured in whole cells.
  unsigned capacity_cells() const { return capacity_segments / segments_per_cell(); }

  /// Per-link throughput in Mb/s at clock_mhz.
  double link_mbps() const { return clock_mhz * word_bits; }

  /// Throws std::invalid_argument if the geometry is inconsistent.
  void validate() const;

  std::string describe() const;
};

/// Telegraphos I (section 4.1): 4x4 FPGA prototype, 8-bit links at 13.3 MHz
/// (107 Mb/s/link), 8-byte cells, 8 pipeline stages.
SwitchConfig telegraphos1();

/// Telegraphos II (section 4.2): 4x4 standard-cell ASIC, 16-bit links at
/// 25 MHz on-chip word rate... the paper states 16 bits / 40 ns = 400 Mb/s
/// per link, 16-byte cells, 8 stages, 256-word SRAM stages.
SwitchConfig telegraphos2();

/// Telegraphos III (section 4.4): 8x8 full-custom buffer, 16-bit links,
/// 16 stages, 256 cells of 256 bits; 62.5 MHz worst case = 1 Gb/s/link.
SwitchConfig telegraphos3();

}  // namespace pmsb
