// Configuration of a pipelined-memory shared-buffer switch.
//
// The natural geometry (section 3.2): an n x n switch has S = 2n memory
// stages; the cell size is S words (or a multiple m*S); the shared buffer
// stores up to `capacity_segments` segments (one segment = one word in each
// stage = one buffer address). The three Telegraphos prototypes (section 4)
// are provided as named configurations.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cell.hpp"
#include "common/util.hpp"

namespace pmsb {

/// One structured complaint from a config check. The code is stable for
/// programmatic handling; the message names the offending values.
struct ConfigIssue {
  enum class Code : std::uint8_t {
    kBadPorts,           ///< n_ports outside the organization's range.
    kBadWordBits,        ///< word_bits outside [1, 64].
    kHeadTooNarrow,      ///< Destination field does not fit the head word.
    kBadCellWords,       ///< Cell size not a positive multiple of the quantum.
    kSubQuantumCell,     ///< Cell divides the stage count (wants the dual org).
    kBadCapacity,        ///< No buffer capacity.
    kCapacityMisaligned, ///< Capacity not a whole number of cells.
    kBadOutQueueLimit,   ///< Anti-hogging threshold exceeds the capacity.
    kBadClock,           ///< Non-positive clock.
    kBadTopology,        ///< Fabric topology unusable (too few nodes, ...).
    kBadLinkStages,      ///< Inter-node links need >= 1 register stage.
    kBadLoad,            ///< Offered load outside [0, 1].
  };
  Code code;
  std::string message;
};

const char* to_string(ConfigIssue::Code c);

/// Result of a non-throwing config check: every inconsistency, not just the
/// first. validate() throws summary() when !ok().
struct ConfigValidation {
  std::vector<ConfigIssue> issues;

  bool ok() const { return issues.empty(); }
  bool has(ConfigIssue::Code c) const {
    for (const auto& i : issues)
      if (i.code == c) return true;
    return false;
  }
  /// All messages joined "; " (empty when ok()).
  std::string summary() const;
};

struct SwitchConfig {
  unsigned n_ports = 4;            ///< n: incoming links = outgoing links.
  unsigned word_bits = 16;         ///< w: link/memory width per cycle.
  unsigned cell_words = 8;         ///< L: cell size in words, multiple of 2n.
  unsigned capacity_segments = 64; ///< Buffer addresses (words per stage).
  bool cut_through = true;         ///< Allow same-cycle write+snoop reads.
  double clock_mhz = 62.5;         ///< For cycles -> bits/s conversions only.
  /// Anti-hogging threshold: a cell is discarded at arrival if its output
  /// already has this many cells queued (0 = unlimited). Keeps one saturated
  /// output from monopolizing the shared pool -- the per-output limits real
  /// shared-buffer switches add (cf. [DeEI95], [KVES95]).
  unsigned out_queue_limit = 0;
  /// Section 4.3 option: extra pipeline stages on the long input/output link
  /// wires ("split in two or more pipeline stages each ... the logic of the
  /// switch operation remains unaffected"). Modelled outside the switch by
  /// sim/link_pipeline.hpp; recorded here so testbenches can apply it.
  unsigned link_pipe_stages = 0;

  unsigned stages() const { return 2 * n_ports; }
  unsigned segments_per_cell() const { return cell_words / stages(); }
  unsigned dest_bits() const { return bits_for(n_ports); }

  CellFormat cell_format() const {
    return CellFormat{word_bits, dest_bits(), cell_words};
  }

  /// Capacity measured in whole cells.
  unsigned capacity_cells() const { return capacity_segments / segments_per_cell(); }

  /// Per-link throughput in Mb/s at clock_mhz.
  double link_mbps() const { return clock_mhz * word_bits; }

  /// Non-throwing geometry/limit check: returns every inconsistency as a
  /// structured issue. The single source of truth for switch-config
  /// validity (validate() and the constructors go through it).
  ConfigValidation check() const;

  /// Throws std::invalid_argument(check().summary()) on any issue.
  void validate() const;

  std::string describe() const;

  // --- Named factory presets -------------------------------------------
  /// Telegraphos I (section 4.1): 4x4 FPGA prototype, 8-bit links at
  /// 13.3 MHz (107 Mb/s/link), 8-byte cells, 8 pipeline stages.
  static SwitchConfig telegraphos1();
  /// Telegraphos II (section 4.2): 4x4 standard-cell ASIC, 16-bit links at
  /// 25 MHz on-chip word rate (16 bits / 40 ns = 400 Mb/s per link),
  /// 16-byte cells, 8 stages, 256-word SRAM stages.
  static SwitchConfig telegraphos2();
  /// Telegraphos III (section 4.4): 8x8 full-custom buffer, 16-bit links,
  /// 16 stages, 256 cells of 256 bits; 62.5 MHz worst case = 1 Gb/s/link.
  static SwitchConfig telegraphos3();
  /// Generic valid geometry for an n x n switch: 16-bit words, the minimum
  /// legal cell (`segments_per_cell` quanta of 2n words), and a shared
  /// buffer of 32 cells per port. The go-to for tests, fabrics, and sweeps
  /// that just need "some n-port switch".
  static SwitchConfig for_ports(unsigned n, unsigned segments_per_cell = 1);
};

// Deprecated free-function spellings of the presets (older call sites).
SwitchConfig telegraphos1();
SwitchConfig telegraphos2();
SwitchConfig telegraphos3();

}  // namespace pmsb
