#include "core/free_list.hpp"

namespace pmsb {

FreeList::FreeList(std::uint32_t n_addresses)
    : total_(n_addresses), allocated_(n_addresses, false) {
  PMSB_CHECK(n_addresses > 0, "free list needs at least one address");
  free_.reserve(n_addresses);
  // Descending so the first allocation is address 0 (readable traces).
  for (std::uint32_t a = n_addresses; a-- > 0;) free_.push_back(a);
}

SegAddrs FreeList::alloc(std::uint32_t count) {
  PMSB_CHECK(can_alloc(count), "free list underflow (caller must check can_alloc)");
  SegAddrs out;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t a = free_.back();
    free_.pop_back();
    PMSB_CHECK(!allocated_[a], "address already allocated");
    allocated_[a] = true;
    out.push_back(a);
  }
  peak_in_use_ = std::max(peak_in_use_, in_use());
  return out;
}

void FreeList::release(std::uint32_t addr) {
  PMSB_CHECK(addr < total_, "released address out of range");
  PMSB_CHECK(allocated_[addr], "double free of buffer address");
  allocated_[addr] = false;
  returned_.push_back(addr);
}

void FreeList::tick() {
  for (std::uint32_t a : returned_) free_.push_back(a);
  returned_.clear();
}

std::uint32_t FreeList::in_use() const {
  // Addresses staged in returned_ still hold live data this cycle (the read
  // wave that released them is only now travelling down the pipeline), so
  // they count as occupied until tick() publishes them. Counting them as
  // free made peak_in_use() under-report the buffer occupancy that the E3
  // buffer-sizing experiment quotes against the paper.
  return total_ - static_cast<std::uint32_t>(free_.size());
}

}  // namespace pmsb
