// Reservation table for stage-0 (wave-initiation) slots.
//
// A wave occupies M0 in exactly one cycle and then travels down the
// pipeline without ever conflicting with waves initiated in other cycles
// (each stage serves at most one wave per cycle because initiations are
// serialized at M0). Multi-segment cells initiate one wave per segment,
// spaced exactly S cycles apart, so granting a multi-segment operation
// means reserving the whole arithmetic progression {t0 + k*S} up front.
//
// A slot carries at most one write and at most one read; when it carries
// both they snoop the same address (same-cycle cut-through, section 3.3) and
// cost one physical M0 access.

#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/small_vec.hpp"
#include "common/util.hpp"

namespace pmsb {

/// Non-owning view of a cell's segment addresses. Reservation calls sit on
/// the per-cell hot path; taking a view instead of std::vector lets callers
/// hand over SegAddrs (inline storage), vectors, or braced literals without
/// materializing a heap vector.
struct AddrSpan {
  const std::uint32_t* ptr;
  std::size_t count;

  AddrSpan(const std::uint32_t* p, std::size_t n) : ptr(p), count(n) {}
  AddrSpan(const SegAddrs& a) : ptr(a.data()), count(a.size()) {}                // NOLINT
  AddrSpan(const std::vector<std::uint32_t>& a) : ptr(a.data()), count(a.size()) {}  // NOLINT

  std::size_t size() const { return count; }
  std::uint32_t operator[](std::size_t i) const { return ptr[i]; }
};

/// Per-segment operation scheduled at one stage-0 slot.
struct SlotOp {
  bool has_write = false;
  std::uint32_t w_addr = 0;
  std::uint16_t in_link = 0;
  bool w_head = false;  ///< Segment 0 of its cell.
  Cycle w_a0 = 0;       ///< Arrival cycle of this segment's first word.

  bool has_read = false;
  std::uint32_t r_addr = 0;
  std::uint16_t out_link = 0;
  bool r_head = false;

  bool empty() const { return !has_write && !has_read; }
};

class ReservationTable {
 public:
  /// `horizon` = maximum look-ahead in cycles (>= segments * S + 1).
  explicit ReservationTable(std::size_t horizon);

  /// True if cycle t has no reservation at all.
  bool slot_free(Cycle t) const;

  /// True if every cycle {t0 + k*step : k < count} is free.
  bool progression_free(Cycle t0, Cycle step, unsigned count) const;

  /// Reserve the write waves of a cell: segment k at t0 + k*step with
  /// address addrs[k]; the cell's head word arrived at the end of a0 (so
  /// segment k's first word arrives at a0 + k*step). Slots must be free.
  void reserve_writes(Cycle t0, Cycle step, AddrSpan addrs, unsigned in_link, Cycle a0);

  /// Reserve the read waves of a cell (slots must be free).
  void reserve_reads(Cycle t0, Cycle step, AddrSpan addrs, unsigned out_link);

  /// Attach snooping reads to already-reserved write slots of the same cell
  /// (same slots, same addresses): same-cycle cut-through.
  void attach_snoop_reads(Cycle t0, Cycle step, AddrSpan addrs, unsigned out_link);

  // Braced-literal conveniences (tests reserve with `{7}`-style lists).
  void reserve_writes(Cycle t0, Cycle step, std::initializer_list<std::uint32_t> a,
                      unsigned in_link, Cycle a0) {
    reserve_writes(t0, step, AddrSpan(a.begin(), a.size()), in_link, a0);
  }
  void reserve_reads(Cycle t0, Cycle step, std::initializer_list<std::uint32_t> a,
                     unsigned out_link) {
    reserve_reads(t0, step, AddrSpan(a.begin(), a.size()), out_link);
  }
  void attach_snoop_reads(Cycle t0, Cycle step, std::initializer_list<std::uint32_t> a,
                          unsigned out_link) {
    attach_snoop_reads(t0, step, AddrSpan(a.begin(), a.size()), out_link);
  }

  /// Remove and return the operation scheduled at cycle t (empty if none).
  SlotOp take(Cycle t);

  /// Invoke fn(cycle, op) on every outstanding reservation. Verification
  /// only: the invariant checker cross-references reserved addresses against
  /// the free list. Entries already consumed by take() are skipped.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& e : ring_) {
      if (e.cycle >= 0 && !e.op.empty()) fn(e.cycle, e.op);
    }
  }

 private:
  struct Entry {
    Cycle cycle = -1;
    SlotOp op;
  };
  std::vector<Entry> ring_;

  Entry& at(Cycle t) { return ring_[static_cast<std::size_t>(t) % ring_.size()]; }
  const Entry& at(Cycle t) const { return ring_[static_cast<std::size_t>(t) % ring_.size()]; }
  Entry& occupied_at(Cycle t);
};

}  // namespace pmsb
