// Header translation: the RT ("translation routing memory") block of the
// Telegraphos II floorplan (figure 6). Telegraphos routes by translating a
// virtual-circuit identifier carried in the cell header at every hop: the
// incoming VC selects an entry giving the local output port and the VC to
// carry on the next link ([Kate94], [KVES95]).
//
// The cell head word is [dest_bits | tag]; the tag's low `vc_bits` carry the
// VC. A HeaderTranslator sits on an incoming link, looks the VC up, and
// rewrites both fields before the cell enters the switch -- one register
// stage, exactly like the input-port logic of the real chip. Unroutable VCs
// (invalid entries) discard the cell and count it, as a real switch's input
// port would.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/cell.hpp"
#include "sim/engine.hpp"
#include "sim/wire.hpp"

namespace pmsb {

class RoutingTable {
 public:
  struct Entry {
    bool valid = false;
    std::uint16_t out_port = 0;
    std::uint32_t next_vc = 0;
  };

  /// `vc_bits` of VC space (the table has 2^vc_bits entries).
  explicit RoutingTable(unsigned vc_bits);

  unsigned vc_bits() const { return vc_bits_; }
  std::size_t size() const { return entries_.size(); }

  void program(std::uint32_t vc, std::uint16_t out_port, std::uint32_t next_vc);
  void invalidate(std::uint32_t vc);
  const Entry& lookup(std::uint32_t vc) const;

 private:
  unsigned vc_bits_;
  std::vector<Entry> entries_;
};

/// Translates cell headers between an incoming link and a switch input.
class HeaderTranslator : public Component {
 public:
  /// `fmt` describes the cell format on both links; the VC is the low
  /// `table->vc_bits()` bits of the head word's tag field.
  HeaderTranslator(WireLink* from, WireLink* to, const CellFormat& fmt,
                   const RoutingTable* table);

  void eval(Cycle t) override;
  void commit(Cycle t) override;
  std::string name() const override { return "header_translator"; }

  std::uint64_t cells_translated() const { return cells_translated_; }
  std::uint64_t cells_unroutable() const { return cells_unroutable_; }

 private:
  WireLink* from_;
  WireLink* to_;
  CellFormat fmt_;
  const RoutingTable* table_;

  bool discarding_ = false;  ///< Mid-cell after an unroutable head.
  bool forwarding_ = false;  ///< Mid-cell after a translated head.
  unsigned words_left_ = 0;

  std::uint64_t cells_translated_ = 0;
  std::uint64_t cells_unroutable_ = 0;
};

/// Extract / replace the VC field (low `vc_bits` of the tag) in a head word.
std::uint32_t head_vc(Word head, const CellFormat& fmt, unsigned vc_bits);
Word make_translated_head(Word head, const CellFormat& fmt, unsigned vc_bits,
                          std::uint16_t out_port, std::uint32_t next_vc);

}  // namespace pmsb
