#include "core/out_queues.hpp"

namespace pmsb {

OutQueues::OutQueues(unsigned n_outputs) : queues_(n_outputs) {
  PMSB_CHECK(n_outputs > 0, "need at least one output");
}

void OutQueues::push(BufferedCell cell) {
  PMSB_CHECK(cell.dest < queues_.size(), "destination out of range");
  staged_.push_back(std::move(cell));
}

bool OutQueues::empty(unsigned output) const { return queues_.at(output).empty(); }

const BufferedCell& OutQueues::front(unsigned output) const {
  PMSB_CHECK(!empty(output), "front() of empty output queue");
  return queues_[output].front();
}

BufferedCell OutQueues::pop(unsigned output) {
  PMSB_CHECK(!empty(output), "pop() of empty output queue");
  BufferedCell c = std::move(queues_[output].front());
  queues_[output].pop_front();
  --committed_;
  return c;
}

void OutQueues::tick() {
  for (auto& c : staged_) {
    auto& q = queues_[c.dest];
    q.push_back(std::move(c));
    ++committed_;
  }
  staged_.clear();
  if (committed_ > peak_total_) peak_total_ = committed_;
}

}  // namespace pmsb
