#include "core/input_latches.hpp"

namespace pmsb {

InputLatches::InputLatches(unsigned n_inputs, unsigned stages, unsigned word_bits)
    : n_inputs_(n_inputs), stages_(stages), mask_(low_mask(word_bits)),
      latches_(static_cast<std::size_t>(n_inputs) * stages) {
  PMSB_CHECK(n_inputs > 0 && stages > 0, "degenerate latch array");
}

InputLatches::Latch& InputLatches::at(unsigned input, unsigned s) {
  PMSB_CHECK(input < n_inputs_ && s < stages_, "latch index out of range");
  return latches_[static_cast<std::size_t>(input) * stages_ + s];
}

const InputLatches::Latch& InputLatches::at(unsigned input, unsigned s) const {
  PMSB_CHECK(input < n_inputs_ && s < stages_, "latch index out of range");
  return latches_[static_cast<std::size_t>(input) * stages_ + s];
}

Word InputLatches::read(unsigned input, unsigned s) const { return at(input, s).q; }

void InputLatches::latch(unsigned input, unsigned s, Word data, Cycle t) {
  PMSB_CHECK((data & ~mask_) == 0, "latched word wider than the link");
  Latch& l = at(input, s);
  // The overwrite commits at the end of cycle t, so the old value is still
  // readable during t itself; it is lost from cycle t+1 on. Two commits are
  // legal while a wave is outstanding: the arriving word the wave expects
  // (t == expected_commit) and anything at/after the consumption cycle.
  PMSB_CHECK(t == l.expected_commit || t >= l.needed_until,
             "input latch overwritten while a scheduled write wave still "
             "needs it -- the no-double-buffering property is violated");
  l.d = data;
  l.loaded = true;
}

void InputLatches::protect_for_wave(unsigned input, Cycle t0, Cycle a0) {
  PMSB_CHECK(t0 > a0, "write wave cannot initiate before the head word is latched");
  for (unsigned s = 0; s < stages_; ++s) {
    Latch& l = at(input, s);
    l.needed_until = t0 + static_cast<Cycle>(s);
    l.expected_commit = a0 + static_cast<Cycle>(s);
  }
}

void InputLatches::tick(Cycle) {
  for (Latch& l : latches_) {
    if (l.loaded) {
      l.q = l.d;
      l.loaded = false;
    }
  }
}

}  // namespace pmsb
