#include "core/config.hpp"

#include <stdexcept>

namespace pmsb {

void SwitchConfig::validate() const {
  if (n_ports < 1) throw std::invalid_argument("n_ports must be >= 1");
  if (word_bits < 1 || word_bits > 64)
    throw std::invalid_argument("word_bits must be in [1, 64]");
  if (dest_bits() >= word_bits)
    throw std::invalid_argument("head word too narrow for the destination field");
  if (cell_words == 0 || cell_words % stages() != 0) {
    if (cell_words != 0 && stages() % cell_words == 0)
      throw std::invalid_argument(
          "cell_words divides the stage count instead of being a multiple of it: "
          "sub-quantum cells (e.g. the half-quantum n-word cells of section 3.5) "
          "need the dual organization -- use DualPipelinedSwitch, not PipelinedSwitch");
    throw std::invalid_argument(
        "cell_words must be a positive multiple of 2*n_ports (the pipelined "
        "memory packet-size quantum, section 3.5)");
  }
  if (capacity_segments == 0)
    throw std::invalid_argument("capacity_segments must be >= 1");
  if (capacity_segments % segments_per_cell() != 0)
    throw std::invalid_argument("capacity_segments must be a multiple of segments per cell");
  if (out_queue_limit != 0 && out_queue_limit > capacity_cells())
    throw std::invalid_argument(
        "out_queue_limit exceeds the buffer capacity in cells: the anti-hogging "
        "threshold could never bind before the shared buffer itself fills");
  if (clock_mhz <= 0) throw std::invalid_argument("clock_mhz must be positive");
}

std::string SwitchConfig::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%ux%u switch, %u-bit links, %u-word cells, %u stages, "
                "%u-segment shared buffer (%u cells), %.1f MHz (%.0f Mb/s/link)",
                n_ports, n_ports, word_bits, cell_words, stages(), capacity_segments,
                capacity_cells(), clock_mhz, link_mbps());
  return buf;
}

SwitchConfig telegraphos1() {
  SwitchConfig c;
  c.n_ports = 4;
  c.word_bits = 8;
  c.cell_words = 8;           // 8-byte packets, 8 stages x 8 bits.
  c.capacity_segments = 256;  // 8 SRAM chips; depth chosen as a lab default.
  c.clock_mhz = 13.3;         // 107 Mb/s per link.
  c.validate();
  return c;
}

SwitchConfig telegraphos2() {
  SwitchConfig c;
  c.n_ports = 4;
  c.word_bits = 16;
  c.cell_words = 8;           // 16-byte packets = 8 words of 16 bits.
  c.capacity_segments = 256;  // DB0..DB7 are 256x16 compiled SRAMs.
  c.clock_mhz = 25.0;         // 16 bits / 40 ns = 400 Mb/s per link.
  c.validate();
  return c;
}

SwitchConfig telegraphos3() {
  SwitchConfig c;
  c.n_ports = 8;
  c.word_bits = 16;
  c.cell_words = 16;          // 256-bit packets = 16 words of 16 bits.
  c.capacity_segments = 256;  // 256 packets of 256 bits = 64 Kbit.
  c.clock_mhz = 62.5;         // 16 ns worst-case cycle -> 1 Gb/s per link.
  c.validate();
  return c;
}

}  // namespace pmsb
