#include "core/config.hpp"

#include <stdexcept>

namespace pmsb {

const char* to_string(ConfigIssue::Code c) {
  switch (c) {
    case ConfigIssue::Code::kBadPorts: return "bad_ports";
    case ConfigIssue::Code::kBadWordBits: return "bad_word_bits";
    case ConfigIssue::Code::kHeadTooNarrow: return "head_too_narrow";
    case ConfigIssue::Code::kBadCellWords: return "bad_cell_words";
    case ConfigIssue::Code::kSubQuantumCell: return "sub_quantum_cell";
    case ConfigIssue::Code::kBadCapacity: return "bad_capacity";
    case ConfigIssue::Code::kCapacityMisaligned: return "capacity_misaligned";
    case ConfigIssue::Code::kBadOutQueueLimit: return "bad_out_queue_limit";
    case ConfigIssue::Code::kBadClock: return "bad_clock";
    case ConfigIssue::Code::kBadTopology: return "bad_topology";
    case ConfigIssue::Code::kBadLinkStages: return "bad_link_stages";
    case ConfigIssue::Code::kBadLoad: return "bad_load";
  }
  return "?";
}

std::string ConfigValidation::summary() const {
  std::string s;
  for (const auto& i : issues) {
    if (!s.empty()) s += "; ";
    s += i.message;
  }
  return s;
}

ConfigValidation SwitchConfig::check() const {
  ConfigValidation v;
  auto issue = [&v](ConfigIssue::Code c, std::string msg) {
    v.issues.push_back(ConfigIssue{c, std::move(msg)});
  };
  if (n_ports < 1) issue(ConfigIssue::Code::kBadPorts, "n_ports must be >= 1");
  if (word_bits < 1 || word_bits > 64)
    issue(ConfigIssue::Code::kBadWordBits, "word_bits must be in [1, 64]");
  else if (n_ports >= 1 && dest_bits() >= word_bits)
    issue(ConfigIssue::Code::kHeadTooNarrow,
          "head word too narrow for the destination field");
  if (n_ports >= 1) {
    if (cell_words == 0 || cell_words % stages() != 0) {
      if (cell_words != 0 && stages() % cell_words == 0)
        issue(ConfigIssue::Code::kSubQuantumCell,
              "cell_words divides the stage count instead of being a multiple of it: "
              "sub-quantum cells (e.g. the half-quantum n-word cells of section 3.5) "
              "need the dual organization -- use DualPipelinedSwitch, not "
              "PipelinedSwitch");
      else
        issue(ConfigIssue::Code::kBadCellWords,
              "cell_words must be a positive multiple of 2*n_ports (the pipelined "
              "memory packet-size quantum, section 3.5)");
    }
    if (capacity_segments == 0)
      issue(ConfigIssue::Code::kBadCapacity, "capacity_segments must be >= 1");
    else if (cell_words != 0 && cell_words % stages() == 0) {
      if (capacity_segments % segments_per_cell() != 0)
        issue(ConfigIssue::Code::kCapacityMisaligned,
              "capacity_segments must be a multiple of segments per cell");
      else if (out_queue_limit != 0 && out_queue_limit > capacity_cells())
        issue(ConfigIssue::Code::kBadOutQueueLimit,
              "out_queue_limit exceeds the buffer capacity in cells: the anti-hogging "
              "threshold could never bind before the shared buffer itself fills");
    }
  }
  if (clock_mhz <= 0) issue(ConfigIssue::Code::kBadClock, "clock_mhz must be positive");
  return v;
}

void SwitchConfig::validate() const {
  const ConfigValidation v = check();
  if (!v.ok()) throw std::invalid_argument(v.summary());
}

std::string SwitchConfig::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%ux%u switch, %u-bit links, %u-word cells, %u stages, "
                "%u-segment shared buffer (%u cells), %.1f MHz (%.0f Mb/s/link)",
                n_ports, n_ports, word_bits, cell_words, stages(), capacity_segments,
                capacity_cells(), clock_mhz, link_mbps());
  return buf;
}

SwitchConfig SwitchConfig::telegraphos1() {
  SwitchConfig c;
  c.n_ports = 4;
  c.word_bits = 8;
  c.cell_words = 8;           // 8-byte packets, 8 stages x 8 bits.
  c.capacity_segments = 256;  // 8 SRAM chips; depth chosen as a lab default.
  c.clock_mhz = 13.3;         // 107 Mb/s per link.
  c.validate();
  return c;
}

SwitchConfig SwitchConfig::telegraphos2() {
  SwitchConfig c;
  c.n_ports = 4;
  c.word_bits = 16;
  c.cell_words = 8;           // 16-byte packets = 8 words of 16 bits.
  c.capacity_segments = 256;  // DB0..DB7 are 256x16 compiled SRAMs.
  c.clock_mhz = 25.0;         // 16 bits / 40 ns = 400 Mb/s per link.
  c.validate();
  return c;
}

SwitchConfig SwitchConfig::telegraphos3() {
  SwitchConfig c;
  c.n_ports = 8;
  c.word_bits = 16;
  c.cell_words = 16;          // 256-bit packets = 16 words of 16 bits.
  c.capacity_segments = 256;  // 256 packets of 256 bits = 64 Kbit.
  c.clock_mhz = 62.5;         // 16 ns worst-case cycle -> 1 Gb/s per link.
  c.validate();
  return c;
}

SwitchConfig SwitchConfig::for_ports(unsigned n, unsigned segments_per_cell) {
  SwitchConfig c;
  c.n_ports = n;
  c.word_bits = 16;
  c.cell_words = 2 * n * segments_per_cell;
  c.capacity_segments = 32 * n * segments_per_cell;  // 32 cells per port.
  c.validate();
  return c;
}

SwitchConfig telegraphos1() { return SwitchConfig::telegraphos1(); }
SwitchConfig telegraphos2() { return SwitchConfig::telegraphos2(); }
SwitchConfig telegraphos3() { return SwitchConfig::telegraphos3(); }

}  // namespace pmsb
