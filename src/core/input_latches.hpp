// The input buffer registers of figure 4: for each incoming link, one row of
// S latches, IR[i][0..S-1]. Word k of an arriving cell is latched into
// IR[i][k mod S] at the end of its arrival cycle; the row is reused
// cyclically by successive segments/cells (the paper's "wave of new packet
// words entering into the input buffer registers, overwriting the old
// data").
//
// The class also verifies the paper's central no-double-buffering claim: a
// latch may be overwritten only after the write wave that needed its old
// value has passed (enforced by an expiry stamp set when a write wave is
// scheduled). Any arbitration bug that would need the wide-memory-style
// second register row trips the check.

#pragma once

#include <cstdint>
#include <vector>

#include "common/util.hpp"

namespace pmsb {

class InputLatches {
 public:
  InputLatches(unsigned n_inputs, unsigned stages, unsigned word_bits);

  unsigned stages() const { return stages_; }

  /// Committed latch content (for the stage-s write this cycle).
  Word read(unsigned input, unsigned s) const;

  /// Stage a latch load at the end of the current cycle `t`.
  void latch(unsigned input, unsigned s, Word data, Cycle t);

  /// Declare that the write wave initiated at t0 (for the segment whose
  /// head word was latched at the end of a0) consumes IR[input][s] during
  /// cycle t0 + s. The word it expects there is the one committing at the
  /// end of a0 + s -- that commit is legal even though it happens inside the
  /// protection window; any *other* commit before the consumption cycle
  /// destroys data the wave still needs (the violation the wide memory
  /// avoids only by double buffering).
  void protect_for_wave(unsigned input, Cycle t0, Cycle a0);

  /// Clock edge at the end of cycle t.
  void tick(Cycle t);

 private:
  unsigned n_inputs_;
  unsigned stages_;
  Word mask_;

  struct Latch {
    Word q = 0;
    Word d = 0;
    bool loaded = false;
    Cycle needed_until = -1;     ///< Consumption cycle of the protected value.
    Cycle expected_commit = -1;  ///< Arrival commit the protection expects.
  };
  std::vector<Latch> latches_;  ///< [input * stages_ + s]

  Latch& at(unsigned input, unsigned s);
  const Latch& at(unsigned input, unsigned s) const;
};

}  // namespace pmsb
