#include "rtl/ctrl_pipeline.hpp"

namespace pmsb {

const char* to_string(StageOp op) {
  switch (op) {
    case StageOp::kNone: return "none";
    case StageOp::kWrite: return "write";
    case StageOp::kRead: return "read";
    case StageOp::kWriteSnoop: return "write+snoop";
  }
  return "?";
}

CtrlPipeline::CtrlPipeline(unsigned stages) : stages_(stages), regs_(stages > 0 ? stages - 1 : 0) {
  PMSB_CHECK(stages >= 1, "control pipeline needs at least one stage");
}

const StageCtrl& CtrlPipeline::at(unsigned s) const {
  PMSB_CHECK(s < stages_, "stage index out of range");
  if (s == 0) return inject_;
  return regs_[s - 1];
}

void CtrlPipeline::initiate(const StageCtrl& c) {
  PMSB_CHECK(!injected_this_cycle_, "two wave initiations in one cycle (M0 is single-ported)");
  inject_ = c;
  injected_this_cycle_ = true;
}

void CtrlPipeline::tick() {
  for (unsigned s = static_cast<unsigned>(regs_.size()); s-- > 1;) {
    if (!regs_[s - 1].idle()) ++ctrl_reg_transfers_;
    regs_[s] = regs_[s - 1];
  }
  if (!regs_.empty()) {
    if (!inject_.idle()) ++ctrl_reg_transfers_;
    regs_[0] = inject_;
  }
  inject_ = StageCtrl{};
  injected_this_cycle_ = false;
}

bool CtrlPipeline::busy() const {
  if (!inject_.idle()) return true;
  for (const auto& r : regs_) {
    if (!r.idle()) return true;
  }
  return false;
}

}  // namespace pmsb
