// Address-path models for figure 7: (a) a full address decoder per memory
// stage, versus (b) the paper's novel decoded-address pipeline, where the
// one-hot word-line vector produced by the single stage-0 decoder is passed
// from stage to stage through pipeline flip-flops ("the word lines of all
// stages are connected through pipeline flip-flops into long word lines,
// which are activated in a wave-like fashion", section 4.3).
//
// Both organizations are functionally identical (the same word line fires in
// stage s during cycle t0+s); what differs is the hardware exercised per
// wave: `stages` decode operations versus 1 decode + (stages-1) register
// transfers of a D-word one-hot vector. AddressPath counts both so the
// bench_a2 ablation can attach area/energy constants to them, and it
// *executes* the one-hot pipeline so tests can verify the functional
// equivalence claim rather than assume it.

#pragma once

#include <cstdint>
#include <vector>

#include "common/util.hpp"

namespace pmsb {

enum class AddrPathMode {
  kPerStageDecoders,   ///< Figure 7(a): every stage re-decodes the address.
  kDecodedPipeline,    ///< Figure 7(b): decode once, pipeline the word line.
};

/// Decode an address into a one-hot word-line vector of `words` lines.
std::vector<bool> decode_one_hot(std::uint32_t addr, std::size_t words);

/// Recover the address from a one-hot word-line vector (asserts one-hot).
std::uint32_t encode_from_one_hot(const std::vector<bool>& lines);

class AddressPath {
 public:
  AddressPath(unsigned stages, std::size_t words, AddrPathMode mode);

  AddrPathMode mode() const { return mode_; }
  unsigned stages() const { return stages_; }

  /// The address whose word line is active in stage s this cycle, or -1 if
  /// the stage is idle. In kDecodedPipeline mode this is computed from the
  /// pipelined one-hot vector (exercising the figure-7b datapath); in
  /// kPerStageDecoders mode it decodes the address delivered by the control
  /// pipeline (counting one decode operation).
  long active_addr(unsigned s, std::uint32_t ctrl_addr, bool stage_active);

  /// Clock edge: shift the one-hot pipeline.
  void tick();

  std::uint64_t decode_ops() const { return decode_ops_; }
  std::uint64_t one_hot_reg_transfers() const { return one_hot_transfers_; }

 private:
  unsigned stages_;
  std::size_t words_;
  AddrPathMode mode_;

  /// one_hot_[s]: the word-line vector registered between stage s-1 and
  /// stage s (valid flag alongside). one_hot_[0] is the stage-0 decoder
  /// output staged for the shift.
  struct Lines {
    bool valid = false;
    std::vector<bool> lines;
  };
  std::vector<Lines> pipe_;
  Lines stage0_next_;

  std::uint64_t decode_ops_ = 0;
  std::uint64_t one_hot_transfers_ = 0;
};

}  // namespace pmsb
