// Address-path models for figure 7: (a) a full address decoder per memory
// stage, versus (b) the paper's novel decoded-address pipeline, where the
// one-hot word-line vector produced by the single stage-0 decoder is passed
// from stage to stage through pipeline flip-flops ("the word lines of all
// stages are connected through pipeline flip-flops into long word lines,
// which are activated in a wave-like fashion", section 4.3).
//
// Both organizations are functionally identical (the same word line fires in
// stage s during cycle t0+s); what differs is the hardware exercised per
// wave: `stages` decode operations versus 1 decode + (stages-1) register
// transfers of a D-word one-hot vector. AddressPath counts both so the
// bench_a2 ablation can attach area/energy constants to them, and it
// *executes* the one-hot pipeline so tests can verify the functional
// equivalence claim rather than assume it.
//
// Representation: the word-line registers are stored as 64-line blocks
// (std::uint64_t) in one flat ring buffer. A clock edge rotates the ring
// head instead of copying stages-1 D-bit vectors, and recovering an address
// scans D/64 words instead of D bools -- the same datapath semantics
// (genuine one-hot bits, checked on every read) at a fraction of the
// simulation cost. This path sits inside the per-cycle kernel loop of every
// cycle-accurate experiment, so it dominated bench_sim_speed before the
// block rewrite.

#pragma once

#include <cstdint>
#include <vector>

#include "common/util.hpp"

namespace pmsb {

enum class AddrPathMode {
  kPerStageDecoders,   ///< Figure 7(a): every stage re-decodes the address.
  kDecodedPipeline,    ///< Figure 7(b): decode once, pipeline the word line.
};

/// Decode an address into a one-hot word-line vector of `words` lines.
std::vector<bool> decode_one_hot(std::uint32_t addr, std::size_t words);

/// Recover the address from a one-hot word-line vector (asserts one-hot).
std::uint32_t encode_from_one_hot(const std::vector<bool>& lines);

class AddressPath {
 public:
  AddressPath(unsigned stages, std::size_t words, AddrPathMode mode);

  AddrPathMode mode() const { return mode_; }
  unsigned stages() const { return stages_; }

  /// The address whose word line is active in stage s this cycle, or -1 if
  /// the stage is idle. In kDecodedPipeline mode this is computed from the
  /// pipelined one-hot vector (exercising the figure-7b datapath); in
  /// kPerStageDecoders mode it decodes the address delivered by the control
  /// pipeline (counting one decode operation).
  long active_addr(unsigned s, std::uint32_t ctrl_addr, bool stage_active);

  /// Clock edge: shift the one-hot pipeline.
  void tick();

  std::uint64_t decode_ops() const { return decode_ops_; }
  std::uint64_t one_hot_reg_transfers() const { return one_hot_transfers_; }

 private:
  /// Physical ring slot of logical word-line register s. Slot phys(0) stages
  /// the stage-0 decoder output for the next shift; slots phys(1..stages-1)
  /// are the registers between stages. tick() rotates head_ so that the old
  /// phys(s-1) becomes the new phys(s) without moving any bits.
  unsigned phys(unsigned s) const { return (head_ + s) % stages_; }

  unsigned stages_;
  std::size_t words_;
  AddrPathMode mode_;

  std::size_t blocks_;                ///< 64-line blocks per register.
  std::vector<std::uint64_t> bits_;   ///< stages_ x blocks_ ring of word lines.
  std::vector<std::uint8_t> valid_;   ///< Per-slot valid flag.
  unsigned head_ = 0;

  std::uint64_t decode_ops_ = 0;
  std::uint64_t one_hot_transfers_ = 0;
};

}  // namespace pmsb
