// One memory stage of the pipelined buffer: a single-ported SRAM bank.
//
// The entire pipelined-memory argument rests on each stage being a *plain
// single-ported* RAM (section 3.2): one read OR one write per cycle. The
// bank therefore asserts this port limit on every access -- any arbitration
// bug that would need a second port is caught immediately rather than
// silently simulated away.
//
// Read timing: `read()` during cycle t returns the committed array content
// (writes staged in cycle t commit at the end of t), i.e. the classic
// read-before-write SRAM. The paper's cut-through "snoop" (output register
// row captures the write-bus data while M0 is being written) is modelled by
// `write_snoop()`, which performs the single physical write access and also
// returns the bus data for the snooper.

#pragma once

#include <cstdint>
#include <vector>

#include "common/util.hpp"

namespace pmsb {

class SramBank {
 public:
  /// `words` addressable words of `word_bits` bits each.
  SramBank(std::size_t words, unsigned word_bits);

  std::size_t size() const { return array_.size(); }
  unsigned word_bits() const { return word_bits_; }

  /// Single-port read access for this cycle.
  Word read(std::size_t addr);

  /// Single-port write access for this cycle; commits at tick().
  void write(std::size_t addr, Word data);

  /// Write access whose bus data is also captured by the output register row
  /// (automatic cut-through, section 3.3). One physical access.
  Word write_snoop(std::size_t addr, Word data);

  /// Clock edge: commit a staged write, reopen the port.
  void tick();

  /// Lifetime access statistics (for the ablation benches).
  std::uint64_t total_reads() const { return total_reads_; }
  std::uint64_t total_writes() const { return total_writes_; }

  /// Peek without using the port (testbench/debug only).
  Word debug_peek(std::size_t addr) const;

 private:
  void claim_port();

  std::vector<Word> array_;
  unsigned word_bits_;
  Word mask_;

  bool port_used_ = false;
  bool write_pending_ = false;
  std::size_t pend_addr_ = 0;
  Word pend_data_ = 0;

  std::uint64_t total_reads_ = 0;
  std::uint64_t total_writes_ = 0;
};

}  // namespace pmsb
