// Two-phase edge-triggered register.
//
// Matches the kernel convention: reads of q() during cycle t return the
// value committed at the end of cycle t-1; set_d() stages the value to be
// committed at the end of the current cycle. If set_d() is not called in a
// cycle, the register holds (load-enable deasserted).

#pragma once

#include <utility>

namespace pmsb {

template <typename T>
class Reg {
 public:
  Reg() = default;
  explicit Reg(T reset) : q_(reset), d_(std::move(reset)) {}

  /// Registered output: state as of the end of the previous cycle.
  const T& q() const { return q_; }

  /// Stage the next value (load-enable asserted this cycle).
  void set_d(T v) {
    d_ = std::move(v);
    loaded_ = true;
  }

  /// Clock edge: commit staged value if the enable was asserted.
  void tick() {
    if (loaded_) {
      q_ = d_;
      loaded_ = false;
    }
  }

  /// Asynchronous reset (testbench convenience, not a clocked path).
  void reset(T v) {
    q_ = v;
    d_ = v;
    loaded_ = false;
  }

 private:
  T q_{};
  T d_{};
  bool loaded_ = false;
};

}  // namespace pmsb
