#include "rtl/addr_decoder.hpp"

namespace pmsb {

std::vector<bool> decode_one_hot(std::uint32_t addr, std::size_t words) {
  PMSB_CHECK(addr < words, "decode address out of range");
  std::vector<bool> lines(words, false);
  lines[addr] = true;
  return lines;
}

std::uint32_t encode_from_one_hot(const std::vector<bool>& lines) {
  long found = -1;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i]) {
      PMSB_CHECK(found < 0, "word-line vector is not one-hot");
      found = static_cast<long>(i);
    }
  }
  PMSB_CHECK(found >= 0, "word-line vector has no active line");
  return static_cast<std::uint32_t>(found);
}

AddressPath::AddressPath(unsigned stages, std::size_t words, AddrPathMode mode)
    : stages_(stages), words_(words), mode_(mode), pipe_(stages) {
  PMSB_CHECK(stages >= 1, "address path needs at least one stage");
  PMSB_CHECK(words >= 1, "address path needs at least one word line");
}

long AddressPath::active_addr(unsigned s, std::uint32_t ctrl_addr, bool stage_active) {
  PMSB_CHECK(s < stages_, "stage index out of range");
  if (mode_ == AddrPathMode::kPerStageDecoders) {
    if (!stage_active) return -1;
    ++decode_ops_;
    PMSB_CHECK(ctrl_addr < words_, "decode address out of range");
    return static_cast<long>(ctrl_addr);
  }
  // Figure 7(b): stage 0 decodes; later stages use the registered one-hot
  // vector shifted along the word lines.
  if (s == 0) {
    if (!stage_active) return -1;
    ++decode_ops_;
    stage0_next_ = Lines{true, decode_one_hot(ctrl_addr, words_)};
    return static_cast<long>(ctrl_addr);
  }
  const Lines& l = pipe_[s];
  if (!l.valid) {
    PMSB_CHECK(!stage_active, "control pipeline active but word-line pipeline idle");
    return -1;
  }
  PMSB_CHECK(stage_active, "word-line pipeline active but control pipeline idle");
  const std::uint32_t from_lines = encode_from_one_hot(l.lines);
  PMSB_CHECK(from_lines == ctrl_addr,
             "decoded-address pipeline diverged from the address the control "
             "pipeline carries (figure 7b functional-equivalence violation)");
  return static_cast<long>(from_lines);
}

void AddressPath::tick() {
  if (mode_ != AddrPathMode::kDecodedPipeline) return;
  for (unsigned s = stages_; s-- > 1;) {
    if (s >= 2) {
      if (pipe_[s - 1].valid) ++one_hot_transfers_;
      pipe_[s] = pipe_[s - 1];
    } else {
      if (stage0_next_.valid) ++one_hot_transfers_;
      pipe_[1] = stage0_next_;
    }
  }
  stage0_next_ = Lines{};
}

}  // namespace pmsb
