#include "rtl/addr_decoder.hpp"

#include <algorithm>
#include <bit>

namespace pmsb {

std::vector<bool> decode_one_hot(std::uint32_t addr, std::size_t words) {
  PMSB_CHECK(addr < words, "decode address out of range");
  std::vector<bool> lines(words, false);
  lines[addr] = true;
  return lines;
}

std::uint32_t encode_from_one_hot(const std::vector<bool>& lines) {
  long found = -1;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i]) {
      PMSB_CHECK(found < 0, "word-line vector is not one-hot");
      found = static_cast<long>(i);
    }
  }
  PMSB_CHECK(found >= 0, "word-line vector has no active line");
  return static_cast<std::uint32_t>(found);
}

AddressPath::AddressPath(unsigned stages, std::size_t words, AddrPathMode mode)
    : stages_(stages),
      words_(words),
      mode_(mode),
      blocks_((words + 63) / 64),
      bits_(stages * ((words + 63) / 64), 0),
      valid_(stages, 0) {
  PMSB_CHECK(stages >= 1, "address path needs at least one stage");
  PMSB_CHECK(words >= 1, "address path needs at least one word line");
}

long AddressPath::active_addr(unsigned s, std::uint32_t ctrl_addr, bool stage_active) {
  PMSB_CHECK(s < stages_, "stage index out of range");
  if (mode_ == AddrPathMode::kPerStageDecoders) {
    if (!stage_active) return -1;
    ++decode_ops_;
    PMSB_CHECK(ctrl_addr < words_, "decode address out of range");
    return static_cast<long>(ctrl_addr);
  }
  // Figure 7(b): stage 0 decodes; later stages use the registered one-hot
  // vector shifted along the word lines.
  if (s == 0) {
    if (!stage_active) return -1;
    ++decode_ops_;
    PMSB_CHECK(ctrl_addr < words_, "decode address out of range");
    const unsigned p = phys(0);  // Cleared by the previous tick().
    valid_[p] = 1;
    bits_[p * blocks_ + ctrl_addr / 64] |= std::uint64_t{1} << (ctrl_addr % 64);
    return static_cast<long>(ctrl_addr);
  }
  const unsigned p = phys(s);
  if (!valid_[p]) {
    PMSB_CHECK(!stage_active, "control pipeline active but word-line pipeline idle");
    return -1;
  }
  PMSB_CHECK(stage_active, "word-line pipeline active but control pipeline idle");
  const std::uint64_t* blocks = &bits_[p * blocks_];
  long found = -1;
  for (std::size_t i = 0; i < blocks_; ++i) {
    const std::uint64_t b = blocks[i];
    if (b == 0) continue;
    PMSB_CHECK(found < 0 && (b & (b - 1)) == 0, "word-line vector is not one-hot");
    found = static_cast<long>(i * 64 + static_cast<std::size_t>(std::countr_zero(b)));
  }
  PMSB_CHECK(found >= 0, "word-line vector has no active line");
  PMSB_CHECK(static_cast<std::uint32_t>(found) == ctrl_addr,
             "decoded-address pipeline diverged from the address the control "
             "pipeline carries (figure 7b functional-equivalence violation)");
  return found;
}

void AddressPath::tick() {
  if (mode_ != AddrPathMode::kDecodedPipeline) return;
  // Register transfers this edge: the staged decoder output entering the
  // pipe, plus every inter-stage register that forwards into its successor.
  // The last register's contents retire (its stage already fired) and are
  // not transferred anywhere.
  if (stages_ >= 2) {
    if (valid_[phys(0)]) ++one_hot_transfers_;
    for (unsigned s = 1; s + 1 < stages_; ++s) {
      if (valid_[phys(s)]) ++one_hot_transfers_;
    }
  }
  // Rotate the ring: old phys(s-1) becomes new phys(s). The retiring last
  // slot becomes the new staging slot and is wiped for the next decode.
  head_ = (head_ + stages_ - 1) % stages_;
  const unsigned p0 = phys(0);
  valid_[p0] = 0;
  std::fill_n(bits_.begin() + static_cast<std::ptrdiff_t>(p0 * blocks_), blocks_, 0);
}

}  // namespace pmsb
