// The control-signal pipeline of figure 5.
//
// "Each pipeline stage performs exactly the same operation as the previous
//  stage in the previous cycle, and thus we only need to generate the
//  control signals for the first memory stage; the control signals for
//  subsequent stages are delayed versions of the former."  (section 3.3)
//
// StageCtrl is the bundle of control wires entering one memory stage:
// operation kind, buffer address, and the incoming/outgoing link selects.
// CtrlPipeline is the chain of pipeline registers carrying that bundle from
// stage to stage, one stage per cycle:
//
//   * at(0) during cycle t is the wave initiated by the arbiter in cycle t
//     (initiate() must be called during eval of cycle t, before stage 0 is
//     executed -- the arbiter is combinational logic feeding M0's control).
//   * at(s) for s >= 1 during cycle t is whatever stage s-1 executed during
//     cycle t-1, held in pipeline register s-1.

#pragma once

#include <cstdint>
#include <vector>

#include "common/util.hpp"

namespace pmsb {

/// Operation performed by one memory stage in one cycle.
enum class StageOp : std::uint8_t {
  kNone,        ///< Stage idle.
  kWrite,       ///< Store IR[in_link][stage] into M[stage][addr].
  kRead,        ///< Load OR[stage] from M[stage][addr], for out_link.
  kWriteSnoop,  ///< kWrite, with OR[stage] snooping the write bus for
                ///< out_link (same-cycle cut-through, section 3.3).
};

const char* to_string(StageOp op);

/// Control wires entering one stage during one cycle.
struct StageCtrl {
  StageOp op = StageOp::kNone;
  std::uint32_t addr = 0;      ///< Buffer address (same in every stage).
  std::uint16_t in_link = 0;   ///< Valid for kWrite / kWriteSnoop.
  std::uint16_t out_link = 0;  ///< Valid for kRead / kWriteSnoop.
  bool head = false;           ///< This wave carries the cell's head segment.

  bool idle() const { return op == StageOp::kNone; }
};

/// The per-stage pipeline registers of figure 5.
class CtrlPipeline {
 public:
  explicit CtrlPipeline(unsigned stages);

  unsigned stages() const { return stages_; }

  /// Control presented to stage s during the current cycle.
  const StageCtrl& at(unsigned s) const;

  /// Initiate a wave into stage 0 for the current cycle. At most once per
  /// cycle (the arbiter grants at most one wave -- M0 is single-ported).
  void initiate(const StageCtrl& c);

  /// Clock edge: shift the pipeline one stage to the right.
  void tick();

  /// True if any stage is executing a non-idle operation this cycle.
  bool busy() const;

  /// Lifetime count of pipeline-register transfers of non-idle control
  /// (for the figure-7 decoded-address ablation).
  std::uint64_t ctrl_reg_transfers() const { return ctrl_reg_transfers_; }

 private:
  unsigned stages_;
  std::vector<StageCtrl> regs_;  ///< regs_[s-1] feeds stage s (s >= 1).
  StageCtrl inject_;             ///< Stage 0's control for the current cycle.
  bool injected_this_cycle_ = false;
  std::uint64_t ctrl_reg_transfers_ = 0;
};

}  // namespace pmsb
