#include "rtl/sram_bank.hpp"

namespace pmsb {

SramBank::SramBank(std::size_t words, unsigned word_bits)
    : array_(words, 0), word_bits_(word_bits), mask_(low_mask(word_bits)) {
  PMSB_CHECK(words > 0, "SRAM bank needs at least one word");
  PMSB_CHECK(word_bits >= 1 && word_bits <= 64, "SRAM word width out of range");
}

void SramBank::claim_port() {
  PMSB_CHECK(!port_used_,
             "single-ported SRAM bank accessed twice in one cycle "
             "(arbitration must initiate at most one wave per cycle)");
  port_used_ = true;
}

Word SramBank::read(std::size_t addr) {
  PMSB_CHECK(addr < array_.size(), "SRAM read address out of range");
  claim_port();
  ++total_reads_;
  return array_[addr];
}

void SramBank::write(std::size_t addr, Word data) {
  PMSB_CHECK(addr < array_.size(), "SRAM write address out of range");
  PMSB_CHECK((data & ~mask_) == 0, "SRAM write data wider than the bank");
  claim_port();
  ++total_writes_;
  write_pending_ = true;
  pend_addr_ = addr;
  pend_data_ = data;
}

Word SramBank::write_snoop(std::size_t addr, Word data) {
  write(addr, data);
  return data;  // The snooper sees the bus, not the array.
}

void SramBank::tick() {
  if (write_pending_) {
    array_[pend_addr_] = pend_data_;
    write_pending_ = false;
  }
  port_used_ = false;
}

Word SramBank::debug_peek(std::size_t addr) const {
  PMSB_CHECK(addr < array_.size(), "debug_peek address out of range");
  return array_[addr];
}

}  // namespace pmsb
