// Input smoothing [HlKa88]: time is divided into frames of b slots. Each
// input buffers the cells arriving during a frame (up to b of them -- its
// smoothing buffer size). At the frame boundary all buffered cells are
// launched into an (n*b)-way space-division stage; each output can accept at
// most b cells per frame (it transmits one per slot of the next frame);
// cells beyond b for the same output in the same frame are lost.
//
// The paper quotes this architecture needing ~80 cells per input (1300
// total at 16x16) for 1e-3 loss at load 0.8, versus 5.4 per output shared --
// the motivating factor-15 gap of section 2.2.

#pragma once

#include "arch/slot_sim.hpp"

namespace pmsb {

class InputSmoothing : public SlotModel {
 public:
  /// frame = b: smoothing buffer per input, frame length, and per-output
  /// per-frame acceptance limit (all equal in the [HlKa88] construction).
  InputSmoothing(unsigned n, std::size_t frame, Rng rng);

  void do_step(Cycle slot, const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) override;
  std::uint64_t resident() const override;
  const char* kind() const override { return "input smoothing"; }

 private:
  void launch_frame(Cycle slot);

  std::size_t frame_;
  Rng rng_;
  Cycle slot_in_frame_ = 0;
  std::vector<std::vector<SlotCell>> smoothing_;  ///< Per input, current frame.
  std::vector<std::deque<SlotCell>> out_;         ///< Per output, being transmitted.
};

}  // namespace pmsb
