#include "arch/voq_pim.hpp"

namespace pmsb {

VoqPim::VoqPim(unsigned n, std::size_t capacity, unsigned iterations, Rng rng,
               std::size_t per_input_capacity)
    : SlotModel(n), capacity_(capacity), per_input_capacity_(per_input_capacity),
      iterations_(iterations), rng_(rng), voqs_(static_cast<std::size_t>(n) * n),
      input_occupancy_(n, 0), match_out_(n), out_taken_(n), grants_(n) {
  PMSB_CHECK(iterations >= 1, "PIM needs at least one iteration");
}

void VoqPim::do_step(Cycle slot, const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) {
  PMSB_CHECK(arrivals.size() == n_, "arrival vector size mismatch");
  for (unsigned i = 0; i < n_; ++i) {
    if (!arrivals[i]) continue;
    on_injected();
    auto& q = voq(i, arrivals[i]->dest);
    if ((capacity_ != 0 && q.size() >= capacity_) ||
        (per_input_capacity_ != 0 && input_occupancy_[i] >= per_input_capacity_)) {
      on_dropped();
      continue;
    }
    q.push_back(SlotCell{slot, i, arrivals[i]->dest});
    ++input_occupancy_[i];
  }

  // --- Parallel Iterative Matching [AOST93] ---
  std::fill(match_out_.begin(), match_out_.end(), -1);
  std::fill(out_taken_.begin(), out_taken_.end(), false);
  for (unsigned it = 0; it < iterations_; ++it) {
    // Grant phase: every unmatched output picks one requesting unmatched
    // input uniformly at random.
    for (auto& g : grants_) g.clear();
    for (unsigned o = 0; o < n_; ++o) {
      if (out_taken_[o]) continue;
      unsigned n_req = 0;
      unsigned chosen = 0;
      // Reservoir-sample one unmatched requester.
      for (unsigned i = 0; i < n_; ++i) {
        if (match_out_[i] >= 0 || voq(i, o).empty()) continue;
        ++n_req;
        if (rng_.next_below(n_req) == 0) chosen = i;
      }
      if (n_req > 0) grants_[chosen].push_back(o);
    }
    // Accept phase: every input with grants accepts one at random.
    bool any = false;
    for (unsigned i = 0; i < n_; ++i) {
      if (grants_[i].empty() || match_out_[i] >= 0) continue;
      const unsigned o =
          grants_[i][static_cast<std::size_t>(rng_.next_below(grants_[i].size()))];
      match_out_[i] = static_cast<int>(o);
      out_taken_[o] = true;
      any = true;
    }
    if (!any) break;  // Converged.
  }

  // Transfer matched head-of-queue cells.
  ++slots_;
  for (unsigned i = 0; i < n_; ++i) {
    if (match_out_[i] < 0) continue;
    auto& q = voq(i, static_cast<unsigned>(match_out_[i]));
    on_delivered(slot, q.front());
    q.pop_front();
    --input_occupancy_[i];
    ++matched_total_;
  }
}

std::uint64_t VoqPim::resident() const {
  std::uint64_t r = 0;
  for (const auto& q : voqs_) r += q.size();
  return r;
}

}  // namespace pmsb
