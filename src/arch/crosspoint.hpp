// Crosspoint queueing (figure 1, right): one queue per (input, output) pair.
// Every output can always transmit if any of its column queues is non-empty,
// so link utilization is optimal -- at the cost of n^2 buffers with poor
// memory utilization (section 2.1).

#pragma once

#include "arch/slot_sim.hpp"
#include "core/arbiter.hpp"

namespace pmsb {

class CrosspointQueueing : public SlotModel {
 public:
  /// capacity = cells per crosspoint queue; 0 = unbounded.
  CrosspointQueueing(unsigned n, std::size_t capacity);

  void do_step(Cycle slot, const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) override;
  std::uint64_t resident() const override;
  const char* kind() const override { return "crosspoint queueing"; }

 private:
  std::deque<SlotCell>& q(unsigned i, unsigned o) {
    return queues_[static_cast<std::size_t>(i) * n_ + o];
  }

  std::size_t capacity_;
  std::vector<std::deque<SlotCell>> queues_;   ///< [i * n + o]
  std::vector<RoundRobin> column_rr_;          ///< Per-output service pointer.
};

}  // namespace pmsb
