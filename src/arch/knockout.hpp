// The Knockout switch [YeHA87] (cited in section 3.1: "the buffers in the
// 'Knockout Switch' use this technique, in an output queueing
// architecture"). Output queueing with a CONCENTRATOR: each output accepts
// at most L of the up-to-n cells that may arrive for it in one slot; the
// knockout tournament discards the excess fairly at random. L < n trades a
// bounded, load-independent knockout loss for an n:L reduction in the
// output buffer's write-port requirement -- the cheap-output-queueing trick
// the pipelined shared buffer competes with.

#pragma once

#include "arch/slot_sim.hpp"

namespace pmsb {

class KnockoutSwitch : public SlotModel {
 public:
  /// `concentration` = L (1..n); `capacity` = cells per output queue
  /// (0 = unbounded).
  KnockoutSwitch(unsigned n, unsigned concentration, std::size_t capacity, Rng rng);

  void do_step(Cycle slot, const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) override;
  std::uint64_t resident() const override;
  const char* kind() const override { return "knockout"; }

  std::uint64_t knockout_losses() const { return knockout_losses_; }

 private:
  unsigned l_;
  std::size_t capacity_;
  Rng rng_;
  std::vector<std::deque<SlotCell>> queues_;
  std::vector<std::vector<SlotCell>> per_output_;  // scratch
  std::uint64_t knockout_losses_ = 0;
};

}  // namespace pmsb
