// Closed-form queueing results used by the paper's section 2 citations,
// as executable cross-checks for the simulators.
//
//  * [KaHM87]: FIFO input queueing saturates at 2 - sqrt(2) ~ 0.586 as
//    n -> infinity (uniform traffic, random selection).
//  * [KaHM87] eq. for output queueing (discrete-time, Bernoulli arrivals
//    from n inputs thinned uniformly): mean wait
//        W = ((n-1)/n) * rho / (2 (1 - rho))   slots.
//  * PIM with one iteration matches ~ (1 - 1/e) of requests on a saturated
//    switch as n grows [AOST93].
//
// These are 1980s-textbook results, implemented here so tests can assert the
// simulators against theory instead of against themselves.

#pragma once

#include <cmath>

namespace pmsb::analytic {

/// FIFO input queueing saturation throughput, n -> infinity.
inline double input_queueing_saturation_limit() { return 2.0 - std::sqrt(2.0); }

/// Mean wait (slots, excluding the service slot) of an output queue fed by n
/// Bernoulli-thinned inputs at total load rho [KaHM87, eq. (6)].
inline double output_queueing_mean_wait(unsigned n, double rho) {
  return (static_cast<double>(n - 1) / n) * rho / (2.0 * (1.0 - rho));
}

/// Expected match fraction of single-iteration PIM on a saturated n x n
/// switch (requests everywhere): each output grants one input; an input
/// accepts one grant. For large n the matched fraction approaches 1 - 1/e.
inline double pim_one_iteration_limit() { return 1.0 - std::exp(-1.0); }

/// Section 3.4's staggered-initiation penalty: (p/4) * (n-1)/n cycles.
inline double stagger_penalty_cycles(unsigned n, double p) {
  return (p / 4.0) * (static_cast<double>(n - 1) / n);
}

/// Knockout-switch concentration loss [YeHA87]: fraction of cells lost when
/// each output accepts at most L of its per-slot arrivals, with per-input
/// load rho and uniform destinations: arrivals per output are
/// Binomial(n, rho/n); loss = E[(K - L)+] / E[K].
double knockout_loss(unsigned n, unsigned l, double rho);

}  // namespace pmsb::analytic
