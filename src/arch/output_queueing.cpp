#include "arch/output_queueing.hpp"

namespace pmsb {

OutputQueueing::OutputQueueing(unsigned n, std::size_t capacity)
    : SlotModel(n), capacity_(capacity), queues_(n) {}

void OutputQueueing::do_step(Cycle slot,
                          const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) {
  PMSB_CHECK(arrivals.size() == n_, "arrival vector size mismatch");
  for (unsigned i = 0; i < n_; ++i) {
    if (!arrivals[i]) continue;
    on_injected();
    auto& q = queues_[arrivals[i]->dest];
    if (capacity_ != 0 && q.size() >= capacity_) {
      on_dropped();
      continue;
    }
    q.push_back(SlotCell{slot, i, arrivals[i]->dest});
  }
  for (unsigned o = 0; o < n_; ++o) {
    if (queues_[o].empty()) continue;
    on_delivered(slot, queues_[o].front());
    queues_[o].pop_front();
  }
}

std::uint64_t OutputQueueing::resident() const {
  std::uint64_t r = 0;
  for (const auto& q : queues_) r += q.size();
  return r;
}

}  // namespace pmsb
