// Block-crosspoint buffering (section 2.2): "a number of shared buffers,
// each dedicated to a certain subset of incoming and outgoing links."
// Inputs and outputs are partitioned into g groups; block (gi, go) is a
// shared pool for cells travelling from input-group gi to output-group go.
// Throughput-per-buffer is 2n/g times lower than one shared buffer; space
// utilization sits between crosspoint and fully-shared. With g = 1 this IS
// the shared buffer; with g = n it degenerates to crosspoint queueing.

#pragma once

#include "arch/slot_sim.hpp"
#include "core/arbiter.hpp"

namespace pmsb {

class BlockCrosspoint : public SlotModel {
 public:
  /// `groups` must divide n; capacity = cells per block (0 = unbounded).
  BlockCrosspoint(unsigned n, unsigned groups, std::size_t capacity);

  void do_step(Cycle slot, const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) override;
  std::uint64_t resident() const override;
  const char* kind() const override { return "block-crosspoint"; }

  unsigned groups() const { return g_; }

 private:
  struct Block {
    std::vector<std::deque<SlotCell>> per_output;  ///< Indexed by global output.
    std::size_t resident = 0;
  };

  unsigned group_of(unsigned port) const { return port / (n_ / g_); }
  Block& block(unsigned gi, unsigned go) { return blocks_[static_cast<std::size_t>(gi) * g_ + go]; }

  unsigned g_;
  std::size_t capacity_;
  std::vector<Block> blocks_;
  std::vector<RoundRobin> out_rr_;  ///< Per output: RR over source groups.
};

}  // namespace pmsb
