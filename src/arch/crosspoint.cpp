#include "arch/crosspoint.hpp"

namespace pmsb {

CrosspointQueueing::CrosspointQueueing(unsigned n, std::size_t capacity)
    : SlotModel(n), capacity_(capacity),
      queues_(static_cast<std::size_t>(n) * n),
      column_rr_(n, RoundRobin(n)) {}

void CrosspointQueueing::do_step(Cycle slot,
                              const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) {
  PMSB_CHECK(arrivals.size() == n_, "arrival vector size mismatch");
  for (unsigned i = 0; i < n_; ++i) {
    if (!arrivals[i]) continue;
    on_injected();
    auto& queue = q(i, arrivals[i]->dest);
    if (capacity_ != 0 && queue.size() >= capacity_) {
      on_dropped();
      continue;
    }
    queue.push_back(SlotCell{slot, i, arrivals[i]->dest});
  }
  for (unsigned o = 0; o < n_; ++o) {
    const int i = column_rr_[o].pick([&](unsigned in) { return !q(in, o).empty(); });
    if (i < 0) continue;
    auto& queue = q(static_cast<unsigned>(i), o);
    on_delivered(slot, queue.front());
    queue.pop_front();
  }
}

std::uint64_t CrosspointQueueing::resident() const {
  std::uint64_t r = 0;
  for (const auto& queue : queues_) r += queue.size();
  return r;
}

}  // namespace pmsb
