// Pluggable admission policies for the slot-level shared buffer (section
// 2.2's statistical-multiplexing argument made concrete): the policy decides,
// per arriving cell, whether one output may claim another cell of the shared
// pool. Three reference points:
//
//  - StaticCapPolicy: fixed per-output share of the pool, the seed
//    behaviour ([DeEI95], [Koza91]) and the default.
//  - DynamicThresholdPolicy: classic Choudhury-Hahne Dynamic Threshold --
//    a queue may grow while it is shorter than alpha x (free pool), so
//    caps tighten as the pool fills and relax as it drains.
//  - QueueDelayPolicy: BShare-style (PAPERS.md) delay-driven sharing --
//    admit while the arriving cell's projected drain delay (queue length
//    over the output's measured drain rate) stays under a target, so slow
//    outputs get squeezed harder than fast ones at equal queue length.
//
// Policies see only aggregate state (dest, queue length, pool occupancy) and
// hold no cell references, so one policy object serves exactly one model.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/util.hpp"

namespace pmsb {

class AdmissionPolicy {
 public:
  /// How a rejection by this policy should be attributed in drop accounting.
  enum class RejectKind { kOutputCap, kPolicyReject };

  virtual ~AdmissionPolicy() = default;

  /// Called once by the owning model before any other hook.
  virtual void bind(unsigned n_outputs, std::size_t capacity) {
    (void)n_outputs;
    (void)capacity;
  }

  /// Called at the start of every slot, before any admission decision.
  virtual void on_slot(Cycle slot) { (void)slot; }

  /// May a cell destined to `dest` enter? `queue_len` is dest's current
  /// logical queue length, `resident` the pool occupancy. The caller has
  /// already rejected on a full pool; this is the sharing decision only.
  virtual bool admit(unsigned dest, std::size_t queue_len, std::size_t resident) const = 0;

  /// Called for every delivered cell (after the head of `dest` is sent).
  virtual void on_delivered(unsigned dest, Cycle slot) {
    (void)dest;
    (void)slot;
  }

  virtual const char* name() const = 0;

  virtual RejectKind reject_kind() const { return RejectKind::kPolicyReject; }

  /// Largest per-output queue length the policy can ever allow, if it
  /// implies a static bound; 0 = no static bound. Used by invariant checks.
  virtual std::size_t hard_queue_cap() const { return 0; }
};

/// Fixed per-output cap: admit while queue_len < limit (0 = no cap).
/// Bit-identical to the seed SharedBufferModel's out_queue_limit behaviour.
class StaticCapPolicy final : public AdmissionPolicy {
 public:
  explicit StaticCapPolicy(std::size_t limit) : limit_(limit) {}

  bool admit(unsigned, std::size_t queue_len, std::size_t) const override {
    return limit_ == 0 || queue_len < limit_;
  }
  const char* name() const override { return "static_cap"; }
  RejectKind reject_kind() const override { return RejectKind::kOutputCap; }
  std::size_t hard_queue_cap() const override { return limit_; }

  std::size_t limit() const { return limit_; }

 private:
  std::size_t limit_;
};

/// Choudhury-Hahne Dynamic Threshold: admit while
/// queue_len < alpha x (capacity - resident). An unbounded pool
/// (capacity 0) always admits.
class DynamicThresholdPolicy final : public AdmissionPolicy {
 public:
  explicit DynamicThresholdPolicy(double alpha) : alpha_(alpha) {
    PMSB_CHECK(alpha > 0.0, "dynamic threshold alpha must be positive");
  }

  void bind(unsigned, std::size_t capacity) override { capacity_ = capacity; }

  bool admit(unsigned, std::size_t queue_len, std::size_t resident) const override {
    if (capacity_ == 0) return true;
    const std::size_t free_pool = capacity_ > resident ? capacity_ - resident : 0;
    return static_cast<double>(queue_len) < alpha_ * static_cast<double>(free_pool);
  }
  const char* name() const override { return "dynamic_threshold"; }

  double alpha() const { return alpha_; }
  /// The instantaneous cap DT implies at a given pool occupancy.
  double threshold(std::size_t resident) const {
    const std::size_t free_pool = capacity_ > resident ? capacity_ - resident : 0;
    return alpha_ * static_cast<double>(free_pool);
  }

 private:
  double alpha_;
  std::size_t capacity_ = 0;
};

/// BShare-style delay-driven admission: admit while the arriving cell's
/// projected drain delay -- queue_len divided by the output's drain rate
/// measured over a sliding window of `window` slots -- is at most
/// `max_delay_slots`. Integer arithmetic throughout, so decisions are
/// bit-deterministic. An empty queue always admits (the cell drains next
/// slot regardless of history).
class QueueDelayPolicy final : public AdmissionPolicy {
 public:
  explicit QueueDelayPolicy(Cycle max_delay_slots, unsigned window = 64)
      : max_delay_(max_delay_slots), window_(window) {
    PMSB_CHECK(max_delay_slots >= 0, "delay target must be non-negative");
    PMSB_CHECK(window > 0, "drain-rate window must be non-empty");
  }

  void bind(unsigned n_outputs, std::size_t) override {
    ring_.assign(static_cast<std::size_t>(n_outputs) * window_, 0);
    window_sum_.assign(n_outputs, 0);
  }

  void on_slot(Cycle slot) override {
    pos_ = static_cast<unsigned>(slot % window_);
    for (std::size_t o = 0; o < window_sum_.size(); ++o) {
      std::uint8_t& cell = ring_[o * window_ + pos_];
      window_sum_[o] -= cell;
      cell = 0;
    }
    if (slots_seen_ < window_) ++slots_seen_;
  }

  bool admit(unsigned dest, std::size_t queue_len, std::size_t) const override {
    if (queue_len == 0) return true;
    const std::uint64_t eff = slots_seen_ > 0 ? slots_seen_ : 1;
    const std::uint64_t drained =
        window_sum_[dest] > 0 ? static_cast<std::uint64_t>(window_sum_[dest]) : 1;
    const std::uint64_t projected = static_cast<std::uint64_t>(queue_len) * eff / drained;
    return projected <= static_cast<std::uint64_t>(max_delay_);
  }

  void on_delivered(unsigned dest, Cycle) override {
    ++ring_[dest * window_ + pos_];
    ++window_sum_[dest];
  }

  const char* name() const override { return "queue_delay"; }

  /// Drain rate >= measured rate implies projected >= queue_len, so an
  /// admitted cell always sees queue_len <= max_delay: the queue is
  /// statically bounded by max_delay + 1 after its own push.
  std::size_t hard_queue_cap() const override {
    return static_cast<std::size_t>(max_delay_) + 1;
  }

  Cycle max_delay_slots() const { return max_delay_; }
  unsigned window() const { return window_; }

 private:
  Cycle max_delay_;
  unsigned window_;
  unsigned pos_ = 0;
  unsigned slots_seen_ = 0;
  std::vector<std::uint8_t> ring_;       ///< [output][slot % window] deliveries.
  std::vector<std::uint32_t> window_sum_;  ///< Per-output sum over the ring.
};

}  // namespace pmsb
