#include "arch/knockout.hpp"

namespace pmsb {

KnockoutSwitch::KnockoutSwitch(unsigned n, unsigned concentration, std::size_t capacity, Rng rng)
    : SlotModel(n), l_(concentration), capacity_(capacity), rng_(rng), queues_(n),
      per_output_(n) {
  PMSB_CHECK(concentration >= 1 && concentration <= n, "concentration L must be in [1, n]");
}

void KnockoutSwitch::do_step(Cycle slot,
                          const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) {
  PMSB_CHECK(arrivals.size() == n_, "arrival vector size mismatch");
  for (auto& v : per_output_) v.clear();
  for (unsigned i = 0; i < n_; ++i) {
    if (!arrivals[i]) continue;
    on_injected();
    per_output_[arrivals[i]->dest].push_back(SlotCell{slot, i, arrivals[i]->dest});
  }
  for (unsigned o = 0; o < n_; ++o) {
    auto& cand = per_output_[o];
    // Knockout tournament: a uniformly random subset of L survives.
    for (std::size_t k = cand.size(); k > 1; --k) {
      const auto j = static_cast<std::size_t>(rng_.next_below(k));
      std::swap(cand[k - 1], cand[j]);
    }
    for (std::size_t k = 0; k < cand.size(); ++k) {
      if (k >= l_) {
        on_dropped();
        ++knockout_losses_;
        continue;
      }
      if (capacity_ != 0 && queues_[o].size() >= capacity_) {
        on_dropped();
        continue;
      }
      queues_[o].push_back(cand[k]);
    }
    if (!queues_[o].empty()) {
      on_delivered(slot, queues_[o].front());
      queues_[o].pop_front();
    }
  }
}

std::uint64_t KnockoutSwitch::resident() const {
  std::uint64_t r = 0;
  for (const auto& q : queues_) r += q.size();
  return r;
}

}  // namespace pmsb
