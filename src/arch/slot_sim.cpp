#include "arch/slot_sim.hpp"

namespace pmsb {

void run_slot_sim(SlotModel& model, SlotTraffic& traffic, Cycle slots, Cycle warmup) {
  model.set_warmup(warmup);
  for (Cycle s = 0; s < slots; ++s) model.step(s, traffic.step());
}

double measured_throughput(const SlotModel& model, Cycle slots) {
  return normalized_throughput(model.counts().delivered, model.ports(),
                               static_cast<std::uint64_t>(slots));
}

}  // namespace pmsb
