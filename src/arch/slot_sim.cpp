#include "arch/slot_sim.hpp"

#include "arch/shared_buffer.hpp"
#include "check/invariants.hpp"
#include "check/slot_invariants.hpp"

namespace pmsb {

void run_slot_sim(SlotModel& model, SlotTraffic& traffic, Cycle slots, Cycle warmup) {
  model.set_warmup(warmup);
  const SharedBufferModel* shared =
      check::env_enabled() ? dynamic_cast<const SharedBufferModel*>(&model) : nullptr;
  if (shared) {
    check::SharedBufferAuditor audit(*shared);
    for (Cycle s = 0; s < slots; ++s) {
      model.step(s, traffic.step());
      audit.after_step(s);
    }
    return;
  }
  for (Cycle s = 0; s < slots; ++s) model.step(s, traffic.step());
}

double measured_throughput(const SlotModel& model, Cycle slots) {
  const Cycle warmup = model.warmup_until();
  if (slots <= warmup) return 0.0;
  return normalized_throughput(model.measured_counts().delivered, model.ports(),
                               static_cast<std::uint64_t>(slots - warmup));
}

}  // namespace pmsb
