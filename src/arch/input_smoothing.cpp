#include "arch/input_smoothing.hpp"

#include <algorithm>

namespace pmsb {

InputSmoothing::InputSmoothing(unsigned n, std::size_t frame, Rng rng)
    : SlotModel(n), frame_(frame), rng_(rng), smoothing_(n), out_(n) {
  PMSB_CHECK(frame >= 1, "frame must be at least one slot");
}

void InputSmoothing::do_step(Cycle slot,
                          const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) {
  PMSB_CHECK(arrivals.size() == n_, "arrival vector size mismatch");
  for (unsigned i = 0; i < n_; ++i) {
    if (!arrivals[i]) continue;
    on_injected();
    if (smoothing_[i].size() >= frame_) {  // Smoothing buffer overflow.
      on_dropped();
      continue;
    }
    smoothing_[i].push_back(SlotCell{slot, i, arrivals[i]->dest});
  }
  // Transmit one cell per output from the frame being played out.
  for (unsigned o = 0; o < n_; ++o) {
    if (out_[o].empty()) continue;
    on_delivered(slot, out_[o].front());
    out_[o].pop_front();
  }
  if (++slot_in_frame_ == static_cast<Cycle>(frame_)) {
    slot_in_frame_ = 0;
    launch_frame(slot);
  }
}

void InputSmoothing::launch_frame(Cycle) {
  // Collect all smoothed cells per output; accept at most `frame_` each,
  // chosen fairly at random among the contenders (the space-division stage
  // has no memory); the rest are knocked out.
  std::vector<std::vector<SlotCell>> per_output(n_);
  for (auto& buf : smoothing_) {
    for (auto& c : buf) per_output[c.dest].push_back(c);
    buf.clear();
  }
  for (unsigned o = 0; o < n_; ++o) {
    auto& cand = per_output[o];
    // Fisher-Yates: a uniformly random subset of `frame_` survives.
    for (std::size_t k = cand.size(); k > 1; --k) {
      const auto j = static_cast<std::size_t>(rng_.next_below(k));
      std::swap(cand[k - 1], cand[j]);
    }
    for (std::size_t k = 0; k < cand.size(); ++k) {
      if (k < frame_)
        out_[o].push_back(cand[k]);
      else
        on_dropped();
    }
  }
}

std::uint64_t InputSmoothing::resident() const {
  std::uint64_t r = 0;
  for (const auto& b : smoothing_) r += b.size();
  for (const auto& q : out_) r += q.size();
  return r;
}

}  // namespace pmsb
