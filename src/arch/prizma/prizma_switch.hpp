// Cycle-accurate PRIZMA-style interleaved shared buffer (section 5.3,
// [DeEI95], [Turn93]): M independent memory banks, each holding exactly one
// cell; an n x M "router" crossbar steers each arriving word into its cell's
// bank, and an M x n "selector" crossbar steers read-out words to the
// outputs.
//
// Functionally this matches the shared buffer (full throughput, per-output
// FIFO, cut-through: a departure may trail an in-progress arrival by one
// cycle). Its cost is structural, which is what section 5.3 charges it for:
// the two crossbars scale with n*M instead of n*2n, and every bank needs its
// own address/selection circuitry. The banks are modelled with one read and
// one write port (1R1W) -- a *generous* assumption for the baseline; the
// pipelined memory needs only single-ported banks.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/config.hpp"
#include "core/free_list.hpp"
#include "core/switch.hpp"  // SwitchEvents, DropReason, SwitchStats
#include "sim/engine.hpp"
#include "sim/wire.hpp"

namespace pmsb {

struct PrizmaConfig {
  unsigned n_ports = 4;
  unsigned word_bits = 16;
  unsigned cell_words = 8;
  unsigned n_banks = 64;  ///< M: shared-buffer capacity in cells.
  bool cut_through = true;

  unsigned dest_bits() const { return bits_for(n_ports); }
  CellFormat cell_format() const { return CellFormat{word_bits, dest_bits(), cell_words}; }
  /// Non-throwing check with structured issues (see core/config.hpp).
  ConfigValidation check() const;
  /// Throws std::invalid_argument(check().summary()) on any issue.
  void validate() const;
};

class PrizmaSwitch : public Component {
 public:
  explicit PrizmaSwitch(const PrizmaConfig& cfg);

  const PrizmaConfig& config() const { return cfg_; }

  WireLink& in_link(unsigned i) { return in_links_.at(i); }
  WireLink& out_link(unsigned o) { return out_links_.at(o); }

  /// Multi-subscriber event fan-out (see core/event_hub.hpp).
  EventHub& events() { return events_; }
  const EventHub& events() const { return events_; }

  void eval(Cycle t) override;
  void commit(Cycle t) override;
  std::string name() const override { return "prizma_switch"; }

  const SwitchStats& stats() const { return stats_; }
  bool drained() const;

 private:
  struct InPort {
    bool receiving = false;
    bool discarding = false;  ///< No bank was free: cell is being dropped.
    unsigned phase = 0;
    unsigned dest = 0;
    Cycle a0 = 0;
    std::uint32_t bank = 0;
  };
  struct QueuedCell {
    std::uint32_t bank;
    unsigned input;
    unsigned dest;
    Cycle a0;
  };
  struct OutPort {
    bool streaming = false;
    std::uint32_t bank = 0;
    unsigned idx = 0;
    Cycle a0 = 0;  ///< For latency/cut-through accounting.
  };

  void serve_outputs(Cycle t);
  void accept_arrivals(Cycle t);

  PrizmaConfig cfg_;
  unsigned L_;

  std::vector<std::vector<Word>> banks_;  ///< [bank][word]
  FreeList free_banks_;
  std::vector<std::deque<QueuedCell>> oq_;
  std::vector<QueuedCell> oq_staged_;

  std::vector<WireLink> in_links_;
  std::vector<WireLink> out_links_;
  std::vector<InPort> in_;
  std::vector<OutPort> out_;

  EventHub events_;
  SwitchStats stats_;
};

}  // namespace pmsb
