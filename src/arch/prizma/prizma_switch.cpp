#include "arch/prizma/prizma_switch.hpp"

#include <stdexcept>

namespace pmsb {

ConfigValidation PrizmaConfig::check() const {
  ConfigValidation v;
  auto issue = [&v](ConfigIssue::Code c, std::string msg) {
    v.issues.push_back(ConfigIssue{c, std::move(msg)});
  };
  if (n_ports < 1) issue(ConfigIssue::Code::kBadPorts, "n_ports must be >= 1");
  if (word_bits < 1 || word_bits > 64)
    issue(ConfigIssue::Code::kBadWordBits, "word_bits must be in [1, 64]");
  else if (dest_bits() >= word_bits)
    issue(ConfigIssue::Code::kHeadTooNarrow,
          "head word too narrow for the destination field");
  if (cell_words < 2)
    issue(ConfigIssue::Code::kBadCellWords, "cells must be at least two words");
  if (n_banks < 1) issue(ConfigIssue::Code::kBadCapacity, "need at least one bank");
  return v;
}

void PrizmaConfig::validate() const {
  const ConfigValidation v = check();
  if (!v.ok()) throw std::invalid_argument(v.summary());
}

PrizmaSwitch::PrizmaSwitch(const PrizmaConfig& cfg)
    : cfg_((cfg.validate(), cfg)),
      L_(cfg.cell_words),
      banks_(cfg.n_banks, std::vector<Word>(cfg.cell_words, 0)),
      free_banks_(cfg.n_banks),
      oq_(cfg.n_ports),
      in_links_(cfg.n_ports),
      out_links_(cfg.n_ports),
      in_(cfg.n_ports),
      out_(cfg.n_ports) {}

void PrizmaSwitch::eval(Cycle t) {
  ++stats_.cycles;
  serve_outputs(t);
  accept_arrivals(t);
}

void PrizmaSwitch::serve_outputs(Cycle t) {
  // Every output has its own selector-crossbar column: all outputs stream
  // concurrently, each from a different bank (no shared-port contention).
  for (unsigned o = 0; o < cfg_.n_ports; ++o) {
    OutPort& p = out_[o];
    if (!p.streaming && !oq_[o].empty()) {
      const QueuedCell c = oq_[o].front();
      oq_[o].pop_front();
      p.streaming = true;
      p.bank = c.bank;
      p.idx = 0;
      p.a0 = c.a0;
      ++stats_.read_grants;
      ++stats_.read_initiations;
      const bool cut = t < c.a0 + static_cast<Cycle>(L_) - 1;
      if (cut) ++stats_.cut_through_cells;
      events_.read_grant(o, c.input, t, c.a0 + 1, c.a0, cut);
    }
    if (p.streaming) {
      // Word idx was written to the bank at the end of cycle a0 + idx; we
      // read it at t + ... here directly: t >= a0 + idx + 1 holds because
      // the stream started at t >= a0 + 1 and advances one word per cycle.
      PMSB_CHECK(t > p.a0 + static_cast<Cycle>(p.idx), "PRIZMA read overtook its write");
      out_links_[o].drive_next(Flit{true, p.idx == 0, banks_[p.bank][p.idx]});
      ++p.idx;
      if (p.idx == L_) {
        p.streaming = false;
        free_banks_.release(p.bank);
      }
    }
  }
}

void PrizmaSwitch::accept_arrivals(Cycle t) {
  for (unsigned i = 0; i < cfg_.n_ports; ++i) {
    const Flit& f = in_links_[i].now();
    InPort& p = in_[i];
    if (!p.receiving) {
      if (!f.valid) continue;
      PMSB_CHECK(f.sop, "cell body word arrived while the input expected a head");
      p.receiving = true;
      p.phase = 0;
      p.dest = decode_dest(f.data, cfg_.cell_format());
      PMSB_CHECK(p.dest < cfg_.n_ports, "destination out of range");
      p.a0 = t;
      ++stats_.heads_seen;
      events_.head(i, t, p.dest);
      p.discarding = !free_banks_.can_alloc(1);
      if (p.discarding) {
        ++stats_.dropped_no_addr;
        events_.drop(i, t, DropReason::kNoAddress);
      } else {
        p.bank = free_banks_.alloc(1)[0];
        ++stats_.accepted;
        ++stats_.write_initiations;
        events_.accept(i, t, t + 1);
        oq_staged_.push_back(QueuedCell{p.bank, i, p.dest, t});
      }
    } else {
      PMSB_CHECK(f.valid && !f.sop, "gap or unexpected head inside a cell");
    }
    if (!p.discarding) banks_[p.bank][p.phase] = f.data;
    ++p.phase;
    if (p.phase == L_) p.receiving = false;
  }
}

void PrizmaSwitch::commit(Cycle) {
  free_banks_.tick();
  for (auto& c : oq_staged_) oq_[c.dest].push_back(c);
  oq_staged_.clear();
  for (auto& l : in_links_) l.tick();
  for (auto& l : out_links_) l.tick();
}

bool PrizmaSwitch::drained() const {
  if (free_banks_.in_use() != 0 || !oq_staged_.empty()) return false;
  for (const auto& q : oq_) {
    if (!q.empty()) return false;
  }
  for (const auto& p : in_) {
    if (p.receiving) return false;
  }
  for (const auto& p : out_) {
    if (p.streaming) return false;
  }
  return true;
}

}  // namespace pmsb
