// Non-FIFO input buffering: virtual output queues with Parallel Iterative
// Matching [AOST93] (figure 1, middle-left architecture with an advanced
// scheduler). Each input keeps one logical queue per output; a randomized
// iterative matcher computes a conflict-free input/output matching each
// slot. This is the "quite better performing than input queueing, but a
// more complicated scheduler" design the paper compares shared buffering
// against (sections 2.1, 2.3, 5.1) -- and the one whose latency [AOST93,
// fig. 3] showed to be about 2x that of output queueing at loads 0.6-0.9.

#pragma once

#include "arch/slot_sim.hpp"

namespace pmsb {

class VoqPim : public SlotModel {
 public:
  /// capacity = cells per VOQ (0 = unbounded); iterations = PIM rounds per
  /// slot (AOST93 uses log2(n); 4 converges well for n <= 16);
  /// per_input_capacity = total cells across one input's VOQs (0 =
  /// unbounded) -- the physically shared per-input buffer of figure 1.
  VoqPim(unsigned n, std::size_t capacity, unsigned iterations, Rng rng,
         std::size_t per_input_capacity = 0);

  void do_step(Cycle slot, const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) override;
  std::uint64_t resident() const override;
  const char* kind() const override { return "VOQ + PIM"; }

  /// Matching quality stat: matched pairs per slot on average.
  double mean_match_size() const {
    return slots_ == 0 ? 0.0 : static_cast<double>(matched_total_) / static_cast<double>(slots_);
  }

 private:
  std::deque<SlotCell>& voq(unsigned i, unsigned o) {
    return voqs_[static_cast<std::size_t>(i) * n_ + o];
  }

  std::size_t capacity_;
  std::size_t per_input_capacity_;
  unsigned iterations_;
  Rng rng_;
  std::vector<std::deque<SlotCell>> voqs_;  ///< [i * n + o]
  std::vector<std::size_t> input_occupancy_;

  // Scratch for the matcher.
  std::vector<int> match_out_;   ///< Per input: matched output or -1.
  std::vector<bool> out_taken_;
  std::vector<std::vector<unsigned>> grants_;  ///< Per input: granting outputs.

  std::uint64_t matched_total_ = 0;
  std::uint64_t slots_ = 0;
};

}  // namespace pmsb
