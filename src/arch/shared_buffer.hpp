// Shared (centralized) buffering (figure 2, right): one memory pool for the
// whole switch, logically organized as per-output queues. Same optimal link
// utilization as output queueing, but statistically multiplexed storage --
// the best buffer-memory utilization of all organizations (section 2.2).
// This is the behavioural (untimed) counterpart of the cycle-accurate
// PipelinedSwitch.
//
// How one output's share of the pool is bounded is a pluggable
// AdmissionPolicy (admission.hpp); the default StaticCapPolicy reproduces
// the seed model's fixed out_queue_limit bit-for-bit.

#pragma once

#include <memory>

#include "arch/admission.hpp"
#include "arch/slot_sim.hpp"

namespace pmsb {

class SharedBufferModel : public SlotModel {
 public:
  /// Why cells were dropped. `pool_full` is the shared memory itself
  /// overflowing; `output_cap` / `policy_reject` are the admission policy
  /// protecting the pool from one output (split by the policy's
  /// reject_kind, so the static cap keeps its historical attribution).
  struct DropSplit {
    std::uint64_t pool_full = 0;
    std::uint64_t output_cap = 0;
    std::uint64_t policy_reject = 0;
    std::uint64_t total() const { return pool_full + output_cap + policy_reject; }
  };

  /// capacity = total cells in the shared pool; 0 = unbounded.
  /// out_queue_limit caps one output's share of the pool (0 = no cap):
  /// the standard defence against buffer hogging by a saturated output
  /// (used by real shared-buffer switches, cf. [DeEI95], [Koza91]).
  SharedBufferModel(unsigned n, std::size_t capacity, std::size_t out_queue_limit = 0);

  /// Shared pool guarded by an explicit admission policy.
  SharedBufferModel(unsigned n, std::size_t capacity, std::unique_ptr<AdmissionPolicy> policy);

  std::uint64_t resident() const override { return resident_; }
  const char* kind() const override { return "shared buffer"; }

  std::uint64_t peak_occupancy() const { return peak_; }

  std::size_t capacity() const { return capacity_; }
  std::size_t queue_len(unsigned output) const { return queues_[output].size(); }
  std::size_t free_pool() const {
    return capacity_ > resident_ ? capacity_ - static_cast<std::size_t>(resident_) : 0;
  }

  const AdmissionPolicy& policy() const { return *policy_; }
  const DropSplit& drop_split() const { return drop_split_; }
  const std::vector<std::uint64_t>& drops_by_output() const { return drops_by_output_; }

 protected:
  void do_step(Cycle slot,
               const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) override;

 private:
  std::size_t capacity_;
  std::unique_ptr<AdmissionPolicy> policy_;
  std::vector<std::deque<SlotCell>> queues_;  ///< Logical per-output queues.
  std::uint64_t resident_ = 0;
  std::uint64_t peak_ = 0;
  DropSplit drop_split_;
  std::vector<std::uint64_t> drops_by_output_;
};

}  // namespace pmsb
