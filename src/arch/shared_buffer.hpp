// Shared (centralized) buffering (figure 2, right): one memory pool for the
// whole switch, logically organized as per-output queues. Same optimal link
// utilization as output queueing, but statistically multiplexed storage --
// the best buffer-memory utilization of all organizations (section 2.2).
// This is the behavioural (untimed) counterpart of the cycle-accurate
// PipelinedSwitch.

#pragma once

#include "arch/slot_sim.hpp"

namespace pmsb {

class SharedBufferModel : public SlotModel {
 public:
  /// capacity = total cells in the shared pool; 0 = unbounded.
  /// out_queue_limit caps one output's share of the pool (0 = no cap):
  /// the standard defence against buffer hogging by a saturated output
  /// (used by real shared-buffer switches, cf. [DeEI95], [Koza91]).
  SharedBufferModel(unsigned n, std::size_t capacity, std::size_t out_queue_limit = 0);

  void step(Cycle slot, const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) override;
  std::uint64_t resident() const override { return resident_; }
  const char* kind() const override { return "shared buffer"; }

  std::uint64_t peak_occupancy() const { return peak_; }

 private:
  std::size_t capacity_;
  std::size_t out_queue_limit_;
  std::vector<std::deque<SlotCell>> queues_;  ///< Logical per-output queues.
  std::uint64_t resident_ = 0;
  std::uint64_t peak_ = 0;
};

}  // namespace pmsb
