#include "arch/analytic.hpp"

namespace pmsb::analytic {

double knockout_loss(unsigned n, unsigned l, double rho) {
  // Arrivals per output per slot: K ~ Binomial(n, rho/n).
  const double p = rho / n;
  double pk = 1.0;  // P(K = k), iteratively: start at k = 0.
  for (unsigned j = 0; j < n; ++j) pk *= (1.0 - p);
  double expected_excess = 0.0;
  double prob = pk;
  for (unsigned k = 0; k <= n; ++k) {
    if (k > l) expected_excess += (k - l) * prob;
    // P(K = k+1) = P(K = k) * (n-k)/(k+1) * p/(1-p).
    if (k < n) prob *= (static_cast<double>(n - k) / (k + 1)) * (p / (1.0 - p));
  }
  return rho == 0.0 ? 0.0 : expected_excess / rho;
}

}  // namespace pmsb::analytic
