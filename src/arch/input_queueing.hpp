// FIFO input queueing (figure 1, left): one FIFO per input, head-of-line
// packets contend for outputs, random winner per output [KaHM87]. Suffers
// head-of-line blocking; saturates near 2 - sqrt(2) ~ 0.586 of link capacity
// for large n under uniform traffic.

#pragma once

#include "arch/slot_sim.hpp"

namespace pmsb {

class InputQueueingFifo : public SlotModel {
 public:
  /// capacity = cells per input FIFO; 0 = unbounded.
  InputQueueingFifo(unsigned n, std::size_t capacity, Rng rng);

  void do_step(Cycle slot, const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) override;
  std::uint64_t resident() const override;
  const char* kind() const override { return "input-queueing (FIFO)"; }

 private:
  std::size_t capacity_;
  Rng rng_;
  std::vector<std::deque<SlotCell>> queues_;
  std::vector<unsigned> contenders_;  // scratch
  std::vector<int> hol_snapshot_;     // scratch: HOL dest per input, -1 if idle
};

}  // namespace pmsb
