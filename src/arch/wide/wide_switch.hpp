// Cycle-accurate wide-memory shared-buffer switch: the figure 3 baseline
// (the organization of the authors' earlier design [KaSC91]).
//
// One RAM of width L*w bits (a whole cell per access), one access per cycle.
// Differences from the pipelined memory, all of which this model exhibits:
//
//  * Input *double buffering* is required: a cell can be written to memory
//    only after it has fully assembled in the fill row; it then moves to a
//    staging row to wait for a free memory cycle while the fill row receives
//    the next cell. If the staging row is still occupied when the next cell
//    completes, the input overruns and the cell is lost.
//  * Cut-through needs extra datapath (tristate drivers, bypass buses, and
//    an output crossbar) and -- as the paper notes -- cannot be initiated in
//    the window between the fill row and the memory write: here it can only
//    be set up at head arrival, when the output is already idle. A cell that
//    misses that single opportunity is stored and forwarded in full.
//  * Output double buffering (a [KaSC91] feature): the next cell can be read
//    from memory while the current one shifts out, keeping output links
//    saturated.
//
// The peripheral-register and crossbar inventory implied by this datapath is
// what the section 5.2 area model charges the wide organization for.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/arbiter.hpp"
#include "core/config.hpp"
#include "core/free_list.hpp"
#include "core/switch.hpp"  // SwitchEvents, DropReason, SwitchStats
#include "sim/engine.hpp"
#include "sim/wire.hpp"

namespace pmsb {

class WideMemorySwitch : public Component {
 public:
  /// Uses the same SwitchConfig geometry; cell_words must equal stages()
  /// (one cell per wide word -- the [KaSC91] arrangement).
  explicit WideMemorySwitch(const SwitchConfig& cfg);

  const SwitchConfig& config() const { return cfg_; }

  WireLink& in_link(unsigned i) { return in_links_.at(i); }
  WireLink& out_link(unsigned o) { return out_links_.at(o); }

  /// Multi-subscriber event fan-out (see core/event_hub.hpp).
  EventHub& events() { return events_; }
  const EventHub& events() const { return events_; }

  void eval(Cycle t) override;
  void commit(Cycle t) override;
  std::string name() const override { return "wide_memory_switch"; }

  const SwitchStats& stats() const { return stats_; }
  bool drained() const;

  /// Cells that used the bypass (cut-through) crossbar.
  std::uint64_t bypass_cells() const { return stats_.cut_through_cells; }

 private:
  struct InPort {
    // Fill row (assembling from the link).
    bool receiving = false;
    unsigned phase = 0;
    unsigned dest = 0;
    Cycle a0 = 0;
    std::vector<Word> fill;
    bool bypassing = false;  ///< This arriving cell cuts through directly.

    // Staging row (assembled, waiting for a memory write slot).
    bool staged_valid = false;
    unsigned staged_dest = 0;
    Cycle staged_a0 = 0;
    std::vector<Word> staged;
  };
  struct OutPort {
    // Shift row currently driving the link.
    bool shifting = false;
    unsigned shift_idx = 0;
    std::vector<Word> shift;
    Cycle inject_a0 = 0;
    // Second row: the next cell, already read from memory.
    bool next_valid = false;
    std::vector<Word> next;
    Cycle next_a0 = 0;
    // Bypass (cut-through) stream feeding this output directly.
    int bypass_from = -1;  ///< Input index, or -1.
    Flit bypass_reg;       ///< Crossbar register stage of the bypass path.
  };
  struct QueuedCell {
    std::uint32_t addr;
    unsigned input;
    unsigned dest;
    Cycle a0;
    Cycle stored_at;
  };

  void arbitrate_memory(Cycle t);
  void run_outputs(Cycle t);
  void accept_arrivals(Cycle t);

  SwitchConfig cfg_;
  unsigned L_;  ///< Words per cell = wide-word width in link words.

  std::vector<std::vector<Word>> wide_ram_;  ///< [addr][0..L-1]
  bool ram_port_used_ = false;               ///< One access per cycle.
  FreeList free_;
  std::vector<std::deque<QueuedCell>> oq_;
  std::vector<QueuedCell> oq_staged_;
  RoundRobin rr_read_;
  RoundRobin rr_write_;

  std::vector<WireLink> in_links_;
  std::vector<WireLink> out_links_;
  std::vector<InPort> in_;
  std::vector<OutPort> out_;

  EventHub events_;
  SwitchStats stats_;
};

}  // namespace pmsb
