#include "arch/wide/wide_switch.hpp"

#include <stdexcept>

namespace pmsb {

WideMemorySwitch::WideMemorySwitch(const SwitchConfig& cfg)
    : cfg_((cfg.validate(), cfg)),
      L_(cfg.cell_words),
      wide_ram_(cfg.capacity_cells(), std::vector<Word>(cfg.cell_words, 0)),
      free_(cfg.capacity_cells()),
      oq_(cfg.n_ports),
      rr_read_(cfg.n_ports),
      rr_write_(cfg.n_ports),
      in_links_(cfg.n_ports),
      out_links_(cfg.n_ports),
      in_(cfg.n_ports),
      out_(cfg.n_ports) {
  if (cfg.segments_per_cell() != 1)
    throw std::invalid_argument(
        "wide-memory switch stores one cell per wide word: cell_words must "
        "equal 2*n_ports");
  for (auto& p : in_) {
    p.fill.resize(L_);
    p.staged.resize(L_);
  }
  for (auto& p : out_) {
    p.shift.resize(L_);
    p.next.resize(L_);
  }
}

void WideMemorySwitch::eval(Cycle t) {
  ++stats_.cycles;
  ram_port_used_ = false;
  arbitrate_memory(t);
  run_outputs(t);
  accept_arrivals(t);
  if (!ram_port_used_) ++stats_.idle_cycles;
}

void WideMemorySwitch::arbitrate_memory(Cycle t) {
  // One wide-word access per cycle; reads (outputs) have priority, exactly
  // as in the pipelined organization, for a like-for-like comparison.
  const int o = rr_read_.pick([&](unsigned out) {
    return !out_[out].next_valid && !oq_[out].empty();
  });
  if (o >= 0) {
    OutPort& p = out_[o];
    const QueuedCell c = oq_[o].front();
    oq_[o].pop_front();
    p.next = wide_ram_[c.addr];
    p.next_valid = true;
    p.next_a0 = c.a0;
    free_.release(c.addr);
    ram_port_used_ = true;
    ++stats_.read_initiations;
    ++stats_.read_grants;
    events_.read_grant(static_cast<unsigned>(o), c.input, t, c.stored_at, c.a0, false);
    return;
  }
  const int i = rr_write_.pick(
      [&](unsigned in) { return in_[in].staged_valid && free_.can_alloc(1); });
  if (i >= 0) {
    InPort& p = in_[i];
    const std::uint32_t addr = free_.alloc(1)[0];
    wide_ram_[addr] = p.staged;
    oq_staged_.push_back(
        QueuedCell{addr, static_cast<unsigned>(i), p.staged_dest, p.staged_a0, t});
    // The queue entry becomes readable next cycle (committed), matching a
    // registered "ready to depart" list.
    p.staged_valid = false;
    ram_port_used_ = true;
    ++stats_.write_initiations;
  }
}

void WideMemorySwitch::run_outputs(Cycle) {
  for (unsigned o = 0; o < cfg_.n_ports; ++o) {
    OutPort& p = out_[o];
    if (p.bypass_reg.valid) {
      // Word captured from the bypass bus last cycle drives the link now.
      out_links_[o].drive_next(p.bypass_reg);
      p.bypass_reg = Flit{};
      continue;  // The link is spoken for this cycle.
    }
    if (p.bypass_from >= 0) continue;  // Link owned by the bypass stream.
    if (!p.shifting && p.next_valid) {
      p.shift.swap(p.next);
      p.inject_a0 = p.next_a0;
      p.next_valid = false;
      p.shifting = true;
      p.shift_idx = 0;
    }
    if (p.shifting) {
      out_links_[o].drive_next(Flit{true, p.shift_idx == 0, p.shift[p.shift_idx]});
      ++p.shift_idx;
      if (p.shift_idx == L_) p.shifting = false;
    }
  }
}

void WideMemorySwitch::accept_arrivals(Cycle t) {
  for (unsigned i = 0; i < cfg_.n_ports; ++i) {
    const Flit& f = in_links_[i].now();
    InPort& p = in_[i];
    if (!p.receiving) {
      if (!f.valid) continue;
      PMSB_CHECK(f.sop, "cell body word arrived while the input expected a head");
      p.receiving = true;
      p.phase = 0;
      p.dest = decode_dest(f.data, cfg_.cell_format());
      PMSB_CHECK(p.dest < cfg_.n_ports, "destination out of range");
      p.a0 = t;
      ++stats_.heads_seen;
      events_.head(i, t, p.dest);

      // Cut-through decision -- only possible here, at head arrival, via the
      // dedicated bypass buses and output crossbar of figure 3.
      OutPort& op = out_[p.dest];
      const bool own_staged_same_dest = p.staged_valid && p.staged_dest == p.dest;
      bool queued_this_cycle = false;
      for (const auto& c : oq_staged_) queued_this_cycle |= (c.dest == p.dest);
      p.bypassing = cfg_.cut_through && op.bypass_from < 0 && !op.bypass_reg.valid &&
                    !op.shifting && !op.next_valid && oq_[p.dest].empty() &&
                    !queued_this_cycle && !own_staged_same_dest;
      if (p.bypassing) {
        op.bypass_from = static_cast<int>(i);
        ++stats_.accepted;
        ++stats_.cut_through_cells;
        ++stats_.read_grants;
        events_.accept(i, p.a0, t + 1);
        events_.read_grant(p.dest, i, t + 1, t + 1, p.a0, true);
      }
    } else {
      PMSB_CHECK(f.valid && !f.sop, "gap or unexpected head inside a cell");
    }

    p.fill[p.phase] = f.data;
    if (p.bypassing) {
      // One register stage through the bypass bus + crossbar: word on the
      // input wire at t is captured here and driven during t+1, appearing on
      // the output wire at t+2 -- same minimum head latency as the
      // pipelined memory's snoop path.
      PMSB_CHECK(!out_[p.dest].bypass_reg.valid, "bypass crossbar register overwritten");
      out_[p.dest].bypass_reg = Flit{true, p.phase == 0, f.data};
    }
    ++p.phase;
    if (p.phase != L_) continue;

    // Cell complete.
    p.receiving = false;
    if (p.bypassing) {
      p.bypassing = false;
      out_[p.dest].bypass_from = -1;
      continue;
    }
    if (p.staged_valid) {
      // Double-buffer overrun: the staging row never got its memory cycle.
      ++stats_.dropped_no_slot;
      events_.drop(i, p.a0, DropReason::kNoSlot);
      continue;
    }
    p.staged.swap(p.fill);
    p.staged_valid = true;
    p.staged_dest = p.dest;
    p.staged_a0 = p.a0;
    ++stats_.accepted;
    events_.accept(i, p.a0, t + 1);
  }
}

void WideMemorySwitch::commit(Cycle) {
  free_.tick();
  for (auto& c : oq_staged_) oq_[c.dest].push_back(c);
  oq_staged_.clear();
  for (auto& l : in_links_) l.tick();
  for (auto& l : out_links_) l.tick();
}

bool WideMemorySwitch::drained() const {
  if (free_.in_use() != 0 || !oq_staged_.empty()) return false;
  for (const auto& q : oq_) {
    if (!q.empty()) return false;
  }
  for (const auto& p : in_) {
    if (p.receiving || p.staged_valid) return false;
  }
  for (const auto& p : out_) {
    if (p.shifting || p.next_valid || p.bypass_from >= 0) return false;
  }
  return true;
}

}  // namespace pmsb
