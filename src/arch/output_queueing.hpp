// Output queueing (figure 2, left): each output owns a FIFO that can accept
// cells from all inputs simultaneously in one slot (an n-write-port buffer).
// Optimal link utilization; buffer memory is partitioned per output, so it
// needs more total space than a shared buffer for equal loss [HlKa88].

#pragma once

#include "arch/slot_sim.hpp"

namespace pmsb {

class OutputQueueing : public SlotModel {
 public:
  /// capacity = cells per output FIFO; 0 = unbounded.
  OutputQueueing(unsigned n, std::size_t capacity);

  void do_step(Cycle slot, const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) override;
  std::uint64_t resident() const override;
  const char* kind() const override { return "output queueing"; }

 private:
  std::size_t capacity_;
  std::vector<std::deque<SlotCell>> queues_;
};

}  // namespace pmsb
