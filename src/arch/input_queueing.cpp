#include "arch/input_queueing.hpp"

namespace pmsb {

InputQueueingFifo::InputQueueingFifo(unsigned n, std::size_t capacity, Rng rng)
    : SlotModel(n), capacity_(capacity), rng_(rng), queues_(n) {}

void InputQueueingFifo::do_step(Cycle slot,
                             const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) {
  PMSB_CHECK(arrivals.size() == n_, "arrival vector size mismatch");
  for (unsigned i = 0; i < n_; ++i) {
    if (!arrivals[i]) continue;
    on_injected();
    if (capacity_ != 0 && queues_[i].size() >= capacity_) {
      on_dropped();
      continue;
    }
    queues_[i].push_back(SlotCell{slot, i, arrivals[i]->dest});
  }
  // Head-of-line contention: every output picks uniformly at random among
  // the inputs whose HOL cell wants it [KaHM87]. The HOL snapshot is taken
  // before any service: an input port transmits at most one cell per slot,
  // even if its next cell targets an output served later in the loop.
  hol_snapshot_.assign(n_, -1);
  for (unsigned i = 0; i < n_; ++i) {
    if (!queues_[i].empty()) hol_snapshot_[i] = static_cast<int>(queues_[i].front().dest);
  }
  for (unsigned o = 0; o < n_; ++o) {
    contenders_.clear();
    for (unsigned i = 0; i < n_; ++i) {
      if (hol_snapshot_[i] == static_cast<int>(o)) contenders_.push_back(i);
    }
    if (contenders_.empty()) continue;
    const unsigned winner =
        contenders_[static_cast<std::size_t>(rng_.next_below(contenders_.size()))];
    on_delivered(slot, queues_[winner].front());
    queues_[winner].pop_front();
  }
}

std::uint64_t InputQueueingFifo::resident() const {
  std::uint64_t r = 0;
  for (const auto& q : queues_) r += q.size();
  return r;
}

}  // namespace pmsb
