// Slot-time behavioural switch models for the section 2 architecture
// comparison (figures 1 and 2): input queueing, non-FIFO input buffering
// (VOQ + PIM), output queueing, shared buffering, crosspoint queueing,
// block-crosspoint buffering, and input smoothing [HlKa88].
//
// One slot = one cell time. Convention (uniform across all models so the
// comparisons are apples-to-apples): within a slot, arrivals are enqueued
// first (drops happen here, at full buffers), then each output transmits at
// most one cell. A cell arriving at an idle, uncontended path therefore has
// latency 0 slots; reported latencies are relative, which is what the
// paper's factor-of-two claims are about.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/util.hpp"
#include "stats/stats.hpp"
#include "traffic/generators.hpp"

namespace pmsb {

/// A queued cell in a behavioural model.
struct SlotCell {
  Cycle injected = 0;
  unsigned input = 0;
  unsigned dest = 0;
};

class SlotModel {
 public:
  explicit SlotModel(unsigned n) : n_(n), latency_(0) {
    PMSB_CHECK(n > 0, "model needs at least one port");
  }
  virtual ~SlotModel() = default;

  unsigned ports() const { return n_; }

  /// Process one slot. arrivals[i] is input i's arriving cell, if any.
  virtual void step(Cycle slot, const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) = 0;

  /// Cells still buffered (for conservation checks).
  virtual std::uint64_t resident() const = 0;

  virtual const char* kind() const = 0;

  const FlowCounts& counts() const { return counts_; }
  LatencyStats& latency() { return latency_; }
  const LatencyStats& latency() const { return latency_; }
  void set_warmup(Cycle until) { latency_.set_warmup(until); }

 protected:
  void on_injected() { ++counts_.injected; }
  void on_dropped() { ++counts_.dropped; }
  void on_delivered(Cycle slot, const SlotCell& c) {
    ++counts_.delivered;
    latency_.record(c.injected, slot);
  }

  unsigned n_;
  FlowCounts counts_;
  LatencyStats latency_;
};

/// Drive `model` with `traffic` for `slots` slots (plus a drain phase for
/// unbounded-buffer latency runs is unnecessary: steady-state measurements
/// ignore residents). Sets the model's warmup horizon to `warmup` slots.
void run_slot_sim(SlotModel& model, SlotTraffic& traffic, Cycle slots, Cycle warmup);

/// Measured normalized output throughput of a finished run.
double measured_throughput(const SlotModel& model, Cycle slots);

}  // namespace pmsb
