// Slot-time behavioural switch models for the section 2 architecture
// comparison (figures 1 and 2): input queueing, non-FIFO input buffering
// (VOQ + PIM), output queueing, shared buffering, crosspoint queueing,
// block-crosspoint buffering, and input smoothing [HlKa88].
//
// One slot = one cell time. Convention (uniform across all models so the
// comparisons are apples-to-apples): within a slot, arrivals are enqueued
// first (drops happen here, at full buffers), then each output transmits at
// most one cell. A cell arriving at an idle, uncontended path therefore has
// latency 0 slots; reported latencies are relative, which is what the
// paper's factor-of-two claims are about.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/util.hpp"
#include "stats/stats.hpp"
#include "traffic/generators.hpp"

namespace pmsb {

/// A queued cell in a behavioural model.
struct SlotCell {
  Cycle injected = 0;
  unsigned input = 0;
  unsigned dest = 0;
};

class SlotModel {
 public:
  explicit SlotModel(unsigned n) : n_(n), latency_(0) {
    PMSB_CHECK(n > 0, "model needs at least one port");
  }
  virtual ~SlotModel() = default;

  unsigned ports() const { return n_; }

  /// Process one slot. arrivals[i] is input i's arriving cell, if any.
  /// Non-virtual: snapshots the flow counters the first time `slot` crosses
  /// the warmup horizon so measured_counts() can window them, then delegates
  /// to the model-specific do_step().
  void step(Cycle slot, const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) {
    if (!warmup_latched_ && slot >= warmup_until_) {
      counts_at_warmup_ = counts_;
      warmup_latched_ = true;
    }
    do_step(slot, arrivals);
  }

  /// Cells still buffered (for conservation checks).
  virtual std::uint64_t resident() const = 0;

  virtual const char* kind() const = 0;

  const FlowCounts& counts() const { return counts_; }

  /// Flow counters windowed to the post-warmup phase (the same window
  /// LatencyStats measures over). Zero if the run never reached warmup.
  FlowCounts measured_counts() const {
    if (!warmup_latched_) return FlowCounts{};
    FlowCounts w;
    w.injected = counts_.injected - counts_at_warmup_.injected;
    w.delivered = counts_.delivered - counts_at_warmup_.delivered;
    w.dropped = counts_.dropped - counts_at_warmup_.dropped;
    return w;
  }

  Cycle warmup_until() const { return warmup_until_; }

  LatencyStats& latency() { return latency_; }
  const LatencyStats& latency() const { return latency_; }
  void set_warmup(Cycle until) {
    latency_.set_warmup(until);
    warmup_until_ = until;
    warmup_latched_ = false;
  }

 protected:
  /// Model-specific slot processing; called via the public step() wrapper.
  virtual void do_step(Cycle slot,
                       const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) = 0;

  void on_injected() { ++counts_.injected; }
  void on_dropped() { ++counts_.dropped; }
  void on_delivered(Cycle slot, const SlotCell& c) {
    ++counts_.delivered;
    latency_.record(c.injected, slot);
  }

  unsigned n_;
  FlowCounts counts_;
  LatencyStats latency_;

 private:
  FlowCounts counts_at_warmup_;
  Cycle warmup_until_ = 0;
  bool warmup_latched_ = false;
};

/// Drive `model` with `traffic` for `slots` slots (plus a drain phase for
/// unbounded-buffer latency runs is unnecessary: steady-state measurements
/// ignore residents). Sets the model's warmup horizon to `warmup` slots.
/// Under PMSB_CHECK=1 a SharedBufferModel is audited every slot for
/// conservation, occupancy, and drop-attribution invariants.
void run_slot_sim(SlotModel& model, SlotTraffic& traffic, Cycle slots, Cycle warmup);

/// Measured normalized output throughput of a finished run: post-warmup
/// deliveries over post-warmup slots, matching the window LatencyStats
/// filters to (whole-run before the warmup-window fix).
double measured_throughput(const SlotModel& model, Cycle slots);

}  // namespace pmsb
