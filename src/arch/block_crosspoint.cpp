#include "arch/block_crosspoint.hpp"

namespace pmsb {

BlockCrosspoint::BlockCrosspoint(unsigned n, unsigned groups, std::size_t capacity)
    : SlotModel(n), g_(groups), capacity_(capacity),
      blocks_(static_cast<std::size_t>(groups) * groups),
      out_rr_(n, RoundRobin(groups)) {
  PMSB_CHECK(groups >= 1 && n % groups == 0, "groups must divide the port count");
  for (auto& b : blocks_) b.per_output.resize(n);
}

void BlockCrosspoint::do_step(Cycle slot,
                           const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) {
  PMSB_CHECK(arrivals.size() == n_, "arrival vector size mismatch");
  for (unsigned i = 0; i < n_; ++i) {
    if (!arrivals[i]) continue;
    on_injected();
    const unsigned o = arrivals[i]->dest;
    Block& b = block(group_of(i), group_of(o));
    if (capacity_ != 0 && b.resident >= capacity_) {
      on_dropped();
      continue;
    }
    b.per_output[o].push_back(SlotCell{slot, i, o});
    ++b.resident;
  }
  for (unsigned o = 0; o < n_; ++o) {
    const unsigned go = group_of(o);
    const int gi = out_rr_[o].pick(
        [&](unsigned src_group) { return !block(src_group, go).per_output[o].empty(); });
    if (gi < 0) continue;
    Block& b = block(static_cast<unsigned>(gi), go);
    on_delivered(slot, b.per_output[o].front());
    b.per_output[o].pop_front();
    --b.resident;
  }
}

std::uint64_t BlockCrosspoint::resident() const {
  std::uint64_t r = 0;
  for (const auto& b : blocks_) r += b.resident;
  return r;
}

}  // namespace pmsb
