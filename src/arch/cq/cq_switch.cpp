#include "arch/cq/cq_switch.hpp"

#include <stdexcept>

#include "common/cell.hpp"

namespace pmsb {

CrosspointQueuedSwitch::CrosspointQueuedSwitch(const SwitchConfig& cfg, CqScheduler sched)
    : cfg_((cfg.validate(), cfg)),
      sched_(sched),
      L_(cfg.cell_words),
      xp_cap_(cfg.capacity_cells() /
              (static_cast<std::size_t>(cfg.n_ports) * cfg.n_ports)),
      xq_(static_cast<std::size_t>(cfg.n_ports) * cfg.n_ports),
      in_links_(cfg.n_ports),
      out_links_(cfg.n_ports),
      in_(cfg.n_ports),
      out_(cfg.n_ports) {
  if (xp_cap_ == 0)
    throw std::invalid_argument(
        "crosspoint-queued switch needs capacity_cells() >= n_ports^2: the "
        "pool is statically split into one buffer per crosspoint");
  rr_.reserve(cfg.n_ports);
  for (unsigned o = 0; o < cfg.n_ports; ++o) rr_.emplace_back(cfg.n_ports);
  for (auto& p : in_) p.fill.resize(L_);
  for (auto& p : out_) p.shift.resize(L_);
}

void CrosspointQueuedSwitch::eval(Cycle t) {
  ++stats_.cycles;
  run_outputs(t);
  accept_arrivals(t);
}

int CrosspointQueuedSwitch::pick_input(unsigned output) {
  if (sched_ == CqScheduler::kRoundRobin) {
    return rr_[output].pick([&](unsigned i) { return !xq(i, output).empty(); });
  }
  // Longest queue first; lowest input index breaks ties, deterministically.
  int best = -1;
  std::size_t best_len = 0;
  for (unsigned i = 0; i < cfg_.n_ports; ++i) {
    const std::size_t len = xq(i, output).size();
    if (len > best_len) {
      best = static_cast<int>(i);
      best_len = len;
    }
  }
  return best;
}

void CrosspointQueuedSwitch::run_outputs(Cycle t) {
  for (unsigned o = 0; o < cfg_.n_ports; ++o) {
    OutPort& p = out_[o];
    if (!p.shifting) {
      const int i = pick_input(o);
      if (i >= 0) {
        auto& q = xq(static_cast<unsigned>(i), o);
        QueuedCell& c = q.front();
        p.shift.swap(c.words);
        p.shifting = true;
        p.shift_idx = 0;
        ++stats_.read_initiations;
        ++stats_.read_grants;
        events_.read_grant(o, c.input, t, c.stored_at, c.a0, false);
        q.pop_front();
      }
    }
    if (p.shifting) {
      out_links_[o].drive_next(Flit{true, p.shift_idx == 0, p.shift[p.shift_idx]});
      ++p.shift_idx;
      if (p.shift_idx == L_) p.shifting = false;
    }
  }
}

void CrosspointQueuedSwitch::accept_arrivals(Cycle t) {
  for (unsigned i = 0; i < cfg_.n_ports; ++i) {
    const Flit& f = in_links_[i].now();
    InPort& p = in_[i];
    if (!p.receiving) {
      if (!f.valid) continue;
      PMSB_CHECK(f.sop, "cell body word arrived while the input expected a head");
      p.receiving = true;
      p.phase = 0;
      p.dest = decode_dest(f.data, cfg_.cell_format());
      PMSB_CHECK(p.dest < cfg_.n_ports, "destination out of range");
      p.a0 = t;
      ++stats_.heads_seen;
      events_.head(i, t, p.dest);
    } else {
      PMSB_CHECK(f.valid && !f.sop, "gap or unexpected head inside a cell");
    }

    p.fill[p.phase] = f.data;
    ++p.phase;
    if (p.phase != L_) continue;

    // Cell complete: it either fits in its crosspoint or is lost. Only this
    // input writes crosspoint (i, dest), so one occupancy check suffices.
    p.receiving = false;
    if (xq(i, p.dest).size() >= xp_cap_) {
      ++stats_.dropped_no_addr;
      events_.drop(i, p.a0, DropReason::kNoAddress);
      continue;
    }
    staged_.push_back(QueuedCell{p.fill, i, p.a0, t});
    staged_dest_.push_back(p.dest);
    ++stats_.accepted;
    ++stats_.write_initiations;
    events_.accept(i, p.a0, t + 1);
  }
}

void CrosspointQueuedSwitch::commit(Cycle) {
  for (std::size_t k = 0; k < staged_.size(); ++k) {
    xq(staged_[k].input, staged_dest_[k]).push_back(std::move(staged_[k]));
  }
  staged_.clear();
  staged_dest_.clear();
  for (auto& l : in_links_) l.tick();
  for (auto& l : out_links_) l.tick();
}

bool CrosspointQueuedSwitch::drained() const {
  if (!staged_.empty()) return false;
  for (const auto& q : xq_) {
    if (!q.empty()) return false;
  }
  for (const auto& p : in_) {
    if (p.receiving) return false;
  }
  for (const auto& p : out_) {
    if (p.shifting) return false;
  }
  return true;
}

}  // namespace pmsb
