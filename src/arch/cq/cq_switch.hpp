// Cycle-accurate crosspoint-queued (CQ) switch: the single-chip architecture
// of Cao & Panwar (PAPERS.md), the opposite pole from shared buffering in
// the section 2.2 memory-utilization trade-off. Each (input, output) pair
// owns a small dedicated buffer at its crosspoint, so there is no shared
// memory port to arbitrate at all: every input can write its crosspoint and
// every output can read one crosspoint in the same cell time. The price is
// static partitioning -- the pool is split n^2 ways, so a hot crosspoint
// overflows while the rest of the die sits empty. bench_buffer_sharing
// quantifies exactly that against the shared-buffer policies.
//
// Store-and-forward only (a crosspoint SRAM has no bypass bus); each output
// picks among its n crosspoints with round-robin or longest-queue-first.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/arbiter.hpp"
#include "core/config.hpp"
#include "core/event_hub.hpp"
#include "core/switch.hpp"  // SwitchEvents, DropReason, SwitchStats
#include "sim/engine.hpp"
#include "sim/wire.hpp"

namespace pmsb {

/// How an output chooses among its column of crosspoint buffers.
enum class CqScheduler {
  kRoundRobin,    ///< Rotating priority over inputs (work-conserving, fair).
  kLongestQueue,  ///< Longest queue first, lowest input index on ties.
};

/// Single-argument config for harnesses (Testbench constructs the DUT from
/// one config object): the shared geometry plus the output scheduler.
struct CqConfig {
  SwitchConfig base;
  CqScheduler sched = CqScheduler::kRoundRobin;
};

class CrosspointQueuedSwitch : public Component {
 public:
  /// Uses the shared SwitchConfig geometry; the total buffer budget
  /// capacity_cells() is split evenly into n^2 crosspoints (throws if that
  /// leaves a crosspoint with zero cells). cut_through is ignored.
  explicit CrosspointQueuedSwitch(const SwitchConfig& cfg,
                                  CqScheduler sched = CqScheduler::kRoundRobin);
  explicit CrosspointQueuedSwitch(const CqConfig& cfg)
      : CrosspointQueuedSwitch(cfg.base, cfg.sched) {}

  const SwitchConfig& config() const { return cfg_; }
  CqScheduler scheduler() const { return sched_; }
  std::size_t crosspoint_capacity() const { return xp_cap_; }

  WireLink& in_link(unsigned i) { return in_links_.at(i); }
  WireLink& out_link(unsigned o) { return out_links_.at(o); }

  /// Multi-subscriber event fan-out (see core/event_hub.hpp).
  EventHub& events() { return events_; }
  const EventHub& events() const { return events_; }

  void eval(Cycle t) override;
  void commit(Cycle t) override;
  std::string name() const override { return "crosspoint_queued_switch"; }

  const SwitchStats& stats() const { return stats_; }
  bool drained() const;

 private:
  struct InPort {
    bool receiving = false;
    unsigned phase = 0;
    unsigned dest = 0;
    Cycle a0 = 0;
    std::vector<Word> fill;
  };
  struct OutPort {
    bool shifting = false;
    unsigned shift_idx = 0;
    std::vector<Word> shift;
  };
  struct QueuedCell {
    std::vector<Word> words;
    unsigned input;
    Cycle a0;
    Cycle stored_at;
  };

  std::deque<QueuedCell>& xq(unsigned input, unsigned output) {
    return xq_[static_cast<std::size_t>(input) * cfg_.n_ports + output];
  }
  const std::deque<QueuedCell>& xq(unsigned input, unsigned output) const {
    return xq_[static_cast<std::size_t>(input) * cfg_.n_ports + output];
  }

  void run_outputs(Cycle t);
  void accept_arrivals(Cycle t);
  int pick_input(unsigned output);

  SwitchConfig cfg_;
  CqScheduler sched_;
  unsigned L_;          ///< Words per cell.
  std::size_t xp_cap_;  ///< Cells per crosspoint buffer.

  std::vector<std::deque<QueuedCell>> xq_;  ///< [input * n + output]
  std::vector<QueuedCell> staged_;          ///< Completed this cycle; queued in commit().
  std::vector<unsigned> staged_dest_;       ///< Crosspoint column per staged cell.
  std::vector<RoundRobin> rr_;              ///< Per-output rotating priority.

  std::vector<WireLink> in_links_;
  std::vector<WireLink> out_links_;
  std::vector<InPort> in_;
  std::vector<OutPort> out_;

  EventHub events_;
  SwitchStats stats_;
};

}  // namespace pmsb
