#include "arch/shared_buffer.hpp"

namespace pmsb {

SharedBufferModel::SharedBufferModel(unsigned n, std::size_t capacity,
                                     std::size_t out_queue_limit)
    : SharedBufferModel(n, capacity, std::make_unique<StaticCapPolicy>(out_queue_limit)) {}

SharedBufferModel::SharedBufferModel(unsigned n, std::size_t capacity,
                                     std::unique_ptr<AdmissionPolicy> policy)
    : SlotModel(n),
      capacity_(capacity),
      policy_(std::move(policy)),
      queues_(n),
      drops_by_output_(n, 0) {
  PMSB_CHECK(policy_ != nullptr, "shared buffer needs an admission policy");
  policy_->bind(n, capacity);
}

void SharedBufferModel::do_step(Cycle slot,
                                const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) {
  PMSB_CHECK(arrivals.size() == n_, "arrival vector size mismatch");
  policy_->on_slot(slot);
  for (unsigned i = 0; i < n_; ++i) {
    if (!arrivals[i]) continue;
    on_injected();
    const unsigned dest = arrivals[i]->dest;
    PMSB_CHECK(dest < n_, "arrival destination out of range");
    if (capacity_ != 0 && resident_ >= capacity_) {
      on_dropped();
      ++drop_split_.pool_full;
      ++drops_by_output_[dest];
      continue;
    }
    if (!policy_->admit(dest, queues_[dest].size(), static_cast<std::size_t>(resident_))) {
      on_dropped();
      if (policy_->reject_kind() == AdmissionPolicy::RejectKind::kOutputCap) {
        ++drop_split_.output_cap;
      } else {
        ++drop_split_.policy_reject;
      }
      ++drops_by_output_[dest];
      continue;
    }
    queues_[dest].push_back(SlotCell{slot, i, dest});
    ++resident_;
    peak_ = std::max(peak_, resident_);
  }
  for (unsigned o = 0; o < n_; ++o) {
    if (queues_[o].empty()) continue;
    on_delivered(slot, queues_[o].front());
    queues_[o].pop_front();
    --resident_;
    policy_->on_delivered(o, slot);
  }
}

}  // namespace pmsb
