#include "arch/shared_buffer.hpp"

namespace pmsb {

SharedBufferModel::SharedBufferModel(unsigned n, std::size_t capacity,
                                     std::size_t out_queue_limit)
    : SlotModel(n), capacity_(capacity), out_queue_limit_(out_queue_limit), queues_(n) {}

void SharedBufferModel::step(Cycle slot,
                             const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) {
  PMSB_CHECK(arrivals.size() == n_, "arrival vector size mismatch");
  for (unsigned i = 0; i < n_; ++i) {
    if (!arrivals[i]) continue;
    on_injected();
    const unsigned dest = arrivals[i]->dest;
    if ((capacity_ != 0 && resident_ >= capacity_) ||
        (out_queue_limit_ != 0 && queues_[dest].size() >= out_queue_limit_)) {
      on_dropped();
      continue;
    }
    queues_[dest].push_back(SlotCell{slot, i, dest});
    ++resident_;
    peak_ = std::max(peak_, resident_);
  }
  for (unsigned o = 0; o < n_; ++o) {
    if (queues_[o].empty()) continue;
    on_delivered(slot, queues_[o].front());
    queues_[o].pop_front();
    --resident_;
  }
}

}  // namespace pmsb
