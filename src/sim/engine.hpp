// Two-phase clocked simulation kernel.
//
// Cycle-accuracy convention (DESIGN.md section 4):
//   * During cycle t, every component's eval(t) runs. eval() may only read
//     state that was committed at the end of cycle t-1 (register outputs,
//     SRAM contents, link values driven for cycle t) and may stage new state.
//   * After all eval()s, every component's commit(t) runs, making the staged
//     state visible for cycle t+1 ("the clock edge").
//
// Because eval() never observes same-cycle writes, eval order across
// components is irrelevant -- exactly like synchronous hardware with only
// registered inter-component signals. Within a component, helper sub-blocks
// may be combinationally chained as long as the component evaluates them in
// dataflow order itself.
//
// Kernel-loop notes: step()/run()/run_until() are header-inline so the
// per-cycle loop flattens into the caller; components that declare an empty
// clock edge (has_commit() == false) are skipped in the commit sweep; and
// metrics sampling costs one predictable counter decrement per cycle (a
// countdown, not a modulo) with a single null test when no registry is
// attached. run_until() takes its predicate as a template parameter so the
// per-cycle termination check inlines instead of going through
// std::function.

#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/util.hpp"
#include "obs/metrics.hpp"

namespace pmsb {

/// next_wake() value meaning "never wakes on its own" (purely reactive
/// components: switches, sinks, taps).
inline constexpr Cycle kNeverWake = std::numeric_limits<Cycle>::max();

/// A clocked hardware block (or testbench element).
class Component {
 public:
  virtual ~Component() = default;

  /// Combinational phase of cycle t: read committed state, stage updates.
  virtual void eval(Cycle t) = 0;

  /// Clock edge at the end of cycle t: commit staged updates.
  virtual void commit(Cycle t) = 0;

  /// Override to return false when commit() is a no-op; the engine then
  /// leaves this component out of the commit sweep entirely.
  virtual bool has_commit() const { return true; }

  // --- Quiescence (semantics-preserving idle-cycle skipping) --------------
  //
  // A component is *quiescent at cycle t* when executing eval(t)/commit(t)
  // in its current state would change nothing observable: no staged state,
  // no driven wires, no events, no RNG draws -- at most internal per-cycle
  // counters, which skip() must compensate. When EVERY component of an
  // engine is quiescent, the engine may advance the clock directly to the
  // earliest next_wake() instead of stepping, with bit-identical results.
  // The default (never quiescent) is always safe.

  /// True when eval(t)+commit(t) would be a no-op (see above). Must stay
  /// true for every cycle in [t, next_wake(t)) if no input changes -- and
  /// none can change while all components are quiescent.
  virtual bool is_quiescent(Cycle t) const {
    (void)t;
    return false;
  }

  /// Earliest cycle at which this component must execute again (its next
  /// scheduled arrival / slot boundary). Only consulted while quiescent.
  virtual Cycle next_wake(Cycle t) const {
    (void)t;
    return kNeverWake;
  }

  /// The clock jumped from t to t + n without stepping (all n cycles were
  /// quiescent). Compensate per-cycle counters (e.g. stats.cycles) and
  /// countdowns here so a skipped run is indistinguishable from a stepped
  /// one.
  virtual void skip(Cycle t, Cycle n) {
    (void)t;
    (void)n;
  }

  /// For diagnostics.
  virtual std::string name() const { return "component"; }
};

/// Post-commit inspection hook (the invariant checkers of src/check/): the
/// engine calls on_cycle_end(t) after every component's commit(t), when all
/// state for cycle t+1 is visible -- the only point in the cycle where
/// cross-component conservation invariants are meaningful. Observers never
/// mutate simulation state.
class CycleObserver {
 public:
  virtual ~CycleObserver() = default;
  virtual void on_cycle_end(Cycle t) = 0;
};

/// Drives a set of components through clock cycles.
///
/// Components are not owned; the caller keeps them alive for the engine's
/// lifetime (they are usually members of a testbench struct).
class Engine {
 public:
  void add(Component* c);

  /// Register a post-commit observer (not owned). With none registered the
  /// per-cycle cost is one empty-vector test, preserving the hot-path speed
  /// of unchecked runs.
  void add_cycle_observer(CycleObserver* o);

  /// Advance exactly one cycle.
  void step() {
    const Cycle t = now_;
    for (Component* c : components_) c->eval(t);
    for (Component* c : committers_) c->commit(t);
    for (CycleObserver* o : observers_) o->on_cycle_end(t);
    ++now_;
    if (metrics_ != nullptr && --sample_countdown_ == 0) {
      sample_countdown_ = sample_period_;
      metrics_->sample(t);
    }
  }

  /// Run `cycles` more cycles. Returns the cycle count after running.
  ///
  /// When idle skipping is enabled and no cycle observers are attached
  /// (observers inspect every cycle, so skipping would starve them), the
  /// loop polls all-component quiescence and jumps straight to the earliest
  /// next_wake(). Results are bit-identical to the stepped run by the
  /// Component quiescence contract; the poll cadence (every cycle while
  /// skipping is productive, every kSkipPollPeriod cycles after a failed
  /// poll) only affects wall-clock, never outcomes.
  Cycle run(Cycle cycles) {
    const Cycle target = now_ + cycles;
    if (!idle_skip_ || !observers_.empty()) {
      while (now_ < target) step();
      return now_;
    }
    Cycle next_poll = now_;
    while (now_ < target) {
      if (now_ >= next_poll) {
        Cycle wake = kNeverWake;
        if (quiescent_at(now_, &wake) && wake > now_) {
          skip_to(wake < target ? wake : target);
          continue;
        }
        next_poll = now_ + kSkipPollPeriod;
      }
      step();
    }
    return now_;
  }

  /// Run until `pred(t)` is true at the *end* of a cycle, or `max_cycles`
  /// elapse. Returns true if the predicate fired.
  template <typename Pred>
  bool run_until(Pred&& pred, Cycle max_cycles) {
    for (Cycle i = 0; i < max_cycles; ++i) {
      step();
      if (pred(now_ - 1)) return true;
    }
    return false;
  }

  Cycle now() const { return now_; }

  /// Attach a metrics registry: after the commit phase of every `period`-th
  /// cycle the engine calls registry->sample(t), pulling all registered
  /// gauges. Pass nullptr to detach. With no registry attached (the
  /// default), stepping pays a single null-pointer test per cycle.
  void set_metrics(obs::MetricsRegistry* registry, Cycle period = 1024);

  obs::MetricsRegistry* metrics() const { return metrics_; }
  Cycle sample_period() const { return sample_period_; }

  // --- Idle-cycle skipping ------------------------------------------------

  /// Enable/disable quiescence-based skipping for this engine. The initial
  /// value comes from PMSB_IDLE_SKIP ("0" disables; default on). Skipping
  /// never changes results -- this switch exists for A/B validation and for
  /// embedded engines (fabric shards) whose skipping is coordinated
  /// externally at round granularity.
  void set_idle_skip(bool on) { idle_skip_ = on; }
  bool idle_skip() const { return idle_skip_; }

  /// Process-wide default for idle skipping (PMSB_IDLE_SKIP, read once).
  static bool idle_skip_env_default();

  /// Process-wide override for the default above (bench --idle-skip flag):
  /// 0 = force off, 1 = force on, -1 = defer to the environment again. Only
  /// affects engines constructed after the call. Not thread-safe; call it
  /// from startup code before any simulation threads exist.
  static void set_idle_skip_override(int v);

  /// True when skipping is structurally permitted: cycle observers see
  /// every cycle, so any attached observer pins the engine to stepping.
  bool can_skip() const { return observers_.empty(); }

  /// True when every component is quiescent at cycle t; on success *wake is
  /// the minimum next_wake() over all components (kNeverWake if none wakes).
  bool quiescent_at(Cycle t, Cycle* wake) const;

  /// Jump the clock to `target` (> now()) without stepping. The caller
  /// guarantees every cycle in [now(), target) is quiescent for every
  /// component. Calls each component's skip() hook, then advances now_ and
  /// replays metrics sample boundaries exactly as stepping would have.
  void skip_to(Cycle target);

 private:
  static constexpr Cycle kSkipPollPeriod = 16;

  std::vector<Component*> components_;
  std::vector<Component*> committers_;  ///< components_ minus empty clock edges.
  std::vector<CycleObserver*> observers_;
  Cycle now_ = 0;  ///< Next cycle to execute.
  obs::MetricsRegistry* metrics_ = nullptr;
  Cycle sample_period_ = 1024;
  Cycle sample_countdown_ = 0;  ///< Cycles until the next sample() call.
  bool idle_skip_ = idle_skip_env_default();
};

}  // namespace pmsb
