// Two-phase clocked simulation kernel.
//
// Cycle-accuracy convention (DESIGN.md section 4):
//   * During cycle t, every component's eval(t) runs. eval() may only read
//     state that was committed at the end of cycle t-1 (register outputs,
//     SRAM contents, link values driven for cycle t) and may stage new state.
//   * After all eval()s, every component's commit(t) runs, making the staged
//     state visible for cycle t+1 ("the clock edge").
//
// Because eval() never observes same-cycle writes, eval order across
// components is irrelevant -- exactly like synchronous hardware with only
// registered inter-component signals. Within a component, helper sub-blocks
// may be combinationally chained as long as the component evaluates them in
// dataflow order itself.
//
// Kernel-loop notes: step()/run()/run_until() are header-inline so the
// per-cycle loop flattens into the caller; components that declare an empty
// clock edge (has_commit() == false) are skipped in the commit sweep; and
// metrics sampling costs one predictable counter decrement per cycle (a
// countdown, not a modulo) with a single null test when no registry is
// attached. run_until() takes its predicate as a template parameter so the
// per-cycle termination check inlines instead of going through
// std::function.

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/util.hpp"
#include "obs/metrics.hpp"

namespace pmsb {

/// A clocked hardware block (or testbench element).
class Component {
 public:
  virtual ~Component() = default;

  /// Combinational phase of cycle t: read committed state, stage updates.
  virtual void eval(Cycle t) = 0;

  /// Clock edge at the end of cycle t: commit staged updates.
  virtual void commit(Cycle t) = 0;

  /// Override to return false when commit() is a no-op; the engine then
  /// leaves this component out of the commit sweep entirely.
  virtual bool has_commit() const { return true; }

  /// For diagnostics.
  virtual std::string name() const { return "component"; }
};

/// Post-commit inspection hook (the invariant checkers of src/check/): the
/// engine calls on_cycle_end(t) after every component's commit(t), when all
/// state for cycle t+1 is visible -- the only point in the cycle where
/// cross-component conservation invariants are meaningful. Observers never
/// mutate simulation state.
class CycleObserver {
 public:
  virtual ~CycleObserver() = default;
  virtual void on_cycle_end(Cycle t) = 0;
};

/// Drives a set of components through clock cycles.
///
/// Components are not owned; the caller keeps them alive for the engine's
/// lifetime (they are usually members of a testbench struct).
class Engine {
 public:
  void add(Component* c);

  /// Register a post-commit observer (not owned). With none registered the
  /// per-cycle cost is one empty-vector test, preserving the hot-path speed
  /// of unchecked runs.
  void add_cycle_observer(CycleObserver* o);

  /// Advance exactly one cycle.
  void step() {
    const Cycle t = now_;
    for (Component* c : components_) c->eval(t);
    for (Component* c : committers_) c->commit(t);
    for (CycleObserver* o : observers_) o->on_cycle_end(t);
    ++now_;
    if (metrics_ != nullptr && --sample_countdown_ == 0) {
      sample_countdown_ = sample_period_;
      metrics_->sample(t);
    }
  }

  /// Run `cycles` more cycles. Returns the cycle count after running.
  Cycle run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) step();
    return now_;
  }

  /// Run until `pred(t)` is true at the *end* of a cycle, or `max_cycles`
  /// elapse. Returns true if the predicate fired.
  template <typename Pred>
  bool run_until(Pred&& pred, Cycle max_cycles) {
    for (Cycle i = 0; i < max_cycles; ++i) {
      step();
      if (pred(now_ - 1)) return true;
    }
    return false;
  }

  Cycle now() const { return now_; }

  /// Attach a metrics registry: after the commit phase of every `period`-th
  /// cycle the engine calls registry->sample(t), pulling all registered
  /// gauges. Pass nullptr to detach. With no registry attached (the
  /// default), stepping pays a single null-pointer test per cycle.
  void set_metrics(obs::MetricsRegistry* registry, Cycle period = 1024);

  obs::MetricsRegistry* metrics() const { return metrics_; }
  Cycle sample_period() const { return sample_period_; }

 private:
  std::vector<Component*> components_;
  std::vector<Component*> committers_;  ///< components_ minus empty clock edges.
  std::vector<CycleObserver*> observers_;
  Cycle now_ = 0;  ///< Next cycle to execute.
  obs::MetricsRegistry* metrics_ = nullptr;
  Cycle sample_period_ = 1024;
  Cycle sample_countdown_ = 0;  ///< Cycles until the next sample() call.
};

}  // namespace pmsb
