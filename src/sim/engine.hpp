// Two-phase clocked simulation kernel.
//
// Cycle-accuracy convention (DESIGN.md section 4):
//   * During cycle t, every component's eval(t) runs. eval() may only read
//     state that was committed at the end of cycle t-1 (register outputs,
//     SRAM contents, link values driven for cycle t) and may stage new state.
//   * After all eval()s, every component's commit(t) runs, making the staged
//     state visible for cycle t+1 ("the clock edge").
//
// Because eval() never observes same-cycle writes, eval order across
// components is irrelevant -- exactly like synchronous hardware with only
// registered inter-component signals. Within a component, helper sub-blocks
// may be combinationally chained as long as the component evaluates them in
// dataflow order itself.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/util.hpp"

namespace pmsb {

namespace obs {
class MetricsRegistry;
}

/// A clocked hardware block (or testbench element).
class Component {
 public:
  virtual ~Component() = default;

  /// Combinational phase of cycle t: read committed state, stage updates.
  virtual void eval(Cycle t) = 0;

  /// Clock edge at the end of cycle t: commit staged updates.
  virtual void commit(Cycle t) = 0;

  /// For diagnostics.
  virtual std::string name() const { return "component"; }
};

/// Drives a set of components through clock cycles.
///
/// Components are not owned; the caller keeps them alive for the engine's
/// lifetime (they are usually members of a testbench struct).
class Engine {
 public:
  void add(Component* c);

  /// Run `cycles` more cycles. Returns the cycle count after running.
  Cycle run(Cycle cycles);

  /// Run until `pred(t)` is true at the *end* of a cycle, or `max_cycles`
  /// elapse. Returns true if the predicate fired.
  bool run_until(const std::function<bool(Cycle)>& pred, Cycle max_cycles);

  /// Advance exactly one cycle.
  void step();

  Cycle now() const { return now_; }

  /// Attach a metrics registry: after the commit phase of every `period`-th
  /// cycle the engine calls registry->sample(t), pulling all registered
  /// gauges. Pass nullptr to detach. With no registry attached (the
  /// default), stepping pays a single null-pointer test per cycle.
  void set_metrics(obs::MetricsRegistry* registry, Cycle period = 1024);

  obs::MetricsRegistry* metrics() const { return metrics_; }
  Cycle sample_period() const { return sample_period_; }

 private:
  std::vector<Component*> components_;
  Cycle now_ = 0;  ///< Next cycle to execute.
  obs::MetricsRegistry* metrics_ = nullptr;
  Cycle sample_period_ = 1024;
};

}  // namespace pmsb
