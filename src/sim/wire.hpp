// A point-to-point on-chip link wire carrying one Flit per cycle.
//
// Two-phase semantics: the driver stages the value for the *next* cycle
// during its eval (the driver's output register is loaded at the clock
// edge); consumers read `now()` during eval. An undriven cycle yields an
// invalid flit -- a wire, not a holding register.

#pragma once

#include <vector>

#include "common/cell.hpp"
#include "common/util.hpp"
#include "sim/engine.hpp"

namespace pmsb {

class WireLink {
 public:
  /// Value on the wire during the current cycle.
  const Flit& now() const { return now_; }

  /// Drive the wire for the next cycle. At most one driver per cycle.
  void drive_next(const Flit& f) {
    PMSB_CHECK(!driven_, "two drivers on one link in one cycle");
    next_ = f;
    driven_ = true;
  }

  /// Clock edge.
  void tick() {
    now_ = driven_ ? next_ : Flit{};
    driven_ = false;
  }

  /// True when the wire carries nothing now and nothing is staged for the
  /// next cycle -- ticking it would change nothing (quiescence predicate).
  bool idle() const { return !now_.valid && !driven_; }

 private:
  Flit now_;
  Flit next_;
  bool driven_ = false;
};

/// Clocks a set of free-standing wires that no other component owns
/// (testbench glue for wires between a source and a LinkPipeline, etc.).
class WireTicker : public Component {
 public:
  void add(WireLink* w) { wires_.push_back(w); }
  void eval(Cycle) override {}
  void commit(Cycle) override {
    for (WireLink* w : wires_) w->tick();
  }
  bool is_quiescent(Cycle) const override {
    for (const WireLink* w : wires_) {
      if (!w->idle()) return false;
    }
    return true;
  }
  std::string name() const override { return "wire_ticker"; }

 private:
  std::vector<WireLink*> wires_;
};

}  // namespace pmsb
