// Sense-reversing spin barrier for lockstep shard execution.
//
// The fabric engine (src/fabric/) partitions a multi-switch network across
// worker threads that advance in rounds of `lookahead` cycles. Rounds are
// short (a handful of switch evals per node), so a parked-thread barrier
// built on a mutex/condvar would spend more time in the kernel than in the
// simulation. This barrier spins briefly, then yields, then parks on a
// condvar, which behaves well when workers are truly parallel AND when they
// are oversubscribed on few cores (CI runners, PMSB_THREADS > hardware
// threads) -- pure spin-or-yield waiting starves the straggler in that
// regime.
//
// Why a condvar and not a fixed sleep for the deepest tier: a
// sleep_for(quantum) waiter keeps sleeping after the episode completes --
// the last arriver has no way to interrupt it -- so every deep round used
// to pay up to a full quantum of post-completion latency per parked waiter
// (measurable as barrier_wait_ns inflation in oversubscribed runs). Parked
// waiters now register in sleepers_ and the last arriver notifies the
// condvar right after bumping the generation, so release latency is a
// wakeup, not a timer. The condvar wait still uses a timeout purely as a
// belt-and-braces bound; correctness never depends on it (the generation
// check rules out spurious and stale wakeups).
//
// Memory ordering contract: everything written by a thread before its
// arrive_and_wait() happens-before everything read by any thread after the
// same barrier episode. The last arriver optionally runs a completion
// callback *inside* the barrier -- all other participants are guaranteed to
// be parked, so the callback may read shard-owned state race-free (the
// fabric uses this to pull metrics gauges at round boundaries).

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "common/util.hpp"

namespace pmsb {

class SpinBarrier {
 public:
  /// `parties` threads must call arrive_and_wait() per episode. The optional
  /// `completion` runs once per episode, on the last arriver, before anyone
  /// is released.
  explicit SpinBarrier(unsigned parties, std::function<void()> completion = {})
      : parties_(parties), completion_(std::move(completion)) {
    PMSB_CHECK(parties >= 1, "barrier needs at least one participant");
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      // Reset before the release bump: a released thread can only re-arrive
      // after observing the new generation, so the counter is quiescent here.
      arrived_.store(0, std::memory_order_relaxed);
      if (completion_) completion_();
      // seq_cst bump + seq_cst sleepers load pair with the waiter's seq_cst
      // sleepers bump + generation recheck (Dekker): in the single total
      // order either the waiter sees the new generation and never parks, or
      // we see its sleepers_ registration and notify.
      generation_.fetch_add(1, std::memory_order_seq_cst);
      // Wake parked waiters immediately instead of letting them ride out a
      // sleep quantum. The mutex acquisition orders this against a waiter
      // that registered but has not yet entered wait(): it holds the lock
      // from the recheck until wait() releases it, so our notify cannot
      // slip into that window.
      if (sleepers_.load(std::memory_order_seq_cst) > 0) {
        { std::lock_guard<std::mutex> lk(mu_); }
        cv_.notify_all();
      }
    } else {
      // Escalating backoff: spin hot briefly (the common case -- rounds are
      // short and workers arrive together), then yield the timeslice, then
      // park on the condvar. The parked tier is what keeps oversubscribed
      // runs (threads > cores, e.g. PMSB_THREADS above the CI runner's core
      // count) from livelocking the scheduler: yield() is a no-op when every
      // runnable thread is a spinner, but a parked spinner lets the
      // straggler that everyone is waiting for actually run.
      unsigned spins = 0;
      while (generation_.load(std::memory_order_acquire) == gen) {
        ++spins;
        if (spins <= kSpinsBeforeYield) continue;
        if (spins <= kSpinsBeforePark) {
          std::this_thread::yield();
        } else {
          std::unique_lock<std::mutex> lk(mu_);
          sleepers_.fetch_add(1, std::memory_order_seq_cst);
          // Recheck under the lock: a completion between our loop check and
          // the sleepers_ bump would otherwise notify nobody.
          if (generation_.load(std::memory_order_seq_cst) == gen)
            cv_.wait_for(lk, std::chrono::milliseconds(1));
          sleepers_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
    }
  }

  unsigned parties() const { return parties_; }

  /// Waiters currently parked on the condvar tier (telemetry/tests).
  unsigned sleepers() const { return sleepers_.load(std::memory_order_relaxed); }

 private:
  static constexpr unsigned kSpinsBeforeYield = 128;
  static constexpr unsigned kSpinsBeforePark = 4096;

  const unsigned parties_;
  std::function<void()> completion_;
  std::atomic<unsigned> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<unsigned> sleepers_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace pmsb
