// Sense-reversing spin barrier for lockstep shard execution.
//
// The fabric engine (src/fabric/) partitions a multi-switch network across
// worker threads that advance in rounds of `lookahead` cycles. Rounds are
// short (a handful of switch evals per node), so a parked-thread barrier
// built on a mutex/condvar would spend more time in the kernel than in the
// simulation. This barrier spins briefly, then yields, then sleeps, which
// behaves well when workers are truly parallel AND when they are
// oversubscribed on few cores (CI runners, PMSB_THREADS > hardware threads)
// -- pure spin-or-yield waiting starves the straggler in that regime.
//
// Memory ordering contract: everything written by a thread before its
// arrive_and_wait() happens-before everything read by any thread after the
// same barrier episode. The last arriver optionally runs a completion
// callback *inside* the barrier -- all other participants are guaranteed to
// be parked, so the callback may read shard-owned state race-free (the
// fabric uses this to pull metrics gauges at round boundaries).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/util.hpp"

namespace pmsb {

class SpinBarrier {
 public:
  /// `parties` threads must call arrive_and_wait() per episode. The optional
  /// `completion` runs once per episode, on the last arriver, before anyone
  /// is released.
  explicit SpinBarrier(unsigned parties, std::function<void()> completion = {})
      : parties_(parties), completion_(std::move(completion)) {
    PMSB_CHECK(parties >= 1, "barrier needs at least one participant");
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      // Reset before the release bump: a released thread can only re-arrive
      // after observing the new generation, so the counter is quiescent here.
      arrived_.store(0, std::memory_order_relaxed);
      if (completion_) completion_();
      generation_.fetch_add(1, std::memory_order_release);
    } else {
      // Escalating backoff: spin hot briefly (the common case -- rounds are
      // short and workers arrive together), then yield the timeslice, then
      // sleep. The sleep tier is what keeps oversubscribed runs (threads >
      // cores, e.g. PMSB_THREADS above the CI runner's core count) from
      // livelocking the scheduler: yield() is a no-op when every runnable
      // thread is a spinner, but a sleeping spinner lets the straggler that
      // everyone is waiting for actually run.
      unsigned spins = 0;
      while (generation_.load(std::memory_order_acquire) == gen) {
        ++spins;
        if (spins <= kSpinsBeforeYield) continue;
        if (spins <= kSpinsBeforeSleep) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    }
  }

  unsigned parties() const { return parties_; }

 private:
  static constexpr unsigned kSpinsBeforeYield = 128;
  static constexpr unsigned kSpinsBeforeSleep = 4096;

  const unsigned parties_;
  std::function<void()> completion_;
  std::atomic<unsigned> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace pmsb
