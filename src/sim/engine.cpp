#include "sim/engine.hpp"

namespace pmsb {

void Engine::add(Component* c) {
  PMSB_CHECK(c != nullptr, "null component");
  components_.push_back(c);
  if (c->has_commit()) committers_.push_back(c);
}

void Engine::add_cycle_observer(CycleObserver* o) {
  PMSB_CHECK(o != nullptr, "null cycle observer");
  observers_.push_back(o);
}

void Engine::set_metrics(obs::MetricsRegistry* registry, Cycle period) {
  PMSB_CHECK(registry == nullptr || period > 0, "sampling period must be positive");
  metrics_ = registry;
  sample_period_ = period;
  // Preserve the sampling phase: samples land on cycles where the cycle
  // count after the step is a multiple of the period, exactly as the
  // modulo formulation did.
  if (registry != nullptr) sample_countdown_ = period - (now_ % period);
}

}  // namespace pmsb
