#include "sim/engine.hpp"

#include <cstdlib>

namespace pmsb {
namespace {
int g_idle_skip_override = -1;  // -1 = defer to PMSB_IDLE_SKIP.
}  // namespace

void Engine::set_idle_skip_override(int v) { g_idle_skip_override = v; }

bool Engine::idle_skip_env_default() {
  if (g_idle_skip_override >= 0) return g_idle_skip_override != 0;
  static const bool on = [] {
    const char* v = std::getenv("PMSB_IDLE_SKIP");
    return v == nullptr || !(v[0] == '0' && v[1] == '\0');
  }();
  return on;
}

bool Engine::quiescent_at(Cycle t, Cycle* wake) const {
  Cycle w = kNeverWake;
  for (const Component* c : components_) {
    if (!c->is_quiescent(t)) return false;
    const Cycle cw = c->next_wake(t);
    if (cw < w) w = cw;
  }
  if (wake != nullptr) *wake = w;
  return true;
}

void Engine::skip_to(Cycle target) {
  PMSB_CHECK(observers_.empty(), "cannot skip cycles past a cycle observer");
  PMSB_CHECK(target > now_, "skip_to target must be ahead of now()");
  Cycle n = target - now_;
  for (Component* c : components_) c->skip(now_, n);
  if (metrics_ == nullptr) {
    now_ = target;
    return;
  }
  // Replay every sample boundary the stepped loop would have hit: step()
  // samples at the end of cycle t when the countdown reaches zero, with
  // sample(t) receiving the just-finished cycle.
  while (n >= sample_countdown_) {
    now_ += sample_countdown_;
    n -= sample_countdown_;
    sample_countdown_ = sample_period_;
    metrics_->sample(now_ - 1);
  }
  now_ += n;
  sample_countdown_ -= n;
}

void Engine::add(Component* c) {
  PMSB_CHECK(c != nullptr, "null component");
  components_.push_back(c);
  if (c->has_commit()) committers_.push_back(c);
}

void Engine::add_cycle_observer(CycleObserver* o) {
  PMSB_CHECK(o != nullptr, "null cycle observer");
  observers_.push_back(o);
}

void Engine::set_metrics(obs::MetricsRegistry* registry, Cycle period) {
  PMSB_CHECK(registry == nullptr || period > 0, "sampling period must be positive");
  metrics_ = registry;
  sample_period_ = period;
  // Preserve the sampling phase: samples land on cycles where the cycle
  // count after the step is a multiple of the period, exactly as the
  // modulo formulation did.
  if (registry != nullptr) sample_countdown_ = period - (now_ % period);
}

}  // namespace pmsb
