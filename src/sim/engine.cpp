#include "sim/engine.hpp"

#include "obs/metrics.hpp"

namespace pmsb {

void Engine::add(Component* c) {
  PMSB_CHECK(c != nullptr, "null component");
  components_.push_back(c);
}

void Engine::set_metrics(obs::MetricsRegistry* registry, Cycle period) {
  PMSB_CHECK(registry == nullptr || period > 0, "sampling period must be positive");
  metrics_ = registry;
  sample_period_ = period;
}

void Engine::step() {
  const Cycle t = now_;
  for (Component* c : components_) c->eval(t);
  for (Component* c : components_) c->commit(t);
  ++now_;
  if (metrics_ && now_ % sample_period_ == 0) metrics_->sample(t);
}

Cycle Engine::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) step();
  return now_;
}

bool Engine::run_until(const std::function<bool(Cycle)>& pred, Cycle max_cycles) {
  for (Cycle i = 0; i < max_cycles; ++i) {
    step();
    if (pred(now_ - 1)) return true;
  }
  return false;
}

}  // namespace pmsb
