// Link-wire pipelining (section 4.3, first "very-high-speed IC" option):
//
//   "the long lines carrying the input and output link data can be split in
//    two or more pipeline stages each. ... The net effect is that all packet
//    data are delayed by an equal number of cycles on their way from an
//    input to an output link, and thus the logic of the switch operation
//    remains unaffected."
//
// LinkPipeline inserts `stages` register stages between two WireLinks. A
// testbench that wraps every input and output link of a switch with a
// k-stage pipeline sees end-to-end latency shifted by exactly 2k cycles and
// no functional change -- asserted by tests/test_switch_properties.cpp.

#pragma once

#include <vector>

#include "sim/engine.hpp"
#include "sim/wire.hpp"

namespace pmsb {

class LinkPipeline : public Component {
 public:
  /// Forwards `from` to `to` through `stages` >= 1 register stages. (One
  /// stage reproduces a plain registered repeater: total wire delay becomes
  /// stages + 1 cycles including the destination's own input register.)
  LinkPipeline(WireLink* from, WireLink* to, unsigned stages)
      : from_(from), to_(to), regs_(stages) {
    PMSB_CHECK(from != nullptr && to != nullptr, "pipeline needs both endpoints");
    PMSB_CHECK(stages >= 1, "a zero-stage pipeline is just a wire");
  }

  void eval(Cycle) override {
    // Drive the downstream wire from the last register, and sample the
    // upstream wire (two-phase: reads happen in eval, the shift commits at
    // the clock edge).
    if (regs_.back().valid) to_->drive_next(regs_.back());
    sampled_ = from_->now();
  }

  void commit(Cycle) override {
    for (std::size_t s = regs_.size(); s-- > 1;) regs_[s] = regs_[s - 1];
    regs_[0] = sampled_;
  }

  bool is_quiescent(Cycle) const override {
    // Empty pipe and nothing arriving: eval would drive nothing and commit
    // would shift invalid flits into invalid slots. (sampled_ cannot hold a
    // stale valid flit here -- any valid sample was committed into regs_[0]
    // and would fail the register scan.)
    if (from_->now().valid) return false;
    for (const Flit& f : regs_) {
      if (f.valid) return false;
    }
    return true;
  }

  std::string name() const override { return "link_pipeline"; }

 private:
  WireLink* from_;
  WireLink* to_;
  std::vector<Flit> regs_;
  Flit sampled_;
};

}  // namespace pmsb
