// Human-readable trace formatting. The hot-path trace mechanism is
// obs::TraceBuffer (typed records, no formatting); a Tracer is the
// formatting *drain* over it: attach one as a live drain to watch a run
// cycle by cycle (the quickstart example), or call drain() after the run to
// render whatever the ring buffer retained.
//
// The printf-style event()/line() API remains for ad-hoc diagnostics. A
// Tracer is optional everywhere: a null Tracer pointer means "no tracing"
// and costs one branch; a Tracer with a null sink swallows output instead of
// crashing.

#pragma once

#include <cstdio>
#include <string>

#include "common/util.hpp"
#include "obs/trace_buffer.hpp"

namespace pmsb {

class Tracer {
 public:
  /// Sink defaults to stdout. The Tracer does not own `sink`; a null sink
  /// discards all output.
  explicit Tracer(std::FILE* sink = stdout, bool enabled = true)
      : sink_(sink), enabled_(enabled) {}

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// printf-style event record, prefixed with the cycle number.
  void event(Cycle t, const char* fmt, ...) __attribute__((format(printf, 3, 4)));

  /// Raw line (no cycle prefix).
  void line(const std::string& s);

  /// Format one typed trace record (cycle prefix + obs::format rendering).
  void record(const obs::TraceRecord& r);

  /// Render every record the buffer retained, oldest first, noting how many
  /// older records were lost to wraparound.
  void drain(const obs::TraceBuffer& buf);

  /// Convenience: register this Tracer as `buf`'s live drain (records are
  /// formatted as they are pushed).
  void attach_live(obs::TraceBuffer& buf);

 private:
  std::FILE* sink_;
  bool enabled_;
};

}  // namespace pmsb
