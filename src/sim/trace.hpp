// Lightweight cycle trace for debugging and for the quickstart example's
// wave-style output. A Tracer is optional everywhere: a null Tracer pointer
// means "no tracing" and costs one branch.

#pragma once

#include <cstdio>
#include <string>

#include "common/util.hpp"

namespace pmsb {

class Tracer {
 public:
  /// Sink defaults to stdout. The Tracer does not own `sink`.
  explicit Tracer(std::FILE* sink = stdout, bool enabled = true)
      : sink_(sink), enabled_(enabled) {}

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// printf-style event record, prefixed with the cycle number.
  void event(Cycle t, const char* fmt, ...) __attribute__((format(printf, 3, 4)));

  /// Raw line (no cycle prefix).
  void line(const std::string& s);

 private:
  std::FILE* sink_;
  bool enabled_;
};

}  // namespace pmsb
