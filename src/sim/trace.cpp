#include "sim/trace.hpp"

#include <cstdarg>

namespace pmsb {

void Tracer::event(Cycle t, const char* fmt, ...) {
  if (!enabled_ || sink_ == nullptr) return;
  std::fprintf(sink_, "[%6lld] ", static_cast<long long>(t));
  std::va_list ap;
  va_start(ap, fmt);
  std::vfprintf(sink_, fmt, ap);
  va_end(ap);
  std::fputc('\n', sink_);
}

void Tracer::line(const std::string& s) {
  if (!enabled_ || sink_ == nullptr) return;
  std::fputs(s.c_str(), sink_);
  std::fputc('\n', sink_);
}

void Tracer::record(const obs::TraceRecord& r) {
  if (!enabled_ || sink_ == nullptr) return;
  std::fprintf(sink_, "[%6lld] %s\n", static_cast<long long>(r.t),
               obs::format(r).c_str());
}

void Tracer::drain(const obs::TraceBuffer& buf) {
  if (!enabled_ || sink_ == nullptr) return;
  if (buf.overwritten() > 0) {
    std::fprintf(sink_, "... %llu older trace records overwritten ...\n",
                 static_cast<unsigned long long>(buf.overwritten()));
  }
  buf.for_each([this](const obs::TraceRecord& r) { record(r); });
}

void Tracer::attach_live(obs::TraceBuffer& buf) {
  buf.set_live_drain([this](const obs::TraceRecord& r) { record(r); });
}

}  // namespace pmsb
