#include "sim/trace.hpp"

#include <cstdarg>

namespace pmsb {

void Tracer::event(Cycle t, const char* fmt, ...) {
  if (!enabled_) return;
  std::fprintf(sink_, "[%6lld] ", static_cast<long long>(t));
  std::va_list ap;
  va_start(ap, fmt);
  std::vfprintf(sink_, fmt, ap);
  va_end(ap);
  std::fputc('\n', sink_);
}

void Tracer::line(const std::string& s) {
  if (!enabled_) return;
  std::fputs(s.c_str(), sink_);
  std::fputc('\n', sink_);
}

}  // namespace pmsb
