// Console table rendering for the bench harness: aligned columns, optional
// CSV dump. Every bench prints the paper-style table through this, so the
// output format is uniform across experiments.

#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace pmsb {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns to `out` (default stdout).
  void print(std::FILE* out = stdout) const;

  /// Render as CSV.
  void print_csv(std::FILE* out) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }
  const std::string& cell(std::size_t r, std::size_t c) const { return rows_[r][c]; }
  const std::vector<std::string>& headers() const { return headers_; }

  /// Formatting helpers for bench code.
  static std::string num(double v, int precision = 3);
  static std::string sci(double v, int precision = 2);
  static std::string integer(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner: experiment id + description.
void print_banner(const std::string& id, const std::string& title);

}  // namespace pmsb
