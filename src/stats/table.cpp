#include "stats/table.hpp"

#include <algorithm>
#include <cstdarg>

#include "common/util.hpp"

namespace pmsb {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PMSB_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PMSB_CHECK(cells.size() == headers_.size(), "row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "  " : "  | ", static_cast<int>(width[c]),
                   row[c].c_str());
    }
    std::fputc('\n', out);
  };
  print_row(headers_);
  std::size_t total = 2;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c == 0 ? 0 : 4);
  std::string rule(total + 2, '-');
  std::fprintf(out, "  %s\n", rule.c_str() + 2);
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::FILE* out) const {
  auto csv_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      std::fprintf(out, "%s%s", c == 0 ? "" : ",", row[c].c_str());
    std::fputc('\n', out);
  };
  csv_row(headers_);
  for (const auto& row : rows_) csv_row(row);
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

void print_banner(const std::string& id, const std::string& title) {
  std::printf("\n=== %s: %s ===\n", id.c_str(), title.c_str());
}

}  // namespace pmsb
