#include "stats/hdr_histogram.hpp"

#include <bit>
#include <cmath>

namespace pmsb {

HdrHistogram::HdrHistogram(unsigned precision_bits) : p_(precision_bits) {
  PMSB_CHECK(p_ >= 1 && p_ <= 20, "HdrHistogram precision_bits out of [1, 20]");
  sub_ = std::uint64_t{1} << p_;
  half_ = sub_ / 2;
  // Highest index is reached at value 2^64 - 1 (shift = 64 - p_):
  // (64 - p_) * half_ + sub_ - 1, so the vector needs one more slot.
  counts_.assign(static_cast<std::size_t>(64 - p_) * half_ + sub_, 0);
}

std::size_t HdrHistogram::index_of(std::uint64_t value) const {
  if (value < sub_) return static_cast<std::size_t>(value);
  // Keep the top p_ bits; every value with the same (shift, top bits) shares
  // a bucket of width 2^shift, i.e. relative width 2^-p_. The result is
  // contiguous with the exact range: value sub_ lands on index sub_.
  const unsigned shift = static_cast<unsigned>(std::bit_width(value)) - p_;
  return static_cast<std::size_t>(shift) * half_ +
         static_cast<std::size_t>(value >> shift);
}

std::uint64_t HdrHistogram::bucket_low(std::size_t i) const {
  if (i < sub_) return i;
  // i = shift * half_ + top with top in [half_, sub_), so i / half_ is
  // shift + 1 exactly.
  const unsigned shift = static_cast<unsigned>(i / half_) - 1;
  const std::uint64_t top = i - static_cast<std::uint64_t>(shift) * half_;
  return top << shift;
}

std::uint64_t HdrHistogram::bucket_high(std::size_t i) const {
  if (i < sub_) return i;
  const unsigned shift = static_cast<unsigned>(i / half_) - 1;
  const std::uint64_t top = i - static_cast<std::uint64_t>(shift) * half_;
  return ((top + 1) << shift) - 1;
}

void HdrHistogram::add(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  counts_[index_of(value)] += count;
  if (samples_ == 0 || value < min_) min_ = value;
  if (samples_ == 0 || value > max_) max_ = value;
  samples_ += count;
  sum_ += value * count;
}

double HdrHistogram::mean() const {
  if (samples_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(samples_);
}

std::uint64_t HdrHistogram::percentile(double q) const {
  PMSB_CHECK(q >= 0.0 && q <= 1.0, "HdrHistogram percentile rank out of [0, 1]");
  if (samples_ == 0) return 0;
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(samples_)));
  if (target == 0) target = 1;
  if (target > samples_) target = samples_;
  std::uint64_t cum = 0;
  const std::size_t last = index_of(max_);
  for (std::size_t i = index_of(min_); i <= last; ++i) {
    cum += counts_[i];
    if (cum >= target) {
      const std::uint64_t hi = bucket_high(i);
      if (hi > max_) return max_;
      if (hi < min_) return min_;
      return hi;
    }
  }
  return max_;
}

void HdrHistogram::merge(const HdrHistogram& other) {
  PMSB_CHECK(p_ == other.p_, "HdrHistogram merge with mismatched precision");
  if (other.samples_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (samples_ == 0 || other.min_ < min_) min_ = other.min_;
  if (samples_ == 0 || other.max_ > max_) max_ = other.max_;
  samples_ += other.samples_;
  sum_ += other.sum_;
}

void HdrHistogram::clear() {
  counts_.assign(counts_.size(), 0);
  samples_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

}  // namespace pmsb
