// Constant-memory log-bucketed histogram for latency distributions
// (HdrHistogram-style). The dense stats/histogram.hpp Histogram allocates
// max_value + 1 buckets and clamps everything above max_value into one
// overflow bucket -- fine for slack distributions that are bounded by
// construction, wrong for latency tails, where the clamp silently turns a
// p99.9 of 20000 cycles into "4096".
//
// Bucketing: values below 2^precision_bits are recorded exactly (one bucket
// per value); above that, each power-of-two range is split into
// 2^(precision_bits - 1) sub-buckets, so any recorded value is off by at
// most a factor of 2^-precision_bits (< 1% at the default 7 bits). The full
// 64-bit value range fits in ~(64 - p) * 2^(p-1) + 2^p buckets -- ~30 KiB
// at p = 7 -- independent of the values recorded, so one histogram per
// fabric node (or per (input, output) pair) is cheap.
//
// Sums and sample counts are exact (percentile resolution is the only
// approximation), and two histograms of equal precision merge by bucket-wise
// addition -- the property the sharded fabric relies on to aggregate
// per-node recorders into fabric-wide percentiles deterministically.

#pragma once

#include <cstdint>
#include <vector>

#include "common/util.hpp"

namespace pmsb {

class HdrHistogram {
 public:
  static constexpr unsigned kDefaultPrecisionBits = 7;

  /// precision_bits in [1, 20]: values < 2^precision_bits are exact; larger
  /// values land in buckets of relative width 2^-precision_bits.
  explicit HdrHistogram(unsigned precision_bits = kDefaultPrecisionBits);

  void add(std::uint64_t value, std::uint64_t count = 1);

  std::uint64_t samples() const { return samples_; }
  std::uint64_t sum() const { return sum_; }  ///< Exact (unbucketed) sum.
  double mean() const;                        ///< Exact: sum / samples.
  std::uint64_t min() const { return samples_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return samples_ == 0 ? 0 : max_; }

  /// q in [0, 1]: the smallest value v with CDF(v) >= q, at bucket
  /// resolution (upper bound of the containing bucket, clamped to the
  /// recorded [min, max] so exact extremes stay exact).
  std::uint64_t percentile(double q) const;
  std::uint64_t p50() const { return percentile(0.50); }
  std::uint64_t p90() const { return percentile(0.90); }
  std::uint64_t p99() const { return percentile(0.99); }
  std::uint64_t p999() const { return percentile(0.999); }

  /// Bucket-wise addition; `other` must have the same precision.
  void merge(const HdrHistogram& other);
  void clear();

  unsigned precision_bits() const { return p_; }
  /// Upper bound on the relative error of any percentile.
  double relative_error() const { return 1.0 / static_cast<double>(sub_); }

  // ---- Bucket introspection (tests, reporting) ----------------------------
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t count_at(std::size_t i) const { return counts_[i]; }
  std::uint64_t bucket_low(std::size_t i) const;   ///< Smallest value of bucket i.
  std::uint64_t bucket_high(std::size_t i) const;  ///< Largest value of bucket i.
  std::size_t index_of(std::uint64_t value) const;

 private:
  unsigned p_;          ///< Precision bits.
  std::uint64_t sub_;   ///< 2^p_: exact range, sub-buckets per octave.
  std::uint64_t half_;  ///< sub_ / 2: new buckets per octave above the exact range.
  std::vector<std::uint64_t> counts_;
  std::uint64_t samples_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace pmsb
