#include "stats/stats.hpp"

#include <cmath>

namespace pmsb {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  return n_ < 2 ? 0.0 : 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void LatencyStats::record(Cycle t_in, Cycle t_out) {
  PMSB_CHECK(t_out >= t_in, "negative latency");
  if (t_in < warmup_until_) return;
  hist_.add(static_cast<std::uint64_t>(t_out - t_in));
}

double normalized_throughput(std::uint64_t delivered, unsigned n_outputs, std::uint64_t slots) {
  if (n_outputs == 0 || slots == 0) return 0.0;
  return static_cast<double>(delivered) / (static_cast<double>(n_outputs) * static_cast<double>(slots));
}

}  // namespace pmsb
