// Integer-valued histogram with exact low range and clamped tail, used for
// latency distributions (cycles are small integers in these simulations).

#pragma once

#include <cstdint>
#include <vector>

#include "common/util.hpp"

namespace pmsb {

class Histogram {
 public:
  /// Values >= max_value are accumulated in the final (overflow) bucket.
  explicit Histogram(std::size_t max_value = 4096);

  void add(std::uint64_t value, std::uint64_t count = 1);

  std::uint64_t samples() const { return samples_; }
  std::uint64_t sum() const { return sum_; }
  double mean() const;

  /// q in [0,1]; returns the smallest value v with CDF(v) >= q.
  std::uint64_t percentile(double q) const;

  std::uint64_t min() const;
  std::uint64_t max() const;

  /// Count in bucket v (v < capacity; the last bucket holds the overflow).
  std::uint64_t bucket(std::size_t v) const;
  std::size_t capacity() const { return buckets_.size(); }

  void merge(const Histogram& other);
  void clear();

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t samples_ = 0;
  std::uint64_t sum_ = 0;  ///< Sum of *unclamped* values.
};

}  // namespace pmsb
