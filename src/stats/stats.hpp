// Experiment statistics: running moments, latency tracking with warmup,
// throughput/loss accounting. All counters are exact integers where the
// quantity is a count; floating point only enters at reporting time.

#pragma once

#include <cstdint>
#include <string>

#include "common/util.hpp"
#include "stats/hdr_histogram.hpp"

namespace pmsb {

/// Running mean / variance (Welford). For real-valued observations.
class RunningStats {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  /// Half-width of the ~95% normal confidence interval of the mean.
  double ci95_halfwidth() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Latency statistics with a warmup horizon: samples with an injection time
/// before `warmup_until` are discarded so transients do not pollute
/// steady-state measurements. Backed by a constant-memory HdrHistogram, so
/// tails are never clamped: p50/p90/p99/p99.9 are exact below
/// 2^precision_bits cycles and within 2^-precision_bits relative error
/// above, regardless of how long the run gets.
class LatencyStats {
 public:
  explicit LatencyStats(Cycle warmup_until = 0,
                        unsigned precision_bits = HdrHistogram::kDefaultPrecisionBits)
      : warmup_until_(warmup_until), hist_(precision_bits) {}

  void set_warmup(Cycle until) { warmup_until_ = until; }

  /// Record a delivery: injected at `t_in`, delivered (head) at `t_out`.
  void record(Cycle t_in, Cycle t_out);

  std::uint64_t samples() const { return hist_.samples(); }
  double mean() const { return hist_.mean(); }
  std::uint64_t p50() const { return hist_.p50(); }
  std::uint64_t p90() const { return hist_.p90(); }
  std::uint64_t p99() const { return hist_.p99(); }
  std::uint64_t p999() const { return hist_.p999(); }
  std::uint64_t min() const { return hist_.min(); }
  std::uint64_t max() const { return hist_.max(); }
  const HdrHistogram& histogram() const { return hist_; }

  /// Fold another tracker's samples in (warmup filtering already applied by
  /// the donor); precisions must match.
  void merge(const LatencyStats& other) { hist_.merge(other.hist_); }

 private:
  Cycle warmup_until_;
  HdrHistogram hist_;
};

/// Offered / carried / lost accounting for one run.
struct FlowCounts {
  std::uint64_t injected = 0;   ///< Cells offered to the device.
  std::uint64_t delivered = 0;  ///< Cells emitted on output links.
  std::uint64_t dropped = 0;    ///< Cells lost inside the device.

  std::uint64_t outstanding() const { return injected - delivered - dropped; }
  double loss_ratio() const {
    return injected == 0 ? 0.0 : static_cast<double>(dropped) / static_cast<double>(injected);
  }
};

/// Normalized throughput: delivered cells per output per slot.
double normalized_throughput(std::uint64_t delivered, unsigned n_outputs, std::uint64_t slots);

}  // namespace pmsb
