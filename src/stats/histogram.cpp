#include "stats/histogram.hpp"

#include <algorithm>

namespace pmsb {

Histogram::Histogram(std::size_t max_value) : buckets_(max_value + 1, 0) {
  PMSB_CHECK(max_value >= 1, "histogram needs at least two buckets");
}

void Histogram::add(std::uint64_t value, std::uint64_t count) {
  const std::size_t idx = std::min<std::uint64_t>(value, buckets_.size() - 1);
  buckets_[idx] += count;
  samples_ += count;
  sum_ += value * count;
}

double Histogram::mean() const {
  return samples_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(samples_);
}

std::uint64_t Histogram::percentile(double q) const {
  PMSB_CHECK(q >= 0.0 && q <= 1.0, "percentile out of [0,1]");
  if (samples_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(samples_ - 1)) + 1;
  std::uint64_t cum = 0;
  for (std::size_t v = 0; v < buckets_.size(); ++v) {
    cum += buckets_[v];
    if (cum >= target) return v;
  }
  return buckets_.size() - 1;
}

std::uint64_t Histogram::min() const {
  for (std::size_t v = 0; v < buckets_.size(); ++v) {
    if (buckets_[v] != 0) return v;
  }
  return 0;
}

std::uint64_t Histogram::max() const {
  for (std::size_t v = buckets_.size(); v-- > 0;) {
    if (buckets_[v] != 0) return v;
  }
  return 0;
}

std::uint64_t Histogram::bucket(std::size_t v) const {
  PMSB_CHECK(v < buckets_.size(), "bucket index out of range");
  return buckets_[v];
}

void Histogram::merge(const Histogram& other) {
  PMSB_CHECK(other.buckets_.size() == buckets_.size(), "histogram capacity mismatch");
  for (std::size_t v = 0; v < buckets_.size(); ++v) buckets_[v] += other.buckets_[v];
  samples_ += other.samples_;
  sum_ += other.sum_;
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  samples_ = 0;
  sum_ = 0;
}

}  // namespace pmsb
