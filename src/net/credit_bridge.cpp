// Header-only definitions live in credit_bridge.hpp; this translation unit
// exists so the build exercises the header standalone.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include "net/credit_bridge.hpp"
