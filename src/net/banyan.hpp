// DEPRECATED -- compatibility shim, kept for one release.
//
// BanyanNetwork is superseded by the unified construction path
// fabric::Fabric::build(net::Topology, fabric::FabricConfig): a
// net::Topology of kind kBanyan / kOmega / kClos builds the flit-level
// wormhole multistage fabric (src/fabric/worm.*), sharded and deterministic
// under both engines. New code must build through fabric::Fabric::build;
// this header will be removed in the release after next.
//
// Multistage (delta/banyan) network of pipelined-memory switches.
//
// "Such switches can be used by themselves, or they can be the building
//  blocks for larger, multi-stage switches and networks; our discussion
//  applies equally well to both uses." (section 2)
//
// An N x N network (N = r^stages) is built from stages of r x r
// PipelinedSwitch elements, wired in the classic delta pattern: the cell's
// destination is carried as a virtual-circuit id in the head tag, and a
// HeaderTranslator at every element input (the figure-6 RT block) selects
// the local output from the destination digit for that stage:
//
//     stage 0 routes on the most significant base-r digit, stage 1 on the
//     next digit, ...
//
// Internal contention is absorbed by each element's shared buffer (that is
// the point of the paper's architecture); cells lost to full element
// buffers are counted per stage.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/routing_table.hpp"
#include "core/switch.hpp"
#include "sim/engine.hpp"

namespace pmsb::net {

struct BanyanConfig {
  unsigned radix = 4;            ///< r: port count of each element.
  unsigned stages = 2;           ///< N = r^stages endpoints.
  unsigned word_bits = 16;
  unsigned capacity_cells = 64;  ///< Shared-buffer cells per element.
  bool cut_through = true;
};

class [[deprecated(
    "use fabric::Fabric::build with a multistage net::Topology "
    "(kBanyan/kOmega/kClos); this shim is removed next release")]] BanyanNetwork {
 public:
  explicit BanyanNetwork(const BanyanConfig& cfg);

  unsigned endpoints() const { return endpoints_; }
  const SwitchConfig& element_config() const { return elem_cfg_; }
  CellFormat cell_format() const { return elem_cfg_.cell_format(); }
  unsigned vc_bits() const { return vc_bits_; }

  /// External links. Drive inputs with heads whose VC field (low vc_bits of
  /// the tag) is the destination endpoint; the dest_bits field of the head
  /// is rewritten by the first stage's translators and may be anything.
  WireLink& in_link(unsigned endpoint);
  WireLink& out_link(unsigned endpoint);

  /// Register every element and translator with an engine.
  void attach(Engine& eng);

  /// Cells lost inside stage s elements (buffer overflow).
  std::uint64_t drops_in_stage(unsigned s) const;
  std::uint64_t total_drops() const;
  bool drained() const;

  PipelinedSwitch& element(unsigned stage, unsigned index);

 private:
  BanyanConfig cfg_;
  SwitchConfig elem_cfg_;
  unsigned endpoints_;
  unsigned elems_per_stage_;
  unsigned vc_bits_;

  /// switches_[stage][element]
  std::vector<std::vector<std::unique_ptr<PipelinedSwitch>>> switches_;
  std::vector<std::unique_ptr<RoutingTable>> tables_;  ///< One per stage.
  std::vector<std::unique_ptr<HeaderTranslator>> translators_;
  /// Wires feeding each stage's translator inputs; wires_[0] are the
  /// network's external input links.
  std::vector<std::vector<std::unique_ptr<WireLink>>> wires_;
  std::unique_ptr<WireTicker> ticker_;
};

}  // namespace pmsb::net
