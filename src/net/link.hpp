// Flit-level network links with credit-based flow control (the Telegraphos
// switches use credit-based flow control on their links, section 4.2).
//
// A NetFlit is one link-cycle of a wormhole message: head carries the route,
// body/tail follow the path the head opened. CreditCounter tracks the
// downstream buffer space the sender may still consume; credits return when
// the downstream router forwards a flit onward.

#pragma once

#include <cstdint>

#include "common/util.hpp"

namespace pmsb::net {

struct NetFlit {
  bool valid = false;
  bool head = false;
  bool tail = false;
  std::uint32_t dest = 0;    ///< Destination node id (meaningful in the head).
  std::uint64_t msg_id = 0;
  std::uint32_t seq = 0;     ///< Flit index within the message.
  std::uint32_t lane = 0;    ///< Virtual-channel lane at the receiving input.
  Cycle created = 0;         ///< Injection cycle of the message (head).
};

class CreditCounter {
 public:
  explicit CreditCounter(unsigned initial = 0) : credits_(initial) {}

  void reset(unsigned initial) { credits_ = initial; }
  bool available() const { return credits_ > 0; }
  unsigned count() const { return credits_; }

  void consume() {
    PMSB_CHECK(credits_ > 0, "flit sent without a credit (flow-control violation)");
    --credits_;
  }
  void restore(unsigned max_credits) {
    ++credits_;
    PMSB_CHECK(credits_ <= max_credits, "credit counter overflow (duplicate credit return)");
  }

 private:
  unsigned credits_;
};

}  // namespace pmsb::net
