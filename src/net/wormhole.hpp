// DEPRECATED -- compatibility shim, kept for one release.
//
// WormholeNetwork is superseded by the unified construction path
// fabric::Fabric::build(net::Topology, fabric::FabricConfig) with a
// multistage topology kind (kBanyan / kOmega / kClos), which runs the same
// flit-level virtual-channel wormhole transport (src/fabric/worm.*) under
// both the barrier and dataflow engines, deterministically at any thread
// count. New code must build through fabric::Fabric::build; this header
// will be removed in the release after next.
//
// WormholeNetwork: a full network of single-lane wormhole routers with
// credit flow control, used to reproduce the paper's bursty-traffic citation
// (section 2.1, [Dally90 fig. 8, 1 lane]: 20-flit messages, 16-flit buffers,
// saturation near 25% of link capacity) and as the multi-switch substrate of
// the cluster example.
//
// The network advances in two phases per cycle (decide, then apply), so all
// routing/arbitration decisions see only the previous cycle's state --
// cycle-accurate at flit granularity. Link traversal costs one cycle.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "net/node.hpp"
#include "net/topology.hpp"
#include "stats/stats.hpp"

namespace pmsb::net {

struct WormholeConfig {
  Topology topo{TopologyKind::kMesh2D, 8, 8};
  unsigned buffer_flits = 16;    ///< TOTAL input buffering per router port.
  unsigned message_flits = 20;   ///< Message length.
  unsigned lanes = 1;            ///< Virtual channels per link ([Dally90]);
                                 ///< buffer_flits is split across lanes.
  double injection_rate = 0.1;   ///< Offered load, flits/node/cycle.
  std::uint64_t seed = 1;
};

class [[deprecated(
    "use fabric::Fabric::build with a multistage net::Topology "
    "(kBanyan/kOmega/kClos); this shim is removed next release")]] WormholeNetwork {
 public:
  explicit WormholeNetwork(const WormholeConfig& cfg);

  /// Advance one cycle.
  void step();

  /// Run for `cycles` cycles.
  void run(Cycle cycles, Cycle warmup = 0);

  // --- results ---
  std::uint64_t messages_injected() const { return injected_; }
  std::uint64_t messages_delivered() const { return delivered_; }
  std::uint64_t flits_delivered() const { return flits_delivered_; }

  /// Accepted throughput in flits/node/cycle over the measured window.
  double accepted_throughput() const;

  /// Message latency (injection of head to ejection of tail), post-warmup.
  const LatencyStats& latency() const { return latency_; }

  /// Total flits waiting in source queues (grows without bound past
  /// saturation -- the saturation detector of bench E2).
  std::uint64_t source_backlog_flits() const;

  Cycle now() const { return now_; }

 private:
  struct Source {
    std::deque<NetFlit> backlog;  ///< Flits waiting to enter the local port.
  };
  struct SinkState {
    // Tail arrival closes the measurement; heads carry `created`.
    Cycle head_created = 0;
  };
  /// One-cycle link pipeline entry.
  struct InFlight {
    bool valid = false;
    NetFlit flit;
    unsigned dst_node = 0;
    Port dst_port = kLocal;
  };

  void inject(Cycle t);

  WormholeConfig cfg_;
  Rng rng_;
  std::vector<WormholeRouter> routers_;
  std::vector<Source> sources_;
  std::vector<SinkState> sinks_;

  /// Credits held by (node, output port, lane) toward the downstream lane.
  std::vector<std::vector<CreditCounter>> credits_;  ///< [node][out*lanes+lane]
  unsigned lane_depth_ = 0;
  /// Flits on the wires (delivered at the start of next cycle).
  std::vector<InFlight> wires_;
  /// Credits on their way back: (node, port*lanes+lane) granted next cycle.
  std::vector<std::pair<unsigned, unsigned>> credit_returns_;

  Cycle now_ = 0;
  Cycle measure_from_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t flits_delivered_ = 0;
  std::uint64_t flits_delivered_measured_ = 0;
  std::uint64_t next_msg_id_ = 0;
  LatencyStats latency_;

};

}  // namespace pmsb::net
