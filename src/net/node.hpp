// A wormhole router with 1..L virtual-channel lanes per physical link
// ([Dally90]). The paper cites the "1 lane" curve of Dally's figure 8 --
// input-queued wormhole switching whose messages are longer than its buffers
// saturates near 25% of capacity; Dally's own remedy is lanes. The model
// supports both, at CONSTANT total buffer storage per input port (depth is
// split across lanes), so bench E2 can show the 1-lane collapse and the
// multi-lane recovery on equal silicon.
//
// Five ports (E, W, N, S, Local). Each input port has `lanes` flit FIFOs.
// A message acquires one downstream lane at its head (virtual-channel
// allocation), holds it to its tail, and its flits carry the lane id. Lanes
// of one physical output share the link one flit per cycle, round-robin.
// Routing is XY; with lanes >= 1 on a mesh this stays deadlock-free.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/arbiter.hpp"
#include "net/link.hpp"
#include "net/topology.hpp"

namespace pmsb::net {

class WormholeRouter {
 public:
  /// `buffer_flits` is the TOTAL buffering per input port, divided evenly
  /// over `lanes` (must divide it).
  WormholeRouter(unsigned node_id, const Topology& topo, unsigned buffer_flits,
                 unsigned lanes = 1);

  unsigned id() const { return id_; }
  unsigned lanes() const { return lanes_; }
  unsigned lane_depth() const { return depth_; }

  bool can_accept(Port port, unsigned lane) const {
    return fifo(port, lane).size() < depth_;
  }
  std::size_t occupancy(Port port, unsigned lane) const { return fifo(port, lane).size(); }

  /// Deliver a flit into input (port, flit.lane) -- apply phase.
  void accept(Port port, const NetFlit& f);

  /// One decided move: forward the front flit of input (in_port, in_lane)
  /// through `out`, retagged to downstream lane `out_lane`.
  struct Move {
    bool valid = false;
    unsigned in_port = 0;
    unsigned in_lane = 0;
    unsigned out_lane = 0;
  };

  /// Decision phase: for every output port choose at most one move.
  /// credit_ok(out, lane) = downstream lane has buffer space.
  void decide(const std::function<bool(unsigned out, unsigned lane)>& credit_ok,
              std::vector<Move>& moves);

  /// Apply a decided move: pop the flit, retag its lane, release the lane
  /// ownership on tail. Returns the (retagged) flit.
  NetFlit pop_for(Port out, const Move& m);

  bool idle() const;

 private:
  struct LaneOwner {
    int in_port = -1;  ///< -1 = free.
    unsigned in_lane = 0;
  };

  std::deque<NetFlit>& fifo(unsigned port, unsigned lane) {
    return fifo_[port * lanes_ + lane];
  }
  const std::deque<NetFlit>& fifo(unsigned port, unsigned lane) const {
    return fifo_[port * lanes_ + lane];
  }
  LaneOwner& owner(unsigned out, unsigned lane) { return owner_[out * lanes_ + lane]; }

  unsigned id_;
  const Topology* topo_;
  unsigned lanes_;
  unsigned depth_;  ///< Per lane.
  std::vector<std::deque<NetFlit>> fifo_;   ///< [port * lanes + lane]
  std::vector<LaneOwner> owner_;            ///< [out * lanes + lane]
  std::vector<pmsb::RoundRobin> lane_rr_;   ///< Per output: among owned lanes.
  std::vector<pmsb::RoundRobin> head_rr_;   ///< Per output: among waiting heads.
};

}  // namespace pmsb::net
