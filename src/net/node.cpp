#include "net/node.hpp"

namespace pmsb::net {

WormholeRouter::WormholeRouter(unsigned node_id, const Topology& topo, unsigned buffer_flits,
                               unsigned lanes)
    : id_(node_id), topo_(&topo), lanes_(lanes), depth_(buffer_flits / lanes),
      fifo_(static_cast<std::size_t>(kNumPorts) * lanes),
      owner_(static_cast<std::size_t>(kNumPorts) * lanes),
      lane_rr_(kNumPorts, pmsb::RoundRobin(lanes)),
      head_rr_(kNumPorts, pmsb::RoundRobin(kNumPorts * lanes)) {
  PMSB_CHECK(lanes >= 1, "need at least one lane");
  PMSB_CHECK(buffer_flits >= lanes && buffer_flits % lanes == 0,
             "total buffering must divide evenly over the lanes");
}

void WormholeRouter::accept(Port port, const NetFlit& f) {
  PMSB_CHECK(f.lane < lanes_, "flit lane out of range");
  auto& q = fifo(port, f.lane);
  PMSB_CHECK(q.size() < depth_, "router lane buffer overflow (credit bug)");
  q.push_back(f);
}

void WormholeRouter::decide(const std::function<bool(unsigned, unsigned)>& credit_ok,
                            std::vector<Move>& moves) {
  moves.assign(kNumPorts, Move{});
  for (unsigned out = 0; out < kNumPorts; ++out) {
    // Pass 1: lanes already owned by an in-flight message advance, fairly
    // interleaved on the physical link.
    const int dl = lane_rr_[out].pick([&](unsigned lane) {
      const LaneOwner& own = owner(out, lane);
      if (own.in_port < 0) return false;
      if (!credit_ok(out, lane)) return false;
      const auto& q = fifo(static_cast<unsigned>(own.in_port), own.in_lane);
      if (q.empty() || q.front().head) return false;  // Body not arrived yet.
      return true;
    });
    if (dl >= 0) {
      const LaneOwner& own = owner(out, static_cast<unsigned>(dl));
      moves[out] = Move{true, static_cast<unsigned>(own.in_port), own.in_lane,
                        static_cast<unsigned>(dl)};
      continue;
    }
    // Pass 2: allocate a free downstream lane to a waiting head.
    int free_lane = -1;
    for (unsigned lane = 0; lane < lanes_; ++lane) {
      if (owner(out, lane).in_port < 0 && credit_ok(out, lane)) {
        free_lane = static_cast<int>(lane);
        break;
      }
    }
    if (free_lane < 0) continue;
    const int src = head_rr_[out].pick([&](unsigned idx) {
      const unsigned p = idx / lanes_, l = idx % lanes_;
      const auto& q = fifo(p, l);
      if (q.empty() || !q.front().head) return false;
      return topo_->route_xy(id_, q.front().dest) == static_cast<Port>(out);
    });
    if (src < 0) continue;
    const unsigned p = static_cast<unsigned>(src) / lanes_;
    const unsigned l = static_cast<unsigned>(src) % lanes_;
    owner(out, static_cast<unsigned>(free_lane)) = LaneOwner{static_cast<int>(p), l};
    moves[out] = Move{true, p, l, static_cast<unsigned>(free_lane)};
  }
}

NetFlit WormholeRouter::pop_for(Port out, const Move& m) {
  auto& q = fifo(m.in_port, m.in_lane);
  PMSB_CHECK(!q.empty(), "pop from empty router lane");
  NetFlit f = q.front();
  q.pop_front();
  f.lane = m.out_lane;  // Retag for the downstream input lane.
  if (f.tail) owner(out, m.out_lane) = LaneOwner{};
  return f;
}

bool WormholeRouter::idle() const {
  for (const auto& q : fifo_) {
    if (!q.empty()) return false;
  }
  for (const auto& o : owner_) {
    if (o.in_port >= 0) return false;
  }
  return true;
}

}  // namespace pmsb::net
