// DEPRECATED -- compatibility shim, kept for one release.
//
// CreditBridge is superseded by the fabric engine's built-in credit
// backpressure: fabric::Fabric::build wires lossless credit loops (cell
// fabrics) and per-lane flit credits (wormhole fabrics) itself, so no
// hand-assembled bridge is needed. New code must build through
// fabric::Fabric::build; this header will be removed in the release after
// next.
//
// Credit-based flow control between two cycle-accurate switches.
//
// Telegraphos links are flow-controlled with credits (the outgoing-link
// logic of section 4.2 includes "the credit-based flow control"). A
// CreditBridge connects one switch's output link to another switch's input
// link and holds `credits` = the number of downstream buffer cells this link
// is allowed to occupy:
//
//   * the upstream switch's output gate (PipelinedSwitch::set_output_gate)
//     consults has_credit(): a packet transmission may start only when a
//     credit remains;
//   * the bridge consumes one credit when it forwards a head word;
//   * the downstream switch returns the credit when it initiates the cell's
//     read wave -- the moment its buffer address is recycled -- signalled
//     through its on_read_grant event (which carries the arrival input).
//
// With per-link credits K and downstream capacity >= n*K cells, the
// downstream buffer can never overflow: every buffered-or-arriving cell
// holds a credit until its address is freed. Verified under sustained
// overload in tests/test_net.cpp.
//
// The bridge also supports an optional head-rewrite hook so multi-hop
// routing (cf. examples/cluster_lan.cpp) can retarget the local output
// field at each hop.

#pragma once

#include <functional>

#include "common/cell.hpp"
#include "net/link.hpp"
#include "sim/engine.hpp"
#include "sim/wire.hpp"

namespace pmsb::net {

class [[deprecated(
    "fabric::Fabric::build wires credit backpressure itself; this shim is "
    "removed next release")]] CreditBridge : public Component {
 public:
  CreditBridge(WireLink* from, WireLink* to, unsigned credits)
      : from_(from), to_(to), max_credits_(credits), credits_(credits) {
    PMSB_CHECK(from != nullptr && to != nullptr, "bridge needs both links");
    PMSB_CHECK(credits >= 1, "a creditless link can never start a packet");
  }

  /// For the upstream switch's output gate.
  bool has_credit() const { return credits_.available(); }
  unsigned credits() const { return credits_.count(); }

  /// Wire this to the downstream switch's on_read_grant for cells whose
  /// `input` is the port this bridge feeds.
  void on_downstream_released() { credits_.restore(max_credits_); }

  /// Optional per-head rewrite (e.g. next-hop routing field update).
  void set_head_rewrite(std::function<Word(Word)> fn) { rewrite_ = std::move(fn); }

  void eval(Cycle) override {
    const Flit& f = from_->now();
    if (!f.valid) return;
    Flit out = f;
    if (f.sop) {
      // The upstream arbiter checked the gate before starting this packet;
      // consume the credit it was granted against.
      credits_.consume();
      if (rewrite_) out.data = rewrite_(f.data);
    }
    to_->drive_next(out);
    ++flits_forwarded_;
  }
  void commit(Cycle) override {}
  bool has_commit() const override { return false; }
  std::string name() const override { return "credit_bridge"; }

  std::uint64_t flits_forwarded() const { return flits_forwarded_; }

 private:
  WireLink* from_;
  WireLink* to_;
  unsigned max_credits_;
  CreditCounter credits_;
  std::function<Word(Word)> rewrite_;
  std::uint64_t flits_forwarded_ = 0;
};

}  // namespace pmsb::net
