// This translation unit *implements* the deprecated shim.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include "net/wormhole.hpp"

namespace pmsb::net {

// opposite(Port) now comes from net/topology.hpp.

WormholeNetwork::WormholeNetwork(const WormholeConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), latency_(0) {
  PMSB_CHECK(cfg.message_flits >= 1, "messages need at least one flit");
  PMSB_CHECK(cfg.injection_rate > 0.0 && cfg.injection_rate <= 1.0,
             "injection rate must be in (0, 1]");
  PMSB_CHECK(cfg.lanes >= 1, "need at least one lane");
  const unsigned n = cfg.topo.nodes();
  lane_depth_ = cfg.buffer_flits / cfg.lanes;
  routers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    routers_.emplace_back(i, cfg_.topo, cfg.buffer_flits, cfg.lanes);
  sources_.resize(n);
  credits_.resize(n);
  for (unsigned i = 0; i < n; ++i) {
    credits_[i].assign(static_cast<std::size_t>(kNumPorts) * cfg.lanes,
                       CreditCounter(lane_depth_));
  }
}

void WormholeNetwork::inject(Cycle t) {
  const double p_msg = cfg_.injection_rate / cfg_.message_flits;
  for (unsigned node = 0; node < routers_.size(); ++node) {
    Source& src = sources_[node];
    if (rng_.next_bool(p_msg)) {
      unsigned dest;
      do {
        dest = static_cast<unsigned>(rng_.next_below(routers_.size()));
      } while (dest == node && routers_.size() > 1);
      const std::uint64_t id = next_msg_id_++;
      const auto lane = static_cast<std::uint32_t>(id % cfg_.lanes);
      for (unsigned k = 0; k < cfg_.message_flits; ++k) {
        NetFlit f;
        f.valid = true;
        f.head = (k == 0);
        f.tail = (k + 1 == cfg_.message_flits);
        f.dest = dest;
        f.msg_id = id;
        f.seq = k;
        f.lane = lane;
        f.created = t;
        src.backlog.push_back(f);
      }
      ++injected_;
    }
    // The terminal feeds at most one flit per cycle into the local port,
    // on the lane its message was assigned.
    if (!src.backlog.empty() &&
        routers_[node].can_accept(kLocal, src.backlog.front().lane)) {
      routers_[node].accept(kLocal, src.backlog.front());
      src.backlog.pop_front();
    }
  }
}

void WormholeNetwork::step() {
  const Cycle t = now_;

  // 1. Wire delivery: flits launched last cycle land in downstream FIFOs.
  for (auto& w : wires_) {
    if (!w.valid) continue;
    routers_[w.dst_node].accept(w.dst_port, w.flit);
    w.valid = false;
  }
  wires_.clear();

  // 2. Credits granted last cycle become spendable.
  for (const auto& [node, slot] : credit_returns_) {
    credits_[node][slot].restore(lane_depth_);
  }
  credit_returns_.clear();

  // 3. New traffic.
  inject(t);

  // 4. Decide everywhere against the same state, then apply.
  std::vector<std::vector<WormholeRouter::Move>> decisions(routers_.size());
  for (unsigned r = 0; r < routers_.size(); ++r) {
    routers_[r].decide(
        [&](unsigned out, unsigned lane) {
          if (out == kLocal) return true;  // Ejection always drains.
          if (cfg_.topo.neighbor(r, static_cast<Port>(out)) < 0) return false;
          return credits_[r][out * cfg_.lanes + lane].available();
        },
        decisions[r]);
  }
  for (unsigned r = 0; r < routers_.size(); ++r) {
    for (unsigned out = 0; out < kNumPorts; ++out) {
      const WormholeRouter::Move& m = decisions[r][out];
      if (!m.valid) continue;
      const NetFlit f = routers_[r].pop_for(static_cast<Port>(out), m);
      // Popping freed a slot in input lane (m.in_port, m.in_lane): return a
      // credit to the upstream sender of that lane.
      if (m.in_port != kLocal) {
        const int nb = cfg_.topo.neighbor(r, static_cast<Port>(m.in_port));
        PMSB_CHECK(nb >= 0, "flit arrived through a nonexistent link");
        credit_returns_.emplace_back(
            static_cast<unsigned>(nb),
            opposite(static_cast<Port>(m.in_port)) * cfg_.lanes + m.in_lane);
      }
      if (out == kLocal) {
        PMSB_CHECK(f.dest == r, "ejected flit at the wrong node");
        ++flits_delivered_;
        if (t >= measure_from_) ++flits_delivered_measured_;
        if (f.tail) {
          ++delivered_;
          latency_.record(f.created, t);
        }
      } else {
        credits_[r][out * cfg_.lanes + f.lane].consume();
        InFlight w;
        w.valid = true;
        w.flit = f;
        w.dst_node = static_cast<unsigned>(cfg_.topo.neighbor(r, static_cast<Port>(out)));
        w.dst_port = opposite(static_cast<Port>(out));
        wires_.push_back(w);
      }
    }
  }
  ++now_;
}

void WormholeNetwork::run(Cycle cycles, Cycle warmup) {
  latency_.set_warmup(warmup);
  measure_from_ = warmup;
  for (Cycle c = 0; c < cycles; ++c) step();
}

double WormholeNetwork::accepted_throughput() const {
  const Cycle measured = now_ - measure_from_;
  if (measured <= 0) return 0.0;
  return static_cast<double>(flits_delivered_measured_) /
         (static_cast<double>(routers_.size()) * static_cast<double>(measured));
}

std::uint64_t WormholeNetwork::source_backlog_flits() const {
  std::uint64_t total = 0;
  for (const auto& s : sources_) total += s.backlog.size();
  return total;
}

}  // namespace pmsb::net
