// Header-only definitions live in link.hpp; this translation unit exists so
// the build exercises the header standalone (include-what-you-use hygiene).
#include "net/link.hpp"
