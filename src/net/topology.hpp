// Topology helpers for multi-switch networks: 2D mesh / torus / ring
// coordinate arithmetic and dimension-order (XY) routing.

#pragma once

#include <cstdint>
#include <string>

#include "common/util.hpp"

namespace pmsb::net {

enum class TopologyKind { kMesh2D, kTorus2D, kRing };

/// Router port roles for a 2D network (plus the terminal port).
enum Port : unsigned { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3, kLocal = 4, kNumPorts = 5 };

/// The port on the receiving router that faces a transmission through
/// `port` (east <-> west, north <-> south).
Port opposite(Port port);

struct Topology {
  TopologyKind kind = TopologyKind::kMesh2D;
  unsigned width = 4;   ///< Columns (or ring length).
  unsigned height = 4;  ///< Rows (1 for ring).

  unsigned nodes() const { return width * height; }
  unsigned x_of(unsigned node) const { return node % width; }
  unsigned y_of(unsigned node) const { return node / width; }
  unsigned node_at(unsigned x, unsigned y) const { return y * width + x; }

  /// Neighbour of `node` through `port`, or -1 at a mesh edge.
  int neighbor(unsigned node, Port port) const;

  /// Dimension-order (X then Y) routing: the output port a head flit at
  /// `node` destined to `dest` must take. kLocal when node == dest.
  /// For tori, routes take the shorter direction (ties go positive).
  Port route_xy(unsigned node, unsigned dest) const;

  /// Router ports a node of this topology needs: 2 for a ring (east/west),
  /// 4 for the 2D fabrics.
  unsigned required_ports() const { return kind == TopologyKind::kRing ? 2u : 4u; }

  /// Length of the route_xy path from `a` to `b` in links. 0 when a == b.
  unsigned hops(unsigned a, unsigned b) const;

  /// Maximum hops() over all node pairs. Bounds how far apart two nodes'
  /// local clocks can drift in the dataflow fabric engine (skew <=
  /// diameter * link lookahead), which sizes its sampling-frame ring.
  unsigned diameter() const;

  /// Human-readable form for banners and tables, e.g. "torus2d 8x8".
  std::string describe() const;
};

}  // namespace pmsb::net
