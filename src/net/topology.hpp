// Topology helpers for multi-switch networks.
//
// Two families share one struct:
//
//  * Direct networks (kMesh2D / kTorus2D / kRing): every node is a switch
//    with an attached endpoint; coordinate arithmetic plus dimension-order
//    (XY) routing.
//
//  * Multistage interconnection networks (kBanyan / kOmega / kClos): nodes
//    are *switching elements* arranged in stages() columns of
//    elements_per_stage() elements each; endpoints attach only at the first
//    stage's inputs and the last stage's outputs. Per-stage routing is a
//    single destination-address digit test (route_stage), per the classic
//    banyan construction: stage s of a log2(N)-stage network corrects bit
//    n-1-s of the line number, so a head flit needs no routing table at all.
//
//    - kBanyan: the butterfly wiring. Element e at stage s switches the two
//      lines that differ in bit k_s = n-1-s; line numbers are preserved
//      between stages.
//    - kOmega: a perfect shuffle (rotate-left of the n-bit line number)
//      precedes every stage; elements pair consecutive shuffled lines.
//    - kClos: the 3-stage symmetric Clos C(k, k, k): k ingress, k middle and
//      k egress elements of k ports each, N = k^2 endpoints. Ingress j's
//      output p reaches middle p's input j; middle m's output q reaches
//      egress q's input m. The middle element is picked deterministically
//      per message ((in_port + dest) % k) so load spreads without a global
//      scheduler.

#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "common/util.hpp"

namespace pmsb::net {

enum class TopologyKind { kMesh2D, kTorus2D, kRing, kBanyan, kOmega, kClos };

/// Router port roles for a 2D network (plus the terminal port).
enum Port : unsigned { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3, kLocal = 4, kNumPorts = 5 };

/// The port on the receiving router that faces a transmission through
/// `port` (east <-> west, north <-> south). Direct networks only.
Port opposite(Port port);

struct Topology {
  TopologyKind kind = TopologyKind::kMesh2D;
  unsigned width = 4;   ///< Columns; ring length; multistage: endpoints N.
  unsigned height = 4;  ///< Rows (1 for ring and every multistage kind).
  unsigned radix = 2;   ///< kClos element size k (N must equal k*k); fixed 2
                        ///< for kBanyan / kOmega, ignored by direct kinds.

  bool multistage() const {
    return kind == TopologyKind::kBanyan || kind == TopologyKind::kOmega ||
           kind == TopologyKind::kClos;
  }

  /// Terminals that inject/eject traffic: every node for direct networks,
  /// `width` first-stage inputs / last-stage outputs for multistage kinds.
  unsigned endpoints() const { return multistage() ? width : nodes(); }

  /// Multistage column count: log2(N) for banyan/omega, 3 for Clos.
  /// 0 for direct networks.
  unsigned stages() const;

  /// Elements per multistage column: N/2 for banyan/omega, k for Clos.
  unsigned elements_per_stage() const;

  /// Switching nodes: width*height for direct networks,
  /// stages() * elements_per_stage() for multistage kinds (node id =
  /// stage * elements_per_stage() + element).
  unsigned nodes() const {
    return multistage() ? stages() * elements_per_stage() : width * height;
  }
  unsigned stage_of(unsigned node) const { return node / elements_per_stage(); }
  unsigned element_of(unsigned node) const { return node % elements_per_stage(); }
  unsigned node_id(unsigned stage, unsigned element) const {
    return stage * elements_per_stage() + element;
  }

  unsigned x_of(unsigned node) const { return node % width; }
  unsigned y_of(unsigned node) const { return node / width; }
  unsigned node_at(unsigned x, unsigned y) const { return y * width + x; }

  /// Direct networks: neighbour of `node` through `port`, or -1 at a mesh
  /// edge. Multistage kinds: the next-stage element reached through output
  /// `port` (use the unsigned overload for Clos radix > 4), or -1 from the
  /// last stage (those outputs face egress endpoints, not elements).
  int neighbor(unsigned node, Port port) const;
  int neighbor(unsigned node, unsigned out_port) const;

  /// Multistage: the input port on neighbor(node, out_port) that this link
  /// drives (the analogue of opposite() for stage wiring).
  unsigned peer_in_port(unsigned node, unsigned out_port) const;

  /// Multistage ingress: the (first-stage node, input port) endpoint `e`
  /// injects into.
  std::pair<unsigned, unsigned> ingress_of(unsigned endpoint) const;

  /// Multistage egress: the endpoint behind output `out_port` of last-stage
  /// `node`.
  unsigned egress_endpoint(unsigned node, unsigned out_port) const;

  /// Multistage per-stage routing: the output port a head flit at `node`
  /// (arrived on `in_port`) must take toward endpoint `dest`. For banyan
  /// and omega this is the single destination-bit test (bit n-1-s at stage
  /// s); for Clos it is the middle spread rule at the ingress stage and a
  /// destination-digit test after.
  unsigned route_stage(unsigned node, unsigned in_port, unsigned dest) const;

  /// Dimension-order (X then Y) routing: the output port a head flit at
  /// `node` destined to `dest` must take. kLocal when node == dest.
  /// For tori, routes take the shorter direction (ties go positive).
  /// Direct networks only.
  Port route_xy(unsigned node, unsigned dest) const;

  /// Router ports a node of this topology needs: 2 for a ring (east/west)
  /// and for banyan/omega elements, `radix` for Clos elements, 4 for the
  /// 2D fabrics.
  unsigned required_ports() const {
    if (kind == TopologyKind::kRing) return 2;
    if (kind == TopologyKind::kBanyan || kind == TopologyKind::kOmega) return 2;
    if (kind == TopologyKind::kClos) return radix;
    return 4;
  }

  /// Direct networks: length of the route_xy path from `a` to `b` in links
  /// (0 when a == b). Multistage kinds: inter-element links on the unique
  /// (banyan/omega) or chosen (Clos) path between endpoints `a` and `b` --
  /// stages() - 1 for every pair, including a == b (a message to self still
  /// traverses the whole network; there is no local bypass).
  unsigned hops(unsigned a, unsigned b) const;

  /// Maximum hops() over all node pairs. Bounds how far apart two nodes'
  /// local clocks can drift in the dataflow fabric engine (skew <=
  /// diameter * link lookahead), which sizes its sampling-frame ring. For
  /// multistage kinds the *dependency* graph also carries reverse credit
  /// links, so the fabric sizes that ring from stages() instead.
  unsigned diameter() const;

  /// Human-readable form for banners and tables, e.g. "torus2d 8x8",
  /// "banyan 16", "clos 16 (radix 4)".
  std::string describe() const;
};

}  // namespace pmsb::net
