// Topology helpers for multi-switch networks: 2D mesh / torus / ring
// coordinate arithmetic and dimension-order (XY) routing.

#pragma once

#include <cstdint>

#include "common/util.hpp"

namespace pmsb::net {

enum class TopologyKind { kMesh2D, kTorus2D, kRing };

/// Router port roles for a 2D network (plus the terminal port).
enum Port : unsigned { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3, kLocal = 4, kNumPorts = 5 };

struct Topology {
  TopologyKind kind = TopologyKind::kMesh2D;
  unsigned width = 4;   ///< Columns (or ring length).
  unsigned height = 4;  ///< Rows (1 for ring).

  unsigned nodes() const { return width * height; }
  unsigned x_of(unsigned node) const { return node % width; }
  unsigned y_of(unsigned node) const { return node / width; }
  unsigned node_at(unsigned x, unsigned y) const { return y * width + x; }

  /// Neighbour of `node` through `port`, or -1 at a mesh edge.
  int neighbor(unsigned node, Port port) const;

  /// Dimension-order (X then Y) routing: the output port a head flit at
  /// `node` destined to `dest` must take. kLocal when node == dest.
  /// For tori, routes take the shorter direction (ties go positive).
  Port route_xy(unsigned node, unsigned dest) const;
};

}  // namespace pmsb::net
