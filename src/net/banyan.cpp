// This translation unit *implements* the deprecated shim.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include "net/banyan.hpp"

#include <stdexcept>

namespace pmsb::net {

namespace {
unsigned ipow(unsigned base, unsigned exp) {
  unsigned v = 1;
  while (exp--) v *= base;
  return v;
}
}  // namespace

BanyanNetwork::BanyanNetwork(const BanyanConfig& cfg) : cfg_(cfg) {
  if (cfg.radix < 2) throw std::invalid_argument("banyan radix must be >= 2");
  if (cfg.stages < 1) throw std::invalid_argument("banyan needs at least one stage");
  endpoints_ = ipow(cfg.radix, cfg.stages);
  elems_per_stage_ = endpoints_ / cfg.radix;
  vc_bits_ = bits_for(endpoints_);

  elem_cfg_.n_ports = cfg.radix;
  elem_cfg_.word_bits = cfg.word_bits;
  elem_cfg_.cell_words = 2 * cfg.radix;
  elem_cfg_.capacity_segments = cfg.capacity_cells;
  elem_cfg_.cut_through = cfg.cut_through;
  elem_cfg_.validate();
  if (vc_bits_ > elem_cfg_.cell_format().tag_bits())
    throw std::invalid_argument("word width too small to carry the endpoint id");

  // Elements.
  switches_.resize(cfg.stages);
  for (unsigned s = 0; s < cfg.stages; ++s) {
    for (unsigned e = 0; e < elems_per_stage_; ++e)
      switches_[s].push_back(std::make_unique<PipelinedSwitch>(elem_cfg_));
  }

  // One destination-digit routing table per stage (MSB-first digits).
  for (unsigned s = 0; s < cfg.stages; ++s) {
    auto rt = std::make_unique<RoutingTable>(vc_bits_);
    const unsigned div = ipow(cfg.radix, cfg.stages - 1 - s);
    for (unsigned dest = 0; dest < endpoints_; ++dest)
      rt->program(dest, static_cast<std::uint16_t>((dest / div) % cfg.radix), dest);
    tables_.push_back(std::move(rt));
  }

  // External input wires + ticker.
  ticker_ = std::make_unique<WireTicker>();
  wires_.resize(1);
  for (unsigned j = 0; j < endpoints_; ++j) {
    wires_[0].push_back(std::make_unique<WireLink>());
    ticker_->add(wires_[0].back().get());
  }

  // Stage-0 translators: external wire j -> element j/r, port j%r.
  const CellFormat fmt = elem_cfg_.cell_format();
  for (unsigned j = 0; j < endpoints_; ++j) {
    translators_.push_back(std::make_unique<HeaderTranslator>(
        wires_[0][j].get(), &switches_[0][j / cfg.radix]->in_link(j % cfg.radix), fmt,
        tables_[0].get()));
  }
  // Inter-stage translators: delta wiring. From (s, e, p) the cell enters
  // the p-th sub-network of e's block; with m = r^(stages-1-s) elements per
  // block at stage s, b = e/m, l = e%m:
  //   next element = b*m + p*(m/r) + l/r,  next port = l % r.
  for (unsigned s = 0; s + 1 < cfg.stages; ++s) {
    const unsigned m = ipow(cfg.radix, cfg.stages - 1 - s);
    for (unsigned e = 0; e < elems_per_stage_; ++e) {
      for (unsigned p = 0; p < cfg.radix; ++p) {
        const unsigned b = e / m, l = e % m;
        const unsigned ne = b * m + p * (m / cfg.radix) + l / cfg.radix;
        const unsigned nq = l % cfg.radix;
        translators_.push_back(std::make_unique<HeaderTranslator>(
            &switches_[s][e]->out_link(p), &switches_[s + 1][ne]->in_link(nq), fmt,
            tables_[s + 1].get()));
      }
    }
  }
}

WireLink& BanyanNetwork::in_link(unsigned endpoint) { return *wires_[0].at(endpoint); }

WireLink& BanyanNetwork::out_link(unsigned endpoint) {
  return switches_.back().at(endpoint / cfg_.radix)->out_link(endpoint % cfg_.radix);
}

void BanyanNetwork::attach(Engine& eng) {
  for (auto& t : translators_) eng.add(t.get());
  for (auto& stage : switches_) {
    for (auto& sw : stage) eng.add(sw.get());
  }
  eng.add(ticker_.get());
}

std::uint64_t BanyanNetwork::drops_in_stage(unsigned s) const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_.at(s)) total += sw->stats().dropped();
  return total;
}

std::uint64_t BanyanNetwork::total_drops() const {
  std::uint64_t total = 0;
  for (unsigned s = 0; s < cfg_.stages; ++s) total += drops_in_stage(s);
  return total;
}

bool BanyanNetwork::drained() const {
  for (const auto& stage : switches_) {
    for (const auto& sw : stage) {
      if (!sw->drained()) return false;
    }
  }
  return true;
}

PipelinedSwitch& BanyanNetwork::element(unsigned stage, unsigned index) {
  return *switches_.at(stage).at(index);
}

}  // namespace pmsb::net
