#include "net/topology.hpp"

namespace pmsb::net {

Port opposite(Port port) {
  switch (port) {
    case kEast: return kWest;
    case kWest: return kEast;
    case kNorth: return kSouth;
    case kSouth: return kNorth;
    default: return kLocal;
  }
}

int Topology::neighbor(unsigned node, Port port) const {
  const unsigned x = x_of(node);
  const unsigned y = y_of(node);
  const bool wrap = kind != TopologyKind::kMesh2D;
  switch (port) {
    case kEast:
      if (x + 1 < width) return static_cast<int>(node_at(x + 1, y));
      return wrap ? static_cast<int>(node_at(0, y)) : -1;
    case kWest:
      if (x > 0) return static_cast<int>(node_at(x - 1, y));
      return wrap ? static_cast<int>(node_at(width - 1, y)) : -1;
    case kSouth:
      if (y + 1 < height) return static_cast<int>(node_at(x, y + 1));
      return wrap ? static_cast<int>(node_at(x, 0)) : -1;
    case kNorth:
      if (y > 0) return static_cast<int>(node_at(x, y - 1));
      return wrap ? static_cast<int>(node_at(x, height - 1)) : -1;
    default:
      return -1;
  }
}

Port Topology::route_xy(unsigned node, unsigned dest) const {
  PMSB_CHECK(dest < nodes(), "destination node out of range");
  const unsigned x = x_of(node), y = y_of(node);
  const unsigned dx = x_of(dest), dy = y_of(dest);
  if (x != dx) {
    if (kind == TopologyKind::kMesh2D) return dx > x ? kEast : kWest;
    // Torus / ring: shortest way around.
    const unsigned fwd = (dx + width - x) % width;   // hops going east
    return fwd <= width - fwd ? kEast : kWest;
  }
  if (y != dy) {
    if (kind == TopologyKind::kMesh2D) return dy > y ? kSouth : kNorth;
    const unsigned fwd = (dy + height - y) % height;  // hops going south
    return fwd <= height - fwd ? kSouth : kNorth;
  }
  return kLocal;
}

unsigned Topology::hops(unsigned a, unsigned b) const {
  PMSB_CHECK(a < nodes() && b < nodes(), "node out of range");
  const auto axis = [this](unsigned from, unsigned to, unsigned size) -> unsigned {
    const unsigned d = from > to ? from - to : to - from;
    if (kind == TopologyKind::kMesh2D) return d;
    return d <= size - d ? d : size - d;  // shorter way around the wrap
  };
  return axis(x_of(a), x_of(b), width) + axis(y_of(a), y_of(b), height);
}

unsigned Topology::diameter() const {
  // hops() is separable per axis, so the worst pair is the worst per-axis
  // distance summed: full span on a mesh, half the wrap on a torus/ring.
  const auto axis = [this](unsigned size) -> unsigned {
    if (size <= 1) return 0;
    return kind == TopologyKind::kMesh2D ? size - 1 : size / 2;
  };
  return axis(width) + axis(height);
}

std::string Topology::describe() const {
  const char* k = kind == TopologyKind::kMesh2D  ? "mesh2d"
                  : kind == TopologyKind::kTorus2D ? "torus2d"
                                                   : "ring";
  return std::string(k) + " " + std::to_string(width) + "x" + std::to_string(height);
}

}  // namespace pmsb::net
