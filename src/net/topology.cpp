#include "net/topology.hpp"

namespace pmsb::net {
namespace {

/// log2 of a power of two (banyan/omega width is validated as one by
/// fabric::FabricConfig before any of this runs).
unsigned log2_exact(unsigned v) {
  unsigned b = 0;
  while ((1u << b) < v) ++b;
  return b;
}

/// Insert bit `v` at position `pos` of `e` (higher bits shift up): the
/// butterfly's element-to-line map. remove_bit is its inverse.
unsigned insert_bit(unsigned e, unsigned pos, unsigned v) {
  const unsigned high = e >> pos;
  const unsigned low = e & ((1u << pos) - 1);
  return (high << (pos + 1)) | (v << pos) | low;
}
unsigned remove_bit(unsigned line, unsigned pos) {
  const unsigned high = line >> (pos + 1);
  const unsigned low = line & ((1u << pos) - 1);
  return (high << pos) | low;
}
unsigned bit_at(unsigned line, unsigned pos) { return (line >> pos) & 1u; }

}  // namespace

Port opposite(Port port) {
  switch (port) {
    case kEast: return kWest;
    case kWest: return kEast;
    case kNorth: return kSouth;
    case kSouth: return kNorth;
    default: return kLocal;
  }
}

unsigned Topology::stages() const {
  switch (kind) {
    case TopologyKind::kBanyan:
    case TopologyKind::kOmega: return log2_exact(width);
    case TopologyKind::kClos: return 3;
    default: return 0;
  }
}

unsigned Topology::elements_per_stage() const {
  switch (kind) {
    case TopologyKind::kBanyan:
    case TopologyKind::kOmega: return width / 2;
    case TopologyKind::kClos: return radix;
    default: return 0;
  }
}

int Topology::neighbor(unsigned node, Port port) const {
  return neighbor(node, static_cast<unsigned>(port));
}

int Topology::neighbor(unsigned node, unsigned out_port) const {
  if (multistage()) {
    PMSB_CHECK(out_port < required_ports(), "multistage output port out of range");
    const unsigned s = stage_of(node);
    if (s + 1 >= stages()) return -1;  // last stage faces egress endpoints
    const unsigned e = element_of(node);
    switch (kind) {
      case TopologyKind::kBanyan: {
        // Line numbers are preserved between butterfly stages: output p of
        // element e is line insert_bit(e, k_s, p); stage s+1 switches the
        // pair differing in bit k_{s+1}.
        const unsigned n = stages();
        const unsigned line = insert_bit(e, n - 1 - s, out_port);
        return static_cast<int>(node_id(s + 1, remove_bit(line, n - 1 - (s + 1))));
      }
      case TopologyKind::kOmega: {
        // A perfect shuffle (rotate-left) sits between every pair of
        // stages; shuffled lines pair consecutively.
        const unsigned n = stages();
        const unsigned line = 2 * e + out_port;
        const unsigned shuffled = ((line << 1) | (line >> (n - 1))) & (width - 1);
        return static_cast<int>(node_id(s + 1, shuffled >> 1));
      }
      case TopologyKind::kClos:
        // Ingress j out p -> middle p; middle m out q -> egress q.
        return static_cast<int>(node_id(s + 1, out_port));
      default: break;
    }
    return -1;
  }
  const unsigned x = x_of(node);
  const unsigned y = y_of(node);
  const bool wrap = kind != TopologyKind::kMesh2D;
  switch (static_cast<Port>(out_port)) {
    case kEast:
      if (x + 1 < width) return static_cast<int>(node_at(x + 1, y));
      return wrap ? static_cast<int>(node_at(0, y)) : -1;
    case kWest:
      if (x > 0) return static_cast<int>(node_at(x - 1, y));
      return wrap ? static_cast<int>(node_at(width - 1, y)) : -1;
    case kSouth:
      if (y + 1 < height) return static_cast<int>(node_at(x, y + 1));
      return wrap ? static_cast<int>(node_at(x, 0)) : -1;
    case kNorth:
      if (y > 0) return static_cast<int>(node_at(x, y - 1));
      return wrap ? static_cast<int>(node_at(x, height - 1)) : -1;
    default:
      return -1;
  }
}

unsigned Topology::peer_in_port(unsigned node, unsigned out_port) const {
  PMSB_CHECK(multistage(), "peer_in_port is for multistage kinds (use opposite())");
  PMSB_CHECK(neighbor(node, out_port) >= 0, "last-stage outputs face endpoints");
  const unsigned s = stage_of(node);
  const unsigned e = element_of(node);
  switch (kind) {
    case TopologyKind::kBanyan: {
      const unsigned n = stages();
      const unsigned line = insert_bit(e, n - 1 - s, out_port);
      return bit_at(line, n - 1 - (s + 1));
    }
    case TopologyKind::kOmega: {
      const unsigned n = stages();
      const unsigned line = 2 * e + out_port;
      const unsigned shuffled = ((line << 1) | (line >> (n - 1))) & (width - 1);
      return shuffled & 1u;
    }
    case TopologyKind::kClos:
      // Ingress j out p -> middle p *input j*; middle m out q -> egress q
      // *input m*.
      return e;
    default: return 0;
  }
}

std::pair<unsigned, unsigned> Topology::ingress_of(unsigned endpoint) const {
  PMSB_CHECK(multistage() && endpoint < endpoints(), "ingress_of: bad endpoint");
  switch (kind) {
    case TopologyKind::kBanyan: {
      // Endpoint i is stage-0 line i: element remove_bit(i, n-1), port = MSB.
      const unsigned n = stages();
      return {node_id(0, remove_bit(endpoint, n - 1)), bit_at(endpoint, n - 1)};
    }
    case TopologyKind::kOmega: {
      const unsigned n = stages();
      const unsigned shuffled = ((endpoint << 1) | (endpoint >> (n - 1))) & (width - 1);
      return {node_id(0, shuffled >> 1), shuffled & 1u};
    }
    case TopologyKind::kClos:
      return {node_id(0, endpoint / radix), endpoint % radix};
    default: return {0, 0};
  }
}

unsigned Topology::egress_endpoint(unsigned node, unsigned out_port) const {
  PMSB_CHECK(multistage() && stage_of(node) + 1 == stages(),
             "egress_endpoint: not a last-stage node");
  const unsigned e = element_of(node);
  switch (kind) {
    case TopologyKind::kBanyan:
      // After the last stage (bit 0) the line number *is* the destination.
      return insert_bit(e, 0, out_port);
    case TopologyKind::kOmega:
      // No trailing shuffle: the last stage's output line is the endpoint.
      return 2 * e + out_port;
    case TopologyKind::kClos:
      return e * radix + out_port;
    default: return 0;
  }
}

unsigned Topology::route_stage(unsigned node, unsigned in_port, unsigned dest) const {
  PMSB_CHECK(multistage() && dest < endpoints(), "route_stage: bad topology or dest");
  const unsigned s = stage_of(node);
  switch (kind) {
    case TopologyKind::kBanyan:
    case TopologyKind::kOmega:
      // The single destination-bit test: stage s corrects bit n-1-s.
      return bit_at(dest, stages() - 1 - s);
    case TopologyKind::kClos:
      if (s == 0) return (in_port + dest) % radix;  // middle spread rule
      if (s == 1) return dest / radix;              // egress element digit
      return dest % radix;                          // egress port digit
    default: return 0;
  }
}

Port Topology::route_xy(unsigned node, unsigned dest) const {
  PMSB_CHECK(!multistage(), "route_xy is for direct networks (use route_stage)");
  PMSB_CHECK(dest < nodes(), "destination node out of range");
  const unsigned x = x_of(node), y = y_of(node);
  const unsigned dx = x_of(dest), dy = y_of(dest);
  if (x != dx) {
    if (kind == TopologyKind::kMesh2D) return dx > x ? kEast : kWest;
    // Torus / ring: shortest way around.
    const unsigned fwd = (dx + width - x) % width;   // hops going east
    return fwd <= width - fwd ? kEast : kWest;
  }
  if (y != dy) {
    if (kind == TopologyKind::kMesh2D) return dy > y ? kSouth : kNorth;
    const unsigned fwd = (dy + height - y) % height;  // hops going south
    return fwd <= height - fwd ? kSouth : kNorth;
  }
  return kLocal;
}

unsigned Topology::hops(unsigned a, unsigned b) const {
  if (multistage()) {
    PMSB_CHECK(a < endpoints() && b < endpoints(), "endpoint out of range");
    return stages() - 1;  // every endpoint pair crosses all inter-stage links
  }
  PMSB_CHECK(a < nodes() && b < nodes(), "node out of range");
  const auto axis = [this](unsigned from, unsigned to, unsigned size) -> unsigned {
    const unsigned d = from > to ? from - to : to - from;
    if (kind == TopologyKind::kMesh2D) return d;
    return d <= size - d ? d : size - d;  // shorter way around the wrap
  };
  return axis(x_of(a), x_of(b), width) + axis(y_of(a), y_of(b), height);
}

unsigned Topology::diameter() const {
  if (multistage()) return stages() - 1;
  // hops() is separable per axis, so the worst pair is the worst per-axis
  // distance summed: full span on a mesh, half the wrap on a torus/ring.
  const auto axis = [this](unsigned size) -> unsigned {
    if (size <= 1) return 0;
    return kind == TopologyKind::kMesh2D ? size - 1 : size / 2;
  };
  return axis(width) + axis(height);
}

std::string Topology::describe() const {
  switch (kind) {
    case TopologyKind::kBanyan: return "banyan " + std::to_string(width);
    case TopologyKind::kOmega: return "omega " + std::to_string(width);
    case TopologyKind::kClos:
      return "clos " + std::to_string(width) + " (radix " + std::to_string(radix) + ")";
    default: break;
  }
  const char* k = kind == TopologyKind::kMesh2D  ? "mesh2d"
                  : kind == TopologyKind::kTorus2D ? "torus2d"
                                                   : "ring";
  return std::string(k) + " " + std::to_string(width) + "x" + std::to_string(height);
}

}  // namespace pmsb::net
