// Work-stealing task runtime for the dataflow fabric engine.
//
// One deque of ready tasks per worker; a worker pops from its own deque,
// steals from a neighbor when empty, and parks on a condvar (with a short
// timeout) when the whole system looks idle. Tasks that return blocked are
// NOT requeued -- they sit in SchedTask::kBlocked until a neighbor task
// that shares a channel with them makes progress and wakes them through the
// caller-supplied wake lists.
//
// Lost-wakeup protocol (the only delicate part): a task T observes "cannot
// advance" from its neighbors' progress counters, then parks. A neighbor U
// may publish new progress between T's observation and T's kBlocked store;
// U's wake attempt would find T still kRunning and do nothing, leaving T
// parked forever. The fix is Dekker-style with seq_cst on both sides:
//
//   worker running T                     worker running U
//   ----------------                     ----------------
//   (reads U's progress: stale)          progress.store(seq_cst)
//   state.store(kBlocked, seq_cst)       if (T.state == kBlocked) wake T
//   if (can_advance()) self-wake
//
// In the seq_cst total order either U's progress store precedes T's block
// store -- then T's can_advance() recheck sees the progress and T self-wakes
// -- or T's block store precedes U's state load, and U wakes T. Both wake
// paths go through a kBlocked -> kReady compare-exchange, so exactly one
// party requeues the task.
//
// Determinism: the scheduler decides only WHERE and WHEN tasks run, never
// WHAT they compute -- simulation state is partitioned per node and every
// cross-node read is bounded by the channel credit protocol, so results are
// bit-identical for any worker count, steal order, or rebalance decision
// (CI-enforced).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "fabric/task.hpp"

namespace pmsb::exp {
class ThreadPool;
}

namespace pmsb::fabric {

class Scheduler {
 public:
  /// Per-worker wall-clock accounting, cumulative over run() calls.
  struct WorkerStats {
    std::uint64_t active_ns = 0;  ///< Inside SchedTask::advance().
    std::uint64_t idle_ns = 0;    ///< Hunting for work or parked.
    std::uint64_t steals = 0;     ///< Tasks taken from another worker's deque.
    std::uint64_t slices = 0;     ///< advance() calls executed.
  };

  explicit Scheduler(unsigned workers);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Run every task to completion (SchedTask::kDone). `wake_lists[i]` holds
  /// the indices of tasks sharing a channel with task i -- the candidates to
  /// wake after task i progresses. `placement[i]` is the worker whose deque
  /// initially holds task i (stealing redistributes from there). The pool
  /// must have at least workers() threads available; run() blocks until all
  /// tasks finished.
  void run(exp::ThreadPool& pool, const std::vector<SchedTask*>& tasks,
           const std::vector<std::vector<unsigned>>& wake_lists,
           const std::vector<unsigned>& placement);

  unsigned workers() const { return static_cast<unsigned>(deques_.size()); }
  const std::vector<WorkerStats>& worker_stats() const { return stats_; }
  std::uint64_t total_steals() const;

 private:
  struct Deque {
    std::mutex mu;
    std::deque<unsigned> q;  ///< Ready task indices.
  };

  void worker_loop(unsigned w);
  void push(unsigned w, unsigned task);
  bool pop(unsigned w, unsigned* task);
  bool steal(unsigned thief, unsigned* task);
  /// Wake every kBlocked neighbor of `task` (it just progressed/finished),
  /// attributing its blocked interval to the stall counters.
  void wake_neighbors(unsigned w, unsigned task);

  const std::vector<SchedTask*>* tasks_ = nullptr;
  const std::vector<std::vector<unsigned>>* wake_ = nullptr;
  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<WorkerStats> stats_;
  std::atomic<unsigned> finished_{0};
  std::atomic<int> pending_{0};  ///< Tasks sitting in deques (approximate).
  unsigned n_tasks_ = 0;

  // Idle parking: workers that find nothing to pop or steal wait here; every
  // push and the final task completion notify.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  unsigned idle_waiters_ = 0;
};

}  // namespace pmsb::fabric
