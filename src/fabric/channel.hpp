// One directed inter-node link of the fabric: a single-writer single-reader
// flit ring that reproduces sim/link_pipeline.hpp's timing without sharing
// any mutable simulation object between shards.
//
// A LinkPipeline with S register stages delivers the word on the upstream
// out-wire at cycle t onto the downstream in-wire at cycle t + S + 1. The
// fabric splits that wire at the register boundary: a TxTap in the
// *producer's* shard records out_link.now() into slot (t mod size) during
// its eval of cycle t, and the PortBridge in the *consumer's* shard reads
// slot (t - S) during its eval of cycle t, then re-drives the node's in-wire
// for t + 1 -- the same S + 1 total, with the bridge playing the role of the
// last pipeline register.
//
// Race-freedom under the conservative round scheme (see src/fabric/): with
// lookahead k <= S cycles between barriers, every slot the reader touches in
// round r was written in round r-1 or earlier (t_read - S < r*k), and the
// writer stays at least size - (k + S) > 0 slots away from the oldest
// unread entry. Different threads therefore always address disjoint slots,
// and the barrier provides the happens-before edge for visibility.

#pragma once

#include <cstddef>
#include <vector>

#include "common/cell.hpp"
#include "common/util.hpp"

namespace pmsb::fabric {

class Channel {
 public:
  /// `delay` = the modelled LinkPipeline's register stages S (>= 1). Total
  /// out-wire to in-wire latency is delay + 1 (see file comment).
  explicit Channel(unsigned delay) : delay_(delay) {
    PMSB_CHECK(delay >= 1, "fabric links need at least one register stage");
    std::size_t cap = 1;
    while (cap < 2 * static_cast<std::size_t>(delay) + 2) cap <<= 1;
    ring_.assign(cap, Flit{});
    mask_ = cap - 1;
  }

  unsigned delay() const { return delay_; }

  /// Producer side (TxTap): record the upstream out-wire's value during
  /// cycle t. Exactly one writer, exactly once per producer cycle.
  void write(Cycle t, const Flit& f) {
    ring_[static_cast<std::size_t>(t) & mask_] = f;
    if (f.valid) last_valid_ = t;
  }

  /// Consumer side (PortBridge): the word that entered the channel `delay`
  /// cycles ago; idle while the pipe is still filling.
  const Flit& read(Cycle t) const {
    if (t < static_cast<Cycle>(delay_)) return kIdle;
    return ring_[static_cast<std::size_t>(t - delay_) & mask_];
  }

  /// True when nothing is in flight at cycle T: every valid flit ever
  /// written was already delivered (read cycle last_valid_ + delay < T).
  /// Part of the fabric's global quiescence predicate.
  bool idle_at(Cycle t) const { return last_valid_ + static_cast<Cycle>(delay_) < t; }

  /// Invalidate all ring slots after the fabric skipped idle rounds. While
  /// skipping, the producer's per-cycle write(t, invalid) calls do not
  /// happen, so old entries at (t mod size) would otherwise resurface once
  /// the skip distance exceeds the ring size. Only called while every shard
  /// is parked (inside the barrier completion) and the channel is idle_at()
  /// the skip origin, so no live flit is destroyed.
  void clear_for_skip() {
    for (Flit& f : ring_) f = Flit{};
  }

 private:
  inline static const Flit kIdle{};

  unsigned delay_;
  std::size_t mask_;
  std::vector<Flit> ring_;
  Cycle last_valid_ = -1;  ///< Cycle of the newest valid flit written.
};

}  // namespace pmsb::fabric
