// One directed inter-node link of the fabric: a single-writer single-reader
// ring that reproduces sim/link_pipeline.hpp's timing without sharing any
// mutable simulation object between shards.
//
// A LinkPipeline with S register stages delivers the word on the upstream
// out-wire at cycle t onto the downstream in-wire at cycle t + S + 1. The
// fabric splits that wire at the register boundary: the producer records its
// out-wire value into slot (t mod size) during its eval of cycle t, and the
// consumer reads slot (t - S) during its eval of cycle t, then re-drives the
// node's in-wire for t + 1 -- the same S + 1 total, with the consumer playing
// the role of the last pipeline register.
//
// The ring is generic over its payload (Ring<T>): the cell fabrics carry
// whole-cell words (Channel = Ring<Flit>), the multistage wormhole fabrics
// carry single flits with lane tags (Ring<WormFlit>) and, in the *reverse*
// direction of every data link, per-lane credit pulses (Ring<CreditPulse>).
// T needs a `valid` flag and a value-initialized state meaning "idle". The
// timing/visibility contract is payload-independent:
//
//  * Barrier engine (conservative rounds): with lookahead k <= S cycles
//    between barriers, every slot the reader touches in round r was written
//    in round r-1 or earlier (t_read - S < r*k), and the writer stays at
//    least size - (k + S) > 0 slots away from the oldest unread entry.
//    Different threads therefore always address disjoint slots, and the
//    barrier provides the happens-before edge for visibility.
//
//  * Dataflow engine (credit backpressure): producer and consumer publish
//    per-node progress counters (cycles fully executed). The consumer reads
//    slot t - S only after observing producer_done > t - S, so the write
//    happens-before the read through the counter. The producer writes slot
//    t mod size only while t < consumer_done + capacity() - S (its write
//    credit), so the aliased slot t - capacity() was read strictly in the
//    consumer's past. Same disjointness, point-to-point edges instead of a
//    global barrier. Wormhole credit rings are ordinary rings here: a
//    credit link v->u makes u a *downstream* of v in the dependency graph,
//    so the same two bounds cover both directions. See
//    src/fabric/fabric.cpp and DESIGN.md "Task-dataflow fabric" /
//    "Multistage wormhole fabrics" for the full arguments.
//
// ChannelBase is the payload-erased face the fabric's skip planners use
// (idle_at / clear_for_skip / clear_range apply to any payload type).

#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/cell.hpp"
#include "common/util.hpp"

namespace pmsb::fabric {

class ChannelBase {
 public:
  /// `delay` = the modelled LinkPipeline's register stages S (>= 1). Total
  /// out-wire to in-wire latency is delay + 1 (see file comment).
  explicit ChannelBase(unsigned delay) : delay_(delay) {
    PMSB_CHECK(delay >= 1, "fabric links need at least one register stage");
    std::size_t cap = 1;
    while (cap < 2 * static_cast<std::size_t>(delay) + 2) cap <<= 1;
    mask_ = cap - 1;
  }
  virtual ~ChannelBase() = default;

  unsigned delay() const { return delay_; }

  /// Ring slots. The dataflow engine's write credit is capacity() - delay()
  /// cycles of producer lead over the consumer.
  std::size_t capacity() const { return mask_ + 1; }

  /// True when nothing is in flight at cycle T: every valid entry ever
  /// written was already delivered (read cycle last_valid_ + delay < T).
  /// Part of the fabric's global quiescence predicate (barrier engine) and
  /// of the per-node skip predicate (dataflow engine).
  bool idle_at(Cycle t) const {
    return last_valid_.load(std::memory_order_relaxed) + static_cast<Cycle>(delay_) < t;
  }

  /// Cycle of the newest valid entry written (-1 before the first). Only
  /// meaningful to a reader that has already synchronized with the
  /// producer's progress (see idle_at / the dataflow skip predicate).
  Cycle last_valid() const { return last_valid_.load(std::memory_order_relaxed); }

  /// Invalidate all ring slots after the fabric skipped idle rounds. While
  /// skipping, the producer's per-cycle write(t, invalid) calls do not
  /// happen, so old entries at (t mod size) would otherwise resurface once
  /// the skip distance exceeds the ring size. Only called while every shard
  /// is parked (inside the barrier completion) and the channel is idle_at()
  /// the skip origin, so no live entry is destroyed.
  virtual void clear_for_skip() = 0;

  /// Dataflow-engine skip compensation: stand in for the producer's
  /// suppressed write(t, invalid) calls for every cycle in [from, to).
  /// Bounded by the ring size (a longer window laps the ring and would
  /// rewrite the same slots). The caller holds write credit for the whole
  /// window, so these stores target slots the consumer is provably past.
  virtual void clear_range(Cycle from, Cycle to) = 0;

 protected:
  unsigned delay_;
  std::size_t mask_;
  std::atomic<Cycle> last_valid_{-1};  ///< Cycle of the newest valid entry.
};

template <typename T>
class Ring final : public ChannelBase {
 public:
  explicit Ring(unsigned delay) : ChannelBase(delay) { ring_.assign(capacity(), T{}); }

  /// Producer side: record the upstream out-wire's value during cycle t.
  /// Exactly one writer, exactly once per producer cycle.
  void write(Cycle t, const T& f) {
    ring_[static_cast<std::size_t>(t) & mask_] = f;
    // Monotonic high-water mark of valid traffic. Relaxed is enough: every
    // cross-thread read piggybacks on a stronger edge (the barrier, or the
    // producer's progress counter) that already orders this store.
    if (f.valid) last_valid_.store(t, std::memory_order_relaxed);
  }

  /// Consumer side: the entry that entered the channel `delay` cycles ago;
  /// idle while the pipe is still filling.
  const T& read(Cycle t) const {
    if (t < static_cast<Cycle>(delay_)) return kIdle;
    return ring_[static_cast<std::size_t>(t - delay_) & mask_];
  }

  void clear_for_skip() override {
    for (T& f : ring_) f = T{};
  }

  void clear_range(Cycle from, Cycle to) override {
    const Cycle window = to - from;
    const std::size_t n = window >= static_cast<Cycle>(capacity())
                              ? capacity()
                              : static_cast<std::size_t>(window);
    for (std::size_t i = 0; i < n; ++i)
      ring_[static_cast<std::size_t>(from + static_cast<Cycle>(i)) & mask_] = T{};
  }

 private:
  inline static const T kIdle{};

  std::vector<T> ring_;
};

/// The cell fabrics' link ring: one switch-word Flit per cycle.
using Channel = Ring<Flit>;

}  // namespace pmsb::fabric
