#include "fabric/scheduler.hpp"

#include <chrono>

#include "common/util.hpp"
#include "exp/thread_pool.hpp"

namespace pmsb::fabric {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

Scheduler::Scheduler(unsigned workers) {
  PMSB_CHECK(workers >= 1, "scheduler needs at least one worker");
  deques_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) deques_.push_back(std::make_unique<Deque>());
  stats_.resize(workers);
}

std::uint64_t Scheduler::total_steals() const {
  std::uint64_t s = 0;
  for (const WorkerStats& ws : stats_) s += ws.steals;
  return s;
}

void Scheduler::run(exp::ThreadPool& pool, const std::vector<SchedTask*>& tasks,
                    const std::vector<std::vector<unsigned>>& wake_lists,
                    const std::vector<unsigned>& placement) {
  PMSB_CHECK(!tasks.empty(), "scheduler run with no tasks");
  PMSB_CHECK(wake_lists.size() == tasks.size() && placement.size() == tasks.size(),
             "scheduler wake/placement tables out of sync with tasks");
  tasks_ = &tasks;
  wake_ = &wake_lists;
  n_tasks_ = static_cast<unsigned>(tasks.size());
  finished_.store(0, std::memory_order_relaxed);
  pending_.store(0, std::memory_order_relaxed);
  for (unsigned i = 0; i < n_tasks_; ++i) {
    tasks[i]->state.store(SchedTask::kReady, std::memory_order_relaxed);
    PMSB_CHECK(placement[i] < workers(), "task placed on a nonexistent worker");
    deques_[placement[i]]->q.push_back(i);
  }
  pending_.store(static_cast<int>(n_tasks_), std::memory_order_release);
  for (unsigned w = 0; w < workers(); ++w) pool.submit([this, w] { worker_loop(w); });
  pool.wait_idle();
  PMSB_CHECK(finished_.load(std::memory_order_acquire) == n_tasks_,
             "scheduler stopped with unfinished tasks");
}

void Scheduler::push(unsigned w, unsigned task) {
  {
    std::lock_guard<std::mutex> lk(deques_[w]->mu);
    deques_[w]->q.push_back(task);
  }
  pending_.fetch_add(1, std::memory_order_release);
  bool wake = false;
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    wake = idle_waiters_ > 0;
  }
  if (wake) idle_cv_.notify_one();
}

bool Scheduler::pop(unsigned w, unsigned* task) {
  std::lock_guard<std::mutex> lk(deques_[w]->mu);
  if (deques_[w]->q.empty()) return false;
  *task = deques_[w]->q.front();
  deques_[w]->q.pop_front();
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool Scheduler::steal(unsigned thief, unsigned* task) {
  const unsigned n = workers();
  for (unsigned off = 1; off < n; ++off) {
    Deque& d = *deques_[(thief + off) % n];
    std::lock_guard<std::mutex> lk(d.mu);
    if (d.q.empty()) continue;
    // Steal from the back: the front is the victim's working set.
    *task = d.q.back();
    d.q.pop_back();
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void Scheduler::wake_neighbors(unsigned w, unsigned task) {
  const std::vector<SchedTask*>& tasks = *tasks_;
  for (unsigned nb : (*wake_)[task]) {
    SchedTask* t = tasks[nb];
    std::uint8_t expect = SchedTask::kBlocked;
    // seq_cst pairs with the blocking worker's state store + recheck (see
    // scheduler.hpp); success means WE requeue it, and nobody else will.
    if (!t->state.compare_exchange_strong(expect, SchedTask::kReady,
                                          std::memory_order_seq_cst))
      continue;
    const std::uint64_t since = t->blocked_since_ns.load(std::memory_order_relaxed);
    const std::uint64_t waited = now_ns() - since;
    if (t->blocked_reason.load(std::memory_order_relaxed) ==
        static_cast<std::uint8_t>(Advance::kBlockedOnFull))
      t->blocked_on_full_ns.fetch_add(waited, std::memory_order_relaxed);
    else
      t->blocked_on_empty_ns.fetch_add(waited, std::memory_order_relaxed);
    push(w, nb);
  }
}

void Scheduler::worker_loop(unsigned w) {
  WorkerStats& ws = stats_[w];
  const std::vector<SchedTask*>& tasks = *tasks_;
  std::uint64_t idle_since = 0;  ///< Set when the hunt for work started.
  for (;;) {
    unsigned ti = 0;
    bool stolen = false;
    if (!pop(w, &ti)) {
      if (steal(w, &ti)) {
        stolen = true;
      } else {
        if (finished_.load(std::memory_order_acquire) == n_tasks_) {
          if (idle_since) ws.idle_ns += now_ns() - idle_since;
          return;
        }
        if (!idle_since) idle_since = now_ns();
        std::unique_lock<std::mutex> lk(idle_mu_);
        // Recheck under the waiter registration: a push that saw
        // idle_waiters_ == 0 must have bumped pending_ already.
        if (pending_.load(std::memory_order_acquire) > 0) continue;
        ++idle_waiters_;
        // Timed wait: the termination notify and rare wake races are both
        // bounded by the timeout instead of trusting every signal edge.
        idle_cv_.wait_for(lk, std::chrono::microseconds(200));
        --idle_waiters_;
        continue;
      }
    }
    if (idle_since) {
      ws.idle_ns += now_ns() - idle_since;
      idle_since = 0;
    }
    SchedTask* t = tasks[ti];
    t->state.store(SchedTask::kRunning, std::memory_order_relaxed);
    if (stolen) {
      ++ws.steals;
      t->steals.fetch_add(1, std::memory_order_relaxed);
    }
    const std::uint64_t t0 = now_ns();
    const Advance r = t->advance();
    const std::uint64_t dt = now_ns() - t0;
    ws.active_ns += dt;
    ++ws.slices;
    t->active_ns.fetch_add(dt, std::memory_order_relaxed);
    t->slices.fetch_add(1, std::memory_order_relaxed);
    switch (r) {
      case Advance::kFinished: {
        t->state.store(SchedTask::kDone, std::memory_order_release);
        // Neighbors blocked on this task's nodes can still need a final
        // wake (their last chunk runs on the lookahead past our target).
        wake_neighbors(w, ti);
        if (finished_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_tasks_) {
          { std::lock_guard<std::mutex> lk(idle_mu_); }
          idle_cv_.notify_all();
        }
        break;
      }
      case Advance::kProgress: {
        wake_neighbors(w, ti);
        t->state.store(SchedTask::kReady, std::memory_order_relaxed);
        push(w, ti);
        break;
      }
      case Advance::kBlockedOnEmpty:
      case Advance::kBlockedOnFull: {
        t->blocked_reason.store(static_cast<std::uint8_t>(r), std::memory_order_relaxed);
        t->blocked_since_ns.store(now_ns(), std::memory_order_relaxed);
        t->state.store(SchedTask::kBlocked, std::memory_order_seq_cst);
        // Dekker recheck closing the lost-wakeup window (see scheduler.hpp).
        if (t->can_advance()) {
          std::uint8_t expect = SchedTask::kBlocked;
          if (t->state.compare_exchange_strong(expect, SchedTask::kReady,
                                               std::memory_order_seq_cst))
            push(w, ti);
        }
        break;
      }
    }
  }
}

}  // namespace pmsb::fabric
