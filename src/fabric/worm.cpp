#include "fabric/worm.hpp"

#include <algorithm>

#include "check/invariants.hpp"

namespace pmsb::fabric {

WormRouter::WormRouter(const net::Topology* topo, unsigned node, const WormParams& params,
                       DestPattern* dests)
    : topo_(topo), node_(node), params_(params), dests_(dests) {
  PMSB_CHECK(topo->multistage(), "WormRouter requires a multistage topology");
  PMSB_CHECK(params.lanes >= 1 && params.lanes <= 32, "worm lanes must be in [1, 32]");
  PMSB_CHECK(params.lane_depth >= 1, "worm lane_depth must be >= 1");
  PMSB_CHECK(params.message_flits >= 1, "worm message_flits must be >= 1");
  ports_ = topo->required_ports();
  last_stage_ = topo->stage_of(node) + 1 == topo->stages();
  const std::size_t pl = static_cast<std::size_t>(ports_) * params_.lanes;
  rx_.resize(ports_, nullptr);
  credit_tx_.resize(ports_, nullptr);
  tx_.resize(ports_, nullptr);
  credit_rx_.resize(ports_, nullptr);
  fifo_.resize(pl);
  in_state_.resize(pl);
  out_lane_.resize(pl);
  for (OutLane& ol : out_lane_) ol.credits = params_.lane_depth;
  rr_alloc_.resize(ports_, 0);
  rr_lane_.resize(ports_, 0);
  rr_sw_.resize(ports_, 0);
  src_rr_.resize(ports_, 0);
  popped_.resize(pl, false);
  credit_mask_.resize(ports_, 0);
  sources_.resize(ports_);
  sinks_.resize(ports_);
  if (check::env_enabled())
    auditor_ = std::make_unique<check::WormAuditor>(ports_, params_.lanes,
                                                    params_.lane_depth, params_.message_flits);
}

void WormRouter::connect_in(unsigned in_port, const WormChannel* rx, CreditChannel* credit_tx) {
  PMSB_CHECK(in_port < ports_ && rx_[in_port] == nullptr, "worm input already wired");
  rx_[in_port] = rx;
  credit_tx_[in_port] = credit_tx;
}

void WormRouter::connect_out(unsigned out_port, WormChannel* tx, const CreditChannel* credit_rx) {
  PMSB_CHECK(out_port < ports_ && tx_[out_port] == nullptr, "worm output already wired");
  tx_[out_port] = tx;
  credit_rx_[out_port] = credit_rx;
}

void WormRouter::add_source(unsigned in_port, unsigned endpoint, Rng rng) {
  PMSB_CHECK(in_port < ports_ && rx_[in_port] == nullptr && sources_[in_port] == nullptr,
             "worm source conflicts with an existing input");
  auto s = std::make_unique<Source>();
  s->in_port = in_port;
  s->endpoint = endpoint;
  s->rng = rng;
  s->worms.resize(params_.lanes);
  sources_[in_port] = std::move(s);
}

void WormRouter::add_sink(unsigned out_port, unsigned endpoint) {
  PMSB_CHECK(last_stage_, "worm sinks attach to last-stage outputs only");
  PMSB_CHECK(out_port < ports_ && tx_[out_port] == nullptr && sinks_[out_port] == nullptr,
             "worm sink conflicts with an existing output");
  auto k = std::make_unique<Sink>();
  k->out_port = out_port;
  k->endpoint = endpoint;
  k->lanes.resize(params_.lanes);
  sinks_[out_port] = std::move(k);
}

void WormRouter::push_flit(unsigned in_port, const WormFlit& f) {
  auto& q = fifo_[li(in_port, f.lane)];
  q.push_back(f);
  ++flits_in_total_;
  PMSB_CHECK(q.size() <= params_.lane_depth, "worm lane overflow (credit protocol broken)");
  if (auditor_ != nullptr)
    auditor_->on_push(in_port, f.lane, f.head, f.tail, f.msg, f.seq, q.size());
}

void WormRouter::source_prime(Source& s, Cycle from) {
  s.primed = true;
  if (params_.messages_per_cycle <= 0) {
    s.next_arrival = kNeverWake;
    return;
  }
  Cycle a = from;
  while (!s.rng.next_bool(params_.messages_per_cycle)) ++a;
  s.next_arrival = a;
  s.next_dest = dests_->pick(s.endpoint, s.rng);
}

void WormRouter::source_step(Source& s, Cycle t) {
  if (!s.primed) source_prime(s, t);
  if (t == s.next_arrival) {
    const std::uint64_t msg =
        (static_cast<std::uint64_t>(s.endpoint) << 32) | s.next_msg_seq++;
    s.backlog.push_back(Source::Pending{s.next_dest, msg, t});
    ++s.generated;
    source_prime(s, t + 1);
  }
  // Start pending messages on idle lanes, by the configured policy. Each
  // lane streams one message head..tail at a time, so the per-lane
  // contiguity invariant holds by construction.
  while (!s.backlog.empty()) {
    unsigned pick = params_.lanes;
    for (unsigned i = 0; i < params_.lanes; ++i) {
      const unsigned l = params_.alloc == WormAlloc::kRoundRobin
                             ? (src_rr_[s.in_port] + i) % params_.lanes
                             : i;
      if (!s.worms[l].active) {
        pick = l;
        break;
      }
    }
    if (pick == params_.lanes) break;  // every lane mid-message
    src_rr_[s.in_port] = (pick + 1) % params_.lanes;
    const Source::Pending& p = s.backlog.front();
    s.worms[pick] = Source::Worm{true, 0, p.dest, p.msg, p.created};
    s.backlog.pop_front();
  }
  // Emit at most one flit this cycle (the injection link rate), rotating
  // across lanes whose worm is active and whose FIFO has room.
  for (unsigned i = 0; i < params_.lanes; ++i) {
    const unsigned l = params_.alloc == WormAlloc::kRoundRobin
                           ? (s.emit_rr + i) % params_.lanes
                           : i;
    Source::Worm& w = s.worms[l];
    if (!w.active || fifo_[li(s.in_port, l)].size() >= params_.lane_depth) continue;
    WormFlit f;
    f.valid = true;
    f.head = w.seq == 0;
    f.tail = w.seq + 1 == params_.message_flits;
    f.lane = static_cast<std::uint8_t>(l);
    f.dest = static_cast<std::uint16_t>(w.dest);
    f.seq = w.seq;
    f.msg = w.msg;
    f.created = w.created;
    f.data = worm_payload(w.msg, w.seq);
    push_flit(s.in_port, f);
    if (f.tail)
      w.active = false;
    else
      ++w.seq;
    s.emit_rr = (l + 1) % params_.lanes;
    break;
  }
}

void WormRouter::alloc_lane(unsigned out, Cycle t) {
  (void)t;
  const unsigned pl = ports_ * params_.lanes;
  // Find the first (input, lane) whose queued head flit wants this output
  // and is not yet bound, rotating priority across eval cycles.
  for (unsigned i = 0; i < pl; ++i) {
    const unsigned idx = params_.alloc == WormAlloc::kRoundRobin ? (rr_alloc_[out] + i) % pl : i;
    const auto& q = fifo_[idx];
    if (q.empty() || !q.front().head || in_state_[idx].active) continue;
    const unsigned in = idx / params_.lanes;
    if (topo_->route_stage(node_, in, q.front().dest) != out) continue;
    // Grant a free output lane by the same policy.
    unsigned grant = params_.lanes;
    for (unsigned j = 0; j < params_.lanes; ++j) {
      const unsigned ol = params_.alloc == WormAlloc::kRoundRobin
                              ? (rr_lane_[out] + j) % params_.lanes
                              : j;
      if (!out_lane_[li(out, ol)].owned) {
        grant = ol;
        break;
      }
    }
    if (grant == params_.lanes) return;  // no free output lane this cycle
    OutLane& ol = out_lane_[li(out, grant)];
    ol.owned = true;
    ol.in = in;
    ol.in_lane = idx % params_.lanes;
    in_state_[idx] = InState{true, out, grant};
    rr_alloc_[out] = (idx + 1) % pl;
    rr_lane_[out] = (grant + 1) % params_.lanes;
    return;  // at most one binding per output per cycle
  }
}

void WormRouter::arbitrate(unsigned out, Cycle t) {
  const bool egress = tx_[out] == nullptr;
  WormFlit sent;  // invalid unless a lane wins
  for (unsigned j = 0; j < params_.lanes; ++j) {
    const unsigned ol_idx = params_.alloc == WormAlloc::kRoundRobin
                                ? (rr_sw_[out] + j) % params_.lanes
                                : j;
    OutLane& ol = out_lane_[li(out, ol_idx)];
    if (!ol.owned) continue;
    if (!egress && ol.credits == 0) continue;
    const std::size_t src = li(ol.in, ol.in_lane);
    auto& q = fifo_[src];
    if (q.empty() || popped_[src]) continue;
    WormFlit f = q.front();
    q.pop_front();
    popped_[src] = true;
    if (credit_tx_[ol.in] != nullptr) credit_mask_[ol.in] |= 1u << ol.in_lane;
    f.lane = static_cast<std::uint8_t>(ol_idx);
    if (!egress) --ol.credits;
    if (f.tail) {
      in_state_[src] = InState{};
      ol.owned = false;
    }
    rr_sw_[out] = (ol_idx + 1) % params_.lanes;
    ++flits_out_total_;
    if (egress) {
      deliver(*sinks_[out], f, t);
    } else {
      sent = f;
      ++flits_forwarded_;
    }
    break;  // one flit per output per cycle
  }
  if (!egress) tx_[out]->write(t, sent);
}

void WormRouter::deliver(Sink& sink, const WormFlit& f, Cycle t) {
  Sink::LaneRx& rx = sink.lanes[f.lane];
  if (f.head) {
    PMSB_CHECK(!rx.mid, "worm sink: head flit interrupted an open message");
    rx.mid = true;
    rx.msg = f.msg;
    rx.next_seq = 0;
    rx.created = f.created;
  } else {
    PMSB_CHECK(rx.mid && f.msg == rx.msg, "worm sink: body flit without its message");
  }
  PMSB_CHECK(f.seq == rx.next_seq, "worm sink: flit sequence gap");
  ++rx.next_seq;
  ++sink.flits;
  if (f.data != worm_payload(f.msg, f.seq)) ++sink.payload_errors;
  if (f.tail) {
    PMSB_CHECK(rx.next_seq == params_.message_flits, "worm sink: short message");
    rx.mid = false;
    ++sink.delivered;
    const Cycle lat = t - f.created;
    sink.lat_sum += static_cast<std::uint64_t>(lat);
    sink.lat_hist.add(static_cast<std::uint64_t>(lat));
    sink.digest = mix64(sink.digest ^ (f.msg * 0x2545f4914f6cdd1dULL));
  }
}

void WormRouter::eval(Cycle t) {
  std::fill(popped_.begin(), popped_.end(), false);
  // 1. Accept at most one flit per inter-stage input.
  for (unsigned in = 0; in < ports_; ++in) {
    if (rx_[in] == nullptr) continue;
    const WormFlit& f = rx_[in]->read(t);
    if (f.valid) push_flit(in, f);
  }
  // 2. Consume returned credits.
  for (unsigned out = 0; out < ports_; ++out) {
    if (credit_rx_[out] == nullptr) continue;
    const CreditPulse& p = credit_rx_[out]->read(t);
    if (!p.valid) continue;
    for (unsigned l = 0; l < params_.lanes; ++l) {
      if ((p.mask & (1u << l)) == 0) continue;
      OutLane& ol = out_lane_[li(out, l)];
      ++ol.credits;
      PMSB_CHECK(ol.credits <= params_.lane_depth, "worm credit overflow");
      if (auditor_ != nullptr) auditor_->on_credit(out, l, ol.credits);
    }
  }
  // 3. Inject (first stage only): arrivals plus one streamed flit per source.
  for (unsigned in = 0; in < ports_; ++in)
    if (sources_[in] != nullptr) source_step(*sources_[in], t);
  // 4. Per output: one VC allocation, then one switch grant; the tx ring is
  // written every cycle (invalid when no lane wins), like the cell fabrics'
  // TxTap, so skipped stretches are compensated by ring clears alone.
  for (unsigned out = 0; out < ports_; ++out) {
    alloc_lane(out, t);
    arbitrate(out, t);
  }
  // 5. Return credits upstream, one aggregated pulse per input per cycle.
  for (unsigned in = 0; in < ports_; ++in) {
    if (credit_tx_[in] == nullptr) continue;
    credit_tx_[in]->write(t, CreditPulse{credit_mask_[in] != 0, credit_mask_[in]});
    credit_mask_[in] = 0;
  }
  if (auditor_ != nullptr)
    auditor_->on_cycle_end(flits_in_total_, flits_out_total_, flits_held());
}

bool WormRouter::is_quiescent(Cycle) const {
  for (const auto& q : fifo_)
    if (!q.empty()) return false;
  for (const OutLane& ol : out_lane_)
    if (ol.owned) return false;
  for (const auto& s : sources_) {
    if (s == nullptr) continue;
    if (!s->backlog.empty()) return false;
    for (const Source::Worm& w : s->worms)
      if (w.active) return false;
  }
  return true;
}

Cycle WormRouter::next_wake(Cycle) const {
  Cycle wake = kNeverWake;
  for (const auto& s : sources_)
    if (s != nullptr) wake = std::min(wake, s->primed ? s->next_arrival : Cycle{0});
  return wake;
}

std::string WormRouter::name() const {
  return "worm_router_s" + std::to_string(topo_->stage_of(node_)) + "e" +
         std::to_string(topo_->element_of(node_));
}

WormRouter::SourceStats WormRouter::source_stats(unsigned in_port) const {
  PMSB_CHECK(sources_[in_port] != nullptr, "no worm source on this input");
  const Source& s = *sources_[in_port];
  std::size_t streaming = 0;
  for (const Source::Worm& w : s.worms) streaming += w.active ? 1 : 0;
  return SourceStats{s.generated, s.backlog.size() + streaming};
}

WormRouter::SinkStats WormRouter::sink_stats(unsigned out_port) const {
  PMSB_CHECK(sinks_[out_port] != nullptr, "no worm sink on this output");
  const Sink& k = *sinks_[out_port];
  SinkStats st;
  st.delivered = k.delivered;
  st.flits = k.flits;
  st.payload_errors = k.payload_errors;
  st.digest = k.digest;
  st.lat_sum = k.lat_sum;
  st.lat_hist = &k.lat_hist;
  return st;
}

std::uint64_t WormRouter::flits_held() const {
  std::uint64_t held = 0;
  for (const auto& q : fifo_) held += q.size();
  return held;
}

}  // namespace pmsb::fabric
