// Sharded multi-switch fabric engine: a whole net::Topology of
// cycle-accurate PipelinedSwitch nodes, partitioned across worker threads,
// with a hard determinism contract -- delivered cells, drops, latencies and
// every published metric are bit-identical at any thread count AND under
// either execution engine.
//
// Structure per node: one PipelinedSwitch, one PortBridge per incoming link
// (ejection, next-hop head rewrite, transit/injection mux -- see
// src/fabric/bridge.hpp), one TxTap per outgoing link, and per-node
// Injector/Ejector endpoints. ALL inter-node links -- including those whose
// endpoints land in the same shard -- go through the same Channel rings, so
// the simulated wiring does not depend on the partition.
//
// Two engines share that structure (FabricConfig::engine):
//
//  * kBarrier -- conservative lockstep: inter-node links have
//    `link_pipe_stages` (D >= 1) register stages, i.e. a word leaving a node
//    cannot be observed anywhere else for at least D + 1 cycles. Each shard
//    runs its nodes locally for a round of up to D cycles, then all shards
//    meet at a SpinBarrier; every channel slot a shard reads during round r
//    was written in round r-1 or earlier, so no cross-shard event can ever
//    be missed. The barrier's last arriver samples the metrics gauges.
//
//  * kDataflow -- credit-backpressured tasks: every node is its own Engine,
//    grouped into SchedTasks run by a work-stealing Scheduler. A node whose
//    neighbors have executed through cycle u may run to u + D (its inputs
//    for those cycles are already in the channel rings) and to
//    consumer_done + capacity - D on the output side (write credit); a task
//    blocks only when every owned node hits one of those bounds, and is
//    woken by the neighbor that moves it. Slow nodes no longer stall the
//    whole fabric -- only their neighborhood, transitively. Metric samples
//    are assembled per round boundary from per-node contributions (each
//    node passes every boundary exactly once), reproducing the barrier's
//    sampling cadence and values bit-exactly. See DESIGN.md "Task-dataflow
//    fabric" for the correctness argument.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "core/config.hpp"
#include "core/event_hub.hpp"
#include "core/fast_switch.hpp"
#include "core/switch.hpp"
#include "exp/thread_pool.hpp"
#include "fabric/bridge.hpp"
#include "fabric/channel.hpp"
#include "fabric/worm.hpp"
#include "net/topology.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "stats/hdr_histogram.hpp"

namespace pmsb::obs {
class PerfettoTrace;
}

namespace pmsb::fabric {

/// Execution engine for Fabric::run(). Results are bit-identical either way
/// (CI-enforced); the choice only affects wall-clock and scheduling
/// telemetry.
enum class FabricEngine {
  kBarrier,   ///< Lockstep rounds over a SpinBarrier (PR 5 engine).
  kDataflow,  ///< Credit-backpressured tasks on a work-stealing scheduler.
};

/// Process-wide default engine: PMSB_FABRIC_ENGINE=dataflow|barrier (read
/// once; barrier when unset). Lets CI run every fabric bench/test under
/// both engines without touching configs.
FabricEngine fabric_engine_env_default();

/// Process-wide override for the default above (bench --engine flag). Only
/// affects FabricConfigs constructed after the call; call from startup code
/// before any simulation threads exist.
void set_fabric_engine_override(FabricEngine e);

const char* to_string(FabricEngine e);

struct FabricConfig {
  net::Topology topo;
  /// Per-node switch geometry (direct topologies only; multistage kinds run
  /// flit-level WormRouters and ignore this). Needs n_ports >=
  /// topo.required_ports(), word_bits >= 16 and cell_words >= 4 (fabric wire
  /// format), and a head tag wide enough for a node id.
  /// SwitchConfig::for_ports() qualifies.
  SwitchConfig node = SwitchConfig::for_ports(4);
  /// D: register stages on every inter-node link (latency D + 1 cycles).
  /// Doubles as the engines' synchronization lookahead.
  unsigned link_pipe_stages = 4;
  /// Offered load per node as a fraction of one link's cell rate.
  double load = 0.5;
  std::uint64_t seed = 1;
  /// Worker threads; 0 resolves via exp::thread_count() (PMSB_THREADS).
  /// Clamped to the node count.
  unsigned threads = 0;
  /// Execution engine (see FabricEngine). Default from PMSB_FABRIC_ENGINE.
  FabricEngine engine = fabric_engine_env_default();
  /// kDataflow initial partition grain: tasks ~= threads * tasks_per_worker
  /// (clamped to [threads, nodes]). More tasks = finer stealing and
  /// rebalancing, more scheduling overhead.
  unsigned tasks_per_worker = 4;
  /// kDataflow load-aware repartitioning between run() calls: split tasks
  /// that dominated the last run's active_ns, merge starved ones. Never
  /// changes results, only placement (the partition is invisible to the
  /// simulation).
  bool rebalance = true;
  /// Idle-cycle skipping: when a region of the fabric is quiescent and its
  /// channels are empty, jump to the next scheduled injection instead of
  /// stepping. Round-granular and global under kBarrier; per-node under
  /// kDataflow. Results are bit-identical either way (CI-enforced).
  /// -1 = environment default (PMSB_IDLE_SKIP), 0 = off, 1 = on.
  int idle_skip = -1;
  /// Per-node model selection: nodes for which this returns true run the
  /// behavioural FastSwitch (core/fast_switch.hpp) instead of the
  /// cycle-accurate PipelinedSwitch -- cold nodes fast, hot nodes exact.
  /// Null (default) = all nodes cycle-accurate. Must be a pure function of
  /// the node index (determinism).
  std::function<bool(unsigned node)> fast_node;
  /// Attach a per-node obs::FlightRecorder (per-stage latency breakdown;
  /// merged across nodes via Fabric::merged_flight()). Event counting is the
  /// only added per-cell cost; off by default.
  bool flight_recorder = false;
  /// Cells whose head arrived before this cycle are excluded from the
  /// flight recorders.
  Cycle flight_warmup = 0;

  // --- Wormhole transport (multistage topologies only) --------------------
  /// Virtual channels (lanes) per router port, 1..32; must divide
  /// buffer_flits.
  unsigned lanes = 1;
  /// Flit buffering per router input port, split evenly across lanes
  /// (lane_depth = buffer_flits / lanes = per-lane credits).
  unsigned buffer_flits = 16;
  /// Flits per message (head..tail).
  unsigned message_flits = 8;
  /// Lane allocation / switch arbitration policy.
  WormAlloc alloc = WormAlloc::kRoundRobin;
  /// Workload spec (traffic::GeneratorSpec grammar, e.g. "uniform:0.8",
  /// "hotspot:0.25"). Multistage fabrics honor every destination kind;
  /// direct (cell) fabrics support "uniform" only. A spec-embedded load
  /// overrides `load`.
  std::string traffic = "uniform";

  ConfigValidation check() const;
  void validate() const;
};

/// Wall-clock accounting for one shard (kBarrier: one per worker thread;
/// kDataflow: one per scheduler task) of the run so far. Telemetry is
/// timing-derived, so it belongs in the BENCH JSON "runtime" block only
/// (the determinism diffs strip it); rounds and cells_relayed are
/// deterministic per shard *given* a thread count and engine, but the
/// partition itself changes with PMSB_THREADS and rebalancing.
struct ShardTelemetry {
  unsigned shard = 0;
  unsigned nodes = 0;           ///< Nodes owned by this shard/task.
  std::uint64_t active_ns = 0;  ///< Wall time advancing the simulation.
  std::uint64_t barrier_wait_ns = 0;    ///< kBarrier: parked at the round barrier.
  std::uint64_t blocked_on_empty_ns = 0;  ///< kDataflow: starved of upstream data.
  std::uint64_t blocked_on_full_ns = 0;   ///< kDataflow: out of downstream credit.
  std::uint64_t steals = 0;     ///< kDataflow: times this task ran on a thief.
  std::uint64_t rounds = 0;     ///< Rounds/chunks stepped (skipped excluded).
  std::uint64_t cells_relayed = 0;  ///< Transit cells relayed by this shard's bridges.
};

/// Scheduling-layer accounting for the run so far (BENCH JSON
/// runtime.scheduler block). kBarrier reports its shards as degenerate
/// pinned tasks so the block shape is engine-independent.
struct FabricSchedulerStats {
  const char* engine = "barrier";
  unsigned workers = 0;
  unsigned tasks = 0;
  std::uint64_t steals = 0;
  std::uint64_t splits = 0;   ///< Rebalance: hot tasks split.
  std::uint64_t merges = 0;   ///< Rebalance: cold task pairs merged.
  struct Worker {
    std::uint64_t active_ns = 0;
    std::uint64_t idle_ns = 0;  ///< Barrier wait / steal hunt + parked.
    std::uint64_t steals = 0;
    std::uint64_t slices = 0;
  };
  std::vector<Worker> per_worker;
  /// Human-readable rebalance decisions, in order ("split task 3 ...").
  std::vector<std::string> rebalance_log;
};

/// Aggregated end-of-run accounting, merged over nodes in index order.
/// Cell fabrics count cells; wormhole fabrics count messages (and report
/// flits_delivered besides).
struct FabricStats {
  Cycle cycles = 0;
  std::uint64_t injected = 0;   ///< Cells/messages generated (incl. still queued).
  std::uint64_t delivered = 0;
  std::uint64_t flits_delivered = 0;  ///< Wormhole fabrics only.
  std::uint64_t payload_errors = 0;
  std::uint64_t dropped_no_addr = 0;
  std::uint64_t dropped_no_slot = 0;
  std::uint64_t dropped_out_limit = 0;
  std::uint64_t backlog = 0;     ///< Generated but not yet on the wire.
  std::uint64_t in_network = 0;  ///< On the wire or buffered in a switch/bridge.
  std::uint64_t uid_digest = 0;  ///< Node-order mix of per-node delivery digests.
  double mean_latency = 0;       ///< Injection -> ejection, delivered cells.
  Cycle min_latency = 0;
  Cycle max_latency = 0;
  /// Full latency distribution (merged per-node HDR histograms, node order):
  /// exact p50/p90/p99/p99.9 at any thread count.
  HdrHistogram latency;

  struct HopRow {
    unsigned hops;
    std::uint64_t cells;
    double mean_latency;
  };
  std::vector<HopRow> by_hops;

  std::uint64_t dropped() const {
    return dropped_no_addr + dropped_no_slot + dropped_out_limit;
  }
};

class Fabric {
 public:
  /// THE construction path: build a fabric of `topo`'s shape with the given
  /// configuration (cfg.topo is overridden by `topo`). Direct topologies
  /// (mesh/torus/ring) get cell-granular PipelinedSwitch nodes; multistage
  /// topologies (banyan/omega/clos) get flit-level wormhole routers. Throws
  /// std::invalid_argument on an invalid configuration.
  static std::unique_ptr<Fabric> build(const net::Topology& topo, const FabricConfig& cfg);

  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  unsigned nodes() const { return cfg_.topo.nodes(); }
  unsigned threads() const { return workers_; }
  FabricEngine engine() const { return cfg_.engine; }
  Cycle now() const { return cycles_run_; }
  const FabricConfig& config() const { return cfg_; }
  /// True when this fabric runs flit-level wormhole transport (multistage
  /// topology); the node_*switch accessors below are cell-fabric-only.
  bool wormhole() const { return worm_; }
  bool node_is_fast(unsigned i) const {
    PMSB_CHECK(!worm_, "wormhole fabrics have no switch nodes");
    return nodes_[i]->fast != nullptr;
  }
  const PipelinedSwitch& node_switch(unsigned i) const {
    PMSB_CHECK(!worm_, "wormhole fabrics have no switch nodes");
    PMSB_CHECK(nodes_[i]->sw != nullptr, "node runs the fast model (see node_is_fast)");
    return *nodes_[i]->sw;
  }
  const FastSwitch& node_fast_switch(unsigned i) const {
    PMSB_CHECK(!worm_, "wormhole fabrics have no switch nodes");
    PMSB_CHECK(nodes_[i]->fast != nullptr, "node runs the cycle-accurate switch");
    return *nodes_[i]->fast;
  }
  const WormRouter& node_router(unsigned i) const {
    PMSB_CHECK(worm_, "cell fabrics have no wormhole routers");
    return *wrouters_[i];
  }

  /// Register live gauges (fabric.injected/delivered/dropped/backlog/
  /// in_network/latency.mean) on `m` and sample them at every round
  /// boundary of subsequent run() calls -- same cadence and values under
  /// both engines. Call before run(); `m` must outlive the fabric's runs.
  void register_metrics(obs::MetricsRegistry* m);

  /// Advance the whole fabric by `cycles`. Callable repeatedly.
  void run(Cycle cycles);

  /// Deterministic aggregate accounting (identical at any thread count and
  /// under either engine).
  FabricStats stats() const;

  /// Per-node flight recorder (null unless FabricConfig::flight_recorder).
  const obs::FlightRecorder* node_flight(unsigned i) const {
    return nodes_[i]->flight.get();
  }
  /// All nodes' recorders folded in node order -- deterministic at any
  /// thread count. Requires FabricConfig::flight_recorder.
  obs::FlightRecorder merged_flight() const;

  /// Wall-clock telemetry of the run so far: one entry per worker shard
  /// (kBarrier) or per scheduler task (kDataflow).
  std::vector<ShardTelemetry> shard_telemetry() const;
  /// Scheduling-layer telemetry of the run so far (see FabricSchedulerStats).
  FabricSchedulerStats scheduler_stats() const;
  /// Idle jumps the planner took: whole-fabric rounds under kBarrier,
  /// per-node chunks under kDataflow (0 with idle skipping off).
  std::uint64_t rounds_skipped() const {
    return rounds_skipped_.load(std::memory_order_relaxed);
  }
  /// Render telemetry as Perfetto tracks: one worker track per shard/worker
  /// (active / wait slices in wall-clock microseconds) plus a counter track
  /// of per-shard stall totals, so barrier-vs-dataflow wait time is
  /// directly comparable in one trace.
  void telemetry_to_perfetto(obs::PerfettoTrace& out) const;

 private:
  explicit Fabric(const FabricConfig& cfg);

  struct Node {
    std::unique_ptr<PipelinedSwitch> sw;  ///< Exactly one of sw / fast is set.
    std::unique_ptr<FastSwitch> fast;
    Injector injector;
    Ejector ejector;
    std::uint64_t drop_no_addr = 0;
    std::uint64_t drop_no_slot = 0;
    std::uint64_t drop_out_limit = 0;
    Subscription drop_sub;  ///< Fabric's own EventHub subscription.
    /// Structural checking per node under PMSB_CHECK (coexists with the
    /// drop subscription on the same hub).
    std::unique_ptr<check::InvariantChecker> checker;
    /// Per-stage latency breakdown (FabricConfig::flight_recorder).
    std::unique_ptr<obs::FlightRecorder> flight;
  };

  struct Shard {
    Engine engine;
    std::vector<unsigned> node_ids;
    std::vector<std::unique_ptr<PortBridge>> bridges;
    std::vector<std::unique_ptr<TxTap>> taps;
    // Telemetry, written only by the thread running this shard (the pool's
    // wait_idle orders the writes before the main thread reads them).
    std::uint64_t active_ns = 0;
    std::uint64_t barrier_wait_ns = 0;
    std::uint64_t rounds = 0;
  };

  /// One consistent snapshot of the fabric-wide gauge inputs at a round
  /// boundary; assembled from per-node contributions by the dataflow
  /// engine (the barrier engine reads live state instead -- everyone is
  /// parked there).
  struct SampleFrame {
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t backlog = 0;
    std::uint64_t lat_sum = 0;
  };

  void build();
  void build_cells();
  void build_worm();
  void wire_node(unsigned v, Engine& eng, std::vector<std::unique_ptr<PortBridge>>& bridges,
                 std::vector<std::unique_ptr<TxTap>>& taps);
  /// Every channel ring of either transport (cell link rings, or worm data
  /// + reverse credit rings).
  template <typename Fn>
  void for_each_ring(Fn&& fn) const {
    for (const auto& ch : channels_)
      if (ch) fn(*ch);
    for (const auto& ch : wdata_)
      if (ch) fn(*ch);
    for (const auto& ch : wcredit_)
      if (ch) fn(*ch);
  }
  void end_of_round();
  /// Round-granularity idle skip, run inside the barrier completion while
  /// every worker is parked: if all shards are quiescent and all channels
  /// empty, advance cycles_run_ by whole rounds (sampling metrics at each
  /// boundary exactly as stepped rounds would) up to the earliest scheduled
  /// injection, then clear the channel rings. Workers notice the jump after
  /// the barrier and skip_to() their shard engines.
  void maybe_skip();
  std::uint64_t sum_injected() const;
  std::uint64_t sum_delivered() const;
  std::uint64_t sum_dropped() const;
  std::uint64_t sum_backlog() const;
  std::uint64_t sum_lat() const;

  // --- Dataflow engine (implementation in fabric.cpp) ---------------------
  struct Dataflow;
  /// Node-level outcome of one bounded chunk attempt.
  enum class NodeAdvance : std::uint8_t {
    kStepped,        ///< Executed a chunk cycle by cycle.
    kSkipped,        ///< Jumped a quiescent chunk (idle skip).
    kInputBlocked,   ///< Upstream lookahead exhausted.
    kCreditBlocked,  ///< Downstream ring out of credit.
    kNodeDone,       ///< Reached the run target.
  };
  void build_dataflow(unsigned workers);
  void build_worm_dataflow(unsigned workers);
  /// Common dataflow tail: sampling-frame ring of `frame_ring` slots plus
  /// the initial contiguous task partition.
  void df_finish_build(unsigned workers, unsigned frame_ring);
  void run_dataflow(Cycle cycles);
  NodeAdvance df_advance_node(unsigned v);
  bool df_node_ready(unsigned v) const;
  void df_contribute_sample(unsigned v, Cycle boundary_index);
  /// Recompute the task partition from the last run's per-task active_ns
  /// (split hot, merge cold); applied lazily at the next run's start.
  void df_plan_rebalance();
  void df_apply_partition(const std::vector<std::vector<unsigned>>& parts);

  FabricConfig cfg_;
  CellCodec codec_;
  unsigned ports_ = 0;    ///< Router ports in use (topology degree).
  unsigned workers_ = 1;  ///< Resolved worker-thread count.
  bool worm_ = false;     ///< Wormhole transport (multistage topology).
  std::vector<std::unique_ptr<Node>> nodes_;        ///< Cell fabrics only.
  std::vector<std::unique_ptr<Channel>> channels_;  ///< [node * ports_ + out_port]

  // --- Wormhole transport state (worm_ == true) ---------------------------
  /// Shared destination pattern (stateless per pick; see traffic/spec.hpp).
  std::unique_ptr<DestPattern> wdests_;
  std::vector<std::unique_ptr<WormRouter>> wrouters_;    ///< [node]
  std::vector<std::unique_ptr<WormChannel>> wdata_;      ///< [u * ports_ + out_port]
  std::vector<std::unique_ptr<CreditChannel>> wcredit_;  ///< [v * ports_ + in_port]
  /// Directed inter-stage links (u, out p) -> (v, in q); drives both the
  /// ring wiring and the dataflow dependency edges (data u->v, credit v->u).
  struct WormLink {
    unsigned u, p, v, q;
  };
  std::vector<WormLink> wlinks_;
  std::vector<std::unique_ptr<Shard>> shards_;      ///< kBarrier only.
  std::unique_ptr<Dataflow> df_;                    ///< kDataflow only.
  std::unique_ptr<exp::ThreadPool> pool_;  ///< Lazily built when needed.
  obs::MetricsRegistry* metrics_ = nullptr;
  /// Non-null only while the dataflow engine is inside a metrics_->sample()
  /// call; gauge callbacks then read this boundary snapshot instead of the
  /// (concurrently advancing) live node state.
  const SampleFrame* sample_frame_ = nullptr;
  Cycle cycles_run_ = 0;
  Cycle run_target_ = 0;
  bool idle_skip_on_ = true;  ///< Resolved from FabricConfig::idle_skip.
  std::atomic<std::uint64_t> rounds_skipped_{0};
};

}  // namespace pmsb::fabric
