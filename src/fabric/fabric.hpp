// Sharded multi-switch fabric engine: a whole net::Topology of
// cycle-accurate PipelinedSwitch nodes, partitioned across worker threads,
// with a hard determinism contract -- delivered cells, drops, latencies and
// every published metric are bit-identical at any thread count.
//
// Structure per node: one PipelinedSwitch, one PortBridge per incoming link
// (ejection, next-hop head rewrite, transit/injection mux -- see
// src/fabric/bridge.hpp), one TxTap per outgoing link, and per-node
// Injector/Ejector endpoints. ALL inter-node links -- including those whose
// endpoints land in the same shard -- go through the same Channel rings, so
// the simulated wiring does not depend on the partition.
//
// Conservative synchronization: inter-node links have `link_pipe_stages`
// (D >= 1) register stages, i.e. a word leaving a node cannot be observed
// anywhere else for at least D + 1 cycles. Each shard therefore runs its
// nodes locally for a round of up to D cycles, then all shards meet at a
// barrier; every channel slot a shard reads during round r was written in
// round r-1 or earlier, so no cross-shard event can ever be missed. The
// barrier's last arriver samples the metrics gauges, giving the same
// sampling cadence (and values) at every thread count.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "core/config.hpp"
#include "core/event_hub.hpp"
#include "core/fast_switch.hpp"
#include "core/switch.hpp"
#include "exp/thread_pool.hpp"
#include "fabric/bridge.hpp"
#include "fabric/channel.hpp"
#include "net/topology.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "stats/hdr_histogram.hpp"

namespace pmsb::obs {
class PerfettoTrace;
}

namespace pmsb::fabric {

struct FabricConfig {
  net::Topology topo;
  /// Per-node switch geometry. Needs n_ports >= topo.required_ports(),
  /// word_bits >= 16 and cell_words >= 4 (fabric wire format), and a head
  /// tag wide enough for a node id. SwitchConfig::for_ports() qualifies.
  SwitchConfig node = SwitchConfig::for_ports(4);
  /// D: register stages on every inter-node link (latency D + 1 cycles).
  /// Doubles as the shards' synchronization lookahead.
  unsigned link_pipe_stages = 4;
  /// Offered load per node as a fraction of one link's cell rate.
  double load = 0.5;
  std::uint64_t seed = 1;
  /// Worker threads; 0 resolves via exp::thread_count() (PMSB_THREADS).
  /// Clamped to the node count.
  unsigned threads = 0;
  /// Idle-cycle skipping at round granularity: when every component of
  /// every shard is quiescent and every channel is empty, the fabric jumps
  /// whole rounds to the next scheduled injection. Results are bit-identical
  /// either way (CI-enforced). -1 = environment default (PMSB_IDLE_SKIP),
  /// 0 = off, 1 = on.
  int idle_skip = -1;
  /// Per-node model selection: nodes for which this returns true run the
  /// behavioural FastSwitch (core/fast_switch.hpp) instead of the
  /// cycle-accurate PipelinedSwitch -- cold nodes fast, hot nodes exact.
  /// Null (default) = all nodes cycle-accurate. Must be a pure function of
  /// the node index (determinism).
  std::function<bool(unsigned node)> fast_node;
  /// Attach a per-node obs::FlightRecorder (per-stage latency breakdown;
  /// merged across nodes via Fabric::merged_flight()). Event counting is the
  /// only added per-cell cost; off by default.
  bool flight_recorder = false;
  /// Cells whose head arrived before this cycle are excluded from the
  /// flight recorders.
  Cycle flight_warmup = 0;

  ConfigValidation check() const;
  void validate() const;
};

/// Wall-clock accounting for one worker/shard of the last run()s. Telemetry
/// is timing-derived, so it belongs in the BENCH JSON "runtime" block only
/// (the determinism diffs strip it); rounds and cells_relayed are
/// deterministic per shard *given* a thread count, but the shard partition
/// itself changes with PMSB_THREADS.
struct ShardTelemetry {
  unsigned shard = 0;
  unsigned nodes = 0;                 ///< Nodes owned by this shard.
  std::uint64_t active_ns = 0;        ///< Wall time inside Engine::run.
  std::uint64_t barrier_wait_ns = 0;  ///< Wall time parked at the round barrier.
  std::uint64_t rounds = 0;           ///< Rounds stepped (skipped rounds excluded).
  std::uint64_t cells_relayed = 0;    ///< Transit cells relayed by this shard's bridges.
};

/// Aggregated end-of-run accounting, merged over nodes in index order.
struct FabricStats {
  Cycle cycles = 0;
  std::uint64_t injected = 0;   ///< Cells generated (incl. still queued).
  std::uint64_t delivered = 0;
  std::uint64_t payload_errors = 0;
  std::uint64_t dropped_no_addr = 0;
  std::uint64_t dropped_no_slot = 0;
  std::uint64_t dropped_out_limit = 0;
  std::uint64_t backlog = 0;     ///< Generated but not yet on the wire.
  std::uint64_t in_network = 0;  ///< On the wire or buffered in a switch/bridge.
  std::uint64_t uid_digest = 0;  ///< Node-order mix of per-node delivery digests.
  double mean_latency = 0;       ///< Injection -> ejection, delivered cells.
  Cycle min_latency = 0;
  Cycle max_latency = 0;
  /// Full latency distribution (merged per-node HDR histograms, node order):
  /// exact p50/p90/p99/p99.9 at any thread count.
  HdrHistogram latency;

  struct HopRow {
    unsigned hops;
    std::uint64_t cells;
    double mean_latency;
  };
  std::vector<HopRow> by_hops;

  std::uint64_t dropped() const {
    return dropped_no_addr + dropped_no_slot + dropped_out_limit;
  }
};

class Fabric {
 public:
  explicit Fabric(const FabricConfig& cfg);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  unsigned nodes() const { return cfg_.topo.nodes(); }
  unsigned threads() const { return static_cast<unsigned>(shards_.size()); }
  Cycle now() const { return cycles_run_; }
  const FabricConfig& config() const { return cfg_; }
  bool node_is_fast(unsigned i) const { return nodes_[i]->fast != nullptr; }
  const PipelinedSwitch& node_switch(unsigned i) const {
    PMSB_CHECK(nodes_[i]->sw != nullptr, "node runs the fast model (see node_is_fast)");
    return *nodes_[i]->sw;
  }
  const FastSwitch& node_fast_switch(unsigned i) const {
    PMSB_CHECK(nodes_[i]->fast != nullptr, "node runs the cycle-accurate switch");
    return *nodes_[i]->fast;
  }

  /// Register live gauges (fabric.injected/delivered/dropped/backlog/
  /// in_network/latency.mean) on `m` and sample them at every round
  /// boundary of subsequent run() calls. Call before run(); `m` must
  /// outlive the fabric's runs.
  void register_metrics(obs::MetricsRegistry* m);

  /// Advance the whole fabric by `cycles`. Callable repeatedly.
  void run(Cycle cycles);

  /// Deterministic aggregate accounting (identical at any thread count).
  FabricStats stats() const;

  /// Per-node flight recorder (null unless FabricConfig::flight_recorder).
  const obs::FlightRecorder* node_flight(unsigned i) const {
    return nodes_[i]->flight.get();
  }
  /// All nodes' recorders folded in node order -- deterministic at any
  /// thread count. Requires FabricConfig::flight_recorder.
  obs::FlightRecorder merged_flight() const;

  /// Wall-clock telemetry of the run so far, one entry per shard.
  std::vector<ShardTelemetry> shard_telemetry() const;
  /// Rounds the quiescence planner jumped over (0 with idle skipping off).
  std::uint64_t rounds_skipped() const { return rounds_skipped_; }
  /// Render shard telemetry as Perfetto worker tracks (one track per shard,
  /// active / barrier-wait slices in wall-clock microseconds).
  void telemetry_to_perfetto(obs::PerfettoTrace& out) const;

 private:
  struct Node {
    std::unique_ptr<PipelinedSwitch> sw;  ///< Exactly one of sw / fast is set.
    std::unique_ptr<FastSwitch> fast;
    Injector injector;
    Ejector ejector;
    std::uint64_t drop_no_addr = 0;
    std::uint64_t drop_no_slot = 0;
    std::uint64_t drop_out_limit = 0;
    Subscription drop_sub;  ///< Fabric's own EventHub subscription.
    /// Structural checking per node under PMSB_CHECK (coexists with the
    /// drop subscription on the same hub).
    std::unique_ptr<check::InvariantChecker> checker;
    /// Per-stage latency breakdown (FabricConfig::flight_recorder).
    std::unique_ptr<obs::FlightRecorder> flight;
  };

  struct Shard {
    Engine engine;
    std::vector<unsigned> node_ids;
    std::vector<std::unique_ptr<PortBridge>> bridges;
    std::vector<std::unique_ptr<TxTap>> taps;
    // Telemetry, written only by the thread running this shard (the pool's
    // wait_idle orders the writes before the main thread reads them).
    std::uint64_t active_ns = 0;
    std::uint64_t barrier_wait_ns = 0;
    std::uint64_t rounds = 0;
  };

  void build();
  void end_of_round();
  /// Round-granularity idle skip, run inside the barrier completion while
  /// every worker is parked: if all shards are quiescent and all channels
  /// empty, advance cycles_run_ by whole rounds (sampling metrics at each
  /// boundary exactly as stepped rounds would) up to the earliest scheduled
  /// injection, then clear the channel rings. Workers notice the jump after
  /// the barrier and skip_to() their shard engines.
  void maybe_skip();
  std::uint64_t sum_injected() const;
  std::uint64_t sum_delivered() const;
  std::uint64_t sum_dropped() const;
  std::uint64_t sum_backlog() const;
  std::uint64_t sum_lat() const;

  FabricConfig cfg_;
  CellCodec codec_;
  unsigned ports_ = 0;  ///< Router ports in use (topology degree).
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Channel>> channels_;  ///< [node * ports_ + out_port]
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<exp::ThreadPool> pool_;  ///< Lazily built for threads() > 1.
  obs::MetricsRegistry* metrics_ = nullptr;
  Cycle cycles_run_ = 0;
  Cycle run_target_ = 0;
  bool idle_skip_on_ = true;  ///< Resolved from FabricConfig::idle_skip.
  std::uint64_t rounds_skipped_ = 0;  ///< Written inside the barrier completion.
};

}  // namespace pmsb::fabric
