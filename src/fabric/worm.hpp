// Flit-level wormhole transport for the multistage fabrics (banyan / omega /
// Clos): one WormRouter per switching element, connected by the same channel
// rings the cell fabrics use -- a Ring<WormFlit> per inter-stage link in the
// forward direction and a Ring<CreditPulse> per link in the *reverse*
// direction.
//
// Transport model (the classic virtual-channel wormhole router [Dally90],
// specialised to a feed-forward multistage network):
//
//  * A message of `message_flits` flits streams head -> body -> tail. Only
//    the head carries routing state (the destination endpoint); every stage
//    computes its output with net::Topology::route_stage -- a single
//    destination-digit test, no tables.
//  * Each input port buffers flits in `lanes` virtual-channel FIFOs of
//    `lane_depth` flits each. A lane holds flits of at most one message at a
//    time from head to tail (per-lane contiguity), so a blocked message
//    stalls only its own lane while other lanes overtake it -- the whole
//    point of virtual channels on a blocking banyan.
//  * Each output has `lanes` outgoing virtual channels. VC allocation binds
//    an (input, lane) holding a head flit to a free output lane, at most one
//    new binding per output per cycle; switch arbitration then picks at most
//    one flit per output per cycle among its bound lanes (both round-robin
//    for fairness, or lowest-index for a deterministic worst case).
//  * Flow control is credit-based and lossless: an output lane starts with
//    `lane_depth` credits (the downstream FIFO's capacity), spends one per
//    flit sent, and regains one when the downstream router pops that flit
//    and pulses the credit back on the reverse ring. The credit round trip
//    is 2 * (delay + 1) cycles, so full-throughput streaming on one lane
//    needs lane_depth >= 2 * (delay + 1) -- worm fabrics default to
//    link_pipe_stages = 1 for that reason.
//  * The network is feed-forward (stage s only ever sends to stage s + 1),
//    so the channel-dependency graph is acyclic and wormhole deadlock cannot
//    arise; lanes here buy throughput under head-of-line blocking, not
//    deadlock freedom.
//
// First-stage inputs own a Source (Bernoulli message arrivals at
// `messages_per_cycle`, destination from a shared traffic::DestPattern,
// backlog queued losslessly). Injection is per lane, as in [Dally90]: the
// source streams one active message per lane and interleaves their flits
// round-robin at the 1-flit/cycle link rate, so a stalled message blocks
// only its own lane -- never the source. Last-stage outputs own a Sink
// (per-lane
// reassembly, end-to-end payload verification, an order-sensitive delivery
// digest and an HDR latency histogram). Everything a router touches is
// either private or a single-writer ring, so the barrier and dataflow
// engines shard routers exactly like cell-fabric nodes.

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "check/worm_invariants.hpp"
#include "common/rng.hpp"
#include "common/util.hpp"
#include "fabric/channel.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "stats/hdr_histogram.hpp"
#include "traffic/generators.hpp"

namespace pmsb::fabric {

/// One flit on an inter-stage link. `lane` is the virtual channel the flit
/// occupies on *this* link (rewritten per hop); `dest` is the destination
/// endpoint; `msg`/`seq` identify the flit within its message; `created` is
/// the message's arrival cycle at the source (for end-to-end latency).
struct WormFlit {
  bool valid = false;
  bool head = false;
  bool tail = false;
  std::uint8_t lane = 0;
  std::uint16_t dest = 0;
  std::uint32_t seq = 0;
  std::uint64_t msg = 0;
  Cycle created = 0;
  Word data = 0;
};

/// Reverse-direction credit return: bit l set = one credit for lane l of the
/// paired forward link. One pulse aggregates every lane the downstream
/// router popped from this cycle (a lane pops at most one flit per cycle,
/// so one bit per lane suffices).
struct CreditPulse {
  bool valid = false;
  std::uint32_t mask = 0;
};

using WormChannel = Ring<WormFlit>;
using CreditChannel = Ring<CreditPulse>;

/// Lane selection policy for VC allocation (and the switch arbiter).
enum class WormAlloc {
  kRoundRobin,   ///< Rotating priority per output -- fair under contention.
  kLowestIndex,  ///< Fixed priority -- simplest hardware, starvation-prone.
};

/// Deterministic payload word for flit `seq` of message `msg`; the sink
/// recomputes it for end-to-end verification.
inline Word worm_payload(std::uint64_t msg, std::uint32_t seq) {
  return mix64(msg + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(seq) + 1));
}

struct WormParams {
  unsigned lanes = 1;          ///< Virtual channels per port (1..32).
  unsigned lane_depth = 16;    ///< Flits of buffering per lane (= credits).
  unsigned message_flits = 8;  ///< Flits per message (head..tail).
  double messages_per_cycle = 0.0;  ///< Bernoulli arrival rate per endpoint.
  WormAlloc alloc = WormAlloc::kRoundRobin;
};

/// One switching element of a multistage network (see file comment).
class WormRouter : public Component {
 public:
  WormRouter(const net::Topology* topo, unsigned node, const WormParams& params,
             DestPattern* dests);

  // --- Wiring (fabric build time) ----------------------------------------
  /// Inter-stage input: flits arrive on `rx`, credits return on `credit_tx`.
  void connect_in(unsigned in_port, const WormChannel* rx, CreditChannel* credit_tx);
  /// Inter-stage output: flits leave on `tx`, credits arrive on `credit_rx`.
  void connect_out(unsigned out_port, WormChannel* tx, const CreditChannel* credit_rx);
  /// First-stage only: endpoint `endpoint` injects into `in_port`.
  void add_source(unsigned in_port, unsigned endpoint, Rng rng);
  /// Last-stage only: output `out_port` delivers to endpoint `endpoint`.
  void add_sink(unsigned out_port, unsigned endpoint);

  void eval(Cycle t) override;
  void commit(Cycle) override {}
  bool has_commit() const override { return false; }
  /// Quiescent when nothing is buffered, streaming, or bound. In-flight
  /// flits/credits live in the rings, which the fabric's skip planners check
  /// separately (Channel idle_at), exactly as for the cell fabrics.
  bool is_quiescent(Cycle t) const override;
  Cycle next_wake(Cycle t) const override;
  std::string name() const override;

  // --- Accounting (read at barriers / after the run) ---------------------
  struct SourceStats {
    std::uint64_t generated = 0;  ///< Messages created (arrival process).
    std::size_t backlog = 0;      ///< Messages queued, not yet streaming.
  };
  struct SinkStats {
    std::uint64_t delivered = 0;       ///< Complete messages (tail seen).
    std::uint64_t flits = 0;           ///< Flits delivered.
    std::uint64_t payload_errors = 0;  ///< End-to-end payload mismatches.
    std::uint64_t digest = 0;          ///< Order-sensitive delivery digest.
    std::uint64_t lat_sum = 0;
    const HdrHistogram* lat_hist = nullptr;
  };

  bool has_source(unsigned in_port) const { return sources_[in_port] != nullptr; }
  bool has_sink(unsigned out_port) const { return sinks_[out_port] != nullptr; }
  SourceStats source_stats(unsigned in_port) const;
  SinkStats sink_stats(unsigned out_port) const;

  /// Flits relayed onto inter-stage links (the telemetry work measure).
  std::uint64_t flits_forwarded() const { return flits_forwarded_; }
  /// Flits currently buffered across all lane FIFOs.
  std::uint64_t flits_held() const;

 private:
  struct Source {
    unsigned in_port = 0;
    unsigned endpoint = 0;
    Rng rng{0};
    // Precomputed next arrival (same replay scheme as fabric::Injector, so
    // idle stretches between arrivals are skippable without disturbing the
    // RNG stream).
    Cycle next_arrival = 0;
    unsigned next_dest = 0;
    bool primed = false;
    std::uint64_t next_msg_seq = 0;
    std::uint64_t generated = 0;
    struct Pending {
      unsigned dest;
      std::uint64_t msg;
      Cycle created;
    };
    std::deque<Pending> backlog;
    // Streaming state: one active message per lane ([Dally90] per-lane
    // injection), flits interleaved round-robin at <= 1 flit per cycle
    // total (the injection link rate). A single shared worm here would
    // let one stalled hot-destined message head-of-line-block the whole
    // source, and extra lanes could never raise hotspot throughput.
    struct Worm {
      bool active = false;
      std::uint32_t seq = 0;
      unsigned dest = 0;
      std::uint64_t msg = 0;
      Cycle created = 0;
    };
    std::vector<Worm> worms;  ///< [lane]
    unsigned emit_rr = 0;     ///< Rotating emission start lane.
  };

  struct Sink {
    unsigned out_port = 0;
    unsigned endpoint = 0;
    struct LaneRx {
      bool mid = false;
      std::uint64_t msg = 0;
      std::uint32_t next_seq = 0;
      Cycle created = 0;
    };
    std::vector<LaneRx> lanes;
    std::uint64_t delivered = 0;
    std::uint64_t flits = 0;
    std::uint64_t payload_errors = 0;
    std::uint64_t digest = 0;
    std::uint64_t lat_sum = 0;
    HdrHistogram lat_hist;
  };

  /// Binding of an (input, lane) to the output it is streaming through.
  struct InState {
    bool active = false;
    unsigned out = 0;
    unsigned out_lane = 0;
  };

  /// One outgoing virtual channel of an output port.
  struct OutLane {
    bool owned = false;
    unsigned in = 0;
    unsigned in_lane = 0;
    unsigned credits = 0;
  };

  std::size_t li(unsigned port, unsigned lane) const {
    return static_cast<std::size_t>(port) * params_.lanes + lane;
  }
  void push_flit(unsigned in_port, const WormFlit& f);
  void source_step(Source& s, Cycle t);
  void source_prime(Source& s, Cycle from);
  void alloc_lane(unsigned out, Cycle t);
  void arbitrate(unsigned out, Cycle t);
  void deliver(Sink& sink, const WormFlit& f, Cycle t);

  const net::Topology* topo_;
  unsigned node_;
  WormParams params_;
  DestPattern* dests_;
  unsigned ports_;
  bool last_stage_;

  std::vector<const WormChannel*> rx_;      ///< [in_port], null at ingress.
  std::vector<CreditChannel*> credit_tx_;   ///< [in_port], null at ingress.
  std::vector<WormChannel*> tx_;            ///< [out_port], null at egress.
  std::vector<const CreditChannel*> credit_rx_;  ///< [out_port], null at egress.

  std::vector<std::deque<WormFlit>> fifo_;  ///< [li(in, lane)]
  std::vector<InState> in_state_;           ///< [li(in, lane)]
  std::vector<OutLane> out_lane_;           ///< [li(out, lane)]
  std::vector<unsigned> rr_alloc_;  ///< Per-output VC-allocation scan start.
  std::vector<unsigned> rr_lane_;   ///< Per-output free-lane grant start.
  std::vector<unsigned> rr_sw_;     ///< Per-output switch-arbiter scan start.
  std::vector<unsigned> src_rr_;    ///< Per-input source lane-pick start.

  /// Lanes popped during the current eval: blocks a second pop from the
  /// same lane (one flit per lane per cycle) and keeps the OR-ed credit
  /// mask exact -- without it, a tail popped at one output and the next
  /// message's head popped at another output in the same cycle would merge
  /// into a single credit bit and leak a credit.
  std::vector<bool> popped_;                ///< [li(in, lane)], eval scratch.
  std::vector<std::uint32_t> credit_mask_;  ///< [in_port], eval scratch.

  std::vector<std::unique_ptr<Source>> sources_;  ///< [in_port]
  std::vector<std::unique_ptr<Sink>> sinks_;      ///< [out_port]

  std::uint64_t flits_in_total_ = 0;   ///< Accepted off links + injected.
  std::uint64_t flits_out_total_ = 0;  ///< Forwarded + delivered.
  std::uint64_t flits_forwarded_ = 0;  ///< Forwarded onto inter-stage links.

  std::unique_ptr<check::WormAuditor> auditor_;  ///< Non-null under PMSB_CHECK=1.
};

}  // namespace pmsb::fabric
