#include "fabric/fabric.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/rng.hpp"
#include "exp/sweep.hpp"
#include "fabric/scheduler.hpp"
#include "fabric/task.hpp"
#include "obs/perfetto.hpp"
#include "sim/barrier.hpp"
#include "traffic/spec.hpp"

namespace pmsb::fabric {
namespace {
bool g_engine_overridden = false;
FabricEngine g_engine_override = FabricEngine::kBarrier;
}  // namespace

void set_fabric_engine_override(FabricEngine e) {
  g_engine_overridden = true;
  g_engine_override = e;
}

FabricEngine fabric_engine_env_default() {
  if (g_engine_overridden) return g_engine_override;
  static const FabricEngine e = [] {
    const char* v = std::getenv("PMSB_FABRIC_ENGINE");
    if (v != nullptr && std::string(v) == "dataflow") return FabricEngine::kDataflow;
    return FabricEngine::kBarrier;
  }();
  return e;
}

const char* to_string(FabricEngine e) {
  return e == FabricEngine::kDataflow ? "dataflow" : "barrier";
}

ConfigValidation FabricConfig::check() const {
  // Multistage (wormhole) fabrics have no per-node switch; their geometry
  // and transport parameters are validated here instead of node.check().
  if (topo.multistage()) {
    ConfigValidation v;
    auto issue = [&v](ConfigIssue::Code c, std::string msg) {
      v.issues.push_back(ConfigIssue{c, std::move(msg)});
    };
    if (topo.kind == net::TopologyKind::kClos) {
      if (topo.radix < 2)
        issue(ConfigIssue::Code::kBadTopology, "a Clos network needs radix >= 2");
      else if (topo.width != topo.radix * topo.radix)
        issue(ConfigIssue::Code::kBadTopology,
              "a symmetric Clos C(k,k,k) needs width == radix * radix endpoints");
    } else if (!is_pow2(topo.width) || topo.width < 4) {
      issue(ConfigIssue::Code::kBadTopology,
            "banyan/omega networks need a power-of-two width >= 4");
    }
    if (lanes < 1 || lanes > 32)
      issue(ConfigIssue::Code::kBadPorts, "wormhole lanes must be in [1, 32]");
    else if (buffer_flits < lanes || buffer_flits % lanes != 0)
      issue(ConfigIssue::Code::kBadCapacity,
            "buffer_flits must be a positive multiple of lanes");
    if (message_flits < 1)
      issue(ConfigIssue::Code::kBadCellWords, "wormhole messages need >= 1 flit");
    if (link_pipe_stages < 1)
      issue(ConfigIssue::Code::kBadLinkStages, "inter-stage links need >= 1 register stage");
    if (!(load >= 0.0) || load > 1.0)
      issue(ConfigIssue::Code::kBadLoad, "offered load must be in [0, 1]");
    if (tasks_per_worker < 1)
      issue(ConfigIssue::Code::kBadTopology, "tasks_per_worker must be >= 1");
    try {
      (void)traffic::GeneratorSpec::parse(traffic);
    } catch (const std::invalid_argument& e) {
      issue(ConfigIssue::Code::kBadLoad, e.what());
    }
    if (fast_node)
      issue(ConfigIssue::Code::kBadTopology, "fast_node applies to cell fabrics only");
    if (flight_recorder)
      issue(ConfigIssue::Code::kBadTopology,
            "flight_recorder applies to cell fabrics only");
    return v;
  }

  ConfigValidation v = node.check();
  auto issue = [&v](ConfigIssue::Code c, std::string msg) {
    v.issues.push_back(ConfigIssue{c, std::move(msg)});
  };
  try {
    const auto spec = traffic::GeneratorSpec::parse(traffic);
    if (spec.kind != traffic::GeneratorSpec::Kind::kUniform)
      issue(ConfigIssue::Code::kBadLoad,
            "cell fabrics support uniform traffic only (got \"" + traffic + "\")");
  } catch (const std::invalid_argument& e) {
    issue(ConfigIssue::Code::kBadLoad, e.what());
  }
  if (topo.nodes() < 2) issue(ConfigIssue::Code::kBadTopology, "fabric needs at least two nodes");
  if (topo.kind == net::TopologyKind::kRing) {
    if (topo.height != 1 || topo.width < 2)
      issue(ConfigIssue::Code::kBadTopology, "a ring is width >= 2, height == 1");
  } else if (topo.kind == net::TopologyKind::kTorus2D) {
    // Width/height 1 would wrap a node onto itself.
    if (topo.width < 2 || topo.height < 2)
      issue(ConfigIssue::Code::kBadTopology, "a torus needs width and height >= 2");
  }
  if (node.n_ports < topo.required_ports())
    issue(ConfigIssue::Code::kBadPorts,
          "fabric nodes need at least " + std::to_string(topo.required_ports()) + " ports");
  if (node.word_bits < 16)
    issue(ConfigIssue::Code::kBadWordBits, "fabric wire format needs word_bits >= 16");
  if (node.cell_words < 4)
    issue(ConfigIssue::Code::kBadCellWords, "fabric wire format needs cells of >= 4 words");
  else if (bits_for(topo.nodes()) > node.cell_format().tag_bits())
    issue(ConfigIssue::Code::kHeadTooNarrow, "head tag too narrow for a node id");
  if (link_pipe_stages < 1)
    issue(ConfigIssue::Code::kBadLinkStages, "inter-node links need >= 1 register stage");
  if (!(load >= 0.0) || load > 1.0)
    issue(ConfigIssue::Code::kBadLoad, "offered load must be in [0, 1]");
  if (tasks_per_worker < 1)
    issue(ConfigIssue::Code::kBadTopology, "tasks_per_worker must be >= 1");
  return v;
}

void FabricConfig::validate() const {
  const ConfigValidation v = check();
  if (!v.ok()) throw std::invalid_argument(v.summary());
}

// ---------------------------------------------------------------------------
// Dataflow engine internals.
//
// Correctness model (full argument in DESIGN.md "Task-dataflow fabric"):
// every node publishes `done` -- the count of cycles it has fully executed.
// Node X with upstream neighbors U and downstream neighbors Y may execute
// cycle t when
//
//   t <  min_U(U.done) + D            (input bound: the channel slot X reads
//                                      at t, written at t - D, exists once
//                                      U.done > t - D)
//   t <  min_Y(Y.done) + capacity - D (credit bound: X's write at t lands on
//                                      the slot aliasing cycle t - capacity,
//                                      which Y consumed strictly before its
//                                      current cycle)
//
// Both loads are seq_cst and every `done` store is seq_cst, which (a) gives
// the ring writes release/acquire visibility through the counter, replacing
// the barrier's happens-before edge, and (b) pairs with the scheduler's
// blocked/wake Dekker protocol (scheduler.hpp). The global minimum node is
// always runnable (its bounds are strictly ahead of it), so the task graph
// cannot deadlock.

struct Fabric::Dataflow {
  struct NodeRt {
    Engine engine;  ///< This node's private two-phase kernel.
    std::vector<std::unique_ptr<PortBridge>> bridges;
    std::vector<std::unique_ptr<TxTap>> taps;
    /// Cycles fully executed (== engine.now() between chunks). The only
    /// cross-thread-written word of the node; everything else is owned by
    /// whichever worker holds the node's task.
    std::atomic<Cycle> done{0};
    struct In {
      unsigned node;    ///< Upstream neighbor (in the dependency graph).
      ChannelBase* ch;  ///< The ring it writes and this node reads.
    };
    std::vector<In> ins;
    std::vector<unsigned> out_nodes;  ///< Downstream neighbors.
    std::vector<ChannelBase*> out_chs;
    Cycle credit = 0;  ///< min over out_chs of capacity() - D.
  };

  class Task : public SchedTask {
   public:
    Fabric* fab = nullptr;
    std::vector<unsigned> node_ids;
    /// active_ns at the start of the current run (rebalance input).
    std::uint64_t active_snapshot = 0;

    Advance advance() override {
      bool progressed = false;
      bool any_blocked = false;
      bool any_empty = false;
      for (unsigned v : node_ids) {
        switch (fab->df_advance_node(v)) {
          case NodeAdvance::kStepped:
            rounds.fetch_add(1, std::memory_order_relaxed);
            progressed = true;
            break;
          case NodeAdvance::kSkipped: progressed = true; break;
          case NodeAdvance::kInputBlocked:
            any_blocked = true;
            any_empty = true;
            break;
          case NodeAdvance::kCreditBlocked: any_blocked = true; break;
          case NodeAdvance::kNodeDone: break;
        }
      }
      if (progressed) return Advance::kProgress;
      if (!any_blocked) return Advance::kFinished;
      return any_empty ? Advance::kBlockedOnEmpty : Advance::kBlockedOnFull;
    }

    bool can_advance() const override {
      for (unsigned v : node_ids)
        if (fab->df_node_ready(v)) return true;
      return false;
    }
  };

  /// Accumulator for one in-flight round boundary's metric sample (see
  /// df_contribute_sample). Reused round-robin: slot j serves boundaries
  /// j, j + R, j + 2R, ... where R = frames.size().
  struct FrameSlot {
    std::atomic<Cycle> boundary{-1};  ///< Boundary index armed, -1 inactive.
    std::atomic<unsigned> remaining{0};
    std::atomic<std::uint64_t> injected{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> backlog{0};
    std::atomic<std::uint64_t> lat_sum{0};
  };

  std::vector<std::unique_ptr<NodeRt>> nodes;
  std::vector<std::unique_ptr<Task>> tasks;
  std::vector<unsigned> task_of;  ///< node -> owning task index.
  std::vector<std::vector<unsigned>> wake_lists;
  std::vector<unsigned> placement;
  std::unique_ptr<Scheduler> scheduler;

  // Current run window.
  Cycle run_start = 0;
  Cycle target = 0;
  Cycle round = 1;         ///< Boundary spacing (= link_pipe_stages).
  Cycle n_boundaries = 0;  ///< Of the current run; 0 with metrics off.
  std::vector<std::unique_ptr<FrameSlot>> frames;
  /// Next boundary index whose sample may be published (orders the
  /// registry's sample() calls exactly like the barrier's rounds).
  std::atomic<Cycle> sample_turn{0};

  // Rebalancing (planned at run end, applied at next run start).
  std::vector<std::vector<unsigned>> pending_parts;
  bool pending = false;
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
  std::vector<std::string> log;

  /// Smallest boundary cycle > d of the current run.
  Cycle next_boundary(Cycle d) const {
    const Cycle len = target - run_start;
    Cycle nb = ((d - run_start) / round + 1) * round;
    if (nb > len) nb = len;
    return run_start + nb;
  }
  bool is_boundary(Cycle c) const {
    const Cycle rel = c - run_start;
    return rel > 0 && (rel == target - run_start || rel % round == 0);
  }
  Cycle boundary_index(Cycle c) const {
    const Cycle rel = c - run_start;
    return rel % round == 0 ? rel / round - 1 : n_boundaries - 1;
  }
  Cycle boundary_cycle(Cycle index) const {
    const Cycle len = target - run_start;
    return run_start + std::min<Cycle>((index + 1) * round, len);
  }
};

std::unique_ptr<Fabric> Fabric::build(const net::Topology& topo, const FabricConfig& cfg) {
  FabricConfig c = cfg;
  c.topo = topo;
  return std::unique_ptr<Fabric>(new Fabric(c));
}

Fabric::Fabric(const FabricConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  worm_ = cfg_.topo.multistage();
  if (!worm_) codec_ = CellCodec{cfg_.node.cell_format(), bits_for(cfg_.topo.nodes())};
  ports_ = cfg_.topo.required_ports();
  build();
}

Fabric::~Fabric() = default;

void Fabric::wire_node(unsigned v, Engine& eng,
                       std::vector<std::unique_ptr<PortBridge>>& bridges,
                       std::vector<std::unique_ptr<TxTap>>& taps) {
  const net::Topology& topo = cfg_.topo;
  Node& node = *nodes_[v];
  eng.add(node.sw ? static_cast<Component*>(node.sw.get())
                  : static_cast<Component*>(node.fast.get()));
  auto in_link = [&node](unsigned q) -> WireLink* {
    return node.sw ? &node.sw->in_link(q) : &node.fast->in_link(q);
  };
  auto out_link = [&node](unsigned p) -> WireLink* {
    return node.sw ? &node.sw->out_link(p) : &node.fast->out_link(p);
  };
  // The first connected port doubles as the node's injection point.
  bool designated = false;
  for (unsigned q = 0; q < ports_; ++q) {
    const net::Port port = static_cast<net::Port>(q);
    const int u = topo.neighbor(v, port);
    if (u < 0) continue;
    Channel* rx = channels_[static_cast<unsigned>(u) * ports_ + net::opposite(port)].get();
    PMSB_CHECK(rx != nullptr, "fabric link without a channel");
    Injector* inj = designated ? nullptr : &node.injector;
    designated = true;
    bridges.push_back(std::make_unique<PortBridge>(&cfg_.topo, &codec_, v, port, rx,
                                                   in_link(q), inj, &node.ejector));
    eng.add(bridges.back().get());
  }
  PMSB_CHECK(designated, "fabric node with no links");
  for (unsigned p = 0; p < ports_; ++p) {
    Channel* ch = channels_[v * ports_ + p].get();
    if (!ch) continue;
    taps.push_back(std::make_unique<TxTap>(out_link(p), ch));
    eng.add(taps.back().get());
  }
  // Structural invariant checking only exists for the cycle-accurate
  // switch; fast nodes are covered by the differential harness instead.
  if (check::env_enabled() && node.sw) {
    node.checker = std::make_unique<check::InvariantChecker>();
    node.checker->attach(*node.sw, eng);
  }
}

void Fabric::build() {
  const unsigned n = cfg_.topo.nodes();
  unsigned workers = cfg_.threads ? cfg_.threads : exp::thread_count();
  workers_ = std::min(std::max(workers, 1u), n);
  idle_skip_on_ = cfg_.idle_skip < 0 ? Engine::idle_skip_env_default() : cfg_.idle_skip != 0;
  if (worm_)
    build_worm();
  else
    build_cells();
}

void Fabric::build_worm() {
  const net::Topology& topo = cfg_.topo;
  const unsigned n = topo.nodes();
  const auto spec = traffic::GeneratorSpec::parse(cfg_.traffic);

  // One shared destination pattern: pick() is stateless (each caller passes
  // its own Rng), so routers on different threads can share it. The rng here
  // only seeds the permutation draw.
  Rng drng(mix64(cfg_.seed ^ 0x517cc1b727220a95ULL));
  wdests_ = spec.make_dest(topo.endpoints(), drng);

  WormParams wp;
  wp.lanes = cfg_.lanes;
  wp.lane_depth = cfg_.buffer_flits / cfg_.lanes;
  wp.message_flits = cfg_.message_flits;
  wp.messages_per_cycle = spec.load_or(cfg_.load) / cfg_.message_flits;
  wp.alloc = cfg_.alloc;

  wrouters_.reserve(n);
  for (unsigned v = 0; v < n; ++v)
    wrouters_.push_back(std::make_unique<WormRouter>(&cfg_.topo, v, wp, wdests_.get()));

  // Inter-stage links: a forward flit ring u->v plus a reverse credit ring
  // v->u per link, identical wiring at every thread count and engine.
  wdata_.resize(static_cast<std::size_t>(n) * ports_);
  wcredit_.resize(static_cast<std::size_t>(n) * ports_);
  for (unsigned u = 0; u < n; ++u) {
    for (unsigned p = 0; p < ports_; ++p) {
      const int v = topo.neighbor(u, p);
      if (v < 0) continue;
      const unsigned q = topo.peer_in_port(u, p);
      auto& data = wdata_[u * ports_ + p];
      auto& credit = wcredit_[static_cast<unsigned>(v) * ports_ + q];
      data = std::make_unique<WormChannel>(cfg_.link_pipe_stages);
      credit = std::make_unique<CreditChannel>(cfg_.link_pipe_stages);
      wrouters_[u]->connect_out(p, data.get(), credit.get());
      wrouters_[static_cast<unsigned>(v)]->connect_in(q, data.get(), credit.get());
      wlinks_.push_back(WormLink{u, p, static_cast<unsigned>(v), q});
    }
  }

  // Endpoints: sources on the first stage's inputs (per-endpoint RNG split
  // from the seed, like the cell Injectors), sinks on the last stage's
  // outputs.
  for (unsigned e = 0; e < topo.endpoints(); ++e) {
    const auto [v, q] = topo.ingress_of(e);
    wrouters_[v]->add_source(q, e, Rng(mix64(cfg_.seed + 0x9e3779b97f4a7c15ULL * (e + 1))));
  }
  for (unsigned el = 0; el < topo.elements_per_stage(); ++el) {
    const unsigned v = topo.node_id(topo.stages() - 1, el);
    for (unsigned p = 0; p < ports_; ++p)
      wrouters_[v]->add_sink(p, topo.egress_endpoint(v, p));
  }

  if (cfg_.engine == FabricEngine::kDataflow) {
    build_worm_dataflow(workers_);
    return;
  }

  shards_.reserve(workers_);
  for (unsigned s = 0; s < workers_; ++s) {
    auto shard = std::make_unique<Shard>();
    const unsigned lo = s * n / workers_;
    const unsigned hi = (s + 1) * n / workers_;
    shard->engine.set_idle_skip(false);  // only maybe_skip may skip (rounds)
    for (unsigned v = lo; v < hi; ++v) {
      shard->node_ids.push_back(v);
      shard->engine.add(wrouters_[v].get());
    }
    shards_.push_back(std::move(shard));
  }
}

void Fabric::build_cells() {
  const net::Topology& topo = cfg_.topo;
  const unsigned n = topo.nodes();

  // A "uniform:LOAD" spec overrides cfg_.load, same as the worm fabrics.
  const double load = traffic::GeneratorSpec::parse(cfg_.traffic).load_or(cfg_.load);

  nodes_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    auto node = std::make_unique<Node>();
    if (cfg_.fast_node && cfg_.fast_node(i)) {
      node->fast = std::make_unique<FastSwitch>(cfg_.node);
    } else {
      node->sw = std::make_unique<PipelinedSwitch>(cfg_.node);
    }
    node->injector.rng = Rng(mix64(cfg_.seed + 0x9e3779b97f4a7c15ULL * (i + 1)));
    node->injector.cells_per_cycle = load / cfg_.node.cell_words;
    node->injector.self = i;
    node->injector.n_nodes = n;
    // The fabric's own accounting rides the multi-subscriber hub, leaving
    // room for checkers, scoreboards, and user taps on the same switch.
    SwitchEvents ev;
    Node* np = node.get();
    ev.on_drop = [np](unsigned, Cycle, DropReason why) {
      switch (why) {
        case DropReason::kNoAddress: ++np->drop_no_addr; break;
        case DropReason::kNoSlot: ++np->drop_no_slot; break;
        case DropReason::kOutputLimit: ++np->drop_out_limit; break;
      }
    };
    EventHub& hub = node->sw ? node->sw->events() : node->fast->events();
    node->drop_sub = hub.subscribe(std::move(ev));
    if (cfg_.flight_recorder) {
      obs::FlightRecorderConfig fr;
      fr.warmup = cfg_.flight_warmup;
      node->flight = std::make_unique<obs::FlightRecorder>(cfg_.node.n_ports,
                                                           cfg_.node.cell_words, fr);
      node->flight->attach(hub);
    }
    nodes_.push_back(std::move(node));
  }

  // Identical wiring at every thread count AND engine: each directed link
  // gets a channel even when both endpoints share a shard.
  channels_.resize(static_cast<std::size_t>(n) * ports_);
  for (unsigned u = 0; u < n; ++u) {
    for (unsigned p = 0; p < ports_; ++p) {
      if (topo.neighbor(u, static_cast<net::Port>(p)) >= 0)
        channels_[u * ports_ + p] = std::make_unique<Channel>(cfg_.link_pipe_stages);
    }
  }

  if (cfg_.engine == FabricEngine::kDataflow) {
    build_dataflow(workers_);
    return;
  }

  // kBarrier: contiguous node blocks per shard (cache locality; any fixed
  // partition yields identical results).
  shards_.reserve(workers_);
  for (unsigned s = 0; s < workers_; ++s) {
    auto shard = std::make_unique<Shard>();
    const unsigned lo = s * n / workers_;
    const unsigned hi = (s + 1) * n / workers_;
    // Engine-local skipping stays off inside shards: a shard cannot see
    // other shards' in-flight flits or its own channels' contents, so only
    // the fabric-level planner (maybe_skip) may skip, at round granularity.
    shard->engine.set_idle_skip(false);
    for (unsigned v = lo; v < hi; ++v) {
      shard->node_ids.push_back(v);
      wire_node(v, shard->engine, shard->bridges, shard->taps);
    }
    shards_.push_back(std::move(shard));
  }
}

void Fabric::build_dataflow(unsigned workers) {
  df_ = std::make_unique<Dataflow>();
  Dataflow& df = *df_;
  const unsigned n = nodes();
  const Cycle stages = cfg_.link_pipe_stages;

  df.scheduler = std::make_unique<Scheduler>(workers);
  df.nodes.reserve(n);
  for (unsigned v = 0; v < n; ++v) {
    auto nd = std::make_unique<Dataflow::NodeRt>();
    // Engine-local skipping off: the node's engine cannot see its channels,
    // so only df_advance_node may skip, with the channel-idle check.
    nd->engine.set_idle_skip(false);
    wire_node(v, nd->engine, nd->bridges, nd->taps);
    for (unsigned q = 0; q < ports_; ++q) {
      const net::Port port = static_cast<net::Port>(q);
      const int u = cfg_.topo.neighbor(v, port);
      if (u < 0) continue;
      Channel* rx = channels_[static_cast<unsigned>(u) * ports_ + net::opposite(port)].get();
      nd->ins.push_back(Dataflow::NodeRt::In{static_cast<unsigned>(u), rx});
    }
    Cycle credit = kNeverWake;
    for (unsigned p = 0; p < ports_; ++p) {
      Channel* ch = channels_[v * ports_ + p].get();
      if (!ch) continue;
      nd->out_nodes.push_back(
          static_cast<unsigned>(cfg_.topo.neighbor(v, static_cast<net::Port>(p))));
      nd->out_chs.push_back(ch);
      const Cycle c = static_cast<Cycle>(ch->capacity()) - stages;
      if (c < credit) credit = c;
    }
    PMSB_CHECK(credit > 0, "channel ring smaller than its own delay");
    nd->credit = credit;
    df.nodes.push_back(std::move(nd));
  }

  // Sampling-frame ring: clock skew between any two nodes is bounded by
  // diameter * D (each hop adds at most D), i.e. `diameter` boundaries, so
  // diameter + 4 in-flight boundary accumulators can never collide.
  df_finish_build(workers, cfg_.topo.diameter() + 4);
}

void Fabric::build_worm_dataflow(unsigned workers) {
  df_ = std::make_unique<Dataflow>();
  Dataflow& df = *df_;
  const unsigned n = nodes();
  const Cycle stages = cfg_.link_pipe_stages;

  df.scheduler = std::make_unique<Scheduler>(workers);
  df.nodes.reserve(n);
  for (unsigned v = 0; v < n; ++v) {
    auto nd = std::make_unique<Dataflow::NodeRt>();
    nd->engine.set_idle_skip(false);  // only df_advance_node may skip
    nd->engine.add(wrouters_[v].get());
    df.nodes.push_back(std::move(nd));
  }
  // Dependency edges from the link list: the forward flit ring makes v a
  // downstream of u, and the reverse credit ring makes u a downstream of v
  // -- same input/credit bounds, pointing both ways along every link.
  for (const WormLink& l : wlinks_) {
    WormChannel* data = wdata_[l.u * ports_ + l.p].get();
    CreditChannel* credit = wcredit_[l.v * ports_ + l.q].get();
    df.nodes[l.v]->ins.push_back(Dataflow::NodeRt::In{l.u, data});
    df.nodes[l.u]->out_nodes.push_back(l.v);
    df.nodes[l.u]->out_chs.push_back(data);
    df.nodes[l.u]->ins.push_back(Dataflow::NodeRt::In{l.v, credit});
    df.nodes[l.v]->out_nodes.push_back(l.u);
    df.nodes[l.v]->out_chs.push_back(credit);
  }
  for (auto& nd : df.nodes) {
    Cycle credit = kNeverWake;
    for (ChannelBase* ch : nd->out_chs) {
      const Cycle c = static_cast<Cycle>(ch->capacity()) - stages;
      if (c < credit) credit = c;
    }
    if (credit == kNeverWake) credit = 1;  // isolated node (cannot happen)
    PMSB_CHECK(credit > 0, "channel ring smaller than its own delay");
    nd->credit = credit;
  }

  // The dependency graph is bidirectional along every link (credits flow
  // upstream), so the skew bound is the *undirected* stage distance: at
  // most 2 * (stages - 1) boundaries between the clocks of any two routers.
  df_finish_build(workers, 2 * cfg_.topo.stages() + 4);
}

void Fabric::df_finish_build(unsigned workers, unsigned frame_ring) {
  Dataflow& df = *df_;
  const unsigned n = nodes();
  df.frames.reserve(frame_ring);
  for (unsigned j = 0; j < frame_ring; ++j)
    df.frames.push_back(std::make_unique<Dataflow::FrameSlot>());

  // Initial partition: contiguous blocks, tasks_per_worker tasks per worker
  // so stealing and rebalancing have slack to move load around.
  unsigned ntasks = workers * cfg_.tasks_per_worker;
  ntasks = std::min(std::max(ntasks, workers), n);
  std::vector<std::vector<unsigned>> parts(ntasks);
  for (unsigned t = 0; t < ntasks; ++t) {
    const unsigned lo = t * n / ntasks;
    const unsigned hi = (t + 1) * n / ntasks;
    for (unsigned v = lo; v < hi; ++v) parts[t].push_back(v);
  }
  df_apply_partition(parts);
}

void Fabric::df_apply_partition(const std::vector<std::vector<unsigned>>& parts) {
  Dataflow& df = *df_;
  const unsigned n = nodes();
  df.tasks.clear();
  df.task_of.assign(n, 0);
  for (std::size_t t = 0; t < parts.size(); ++t) {
    PMSB_CHECK(!parts[t].empty(), "empty task in fabric partition");
    auto task = std::make_unique<Dataflow::Task>();
    task->fab = this;
    task->node_ids = parts[t];
    for (unsigned v : parts[t]) df.task_of[v] = static_cast<unsigned>(t);
    df.tasks.push_back(std::move(task));
  }
  // Wake lists: the tasks owning any channel neighbor of this task's nodes.
  df.wake_lists.assign(parts.size(), {});
  for (std::size_t t = 0; t < parts.size(); ++t) {
    std::vector<unsigned>& nbrs = df.wake_lists[t];
    for (unsigned v : parts[t]) {
      for (const Dataflow::NodeRt::In& in : df.nodes[v]->ins)
        nbrs.push_back(df.task_of[in.node]);
      for (unsigned o : df.nodes[v]->out_nodes) nbrs.push_back(df.task_of[o]);
    }
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    nbrs.erase(std::remove(nbrs.begin(), nbrs.end(), static_cast<unsigned>(t)), nbrs.end());
  }
  // Initial placement follows the node index (neighboring tasks start on
  // the same worker); stealing takes it from there.
  df.placement.resize(parts.size());
  for (std::size_t t = 0; t < parts.size(); ++t) {
    const unsigned w = static_cast<unsigned>(
        static_cast<std::uint64_t>(parts[t].front()) * workers_ / n);
    df.placement[t] = std::min(w, workers_ - 1);
  }
}

void Fabric::register_metrics(obs::MetricsRegistry* m) {
  metrics_ = m;
  if (!m) return;
  // Under the dataflow engine the gauges fire inside a boundary-frame
  // publication (df_contribute_sample) while other nodes keep advancing, so
  // they read the assembled SampleFrame; the barrier engine samples with
  // every worker parked and reads live state. Values are identical.
  m->add_gauge("fabric.injected", [this] {
    return static_cast<double>(sample_frame_ ? sample_frame_->injected : sum_injected());
  });
  m->add_gauge("fabric.delivered", [this] {
    return static_cast<double>(sample_frame_ ? sample_frame_->delivered : sum_delivered());
  });
  m->add_gauge("fabric.dropped", [this] {
    return static_cast<double>(sample_frame_ ? sample_frame_->dropped : sum_dropped());
  });
  m->add_gauge("fabric.backlog", [this] {
    return static_cast<double>(sample_frame_ ? sample_frame_->backlog : sum_backlog());
  });
  m->add_gauge("fabric.in_network", [this] {
    if (sample_frame_)
      return static_cast<double>(sample_frame_->injected - sample_frame_->backlog -
                                 sample_frame_->delivered - sample_frame_->dropped);
    return static_cast<double>(sum_injected() - sum_backlog() - sum_delivered() -
                               sum_dropped());
  });
  m->add_gauge("fabric.latency.mean", [this] {
    const std::uint64_t d = sample_frame_ ? sample_frame_->delivered : sum_delivered();
    const std::uint64_t lat = sample_frame_ ? sample_frame_->lat_sum : sum_lat();
    return d ? static_cast<double>(lat) / static_cast<double>(d) : 0.0;
  });
}

void Fabric::run(Cycle cycles) {
  if (cycles <= 0) return;
  if (cfg_.engine == FabricEngine::kDataflow) {
    run_dataflow(cycles);
    return;
  }
  run_target_ = cycles_run_ + cycles;
  const Cycle lookahead = cfg_.link_pipe_stages;

  using SteadyClock = std::chrono::steady_clock;
  auto ns_between = [](SteadyClock::time_point a, SteadyClock::time_point b) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };

  if (shards_.size() == 1) {
    Shard& s = *shards_[0];
    while (cycles_run_ < run_target_) {
      const auto t0 = SteadyClock::now();
      s.engine.run(std::min<Cycle>(lookahead, run_target_ - cycles_run_));
      const auto t1 = SteadyClock::now();
      end_of_round();
      // With one shard the "barrier" cost is the round bookkeeping itself.
      s.active_ns += ns_between(t0, t1);
      s.barrier_wait_ns += ns_between(t1, SteadyClock::now());
      ++s.rounds;
      if (s.engine.now() < cycles_run_) s.engine.skip_to(cycles_run_);
    }
    return;
  }

  const unsigned workers = static_cast<unsigned>(shards_.size());
  if (!pool_) {
    exp::ThreadPoolOptions po;
    if (exp::pin_threads_env())
      po.on_worker_start = [](unsigned w) { exp::pin_current_thread(w); };
    pool_ = std::make_unique<exp::ThreadPool>(workers, std::move(po));
  }
  // The last arriver of each round advances the global clock and samples
  // the gauges while every other shard is parked (see sim/barrier.hpp).
  SpinBarrier barrier(workers, [this] { end_of_round(); });
  const Cycle start = cycles_run_;
  const Cycle target = run_target_;
  for (auto& sp : shards_) {
    Shard* shard = sp.get();
    pool_->submit([this, shard, start, target, lookahead, &barrier, ns_between] {
      Cycle done = start;
      while (done < target) {
        const Cycle step = std::min<Cycle>(lookahead, target - done);
        const auto t0 = SteadyClock::now();
        shard->engine.run(step);
        const auto t1 = SteadyClock::now();
        done += step;
        barrier.arrive_and_wait();
        shard->active_ns += ns_between(t0, t1);
        shard->barrier_wait_ns += ns_between(t1, SteadyClock::now());
        ++shard->rounds;
        // The planner may have skipped whole rounds inside the barrier
        // (maybe_skip); every worker observes the same jump -- the barrier
        // orders the cycles_run_ write before this read -- so all shards
        // take identical trajectories.
        if (done < cycles_run_ && cycles_run_ <= target) {
          shard->engine.skip_to(cycles_run_);
          done = cycles_run_;
        }
      }
    });
  }
  pool_->wait_idle();
  PMSB_CHECK(cycles_run_ == run_target_, "fabric rounds out of step");
}

void Fabric::run_dataflow(Cycle cycles) {
  Dataflow& df = *df_;
  if (df.pending) {
    df_apply_partition(df.pending_parts);
    df.pending_parts.clear();
    df.pending = false;
  }
  df.run_start = cycles_run_;
  df.target = cycles_run_ + cycles;
  run_target_ = df.target;
  df.round = cfg_.link_pipe_stages;
  if (metrics_ != nullptr) {
    df.n_boundaries = (cycles + df.round - 1) / df.round;
    df.sample_turn.store(0, std::memory_order_relaxed);
    const Cycle rsize = static_cast<Cycle>(df.frames.size());
    for (Cycle j = 0; j < rsize; ++j) {
      Dataflow::FrameSlot& slot = *df.frames[static_cast<std::size_t>(j)];
      slot.injected.store(0, std::memory_order_relaxed);
      slot.delivered.store(0, std::memory_order_relaxed);
      slot.dropped.store(0, std::memory_order_relaxed);
      slot.backlog.store(0, std::memory_order_relaxed);
      slot.lat_sum.store(0, std::memory_order_relaxed);
      slot.remaining.store(nodes(), std::memory_order_relaxed);
      slot.boundary.store(j < df.n_boundaries ? j : -1, std::memory_order_release);
    }
  } else {
    df.n_boundaries = 0;
  }
  for (auto& t : df.tasks)
    t->active_snapshot = t->active_ns.load(std::memory_order_relaxed);

  if (!pool_) {
    exp::ThreadPoolOptions po;
    if (exp::pin_threads_env())
      po.on_worker_start = [](unsigned w) { exp::pin_current_thread(w); };
    pool_ = std::make_unique<exp::ThreadPool>(workers_, std::move(po));
  }
  std::vector<SchedTask*> tasks;
  tasks.reserve(df.tasks.size());
  for (auto& t : df.tasks) tasks.push_back(t.get());
  df.scheduler->run(*pool_, tasks, df.wake_lists, df.placement);

  cycles_run_ = df.target;
  for (const auto& nd : df.nodes)
    PMSB_CHECK(nd->done.load(std::memory_order_relaxed) == df.target,
               "dataflow node stopped short of the run target");
  if (metrics_ != nullptr)
    PMSB_CHECK(df.sample_turn.load(std::memory_order_relaxed) == df.n_boundaries,
               "dataflow run finished with unpublished samples");
  if (cfg_.rebalance) df_plan_rebalance();
}

Fabric::NodeAdvance Fabric::df_advance_node(unsigned v) {
  Dataflow& df = *df_;
  Dataflow::NodeRt& nd = *df.nodes[v];
  const Cycle target = df.target;
  const Cycle d = nd.engine.now();
  if (d >= target) return NodeAdvance::kNodeDone;
  const Cycle stages = cfg_.link_pipe_stages;

  // Input bound first: it is the tighter constraint under load, and its
  // seq_cst loads double as the acquire of the upstreams' ring writes.
  Cycle limit = target;
  for (const Dataflow::NodeRt::In& in : nd.ins) {
    const Cycle b = df.nodes[in.node]->done.load(std::memory_order_seq_cst) + stages;
    if (b < limit) limit = b;
  }
  if (limit <= d) return NodeAdvance::kInputBlocked;
  for (unsigned o : nd.out_nodes) {
    const Cycle b = df.nodes[o]->done.load(std::memory_order_seq_cst) + nd.credit;
    if (b < limit) limit = b;
  }
  if (limit <= d) return NodeAdvance::kCreditBlocked;
  if (metrics_ != nullptr) {
    // Land on every round boundary so this node can contribute its sample
    // share there (the barrier engine samples at exactly these cycles).
    const Cycle nb = df.next_boundary(d);
    if (nb < limit) limit = nb;
  }

  bool stepped = true;
  if (idle_skip_on_ && nd.engine.can_skip()) {
    // Whole-chunk idle skip: every component quiescent through the chunk
    // (wake >= limit keeps the wake cycle itself stepped) and no flit
    // arriving on any input during [d, limit) -- idle_at(d) bounds arrivals
    // to cycles >= upstream_done >= limit - D, outside the window.
    Cycle wake = kNeverWake;
    if (nd.engine.quiescent_at(d, &wake) && wake >= limit) {
      bool rx_idle = true;
      for (const Dataflow::NodeRt::In& in : nd.ins) {
        if (!in.ch->idle_at(d)) {
          rx_idle = false;
          break;
        }
      }
      if (rx_idle) {
        // Stand in for the suppressed per-cycle writes (Channel::clear_range).
        for (ChannelBase* ch : nd.out_chs) ch->clear_range(d, limit);
        nd.engine.skip_to(limit);
        rounds_skipped_.fetch_add(1, std::memory_order_relaxed);
        stepped = false;
      }
    }
  }
  if (stepped) nd.engine.run(limit - d);

  // Publish progress: seq_cst store pairs with neighbors' bound loads (ring
  // visibility) and with the scheduler's block/recheck protocol.
  nd.done.store(limit, std::memory_order_seq_cst);
  if (metrics_ != nullptr && df.is_boundary(limit))
    df_contribute_sample(v, df.boundary_index(limit));
  return stepped ? NodeAdvance::kStepped : NodeAdvance::kSkipped;
}

bool Fabric::df_node_ready(unsigned v) const {
  const Dataflow& df = *df_;
  const Dataflow::NodeRt& nd = *df.nodes[v];
  const Cycle d = nd.done.load(std::memory_order_seq_cst);
  if (d >= df.target) return false;
  const Cycle stages = cfg_.link_pipe_stages;
  for (const Dataflow::NodeRt::In& in : nd.ins)
    if (df.nodes[in.node]->done.load(std::memory_order_seq_cst) + stages <= d) return false;
  for (unsigned o : nd.out_nodes)
    if (df.nodes[o]->done.load(std::memory_order_seq_cst) + nd.credit <= d) return false;
  return true;
}

void Fabric::df_contribute_sample(unsigned v, Cycle k) {
  Dataflow& df = *df_;
  Dataflow::FrameSlot& slot =
      *df.frames[static_cast<std::size_t>(k % static_cast<Cycle>(df.frames.size()))];
  // The slot serving boundary k is re-armed by the completer of boundary
  // k - R. The skew bound (frames comment in build_dataflow) guarantees
  // that boundary has all contributions by now, so this wait only covers
  // an in-flight completion call.
  while (slot.boundary.load(std::memory_order_acquire) != k) std::this_thread::yield();
  // This worker holds node v exactly at the boundary cycle, so these reads
  // see the same per-node state the parked barrier engine would.
  if (worm_) {
    const WormRouter& r = *wrouters_[v];
    std::uint64_t inj = 0, bkl = 0, del = 0, lat = 0;
    for (unsigned p = 0; p < ports_; ++p) {
      if (r.has_source(p)) {
        const auto ss = r.source_stats(p);
        inj += ss.generated;
        bkl += ss.backlog;
      }
      if (r.has_sink(p)) {
        const auto ks = r.sink_stats(p);
        del += ks.delivered;
        lat += ks.lat_sum;
      }
    }
    slot.injected.fetch_add(inj, std::memory_order_relaxed);
    slot.backlog.fetch_add(bkl, std::memory_order_relaxed);
    slot.delivered.fetch_add(del, std::memory_order_relaxed);
    slot.lat_sum.fetch_add(lat, std::memory_order_relaxed);
  } else {
    const Node& n = *nodes_[v];
    slot.injected.fetch_add(n.injector.generated, std::memory_order_relaxed);
    slot.backlog.fetch_add(n.injector.backlog.size(), std::memory_order_relaxed);
    slot.delivered.fetch_add(n.ejector.delivered, std::memory_order_relaxed);
    slot.dropped.fetch_add(n.drop_no_addr + n.drop_no_slot + n.drop_out_limit,
                           std::memory_order_relaxed);
    slot.lat_sum.fetch_add(n.ejector.lat_sum, std::memory_order_relaxed);
  }
  if (slot.remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;

  // Last contributor publishes, strictly in boundary order (sample_turn is
  // the baton; the registry's time series relies on monotonic sample calls).
  while (df.sample_turn.load(std::memory_order_acquire) != k) std::this_thread::yield();
  SampleFrame f;
  f.injected = slot.injected.load(std::memory_order_relaxed);
  f.delivered = slot.delivered.load(std::memory_order_relaxed);
  f.dropped = slot.dropped.load(std::memory_order_relaxed);
  f.backlog = slot.backlog.load(std::memory_order_relaxed);
  f.lat_sum = slot.lat_sum.load(std::memory_order_relaxed);
  sample_frame_ = &f;
  metrics_->sample(df.boundary_cycle(k));
  sample_frame_ = nullptr;
  // Re-arm this slot for boundary k + R before passing the baton.
  const Cycle next = k + static_cast<Cycle>(df.frames.size());
  if (next < df.n_boundaries) {
    slot.injected.store(0, std::memory_order_relaxed);
    slot.delivered.store(0, std::memory_order_relaxed);
    slot.dropped.store(0, std::memory_order_relaxed);
    slot.backlog.store(0, std::memory_order_relaxed);
    slot.lat_sum.store(0, std::memory_order_relaxed);
    slot.remaining.store(nodes(), std::memory_order_relaxed);
    slot.boundary.store(next, std::memory_order_release);
  } else {
    slot.boundary.store(-1, std::memory_order_release);
  }
  df.sample_turn.store(k + 1, std::memory_order_release);
}

void Fabric::df_plan_rebalance() {
  Dataflow& df = *df_;
  const std::size_t ntasks = df.tasks.size();
  std::vector<std::uint64_t> delta(ntasks, 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < ntasks; ++i) {
    delta[i] = df.tasks[i]->active_ns.load(std::memory_order_relaxed) -
               df.tasks[i]->active_snapshot;
    total += delta[i];
  }
  if (total == 0) return;
  const double mean = static_cast<double>(total) / static_cast<double>(ntasks);

  struct Part {
    std::vector<unsigned> ids;
    double cost;
  };
  bool changed = false;
  // Split pass: halve tasks that dominated the last run.
  std::vector<Part> parts;
  parts.reserve(ntasks + 4);
  for (std::size_t i = 0; i < ntasks; ++i) {
    const auto& ids = df.tasks[i]->node_ids;
    const double cost = static_cast<double>(delta[i]);
    if (cost > 1.6 * mean && ids.size() >= 2) {
      const std::size_t mid = ids.size() / 2;
      parts.push_back(Part{{ids.begin(), ids.begin() + static_cast<long>(mid)}, cost / 2});
      parts.push_back(Part{{ids.begin() + static_cast<long>(mid), ids.end()}, cost / 2});
      df.log.push_back("split task " + std::to_string(i) + " (" +
                       std::to_string(ids.size()) + " nodes, " +
                       std::to_string(cost / mean) + "x mean active_ns)");
      ++df.splits;
      changed = true;
    } else {
      parts.push_back(Part{ids, cost});
    }
  }
  // Merge pass: coalesce adjacent starved tasks, keeping at least one task
  // per worker so nobody idles by construction.
  std::vector<Part> merged;
  merged.reserve(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const std::size_t projected = merged.size() + (parts.size() - i);
    if (!merged.empty() && projected - 1 >= workers_ && merged.back().cost < 0.4 * mean &&
        parts[i].cost < 0.4 * mean) {
      df.log.push_back("merge tasks at node " + std::to_string(merged.back().ids.front()) +
                       " + " + std::to_string(parts[i].ids.front()) + " (both < 0.4x mean)");
      merged.back().ids.insert(merged.back().ids.end(), parts[i].ids.begin(),
                               parts[i].ids.end());
      merged.back().cost += parts[i].cost;
      ++df.merges;
      changed = true;
    } else {
      merged.push_back(std::move(parts[i]));
    }
  }
  if (!changed) return;
  df.pending_parts.clear();
  df.pending_parts.reserve(merged.size());
  for (Part& p : merged) df.pending_parts.push_back(std::move(p.ids));
  df.pending = true;
}

void Fabric::end_of_round() {
  cycles_run_ += std::min<Cycle>(cfg_.link_pipe_stages, run_target_ - cycles_run_);
  if (metrics_) metrics_->sample(cycles_run_);
  if (idle_skip_on_) maybe_skip();
}

void Fabric::maybe_skip() {
  if (cycles_run_ >= run_target_) return;
  // Global quiescence: every component of every shard idle (observers --
  // the per-node invariant checkers -- pin a shard to stepping), and every
  // channel ring drained. Any failure means at least one cell is somewhere
  // in flight, and the next round must be stepped.
  Cycle wake = kNeverWake;
  for (const auto& sp : shards_) {
    if (!sp->engine.can_skip()) return;
    Cycle w = kNeverWake;
    if (!sp->engine.quiescent_at(cycles_run_, &w)) return;
    if (w < wake) wake = w;
  }
  bool rings_idle = true;
  for_each_ring([&](ChannelBase& ch) {
    if (!ch.idle_at(cycles_run_)) rings_idle = false;
  });
  if (!rings_idle) return;
  // Advance whole rounds while they end at or before the earliest wake
  // (components must execute the wake cycle itself), keeping the metrics
  // cadence of stepped rounds.
  bool skipped = false;
  while (cycles_run_ < run_target_) {
    const Cycle nb =
        cycles_run_ + std::min<Cycle>(cfg_.link_pipe_stages, run_target_ - cycles_run_);
    if (nb > wake) break;
    cycles_run_ = nb;
    if (metrics_) metrics_->sample(cycles_run_);
    skipped = true;
    rounds_skipped_.fetch_add(1, std::memory_order_relaxed);
  }
  // Skipping suppressed the producers' per-cycle ring writes; drop the stale
  // entries so they cannot resurface after a jump past the ring size. All
  // channels are empty here, so nothing live is lost.
  if (skipped) for_each_ring([](ChannelBase& ch) { ch.clear_for_skip(); });
}

std::uint64_t Fabric::sum_injected() const {
  std::uint64_t s = 0;
  if (worm_) {
    for (const auto& r : wrouters_)
      for (unsigned p = 0; p < ports_; ++p)
        if (r->has_source(p)) s += r->source_stats(p).generated;
    return s;
  }
  for (const auto& n : nodes_) s += n->injector.generated;
  return s;
}

std::uint64_t Fabric::sum_delivered() const {
  std::uint64_t s = 0;
  if (worm_) {
    for (const auto& r : wrouters_)
      for (unsigned p = 0; p < ports_; ++p)
        if (r->has_sink(p)) s += r->sink_stats(p).delivered;
    return s;
  }
  for (const auto& n : nodes_) s += n->ejector.delivered;
  return s;
}

std::uint64_t Fabric::sum_dropped() const {
  if (worm_) return 0;  // wormhole transport is lossless (credit-backpressured)
  std::uint64_t s = 0;
  for (const auto& n : nodes_) s += n->drop_no_addr + n->drop_no_slot + n->drop_out_limit;
  return s;
}

std::uint64_t Fabric::sum_backlog() const {
  std::uint64_t s = 0;
  if (worm_) {
    for (const auto& r : wrouters_)
      for (unsigned p = 0; p < ports_; ++p)
        if (r->has_source(p)) s += r->source_stats(p).backlog;
    return s;
  }
  for (const auto& n : nodes_) s += n->injector.backlog.size();
  return s;
}

std::uint64_t Fabric::sum_lat() const {
  std::uint64_t s = 0;
  if (worm_) {
    for (const auto& r : wrouters_)
      for (unsigned p = 0; p < ports_; ++p)
        if (r->has_sink(p)) s += r->sink_stats(p).lat_sum;
    return s;
  }
  for (const auto& n : nodes_) s += n->ejector.lat_sum;
  return s;
}

FabricStats Fabric::stats() const {
  FabricStats st;
  st.cycles = cycles_run_;
  bool have_lat = false;
  if (worm_) {
    // Merge sinks in (node, port) order -- a fixed order, so the digest and
    // histogram are identical at any thread count and under either engine.
    std::uint64_t lat_sum = 0;
    for (const auto& rp : wrouters_) {
      for (unsigned p = 0; p < ports_; ++p) {
        if (rp->has_source(p)) {
          const auto ss = rp->source_stats(p);
          st.injected += ss.generated;
          st.backlog += ss.backlog;
        }
        if (!rp->has_sink(p)) continue;
        const auto ks = rp->sink_stats(p);
        st.delivered += ks.delivered;
        st.flits_delivered += ks.flits;
        st.payload_errors += ks.payload_errors;
        st.uid_digest = mix64(st.uid_digest ^ ks.digest);
        st.latency.merge(*ks.lat_hist);
        lat_sum += ks.lat_sum;
        if (ks.delivered) {
          const Cycle lo = static_cast<Cycle>(ks.lat_hist->min());
          const Cycle hi = static_cast<Cycle>(ks.lat_hist->max());
          if (!have_lat || lo < st.min_latency) st.min_latency = lo;
          if (!have_lat || hi > st.max_latency) st.max_latency = hi;
          have_lat = true;
        }
      }
    }
    st.mean_latency = st.delivered
                          ? static_cast<double>(lat_sum) / static_cast<double>(st.delivered)
                          : 0.0;
    // Every endpoint pair crosses all stages() - 1 inter-stage links.
    if (st.delivered)
      st.by_hops.push_back(
          FabricStats::HopRow{cfg_.topo.stages() - 1, st.delivered, st.mean_latency});
    const auto accounted = st.backlog + st.delivered;
    PMSB_CHECK(st.injected >= accounted, "worm fabric conservation violated");
    st.in_network = st.injected - accounted;
    return st;
  }
  for (const auto& np : nodes_) {
    const Node& n = *np;
    st.injected += n.injector.generated;
    st.backlog += n.injector.backlog.size();
    st.delivered += n.ejector.delivered;
    st.payload_errors += n.ejector.payload_errors;
    st.dropped_no_addr += n.drop_no_addr;
    st.dropped_no_slot += n.drop_no_slot;
    st.dropped_out_limit += n.drop_out_limit;
    st.uid_digest = mix64(st.uid_digest ^ n.ejector.digest);
    st.latency.merge(n.ejector.lat_hist);
    if (n.ejector.delivered) {
      if (!have_lat || n.ejector.lat_min < st.min_latency) st.min_latency = n.ejector.lat_min;
      if (!have_lat || n.ejector.lat_max > st.max_latency) st.max_latency = n.ejector.lat_max;
      have_lat = true;
    }
    if (st.by_hops.size() < n.ejector.by_hops.size())
      st.by_hops.resize(n.ejector.by_hops.size(), FabricStats::HopRow{0, 0, 0});
    for (std::size_t h = 0; h < n.ejector.by_hops.size(); ++h) {
      st.by_hops[h].cells += n.ejector.by_hops[h].cells;
      // mean_latency temporarily accumulates the sum; divided below.
      st.by_hops[h].mean_latency += static_cast<double>(n.ejector.by_hops[h].lat_sum);
    }
  }
  const std::uint64_t lat_sum = sum_lat();
  st.mean_latency =
      st.delivered ? static_cast<double>(lat_sum) / static_cast<double>(st.delivered) : 0.0;
  for (std::size_t h = 0; h < st.by_hops.size(); ++h) {
    st.by_hops[h].hops = static_cast<unsigned>(h);
    if (st.by_hops[h].cells)
      st.by_hops[h].mean_latency /= static_cast<double>(st.by_hops[h].cells);
  }
  const auto accounted = st.backlog + st.delivered + st.dropped();
  PMSB_CHECK(st.injected >= accounted, "fabric conservation violated");
  st.in_network = st.injected - accounted;
  return st;
}

obs::FlightRecorder Fabric::merged_flight() const {
  PMSB_CHECK(cfg_.flight_recorder, "fabric built without FabricConfig::flight_recorder");
  obs::FlightRecorderConfig fr;
  fr.warmup = cfg_.flight_warmup;
  obs::FlightRecorder merged(cfg_.node.n_ports, cfg_.node.cell_words, fr);
  for (const auto& n : nodes_) merged.merge(*n->flight);
  return merged;
}

std::vector<ShardTelemetry> Fabric::shard_telemetry() const {
  std::vector<ShardTelemetry> out;
  if (cfg_.engine == FabricEngine::kDataflow) {
    const Dataflow& df = *df_;
    out.reserve(df.tasks.size());
    for (std::size_t i = 0; i < df.tasks.size(); ++i) {
      const Dataflow::Task& task = *df.tasks[i];
      ShardTelemetry t;
      t.shard = static_cast<unsigned>(i);
      t.nodes = static_cast<unsigned>(task.node_ids.size());
      t.active_ns = task.active_ns.load(std::memory_order_relaxed);
      t.blocked_on_empty_ns = task.blocked_on_empty_ns.load(std::memory_order_relaxed);
      t.blocked_on_full_ns = task.blocked_on_full_ns.load(std::memory_order_relaxed);
      t.steals = task.steals.load(std::memory_order_relaxed);
      t.rounds = task.rounds.load(std::memory_order_relaxed);
      for (unsigned v : task.node_ids) {
        if (worm_) {
          t.cells_relayed += wrouters_[v]->flits_forwarded();
        } else {
          for (const auto& b : df.nodes[v]->bridges) t.cells_relayed += b->relayed();
        }
      }
      out.push_back(t);
    }
    return out;
  }
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& sh = *shards_[s];
    ShardTelemetry t;
    t.shard = static_cast<unsigned>(s);
    t.nodes = static_cast<unsigned>(sh.node_ids.size());
    t.active_ns = sh.active_ns;
    t.barrier_wait_ns = sh.barrier_wait_ns;
    t.rounds = sh.rounds;
    if (worm_) {
      for (unsigned v : sh.node_ids) t.cells_relayed += wrouters_[v]->flits_forwarded();
    } else {
      for (const auto& b : sh.bridges) t.cells_relayed += b->relayed();
    }
    out.push_back(t);
  }
  return out;
}

FabricSchedulerStats Fabric::scheduler_stats() const {
  FabricSchedulerStats s;
  s.engine = to_string(cfg_.engine);
  s.workers = workers_;
  if (cfg_.engine == FabricEngine::kDataflow) {
    const Dataflow& df = *df_;
    s.tasks = static_cast<unsigned>(df.tasks.size());
    s.steals = df.scheduler->total_steals();
    s.splits = df.splits;
    s.merges = df.merges;
    s.rebalance_log = df.log;
    for (const Scheduler::WorkerStats& w : df.scheduler->worker_stats())
      s.per_worker.push_back(FabricSchedulerStats::Worker{w.active_ns, w.idle_ns, w.steals,
                                                          w.slices});
    return s;
  }
  s.tasks = static_cast<unsigned>(shards_.size());
  for (const auto& sp : shards_)
    s.per_worker.push_back(
        FabricSchedulerStats::Worker{sp->active_ns, sp->barrier_wait_ns, 0, sp->rounds});
  return s;
}

void Fabric::telemetry_to_perfetto(obs::PerfettoTrace& out) const {
  // Worker tracks start at tid 1000 so they never collide with the
  // component counter tracks of a TimeSeriesSampler sharing the trace; the
  // shard-stall counter track sits above them at tid 1900.
  constexpr unsigned kWorkerTidBase = 1000;
  constexpr unsigned kStallTid = 1900;
  const std::uint64_t skipped = rounds_skipped();
  if (cfg_.engine == FabricEngine::kDataflow) {
    const FabricSchedulerStats sched = scheduler_stats();
    for (std::size_t w = 0; w < sched.per_worker.size(); ++w) {
      const auto& ws = sched.per_worker[w];
      const unsigned tid = kWorkerTidBase + static_cast<unsigned>(w);
      out.set_track_name(tid, "fabric worker " + std::to_string(w) + " (wall clock)");
      const std::int64_t active_us = static_cast<std::int64_t>(ws.active_ns / 1000);
      const std::int64_t idle_us = static_cast<std::int64_t>(ws.idle_ns / 1000);
      out.complete(0, active_us, tid, "active",
                   {{"slices", static_cast<double>(ws.slices)},
                    {"steals", static_cast<double>(ws.steals)}});
      out.complete(active_us, idle_us, tid, "scheduler_idle",
                   {{"chunks_skipped", static_cast<double>(skipped)}});
    }
  } else {
    for (const ShardTelemetry& t : shard_telemetry()) {
      const unsigned tid = kWorkerTidBase + t.shard;
      out.set_track_name(tid, "fabric worker " + std::to_string(t.shard) + " (wall clock)");
      const std::int64_t active_us = static_cast<std::int64_t>(t.active_ns / 1000);
      const std::int64_t wait_us = static_cast<std::int64_t>(t.barrier_wait_ns / 1000);
      out.complete(0, active_us, tid, "active",
                   {{"nodes", static_cast<double>(t.nodes)},
                    {"rounds", static_cast<double>(t.rounds)},
                    {"cells_relayed", static_cast<double>(t.cells_relayed)}});
      out.complete(active_us, wait_us, tid, "barrier_wait",
                   {{"rounds_skipped", static_cast<double>(skipped)}});
    }
  }
  // One counter sample per shard/task (ts = shard index): stall composition
  // in microseconds, directly comparable between the engines' traces.
  out.set_track_name(kStallTid, std::string("fabric shard stalls (") +
                                    to_string(cfg_.engine) + ", us by shard index)");
  for (const ShardTelemetry& t : shard_telemetry()) {
    out.counter(static_cast<std::int64_t>(t.shard), kStallTid, "fabric.stall_us",
                {{"barrier_wait", static_cast<double>(t.barrier_wait_ns / 1000)},
                 {"blocked_on_empty", static_cast<double>(t.blocked_on_empty_ns / 1000)},
                 {"blocked_on_full", static_cast<double>(t.blocked_on_full_ns / 1000)},
                 {"steals", static_cast<double>(t.steals)}});
  }
}

}  // namespace pmsb::fabric
