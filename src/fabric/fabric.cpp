#include "fabric/fabric.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "exp/sweep.hpp"
#include "obs/perfetto.hpp"
#include "sim/barrier.hpp"

namespace pmsb::fabric {

ConfigValidation FabricConfig::check() const {
  ConfigValidation v = node.check();
  auto issue = [&v](ConfigIssue::Code c, std::string msg) {
    v.issues.push_back(ConfigIssue{c, std::move(msg)});
  };
  if (topo.nodes() < 2) issue(ConfigIssue::Code::kBadTopology, "fabric needs at least two nodes");
  if (topo.kind == net::TopologyKind::kRing) {
    if (topo.height != 1 || topo.width < 2)
      issue(ConfigIssue::Code::kBadTopology, "a ring is width >= 2, height == 1");
  } else if (topo.kind == net::TopologyKind::kTorus2D) {
    // Width/height 1 would wrap a node onto itself.
    if (topo.width < 2 || topo.height < 2)
      issue(ConfigIssue::Code::kBadTopology, "a torus needs width and height >= 2");
  }
  if (node.n_ports < topo.required_ports())
    issue(ConfigIssue::Code::kBadPorts,
          "fabric nodes need at least " + std::to_string(topo.required_ports()) + " ports");
  if (node.word_bits < 16)
    issue(ConfigIssue::Code::kBadWordBits, "fabric wire format needs word_bits >= 16");
  if (node.cell_words < 4)
    issue(ConfigIssue::Code::kBadCellWords, "fabric wire format needs cells of >= 4 words");
  else if (bits_for(topo.nodes()) > node.cell_format().tag_bits())
    issue(ConfigIssue::Code::kHeadTooNarrow, "head tag too narrow for a node id");
  if (link_pipe_stages < 1)
    issue(ConfigIssue::Code::kBadLinkStages, "inter-node links need >= 1 register stage");
  if (!(load >= 0.0) || load > 1.0)
    issue(ConfigIssue::Code::kBadLoad, "offered load must be in [0, 1]");
  return v;
}

void FabricConfig::validate() const {
  const ConfigValidation v = check();
  if (!v.ok()) throw std::invalid_argument(v.summary());
}

Fabric::Fabric(const FabricConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  codec_ = CellCodec{cfg_.node.cell_format(), bits_for(cfg_.topo.nodes())};
  ports_ = cfg_.topo.required_ports();
  build();
}

Fabric::~Fabric() = default;

void Fabric::build() {
  const net::Topology& topo = cfg_.topo;
  const unsigned n = topo.nodes();

  unsigned workers = cfg_.threads ? cfg_.threads : exp::thread_count();
  workers = std::min(std::max(workers, 1u), n);

  idle_skip_on_ = cfg_.idle_skip < 0 ? Engine::idle_skip_env_default() : cfg_.idle_skip != 0;

  nodes_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    auto node = std::make_unique<Node>();
    if (cfg_.fast_node && cfg_.fast_node(i)) {
      node->fast = std::make_unique<FastSwitch>(cfg_.node);
    } else {
      node->sw = std::make_unique<PipelinedSwitch>(cfg_.node);
    }
    node->injector.rng = Rng(mix64(cfg_.seed + 0x9e3779b97f4a7c15ULL * (i + 1)));
    node->injector.cells_per_cycle = cfg_.load / cfg_.node.cell_words;
    node->injector.self = i;
    node->injector.n_nodes = n;
    // The fabric's own accounting rides the multi-subscriber hub, leaving
    // room for checkers, scoreboards, and user taps on the same switch.
    SwitchEvents ev;
    Node* np = node.get();
    ev.on_drop = [np](unsigned, Cycle, DropReason why) {
      switch (why) {
        case DropReason::kNoAddress: ++np->drop_no_addr; break;
        case DropReason::kNoSlot: ++np->drop_no_slot; break;
        case DropReason::kOutputLimit: ++np->drop_out_limit; break;
      }
    };
    EventHub& hub = node->sw ? node->sw->events() : node->fast->events();
    node->drop_sub = hub.subscribe(std::move(ev));
    if (cfg_.flight_recorder) {
      obs::FlightRecorderConfig fr;
      fr.warmup = cfg_.flight_warmup;
      node->flight = std::make_unique<obs::FlightRecorder>(cfg_.node.n_ports,
                                                           cfg_.node.cell_words, fr);
      node->flight->attach(hub);
    }
    nodes_.push_back(std::move(node));
  }

  // Identical wiring at every thread count: each directed link gets a
  // channel even when both endpoints share a shard.
  channels_.resize(static_cast<std::size_t>(n) * ports_);
  for (unsigned u = 0; u < n; ++u) {
    for (unsigned p = 0; p < ports_; ++p) {
      if (topo.neighbor(u, static_cast<net::Port>(p)) >= 0)
        channels_[u * ports_ + p] = std::make_unique<Channel>(cfg_.link_pipe_stages);
    }
  }

  // Contiguous node blocks per shard (cache locality; any fixed partition
  // yields identical results).
  shards_.reserve(workers);
  for (unsigned s = 0; s < workers; ++s) {
    auto shard = std::make_unique<Shard>();
    const unsigned lo = s * n / workers;
    const unsigned hi = (s + 1) * n / workers;
    // Engine-local skipping stays off inside shards: a shard cannot see
    // other shards' in-flight flits or its own channels' contents, so only
    // the fabric-level planner (maybe_skip) may skip, at round granularity.
    shard->engine.set_idle_skip(false);
    for (unsigned v = lo; v < hi; ++v) {
      Node& node = *nodes_[v];
      shard->node_ids.push_back(v);
      shard->engine.add(node.sw ? static_cast<Component*>(node.sw.get())
                                : static_cast<Component*>(node.fast.get()));
      auto in_link = [&node](unsigned q) -> WireLink* {
        return node.sw ? &node.sw->in_link(q) : &node.fast->in_link(q);
      };
      auto out_link = [&node](unsigned p) -> WireLink* {
        return node.sw ? &node.sw->out_link(p) : &node.fast->out_link(p);
      };
      // The first connected port doubles as the node's injection point.
      bool designated = false;
      for (unsigned q = 0; q < ports_; ++q) {
        const net::Port port = static_cast<net::Port>(q);
        const int u = topo.neighbor(v, port);
        if (u < 0) continue;
        Channel* rx = channels_[static_cast<unsigned>(u) * ports_ + net::opposite(port)].get();
        PMSB_CHECK(rx != nullptr, "fabric link without a channel");
        Injector* inj = designated ? nullptr : &node.injector;
        designated = true;
        shard->bridges.push_back(std::make_unique<PortBridge>(
            &cfg_.topo, &codec_, v, port, rx, in_link(q), inj, &node.ejector));
        shard->engine.add(shard->bridges.back().get());
      }
      PMSB_CHECK(designated, "fabric node with no links");
      for (unsigned p = 0; p < ports_; ++p) {
        Channel* ch = channels_[v * ports_ + p].get();
        if (!ch) continue;
        shard->taps.push_back(std::make_unique<TxTap>(out_link(p), ch));
        shard->engine.add(shard->taps.back().get());
      }
      // Structural invariant checking only exists for the cycle-accurate
      // switch; fast nodes are covered by the differential harness instead.
      if (check::env_enabled() && node.sw) {
        node.checker = std::make_unique<check::InvariantChecker>();
        node.checker->attach(*node.sw, shard->engine);
      }
    }
    shards_.push_back(std::move(shard));
  }
}

void Fabric::register_metrics(obs::MetricsRegistry* m) {
  metrics_ = m;
  if (!m) return;
  m->add_gauge("fabric.injected", [this] { return static_cast<double>(sum_injected()); });
  m->add_gauge("fabric.delivered", [this] { return static_cast<double>(sum_delivered()); });
  m->add_gauge("fabric.dropped", [this] { return static_cast<double>(sum_dropped()); });
  m->add_gauge("fabric.backlog", [this] { return static_cast<double>(sum_backlog()); });
  m->add_gauge("fabric.in_network", [this] {
    return static_cast<double>(sum_injected() - sum_backlog() - sum_delivered() -
                               sum_dropped());
  });
  m->add_gauge("fabric.latency.mean", [this] {
    const std::uint64_t d = sum_delivered();
    return d ? static_cast<double>(sum_lat()) / static_cast<double>(d) : 0.0;
  });
}

void Fabric::run(Cycle cycles) {
  if (cycles <= 0) return;
  run_target_ = cycles_run_ + cycles;
  const Cycle lookahead = cfg_.link_pipe_stages;

  using SteadyClock = std::chrono::steady_clock;
  auto ns_between = [](SteadyClock::time_point a, SteadyClock::time_point b) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };

  if (shards_.size() == 1) {
    Shard& s = *shards_[0];
    while (cycles_run_ < run_target_) {
      const auto t0 = SteadyClock::now();
      s.engine.run(std::min<Cycle>(lookahead, run_target_ - cycles_run_));
      const auto t1 = SteadyClock::now();
      end_of_round();
      // With one shard the "barrier" cost is the round bookkeeping itself.
      s.active_ns += ns_between(t0, t1);
      s.barrier_wait_ns += ns_between(t1, SteadyClock::now());
      ++s.rounds;
      if (s.engine.now() < cycles_run_) s.engine.skip_to(cycles_run_);
    }
    return;
  }

  const unsigned workers = threads();
  if (!pool_) pool_ = std::make_unique<exp::ThreadPool>(workers);
  // The last arriver of each round advances the global clock and samples
  // the gauges while every other shard is parked (see sim/barrier.hpp).
  SpinBarrier barrier(workers, [this] { end_of_round(); });
  const Cycle start = cycles_run_;
  const Cycle target = run_target_;
  for (auto& sp : shards_) {
    Shard* shard = sp.get();
    pool_->submit([this, shard, start, target, lookahead, &barrier, ns_between] {
      Cycle done = start;
      while (done < target) {
        const Cycle step = std::min<Cycle>(lookahead, target - done);
        const auto t0 = SteadyClock::now();
        shard->engine.run(step);
        const auto t1 = SteadyClock::now();
        done += step;
        barrier.arrive_and_wait();
        shard->active_ns += ns_between(t0, t1);
        shard->barrier_wait_ns += ns_between(t1, SteadyClock::now());
        ++shard->rounds;
        // The planner may have skipped whole rounds inside the barrier
        // (maybe_skip); every worker observes the same jump -- the barrier
        // orders the cycles_run_ write before this read -- so all shards
        // take identical trajectories.
        if (done < cycles_run_ && cycles_run_ <= target) {
          shard->engine.skip_to(cycles_run_);
          done = cycles_run_;
        }
      }
    });
  }
  pool_->wait_idle();
  PMSB_CHECK(cycles_run_ == run_target_, "fabric rounds out of step");
}

void Fabric::end_of_round() {
  cycles_run_ += std::min<Cycle>(cfg_.link_pipe_stages, run_target_ - cycles_run_);
  if (metrics_) metrics_->sample(cycles_run_);
  if (idle_skip_on_) maybe_skip();
}

void Fabric::maybe_skip() {
  if (cycles_run_ >= run_target_) return;
  // Global quiescence: every component of every shard idle (observers --
  // the per-node invariant checkers -- pin a shard to stepping), and every
  // channel ring drained. Any failure means at least one cell is somewhere
  // in flight, and the next round must be stepped.
  Cycle wake = kNeverWake;
  for (const auto& sp : shards_) {
    if (!sp->engine.can_skip()) return;
    Cycle w = kNeverWake;
    if (!sp->engine.quiescent_at(cycles_run_, &w)) return;
    if (w < wake) wake = w;
  }
  for (const auto& ch : channels_) {
    if (ch && !ch->idle_at(cycles_run_)) return;
  }
  // Advance whole rounds while they end at or before the earliest wake
  // (components must execute the wake cycle itself), keeping the metrics
  // cadence of stepped rounds.
  bool skipped = false;
  while (cycles_run_ < run_target_) {
    const Cycle nb =
        cycles_run_ + std::min<Cycle>(cfg_.link_pipe_stages, run_target_ - cycles_run_);
    if (nb > wake) break;
    cycles_run_ = nb;
    if (metrics_) metrics_->sample(cycles_run_);
    skipped = true;
    ++rounds_skipped_;
  }
  // Skipping suppressed the TxTaps' per-cycle ring writes; drop the stale
  // entries so they cannot resurface after a jump past the ring size. All
  // channels are empty here, so nothing live is lost.
  if (skipped) {
    for (const auto& ch : channels_) {
      if (ch) ch->clear_for_skip();
    }
  }
}

std::uint64_t Fabric::sum_injected() const {
  std::uint64_t s = 0;
  for (const auto& n : nodes_) s += n->injector.generated;
  return s;
}

std::uint64_t Fabric::sum_delivered() const {
  std::uint64_t s = 0;
  for (const auto& n : nodes_) s += n->ejector.delivered;
  return s;
}

std::uint64_t Fabric::sum_dropped() const {
  std::uint64_t s = 0;
  for (const auto& n : nodes_) s += n->drop_no_addr + n->drop_no_slot + n->drop_out_limit;
  return s;
}

std::uint64_t Fabric::sum_backlog() const {
  std::uint64_t s = 0;
  for (const auto& n : nodes_) s += n->injector.backlog.size();
  return s;
}

std::uint64_t Fabric::sum_lat() const {
  std::uint64_t s = 0;
  for (const auto& n : nodes_) s += n->ejector.lat_sum;
  return s;
}

FabricStats Fabric::stats() const {
  FabricStats st;
  st.cycles = cycles_run_;
  bool have_lat = false;
  for (const auto& np : nodes_) {
    const Node& n = *np;
    st.injected += n.injector.generated;
    st.backlog += n.injector.backlog.size();
    st.delivered += n.ejector.delivered;
    st.payload_errors += n.ejector.payload_errors;
    st.dropped_no_addr += n.drop_no_addr;
    st.dropped_no_slot += n.drop_no_slot;
    st.dropped_out_limit += n.drop_out_limit;
    st.uid_digest = mix64(st.uid_digest ^ n.ejector.digest);
    st.latency.merge(n.ejector.lat_hist);
    if (n.ejector.delivered) {
      if (!have_lat || n.ejector.lat_min < st.min_latency) st.min_latency = n.ejector.lat_min;
      if (!have_lat || n.ejector.lat_max > st.max_latency) st.max_latency = n.ejector.lat_max;
      have_lat = true;
    }
    if (st.by_hops.size() < n.ejector.by_hops.size())
      st.by_hops.resize(n.ejector.by_hops.size(), FabricStats::HopRow{0, 0, 0});
    for (std::size_t h = 0; h < n.ejector.by_hops.size(); ++h) {
      st.by_hops[h].cells += n.ejector.by_hops[h].cells;
      // mean_latency temporarily accumulates the sum; divided below.
      st.by_hops[h].mean_latency += static_cast<double>(n.ejector.by_hops[h].lat_sum);
    }
  }
  const std::uint64_t lat_sum = sum_lat();
  st.mean_latency =
      st.delivered ? static_cast<double>(lat_sum) / static_cast<double>(st.delivered) : 0.0;
  for (std::size_t h = 0; h < st.by_hops.size(); ++h) {
    st.by_hops[h].hops = static_cast<unsigned>(h);
    if (st.by_hops[h].cells)
      st.by_hops[h].mean_latency /= static_cast<double>(st.by_hops[h].cells);
  }
  const auto accounted = st.backlog + st.delivered + st.dropped();
  PMSB_CHECK(st.injected >= accounted, "fabric conservation violated");
  st.in_network = st.injected - accounted;
  return st;
}

obs::FlightRecorder Fabric::merged_flight() const {
  PMSB_CHECK(cfg_.flight_recorder, "fabric built without FabricConfig::flight_recorder");
  obs::FlightRecorderConfig fr;
  fr.warmup = cfg_.flight_warmup;
  obs::FlightRecorder merged(cfg_.node.n_ports, cfg_.node.cell_words, fr);
  for (const auto& n : nodes_) merged.merge(*n->flight);
  return merged;
}

std::vector<ShardTelemetry> Fabric::shard_telemetry() const {
  std::vector<ShardTelemetry> out;
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& sh = *shards_[s];
    ShardTelemetry t;
    t.shard = static_cast<unsigned>(s);
    t.nodes = static_cast<unsigned>(sh.node_ids.size());
    t.active_ns = sh.active_ns;
    t.barrier_wait_ns = sh.barrier_wait_ns;
    t.rounds = sh.rounds;
    for (const auto& b : sh.bridges) t.cells_relayed += b->relayed();
    out.push_back(t);
  }
  return out;
}

void Fabric::telemetry_to_perfetto(obs::PerfettoTrace& out) const {
  // Worker tracks start at tid 1000 so they never collide with the
  // component counter tracks of a TimeSeriesSampler sharing the trace.
  constexpr unsigned kWorkerTidBase = 1000;
  for (const ShardTelemetry& t : shard_telemetry()) {
    const unsigned tid = kWorkerTidBase + t.shard;
    out.set_track_name(tid, "fabric worker " + std::to_string(t.shard) + " (wall clock)");
    const std::int64_t active_us = static_cast<std::int64_t>(t.active_ns / 1000);
    const std::int64_t wait_us = static_cast<std::int64_t>(t.barrier_wait_ns / 1000);
    out.complete(0, active_us, tid, "active",
                 {{"nodes", static_cast<double>(t.nodes)},
                  {"rounds", static_cast<double>(t.rounds)},
                  {"cells_relayed", static_cast<double>(t.cells_relayed)}});
    out.complete(active_us, wait_us, tid, "barrier_wait",
                 {{"rounds_skipped", static_cast<double>(rounds_skipped_)}});
  }
}

}  // namespace pmsb::fabric
