// Fabric <-> switch glue: per-link components that move cells between the
// channel rings (src/fabric/channel.hpp) and a node's cycle-accurate
// PipelinedSwitch, plus the per-node traffic endpoints.
//
// Each directed inter-node link gets two components:
//
//   TxTap      (producer shard)  copies the upstream switch's out-wire into
//                                the channel ring, one flit per cycle.
//   PortBridge (consumer shard)  reassembles arriving cells from the
//                                channel, ejects the ones addressed to this
//                                node, rewrites the head word of transit
//                                cells for their next hop (dimension-order
//                                routing), and time-multiplexes transit
//                                traffic with locally injected cells onto
//                                the node's in-wire. Transit has priority;
//                                injection only fills idle cell slots.
//
// Fabric cell wire format (CellCodec), riding inside the node switches'
// ordinary L-word cells:
//
//   word 0  [ hop out-port : dest_bits | destination node : tag bits ]
//   word 1  source node
//   word 2  per-source sequence number (low 16 bits)
//   word 3  injection cycle (low 16 bits; latencies valid below 2^16)
//   word 4+ payload derived from the cell uid with an avalanche mixer
//
// Only word 0 changes en route (the hop field is rewritten per hop), so the
// ejector can verify the payload end to end and reconstruct the uid
// (source << 16 | sequence) for the order-sensitive delivery digest.

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/cell.hpp"
#include "common/rng.hpp"
#include "common/util.hpp"
#include "fabric/channel.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/wire.hpp"
#include "stats/hdr_histogram.hpp"

namespace pmsb::fabric {

/// Encode/decode of the fabric wire format described above.
struct CellCodec {
  CellFormat fmt;
  unsigned node_bits = 0;  ///< bits_for(#nodes); must fit fmt.tag_bits().

  Word word_mask() const { return low_mask(fmt.word_bits); }

  /// Head word for a cell leaving the current node through `out_port`.
  Word head(unsigned out_port, unsigned dest_node) const {
    return (static_cast<Word>(out_port) |
            (static_cast<Word>(dest_node) << fmt.dest_bits)) & word_mask();
  }
  unsigned dest_node_of(Word head_word) const {
    return static_cast<unsigned>(decode_tag(head_word, fmt));
  }

  static std::uint64_t uid(std::uint64_t src_node, std::uint64_t seq) {
    return (src_node << 16) | (seq & 0xFFFF);
  }
  Word payload(std::uint64_t cell_uid, unsigned k) const {
    return mix64(cell_uid + 0x9e3779b97f4a7c15ULL * k) & word_mask();
  }

  /// All L words of a freshly injected cell.
  std::vector<Word> build(unsigned out_port, unsigned dest_node, unsigned src_node,
                          std::uint64_t seq, Cycle created) const;
};

/// Per-node traffic source. One designated PortBridge per node owns the
/// injection right; arrivals are Bernoulli per cycle and queue here until
/// that bridge has an idle cell slot. All randomness is per-node (split from
/// the fabric seed by node index), so the arrival process is identical under
/// any sharding.
struct Injector {
  struct Pending {
    unsigned dest_node;
    std::uint64_t seq;
    Cycle created;
  };

  Rng rng;
  double cells_per_cycle = 0;  ///< Bernoulli probability, = load / L.
  unsigned self = 0;
  unsigned n_nodes = 0;
  std::uint64_t next_seq = 0;
  std::uint64_t generated = 0;  ///< Cells created (delivered + dropped + queued + in flight).
  std::deque<Pending> backlog;

  /// Next arrival, computed ahead of time so idle cycles between arrivals
  /// are skippable: the per-cycle Bernoulli draws are made in a batch when
  /// the previous arrival fires, consuming the RNG stream in exactly the
  /// order the historical one-draw-per-step() loop did. kNeverWake when
  /// cells_per_cycle <= 0 (the old code drew nothing in that case either).
  Cycle next_arrival = 0;
  unsigned next_dest = 0;
  bool primed = false;

  /// Replay the per-cycle draws from `from` until one succeeds, then draw
  /// the destination (uniform over the other nodes), exactly as the stepped
  /// formulation would have.
  void prime(Cycle from) {
    primed = true;
    if (cells_per_cycle <= 0) {
      next_arrival = kNeverWake;
      return;
    }
    Cycle a = from;
    while (!rng.next_bool(cells_per_cycle)) ++a;
    unsigned dest = static_cast<unsigned>(rng.next_below(n_nodes - 1));
    if (dest >= self) ++dest;
    next_arrival = a;
    next_dest = dest;
  }

  /// Called once per fabric cycle by the node's designated bridge; enqueues
  /// the precomputed arrival when its cycle comes up.
  void step(Cycle t) {
    if (!primed) prime(t);
    if (t != next_arrival) return;
    backlog.push_back(Pending{next_dest, next_seq++, t});
    ++generated;
    prime(t + 1);
  }
};

/// Per-node traffic sink: end-to-end delivery accounting. Written only by
/// this node's bridges (all in one shard), read at round barriers and after
/// the run.
struct Ejector {
  std::uint64_t delivered = 0;
  std::uint64_t payload_errors = 0;  ///< Cells whose payload words mismatched.
  std::uint64_t digest = 0;          ///< Order-sensitive mix of delivered uids.
  std::uint64_t lat_sum = 0;
  Cycle lat_min = 0;
  Cycle lat_max = 0;
  /// End-to-end latency distribution; merged across nodes (node order) into
  /// FabricStats::latency for fabric-wide percentiles.
  HdrHistogram lat_hist;

  struct HopBucket {
    std::uint64_t cells = 0;
    std::uint64_t lat_sum = 0;
  };
  std::vector<HopBucket> by_hops;  ///< Indexed by route length in links.

  void deliver(std::uint64_t uid, Cycle latency, unsigned hops, bool payload_ok);
};

/// Copies the upstream switch's out-wire into the channel, making the word
/// visible to the consumer shard `delay` cycles later.
class TxTap : public Component {
 public:
  TxTap(WireLink* from, Channel* ch) : from_(from), ch_(ch) {}

  void eval(Cycle t) override { ch_->write(t, from_->now()); }
  void commit(Cycle) override {}
  bool has_commit() const override { return false; }
  /// Skipping suppresses the per-cycle write of an invalid flit; the fabric
  /// compensates by clearing the ring after a skip (Channel::clear_for_skip).
  bool is_quiescent(Cycle) const override { return !from_->now().valid; }
  std::string name() const override { return "fabric_tx_tap"; }

 private:
  WireLink* from_;
  Channel* ch_;
};

/// Consumer-side link endpoint (see file comment).
class PortBridge : public Component {
 public:
  PortBridge(const net::Topology* topo, const CellCodec* codec, unsigned node,
             net::Port port, const Channel* rx, WireLink* in_link, Injector* injector,
             Ejector* ejector);

  void eval(Cycle t) override;
  void commit(Cycle t) override;
  /// Quiescent when no cell is being reassembled, staged, queued, or
  /// transmitted and no injection is pending. The rx channel is NOT checked
  /// here -- the fabric's round planner verifies every Channel::idle_at()
  /// globally before skipping (engine-local skipping stays disabled inside
  /// shards, so these hooks are only consulted by that planner).
  bool is_quiescent(Cycle) const override {
    return !rx_active_ && !tx_active_ && !staged_valid_ && fifo_.empty() &&
           (injector_ == nullptr || injector_->backlog.empty());
  }
  Cycle next_wake(Cycle) const override {
    return injector_ != nullptr ? injector_->next_arrival : kNeverWake;
  }
  std::string name() const override;

  /// Transit cells accepted but not yet re-transmitted (store-and-forward
  /// queue; bounded by the output stagger of the upstream switch).
  std::size_t transit_depth() const { return fifo_.size() + (staged_valid_ ? 1 : 0); }

  /// Transit cells this bridge relayed toward their next hop (total).
  std::uint64_t relayed() const { return relayed_; }

 private:
  void finish_cell(Cycle t);

  const net::Topology* topo_;
  const CellCodec* codec_;
  unsigned node_;
  net::Port port_;
  const Channel* rx_;
  WireLink* in_link_;
  Injector* injector_;  ///< Non-null only on the node's designated bridge.
  Ejector* ejector_;
  unsigned length_;  ///< L, cached.

  // Arrival reassembly.
  bool rx_active_ = false;
  unsigned rx_phase_ = 0;
  std::vector<Word> rx_words_;

  // Transit store-and-forward: a cell completed during eval is staged and
  // becomes eligible for retransmission only after the clock edge.
  bool staged_valid_ = false;
  std::vector<Word> staged_;
  std::deque<std::vector<Word>> fifo_;

  // Transmission onto the node's in-wire.
  bool tx_active_ = false;
  unsigned tx_phase_ = 0;
  std::vector<Word> tx_words_;

  std::uint64_t relayed_ = 0;  ///< Transit cells accepted for relay.
};

}  // namespace pmsb::fabric
