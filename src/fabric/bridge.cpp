#include "fabric/bridge.hpp"

namespace pmsb::fabric {

std::vector<Word> CellCodec::build(unsigned out_port, unsigned dest_node,
                                   unsigned src_node, std::uint64_t seq,
                                   Cycle created) const {
  std::vector<Word> w(fmt.length_words);
  w[0] = head(out_port, dest_node);
  w[1] = static_cast<Word>(src_node) & word_mask();
  w[2] = static_cast<Word>(seq) & 0xFFFF;
  w[3] = static_cast<Word>(created) & 0xFFFF;
  const std::uint64_t id = uid(src_node, seq);
  for (unsigned k = 4; k < fmt.length_words; ++k) w[k] = payload(id, k);
  return w;
}

void Ejector::deliver(std::uint64_t uid, Cycle latency, unsigned hops, bool payload_ok) {
  if (delivered == 0 || latency < lat_min) lat_min = latency;
  if (latency > lat_max) lat_max = latency;
  ++delivered;
  lat_sum += static_cast<std::uint64_t>(latency);
  lat_hist.add(static_cast<std::uint64_t>(latency));
  digest = mix64(digest ^ (uid * 0x2545f4914f6cdd1dULL));
  if (!payload_ok) ++payload_errors;
  if (by_hops.size() <= hops) by_hops.resize(hops + 1);
  ++by_hops[hops].cells;
  by_hops[hops].lat_sum += static_cast<std::uint64_t>(latency);
}

PortBridge::PortBridge(const net::Topology* topo, const CellCodec* codec, unsigned node,
                       net::Port port, const Channel* rx, WireLink* in_link,
                       Injector* injector, Ejector* ejector)
    : topo_(topo),
      codec_(codec),
      node_(node),
      port_(port),
      rx_(rx),
      in_link_(in_link),
      injector_(injector),
      ejector_(ejector),
      length_(codec->fmt.length_words) {
  rx_words_.reserve(length_);
}

std::string PortBridge::name() const {
  return "fabric_bridge[" + std::to_string(node_) + "." + std::to_string(port_) + "]";
}

void PortBridge::eval(Cycle t) {
  // Traffic generation first, so a cell created this cycle can board an idle
  // slot immediately (cycle-exact regardless of sharding: per-node rng, one
  // draw per cycle, performed by the node's single designated bridge).
  if (injector_) injector_->step(t);

  // ---- Arrival side: the virtual wire from the upstream TxTap.
  const Flit& f = rx_->read(t);
  if (f.valid) {
    if (!rx_active_) {
      PMSB_CHECK(f.sop, "fabric link: body word arrived while expecting a head");
      rx_active_ = true;
      rx_phase_ = 0;
      rx_words_.clear();
    } else {
      PMSB_CHECK(!f.sop, "fabric link: head word arrived inside a cell");
    }
    rx_words_.push_back(f.data);
    if (++rx_phase_ == length_) {
      rx_active_ = false;
      finish_cell(t);
    }
  } else {
    PMSB_CHECK(!rx_active_, "fabric link: gap inside a cell");
  }

  // ---- Output side: transit first, then local injection.
  if (!tx_active_) {
    if (!fifo_.empty()) {
      tx_words_ = std::move(fifo_.front());
      fifo_.pop_front();
      tx_active_ = true;
      tx_phase_ = 0;
    } else if (injector_ && !injector_->backlog.empty()) {
      const Injector::Pending p = injector_->backlog.front();
      injector_->backlog.pop_front();
      const net::Port out = topo_->route_xy(node_, p.dest_node);
      PMSB_CHECK(out != net::kLocal, "injected cell addressed to its own node");
      tx_words_ = codec_->build(out, p.dest_node, node_, p.seq, p.created);
      tx_active_ = true;
      tx_phase_ = 0;
    }
  }
  if (tx_active_) {
    in_link_->drive_next(Flit{true, tx_phase_ == 0, tx_words_[tx_phase_]});
    if (++tx_phase_ == length_) tx_active_ = false;
  }
}

void PortBridge::finish_cell(Cycle t) {
  const unsigned dest_node = codec_->dest_node_of(rx_words_[0]);
  PMSB_CHECK(dest_node < topo_->nodes(), "fabric cell with bad destination node");
  if (dest_node == node_) {
    const auto src = static_cast<unsigned>(rx_words_[1]);
    const std::uint64_t id = CellCodec::uid(src, rx_words_[2]);
    const Cycle latency =
        static_cast<Cycle>((static_cast<std::uint64_t>(t) - rx_words_[3]) & 0xFFFF);
    bool ok = true;
    for (unsigned k = 4; k < length_; ++k) ok &= rx_words_[k] == codec_->payload(id, k);
    ejector_->deliver(id, latency, topo_->hops(src, node_), ok);
    return;
  }
  // Transit: rewrite the hop field for this node's switch, keep the rest.
  const net::Port out = topo_->route_xy(node_, dest_node);
  PMSB_CHECK(out != net::kLocal, "transit cell routed to kLocal");
  rx_words_[0] = codec_->head(out, dest_node);
  PMSB_CHECK(!staged_valid_, "two cells completed in one cycle on one bridge");
  staged_ = std::move(rx_words_);
  staged_valid_ = true;
  ++relayed_;
  rx_words_.clear();
  rx_words_.reserve(length_);
}

void PortBridge::commit(Cycle) {
  if (staged_valid_) {
    fifo_.push_back(std::move(staged_));
    staged_valid_ = false;
    // Upstream output stagger bounds arrivals to one cell per L cycles and
    // the mux drains one per L when backlogged, so the queue stays tiny.
    PMSB_CHECK(fifo_.size() <= 4, "fabric transit queue grew beyond its bound");
  }
}

}  // namespace pmsb::fabric
