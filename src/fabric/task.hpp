// Schedulable unit of the dataflow fabric engine (FabricEngine::kDataflow).
//
// A SchedTask owns a contiguous block of fabric nodes and advances them in
// bounded chunks; it blocks only on its own channels -- upstream data
// (input lookahead exhausted) or downstream credit (ring full) -- never on
// a global barrier. The Scheduler (src/fabric/scheduler.hpp) runs tasks on
// an exp::ThreadPool with work stealing and wakes a blocked task when one
// of its channel neighbors makes progress.
//
// State machine (stored here so the scheduler stays task-type agnostic):
//
//            push            pop              advance() == progress
//   kReady ----------> in a deque ----> kRunning ----> kReady (requeued)
//     ^                                    |
//     |  neighbor wake (CAS) /             | advance() == blocked
//     |  self-recheck (CAS)                v
//     +---------------------------- kBlocked ----> kDone (all nodes at target)
//
// Only the transition kBlocked -> kReady is contended (the owning worker's
// post-block recheck races neighbor wakes); it is a compare-exchange so a
// task is pushed by exactly one party. The blocked <-> wake handshake uses
// seq_cst together with the nodes' progress counters (see the "lost wakeup"
// note in scheduler.hpp).

#pragma once

#include <atomic>
#include <cstdint>

namespace pmsb::fabric {

/// Result of one SchedTask::advance() slice.
enum class Advance : std::uint8_t {
  kProgress,        ///< At least one owned node moved forward.
  kBlockedOnEmpty,  ///< Every runnable node waits for upstream data.
  kBlockedOnFull,   ///< Every runnable node waits for downstream credit.
  kFinished,        ///< Every owned node reached the run target.
};

class SchedTask {
 public:
  virtual ~SchedTask() = default;

  /// Advance each owned node by at most one chunk (bounded by the fabric's
  /// link lookahead). Must publish all progress (with the ordering the
  /// wake protocol requires) before returning.
  virtual Advance advance() = 0;

  /// Cheap conservative recheck: true when advance() would make progress
  /// right now. Used to close the block-vs-wake race; a false positive only
  /// costs a wasted slice, a false negative would deadlock -- so err ready.
  virtual bool can_advance() const = 0;

  enum State : std::uint8_t { kReady, kRunning, kBlocked, kDone };

  std::atomic<std::uint8_t> state{kReady};
  /// Why the task is parked (an Advance value); written by the owning
  /// worker right before the kBlocked store, read by the waker to attribute
  /// the blocked interval to the right counter.
  std::atomic<std::uint8_t> blocked_reason{0};
  /// steady_clock nanosecond stamp of the kBlocked transition.
  std::atomic<std::uint64_t> blocked_since_ns{0};

  // Cumulative telemetry (relaxed; exact totals are read only after a run
  // completes, via the pool's join/wait_idle ordering).
  std::atomic<std::uint64_t> active_ns{0};
  std::atomic<std::uint64_t> blocked_on_empty_ns{0};
  std::atomic<std::uint64_t> blocked_on_full_ns{0};
  std::atomic<std::uint64_t> steals{0};   ///< Times this task ran on a thief.
  std::atomic<std::uint64_t> slices{0};   ///< advance() calls executed.
  std::atomic<std::uint64_t> rounds{0};   ///< Stepped chunks (skipped excluded).
};

}  // namespace pmsb::fabric
