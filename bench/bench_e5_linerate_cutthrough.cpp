// E5 -- Sections 3.2-3.3, figures 4-5: the pipelined memory sustains full
// line rate on all links with at most ONE wave initiation per cycle at M0,
// and cut-through is automatic with a 2-cycle minimum head latency.
//
// Regenerates: output utilization and initiation accounting at saturation,
// and the head-latency distribution at light load, on the cycle-accurate
// Telegraphos III configuration (8x8, 16 stages).

#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "core/config.hpp"

using namespace pmsb;
using namespace pmsb::bench;

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"E5", "full line rate and automatic cut-through (sections 3.2-3.3)", "e5_linerate_cutthrough"},
      [](pmsb::bench::BenchContext& ctx) {
        BenchJson& bj = ctx.json;
    exp::SweepRunner runner;
    const SwitchConfig cfg = telegraphos3();
    std::printf("\nDevice: %s\n", cfg.describe().c_str());

    std::printf("\nSaturated traffic (offered 1.0). 'init/cycle' counts physical M0\n"
                "accesses (a write+snoop pair is ONE access); it can never exceed 1.\n"
                "'buf peak'/'buf mean' are shared-buffer occupancy in segments from\n"
                "the sampled metrics layer:\n\n");
    Table t({"pattern", "output util", "init/cycle", "snoop share", "drops", "buf peak",
             "buf mean"});
    const std::vector<std::pair<const char*, PatternKind>> pats = {
        {"permutation", PatternKind::kPermutation}, {"uniform", PatternKind::kUniform}};
    const std::vector<CycleRun> sat_r = runner.map(pats, [&cfg](const auto& p) {
      TrafficSpec spec;
      spec.arrivals = ArrivalKind::kSaturated;
      spec.pattern = p.second;
      spec.load = 1.0;
      spec.seed = 5;
      return run_pipelined(cfg, spec, 40000, 4000);
    });
    CycleRun sat_uniform;
    for (std::size_t i = 0; i < pats.size(); ++i) {
      const CycleRun& r = sat_r[i];
      const double inits =
          static_cast<double>(r.stats.write_initiations + r.stats.read_initiations +
                              r.stats.snoop_initiations) /
          static_cast<double>(r.stats.cycles);
      const double snoop_share =
          static_cast<double>(r.stats.snoop_cells) / static_cast<double>(r.stats.read_grants);
      t.add_row({pats[i].first, Table::num(r.output_utilization, 3), Table::num(inits, 3),
                 Table::num(snoop_share, 3),
                 Table::integer(static_cast<long long>(r.stats.dropped())),
                 Table::integer(r.buffer_peak), Table::num(r.mean_buffer_occupancy, 1)});
      if (pats[i].second == PatternKind::kUniform) sat_uniform = r;
    }
    t.print();

    std::printf(
        "\nLight-load cut-through head latency (head word in -> head word out),\n"
        "geometric arrivals, uniform destinations. Ablation: disabling the\n"
        "same-cycle write-bus snoop costs exactly one cycle of minimum latency --\n"
        "and even without it, departures still overlap arrivals by reading the\n"
        "memory one wave behind the write (cut-through is structural in this\n"
        "organization; only the wide memory needs extra datapath for it):\n\n");
    Table lat({"load", "snoop", "min", "mean", "p99", "cut share"});
    struct LatPoint {
      double load;
      bool ct;
    };
    std::vector<LatPoint> lat_grid;
    for (double load : {0.05, 0.2, 0.4}) {
      for (bool ct : {true, false}) lat_grid.push_back({load, ct});
    }
    const std::vector<CycleRun> lat_r = runner.map(lat_grid, [&cfg](const LatPoint& p) {
      SwitchConfig c = cfg;
      c.cut_through = p.ct;
      TrafficSpec spec;
      spec.load = p.load;
      spec.seed = 6;
      return run_pipelined(c, spec, 60000, 6000);
    });
    CycleRun light_ct;
    for (std::size_t i = 0; i < lat_grid.size(); ++i) {
      const CycleRun& r = lat_r[i];
      lat.add_row({Table::num(lat_grid[i].load, 2), lat_grid[i].ct ? "on" : "off (ablation)",
                   Table::integer(static_cast<long long>(r.head_latency.min())),
                   Table::num(r.head_latency.mean(), 2),
                   Table::integer(static_cast<long long>(r.head_latency.p99())),
                   Table::num(static_cast<double>(r.stats.cut_through_cells) /
                                  static_cast<double>(r.stats.read_grants),
                              3)});
      if (lat_grid[i].load == 0.05 && lat_grid[i].ct) light_ct = r;
    }
    lat.print();

    bj.metric("throughput", sat_uniform.output_utilization);
    bj.metric("mean_latency", light_ct.head_latency.mean());
    bj.metric("p99_latency", static_cast<double>(light_ct.head_latency.p99()));
    bj.metric("min_head_latency", static_cast<double>(light_ct.head_latency.min()));
    bj.metric("occupancy", sat_uniform.mean_buffer_occupancy);
    bj.metric("buffer_peak", static_cast<double>(sat_uniform.buffer_peak));
    bj.metric("stalled_read_initiations",
              static_cast<double>(sat_uniform.stalled_read_initiations));
    bj.add_table("saturated traffic", t);
    bj.add_table("light-load cut-through head latency", lat);

    std::printf(
        "\nShape check vs paper: utilization ~1.0 at saturation with <= 1 initiation\n"
        "per cycle (the organization's sizing claim), and the minimum head latency\n"
        "is exactly 2 cycles -- cut-through needs no extra datapath (section 3.3).\n");
    return 0;
      });
}
