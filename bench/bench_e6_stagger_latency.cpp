// E6 -- Section 3.4: the shared output register row forbids two packet
// transmissions from starting in the same cycle. The paper derives the
// expected extra cut-through latency as
//
//     E[extra] = (p/4) * (n-1)/n      cycles, p = link load
//
// (each of the n-1 other links carries a head in the tagged head's cycle
// with probability p/2n; each collision costs half a cycle on average).
//
// Regenerates the measured-vs-analytic comparison two ways:
//   (a) collision counting -- the expectation the derivation actually
//       bounds: E[#same-cycle heads on other links]/2;
//   (b) end-to-end initiation delay of cut-through-eligible cells, which
//       adds the (ignored) higher-order term from colliding with waves of
//       earlier cells.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/testbench.hpp"

using namespace pmsb;
using namespace pmsb::bench;

namespace {

struct StaggerResult {
  double analytic;
  double collision_based;  ///< E[other heads same cycle] / 2.
  double end_to_end;       ///< mean(tr - a0 - 1) over eligible cells.
};

StaggerResult measure(unsigned n, double load, Cycle cycles, std::uint64_t seed) {
  SwitchConfig cfg;
  cfg.n_ports = n;
  cfg.word_bits = 16;
  cfg.cell_words = 2 * n;
  cfg.capacity_segments = 8 * n;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kGeometric;  // Unsynchronized heads (the model).
  spec.load = load;
  spec.seed = seed;

  PipelinedTestbench tb(cfg, n, cfg.cell_format(), spec, /*scoreboard=*/false);

  // Collision statistic: heads per cycle.
  std::vector<Cycle> head_cycle_count;
  Cycle last_cycle = -1;
  unsigned heads_this_cycle = 0;
  std::uint64_t head_total = 0, collision_sum = 0;

  // End-to-end statistic: only cells that found their output idle and
  // unqueued (cut-through-eligible) isolate the stagger penalty.
  std::uint64_t eligible = 0;
  std::int64_t extra_sum = 0;

  SwitchEvents ev;
  ev.on_head = [&](unsigned, Cycle a0, unsigned) {
    if (a0 == last_cycle) {
      ++heads_this_cycle;
    } else {
      if (heads_this_cycle > 0) {
        head_total += heads_this_cycle;
        // Each of the k heads in one cycle sees k-1 rivals.
        collision_sum += static_cast<std::uint64_t>(heads_this_cycle) *
                         (heads_this_cycle - 1);
      }
      last_cycle = a0;
      heads_this_cycle = 1;
    }
  };
  ev.on_read_grant = [&](unsigned, unsigned, Cycle tr, Cycle t0, Cycle a0, bool cut) {
    if (cut && tr == t0) {  // Snoop co-grant: the pure cut-through path.
      ++eligible;
      extra_sum += (tr - a0 - 1);
    }
  };
  const Subscription ev_sub = tb.dut().events().subscribe(std::move(ev));
  tb.run(cycles);

  StaggerResult r;
  r.analytic = (load / 4.0) * (static_cast<double>(n) - 1.0) / n;
  r.collision_based =
      head_total == 0 ? 0.0 : static_cast<double>(collision_sum) / (2.0 * head_total);
  r.end_to_end = eligible == 0 ? 0.0 : static_cast<double>(extra_sum) / eligible;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"E6", "staggered-initiation latency penalty (section 3.4)", "e6_stagger_latency"},
      [](pmsb::bench::BenchContext& ctx) {
        BenchJson& bj = ctx.json;
    std::printf(
        "\nExpected extra cut-through latency from simultaneous head arrivals.\n"
        "'collision/2' is the quantity the paper's derivation computes;\n"
        "'end-to-end' is mean(tr - a0 - 1) of snooped cut-through cells (adds\n"
        "higher-order interference the derivation ignores). Cycles:\n\n");
    Table t({"n", "load p", "analytic (p/4)(n-1)/n", "measured collision/2",
             "measured end-to-end"});
    // 12 independent 400k-cycle runs: the longest sweep in the suite, and the
    // one that benefits most from the parallel runner.
    struct Point {
      unsigned n;
      double load;
    };
    std::vector<Point> grid;
    for (unsigned n : {2u, 4u, 8u, 16u}) {
      for (double load : {0.2, 0.4, 0.6}) grid.push_back({n, load});
    }
    exp::SweepRunner runner;
    const std::vector<StaggerResult> results = runner.map(
        grid, [](const Point& p) { return measure(p.n, p.load, 400000, 1000 + p.n); });
    StaggerResult ref{};
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const StaggerResult& r = results[i];
      t.add_row({Table::integer(grid[i].n), Table::num(grid[i].load, 1),
                 Table::num(r.analytic, 4), Table::num(r.collision_based, 4),
                 Table::num(r.end_to_end, 4)});
      if (grid[i].n == 16 && grid[i].load == 0.4) ref = r;
    }
    t.print();

    bj.metric("throughput", 0.4);  // Reference operating point: n=16, load 0.4.
    bj.metric("mean_latency", ref.end_to_end);
    bj.metric("occupancy", ref.collision_based);
    bj.metric("analytic_extra_latency", ref.analytic);
    bj.metric("measured_collision_half", ref.collision_based);
    bj.metric("measured_end_to_end_extra", ref.end_to_end);
    bj.add_table("stagger penalty, measured vs analytic", t);
    std::printf(
        "\nShape check vs paper: the collision statistic matches (p/4)(n-1)/n\n"
        "closely at every (n, p); at 40%% load the penalty is ~0.1 cycles --\n"
        "the paper's 'negligible'. End-to-end delay is slightly larger because\n"
        "M0 may also be busy with waves of earlier cells.\n");
    return 0;
      });
}
