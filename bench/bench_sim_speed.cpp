// Simulator micro-benchmarks (google-benchmark): cycles/second of the
// cycle-accurate switches and slots/second of the behavioural models. Not a
// paper experiment -- this documents the cost of running the reproduction
// itself and guards against performance regressions in the kernel.
//
// Unlike stock BENCHMARK_MAIN(), main() installs a capturing reporter and
// publishes every benchmark's items/second into BENCH_sim_speed.json, so CI
// can track kernel throughput PR over PR alongside the experiment artifacts.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"

#include "arch/shared_buffer.hpp"
#include "core/dual_switch.hpp"
#include "core/fast_switch.hpp"
#include "core/testbench.hpp"

namespace pmsb {
namespace {

void BM_PipelinedSwitchCycles(benchmark::State& state) {
  SwitchConfig cfg;
  cfg.n_ports = static_cast<unsigned>(state.range(0));
  cfg.word_bits = 16;
  cfg.cell_words = 2 * cfg.n_ports;
  cfg.capacity_segments = 32 * cfg.n_ports;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.load = 1.0;
  spec.seed = 1;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec, /*scoreboard=*/false);
  for (auto _ : state) tb.run(1000);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PipelinedSwitchCycles)->Arg(4)->Arg(8)->Arg(16);

void BM_PipelinedWithScoreboard(benchmark::State& state) {
  SwitchConfig cfg;
  cfg.n_ports = 8;
  cfg.word_bits = 16;
  cfg.cell_words = 16;
  cfg.capacity_segments = 128;
  TrafficSpec spec;
  spec.load = 0.8;
  spec.seed = 2;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec, /*scoreboard=*/true);
  for (auto _ : state) tb.run(1000);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PipelinedWithScoreboard);

/// Low-load runs are where the quiescence-aware kernel earns its keep: the
/// arguments are {load percent, idle skipping on/off}, so the 2%-load pair
/// measures the skip speedup directly (main() publishes the ratio into the
/// artifact's runtime block).
void BM_PipelinedLowLoad(benchmark::State& state) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 16;
  cfg.cell_words = 2 * cfg.n_ports;
  cfg.capacity_segments = 32 * cfg.n_ports;
  TrafficSpec spec;
  spec.load = static_cast<double>(state.range(0)) / 100.0;
  spec.seed = 9;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec, /*scoreboard=*/false);
  tb.engine().set_idle_skip(state.range(1) != 0);
  for (auto _ : state) tb.run(20000);
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_PipelinedLowLoad)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({10, 0})
    ->Args({10, 1});

/// The behavioural fast model under saturation: its cycle cost is what a
/// cold fabric node pays instead of the full pipelined datapath.
void BM_FastSwitchCycles(benchmark::State& state) {
  SwitchConfig cfg;
  cfg.n_ports = static_cast<unsigned>(state.range(0));
  cfg.word_bits = 16;
  cfg.cell_words = 2 * cfg.n_ports;
  cfg.capacity_segments = 32 * cfg.n_ports;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.load = 1.0;
  spec.seed = 1;
  Testbench<FastSwitch, SwitchConfig> tb(cfg, cfg.n_ports, cfg.cell_format(), spec,
                                         /*scoreboard=*/false);
  for (auto _ : state) tb.run(1000);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FastSwitchCycles)->Arg(4)->Arg(8)->Arg(16);

void BM_DualSwitchCycles(benchmark::State& state) {
  DualSwitchConfig cfg;
  cfg.n_ports = 8;
  cfg.word_bits = 16;
  cfg.capacity_segments_per_group = 128;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.load = 1.0;
  spec.seed = 3;
  Testbench<DualPipelinedSwitch, DualSwitchConfig> tb(cfg, cfg.n_ports, cfg.cell_format(),
                                                      spec, /*scoreboard=*/false);
  for (auto _ : state) tb.run(1000);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DualSwitchCycles);

void BM_SharedBufferSlots(benchmark::State& state) {
  const unsigned n = 16;
  SharedBufferModel model(n, 128);
  UniformDest dests(n);
  SlotTraffic traffic(n, 0.9, &dests, Rng(4));
  Cycle slot = 0;  // Monotonic across iterations (latency bookkeeping).
  for (auto _ : state) {
    for (int s = 0; s < 1000; ++s) model.step(slot++, traffic.step());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SharedBufferSlots);

/// ConsoleReporter that additionally records each run's items/second (and
/// an item count estimate) for the JSON artifact.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      const auto it = r.counters.find("items_per_second");
      if (it == r.counters.end()) continue;
      const double ips = static_cast<double>(it->second);
      rates_.emplace_back(r.benchmark_name(), ips);
      bench::add_simulated_units(
          static_cast<std::uint64_t>(ips * r.real_accumulated_time));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<std::pair<std::string, double>>& rates() const { return rates_; }

 private:
  std::vector<std::pair<std::string, double>> rates_;
};

}  // namespace
}  // namespace pmsb

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"SIM", "simulation-kernel speed (google-benchmark)", "sim_speed"},
      [](pmsb::bench::BenchContext& ctx) {
        // Main consumed the shared flags; the remainder (--benchmark_*) is
        // google-benchmark's.
        benchmark::Initialize(&ctx.argc, ctx.argv);
        if (benchmark::ReportUnrecognizedArguments(ctx.argc, ctx.argv)) return 1;
        pmsb::CapturingReporter reporter;
        benchmark::RunSpecifiedBenchmarks(&reporter);
        benchmark::Shutdown();

        double total = 0;
        for (const auto& [name, ips] : reporter.rates()) {
          ctx.json.metric(name + " items/s", ips);
          total += ips;
        }
        // The fixed-schema keys: "throughput" aggregates the per-benchmark
        // rates so a single number is diffable at a glance.
        ctx.json.metric("throughput", total);
        // Idle-skip speedup at 2% load (timing-dependent, so it belongs in
        // the runtime block, not metrics). CI asserts the low-load target on
        // this value.
        const auto rate_of = [&reporter](const std::string& name) {
          for (const auto& [n, ips] : reporter.rates()) {
            if (n == name) return ips;
          }
          return 0.0;
        };
        const double off = rate_of("BM_PipelinedLowLoad/2/0");
        const double on = rate_of("BM_PipelinedLowLoad/2/1");
        if (off > 0 && on > 0)
          ctx.json.runtime_metric("low_load_idle_skip_speedup", on / off);
        const double off10 = rate_of("BM_PipelinedLowLoad/10/0");
        const double on10 = rate_of("BM_PipelinedLowLoad/10/1");
        if (off10 > 0 && on10 > 0)
          ctx.json.runtime_metric("ten_pct_load_idle_skip_speedup", on10 / off10);
        return 0;
      });
}
