// Simulator micro-benchmarks (google-benchmark): cycles/second of the
// cycle-accurate switches and slots/second of the behavioural models. Not a
// paper experiment -- this documents the cost of running the reproduction
// itself and guards against performance regressions in the kernel.

#include <benchmark/benchmark.h>

#include <memory>

#include "arch/shared_buffer.hpp"
#include "core/dual_switch.hpp"
#include "core/testbench.hpp"

namespace pmsb {
namespace {

void BM_PipelinedSwitchCycles(benchmark::State& state) {
  SwitchConfig cfg;
  cfg.n_ports = static_cast<unsigned>(state.range(0));
  cfg.word_bits = 16;
  cfg.cell_words = 2 * cfg.n_ports;
  cfg.capacity_segments = 32 * cfg.n_ports;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.load = 1.0;
  spec.seed = 1;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec, /*scoreboard=*/false);
  for (auto _ : state) tb.run(1000);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PipelinedSwitchCycles)->Arg(4)->Arg(8)->Arg(16);

void BM_PipelinedWithScoreboard(benchmark::State& state) {
  SwitchConfig cfg;
  cfg.n_ports = 8;
  cfg.word_bits = 16;
  cfg.cell_words = 16;
  cfg.capacity_segments = 128;
  TrafficSpec spec;
  spec.load = 0.8;
  spec.seed = 2;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec, /*scoreboard=*/true);
  for (auto _ : state) tb.run(1000);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PipelinedWithScoreboard);

void BM_DualSwitchCycles(benchmark::State& state) {
  DualSwitchConfig cfg;
  cfg.n_ports = 8;
  cfg.word_bits = 16;
  cfg.capacity_segments_per_group = 128;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.load = 1.0;
  spec.seed = 3;
  Testbench<DualPipelinedSwitch, DualSwitchConfig> tb(cfg, cfg.n_ports, cfg.cell_format(),
                                                      spec, /*scoreboard=*/false);
  for (auto _ : state) tb.run(1000);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DualSwitchCycles);

void BM_SharedBufferSlots(benchmark::State& state) {
  const unsigned n = 16;
  SharedBufferModel model(n, 128);
  UniformDest dests(n);
  SlotTraffic traffic(n, 0.9, &dests, Rng(4));
  Cycle slot = 0;  // Monotonic across iterations (latency bookkeeping).
  for (auto _ : state) {
    for (int s = 0; s < 1000; ++s) model.step(slot++, traffic.step());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SharedBufferSlots);

}  // namespace
}  // namespace pmsb

BENCHMARK_MAIN();
