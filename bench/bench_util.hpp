// Shared helpers for the experiment benches: uniform ways to run slot-time
// models across loads, to run the cycle-accurate switches with event-based
// latency capture, and to search buffer sizes for a target loss ratio.
//
// Every bench prints "paper" vs "measured" columns through pmsb::Table so
// EXPERIMENTS.md can quote the output verbatim, AND emits a machine-readable
// BENCH_<name>.json artifact through BenchJson so the perf trajectory of the
// repo is diffable PR over PR (see DESIGN.md "Observability").

#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "arch/slot_sim.hpp"
#include "core/switch.hpp"
#include "core/testbench.hpp"
#include "exp/sweep.hpp"
#include "fabric/fabric.hpp"
#include "sim/engine.hpp"
#include "obs/build_info.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "stats/hdr_histogram.hpp"
#include "stats/table.hpp"

namespace pmsb::bench {

/// Process-wide count of simulated time units (slots for slot-time models,
/// cycles for the cycle-accurate switches), accumulated by run_uniform /
/// run_pipelined across all sweep threads. The BenchJson runtime block
/// divides it by wall time to report simulation speed.
inline std::atomic<std::uint64_t>& simulated_units_counter() {
  static std::atomic<std::uint64_t> units{0};
  return units;
}

inline void add_simulated_units(std::uint64_t u) {
  simulated_units_counter().fetch_add(u, std::memory_order_relaxed);
}

inline std::uint64_t simulated_units() {
  return simulated_units_counter().load(std::memory_order_relaxed);
}

/// Result of one slot-model run. Throughput and loss are measured over the
/// post-warmup window only (warmup deliveries would otherwise dilute both).
struct SlotRun {
  double offered = 0;
  double throughput = 0;
  double loss = 0;
  double mean_latency = 0;
  std::uint64_t p50_latency = 0;
  std::uint64_t p90_latency = 0;
  std::uint64_t p99_latency = 0;
  std::uint64_t p999_latency = 0;
  Cycle warmup_slots = 0;
  Cycle measured_slots = 0;
};

/// Run `make_model()` under uniform Bernoulli traffic at `load` for `slots`
/// slots, the first `warmup_fraction` of which are warmup: latency samples
/// of cells injected during warmup are discarded (LatencyStats semantics),
/// and throughput/loss are normalized over the post-warmup window only.
template <typename MakeModel>
SlotRun run_uniform(MakeModel&& make_model, unsigned n, double load, Cycle slots,
                    std::uint64_t seed, double warmup_fraction = 0.2) {
  PMSB_CHECK(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
             "warmup fraction must be in [0, 1)");
  auto model = make_model();
  UniformDest dests(n);
  SlotTraffic traffic(n, load, &dests, Rng(seed));
  const Cycle warmup = static_cast<Cycle>(static_cast<double>(slots) * warmup_fraction);
  model->set_warmup(warmup);
  for (Cycle s = 0; s < warmup; ++s) model->step(s, traffic.step());
  const FlowCounts at_warmup = model->counts();
  for (Cycle s = warmup; s < slots; ++s) model->step(s, traffic.step());
  const FlowCounts end = model->counts();

  const std::uint64_t delivered = end.delivered - at_warmup.delivered;
  const std::uint64_t injected = end.injected - at_warmup.injected;
  const std::uint64_t dropped = end.dropped - at_warmup.dropped;
  SlotRun r;
  r.offered = load;
  r.warmup_slots = warmup;
  r.measured_slots = slots - warmup;
  r.throughput =
      normalized_throughput(delivered, n, static_cast<std::uint64_t>(r.measured_slots));
  r.loss = injected == 0
               ? 0.0
               : static_cast<double>(dropped) / static_cast<double>(injected);
  r.mean_latency = model->latency().mean();
  r.p50_latency = model->latency().p50();
  r.p90_latency = model->latency().p90();
  r.p99_latency = model->latency().p99();
  r.p999_latency = model->latency().p999();
  add_simulated_units(static_cast<std::uint64_t>(slots));
  return r;
}

/// Smallest capacity parameter in [lo, hi] for which the measured loss ratio
/// is <= target (the capacity -> loss mapping must be monotone).
template <typename LossFn>
std::size_t min_capacity_for_loss(LossFn&& loss_at, std::size_t lo, std::size_t hi,
                                  double target) {
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (loss_at(mid) <= target)
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

/// Cycle-accurate run of the pipelined switch capturing head latency from
/// read-grant events (tr + 1 - a0): no scoreboard overhead, suitable for
/// long statistical runs. Buffer/queue occupancy comes from the obs layer:
/// the run attaches a MetricsRegistry and samples every 64 cycles.
struct CycleRun {
  SwitchStats stats;
  LatencyStats head_latency{0};
  /// Mean of (tr - a0 - 1): delay beyond the minimum-possible initiation.
  double mean_extra_initiation_delay = 0;
  double output_utilization = 0;
  std::uint32_t buffer_peak = 0;          ///< Free-list occupancy high-water.
  double mean_buffer_occupancy = 0;       ///< Sampled free-list in_use mean.
  double mean_queue_depth = 0;            ///< Sampled total output-queue depth.
  std::uint64_t stalled_read_initiations = 0;
};

inline CycleRun run_pipelined(const SwitchConfig& cfg, const TrafficSpec& spec, Cycle cycles,
                              Cycle warmup = 0) {
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec, /*scoreboard=*/false);
  obs::MetricsRegistry metrics;
  tb.dut().register_metrics(metrics);
  tb.engine().set_metrics(&metrics, /*period=*/64);
  CycleRun out;
  out.head_latency.set_warmup(warmup);
  std::uint64_t grants = 0;
  std::uint64_t grants_measured = 0;  ///< Read grants issued after warmup.
  std::int64_t extra_sum = 0;
  SwitchEvents ev;
  ev.on_read_grant = [&](unsigned, unsigned, Cycle tr, Cycle, Cycle a0, bool) {
    out.head_latency.record(a0, tr + 1);  // Head word appears at tr + 1.
    if (tr >= warmup) ++grants_measured;
    if (a0 >= warmup) {
      ++grants;
      extra_sum += (tr - a0 - 1);
    }
  };
  const Subscription ev_sub = tb.dut().events().subscribe(std::move(ev));
  tb.run(cycles);
  out.stats = tb.dut().stats();
  out.mean_extra_initiation_delay =
      grants == 0 ? 0.0 : static_cast<double>(extra_sum) / static_cast<double>(grants);
  // Utilization over the post-warmup window only: grants issued during
  // warmup belong to the transient being discarded, and dividing by the
  // total cycle count diluted the utilization of warm runs.
  const Cycle measured_cycles = cycles - warmup;
  out.output_utilization =
      measured_cycles <= 0
          ? 0.0
          : static_cast<double>(grants_measured) * cfg.cell_words /
                (static_cast<double>(cfg.n_ports) * static_cast<double>(measured_cycles));
  out.buffer_peak = tb.dut().buffer_peak();
  if (const obs::GaugeStats* g = metrics.find_gauge("switch.free_list.in_use"))
    out.mean_buffer_occupancy = g->mean();
  if (const obs::GaugeStats* g = metrics.find_gauge("switch.out_queues.total_depth"))
    out.mean_queue_depth = g->mean();
  if (const obs::Counter* c = metrics.find_counter("switch.stalled_read_initiations"))
    out.stalled_read_initiations = c->value();
  add_simulated_units(static_cast<std::uint64_t>(cycles));
  return out;
}

/// Accumulates one bench's machine-readable output and writes it as
/// BENCH_<name>.json (into $PMSB_BENCH_JSON_DIR if set, else the cwd).
///
/// The "metrics" object always carries the keys `throughput`,
/// `mean_latency`, `occupancy`, and the latency percentile keys
/// `p50_latency` / `p90_latency` / `p99_latency` / `p999_latency` (0 when an
/// experiment has no meaningful value for one of them, e.g. the pure area
/// models) so downstream tooling can diff a fixed schema; benches add any
/// further named metrics on top. Schema version 2 (v1 lacked the percentile
/// keys, build provenance, and the optional "timeseries" section).
class BenchJson {
 public:
  static constexpr int kSchemaVersion = 2;

  explicit BenchJson(std::string name) : name_(std::move(name)) {
    metric("throughput", 0.0);
    metric("mean_latency", 0.0);
    metric("occupancy", 0.0);
    metric("p50_latency", 0.0);
    metric("p90_latency", 0.0);
    metric("p99_latency", 0.0);
    metric("p999_latency", 0.0);
  }

  /// Set (or overwrite) one scalar metric.
  void metric(const std::string& key, double v) {
    for (auto& m : metrics_) {
      if (m.first == key) {
        m.second = v;
        return;
      }
    }
    metrics_.emplace_back(key, v);
  }

  /// Fill the schema's latency percentile keys from an HDR histogram.
  void latency_percentiles(const HdrHistogram& h) {
    metric("p50_latency", static_cast<double>(h.p50()));
    metric("p90_latency", static_cast<double>(h.p90()));
    metric("p99_latency", static_cast<double>(h.p99()));
    metric("p999_latency", static_cast<double>(h.p999()));
  }

  /// Named percentile metrics "<prefix> p50/p99/p999" (e.g. per flight
  /// stage) on top of the fixed schema keys.
  void percentile_metrics(const std::string& prefix, const HdrHistogram& h) {
    metric(prefix + " p50", static_cast<double>(h.p50()));
    metric(prefix + " p99", static_cast<double>(h.p99()));
    metric(prefix + " p999", static_cast<double>(h.p999()));
  }

  /// Capture a printed table verbatim (headers + string cells).
  void add_table(const std::string& title, const Table& t) {
    tables_.emplace_back(title, t);
  }

  /// Attach a sampled registry time series, emitted as the artifact's
  /// optional "timeseries" section. Sampling happens on the engine's metric
  /// grid (replayed exactly under idle skipping, identical at any thread
  /// count), so the section stays inside the determinism-diffed surface.
  void set_timeseries(obs::TimeSeriesSampler::Series s) {
    timeseries_ = std::move(s);
    have_timeseries_ = true;
  }

  /// Record how the bench ran: wall time, simulated time units (slots or
  /// cycles) and the sweep width. Emitted as the artifact's "runtime"
  /// object -- excluded from determinism diffs, which compare only
  /// "metrics" and "tables".
  void set_runtime(double wall_seconds, std::uint64_t units, unsigned threads) {
    wall_seconds_ = wall_seconds;
    units_ = units;
    threads_ = threads;
  }

  /// Add a named scalar to the "runtime" object. This is where
  /// timing-dependent values (per-sweep slots/s, speedups) belong: the
  /// runtime object is excluded from determinism diffs, while a metric()
  /// must be byte-identical at any thread count.
  void runtime_metric(const std::string& key, double v) {
    for (auto& m : runtime_extra_) {
      if (m.first == key) {
        m.second = v;
        return;
      }
    }
    runtime_extra_.emplace_back(key, v);
  }

  /// One nested object inside "runtime" (e.g. runtime.scheduler). Same
  /// exclusion from determinism diffs as runtime_metric; holds scalars,
  /// strings, string lists, and lists of flat objects (per-worker rows),
  /// emitted in insertion order.
  struct RuntimeBlock {
    using ObjectRow = std::vector<std::pair<std::string, double>>;

    void set(const std::string& key, double v) { numbers_.emplace_back(key, v); }
    void set(const std::string& key, std::string v) {
      strings_.emplace_back(key, std::move(v));
    }
    void set_list(const std::string& key, std::vector<std::string> values) {
      string_lists_.emplace_back(key, std::move(values));
    }
    void set_objects(const std::string& key, std::vector<ObjectRow> rows) {
      object_lists_.emplace_back(key, std::move(rows));
    }

    void emit(obs::JsonWriter& w) const {
      for (const auto& s : strings_) w.field(s.first, s.second);
      for (const auto& n : numbers_) w.field(n.first, n.second);
      for (const auto& l : string_lists_) {
        w.key(l.first).begin_array();
        for (const auto& v : l.second) w.value(v);
        w.end_array();
      }
      for (const auto& o : object_lists_) {
        w.key(o.first).begin_array();
        for (const ObjectRow& row : o.second) {
          w.begin_object();
          for (const auto& f : row) w.field(f.first, f.second);
          w.end_object();
        }
        w.end_array();
      }
    }

   private:
    std::vector<std::pair<std::string, double>> numbers_;
    std::vector<std::pair<std::string, std::string>> strings_;
    std::vector<std::pair<std::string, std::vector<std::string>>> string_lists_;
    std::vector<std::pair<std::string, std::vector<ObjectRow>>> object_lists_;
  };

  /// Get-or-create the named nested runtime object ("runtime.<name>").
  RuntimeBlock& runtime_block(const std::string& name) {
    for (auto& b : runtime_blocks_)
      if (b.first == name) return b.second;
    runtime_blocks_.emplace_back(name, RuntimeBlock{});
    return runtime_blocks_.back().second;
  }

  /// Convenience: stamp the runtime block from a bench's top-level timer,
  /// the process-wide simulated-unit counter, and the resolved sweep width.
  void finish_runtime(const exp::WallTimer& timer) {
    set_runtime(timer.seconds(), simulated_units(), exp::thread_count());
  }

  std::string json() const {
    obs::JsonWriter w;
    w.begin_object();
    w.field("bench", name_);
    w.field("schema_version", kSchemaVersion);
    w.key("metrics").begin_object();
    for (const auto& m : metrics_) w.field(m.first, m.second);
    w.end_object();
    w.key("runtime").begin_object();
    w.field("wall_seconds", wall_seconds_);
    w.field("simulated_slots", units_);
    w.field("slots_per_second",
            wall_seconds_ > 0.0 ? static_cast<double>(units_) / wall_seconds_ : 0.0);
    w.field("threads", threads_);
    // Build provenance: which toolchain/commit produced this artifact.
    // Runtime-only by design (varies between checkouts; diffs strip it).
    w.field("compiler", obs::build_compiler());
    w.field("flags", obs::build_flags());
    w.field("git_sha", obs::build_git_sha());
    for (const auto& m : runtime_extra_) w.field(m.first, m.second);
    for (const auto& [bname, block] : runtime_blocks_) {
      w.key(bname).begin_object();
      block.emit(w);
      w.end_object();
    }
    w.end_object();
    w.key("tables").begin_array();
    for (const auto& [title, t] : tables_) {
      w.begin_object();
      w.field("title", title);
      w.key("headers").begin_array();
      for (const auto& h : t.headers()) w.value(h);
      w.end_array();
      w.key("rows").begin_array();
      for (std::size_t r = 0; r < t.rows(); ++r) {
        w.begin_array();
        for (std::size_t c = 0; c < t.cols(); ++c) w.value(t.cell(r, c));
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    if (have_timeseries_) {
      w.key("timeseries").begin_object();
      w.key("counter_columns").begin_array();
      for (const auto& c : timeseries_.counter_columns) w.value(c);
      w.end_array();
      w.key("gauge_columns").begin_array();
      for (const auto& g : timeseries_.gauge_columns) w.value(g);
      w.end_array();
      w.field("dropped", timeseries_.dropped);
      // Rows: [t, counter deltas..., gauge values...] in column order.
      w.key("rows").begin_array();
      for (const auto& row : timeseries_.rows) {
        w.begin_array();
        w.value(std::int64_t{row.t});
        for (const std::uint64_t d : row.counter_deltas) w.value(d);
        for (const double g : row.gauges) w.value(g);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_object();
    return w.str();
  }

  /// Output directory for artifacts: Main's --json-out flag wins, then
  /// $PMSB_BENCH_JSON_DIR, then the cwd.
  static std::string& out_dir_override() {
    static std::string dir;
    return dir;
  }

  /// Directory for Chrome/Perfetto trace files: Main's --trace-out flag
  /// wins, then $PMSB_TRACE_OUT. Empty = tracing off (benches skip the
  /// export entirely).
  static std::string& trace_dir_override() {
    static std::string dir;
    return dir;
  }

  /// "<trace dir>/TRACE_<name>.json", or "" when tracing is off.
  std::string trace_path() const {
    std::string dir = trace_dir_override();
    if (dir.empty()) {
      if (const char* env = std::getenv("PMSB_TRACE_OUT")) dir = env;
    }
    if (dir.empty()) return "";
    return dir + "/TRACE_" + name_ + ".json";
  }

  /// Write BENCH_<name>.json; returns false (with a message) on I/O errors.
  bool write() const {
    std::string path = "BENCH_" + name_ + ".json";
    if (!out_dir_override().empty())
      path = out_dir_override() + "/" + path;
    else if (const char* dir = std::getenv("PMSB_BENCH_JSON_DIR"))
      path = std::string(dir) + "/" + path;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: could not open %s for writing\n", path.c_str());
      return false;
    }
    const std::string doc = json();
    // A short write or failed close (full disk, dead NFS mount) must not
    // masquerade as a published artifact: CI diffs these files.
    const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                       std::fputc('\n', f) != EOF;
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
      std::fprintf(stderr, "warning: failed writing %s (disk full?)\n", path.c_str());
      std::remove(path.c_str());
      return false;
    }
    std::printf("\n[bench-json] wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, Table>> tables_;
  double wall_seconds_ = 0;
  std::uint64_t units_ = 0;
  unsigned threads_ = 1;
  std::vector<std::pair<std::string, double>> runtime_extra_;
  std::vector<std::pair<std::string, RuntimeBlock>> runtime_blocks_;
  obs::TimeSeriesSampler::Series timeseries_;
  bool have_timeseries_ = false;
};

/// Everything a bench body gets from Main: the artifact under construction,
/// the resolved seed, the resolved engine/skip/topology knobs, and the argv
/// remainder (common flags consumed).
struct BenchContext {
  BenchJson json;
  std::uint64_t seed = 1;
  int argc = 0;
  char** argv = nullptr;

  /// Resolved fabric engine name ("barrier"/"dataflow"): --engine flag,
  /// else PMSB_FABRIC_ENGINE, else barrier. Main has already installed it
  /// process-wide (set_fabric_engine_override), so FabricConfigs built by
  /// the bench body pick it up automatically.
  std::string engine;
  /// Resolved idle-skip switch (0/1): --idle-skip flag, else
  /// PMSB_IDLE_SKIP, else on. Installed process-wide before the body runs.
  int idle_skip = 1;
  /// --fast-nodes N (else $PMSB_FAST_NODES): how many fabric nodes a bench
  /// should mark fast (validated-model substitution), -1 = bench default.
  /// Interpretation is per-bench; Main only resolves the value.
  int fast_nodes = -1;
  /// --lanes N (else $PMSB_LANES): virtual-channel count override for
  /// wormhole benches, 0 = bench default (sweep or config value).
  unsigned lanes = 0;
};

/// Banner + artifact identity of one bench binary.
struct BenchSpec {
  const char* banner_id;     ///< Table banner id, e.g. "E1".
  const char* banner_title;  ///< Table banner title line.
  const char* json_name;     ///< BENCH_<json_name>.json artifact name.
  std::uint64_t default_seed = 1;  ///< ctx.seed when --seed is absent.
};

/// Shared entry point for every bench binary: parses the common flags
/// (--threads N for the sweep width, --json-out DIR for the artifact
/// directory, --trace-out DIR for Chrome/Perfetto trace files, --seed N),
/// prints the banner, runs `body`, then stamps the
/// runtime block and writes the artifact. Flags are consumed; the remainder
/// is handed to the body as ctx.argc/ctx.argv (bench_sim_speed forwards it
/// to google-benchmark). A non-zero return from the body skips the artifact.
///
///   int main(int argc, char** argv) {
///     return bench::Main(argc, argv, {"E1", "saturation ...", "e1_saturation"},
///                        [](bench::BenchContext& ctx) {
///       BenchJson& bj = ctx.json;
///       ...
///       return 0;
///     });
///   }
inline int Main(int argc, char** argv, const BenchSpec& spec,
                const std::function<int(BenchContext&)>& body) {
  const exp::WallTimer timer;
  BenchContext ctx{BenchJson(spec.json_name), spec.default_seed, 0, nullptr,
                   /*engine=*/{}, /*idle_skip=*/1, /*fast_nodes=*/-1, /*lanes=*/0};

  std::vector<char*> rest;
  if (argc > 0) rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const char* val = nullptr;
    const auto match = [&](const char* flag) {
      const std::size_t n = std::strlen(flag);
      if (std::strcmp(a, flag) == 0) {
        if (i + 1 < argc) val = argv[++i];
        return true;
      }
      if (std::strncmp(a, flag, n) == 0 && a[n] == '=') {
        val = a + n + 1;
        return true;
      }
      return false;
    };
    const auto parse_long = [&](long lo, long hi, long* out) {
      if (val == nullptr) return false;
      char* end = nullptr;
      const long v = std::strtol(val, &end, 10);
      if (end == val || *end != '\0' || v < lo || v > hi) return false;
      *out = v;
      return true;
    };
    long v = 0;
    if (match("--threads")) {
      if (parse_long(1, 1 << 20, &v)) exp::set_thread_override(static_cast<unsigned>(v));
    } else if (match("--json-out")) {
      if (val != nullptr) BenchJson::out_dir_override() = val;
    } else if (match("--trace-out")) {
      if (val != nullptr) BenchJson::trace_dir_override() = val;
    } else if (match("--seed")) {
      if (val != nullptr) {
        char* end = nullptr;
        const unsigned long long s = std::strtoull(val, &end, 10);
        if (end != val && *end == '\0') ctx.seed = s;
      }
    } else if (match("--engine")) {
      if (val != nullptr && std::strcmp(val, "barrier") == 0) {
        fabric::set_fabric_engine_override(fabric::FabricEngine::kBarrier);
      } else if (val != nullptr && std::strcmp(val, "dataflow") == 0) {
        fabric::set_fabric_engine_override(fabric::FabricEngine::kDataflow);
      } else {
        std::fprintf(stderr, "warning: --engine wants barrier|dataflow, got \"%s\"\n",
                     val == nullptr ? "" : val);
      }
    } else if (match("--idle-skip")) {
      if (parse_long(0, 1, &v)) Engine::set_idle_skip_override(static_cast<int>(v));
    } else if (match("--fast-nodes")) {
      if (parse_long(0, 1L << 30, &v)) ctx.fast_nodes = static_cast<int>(v);
    } else if (match("--lanes")) {
      if (parse_long(1, 32, &v)) ctx.lanes = static_cast<unsigned>(v);
    } else {
      rest.push_back(argv[i]);
    }
  }
  ctx.argc = static_cast<int>(rest.size());
  ctx.argv = rest.data();

  // Environment fallbacks for flags that stayed at their "unset" value.
  const auto env_long = [](const char* name, long lo, long hi, long* out) {
    const char* e = std::getenv(name);
    if (e == nullptr) return false;
    char* end = nullptr;
    const long v = std::strtol(e, &end, 10);
    if (end == e || *end != '\0' || v < lo || v > hi) return false;
    *out = v;
    return true;
  };
  long ev = 0;
  if (ctx.fast_nodes < 0 && env_long("PMSB_FAST_NODES", 0, 1L << 30, &ev))
    ctx.fast_nodes = static_cast<int>(ev);
  if (ctx.lanes == 0 && env_long("PMSB_LANES", 1, 32, &ev))
    ctx.lanes = static_cast<unsigned>(ev);

  // Resolve (flag beats env beats default) and echo the effective config.
  // STDERR, not stdout: the determinism CI diffs stdout across thread
  // counts, and --threads would otherwise perturb the byte stream.
  ctx.engine = fabric::to_string(fabric::fabric_engine_env_default());
  ctx.idle_skip = Engine::idle_skip_env_default() ? 1 : 0;
  std::fprintf(stderr,
               "[bench-config] engine=%s threads=%u idle_skip=%d fast_nodes=%d "
               "lanes=%u seed=%llu\n",
               ctx.engine.c_str(), exp::thread_count(), ctx.idle_skip, ctx.fast_nodes,
               ctx.lanes, static_cast<unsigned long long>(ctx.seed));

  print_banner(spec.banner_id, spec.banner_title);
  const int rc = body(ctx);
  if (rc != 0) return rc;
  ctx.json.finish_runtime(timer);
  ctx.json.write();
  return 0;
}

}  // namespace pmsb::bench
