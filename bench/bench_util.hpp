// Shared helpers for the experiment benches: uniform ways to run slot-time
// models across loads, to run the cycle-accurate switches with event-based
// latency capture, and to search buffer sizes for a target loss ratio.
//
// Every bench prints "paper" vs "measured" columns through pmsb::Table so
// EXPERIMENTS.md can quote the output verbatim.

#pragma once

#include <functional>
#include <memory>
#include <string>

#include "arch/slot_sim.hpp"
#include "core/switch.hpp"
#include "core/testbench.hpp"
#include "stats/table.hpp"

namespace pmsb::bench {

/// Result of one slot-model run.
struct SlotRun {
  double offered = 0;
  double throughput = 0;
  double loss = 0;
  double mean_latency = 0;
  std::uint64_t p99_latency = 0;
};

/// Run `make_model()` under uniform Bernoulli traffic at `load`.
template <typename MakeModel>
SlotRun run_uniform(MakeModel&& make_model, unsigned n, double load, Cycle slots,
                    std::uint64_t seed) {
  auto model = make_model();
  UniformDest dests(n);
  SlotTraffic traffic(n, load, &dests, Rng(seed));
  run_slot_sim(*model, traffic, slots, slots / 5);
  SlotRun r;
  r.offered = load;
  r.throughput = measured_throughput(*model, slots);
  r.loss = model->counts().loss_ratio();
  r.mean_latency = model->latency().mean();
  r.p99_latency = model->latency().p99();
  return r;
}

/// Smallest capacity parameter in [lo, hi] for which the measured loss ratio
/// is <= target (the capacity -> loss mapping must be monotone).
template <typename LossFn>
std::size_t min_capacity_for_loss(LossFn&& loss_at, std::size_t lo, std::size_t hi,
                                  double target) {
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (loss_at(mid) <= target)
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

/// Cycle-accurate run of the pipelined switch capturing head latency from
/// read-grant events (tr + 1 - a0): no scoreboard overhead, suitable for
/// long statistical runs.
struct CycleRun {
  SwitchStats stats;
  LatencyStats head_latency{0, 1 << 14};
  /// Mean of (tr - a0 - 1): delay beyond the minimum-possible initiation.
  double mean_extra_initiation_delay = 0;
  double output_utilization = 0;
};

inline CycleRun run_pipelined(const SwitchConfig& cfg, const TrafficSpec& spec, Cycle cycles,
                              Cycle warmup = 0) {
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec, /*scoreboard=*/false);
  CycleRun out;
  out.head_latency.set_warmup(warmup);
  std::uint64_t grants = 0;
  std::int64_t extra_sum = 0;
  SwitchEvents ev;
  ev.on_read_grant = [&](unsigned, unsigned, Cycle tr, Cycle, Cycle a0, bool) {
    out.head_latency.record(a0, tr + 1);  // Head word appears at tr + 1.
    if (a0 >= warmup) {
      ++grants;
      extra_sum += (tr - a0 - 1);
    }
  };
  tb.dut().set_events(std::move(ev));
  tb.run(cycles);
  out.stats = tb.dut().stats();
  out.mean_extra_initiation_delay =
      grants == 0 ? 0.0 : static_cast<double>(extra_sum) / static_cast<double>(grants);
  out.output_utilization = static_cast<double>(out.stats.read_grants) * cfg.cell_words /
                           (static_cast<double>(cfg.n_ports) * static_cast<double>(cycles));
  return out;
}

}  // namespace pmsb::bench
