// E10 -- Section 5.2: peripheral-circuitry area of the pipelined versus the
// wide-memory shared buffer. Paper: at Telegraphos III parameters the
// adjusted [KaSC91] wide-memory periphery would be ~13 mm^2 versus ~9 mm^2
// pipelined, i.e. the pipelined memory is ~30% smaller.
//
// The model counts registers, drivers, decoders, word-line pipeline FFs and
// crossbar wire area explicitly (src/area/models.cpp); the only calibrated
// anchor is the 9 mm^2 Telegraphos III figure -- the wide number is a model
// OUTPUT.

#include <cstdio>

#include "area/models.hpp"
#include "bench_util.hpp"
#include "stats/table.hpp"

using namespace pmsb;
using namespace pmsb::area;

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"E10", "pipelined vs wide-memory peripheral area (section 5.2)", "e10_area_pipelined_vs_wide"},
      [](pmsb::bench::BenchContext& ctx) {
        pmsb::bench::BenchJson& bj = ctx.json;
    const TechParams tech = full_custom_1um();

    std::printf("\nComponent inventory at Telegraphos III parameters (n=8, w=16, D=256):\n\n");
    const PeriphInventory pipe = pipelined_inventory(8, 16, 256);
    const PeriphInventory wide = wide_inventory(8, 16, 256);
    Table inv({"component", "pipelined", "wide memory"});
    inv.add_row({"data register bits", Table::num(pipe.data_reg_bits, 0),
                 Table::num(wide.data_reg_bits, 0)});
    inv.add_row({"control register bits", Table::num(pipe.ctrl_reg_bits, 0),
                 Table::num(wide.ctrl_reg_bits, 0)});
    inv.add_row({"tristate driver bits", Table::num(pipe.driver_bits, 0),
                 Table::num(wide.driver_bits, 0)});
    inv.add_row({"word-line pipeline FFs", Table::num(pipe.line_pipe_bits, 0),
                 Table::num(wide.line_pipe_bits, 0)});
    inv.add_row({"address decoders", Table::num(pipe.decoder_instances, 0),
                 Table::num(wide.decoder_instances, 0)});
    inv.add_row({"crossbar wire crossings", Table::num(pipe.crossbar_crossings, 0),
                 Table::num(wide.crossbar_crossings, 0)});
    inv.print();

    const double pipe_mm2 = peripheral_mm2(pipe, tech);
    const double wide_mm2 = peripheral_mm2(wide, tech);
    std::printf("\nPeripheral area in %s:\n\n", tech.name.c_str());
    Table t({"organization", "measured mm^2", "paper mm^2"});
    t.add_row({"pipelined memory (Telegraphos III)", Table::num(pipe_mm2, 1), "~9 (anchor)"});
    t.add_row({"wide memory ([KaSC91] adjusted)", Table::num(wide_mm2, 1), "~13"});
    t.print();
    std::printf("\npipelined / wide = %.2f  (paper: ~0.7, 'about 30%% smaller')\n",
                pipe_mm2 / wide_mm2);

    std::printf("\nScaling with port count (w=16, D=256):\n\n");
    Table sweep({"n", "pipelined mm^2", "wide mm^2", "ratio"});
    for (unsigned n : {2u, 4u, 8u, 16u}) {
      const double p = peripheral_mm2(pipelined_inventory(n, 16, 256), tech);
      const double w = peripheral_mm2(wide_inventory(n, 16, 256), tech);
      sweep.add_row({Table::integer(n), Table::num(p, 2), Table::num(w, 2), Table::num(p / w, 2)});
    }
    sweep.print();

    bj.metric("pipelined_periph_mm2", pipe_mm2);
    bj.metric("wide_periph_mm2", wide_mm2);
    bj.metric("pipelined_over_wide_ratio", pipe_mm2 / wide_mm2);
    bj.metric("occupancy", pipe_mm2);  // Area benches report mm^2 as the resource figure.
    bj.add_table("component inventory", inv);
    bj.add_table("peripheral area", t);
    bj.add_table("scaling with port count", sweep);

    std::printf(
        "\nShape check vs paper: double input/output buffering and the bypass\n"
        "drivers make the wide periphery ~1.4-1.5x the pipelined one at n >= 4\n"
        "(n = 2 is below the crossover: there the decoded word-line pipeline\n"
        "dominates -- an honest model artifact, see tests/test_area.cpp).\n");
    return 0;
      });
}
