// Buffer-sharing admission-policy frontiers (ROADMAP: dynamic buffer
// sharing + crosspoint-queued baseline under datacenter traffic).
//
// Sweeps the three admission policies (static per-output cap, classic
// Dynamic Threshold [ChHa98-style], BShare-style queueing-delay-driven)
// across their parameter ranges on the three regimes where sharing policy
// actually matters -- incast, hotspot, heavy-tailed bursty arrivals -- and
// publishes the loss / p99-delay frontier per policy, with the drop-reason
// split attributing every lost cell. A static-cap equivalence section
// proves the default policy is bit-identical to the seed SharedBufferModel,
// and a cycle-accurate section places the crosspoint-queued architecture
// (Cao & Panwar) next to the pipelined shared buffer at equal total memory.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "arch/admission.hpp"
#include "arch/cq/cq_switch.hpp"
#include "arch/shared_buffer.hpp"
#include "bench_util.hpp"
#include "core/testbench.hpp"
#include "traffic/spec.hpp"

using namespace pmsb;
using namespace pmsb::bench;

namespace {

constexpr unsigned kN = 16;
constexpr std::size_t kPool = 64;  // 4 cells/output: tight enough to fight over.
constexpr Cycle kSlots = 150000;
constexpr double kWarmupFraction = 0.2;

/// The three stress workloads, as traffic::GeneratorSpec text (the one
/// grammar shared by benches, tests and the fabric config). `tag` keys the
/// tables and JSON metrics and is independent of the spec's kind name, so
/// the artifact schema survives spec tweaks.
struct Workload {
  const char* tag;
  const char* spec;
};
constexpr Workload kWorkloads[] = {
    // 8-to-1 fan-in at load 0.7: the sink output is offered 5.6x its
    // drain rate while the rest of the switch idles.
    {"incast", "incast:8,0.7"},
    // Half of all cells converge on output 0 at aggregate load 0.6.
    {"hotspot", "hotspot:0.5,0.6"},
    // Heavy-tailed (shape 1.5) bursts, mean 16 cells, uniform dests.
    {"bursty", "pareto:0.8,1.5,16"},
};

SlotTraffic make_traffic(const Workload& w, DestPattern* dests, std::uint64_t seed) {
  return traffic::GeneratorSpec::parse(w.spec).make_slot_traffic(kN, /*fallback_load=*/0.5,
                                                                 dests, Rng(seed));
}

std::unique_ptr<DestPattern> make_dests(const Workload& w, std::uint64_t seed) {
  Rng rng(seed);  // Consumed by permutation specs only.
  return traffic::GeneratorSpec::parse(w.spec).make_dest(kN, rng);
}

struct PolicyPoint {
  std::string policy;
  double param = 0;
  double loss = 0;
  double throughput = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t pool_full = 0;
  std::uint64_t output_cap = 0;
  std::uint64_t policy_reject = 0;
};

PolicyPoint run_point(const Workload& w, const char* policy_name, double param,
                      std::unique_ptr<AdmissionPolicy> policy, std::uint64_t seed) {
  SharedBufferModel model(kN, kPool, std::move(policy));
  std::unique_ptr<DestPattern> dests = make_dests(w, seed);
  SlotTraffic traffic = make_traffic(w, dests.get(), seed);
  const Cycle warmup = static_cast<Cycle>(static_cast<double>(kSlots) * kWarmupFraction);
  run_slot_sim(model, traffic, kSlots, warmup);
  add_simulated_units(static_cast<std::uint64_t>(kSlots));

  const FlowCounts m = model.measured_counts();
  PolicyPoint p;
  p.policy = policy_name;
  p.param = param;
  p.loss = m.injected == 0
               ? 0.0
               : static_cast<double>(m.dropped) / static_cast<double>(m.injected);
  p.throughput = measured_throughput(model, kSlots);
  p.p50 = model.latency().p50();
  p.p99 = model.latency().p99();
  p.pool_full = model.drop_split().pool_full;
  p.output_cap = model.drop_split().output_cap;
  p.policy_reject = model.drop_split().policy_reject;
  return p;
}

struct PointSpec {
  Workload workload;
  const char* policy;
  double param;
};

std::unique_ptr<AdmissionPolicy> make_policy(const std::string& name, double param) {
  if (name == "static_cap")
    return std::make_unique<StaticCapPolicy>(static_cast<std::size_t>(param));
  if (name == "dynamic_threshold") return std::make_unique<DynamicThresholdPolicy>(param);
  return std::make_unique<QueueDelayPolicy>(static_cast<Cycle>(param));
}

// ---------------------------------------------------------------------------
// Static-cap equivalence: the seed SharedBufferModel::step, verbatim.
// ---------------------------------------------------------------------------

class SeedSharedBuffer : public SlotModel {
 public:
  SeedSharedBuffer(unsigned n, std::size_t capacity, std::size_t out_queue_limit = 0)
      : SlotModel(n), capacity_(capacity), out_queue_limit_(out_queue_limit), queues_(n) {}
  std::uint64_t resident() const override { return resident_; }
  const char* kind() const override { return "seed shared buffer"; }

 protected:
  void do_step(Cycle slot,
               const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) override {
    for (unsigned i = 0; i < n_; ++i) {
      if (!arrivals[i]) continue;
      on_injected();
      const unsigned dest = arrivals[i]->dest;
      if ((capacity_ != 0 && resident_ >= capacity_) ||
          (out_queue_limit_ != 0 && queues_[dest].size() >= out_queue_limit_)) {
        on_dropped();
        continue;
      }
      queues_[dest].push_back(SlotCell{slot, i, dest});
      ++resident_;
    }
    for (unsigned o = 0; o < n_; ++o) {
      if (queues_[o].empty()) continue;
      on_delivered(slot, queues_[o].front());
      queues_[o].pop_front();
      --resident_;
    }
  }

 private:
  std::size_t capacity_;
  std::size_t out_queue_limit_;
  std::vector<std::deque<SlotCell>> queues_;
  std::uint64_t resident_ = 0;
};

/// True iff the policy model reproduces the seed model bit-for-bit on an
/// E3-style workload (counts, window, and latency histogram all equal).
bool static_cap_matches_seed() {
  bool ok = true;
  const struct {
    std::size_t capacity;
    std::size_t limit;
    double load;
  } cases[] = {{86, 0, 0.8}, {64, 4, 0.8}, {48, 6, 0.95}};
  for (const auto& c : cases) {
    SeedSharedBuffer seed(kN, c.capacity, c.limit);
    SharedBufferModel model(kN, c.capacity, c.limit);
    for (SlotModel* m : {static_cast<SlotModel*>(&seed), static_cast<SlotModel*>(&model)}) {
      UniformDest dests(kN);
      SlotTraffic traffic(kN, c.load, &dests, Rng(101));
      run_slot_sim(*m, traffic, 60000, 12000);
      add_simulated_units(60000);
    }
    ok = ok && seed.counts().injected == model.counts().injected &&
         seed.counts().delivered == model.counts().delivered &&
         seed.counts().dropped == model.counts().dropped &&
         seed.resident() == model.resident() &&
         seed.measured_counts().delivered == model.measured_counts().delivered &&
         seed.latency().samples() == model.latency().samples() &&
         seed.latency().mean() == model.latency().mean() &&
         seed.latency().p50() == model.latency().p50() &&
         seed.latency().p99() == model.latency().p99() &&
         seed.latency().max() == model.latency().max();
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Cycle-accurate: crosspoint-queued vs pipelined shared buffer.
// ---------------------------------------------------------------------------

struct CyclePoint {
  std::string arch;
  double loss = 0;
  std::uint64_t p99 = 0;
  double mean_latency = 0;
};

template <typename TB>
CyclePoint run_cycle_point(TB& tb, const char* arch, Cycle cycles, Cycle warmup) {
  LatencyStats head_latency(warmup);
  SwitchEvents ev;
  ev.on_read_grant = [&](unsigned, unsigned, Cycle tr, Cycle, Cycle a0, bool) {
    head_latency.record(a0, tr + 1);
  };
  const Subscription sub = tb.dut().events().subscribe(std::move(ev));
  tb.run(cycles);
  const SwitchStats& st = tb.dut().stats();
  CyclePoint p;
  p.arch = arch;
  p.loss = st.heads_seen == 0
               ? 0.0
               : static_cast<double>(st.dropped()) / static_cast<double>(st.heads_seen);
  p.p99 = head_latency.p99();
  p.mean_latency = head_latency.mean();
  add_simulated_units(static_cast<std::uint64_t>(cycles));
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::Main(
      argc, argv,
      {"BS", "buffer-sharing admission-policy frontiers (BShare, Cao&Panwar)",
       "buffer_sharing"},
      [](bench::BenchContext& ctx) {
        BenchJson& bj = ctx.json;
        std::printf(
            "\n16x16 shared buffer, %zu-cell pool, %lld slots/run (%.0f%% warmup).\n"
            "Loss and p99 delay per admission policy under incast (8-to-1),\n"
            "hotspot (50%% to one output), and heavy-tailed bursts (Pareto 1.5,\n"
            "mean 16 cells).\n",
            kPool, static_cast<long long>(kSlots), kWarmupFraction * 100.0);

        // The full frontier grid: every (workload, policy, parameter) point
        // is independent, so the whole grid is one parallel sweep.
        std::vector<PointSpec> specs;
        const double static_params[] = {2, 4, 8, 16};
        const double dt_params[] = {0.25, 0.5, 1.0, 2.0};
        const double delay_params[] = {4, 8, 16, 32};
        for (const Workload& w : kWorkloads) {
          for (const double v : static_params) specs.push_back({w, "static_cap", v});
          for (const double v : dt_params) specs.push_back({w, "dynamic_threshold", v});
          for (const double v : delay_params) specs.push_back({w, "queue_delay", v});
        }
        exp::SweepRunner runner;
        std::vector<std::function<PolicyPoint()>> jobs;
        jobs.reserve(specs.size());
        for (const PointSpec& s : specs) {
          jobs.push_back([s] {
            return run_point(s.workload, s.policy, s.param,
                             make_policy(s.policy, s.param), /*seed=*/407);
          });
        }
        const std::vector<PolicyPoint> points = runner.run(std::move(jobs));

        std::size_t idx = 0;
        for (const Workload& w : kWorkloads) {
          Table t({"policy", "param", "loss", "throughput", "p50", "p99", "pool-full",
                   "output-cap", "policy-reject"});
          for (std::size_t k = 0; k < 12; ++k, ++idx) {
            const PolicyPoint& p = points[idx];
            t.add_row({p.policy, Table::num(p.param, 2), Table::sci(p.loss, 2),
                       Table::num(p.throughput, 4),
                       Table::integer(static_cast<long long>(p.p50)),
                       Table::integer(static_cast<long long>(p.p99)),
                       Table::integer(static_cast<long long>(p.pool_full)),
                       Table::integer(static_cast<long long>(p.output_cap)),
                       Table::integer(static_cast<long long>(p.policy_reject))});
          }
          std::printf("\n-- %s --\n", w.tag);
          t.print();
          bj.add_table(std::string(w.tag) + " loss/p99 frontier", t);
        }

        // Headline per-(workload, policy) metrics at each policy's midpoint
        // parameter, so the frontier is diffable as flat keys too.
        idx = 0;
        for (const Workload& w : kWorkloads) {
          for (std::size_t k = 0; k < 12; ++k, ++idx) {
            const PolicyPoint& p = points[idx];
            const bool headline =
                (p.policy == "static_cap" && p.param == 4) ||
                (p.policy == "dynamic_threshold" && p.param == 1.0) ||
                (p.policy == "queue_delay" && p.param == 16);
            if (!headline) continue;
            const std::string prefix = std::string(w.tag) + " " + p.policy;
            bj.metric(prefix + " loss", p.loss);
            bj.metric(prefix + " p99", static_cast<double>(p.p99));
          }
        }

        // Fixed-schema keys from one representative point (hotspot, DT 1.0).
        const PolicyPoint& rep = points[12 + 4 + 2];  // hotspot, DT, alpha 1.0
        bj.metric("throughput", rep.throughput);
        bj.metric("p50_latency", static_cast<double>(rep.p50));
        bj.metric("p99_latency", static_cast<double>(rep.p99));
        bj.metric("occupancy", static_cast<double>(kPool));

        // Static-cap equivalence: the default policy must reproduce the
        // seed model bit-for-bit, or the artifact (and CI) fails.
        const bool identical = static_cap_matches_seed();
        bj.metric("static_cap_bit_identical", identical ? 1.0 : 0.0);
        std::printf("\nstatic-cap policy vs seed model: %s\n",
                    identical ? "bit-identical" : "DIVERGED");
        if (!identical) {
          std::fprintf(stderr,
                       "error: static-cap policy diverged from the seed "
                       "SharedBufferModel\n");
          return 1;
        }

        // Cycle-accurate coda: crosspoint-queued (RR and LQF) vs the
        // pipelined shared buffer at equal total memory, under the hotspot
        // regime the partitioning argument is about.
        std::printf(
            "\n-- cycle-accurate, 8x8, 128 cells total, hotspot 50%% load 0.6 --\n");
        SwitchConfig cfg;
        cfg.n_ports = 8;
        cfg.word_bits = 16;
        cfg.cell_words = 16;
        cfg.capacity_segments = 128;  // 2 cells per crosspoint when split 64 ways.
        TrafficSpec spec;
        spec.pattern = PatternKind::kHotspot;
        spec.hot_fraction = 0.5;
        spec.load = 0.6;
        spec.seed = ctx.seed;
        const Cycle cycles = 120000, cwarm = 24000;
        std::vector<std::function<CyclePoint()>> cycle_jobs;
        cycle_jobs.push_back([&] {
          Testbench<CrosspointQueuedSwitch, CqConfig> tb(
              CqConfig{cfg, CqScheduler::kRoundRobin}, cfg.n_ports, cfg.cell_format(), spec,
              /*with_scoreboard=*/false);
          return run_cycle_point(tb, "crosspoint-queued (RR)", cycles, cwarm);
        });
        cycle_jobs.push_back([&] {
          Testbench<CrosspointQueuedSwitch, CqConfig> tb(
              CqConfig{cfg, CqScheduler::kLongestQueue}, cfg.n_ports, cfg.cell_format(), spec,
              /*with_scoreboard=*/false);
          return run_cycle_point(tb, "crosspoint-queued (LQF)", cycles, cwarm);
        });
        cycle_jobs.push_back([&] {
          PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec,
                                /*with_scoreboard=*/false);
          return run_cycle_point(tb, "shared buffer (uncapped)", cycles, cwarm);
        });
        cycle_jobs.push_back([&] {
          SwitchConfig capped = cfg;
          capped.out_queue_limit = 32;  // anti-hogging cap, 1/4 of the pool
          PipelinedTestbench tb(capped, capped.n_ports, capped.cell_format(), spec,
                                /*with_scoreboard=*/false);
          return run_cycle_point(tb, "shared buffer (cap 32)", cycles, cwarm);
        });
        const std::vector<CyclePoint> cyc = runner.run(std::move(cycle_jobs));
        Table ct({"architecture", "loss", "p99 head latency", "mean head latency"});
        for (const CyclePoint& p : cyc) {
          ct.add_row({p.arch, Table::sci(p.loss, 2),
                      Table::integer(static_cast<long long>(p.p99)),
                      Table::num(p.mean_latency, 1)});
        }
        ct.print();
        bj.add_table("crosspoint-queued vs shared buffer (cycle-accurate)", ct);
        bj.metric("cq_rr_loss", cyc[0].loss);
        bj.metric("cq_lqf_loss", cyc[1].loss);
        bj.metric("pipelined_loss", cyc[2].loss);
        bj.metric("pipelined_capped_loss", cyc[3].loss);
        std::printf(
            "\nSame die area of buffer memory, persistent hotspot overload:\n"
            "loss is set by the overload itself, so every design that isolates\n"
            "the hot output converges to the same loss floor. The uncapped\n"
            "shared pool does not isolate it -- the hot output hogs the pool\n"
            "and cold cells are lost too, the failure mode admission policies\n"
            "exist to prevent. An anti-hogging cap restores isolation with no\n"
            "extra memory; sharing's win over partitioning is under transient\n"
            "bursts (the bursty frontier above), not persistent overload.\n");
        return 0;
      });
}
