// E3 -- Section 2.2 / [HlKa88]: buffer size needed for a cell-loss ratio of
// 1e-3 on a 16x16 switch at load 0.8 (uniform destinations):
//     shared buffering   ~  86 cells total   (5.4 per output)
//     output queueing    ~ 178 cells total  (11.1 per output)
//     input smoothing    ~1300 cells total  (80 per input)
//
// Regenerates the table by binary-searching each organization's capacity
// parameter against simulation.

#include <cstdio>
#include <functional>
#include <memory>

#include "arch/input_smoothing.hpp"
#include "core/testbench.hpp"
#include "arch/output_queueing.hpp"
#include "arch/shared_buffer.hpp"
#include "bench_util.hpp"

using namespace pmsb;
using namespace pmsb::bench;

namespace {

constexpr unsigned kN = 16;
constexpr double kLoad = 0.8;
constexpr double kTarget = 1e-3;
constexpr Cycle kSlots = 400000;  // ~5.1M offered cells: resolves 1e-3 well.

double loss_shared(std::size_t cells, std::uint64_t seed) {
  return run_uniform([&] { return std::make_unique<SharedBufferModel>(kN, cells); }, kN, kLoad,
                     kSlots, seed)
      .loss;
}
double loss_output(std::size_t per_output, std::uint64_t seed) {
  return run_uniform([&] { return std::make_unique<OutputQueueing>(kN, per_output); }, kN,
                     kLoad, kSlots, seed)
      .loss;
}
double loss_smoothing(std::size_t frame, std::uint64_t seed) {
  return run_uniform([&] { return std::make_unique<InputSmoothing>(kN, frame, Rng(seed + 1)); },
                     kN, kLoad, kSlots, seed)
      .loss;
}

}  // namespace

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"E3", "buffer sizing for loss <= 1e-3 (section 2.2, [HlKa88])", "e3_buffer_sizing"},
      [](pmsb::bench::BenchContext& ctx) {
        BenchJson& bj = ctx.json;
    std::printf("\n16x16 switch, uniform Bernoulli arrivals at load 0.8; binary search of\n"
                "each organization's capacity for cell-loss ratio <= 1e-3.\n\n");

    // Each binary search is sequential in its own probes (probe c depends on
    // the loss at the previous c), but the three searches are independent of
    // one another, so they run as three parallel sweep points.
    exp::SweepRunner runner;
    std::vector<std::function<std::size_t()>> searches;
    searches.push_back([] {
      return min_capacity_for_loss([](std::size_t c) { return loss_shared(c, 101); }, 16, 256,
                                   kTarget);
    });
    searches.push_back([] {
      return min_capacity_for_loss([](std::size_t c) { return loss_output(c, 102); }, 2, 64,
                                   kTarget);
    });
    searches.push_back([] {
      return min_capacity_for_loss([](std::size_t c) { return loss_smoothing(c, 103); }, 4, 256,
                                   kTarget);
    });
    const std::vector<std::size_t> found = runner.run(std::move(searches));
    const std::size_t shared_cells = found[0];
    const std::size_t output_per_port = found[1];
    const std::size_t smoothing_frame = found[2];

    Table t({"organization", "measured total cells", "measured per port", "paper total",
             "paper per port"});
    t.add_row({"shared buffering", Table::integer(static_cast<long long>(shared_cells)),
               Table::num(static_cast<double>(shared_cells) / kN, 1), "86", "5.4 / output"});
    t.add_row({"output queueing",
               Table::integer(static_cast<long long>(output_per_port * kN)),
               Table::num(static_cast<double>(output_per_port), 1), "178", "11.1 / output"});
    t.add_row({"input smoothing",
               Table::integer(static_cast<long long>(smoothing_frame * kN)),
               Table::num(static_cast<double>(smoothing_frame), 1), "1300", "80 / input"});
    t.print();

    // Confirmation runs at the found sizes, again mutually independent.
    std::vector<std::function<double()>> confirms;
    confirms.push_back([shared_cells] { return loss_shared(shared_cells, 111); });
    confirms.push_back([output_per_port] { return loss_output(output_per_port, 112); });
    confirms.push_back([smoothing_frame] { return loss_smoothing(smoothing_frame, 113); });
    const std::vector<double> confirmed = runner.run(std::move(confirms));
    const double shared_loss = confirmed[0];
    std::printf(
        "\nLoss at the found sizes (shared %zu, output %zu/port, smoothing frame %zu):\n"
        "  shared: %.2e   output: %.2e   smoothing: %.2e\n",
        shared_cells, output_per_port, smoothing_frame, shared_loss, confirmed[1], confirmed[2]);

    std::printf(
        "\nShape check vs paper: shared << output << smoothing, with roughly the\n"
        "paper's ratios (shared needs ~2x less than output queueing and ~15x less\n"
        "than input smoothing). Exact values differ slightly from [HlKa88]'s\n"
        "analytic queueing model; the ordering and magnitudes are the claim.\n");

    // Cross-check: the CYCLE-ACCURATE pipelined switch under slotted arrivals
    // is the same queueing system as the behavioural shared-buffer model --
    // their loss ratios at equal capacity must agree.
    std::printf("\nCross-check, behavioural model vs cycle-accurate pipelined switch\n"
                "(8x8, 24-cell buffer, slotted arrivals at load 0.9):\n\n");
    {
      const unsigned n = 8;
      const std::size_t cells = 24;
      const double load = 0.9;
      const Cycle slots = 200000;
      std::vector<std::function<double()>> checks;
      checks.push_back([n, cells, load, slots] {
        return run_uniform([&] { return std::make_unique<SharedBufferModel>(n, cells); }, n, load,
                           slots, 707)
            .loss;
      });
      checks.push_back([n, cells, load, slots] {
        return run_uniform([&] { return std::make_unique<SharedBufferModel>(n, cells + n); }, n,
                           load, slots, 707)
            .loss;
      });
      checks.push_back([n, cells, load, slots] {
        SwitchConfig cfg;
        cfg.n_ports = n;
        cfg.word_bits = 16;
        cfg.cell_words = 2 * n;
        cfg.capacity_segments = static_cast<unsigned>(cells);
        TrafficSpec spec;
        spec.arrivals = ArrivalKind::kSlotted;
        spec.load = load;
        spec.seed = 708;
        const CycleRun r = run_pipelined(cfg, spec, slots * 2 * n, 0);
        return static_cast<double>(r.stats.dropped()) /
               static_cast<double>(r.stats.heads_seen);
      });
      const std::vector<double> check_r = runner.run(std::move(checks));
      const double behav = check_r[0];
      const double behav_plus = check_r[1];
      const double cyc = check_r[2];
      Table x({"model", "loss ratio"});
      x.add_row({"behavioural, 24 cells", Table::sci(behav, 2)});
      x.add_row({"cycle-accurate pipelined switch, 24 cells", Table::sci(cyc, 2)});
      x.add_row({"behavioural, 24 + n cells", Table::sci(behav_plus, 2)});
      x.print();

      bj.metric("throughput", kLoad * (1.0 - shared_loss));
      bj.metric("occupancy", static_cast<double>(shared_cells));
      bj.metric("loss_shared", shared_loss);
      bj.metric("cells_shared", static_cast<double>(shared_cells));
      bj.metric("cells_output_per_port", static_cast<double>(output_per_port));
      bj.metric("cells_smoothing_frame", static_cast<double>(smoothing_frame));
      bj.metric("crosscheck_loss_behavioural", behav);
      bj.metric("crosscheck_loss_cycle_accurate", cyc);
      bj.add_table("buffer sizing for loss <= 1e-3", t);
      bj.add_table("behavioural vs cycle-accurate loss", x);
      std::printf(
          "\n(The machine lands between the two behavioural capacities: the\n"
          "pipelined memory recycles a cell's address when its read wave STARTS,\n"
          "not when the last word has left -- worth up to n extra cells of\n"
          "effective capacity at saturation. A real, measurable advantage of the\n"
          "organization; otherwise the RTL machine and the queueing abstraction\n"
          "follow the same shared-buffer discipline.)\n");
    }
    return 0;
      });
}
