// E2 -- Section 2.1 / [Dally90 fig. 8, 1 lane]: input-queued wormhole
// switching with messages longer than the buffers (20-flit messages,
// 16-flit FIFOs, single lane / no virtual channels) saturates around 25%
// of link capacity.
//
// Regenerates the latency-vs-accepted-traffic curve on an 8x8 mesh of
// single-lane wormhole routers with credit flow control, plus a buffer-depth
// ablation showing the "bursts larger than the buffers" regime is what
// hurts.

// WormholeNetwork is a deprecated shim (superseded by
// fabric::Fabric::build); this bench stays on it until the shim's removal
// so the E2 curve keeps its exact historical baseline.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "net/wormhole.hpp"
#include "stats/table.hpp"

using namespace pmsb;
using namespace pmsb::bench;
using namespace pmsb::net;

namespace {

struct Point {
  double offered;
  double accepted;
  double latency;
  std::uint64_t backlog;
};

Point run_point(double rate, unsigned buffer_flits, unsigned message_flits,
                std::uint64_t seed, unsigned lanes = 1) {
  WormholeConfig cfg;
  cfg.topo = Topology{TopologyKind::kMesh2D, 8, 8};
  cfg.buffer_flits = buffer_flits;
  cfg.message_flits = message_flits;
  cfg.injection_rate = rate;
  cfg.lanes = lanes;
  cfg.seed = seed;
  WormholeNetwork net(cfg);
  net.run(25000, 5000);
  add_simulated_units(25000);
  return Point{rate, net.accepted_throughput(), net.latency().mean(),
               net.source_backlog_flits()};
}

}  // namespace

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"E2", "bursty wormhole traffic (section 2.1, [Dally90 fig. 8, 1 lane])", "e2_bursty_wormhole"},
      [](pmsb::bench::BenchContext& ctx) {
        BenchJson& bj = ctx.json;
    // All three sweeps (rate series, buffer/message ablation, lane count) are
    // independent network instances: submit the whole grid at once and print
    // the tables from the ordered results.
    const std::vector<double> rates = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.60, 0.90};
    const std::vector<std::pair<unsigned, unsigned>> ablation = {
        {20u, 4u}, {20u, 16u}, {20u, 64u}, {8u, 4u}, {8u, 16u}, {8u, 64u}};
    const std::vector<unsigned> lane_counts = {1u, 2u, 4u};
    std::vector<std::function<Point()>> points;
    for (double rate : rates)
      points.push_back([rate] { return run_point(rate, 16, 20, 7); });
    for (auto [msg, buf] : ablation)
      points.push_back([msg = msg, buf = buf] { return run_point(0.9, buf, msg, 9); });
    for (unsigned l : lane_counts)
      points.push_back([l] { return run_point(0.9, 16, 20, 10, l); });
    exp::SweepRunner runner;
    const std::vector<Point> results = runner.run(std::move(points));

    std::printf(
        "\n8x8 mesh, single-lane wormhole routers, 20-flit messages, 16-flit\n"
        "input buffers, uniform destinations. Latency is head-injection to\n"
        "tail-ejection; saturation shows as accepted << offered + exploding\n"
        "backlog. Paper citation: saturation at ~25%% of link capacity.\n\n");

    Table t({"offered (flits/node/cy)", "accepted", "mean latency (cy)", "source backlog"});
    double saturation = 0;
    double light_latency = 0;
    std::uint64_t peak_backlog = 0;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      const Point& p = results[i];
      t.add_row({Table::num(p.offered, 2), Table::num(p.accepted, 3), Table::num(p.latency, 1),
                 Table::integer(static_cast<long long>(p.backlog))});
      saturation = std::max(saturation, p.accepted);
      if (rates[i] == 0.05) light_latency = p.latency;
      peak_backlog = std::max(peak_backlog, p.backlog);
    }
    t.print();
    std::printf("\nMeasured saturation throughput: %.3f flits/node/cycle (paper: ~0.25).\n",
                saturation);

    std::printf(
        "\nAblation -- buffer depth vs message length (offered 0.9, the same\n"
        "mesh): deeper buffers relieve the 1-lane coupling, shorter messages\n"
        "relieve it too; 'messages longer than buffers' is the painful corner.\n\n");
    Table ab({"message flits", "buffer flits", "accepted at offered 0.9"});
    for (std::size_t i = 0; i < ablation.size(); ++i) {
      const Point& p = results[rates.size() + i];
      ab.add_row({Table::integer(ablation[i].first), Table::integer(ablation[i].second),
                  Table::num(p.accepted, 3)});
    }
    ab.print();

    std::printf(
        "\nVirtual-channel lanes ([Dally90]'s remedy) at CONSTANT total buffering\n"
        "(16 flits/port, 20-flit messages, offered 0.9): the '1 lane' case the\n"
        "paper cites is the worst point of Dally's own figure:\n\n");
    Table lanes({"lanes", "flits per lane", "accepted at offered 0.9"});
    for (std::size_t i = 0; i < lane_counts.size(); ++i) {
      const Point& p = results[rates.size() + ablation.size() + i];
      lanes.add_row({Table::integer(lane_counts[i]), Table::integer(16 / lane_counts[i]),
                     Table::num(p.accepted, 3)});
    }
    lanes.print();

    bj.metric("throughput", saturation);
    bj.metric("mean_latency", light_latency);
    bj.metric("occupancy", static_cast<double>(peak_backlog));
    bj.add_table("latency vs accepted traffic", t);
    bj.add_table("buffer depth vs message length", ab);
    bj.add_table("virtual-channel lanes", lanes);
    return 0;
      });
}
