// E13 -- Section 4.4: full-custom versus standard-cell implementation of the
// pipelined buffer datapath. Paper: "the datapath of the shared buffer gains
// approximately a factor of 22 in speed, capacity, and area: full-custom has
// twice the number of links, the clock is 2.5 times faster, and the
// peripheral circuit area is 4.5 times smaller"; and, peripheral area
// growing with the square of the link count, "an 8x8 standard-cell design
// would be about 18 times larger than this same configuration in
// full-custom".

#include <cstdio>

#include "area/models.hpp"
#include "bench_util.hpp"
#include "stats/table.hpp"

using namespace pmsb;
using namespace pmsb::area;

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"E13", "full-custom vs standard-cell factor (section 4.4)", "e13_fullcustom_factor"},
      [](pmsb::bench::BenchContext& ctx) {
        pmsb::bench::BenchJson& bj = ctx.json;
    const FullCustomGain g = full_custom_gain();
    std::printf("\nThe 'factor of 22' decomposition:\n\n");
    Table t({"axis", "factor", "evidence"});
    t.add_row({"links (8x8 vs 4x4)", Table::num(g.link_factor, 1), "T-III vs T-II geometry"});
    t.add_row({"clock (16 ns vs 40 ns)", Table::num(g.clock_factor, 1),
               Table::num(std_cell_1um().cycle_ns_worst / full_custom_1um().cycle_ns_worst, 1) +
                   "x from the model's corners"});
    t.add_row({"peripheral area", Table::num(g.area_factor, 1), "std-cell penalty in the model"});
    t.add_row({"combined", Table::num(g.combined(), 1), "paper: 'approximately a factor of 22'"});
    t.print();

    std::printf("\nQuadratic growth of the peripheral area with link count (std cells):\n\n");
    Table sq({"configuration", "peripheral mm^2", "vs full-custom 8x8 (9 mm^2)"});
    for (unsigned n : {4u, 8u, 16u}) {
      const double mm2 = std_cell_periph_mm2(n);
      sq.add_row({Table::integer(n) + "x" + Table::integer(n) + " standard cells",
                  Table::num(mm2, 0), Table::num(mm2 / 9.0, 1) + "x"});
    }
    sq.print();
    std::printf("\n(paper: 41 mm^2 at 4x4; the 8x8 standard-cell periphery is ~18x the\n"
                "9 mm^2 full-custom one)\n");

    std::printf("\nCross-check with the component model (same inventory, both flows):\n\n");
    const PeriphInventory inv8 = pipelined_inventory(8, 16, 256);
    Table xc({"flow", "model mm^2"});
    xc.add_row({"full-custom 1.0 um", Table::num(peripheral_mm2(inv8, full_custom_1um()), 1)});
    xc.add_row({"standard cells 1.0 um", Table::num(peripheral_mm2(inv8, std_cell_1um()), 1)});
    xc.print();

    bj.metric("link_factor", g.link_factor);
    bj.metric("clock_factor", g.clock_factor);
    bj.metric("area_factor", g.area_factor);
    bj.metric("combined_factor", g.combined());
    bj.metric("occupancy", std_cell_periph_mm2(8));  // mm^2 of the 8x8 std-cell periphery.
    bj.add_table("factor-of-22 decomposition", t);
    bj.add_table("quadratic growth with link count", sq);
    bj.add_table("component-model cross-check", xc);
    return 0;
      });
}
