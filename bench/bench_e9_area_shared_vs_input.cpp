// E9 -- Section 5.1 / figure 9: shared versus input buffering silicon cost.
// Both memories end up 2nw bit-cells wide; the paper argues the shared
// buffer needs a (significantly) smaller height H_s for the same
// performance, which outweighs its second crossbar-sized datapath block.
//
// We evaluate figure 9 with MEASURED equal-loss buffer heights, for two
// input-side designs:
//   (1) the input buffering the paper's section 2.2 numbers refer to
//       ([HlKa88]-style input smoothing, H_i ~ 80 cells/input), and
//   (2) an idealized non-FIFO input buffer (VOQ + 4-iteration PIM with a
//       per-input shared pool) -- the strongest 1995 scheduler.
// Case (1) reproduces the paper's conclusion decisively. Case (2) is an
// honest sensitivity result: a good scheduler shrinks the equal-LOSS gap
// until the extra fabric block dominates -- but it still pays ~2x latency
// (bench E4) and the scheduler the paper calls "quite complex", which the
// figure-9 model does not charge for.

#include <cstdio>
#include <functional>
#include <memory>

#include "arch/input_smoothing.hpp"
#include "arch/shared_buffer.hpp"
#include "arch/voq_pim.hpp"
#include "area/models.hpp"
#include "bench_util.hpp"

using namespace pmsb;
using namespace pmsb::bench;

namespace {

constexpr unsigned kN = 16;
constexpr double kLoad = 0.8;
constexpr double kTarget = 1e-3;
constexpr Cycle kSlots = 400000;

double loss_shared(std::size_t cells) {
  return run_uniform([&] { return std::make_unique<SharedBufferModel>(kN, cells); }, kN, kLoad,
                     kSlots, 301)
      .loss;
}
double loss_voq(std::size_t per_input) {
  return run_uniform([&] { return std::make_unique<VoqPim>(kN, 0, 4, Rng(55), per_input); },
                     kN, kLoad, kSlots, 302)
      .loss;
}
double loss_smoothing(std::size_t frame) {
  return run_uniform([&] { return std::make_unique<InputSmoothing>(kN, frame, Rng(56)); }, kN,
                     kLoad, kSlots, 303)
      .loss;
}

double print_floorplan(const char* title, double hi, double hs, BenchJson& bj,
                       const char* json_title) {
  const auto r = area::shared_vs_input(kN, 16, hi, hs);
  std::printf("\n%s (H_i = %.1f, H_s = %.1f cells/port):\n\n", title, hi, hs);
  Table fp({"component", "input buffering", "shared buffering"});
  fp.add_row({"memory height (bit rows)", Table::num(r.input_height_cells, 0),
              Table::num(r.shared_height_cells, 0)});
  fp.add_row({"memory area", Table::num(r.input_memory_area, 0),
              Table::num(r.shared_memory_area, 0)});
  fp.add_row({"fabric area (crossbars/datapath)", Table::num(r.input_fabric_area, 0),
              Table::num(r.shared_fabric_area, 0)});
  fp.add_row({"total", Table::num(r.input_total, 0), Table::num(r.shared_total, 0)});
  fp.print();
  std::printf("Total area ratio input/shared: %.2f %s\n", r.input_total / r.shared_total,
              r.input_total > r.shared_total ? "(shared buffering smaller)"
                                             : "(input buffering smaller)");
  bj.add_table(json_title, fp);
  return r.input_total / r.shared_total;
}

}  // namespace

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"E9", "shared vs input buffering VLSI cost (section 5.1, figure 9)", "e9_area_shared_vs_input"},
      [](pmsb::bench::BenchContext& ctx) {
        BenchJson& bj = ctx.json;
    std::printf("\nStep 1 -- measured equal-performance buffer heights (loss <= 1e-3 at\n"
                "load 0.8, 16x16, uniform traffic):\n\n");
    // Three independent binary searches, one parallel sweep point each (the
    // probes inside a search stay sequential -- each depends on the last).
    exp::SweepRunner runner;
    std::vector<std::function<std::size_t()>> searches;
    searches.push_back([] {
      return min_capacity_for_loss([](std::size_t c) { return loss_shared(c); }, 16, 512, kTarget);
    });
    searches.push_back([] {
      return min_capacity_for_loss([](std::size_t c) { return loss_smoothing(c); }, 4, 256,
                                   kTarget);
    });
    searches.push_back([] {
      return min_capacity_for_loss([](std::size_t c) { return loss_voq(c); }, 2, 256, kTarget);
    });
    const std::vector<std::size_t> found = runner.run(std::move(searches));
    const std::size_t shared_cells = found[0];
    const std::size_t smooth_frame = found[1];
    const std::size_t voq_per_input = found[2];
    const double hs = static_cast<double>(shared_cells) / kN;
    Table sizes({"organization", "cells per port", "paper (section 2.2)"});
    sizes.add_row({"shared buffer (H_s)", Table::num(hs, 1), "5.4 / output"});
    sizes.add_row({"input smoothing (H_i, case 1)", Table::num(double(smooth_frame), 1),
                   "80 / input"});
    sizes.add_row({"VOQ+PIM per-input pool (H_i, case 2)", Table::num(double(voq_per_input), 1),
                   "n/a (post-paper scheduler)"});
    sizes.print();

    const double ratio1 =
        print_floorplan("Case 1: figure 9 with the paper's input-buffer generation",
                        static_cast<double>(smooth_frame), hs, bj, "figure 9, case 1");
    const double ratio2 =
        print_floorplan("Case 2: figure 9 against an idealized VOQ+PIM input buffer",
                        static_cast<double>(voq_per_input), hs, bj, "figure 9, case 2");

    bj.metric("throughput", kLoad);  // All designs sized for loss <= 1e-3 at load 0.8.
    bj.metric("occupancy", static_cast<double>(shared_cells));
    bj.metric("shared_cells_per_port", hs);
    bj.metric("smoothing_cells_per_input", static_cast<double>(smooth_frame));
    bj.metric("voq_cells_per_input", static_cast<double>(voq_per_input));
    bj.metric("area_ratio_case1_input_over_shared", ratio1);
    bj.metric("area_ratio_case2_input_over_shared", ratio2);
    bj.add_table("equal-performance buffer heights", sizes);

    std::printf(
        "\nShape check vs paper: with the buffer sizings the paper's section 2.2\n"
        "cites, the shared buffer's H_s << H_i dwarfs its extra datapath block and\n"
        "shared buffering clearly wins (case 1) -- the paper's conclusion. An\n"
        "idealized VOQ+PIM scheduler (case 2) closes the equal-loss memory gap;\n"
        "what it cannot close is the ~2x latency penalty (bench E4) and the\n"
        "scheduler/queue-management complexity the paper's section 5.1 notes but\n"
        "the area model conservatively leaves out.\n");
    return 0;
      });
}
