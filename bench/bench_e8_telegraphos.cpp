// E8 -- Section 4: the three Telegraphos prototypes. Each configuration runs
// at saturation on the cycle-accurate core; measured cycles convert to
// bits/s with the prototype's clock. Paper link rates: 107 Mb/s (T-I FPGA,
// 13.3 MHz x 8 bit), 400 Mb/s (T-II ASIC, 16 bit / 40 ns), 1 Gb/s worst /
// 1.6 Gb/s typical (T-III full-custom, 16 bit / 16 ns worst, 10 ns typical).

#include <cstdio>
#include <vector>

#include "area/models.hpp"
#include "bench_util.hpp"
#include "core/config.hpp"

using namespace pmsb;
using namespace pmsb::bench;

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"E8", "the Telegraphos prototypes (section 4)", "e8_telegraphos"},
      [](pmsb::bench::BenchContext& ctx) {
        BenchJson& bj = ctx.json;
    struct Proto {
      const char* name;
      SwitchConfig cfg;
      const char* paper_rate;
    };
    const std::vector<Proto> protos = {
        {"Telegraphos I (FPGA)", telegraphos1(), "107 Mb/s"},
        {"Telegraphos II (std-cell ASIC)", telegraphos2(), "400 Mb/s"},
        {"Telegraphos III (full-custom)", telegraphos3(), "1000 Mb/s worst"},
    };

    std::printf("\nEach prototype at saturation (uniform destinations) on the\n"
                "cycle-accurate pipelined-memory core:\n\n");
    Table t({"prototype", "geometry", "buffer", "util", "measured/link", "paper/link"});
    exp::SweepRunner runner;
    const std::vector<CycleRun> results = runner.map(protos, [](const Proto& p) {
      TrafficSpec spec;
      spec.arrivals = ArrivalKind::kSaturated;
      spec.load = 1.0;
      spec.seed = 3;
      return run_pipelined(p.cfg, spec, 40000, 4000);
    });
    CycleRun t3;
    double t3_mbps = 0;
    for (std::size_t i = 0; i < protos.size(); ++i) {
      const Proto& p = protos[i];
      const CycleRun& r = results[i];
      const double mbps = r.output_utilization * p.cfg.link_mbps();
      if (i == 2) {
        t3 = r;
        t3_mbps = mbps;
      }
      char geom[64], buf[64];
      std::snprintf(geom, sizeof geom, "%ux%u, %u stages x %u b", p.cfg.n_ports, p.cfg.n_ports,
                    p.cfg.stages(), p.cfg.word_bits);
      std::snprintf(buf, sizeof buf, "%u cells x %u b = %u Kbit", p.cfg.capacity_cells(),
                    p.cfg.cell_words * p.cfg.word_bits,
                    p.cfg.capacity_segments * p.cfg.stages() * p.cfg.word_bits / 1024);
      t.add_row({p.name, geom, buf, Table::num(r.output_utilization, 3),
                 Table::num(mbps, 0) + " Mb/s", p.paper_rate});
    }
    t.print();

    std::printf("\nTelegraphos III timing corners (16 wires/link on-chip, section 4.4):\n\n");
    Table corners({"corner", "cycle", "per link", "aggregate (16 stages x 16 b)"});
    corners.add_row({"worst case (4.5 V, 125 C)", "16 ns",
                     Table::num(area::per_link_gbps(8, 16, 16.0), 2) + " Gb/s",
                     Table::num(area::aggregate_gbps(256, 16.0), 1) + " Gb/s"});
    corners.add_row({"typical", "10 ns", Table::num(area::per_link_gbps(8, 16, 10.0), 2) + " Gb/s",
                     Table::num(area::aggregate_gbps(256, 10.0), 1) + " Gb/s"});
    corners.print();

    std::printf("\nTelegraphos II floorplan (section 4.2, figure 6), shared-buffer part:\n\n");
    const auto fp = area::telegraphos2_floorplan();
    Table fpt({"block", "mm^2"});
    fpt.add_row({"8 x 256x16 SRAM megacells", Table::num(fp.sram_mm2, 1)});
    fpt.add_row({"peripheral std-cell regions", Table::num(fp.periph_mm2, 1)});
    fpt.add_row({"memory-bus routing", Table::num(fp.routing_mm2, 1)});
    fpt.add_row({"total shared buffer", Table::num(fp.total_mm2(), 1)});
    fpt.add_row({"whole chip (8.5 x 8.5 mm)", Table::num(fp.chip_mm2, 1)});
    fpt.print();

    bj.metric("throughput", t3.output_utilization);
    bj.metric("mean_latency", t3.head_latency.mean());
    bj.metric("occupancy", t3.mean_buffer_occupancy);
    bj.metric("buffer_peak", static_cast<double>(t3.buffer_peak));
    bj.metric("t3_measured_link_mbps", t3_mbps);
    bj.metric("t2_floorplan_total_mm2", fp.total_mm2());
    bj.add_table("prototypes at saturation", t);
    bj.add_table("Telegraphos III timing corners", corners);
    bj.add_table("Telegraphos II floorplan", fpt);

    std::printf(
        "\nShape check vs paper: every prototype sustains ~100%% utilization, so the\n"
        "measured per-link rates land on the paper's 107 / 400 / 1000 Mb/s figures\n"
        "(rates are utilization x clock x width -- the architecture's job is the\n"
        "utilization; the clock comes from each technology).\n");
    return 0;
      });
}
