// A3 -- Extension for section 2.2's block-crosspoint buffering: "a number of
// shared buffers, each dedicated to a certain subset of incoming and
// outgoing links ... lower throughput-per-buffer requirements than a single
// shared buffer, and better buffer space utilization than crosspoint
// queueing."
//
// Regenerates the interpolation: with a FIXED total buffer budget, loss as a
// function of the partition granularity g (g = 1 is the fully shared buffer,
// g = n is crosspoint-like), under uniform and hotspot traffic. Also shows
// the per-buffer throughput requirement dropping as 2n/g.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "arch/block_crosspoint.hpp"
#include "arch/shared_buffer.hpp"
#include "bench_util.hpp"

using namespace pmsb;
using namespace pmsb::bench;

namespace {

constexpr unsigned kN = 16;
constexpr Cycle kSlots = 200000;
constexpr std::size_t kTotalCells = 128;

double loss_at(unsigned groups, double load, bool hotspot, std::uint64_t seed) {
  BlockCrosspoint model(kN, groups, kTotalCells / (groups * groups));
  std::unique_ptr<DestPattern> dests;
  if (hotspot)
    dests = std::make_unique<HotspotDest>(kN, 0, 0.3);
  else
    dests = std::make_unique<UniformDest>(kN);
  SlotTraffic traffic(kN, load, dests.get(), Rng(seed));
  run_slot_sim(model, traffic, kSlots, 0);
  return model.counts().loss_ratio();
}

}  // namespace

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"A3", "block-crosspoint buffering (section 2.2 extension)", "a3_block_crosspoint"},
      [](pmsb::bench::BenchContext& ctx) {
    std::printf(
        "\n16x16 switch, fixed total budget of %zu cells split into g x g shared\n"
        "blocks (%zu cells per block at granularity g). Loss ratio at load 0.9:\n\n",
        kTotalCells, kTotalCells);

    Table t({"g (groups)", "blocks", "cells/block", "per-buffer throughput", "loss uniform",
             "loss hotspot(0.3)"});
    exp::SweepRunner runner;
    const std::vector<unsigned> gran = {1u, 2u, 4u};
    std::vector<std::function<double()>> g_points;
    for (unsigned g : gran) {
      g_points.push_back([g] { return loss_at(g, 0.9, false, 401 + g); });
      g_points.push_back([g] { return loss_at(g, 0.9, true, 411 + g); });
    }
    const std::vector<double> g_r = runner.run(std::move(g_points));
    for (std::size_t i = 0; i < gran.size(); ++i) {
      const unsigned g = gran[i];
      t.add_row({Table::integer(g), Table::integer(g * g),
                 Table::integer(static_cast<long long>(kTotalCells / (g * g))),
                 Table::integer(2 * kN / g) + " cells/slot",
                 Table::sci(g_r[i * 2], 2), Table::sci(g_r[i * 2 + 1], 2)});
    }
    t.print();

    std::printf("\nLoss vs load at g = 2 (the compromise point):\n\n");
    Table s({"load", "loss (g=1 shared)", "loss (g=2)", "loss (g=4)"});
    const std::vector<double> s_loads = {0.7, 0.8, 0.9, 0.95};
    std::vector<std::function<double()>> s_points;
    const std::vector<unsigned> s_gran = {1u, 2u, 4u};
    for (double load : s_loads)
      for (std::size_t gi = 0; gi < s_gran.size(); ++gi) {
        const unsigned g = s_gran[gi];
        const std::uint64_t seed = 421 + gi;  // Original column seeds: 421, 422, 423.
        s_points.push_back([g, load, seed] { return loss_at(g, load, false, seed); });
      }
    const std::vector<double> s_r = runner.run(std::move(s_points));
    for (std::size_t i = 0; i < s_loads.size(); ++i)
      s.add_row({Table::num(s_loads[i], 2), Table::sci(s_r[i * 3], 2),
                 Table::sci(s_r[i * 3 + 1], 2), Table::sci(s_r[i * 3 + 2], 2)});
    s.print();

    std::printf(
        "\nShape check vs paper: under uniform traffic, splitting the pool raises\n"
        "loss monotonically at equal total capacity (statistical multiplexing\n"
        "lost), while each block's required memory throughput falls as 2n/g --\n"
        "exactly the trade section 2.2 describes. The HOTSPOT column shows the\n"
        "inverse: one unrestricted shared pool gets hogged by cells for the\n"
        "saturated output, starving everyone (the classic shared-buffer hogging\n"
        "problem); partitioning isolates the damage. Real shared-buffer switches\n"
        "add per-output occupancy limits for this reason -- see the\n"
        "out_queue_limit extension of SharedBufferModel and bench_a3's companion\n"
        "sweep below.\n");

    std::printf("\nPer-output occupancy limits on the g=1 shared pool (hotspot 0.3,\n"
                "load 0.9): capping any one output's share of the 128-cell pool\n"
                "restores the non-hot traffic without giving up sharing:\n\n");
    Table lim({"per-output limit", "loss overall", "delivered/slot"});
    for (std::size_t cap : {std::size_t{0}, std::size_t{64}, std::size_t{16}, std::size_t{8}}) {
      SharedBufferModel m(kN, kTotalCells, cap);
      HotspotDest dests(kN, 0, 0.3);
      SlotTraffic traffic(kN, 0.9, &dests, Rng(499));
      run_slot_sim(m, traffic, kSlots, 0);
      lim.add_row({cap == 0 ? "none" : Table::integer(static_cast<long long>(cap)),
                   Table::sci(m.counts().loss_ratio(), 2),
                   Table::num(static_cast<double>(m.counts().delivered) / kSlots, 2)});
      ctx.json.metric("hotspot loss (limit " + std::string(cap == 0 ? "none" : std::to_string(cap)) + ")",
                      m.counts().loss_ratio());
    }
    lim.print();
    return 0;
      });
}
