// MW -- minimal wormhole fabric: flit-level multistage networks
// (banyan / omega / Clos) of 2x2 and kxk WormRouter elements with virtual
// channels and credit backpressure (src/fabric/worm.*), built through the
// unified fabric::Fabric::build(topology, config) path.
//
// The headline experiment is the classic [Dally90] virtual-channel result
// reproduced on the banyan: saturation throughput (flits per endpoint per
// cycle at offered load 0.95) as a function of the lane count, under
// uniform traffic and under tree saturation (hotsenders: 25% of the
// endpoints stream exclusively at one egress, the rest carry innocent
// uniform background). The saturated hot tree parks stalled worms across
// the shared inter-stage links; splitting each buffer into more lanes lets
// the background overtake them, so throughput must rise with lanes -- the
// bench FAILS if the 4-lane hotspot point does not beat the 1-lane point,
// and CI asserts the same from the JSON artifact.
//
// Determinism: every table is printed from a threads=1 reference run; a
// second run at the resolved thread count (--threads / PMSB_THREADS) must
// match it digest-for-digest or the bench FAILS. Stdout therefore never
// depends on the thread count, and the determinism CI diffs it byte for
// byte across {1, 4} threads x {barrier, dataflow} engines.
//
// This bench absorbs the old examples/banyan_fabric.cpp demo: the load
// sweep at the end shows the same "shared buffers absorb internal
// contention" story, now at flit granularity with lossless backpressure
// instead of crosspoint drops.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"

#include "fabric/fabric.hpp"
#include "net/topology.hpp"

using namespace pmsb;
using namespace pmsb::bench;

namespace {

constexpr Cycle kWarmup = 2000;
constexpr Cycle kMeasure = 20000;
constexpr unsigned kEndpoints = 32;  ///< Headline banyan size (5 stages).

fabric::FabricConfig worm_config(const net::Topology& topo, std::uint64_t seed,
                                 unsigned lanes, const std::string& traffic) {
  fabric::FabricConfig cfg;
  cfg.topo = topo;
  // D = 1 keeps the credit round trip (2 * (D + 1) cycles) small relative
  // to the per-lane depth, so credits -- not the wire -- set the pace.
  cfg.link_pipe_stages = 1;
  cfg.seed = seed;
  cfg.lanes = lanes;
  cfg.buffer_flits = 16;
  cfg.message_flits = 8;
  cfg.traffic = traffic;
  return cfg;
}

struct Point {
  double throughput = 0;  ///< Flits / endpoint / cycle, post-warmup window.
  fabric::FabricStats stats;
};

Point run_point(const fabric::FabricConfig& cfg, unsigned threads) {
  fabric::FabricConfig c = cfg;
  c.threads = threads;
  auto fab = fabric::Fabric::build(c.topo, c);
  fab->run(kWarmup);
  const std::uint64_t warm_flits = fab->stats().flits_delivered;
  fab->run(kMeasure);
  Point p;
  p.stats = fab->stats();
  p.throughput = static_cast<double>(p.stats.flits_delivered - warm_flits) /
                 (static_cast<double>(c.topo.endpoints()) * static_cast<double>(kMeasure));
  add_simulated_units(static_cast<std::uint64_t>(kWarmup + kMeasure) * c.topo.nodes());
  return p;
}

/// Reference (threads=1) run plus a resolved-thread-count rerun; FAILs and
/// clears *deterministic when any published stat diverges. Every printed
/// number comes from the reference run.
Point run_checked(const fabric::FabricConfig& cfg, const char* label, bool* deterministic) {
  const Point ref = run_point(cfg, 1);
  const Point multi = run_point(cfg, 0);  // 0 = resolved PMSB_THREADS / --threads.
  const fabric::FabricStats& a = ref.stats;
  const fabric::FabricStats& b = multi.stats;
  if (a.uid_digest != b.uid_digest || a.injected != b.injected ||
      a.delivered != b.delivered || a.flits_delivered != b.flits_delivered ||
      a.backlog != b.backlog || a.mean_latency != b.mean_latency ||
      a.latency.p999() != b.latency.p999()) {
    std::fprintf(stderr,
                 "FAIL: %s diverged across thread counts "
                 "(digest %016llx vs %016llx, delivered %llu vs %llu)\n",
                 label, static_cast<unsigned long long>(a.uid_digest),
                 static_cast<unsigned long long>(b.uid_digest),
                 static_cast<unsigned long long>(a.delivered),
                 static_cast<unsigned long long>(b.delivered));
    *deterministic = false;
  }
  if (a.payload_errors != 0) {
    std::fprintf(stderr, "FAIL: %s delivered %llu corrupted flit payloads\n", label,
                 static_cast<unsigned long long>(a.payload_errors));
    *deterministic = false;
  }
  return ref;
}

std::string digest_str(std::uint64_t d) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(d));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv,
      {"MW", "flit-level wormhole multistage fabrics: lanes vs saturation", "min_wormhole"},
      [](pmsb::bench::BenchContext& ctx) {
        const net::Topology banyan{net::TopologyKind::kBanyan, kEndpoints, 1};
        const std::vector<unsigned> lane_sweep =
            ctx.lanes != 0 ? std::vector<unsigned>{ctx.lanes}
                           : std::vector<unsigned>{1, 2, 4, 8};
        bool ok = true;

        // --- Saturation throughput vs virtual-channel count -------------
        // Offered 0.95 flits/endpoint/cycle drives the fabric past its
        // blocking limit; what it carries is the saturation throughput.
        struct Workload {
          const char* tag;    ///< Metric key prefix.
          const char* spec;   ///< traffic::GeneratorSpec text.
        };
        const Workload workloads[] = {{"uniform", "uniform:0.95"},
                                      {"hotspot", "hotsenders:0.25,0.95"}};
        Table sat({"workload", "lanes", "throughput", "messages", "mean lat", "p99 lat",
                   "delivered digest"});
        double hotspot_by_lanes[33] = {};
        Point headline;  // Uniform run at the widest lane count.
        for (const Workload& w : workloads) {
          for (unsigned lanes : lane_sweep) {
            const fabric::FabricConfig cfg =
                worm_config(banyan, ctx.seed, lanes, w.spec);
            const std::string label =
                std::string(w.tag) + " lanes=" + std::to_string(lanes);
            const Point p = run_checked(cfg, label.c_str(), &ok);
            sat.add_row({w.tag, Table::integer(lanes), Table::num(p.throughput, 4),
                         Table::integer(static_cast<long long>(p.stats.delivered)),
                         Table::num(p.stats.mean_latency, 1),
                         Table::integer(static_cast<long long>(p.stats.latency.p99())),
                         digest_str(p.stats.uid_digest)});
            ctx.json.metric(std::string(w.tag) + "_sat_lanes" + std::to_string(lanes),
                            p.throughput);
            if (w.tag == std::string("hotspot")) hotspot_by_lanes[lanes] = p.throughput;
            if (w.tag == std::string("uniform")) headline = p;
          }
        }
        std::printf("Saturation throughput vs lanes (%s, offered 0.95 "
                    "flits/endpoint/cycle,\n8-flit messages, 16-flit buffers split "
                    "across lanes, D=1 links):\n\n",
                    banyan.describe().c_str());
        sat.print();
        ctx.json.add_table("saturation vs lanes", sat);

        // The virtual-channel claim, enforced: under the hotspot, 4 lanes
        // must carry strictly more than 1 lane (CI re-asserts this from
        // the JSON artifact).
        if (hotspot_by_lanes[4] > 0 && hotspot_by_lanes[1] > 0) {
          if (hotspot_by_lanes[4] <= hotspot_by_lanes[1]) {
            std::fprintf(stderr,
                         "FAIL: hotspot saturation did not improve with lanes "
                         "(lanes=1: %.4f, lanes=4: %.4f)\n",
                         hotspot_by_lanes[1], hotspot_by_lanes[4]);
            ok = false;
          } else {
            std::printf("\nVirtual-channel payoff (hotspot): lanes=1 %.4f -> "
                        "lanes=4 %.4f flits/endpoint/cycle.\n",
                        hotspot_by_lanes[1], hotspot_by_lanes[4]);
          }
        }

        // --- Topology sanity: one build path, three networks ------------
        // Same config, three multistage kinds through Fabric::build().
        // Lossless transport means injected == delivered + backlog +
        // in-network at all times (stats() checks conservation itself);
        // here we additionally require actual delivery on every kind.
        const std::vector<net::Topology> kinds = {
            net::Topology{net::TopologyKind::kBanyan, 16, 1},
            net::Topology{net::TopologyKind::kOmega, 16, 1},
            net::Topology{net::TopologyKind::kClos, 16, 1, /*radix=*/4},
        };
        Table topo_t({"topology", "nodes", "stages", "messages", "mean lat",
                      "delivered digest"});
        for (const net::Topology& topo : kinds) {
          fabric::FabricConfig cfg = worm_config(topo, ctx.seed, /*lanes=*/2, "uniform:0.6");
          const Point p = run_checked(cfg, topo.describe().c_str(), &ok);
          if (p.stats.delivered == 0) {
            std::fprintf(stderr, "FAIL: %s delivered nothing\n", topo.describe().c_str());
            ok = false;
          }
          topo_t.add_row({topo.describe(), Table::integer(topo.nodes()),
                          Table::integer(topo.stages()),
                          Table::integer(static_cast<long long>(p.stats.delivered)),
                          Table::num(p.stats.mean_latency, 1),
                          digest_str(p.stats.uid_digest)});
          ctx.json.metric(topo.describe() + " delivered",
                          static_cast<double>(p.stats.delivered));
          ctx.json.metric(topo.describe() + " mean latency", p.stats.mean_latency);
        }
        std::printf("\nOne construction path, three multistage kinds "
                    "(uniform:0.6, 2 lanes):\n\n");
        topo_t.print();
        ctx.json.add_table("topology sanity", topo_t);

        // --- Load sweep (the old banyan_fabric example, flit-level) -----
        // Below saturation the fabric is lossless and carried == offered;
        // past it, backpressure holds the excess at the sources instead of
        // dropping it inside the network.
        Table sweep({"offered", "carried", "mean lat", "p99 lat", "backlog msgs"});
        for (double load : {0.2, 0.4, 0.6, 0.8, 0.95}) {
          char spec[32];
          std::snprintf(spec, sizeof spec, "uniform:%.2f", load);
          const fabric::FabricConfig cfg = worm_config(banyan, ctx.seed, /*lanes=*/4, spec);
          const std::string label = std::string("sweep ") + spec;
          const Point p = run_checked(cfg, label.c_str(), &ok);
          sweep.add_row({Table::num(load, 2), Table::num(p.throughput, 4),
                         Table::num(p.stats.mean_latency, 1),
                         Table::integer(static_cast<long long>(p.stats.latency.p99())),
                         Table::integer(static_cast<long long>(p.stats.backlog))});
          char key[40];
          std::snprintf(key, sizeof key, "carried at %.2f", load);
          ctx.json.metric(key, p.throughput);
        }
        std::printf("\nLoad sweep (%s, 4 lanes): lossless backpressure holds "
                    "excess at the sources:\n\n", banyan.describe().c_str());
        sweep.print();
        ctx.json.add_table("load sweep", sweep);

        ctx.json.metric("throughput", headline.throughput);
        ctx.json.metric("mean_latency", headline.stats.mean_latency);
        ctx.json.metric("occupancy",
                        static_cast<double>(headline.stats.in_network) /
                            static_cast<double>(banyan.nodes()));
        ctx.json.latency_percentiles(headline.stats.latency);

        if (!ok) return 1;
        // No thread count or engine name here: stdout must stay
        // byte-identical across the determinism CI matrix (both are on the
        // stderr [bench-config] banner).
        std::printf("\nDeterminism: every run reproduced its threads=1 "
                    "reference digests at the resolved thread count; zero "
                    "payload errors.\n");
        return 0;
      });
}
