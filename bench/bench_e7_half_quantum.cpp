// E7 -- Section 3.5: packets of HALF the natural quantum (n words instead of
// 2n) run at full throughput using two n-stage pipelined memories, with one
// read initiation into one memory and one write initiation into the other
// in each and every cycle.
//
// Regenerates: utilization and dual-initiation accounting of the dual
// organization at saturation, next to the single 2n-stage organization.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/dual_switch.hpp"

using namespace pmsb;
using namespace pmsb::bench;

namespace {

struct DualRun {
  double utilization;
  double dual_cycle_share;
  double min_latency;
  std::uint64_t drops;
};

DualRun run_dual(unsigned n, PatternKind pat, double load, Cycle cycles, std::uint64_t seed) {
  add_simulated_units(static_cast<std::uint64_t>(cycles));
  DualSwitchConfig cfg;
  cfg.n_ports = n;
  cfg.word_bits = 16;
  cfg.capacity_segments_per_group = 16 * n;
  TrafficSpec spec;
  spec.arrivals = load >= 1.0 ? ArrivalKind::kSaturated : ArrivalKind::kGeometric;
  spec.pattern = pat;
  spec.load = load;
  spec.seed = seed;
  Testbench<DualPipelinedSwitch, DualSwitchConfig> tb(cfg, n, cfg.cell_format(), spec,
                                                      /*scoreboard=*/false);
  LatencyStats lat(0);
  SwitchEvents ev;
  ev.on_read_grant = [&](unsigned, unsigned, Cycle tr, Cycle, Cycle a0, bool) {
    lat.record(a0, tr + 1);
  };
  const Subscription ev_sub = tb.dut().events().subscribe(std::move(ev));
  tb.run(cycles);
  const auto& st = tb.dut().stats();
  DualRun r;
  r.utilization = static_cast<double>(st.read_grants) * cfg.cell_words() /
                  (static_cast<double>(n) * static_cast<double>(st.cycles));
  r.dual_cycle_share = static_cast<double>(tb.dut().dual_initiation_cycles()) /
                       static_cast<double>(st.cycles);
  r.min_latency = static_cast<double>(lat.min());
  r.drops = st.dropped();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"E7", "half-quantum cells on two pipelined memories (section 3.5)", "e7_half_quantum"},
      [](pmsb::bench::BenchContext& ctx) {
        BenchJson& bj = ctx.json;
    std::printf(
        "\nDual organization: n-word cells, two n-stage memories, reads from one\n"
        "group + writes into the other in the same cycle. 'dual-cycle share' is\n"
        "the fraction of cycles that initiated BOTH a read and a write wave:\n\n");
    Table t({"n", "cell words", "pattern", "load", "output util", "dual-cycle share",
             "min latency", "drops"});
    struct Point {
      unsigned n;
      const char* pattern;
      PatternKind pat;
      double load;
      std::uint64_t seed;
    };
    std::vector<Point> grid;
    for (unsigned n : {4u, 8u}) {
      grid.push_back({n, "permutation", PatternKind::kPermutation, 1.0, 11 + n});
      grid.push_back({n, "uniform", PatternKind::kUniform, 1.0, 11 + n});
      grid.push_back({n, "uniform", PatternKind::kUniform, 0.3, 21 + n});
    }
    exp::SweepRunner runner;
    const std::vector<DualRun> results = runner.map(
        grid, [](const Point& p) { return run_dual(p.n, p.pat, p.load, 40000, p.seed); });
    DualRun sat8{};
    DualRun light8{};
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const Point& p = grid[i];
      const DualRun& r = results[i];
      t.add_row({Table::integer(p.n), Table::integer(p.n), p.pattern,
                 Table::num(p.load, 1), Table::num(r.utilization, 3),
                 Table::num(r.dual_cycle_share, 3), Table::num(r.min_latency, 0),
                 Table::integer(static_cast<long long>(r.drops))});
      if (p.n == 8 && p.pat == PatternKind::kUniform && p.load >= 1.0) sat8 = r;
      if (p.n == 8 && p.load < 1.0) light8 = r;
    }
    t.print();

    bj.metric("throughput", sat8.utilization);
    bj.metric("mean_latency", light8.min_latency);
    bj.metric("occupancy", sat8.dual_cycle_share);
    bj.metric("dual_cycle_share", sat8.dual_cycle_share);
    bj.metric("min_latency_light_load", light8.min_latency);
    bj.metric("drops_saturated", static_cast<double>(sat8.drops));
    bj.add_table("dual organization at saturation and light load", t);
    std::printf(
        "\nShape check vs paper: full line rate with n-word cells -- i.e. the\n"
        "packet-size quantum is halved (section 3.5's construction works), and at\n"
        "saturation nearly every cycle carries a read AND a write initiation.\n"
        "Cut-through still gives 2-cycle minimum head latency.\n");
    return 0;
      });
}
