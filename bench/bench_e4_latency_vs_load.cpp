// E4 -- Section 2.2 / [AOST93 fig. 3]: output queueing (equivalently shared
// buffering) has about half the latency of scheduler-based non-FIFO input
// buffering (VOQ + PIM) at loads 0.6-0.9.
//
// Regenerates the latency-vs-load series for output queueing, shared
// buffering, VOQ+PIM, and (until it saturates) FIFO input queueing.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>

#include "arch/input_queueing.hpp"
#include "arch/output_queueing.hpp"
#include "arch/shared_buffer.hpp"
#include "arch/voq_pim.hpp"
#include "bench_util.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/perfetto.hpp"
#include "obs/timeseries.hpp"

using namespace pmsb;
using namespace pmsb::bench;

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"E4", "latency vs load (section 2.2, [AOST93 fig. 3])", "e4_latency_vs_load"},
      [](pmsb::bench::BenchContext& ctx) {
        BenchJson& bj = ctx.json;
    const unsigned n = 16;
    const Cycle slots = 120000;

    std::printf("\n16x16, uniform Bernoulli arrivals, unbounded buffers; mean queueing\n"
                "latency in cell slots (and the VOQ/output ratio the paper quotes as ~2x):\n\n");
    Table t({"load", "output qng", "shared", "VOQ+PIM(4)", "input FIFO", "VOQ/output ratio"});
    const std::vector<double> loads = {0.3, 0.5, 0.6, 0.7, 0.8, 0.9};
    std::vector<std::function<SlotRun()>> points;
    for (double load : loads) {
      points.push_back([n, load] {
        return run_uniform([&] { return std::make_unique<OutputQueueing>(n, 0); }, n, load, slots,
                           201);
      });
      points.push_back([n, load] {
        return run_uniform([&] { return std::make_unique<SharedBufferModel>(n, 0); }, n, load,
                           slots, 201);
      });
      points.push_back([n, load] {
        return run_uniform([&] { return std::make_unique<VoqPim>(n, 0, 4, Rng(77)); }, n, load,
                           slots, 201);
      });
      points.push_back([n, load] {
        return run_uniform([&] { return std::make_unique<InputQueueingFifo>(n, 0, Rng(78)); }, n,
                           load, slots, 201);
      });
    }
    exp::SweepRunner runner;
    const std::vector<SlotRun> r = runner.run(std::move(points));
    SlotRun shared_last;
    double ratio_last = 0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      const double load = loads[i];
      const SlotRun& oq = r[i * 4];
      const SlotRun& sh = r[i * 4 + 1];
      const SlotRun& pim = r[i * 4 + 2];
      const SlotRun& fifo = r[i * 4 + 3];
      // +1 on both sides: count the transmission slot itself, as [AOST93] does
      // (a cell needs at least one slot to cross the switch).
      const double ratio = (pim.mean_latency + 1) / (oq.mean_latency + 1);
      t.add_row({Table::num(load, 2), Table::num(oq.mean_latency, 2),
                 Table::num(sh.mean_latency, 2), Table::num(pim.mean_latency, 2),
                 load < 0.59 ? Table::num(fifo.mean_latency, 2) : "unstable",
                 Table::num(ratio, 2)});
      shared_last = sh;
      ratio_last = ratio;
    }
    t.print();

    bj.metric("throughput", shared_last.throughput);
    bj.metric("mean_latency", shared_last.mean_latency);
    bj.metric("voq_over_output_ratio", ratio_last);
    bj.add_table("mean queueing latency vs load", t);

    std::printf(
        "\nShape check vs paper: output queueing == shared buffering (identical\n"
        "service), VOQ+PIM runs roughly 1.5-3x slower across 0.6-0.9 (paper: ~2x),\n"
        "and FIFO input queueing has no stable latency past ~0.586.\n");

    // ---- Flight-recorder breakdown on the cycle-accurate switch ----------
    // Where do the cycles actually go? The flight recorder splits each
    // delivered cell's latency into grant wait / buffer residency /
    // serialization (additive by construction), with HDR-exact tails.
    std::printf(
        "\nCycle-accurate 16x16 pipelined switch, per-stage latency breakdown\n"
        "(cycles; wait_grant + buffer + serialize == total, per cell):\n\n");
    const Cycle fr_cycles = 30000;
    const Cycle fr_warmup = 3000;
    Table ft({"load", "stage", "samples", "mean", "p50", "p90", "p99", "p99.9"});
    for (const double load : {0.6, 0.9}) {
      SwitchConfig cfg = SwitchConfig::for_ports(n);
      TrafficSpec spec;
      spec.load = load;
      spec.seed = 401;
      PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec,
                            /*scoreboard=*/false);
      obs::MetricsRegistry metrics;  // Declared before the sampler (lifetime).
      tb.dut().register_metrics(metrics);
      obs::TimeSeriesSampler sampler(&metrics, /*capacity=*/256);
      tb.engine().set_metrics(&metrics, /*period=*/128);
      obs::FlightRecorderConfig fc;
      fc.warmup = fr_warmup;
      fc.per_pair = true;
      obs::FlightRecorder flight(cfg.n_ports, cfg.cell_words, fc);
      flight.attach(tb.dut().events());
      flight.register_metrics(metrics);
      tb.run(fr_cycles);
      add_simulated_units(static_cast<std::uint64_t>(fr_cycles));

      for (unsigned s = 0; s < obs::kFlightStageCount; ++s) {
        const auto stage = static_cast<obs::FlightStage>(s);
        const HdrHistogram& h = flight.stage(stage);
        ft.add_row({Table::num(load, 2), obs::to_string(stage),
                    std::to_string(h.samples()), Table::num(h.mean(), 2),
                    std::to_string(h.p50()), std::to_string(h.p90()),
                    std::to_string(h.p99()), std::to_string(h.p999())});
      }

      if (load == 0.9) {
        // Schema percentile keys + per-stage metrics from the hot run.
        bj.latency_percentiles(flight.stage(obs::FlightStage::kTotal));
        for (unsigned s = 0; s < obs::kFlightStageCount; ++s) {
          const auto stage = static_cast<obs::FlightStage>(s);
          bj.percentile_metrics(std::string("stage ") + obs::to_string(stage),
                                flight.stage(stage));
        }
        // Hottest (input, output) pair by p99 -- the per-pair aggregation
        // BShare-style policies would key on.
        std::uint64_t worst = 0;
        for (unsigned in = 0; in < n; ++in)
          for (unsigned out = 0; out < n; ++out)
            worst = std::max(worst, flight.pair_total(in, out).p99());
        bj.metric("hottest pair total p99", static_cast<double>(worst));
        bj.set_timeseries(sampler.series());
        const std::string trace = bj.trace_path();
        if (!trace.empty()) {
          obs::PerfettoTrace tr;
          sampler.to_perfetto(tr);
          tr.write(trace);
          std::printf("[trace] wrote %s\n", trace.c_str());
        }
      }
    }
    ft.print();
    bj.add_table("per-stage latency breakdown (cycle-accurate)", ft);
    return 0;
      });
}
