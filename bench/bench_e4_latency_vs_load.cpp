// E4 -- Section 2.2 / [AOST93 fig. 3]: output queueing (equivalently shared
// buffering) has about half the latency of scheduler-based non-FIFO input
// buffering (VOQ + PIM) at loads 0.6-0.9.
//
// Regenerates the latency-vs-load series for output queueing, shared
// buffering, VOQ+PIM, and (until it saturates) FIFO input queueing.

#include <cstdio>
#include <functional>
#include <memory>

#include "arch/input_queueing.hpp"
#include "arch/output_queueing.hpp"
#include "arch/shared_buffer.hpp"
#include "arch/voq_pim.hpp"
#include "bench_util.hpp"

using namespace pmsb;
using namespace pmsb::bench;

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"E4", "latency vs load (section 2.2, [AOST93 fig. 3])", "e4_latency_vs_load"},
      [](pmsb::bench::BenchContext& ctx) {
        BenchJson& bj = ctx.json;
    const unsigned n = 16;
    const Cycle slots = 120000;

    std::printf("\n16x16, uniform Bernoulli arrivals, unbounded buffers; mean queueing\n"
                "latency in cell slots (and the VOQ/output ratio the paper quotes as ~2x):\n\n");
    Table t({"load", "output qng", "shared", "VOQ+PIM(4)", "input FIFO", "VOQ/output ratio"});
    const std::vector<double> loads = {0.3, 0.5, 0.6, 0.7, 0.8, 0.9};
    std::vector<std::function<SlotRun()>> points;
    for (double load : loads) {
      points.push_back([n, load] {
        return run_uniform([&] { return std::make_unique<OutputQueueing>(n, 0); }, n, load, slots,
                           201);
      });
      points.push_back([n, load] {
        return run_uniform([&] { return std::make_unique<SharedBufferModel>(n, 0); }, n, load,
                           slots, 201);
      });
      points.push_back([n, load] {
        return run_uniform([&] { return std::make_unique<VoqPim>(n, 0, 4, Rng(77)); }, n, load,
                           slots, 201);
      });
      points.push_back([n, load] {
        return run_uniform([&] { return std::make_unique<InputQueueingFifo>(n, 0, Rng(78)); }, n,
                           load, slots, 201);
      });
    }
    exp::SweepRunner runner;
    const std::vector<SlotRun> r = runner.run(std::move(points));
    SlotRun shared_last;
    double ratio_last = 0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      const double load = loads[i];
      const SlotRun& oq = r[i * 4];
      const SlotRun& sh = r[i * 4 + 1];
      const SlotRun& pim = r[i * 4 + 2];
      const SlotRun& fifo = r[i * 4 + 3];
      // +1 on both sides: count the transmission slot itself, as [AOST93] does
      // (a cell needs at least one slot to cross the switch).
      const double ratio = (pim.mean_latency + 1) / (oq.mean_latency + 1);
      t.add_row({Table::num(load, 2), Table::num(oq.mean_latency, 2),
                 Table::num(sh.mean_latency, 2), Table::num(pim.mean_latency, 2),
                 load < 0.59 ? Table::num(fifo.mean_latency, 2) : "unstable",
                 Table::num(ratio, 2)});
      shared_last = sh;
      ratio_last = ratio;
    }
    t.print();

    bj.metric("throughput", shared_last.throughput);
    bj.metric("mean_latency", shared_last.mean_latency);
    bj.metric("p99_latency", static_cast<double>(shared_last.p99_latency));
    bj.metric("voq_over_output_ratio", ratio_last);
    bj.add_table("mean queueing latency vs load", t);

    std::printf(
        "\nShape check vs paper: output queueing == shared buffering (identical\n"
        "service), VOQ+PIM runs roughly 1.5-3x slower across 0.6-0.9 (paper: ~2x),\n"
        "and FIFO input queueing has no stable latency past ~0.586.\n");
    return 0;
      });
}
