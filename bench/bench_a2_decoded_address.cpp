// A2 -- Ablation for section 4.3 / figure 7: per-stage address decoders
// (7a) versus the novel decoded-address pipeline (7b). Functionally
// identical (asserted continuously inside AddressPath); what changes is the
// hardware exercised per wave: S decode operations versus 1 decode plus
// (S-1) one-hot register transfers -- and the area charged per stage
// ("a decoded address pipeline register is 2.3 times smaller than the
// normal address decoder").

#include <cstdio>
#include <vector>

#include "area/models.hpp"
#include "bench_util.hpp"
#include "core/testbench.hpp"

using namespace pmsb;
using namespace pmsb::bench;

namespace {

struct PathRun {
  std::uint64_t decode_ops;
  std::uint64_t one_hot_transfers;
  std::uint64_t cells;
};

PathRun run_mode(AddrPathMode mode, Cycle cycles) {
  const SwitchConfig cfg = telegraphos3();
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.load = 1.0;
  spec.seed = 17;
  PipelinedSwitch sw(cfg, mode);
  Engine eng;
  UniformDest dests(cfg.n_ports);
  Rng seeder(spec.seed);
  std::vector<std::unique_ptr<CellSource>> sources;
  for (unsigned i = 0; i < cfg.n_ports; ++i) {
    sources.push_back(std::make_unique<CellSource>(i, &sw.in_link(i), cfg.cell_format(),
                                                   &dests, spec.arrivals, spec.load,
                                                   seeder.split()));
    eng.add(sources.back().get());
  }
  eng.add(&sw);
  eng.run(cycles);
  return PathRun{sw.memory().addr_path().decode_ops(),
                 sw.memory().addr_path().one_hot_reg_transfers(),
                 sw.stats().read_grants};
}

}  // namespace

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"A2", "decoded-address pipeline ablation (section 4.3, figure 7)", "a2_decoded_address"},
      [](pmsb::bench::BenchContext& ctx) {
    const Cycle kCycles = 30000;
    exp::SweepRunner runner;
    const std::vector<AddrPathMode> modes = {AddrPathMode::kPerStageDecoders,
                                             AddrPathMode::kDecodedPipeline};
    const std::vector<PathRun> runs =
        runner.map(modes, [kCycles](AddrPathMode m) { return run_mode(m, kCycles); });
    const PathRun a = runs[0];
    const PathRun b = runs[1];

    std::printf("\nTelegraphos III configuration, saturated uniform traffic, %lld cycles.\n"
                "Both modes deliver identical behaviour (the decoded-pipeline model\n"
                "re-encodes its one-hot word lines every stage and asserts equality):\n\n",
                static_cast<long long>(kCycles));
    Table t({"address path", "decode operations", "one-hot reg transfers", "cells switched"});
    t.add_row({"fig 7(a): decoder per stage", Table::integer(static_cast<long long>(a.decode_ops)),
               Table::integer(static_cast<long long>(a.one_hot_transfers)),
               Table::integer(static_cast<long long>(a.cells))});
    t.add_row({"fig 7(b): decoded pipeline", Table::integer(static_cast<long long>(b.decode_ops)),
               Table::integer(static_cast<long long>(b.one_hot_transfers)),
               Table::integer(static_cast<long long>(b.cells))});
    t.print();
    std::printf("\nDecode operations reduced by %.1fx (S = 16 stages decode once instead\n"
                "of sixteen times per wave).\n",
                static_cast<double>(a.decode_ops) / static_cast<double>(b.decode_ops));

    std::printf("\nArea view (per stage, D = 256 word lines, section 4.4 constants):\n\n");
    const auto tech = area::full_custom_1um();
    const double decoder_um2 = tech.decoder_um2_per_word * 256;
    const double line_ff_um2 = decoder_um2 * tech.line_pipe_ratio;
    Table ar({"per-stage address circuit", "model um^2", "relative"});
    ar.add_row({"full decoder (7a)", Table::num(decoder_um2, 0), "2.3x"});
    ar.add_row({"decoded-line pipeline register (7b)", Table::num(line_ff_um2, 0), "1x"});
    ar.print();
    std::printf("\n(paper: 'a decoded address pipeline register is 2.3 times smaller than\n"
                "the normal address decoder')\n");

    ctx.json.metric("decode ops reduction",
                    static_cast<double>(a.decode_ops) / static_cast<double>(b.decode_ops));
    ctx.json.metric("decoder vs line-register um2 ratio", decoder_um2 / line_ff_um2);
    return 0;
      });
}
