// A1 -- Ablation for section 3.2's no-double-buffering claim. The pipelined
// memory needs only ONE row of input latches because the storing wave chases
// the arrival wave; the wide memory must add a second (staging) row, and
// still loses cells when the staging row cannot drain in time.
//
// Measured here: (a) the distribution of write-wave slack (t0 - a0) on the
// pipelined switch under saturation -- always within the 2n-cycle window,
// with zero slot-miss drops; (b) the wide-memory switch's double-buffer
// overrun drops under the same traffic; (c) head latency of both.

#include <cstdio>

#include "arch/wide/wide_switch.hpp"
#include "bench_util.hpp"
#include "core/testbench.hpp"

using namespace pmsb;
using namespace pmsb::bench;

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"A1", "input double-buffering ablation (pipelined vs wide, section 3.2)", "a1_window_ablation"},
      [](pmsb::bench::BenchContext& ctx) {
    SwitchConfig cfg;
    cfg.n_ports = 8;
    cfg.word_bits = 16;
    cfg.cell_words = 16;
    cfg.capacity_segments = 64;  // Deliberately small: heavy buffer pressure.

    TrafficSpec spec;
    spec.arrivals = ArrivalKind::kSaturated;
    spec.load = 1.0;
    spec.seed = 13;

    // --- pipelined: write-wave slack histogram -------------------------------
    PipelinedTestbench pipe(cfg, cfg.n_ports, cfg.cell_format(), spec, /*scoreboard=*/false);
    Histogram slack(64);
    SwitchEvents ev;
    ev.on_accept = [&](unsigned, Cycle a0, Cycle t0) {
      slack.add(static_cast<std::uint64_t>(t0 - a0));
    };
    const Subscription ev_sub = pipe.dut().events().subscribe(std::move(ev));
    pipe.run(60000);

    std::printf("\nPipelined switch, saturated uniform traffic, window = 2n = %u cycles.\n"
                "Write-wave slack t0 - a0 (must stay in [1, %u]):\n\n",
                cfg.stages(), cfg.stages());
    Table t({"metric", "value"});
    t.add_row({"min slack", Table::integer(static_cast<long long>(slack.min()))});
    t.add_row({"mean slack", Table::num(slack.mean(), 2)});
    t.add_row({"max slack", Table::integer(static_cast<long long>(slack.max()))});
    t.add_row({"window (2n)", Table::integer(cfg.stages())});
    t.add_row({"slot-miss drops", Table::integer(static_cast<long long>(
                                     pipe.dut().stats().dropped_no_slot))});
    t.add_row({"buffer-full drops", Table::integer(static_cast<long long>(
                                       pipe.dut().stats().dropped_no_addr))});
    t.print();

    // --- wide: overrun drops under identical traffic -------------------------
    Testbench<WideMemorySwitch, SwitchConfig> wide(cfg, cfg.n_ports, cfg.cell_format(), spec,
                                                   /*scoreboard=*/false);
    wide.run(60000);
    const auto& ws = wide.dut().stats();
    std::printf("\nWide-memory switch (with its mandatory double buffering) under the\n"
                "same saturated traffic:\n\n");
    Table w({"metric", "value"});
    w.add_row({"staging-row overrun drops", Table::integer(static_cast<long long>(
                                                ws.dropped_no_slot))});
    w.add_row({"accepted cells", Table::integer(static_cast<long long>(ws.accepted))});
    w.add_row({"bypass (cut-through) cells", Table::integer(static_cast<long long>(
                                                 ws.cut_through_cells))});
    w.print();

    // --- latency comparison at moderate load ---------------------------------
    std::printf("\nHead latency at moderate load (0.6, geometric, uniform): the wide\n"
                "memory can only cut through when the single head-arrival-instant\n"
                "opportunity is available; otherwise it stores and forwards:\n\n");
    TrafficSpec mild;
    mild.load = 0.6;
    mild.seed = 14;
    PipelinedTestbench p2(cfg, cfg.n_ports, cfg.cell_format(), mild, /*scoreboard=*/true);
    Testbench<WideMemorySwitch, SwitchConfig> w2(cfg, cfg.n_ports, cfg.cell_format(), mild,
                                                 /*scoreboard=*/true);
    p2.run(60000);
    w2.run(60000);
    p2.drain(500000);
    w2.drain(500000);
    Table lat({"switch", "min", "mean", "p99", "cut-through share"});
    lat.add_row({"pipelined",
                 Table::integer(static_cast<long long>(p2.scoreboard().latency().min())),
                 Table::num(p2.scoreboard().latency().mean(), 1),
                 Table::integer(static_cast<long long>(p2.scoreboard().latency().p99())),
                 Table::num(static_cast<double>(p2.dut().stats().cut_through_cells) /
                                static_cast<double>(p2.dut().stats().read_grants),
                            3)});
    lat.add_row({"wide memory",
                 Table::integer(static_cast<long long>(w2.scoreboard().latency().min())),
                 Table::num(w2.scoreboard().latency().mean(), 1),
                 Table::integer(static_cast<long long>(w2.scoreboard().latency().p99())),
                 Table::num(static_cast<double>(w2.dut().stats().cut_through_cells) /
                                static_cast<double>(w2.dut().stats().read_grants),
                            3)});
    lat.print();

    ctx.json.metric("pipelined mean latency", p2.scoreboard().latency().mean());
    ctx.json.metric("wide mean latency", w2.scoreboard().latency().mean());

    std::printf(
        "\nShape check vs paper: the pipelined switch never misses its latch window\n"
        "(slack <= 2n, zero slot-miss drops) with ONE latch row; the wide memory\n"
        "pays a second row, cuts through far less often, and its mean latency is\n"
        "higher -- the figure 3 vs figure 4 comparison, quantified.\n");
    return 0;
      });
}
