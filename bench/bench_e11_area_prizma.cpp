// E11 -- Section 5.3: PRIZMA-style interleaved shared buffering pays
// crossbars proportional to n x M (router) and M x n (selector), versus the
// pipelined memory's n x 2n blocks: 16x more at Telegraphos III scale
// (2n = 16, M = 256). The functional throughput of the two organizations is
// the same -- demonstrated by running both cycle-accurate models -- so the
// crossbar cost is pure overhead.

#include <cstdio>
#include <vector>

#include "arch/prizma/prizma_switch.hpp"
#include "area/models.hpp"
#include "bench_util.hpp"

using namespace pmsb;
using namespace pmsb::bench;

namespace {

double prizma_utilization(unsigned n, unsigned banks, Cycle cycles) {
  PrizmaConfig cfg;
  cfg.n_ports = n;
  cfg.word_bits = 16;
  cfg.cell_words = 2 * n;
  cfg.n_banks = banks;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.load = 1.0;
  spec.seed = 9;
  Testbench<PrizmaSwitch, PrizmaConfig> tb(cfg, n, cfg.cell_format(), spec,
                                           /*scoreboard=*/false);
  tb.run(cycles);
  add_simulated_units(static_cast<std::uint64_t>(cycles));
  const auto& st = tb.dut().stats();
  return static_cast<double>(st.read_grants) * cfg.cell_words /
         (static_cast<double>(n) * static_cast<double>(st.cycles));
}

double pipelined_utilization(unsigned n, unsigned cells, Cycle cycles) {
  SwitchConfig cfg;
  cfg.n_ports = n;
  cfg.word_bits = 16;
  cfg.cell_words = 2 * n;
  cfg.capacity_segments = cells;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.load = 1.0;
  spec.seed = 9;
  return run_pipelined(cfg, spec, cycles).output_utilization;
}

}  // namespace

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"E11", "PRIZMA interleaved vs pipelined shared buffer (section 5.3)", "e11_area_prizma"},
      [](pmsb::bench::BenchContext& ctx) {
        BenchJson& bj = ctx.json;
    std::printf("\nFunctional equivalence first -- both are full-throughput shared\n"
                "buffers (saturated uniform traffic, equal capacity in cells):\n\n");
    Table fn({"n", "capacity (cells)", "PRIZMA util", "pipelined util"});
    const std::vector<unsigned> fn_sizes = {4u, 8u};
    std::vector<std::function<double()>> fn_points;
    for (unsigned n : fn_sizes) {
      const unsigned cells = 32 * n;
      fn_points.push_back([n, cells] { return prizma_utilization(n, cells, 30000); });
      fn_points.push_back([n, cells] { return pipelined_utilization(n, cells, 30000); });
    }
    exp::SweepRunner runner;
    const std::vector<double> fn_r = runner.run(std::move(fn_points));
    double prizma_util8 = 0, pipelined_util8 = 0;
    for (std::size_t i = 0; i < fn_sizes.size(); ++i) {
      const unsigned n = fn_sizes[i];
      const double pu = fn_r[i * 2];
      const double su = fn_r[i * 2 + 1];
      fn.add_row({Table::integer(n), Table::integer(32 * n), Table::num(pu, 3),
                  Table::num(su, 3)});
      if (n == 8) {
        prizma_util8 = pu;
        pipelined_util8 = su;
      }
    }
    fn.print();

    std::printf("\nCrossbar complexity (the section 5.3 argument): PRIZMA's router and\n"
                "selector connect n links to M banks; the pipelined memory's two\n"
                "datapath blocks connect n links to 2n stages:\n\n");
    Table t({"n", "M (cells)", "PRIZMA ~ n x M", "pipelined ~ n x 2n", "cost ratio",
             "paper"});
    for (auto [n, m] : {std::pair{8u, 256u}, {4u, 64u}, {8u, 64u}, {16u, 256u}}) {
      t.add_row({Table::integer(n), Table::integer(m),
                 Table::integer(static_cast<long long>(n) * m),
                 Table::integer(static_cast<long long>(n) * 2 * n),
                 Table::num(area::prizma_crossbar_ratio(n, m), 1),
                 (n == 8 && m == 256) ? "16x (Telegraphos III scale)" : "-"});
    }
    t.print();

    bj.metric("throughput", pipelined_util8);
    bj.metric("prizma_utilization_n8", prizma_util8);
    bj.metric("pipelined_utilization_n8", pipelined_util8);
    bj.metric("occupancy", area::prizma_crossbar_ratio(8, 256));
    bj.metric("crossbar_cost_ratio_t3_scale", area::prizma_crossbar_ratio(8, 256));
    bj.add_table("functional equivalence", fn);
    bj.add_table("crossbar complexity", t);

    std::printf(
        "\nShape check vs paper: equal delivered performance, but the interleaved\n"
        "organization's steering crossbars scale with the buffer CAPACITY (M)\n"
        "instead of the port count (2n) -- 16x at 2n = 16, M = 256. The PRIZMA\n"
        "banks were even granted a free extra port (1R1W) in our model.\n");
    return 0;
      });
}
