// E12 -- Section 3.5 (packet-size quantum) and section 4.4: aggregate
// shared-buffer throughput arithmetic, cross-checked against the simulator.
//
// Paper: "consider a quantum as small as 32 to 64 bytes ... buffer widths of
// 256 to 1024 bits. With an (on-chip) memory cycle time of 5 ns ... the
// aggregate throughput of such a buffer is 50 to 200 Gb/s -- enough for 16
// incoming and 16 outgoing links near the Giga-Byte per second range."
// And Telegraphos III: 16 stages x 16 bits at 16 ns worst = 16 Gb/s
// aggregate, 1 Gb/s per link.

#include <cstdio>

#include "area/models.hpp"
#include "bench_util.hpp"
#include "core/config.hpp"

using namespace pmsb;
using namespace pmsb::bench;

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"E12", "packet-size quantum and aggregate throughput (sections 3.5, 4.4)", "e12_aggregate_throughput"},
      [](pmsb::bench::BenchContext& ctx) {
        BenchJson& bj = ctx.json;
    std::printf("\nQuantum arithmetic at a 5 ns memory cycle (section 3.5):\n\n");
    Table q({"buffer width", "quantum (bytes)", "aggregate", "per link (16+16 links)"});
    for (unsigned width : {256u, 512u, 1024u}) {
      q.add_row({Table::integer(width) + " bits", Table::integer(width / 8),
                 Table::num(area::aggregate_gbps(width, 5.0), 1) + " Gb/s",
                 Table::num(area::aggregate_gbps(width, 5.0) / 32.0, 2) + " Gb/s"});
    }
    q.print();
    std::printf("\n(paper: 50 to 200 Gb/s aggregate -- 'chip I/O throughput rather than\n"
                "memory cycle time is the bottleneck')\n");

    std::printf("\nSimulator cross-check at Telegraphos III (16 stages x 16 b, 62.5 MHz\n"
                "worst-case): measured aggregate buffer throughput at saturation =\n"
                "(write + read + 2 x snoop initiations) x 256 bits x clock:\n\n");
    const SwitchConfig cfg = telegraphos3();
    TrafficSpec spec;
    spec.arrivals = ArrivalKind::kSaturated;
    spec.load = 1.0;
    spec.seed = 4;
    const CycleRun r = run_pipelined(cfg, spec, 40000, 4000);
    const double ops_per_cycle =
        static_cast<double>(r.stats.write_initiations + r.stats.read_initiations +
                            2 * r.stats.snoop_initiations) /
        static_cast<double>(r.stats.cycles);
    const double agg_gbps =
        ops_per_cycle * cfg.cell_words * cfg.word_bits * cfg.clock_mhz * 1e6 / 1e9;
    Table t({"quantity", "measured", "paper"});
    t.add_row({"cell transfers through M0 per cycle", Table::num(ops_per_cycle, 3), "1.0"});
    t.add_row({"aggregate buffer throughput", Table::num(agg_gbps, 1) + " Gb/s", "16 Gb/s"});
    t.add_row({"per-link throughput",
               Table::num(r.output_utilization * cfg.link_mbps() / 1000.0, 2) + " Gb/s",
               "1 Gb/s (worst case)"});
    t.print();

    bj.metric("throughput", r.output_utilization);
    bj.metric("mean_latency", r.head_latency.mean());
    bj.metric("occupancy", r.mean_buffer_occupancy);
    bj.metric("cell_transfers_per_cycle", ops_per_cycle);
    bj.metric("aggregate_gbps", agg_gbps);
    bj.metric("per_link_gbps", r.output_utilization * cfg.link_mbps() / 1000.0);
    bj.add_table("quantum arithmetic", q);
    bj.add_table("simulator cross-check", t);

    std::printf(
        "\nShape check vs paper: the shared buffer moves one full cell per memory\n"
        "cycle (writes + reads combined), which is exactly the aggregate link\n"
        "demand -- the 'throughput 2n' sizing argument of section 2.3.\n");
    return 0;
      });
}
