// FS -- Fabric scaling: whole topologies of cycle-accurate pipelined-memory
// switches (section 5's "switching fabrics made of single-chip switches"),
// run on the sharded fabric engine (src/fabric/) at 1, 2 and 4 worker
// threads.
//
// Two claims are exercised:
//  * Determinism: delivered-cell digests, drops and latencies are
//    bit-identical at every thread count (the bench FAILS otherwise, and
//    everything outside the "runtime" JSON object is diffable byte for
//    byte).
//  * Scaling: node-cycles per second improve with threads. Wall-clock rates
//    and speedups are timing-dependent, so they are published only inside
//    the "runtime" object (excluded from determinism diffs).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

#include "fabric/fabric.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"

using namespace pmsb;
using namespace pmsb::bench;

namespace {

struct Run {
  unsigned threads;
  double wall_seconds;
  fabric::FabricStats stats;
};

constexpr Cycle kCycles = 6000;
constexpr unsigned kLinkStages = 8;  // D: lookahead and per-link latency - 1.

fabric::FabricConfig make_config(const net::Topology& topo, std::uint64_t seed,
                                 unsigned threads) {
  fabric::FabricConfig cfg;
  cfg.topo = topo;
  cfg.node = SwitchConfig::for_ports(4);
  cfg.link_pipe_stages = kLinkStages;
  cfg.load = 0.6;
  cfg.seed = seed;
  cfg.threads = threads;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv,
      {"FS", "sharded fabric engine: determinism + thread scaling", "fabric_scale"},
      [](pmsb::bench::BenchContext& ctx) {
        const std::vector<net::Topology> topos = {
            net::Topology{net::TopologyKind::kTorus2D, 4, 4},
            net::Topology{net::TopologyKind::kTorus2D, 8, 8},
        };
        const std::vector<unsigned> thread_counts = {1, 2, 4};

        Table delivery({"topology", "nodes", "cycles", "injected", "delivered", "dropped",
                        "mean latency", "delivered uid digest"});
        Table scaling({"topology", "threads", "wall s", "node-cycles/s", "speedup vs 1"});
        bool deterministic = true;

        for (const net::Topology& topo : topos) {
          std::vector<Run> runs;
          for (unsigned threads : thread_counts) {
            fabric::Fabric fab(make_config(topo, ctx.seed, threads));
            const exp::WallTimer timer;
            fab.run(kCycles);
            runs.push_back(Run{fab.threads(), timer.seconds(), fab.stats()});
            add_simulated_units(static_cast<std::uint64_t>(kCycles) * topo.nodes());
          }

          const fabric::FabricStats& ref = runs.front().stats;
          for (const Run& r : runs) {
            if (r.stats.uid_digest != ref.uid_digest || r.stats.delivered != ref.delivered ||
                r.stats.dropped() != ref.dropped() ||
                r.stats.mean_latency != ref.mean_latency) {
              std::fprintf(stderr,
                           "FAIL: %s diverged at %u threads "
                           "(digest %016llx vs %016llx, delivered %llu vs %llu)\n",
                           topo.describe().c_str(), r.threads,
                           static_cast<unsigned long long>(r.stats.uid_digest),
                           static_cast<unsigned long long>(ref.uid_digest),
                           static_cast<unsigned long long>(r.stats.delivered),
                           static_cast<unsigned long long>(ref.delivered));
              deterministic = false;
            }
          }

          char digest[20];
          std::snprintf(digest, sizeof digest, "%016llx",
                        static_cast<unsigned long long>(ref.uid_digest));
          delivery.add_row({topo.describe(),
                            Table::integer(topo.nodes()),
                            Table::integer(static_cast<long long>(kCycles)),
                            Table::integer(static_cast<long long>(ref.injected)),
                            Table::integer(static_cast<long long>(ref.delivered)),
                            Table::integer(static_cast<long long>(ref.dropped())),
                            Table::num(ref.mean_latency, 1), digest});

          const double base_rate =
              static_cast<double>(kCycles) * topo.nodes() / runs.front().wall_seconds;
          for (const Run& r : runs) {
            const double rate =
                static_cast<double>(kCycles) * topo.nodes() / r.wall_seconds;
            scaling.add_row({topo.describe(), Table::integer(r.threads),
                             Table::num(r.wall_seconds, 3), Table::num(rate, 0),
                             Table::num(rate / base_rate, 2)});
            const std::string tag = topo.describe() + " t" + std::to_string(r.threads);
            ctx.json.runtime_metric(tag + " node-cycles/s", rate);
            if (r.threads != runs.front().threads)
              ctx.json.runtime_metric(tag + " speedup", rate / base_rate);
          }

          const std::string prefix = topo.describe();
          ctx.json.metric(prefix + " delivered", static_cast<double>(ref.delivered));
          ctx.json.metric(prefix + " dropped", static_cast<double>(ref.dropped()));
          ctx.json.metric(prefix + " mean latency", ref.mean_latency);
          ctx.json.metric(prefix + " payload errors",
                          static_cast<double>(ref.payload_errors));
        }

        std::printf("Delivery accounting (identical at every thread count):\n\n");
        delivery.print();

        // The big fabric's latency-by-distance profile: per-hop cost is the
        // D+1-cycle link plus store-and-forward and switch transit.
        fabric::Fabric big(make_config(topos.back(), ctx.seed, 1));
        big.run(kCycles);
        const fabric::FabricStats st = big.stats();
        Table hops({"hops", "cells", "mean latency"});
        for (const auto& row : st.by_hops) {
          if (row.cells == 0) continue;
          hops.add_row({Table::integer(row.hops),
                        Table::integer(static_cast<long long>(row.cells)),
                        Table::num(row.mean_latency, 1)});
        }
        std::printf("\nLatency by route length (%s):\n\n", topos.back().describe().c_str());
        hops.print();

        std::printf("\nWall-clock scaling (timing-dependent; lives in the runtime "
                    "object, not the determinism surface):\n\n");
        scaling.print();

        ctx.json.metric("throughput",
                        static_cast<double>(st.delivered) / static_cast<double>(kCycles));
        ctx.json.metric("mean_latency", st.mean_latency);
        ctx.json.metric("occupancy",
                        static_cast<double>(st.in_network) / topos.back().nodes());
        ctx.json.add_table("fabric delivery", delivery);
        ctx.json.add_table("latency by hops", hops);

        if (!deterministic) return 1;
        std::printf("\nDeterminism: delivered-cell digests identical across "
                    "{1, 2, 4} threads on every topology.\n");
        return 0;
      });
}
