// FS -- Fabric scaling: whole topologies of cycle-accurate pipelined-memory
// switches (section 5's "switching fabrics made of single-chip switches"),
// run on the sharded fabric engine (src/fabric/) at 1, 2 and 4 worker
// threads.
//
// Two claims are exercised:
//  * Determinism: delivered-cell digests, drops and latencies are
//    bit-identical at every thread count (the bench FAILS otherwise, and
//    everything outside the "runtime" JSON object is diffable byte for
//    byte).
//  * Scaling: node-cycles per second improve with threads. Wall-clock rates
//    and speedups are timing-dependent, so they are published only inside
//    the "runtime" object (excluded from determinism diffs).

#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"

#include "fabric/fabric.hpp"
#include "net/topology.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/timeseries.hpp"

using namespace pmsb;
using namespace pmsb::bench;

namespace {

// Per-stage p99 of the merged flight recorders: part of the determinism
// surface, so it is compared across thread counts alongside the digests.
using FlightP99 = std::array<std::uint64_t, obs::kFlightStageCount>;

struct Run {
  unsigned threads;
  double wall_seconds;
  fabric::FabricStats stats;
  FlightP99 flight_p99{};
};

constexpr Cycle kCycles = 6000;
constexpr unsigned kLinkStages = 8;  // D: lookahead and per-link latency - 1.
constexpr Cycle kFlightWarmup = 500;

/// The one public construction path: Fabric::build(topology, config).
std::unique_ptr<fabric::Fabric> make_fabric(const fabric::FabricConfig& cfg) {
  return fabric::Fabric::build(cfg.topo, cfg);
}

fabric::FabricConfig make_config(const net::Topology& topo, std::uint64_t seed,
                                 unsigned threads) {
  fabric::FabricConfig cfg;
  cfg.topo = topo;
  cfg.node = SwitchConfig::for_ports(4);
  cfg.link_pipe_stages = kLinkStages;
  cfg.load = 0.6;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.flight_recorder = true;
  cfg.flight_warmup = kFlightWarmup;
  return cfg;
}

FlightP99 flight_p99_of(const obs::FlightRecorder& fr) {
  FlightP99 out{};
  for (unsigned s = 0; s < obs::kFlightStageCount; ++s)
    out[s] = fr.stage(static_cast<obs::FlightStage>(s)).p99();
  return out;
}

// Fill a runtime.<name> block from the fabric's scheduling-layer telemetry:
// engine, steal/rebalance totals, per-worker wall-clock slices, and per-task
// stall composition. All timing-derived -> runtime object only.
void scheduler_block(BenchJson& bj, const std::string& name, const fabric::Fabric& fab) {
  const fabric::FabricSchedulerStats s = fab.scheduler_stats();
  BenchJson::RuntimeBlock& b = bj.runtime_block(name);
  b.set("engine", std::string(s.engine));
  b.set("workers", static_cast<double>(s.workers));
  b.set("tasks", static_cast<double>(s.tasks));
  b.set("steals", static_cast<double>(s.steals));
  b.set("rebalance_splits", static_cast<double>(s.splits));
  b.set("rebalance_merges", static_cast<double>(s.merges));
  b.set_list("rebalance_log", s.rebalance_log);
  std::vector<BenchJson::RuntimeBlock::ObjectRow> workers;
  for (const auto& w : s.per_worker) {
    workers.push_back({{"active_ms", static_cast<double>(w.active_ns) / 1e6},
                       {"idle_ms", static_cast<double>(w.idle_ns) / 1e6},
                       {"steals", static_cast<double>(w.steals)},
                       {"slices", static_cast<double>(w.slices)}});
  }
  b.set_objects("per_worker", std::move(workers));
  std::vector<BenchJson::RuntimeBlock::ObjectRow> tasks;
  for (const fabric::ShardTelemetry& t : fab.shard_telemetry()) {
    tasks.push_back({{"nodes", static_cast<double>(t.nodes)},
                     {"active_ms", static_cast<double>(t.active_ns) / 1e6},
                     {"barrier_wait_ms", static_cast<double>(t.barrier_wait_ns) / 1e6},
                     {"blocked_on_empty_ms", static_cast<double>(t.blocked_on_empty_ns) / 1e6},
                     {"blocked_on_full_ms", static_cast<double>(t.blocked_on_full_ns) / 1e6},
                     {"steals", static_cast<double>(t.steals)},
                     {"chunks", static_cast<double>(t.rounds)}});
  }
  b.set_objects("per_task", std::move(tasks));
}

}  // namespace

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv,
      {"FS", "sharded fabric engine: determinism + thread scaling", "fabric_scale"},
      [](pmsb::bench::BenchContext& ctx) {
        const std::vector<net::Topology> topos = {
            net::Topology{net::TopologyKind::kTorus2D, 4, 4},
            net::Topology{net::TopologyKind::kTorus2D, 8, 8},
        };
        const std::vector<unsigned> thread_counts = {1, 2, 4};

        Table delivery({"topology", "nodes", "cycles", "injected", "delivered", "dropped",
                        "mean latency", "delivered uid digest"});
        Table scaling({"topology", "threads", "wall s", "node-cycles/s", "speedup vs 1"});
        bool deterministic = true;

        for (const net::Topology& topo : topos) {
          std::vector<Run> runs;
          for (unsigned threads : thread_counts) {
            const auto fab = make_fabric(make_config(topo, ctx.seed, threads));
            const exp::WallTimer timer;
            fab->run(kCycles);
            runs.push_back(Run{fab->threads(), timer.seconds(), fab->stats(),
                               flight_p99_of(fab->merged_flight())});
            add_simulated_units(static_cast<std::uint64_t>(kCycles) * topo.nodes());
          }

          const fabric::FabricStats& ref = runs.front().stats;
          for (const Run& r : runs) {
            if (r.flight_p99 != runs.front().flight_p99) {
              std::fprintf(stderr,
                           "FAIL: %s merged flight-stage p99s diverged at %u threads\n",
                           topo.describe().c_str(), r.threads);
              deterministic = false;
            }
            if (r.stats.uid_digest != ref.uid_digest || r.stats.delivered != ref.delivered ||
                r.stats.dropped() != ref.dropped() ||
                r.stats.mean_latency != ref.mean_latency ||
                r.stats.latency.p999() != ref.latency.p999()) {
              std::fprintf(stderr,
                           "FAIL: %s diverged at %u threads "
                           "(digest %016llx vs %016llx, delivered %llu vs %llu)\n",
                           topo.describe().c_str(), r.threads,
                           static_cast<unsigned long long>(r.stats.uid_digest),
                           static_cast<unsigned long long>(ref.uid_digest),
                           static_cast<unsigned long long>(r.stats.delivered),
                           static_cast<unsigned long long>(ref.delivered));
              deterministic = false;
            }
          }

          char digest[20];
          std::snprintf(digest, sizeof digest, "%016llx",
                        static_cast<unsigned long long>(ref.uid_digest));
          delivery.add_row({topo.describe(),
                            Table::integer(topo.nodes()),
                            Table::integer(static_cast<long long>(kCycles)),
                            Table::integer(static_cast<long long>(ref.injected)),
                            Table::integer(static_cast<long long>(ref.delivered)),
                            Table::integer(static_cast<long long>(ref.dropped())),
                            Table::num(ref.mean_latency, 1), digest});

          const double base_rate =
              static_cast<double>(kCycles) * topo.nodes() / runs.front().wall_seconds;
          for (const Run& r : runs) {
            const double rate =
                static_cast<double>(kCycles) * topo.nodes() / r.wall_seconds;
            scaling.add_row({topo.describe(), Table::integer(r.threads),
                             Table::num(r.wall_seconds, 3), Table::num(rate, 0),
                             Table::num(rate / base_rate, 2)});
            const std::string tag = topo.describe() + " t" + std::to_string(r.threads);
            ctx.json.runtime_metric(tag + " node-cycles/s", rate);
            if (r.threads != runs.front().threads)
              ctx.json.runtime_metric(tag + " speedup", rate / base_rate);
          }

          const std::string prefix = topo.describe();
          ctx.json.metric(prefix + " delivered", static_cast<double>(ref.delivered));
          ctx.json.metric(prefix + " dropped", static_cast<double>(ref.dropped()));
          ctx.json.metric(prefix + " mean latency", ref.mean_latency);
          ctx.json.metric(prefix + " payload errors",
                          static_cast<double>(ref.payload_errors));
        }

        std::printf("Delivery accounting (identical at every thread count):\n\n");
        delivery.print();

        // The big fabric's latency-by-distance profile: per-hop cost is the
        // D+1-cycle link plus store-and-forward and switch transit. This run
        // also carries the observability rig -- registry + time-series
        // sampler + flight recorders -- and is the bench's Perfetto source.
        // 4 workers so the trace has real per-shard tracks; every published
        // stat is thread-count-invariant.
        const auto big = make_fabric(make_config(topos.back(), ctx.seed, 4));
        obs::MetricsRegistry metrics;  // Declared before the sampler (lifetime).
        big->register_metrics(&metrics);
        obs::TimeSeriesSampler sampler(&metrics, /*capacity=*/256);
        big->run(kCycles);
        const fabric::FabricStats st = big->stats();
        Table hops({"hops", "cells", "mean latency"});
        for (const auto& row : st.by_hops) {
          if (row.cells == 0) continue;
          hops.add_row({Table::integer(row.hops),
                        Table::integer(static_cast<long long>(row.cells)),
                        Table::num(row.mean_latency, 1)});
        }
        std::printf("\nLatency by route length (%s):\n\n", topos.back().describe().c_str());
        hops.print();

        std::printf("\nWall-clock scaling (timing-dependent; lives in the runtime "
                    "object, not the determinism surface):\n\n");
        scaling.print();

        ctx.json.metric("throughput",
                        static_cast<double>(st.delivered) / static_cast<double>(kCycles));
        ctx.json.metric("mean_latency", st.mean_latency);
        ctx.json.metric("occupancy",
                        static_cast<double>(st.in_network) / topos.back().nodes());
        ctx.json.add_table("fabric delivery", delivery);
        ctx.json.add_table("latency by hops", hops);

        // Per-stage breakdown of the big fabric's node transit latency
        // (merged HDR histograms over all 64 switches, node order).
        const obs::FlightRecorder big_flight = big->merged_flight();
        Table stages({"stage", "samples", "mean", "p50", "p90", "p99", "p99.9"});
        for (unsigned s = 0; s < obs::kFlightStageCount; ++s) {
          const auto stage = static_cast<obs::FlightStage>(s);
          const HdrHistogram& h = big_flight.stage(stage);
          stages.add_row({obs::to_string(stage), std::to_string(h.samples()),
                          Table::num(h.mean(), 2), std::to_string(h.p50()),
                          std::to_string(h.p90()), std::to_string(h.p99()),
                          std::to_string(h.p999())});
          ctx.json.percentile_metrics(std::string("stage ") + obs::to_string(stage), h);
        }
        std::printf("\nPer-stage switch-transit latency, %s (cycles, merged over "
                    "all nodes):\n\n", topos.back().describe().c_str());
        stages.print();
        ctx.json.add_table("per-stage transit latency (big fabric)", stages);
        // End-to-end (injection -> ejection) percentiles from the merged
        // per-node delivery histograms.
        ctx.json.latency_percentiles(st.latency);
        ctx.json.set_timeseries(sampler.series());

        // Shard telemetry: wall-clock split per worker, and the transit-relay
        // share each shard carried. Timing-derived -> runtime object only.
        Table shard_t({"shard", "nodes", "active ms", "barrier ms", "rounds", "relayed"});
        for (const fabric::ShardTelemetry& sh : big->shard_telemetry()) {
          shard_t.add_row({Table::integer(sh.shard), Table::integer(sh.nodes),
                           Table::num(static_cast<double>(sh.active_ns) / 1e6, 2),
                           Table::num(static_cast<double>(sh.barrier_wait_ns) / 1e6, 2),
                           Table::integer(static_cast<long long>(sh.rounds)),
                           Table::integer(static_cast<long long>(sh.cells_relayed))});
          const std::string tag = "shard" + std::to_string(sh.shard);
          ctx.json.runtime_metric(tag + " active_ms",
                                  static_cast<double>(sh.active_ns) / 1e6);
          ctx.json.runtime_metric(tag + " barrier_ms",
                                  static_cast<double>(sh.barrier_wait_ns) / 1e6);
          ctx.json.runtime_metric(tag + " rounds", static_cast<double>(sh.rounds));
          ctx.json.runtime_metric(tag + " relayed",
                                  static_cast<double>(sh.cells_relayed));
        }
        ctx.json.runtime_metric("rounds_skipped",
                                static_cast<double>(big->rounds_skipped()));
        scheduler_block(ctx.json, "scheduler", *big);
        std::printf("\nShard telemetry for the instrumented %s run (engine: %s; "
                    "wall clock; runtime object only):\n\n",
                    topos.back().describe().c_str(),
                    fabric::to_string(big->engine()));
        shard_t.print();

        {
          const std::string trace = ctx.json.trace_path();
          if (!trace.empty()) {
            obs::PerfettoTrace tr;
            sampler.to_perfetto(tr);       // Component counter tracks.
            big->telemetry_to_perfetto(tr); // Worker tracks (tid >= 1000).
            tr.write(trace);
            std::printf("\n[trace] wrote %s\n", trace.c_str());
          }
        }

        // --- Low-load idle skipping -------------------------------------
        // A sparse 8x8 torus (arrivals minutes apart in simulated time) run
        // twice: skipping forced off, then on. Every stat must be
        // bit-identical -- the wall-clock ratio is the quiescence payoff
        // and goes into the runtime object only.
        {
          const net::Topology topo{net::TopologyKind::kTorus2D, 8, 8};
          const Cycle low_cycles = 300000;
          auto low_cfg = [&](int idle_skip) {
            fabric::FabricConfig cfg = make_config(topo, ctx.seed, 1);
            cfg.load = 3e-5;
            cfg.idle_skip = idle_skip;
            return cfg;
          };
          const auto stepped = make_fabric(low_cfg(0));
          const exp::WallTimer t_off;
          stepped->run(low_cycles);
          const double wall_off = t_off.seconds();
          const auto skipping = make_fabric(low_cfg(1));
          const exp::WallTimer t_on;
          skipping->run(low_cycles);
          const double wall_on = t_on.seconds();
          add_simulated_units(2 * static_cast<std::uint64_t>(low_cycles) * topo.nodes());

          const fabric::FabricStats a = stepped->stats();
          const fabric::FabricStats b = skipping->stats();
          if (a.uid_digest != b.uid_digest || a.injected != b.injected ||
              a.delivered != b.delivered || a.dropped() != b.dropped() ||
              a.backlog != b.backlog || a.in_network != b.in_network ||
              a.mean_latency != b.mean_latency || a.min_latency != b.min_latency ||
              a.max_latency != b.max_latency) {
            std::fprintf(stderr,
                         "FAIL: idle skipping changed low-load results "
                         "(digest %016llx vs %016llx, delivered %llu vs %llu)\n",
                         static_cast<unsigned long long>(a.uid_digest),
                         static_cast<unsigned long long>(b.uid_digest),
                         static_cast<unsigned long long>(a.delivered),
                         static_cast<unsigned long long>(b.delivered));
            deterministic = false;
          }
          const double speedup = wall_on > 0 ? wall_off / wall_on : 0.0;
          std::printf("\nLow-load idle skipping (%s, load %.0e, %lld cycles): "
                      "stepped %.3fs, skipping %.3fs -> %.1fx; results identical: %s\n",
                      topo.describe().c_str(), 3e-5, static_cast<long long>(low_cycles),
                      wall_off, wall_on, speedup,
                      a.uid_digest == b.uid_digest ? "yes" : "NO");
          ctx.json.metric("low-load delivered", static_cast<double>(a.delivered));
          ctx.json.metric("low-load injected", static_cast<double>(a.injected));
          ctx.json.metric("low-load mean latency", a.mean_latency);
          ctx.json.runtime_metric("low_load_skip_off_wall_s", wall_off);
          ctx.json.runtime_metric("low_load_skip_on_wall_s", wall_on);
          ctx.json.runtime_metric("low_load_idle_skip_speedup", speedup);
        }

        // --- Mixed cycle-accurate / fast-model fabric -------------------
        // Checkerboard model selection on the 4x4 torus: the determinism
        // contract must hold for heterogeneous fabrics too.
        {
          const net::Topology topo{net::TopologyKind::kTorus2D, 4, 4};
          auto mixed_cfg = [&](unsigned threads) {
            fabric::FabricConfig cfg = make_config(topo, ctx.seed, threads);
            cfg.fast_node = [](unsigned node) { return node % 2 == 1; };
            return cfg;
          };
          const auto m1 = make_fabric(mixed_cfg(1));
          const auto m4 = make_fabric(mixed_cfg(4));
          m1->run(kCycles);
          m4->run(kCycles);
          add_simulated_units(2 * static_cast<std::uint64_t>(kCycles) * topo.nodes());
          const fabric::FabricStats a = m1->stats();
          const fabric::FabricStats b = m4->stats();
          if (a.uid_digest != b.uid_digest || a.delivered != b.delivered ||
              a.dropped() != b.dropped() || a.mean_latency != b.mean_latency) {
            std::fprintf(stderr,
                         "FAIL: mixed fast-node fabric diverged across threads "
                         "(digest %016llx vs %016llx)\n",
                         static_cast<unsigned long long>(a.uid_digest),
                         static_cast<unsigned long long>(b.uid_digest));
            deterministic = false;
          }
          std::printf("\nMixed fast/cycle-accurate fabric (%s, odd nodes fast): "
                      "delivered %llu, digest %016llx, t1 == t4: %s\n",
                      topo.describe().c_str(),
                      static_cast<unsigned long long>(a.delivered),
                      static_cast<unsigned long long>(a.uid_digest),
                      a.uid_digest == b.uid_digest ? "yes" : "NO");
          ctx.json.metric("mixed delivered", static_cast<double>(a.delivered));
          ctx.json.metric("mixed dropped", static_cast<double>(a.dropped()));
          ctx.json.metric("mixed mean latency", a.mean_latency);
        }

        // --- Imbalanced load: barrier vs dataflow -----------------------
        // An 8x8 torus where only the top-left 4x4 quadrant runs the
        // cycle-accurate switch (the rest use the fast model) is the
        // barrier engine's worst case: every round, 3/4 of the fabric waits
        // for the expensive quadrant. The dataflow engine lets cheap nodes
        // run ahead up to the channel credit and steals the hot tasks
        // across workers, so it should win wall-clock -- while every
        // published stat stays bit-identical across engines AND thread
        // counts (the bench FAILS otherwise; CI also asserts the speedup).
        {
          const net::Topology topo{net::TopologyKind::kTorus2D, 8, 8};
          const Cycle hot_cycles = 4000;
          auto hot_cfg = [&](fabric::FabricEngine engine, unsigned threads) {
            fabric::FabricConfig cfg = make_config(topo, ctx.seed, threads);
            cfg.flight_recorder = false;
            cfg.engine = engine;
            // Hot quadrant: x < 4 && y < 4 cycle-accurate, the rest fast.
            cfg.fast_node = [](unsigned node) {
              return !(node % 8 < 4 && node / 8 < 4);
            };
            return cfg;
          };
          struct HotRun {
            const char* label;
            fabric::FabricEngine engine;
            unsigned threads;
            double wall_seconds = 0;
            fabric::FabricStats stats;
          };
          std::vector<HotRun> hot_runs = {
              {"barrier t1", fabric::FabricEngine::kBarrier, 1},
              {"barrier t4", fabric::FabricEngine::kBarrier, 4},
              {"dataflow t4", fabric::FabricEngine::kDataflow, 4},
          };
          Table hot_t({"run", "wall s", "delivered", "digest", "blocked/wait ms"});
          double wall_barrier4 = 0, wall_dataflow4 = 0;
          for (HotRun& r : hot_runs) {
            const auto fab = make_fabric(hot_cfg(r.engine, r.threads));
            const exp::WallTimer timer;
            fab->run(hot_cycles);
            r.wall_seconds = timer.seconds();
            r.stats = fab->stats();
            add_simulated_units(static_cast<std::uint64_t>(hot_cycles) * topo.nodes());
            double stall_ms = 0;
            for (const fabric::ShardTelemetry& sh : fab->shard_telemetry())
              stall_ms += static_cast<double>(sh.barrier_wait_ns + sh.blocked_on_empty_ns +
                                              sh.blocked_on_full_ns) /
                          1e6;
            char digest[20];
            std::snprintf(digest, sizeof digest, "%016llx",
                          static_cast<unsigned long long>(r.stats.uid_digest));
            hot_t.add_row({r.label, Table::num(r.wall_seconds, 3),
                           Table::integer(static_cast<long long>(r.stats.delivered)),
                           digest, Table::num(stall_ms, 1)});
            const std::string tag = std::string("hotspot ") + r.label;
            ctx.json.runtime_metric(tag + " wall_s", r.wall_seconds);
            ctx.json.runtime_metric(tag + " stall_ms", stall_ms);
            if (r.engine == fabric::FabricEngine::kBarrier && r.threads == 4) {
              wall_barrier4 = r.wall_seconds;
              scheduler_block(ctx.json, "scheduler_barrier", *fab);
            }
            if (r.engine == fabric::FabricEngine::kDataflow && r.threads == 4) {
              wall_dataflow4 = r.wall_seconds;
              scheduler_block(ctx.json, "scheduler_dataflow", *fab);
            }
          }
          const fabric::FabricStats& ref = hot_runs.front().stats;
          for (const HotRun& r : hot_runs) {
            if (r.stats.uid_digest != ref.uid_digest || r.stats.delivered != ref.delivered ||
                r.stats.dropped() != ref.dropped() ||
                r.stats.mean_latency != ref.mean_latency ||
                r.stats.latency.p999() != ref.latency.p999()) {
              std::fprintf(stderr,
                           "FAIL: hotspot fabric diverged on %s "
                           "(digest %016llx vs %016llx)\n",
                           r.label, static_cast<unsigned long long>(r.stats.uid_digest),
                           static_cast<unsigned long long>(ref.uid_digest));
              deterministic = false;
            }
          }
          const double ratio =
              wall_dataflow4 > 0 ? wall_barrier4 / wall_dataflow4 : 0.0;
          ctx.json.runtime_metric("hotspot dataflow_vs_barrier_speedup", ratio);
          std::printf("\nImbalanced load (%s, hot 4x4 quadrant cycle-accurate, rest "
                      "fast):\n\n", topo.describe().c_str());
          hot_t.print();
          std::printf("\nDataflow vs barrier at 4 threads: %.2fx "
                      "(timing-dependent; CI asserts >= 1.5x on real cores)\n", ratio);
          ctx.json.metric("hotspot delivered", static_cast<double>(ref.delivered));
          ctx.json.metric("hotspot dropped", static_cast<double>(ref.dropped()));
          ctx.json.metric("hotspot mean latency", ref.mean_latency);
          ctx.json.metric("hotspot p999 latency",
                          static_cast<double>(ref.latency.p999()));
        }

        if (!deterministic) return 1;
        std::printf("\nDeterminism: delivered-cell digests identical across "
                    "{1, 2, 4} threads, both engines, on every topology.\n");
        return 0;
      });
}
