// E1 -- Section 2.1 / figure 1 / [KaHM87]: FIFO input queueing saturates
// near 2 - sqrt(2) ~ 0.586 of link capacity under uniform traffic, while
// crosspoint / output / shared buffering sustain ~100%.
//
// Regenerates: (a) saturation throughput vs switch size for each
// architecture, (b) the throughput-vs-offered-load series at n = 16.

#include <cmath>
#include <cstdio>
#include <memory>

#include "arch/crosspoint.hpp"
#include "arch/input_queueing.hpp"
#include "arch/output_queueing.hpp"
#include "arch/shared_buffer.hpp"
#include "arch/voq_pim.hpp"
#include "bench_util.hpp"

using namespace pmsb;
using namespace pmsb::bench;

namespace {

constexpr Cycle kSlots = 60000;

double saturation(const std::function<std::unique_ptr<SlotModel>()>& make, unsigned n,
                  std::uint64_t seed) {
  return run_uniform(make, n, 1.0, kSlots, seed).throughput;
}

}  // namespace

int main() {
  print_banner("E1", "saturation throughput by architecture (section 2.1, [KaHM87])");
  BenchJson bj("e1_saturation");

  std::printf("\nSaturation throughput (offered load 1.0, uniform destinations):\n");
  Table sat({"n", "input FIFO", "VOQ+PIM(4)", "output", "shared", "crosspoint",
             "paper: input FIFO"});
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    const double fifo =
        saturation([&] { return std::make_unique<InputQueueingFifo>(n, 0, Rng(10 + n)); }, n, n);
    const double pim = saturation(
        [&] { return std::make_unique<VoqPim>(n, 0, 4, Rng(20 + n)); }, n, n + 1);
    const double outq =
        saturation([&] { return std::make_unique<OutputQueueing>(n, 0); }, n, n + 2);
    const double shared =
        saturation([&] { return std::make_unique<SharedBufferModel>(n, 0); }, n, n + 3);
    const double xp =
        saturation([&] { return std::make_unique<CrosspointQueueing>(n, 0); }, n, n + 4);
    sat.add_row({Table::integer(n), Table::num(fifo), Table::num(pim), Table::num(outq),
                 Table::num(shared), Table::num(xp), n >= 32 ? "~0.586 (2-sqrt 2)" : "> 0.586"});
  }
  sat.print();

  std::printf(
      "\nThroughput vs offered load, n = 16 (head-of-line blocking caps the\n"
      "input-queued curve; the shared buffer tracks the offered load):\n");
  Table series({"offered", "input FIFO", "shared", "crosspoint"});
  const unsigned n = 16;
  SlotRun shared_last;
  for (double load = 0.1; load < 1.05; load += 0.1) {
    const double fifo = run_uniform(
        [&] { return std::make_unique<InputQueueingFifo>(n, 0, Rng(31)); }, n, load, kSlots, 41)
                            .throughput;
    shared_last = run_uniform(
        [&] { return std::make_unique<SharedBufferModel>(n, 0); }, n, load, kSlots, 42);
    const double xp = run_uniform(
        [&] { return std::make_unique<CrosspointQueueing>(n, 0); }, n, load, kSlots, 43)
                          .throughput;
    series.add_row({Table::num(load, 1), Table::num(fifo), Table::num(shared_last.throughput),
                    Table::num(xp)});
  }
  series.print();

  bj.metric("throughput", shared_last.throughput);
  bj.metric("mean_latency", shared_last.mean_latency);
  bj.metric("p99_latency", static_cast<double>(shared_last.p99_latency));
  bj.metric("loss", shared_last.loss);
  bj.add_table("saturation throughput by architecture", sat);
  bj.add_table("throughput vs offered load, n=16", series);
  bj.write();

  std::printf(
      "\nShape check vs paper: FIFO input queueing flattens near 0.59 for large n\n"
      "(paper/[KaHM87]: ~0.586); all other organizations track offered load to ~1.0.\n");
  return 0;
}
