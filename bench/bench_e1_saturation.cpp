// E1 -- Section 2.1 / figure 1 / [KaHM87]: FIFO input queueing saturates
// near 2 - sqrt(2) ~ 0.586 of link capacity under uniform traffic, while
// crosspoint / output / shared buffering sustain ~100%.
//
// Regenerates: (a) saturation throughput vs switch size for each
// architecture, (b) the throughput-vs-offered-load series at n = 16.

#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>

#include "arch/crosspoint.hpp"
#include "arch/input_queueing.hpp"
#include "arch/output_queueing.hpp"
#include "arch/shared_buffer.hpp"
#include "arch/voq_pim.hpp"
#include "bench_util.hpp"

using namespace pmsb;
using namespace pmsb::bench;

namespace {

constexpr Cycle kSlots = 60000;

double saturation(const std::function<std::unique_ptr<SlotModel>()>& make, unsigned n,
                  std::uint64_t seed) {
  return run_uniform(make, n, 1.0, kSlots, seed).throughput;
}

}  // namespace

int main(int argc, char** argv) {
  return pmsb::bench::Main(
      argc, argv, {"E1", "saturation throughput by architecture (section 2.1, [KaHM87])", "e1_saturation"},
      [](pmsb::bench::BenchContext& ctx) {
        BenchJson& bj = ctx.json;
    exp::SweepRunner runner;

    std::printf("\nSaturation throughput (offered load 1.0, uniform destinations):\n");
    Table sat({"n", "input FIFO", "VOQ+PIM(4)", "output", "shared", "crosspoint",
               "paper: input FIFO"});
    // Five architectures per switch size; every point owns its model and Rng,
    // so all 20 runs go through the sweep runner at once.
    const std::vector<unsigned> sizes = {4u, 8u, 16u, 32u};
    std::vector<std::function<double()>> sat_points;
    for (unsigned n : sizes) {
      sat_points.push_back([n] {
        return saturation([&] { return std::make_unique<InputQueueingFifo>(n, 0, Rng(10 + n)); },
                          n, n);
      });
      sat_points.push_back([n] {
        return saturation([&] { return std::make_unique<VoqPim>(n, 0, 4, Rng(20 + n)); }, n,
                          n + 1);
      });
      sat_points.push_back(
          [n] { return saturation([&] { return std::make_unique<OutputQueueing>(n, 0); }, n, n + 2); });
      sat_points.push_back([n] {
        return saturation([&] { return std::make_unique<SharedBufferModel>(n, 0); }, n, n + 3);
      });
      sat_points.push_back([n] {
        return saturation([&] { return std::make_unique<CrosspointQueueing>(n, 0); }, n, n + 4);
      });
    }
    const std::vector<double> sat_r = runner.run(std::move(sat_points));
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const unsigned n = sizes[i];
      const double* v = &sat_r[i * 5];
      sat.add_row({Table::integer(n), Table::num(v[0]), Table::num(v[1]), Table::num(v[2]),
                   Table::num(v[3]), Table::num(v[4]),
                   n >= 32 ? "~0.586 (2-sqrt 2)" : "> 0.586"});
    }
    sat.print();

    std::printf(
        "\nThroughput vs offered load, n = 16 (head-of-line blocking caps the\n"
        "input-queued curve; the shared buffer tracks the offered load):\n");
    Table series({"offered", "input FIFO", "shared", "crosspoint"});
    const unsigned n = 16;
    std::vector<double> loads;
    for (double load = 0.1; load < 1.05; load += 0.1) loads.push_back(load);
    std::vector<std::function<SlotRun()>> series_points;
    for (double load : loads) {
      series_points.push_back([n, load] {
        return run_uniform([&] { return std::make_unique<InputQueueingFifo>(n, 0, Rng(31)); }, n,
                           load, kSlots, 41);
      });
      series_points.push_back([n, load] {
        return run_uniform([&] { return std::make_unique<SharedBufferModel>(n, 0); }, n, load,
                           kSlots, 42);
      });
      series_points.push_back([n, load] {
        return run_uniform([&] { return std::make_unique<CrosspointQueueing>(n, 0); }, n, load,
                           kSlots, 43);
      });
    }
    const std::vector<SlotRun> series_r = runner.run(std::move(series_points));
    for (std::size_t i = 0; i < loads.size(); ++i) {
      series.add_row({Table::num(loads[i], 1), Table::num(series_r[i * 3].throughput),
                      Table::num(series_r[i * 3 + 1].throughput),
                      Table::num(series_r[i * 3 + 2].throughput)});
    }
    series.print();
    const SlotRun shared_last = series_r[(loads.size() - 1) * 3 + 1];

    bj.metric("throughput", shared_last.throughput);
    bj.metric("mean_latency", shared_last.mean_latency);
    bj.metric("p99_latency", static_cast<double>(shared_last.p99_latency));
    bj.metric("loss", shared_last.loss);
    bj.add_table("saturation throughput by architecture", sat);
    bj.add_table("throughput vs offered load, n=16", series);

    std::printf(
        "\nShape check vs paper: FIFO input queueing flattens near 0.59 for large n\n"
        "(paper/[KaHM87]: ~0.586); all other organizations track offered load to ~1.0.\n");
    return 0;
      });
}
