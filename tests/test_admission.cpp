// Tests of the pluggable shared-buffer admission policies: the default
// static cap must be bit-identical to the pre-policy SharedBufferModel,
// Dynamic Threshold must track the free pool, the delay-driven policy must
// bound drain delay by construction, and every policy must conserve cells
// and attribute each drop -- plus the warmup-window throughput fix, pinned
// by a test the old whole-run accounting fails.

#include <gtest/gtest.h>

#include <memory>

#include "arch/admission.hpp"
#include "arch/shared_buffer.hpp"
#include "check/slot_invariants.hpp"

namespace pmsb {
namespace {

// The seed SharedBufferModel::step, reproduced verbatim (modulo the
// step/do_step rename): the reference the default policy must match
// bit-for-bit -- same decisions, same counters, same latency samples.
class SeedSharedBuffer : public SlotModel {
 public:
  SeedSharedBuffer(unsigned n, std::size_t capacity, std::size_t out_queue_limit = 0)
      : SlotModel(n), capacity_(capacity), out_queue_limit_(out_queue_limit), queues_(n) {}

  std::uint64_t resident() const override { return resident_; }
  const char* kind() const override { return "seed shared buffer"; }
  std::uint64_t peak_occupancy() const { return peak_; }

 protected:
  void do_step(Cycle slot,
               const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) override {
    for (unsigned i = 0; i < n_; ++i) {
      if (!arrivals[i]) continue;
      on_injected();
      const unsigned dest = arrivals[i]->dest;
      if ((capacity_ != 0 && resident_ >= capacity_) ||
          (out_queue_limit_ != 0 && queues_[dest].size() >= out_queue_limit_)) {
        on_dropped();
        continue;
      }
      queues_[dest].push_back(SlotCell{slot, i, dest});
      ++resident_;
      peak_ = std::max(peak_, resident_);
    }
    for (unsigned o = 0; o < n_; ++o) {
      if (queues_[o].empty()) continue;
      on_delivered(slot, queues_[o].front());
      queues_[o].pop_front();
      --resident_;
    }
  }

 private:
  std::size_t capacity_;
  std::size_t out_queue_limit_;
  std::vector<std::deque<SlotCell>> queues_;
  std::uint64_t resident_ = 0;
  std::uint64_t peak_ = 0;
};

void expect_same_run(SlotModel& a, SlotModel& b) {
  EXPECT_EQ(a.counts().injected, b.counts().injected);
  EXPECT_EQ(a.counts().delivered, b.counts().delivered);
  EXPECT_EQ(a.counts().dropped, b.counts().dropped);
  EXPECT_EQ(a.resident(), b.resident());
  EXPECT_EQ(a.measured_counts().delivered, b.measured_counts().delivered);
  EXPECT_EQ(a.latency().samples(), b.latency().samples());
  EXPECT_EQ(a.latency().mean(), b.latency().mean());
  EXPECT_EQ(a.latency().p50(), b.latency().p50());
  EXPECT_EQ(a.latency().p99(), b.latency().p99());
  EXPECT_EQ(a.latency().max(), b.latency().max());
}

struct SeedWorkload {
  unsigned n;
  std::size_t capacity;
  std::size_t limit;
  double load;
  std::uint64_t seed;
};

// The E3 buffer-sizing point (16x16 shared, load 0.8) and the E9 equal-loss
// regime (tight pool near saturation), with and without a per-output cap.
const SeedWorkload kSeedWorkloads[] = {
    {16, 86, 0, 0.8, 101},   // E3: the found ~86-cell shared pool.
    {16, 64, 4, 0.8, 101},   // E3 geometry with a hogging cap engaged.
    {16, 51, 0, 0.95, 113},  // E9-style tight pool near saturation.
    {8, 24, 3, 0.9, 707},    // E3 cross-check geometry, capped.
};

TEST(AdmissionStaticCap, BitIdenticalToSeedModel) {
  for (const SeedWorkload& w : kSeedWorkloads) {
    SCOPED_TRACE(testing::Message() << "n=" << w.n << " cap=" << w.capacity
                                    << " limit=" << w.limit << " load=" << w.load);
    SeedSharedBuffer seed(w.n, w.capacity, w.limit);
    SharedBufferModel default_ctor(w.n, w.capacity, w.limit);
    SharedBufferModel policy_ctor(w.n, w.capacity,
                                  std::make_unique<StaticCapPolicy>(w.limit));
    const Cycle slots = 60000;
    for (SlotModel* m : {static_cast<SlotModel*>(&seed),
                         static_cast<SlotModel*>(&default_ctor),
                         static_cast<SlotModel*>(&policy_ctor)}) {
      UniformDest dests(w.n);
      SlotTraffic traffic(w.n, w.load, &dests, Rng(w.seed));
      run_slot_sim(*m, traffic, slots, slots / 5);
    }
    expect_same_run(seed, default_ctor);
    expect_same_run(seed, policy_ctor);
    EXPECT_EQ(seed.peak_occupancy(), default_ctor.peak_occupancy());
    // Static-cap rejections carry the historical output-cap attribution.
    EXPECT_EQ(default_ctor.drop_split().policy_reject, 0u);
    EXPECT_EQ(default_ctor.drop_split().total(), default_ctor.counts().dropped);
  }
}

TEST(AdmissionStaticCap, BitIdenticalOnBurstyTraffic) {
  // Same equivalence under the geometric on/off (bursty) arrival process.
  SeedSharedBuffer seed(16, 64, 6);
  SharedBufferModel model(16, 64, 6);
  const Cycle slots = 60000;
  for (SlotModel* m : {static_cast<SlotModel*>(&seed), static_cast<SlotModel*>(&model)}) {
    UniformDest dests(16);
    SlotTraffic traffic = SlotTraffic::bursty(16, 0.8, 12.0, &dests, Rng(55));
    run_slot_sim(*m, traffic, slots, slots / 5);
  }
  expect_same_run(seed, model);
}

TEST(AdmissionDynamicThreshold, CapTracksFreePoolUnderIncast) {
  // Choudhury-Hahne steady state for one dominant queue: Q settles where
  // Q = alpha (B - Q), i.e. Q = alpha B / (1 + alpha). The hot queue must
  // find that level for different alphas -- the cap follows the free pool,
  // not a constant.
  const unsigned n = 16;
  const std::size_t cap = 64;
  const Cycle slots = 20000;
  struct {
    double alpha;
    double expected_q;
  } cases[] = {{1.0, 32.0}, {0.5, 64.0 / 3.0}, {2.0, 128.0 / 3.0}};
  for (const auto& c : cases) {
    SCOPED_TRACE(testing::Message() << "alpha=" << c.alpha);
    SharedBufferModel m(n, cap, std::make_unique<DynamicThresholdPolicy>(c.alpha));
    IncastDest dests(n, 0, 8);
    SlotTraffic traffic(n, 0.9, &dests, Rng(7));
    run_slot_sim(m, traffic, slots, slots / 5);
    // The hot queue oscillates by +-(arrivals per slot) around the fixed
    // point; allow that plus the integer-threshold quantization.
    EXPECT_NEAR(static_cast<double>(m.queue_len(0)), c.expected_q, 9.0);
    EXPECT_GT(m.drop_split().policy_reject, 0u);
    EXPECT_EQ(m.drop_split().output_cap, 0u);
    // At the settled point the DT relation binds: q ~ alpha x free pool.
    const auto& dt = static_cast<const DynamicThresholdPolicy&>(m.policy());
    EXPECT_NEAR(static_cast<double>(m.queue_len(0)), dt.threshold(m.resident()), 9.0);
  }
}

TEST(AdmissionQueueDelay, BoundsDrainDelay) {
  // The projected drain delay is >= the queue length (the measured drain
  // rate never exceeds one cell per slot), so an admitted cell can never
  // wait longer than max_delay slots: the p99 -- and the max -- are bounded
  // by construction, under the nastiest traffic we have.
  const unsigned n = 16;
  const Cycle max_delay = 12;
  SharedBufferModel m(n, 256, std::make_unique<QueueDelayPolicy>(max_delay));
  HotspotDest dests(n, 0, 0.6);
  SlotTraffic traffic = SlotTraffic::bursty_pareto(n, 0.9, 16.0, 1.5, &dests, Rng(23));
  const Cycle slots = 40000;
  run_slot_sim(m, traffic, slots, slots / 5);
  EXPECT_GT(m.counts().delivered, 0u);
  EXPECT_LE(m.latency().max(), static_cast<std::uint64_t>(max_delay));
  EXPECT_LE(m.latency().p99(), static_cast<std::uint64_t>(max_delay));
  EXPECT_GT(m.drop_split().policy_reject, 0u);  // The bound came from the policy.
}

TEST(AdmissionQueueDelay, IdleOutputStillAdmits) {
  // An empty queue admits regardless of drain-rate history (a never-used
  // output has no measured drain rate at all).
  SharedBufferModel m(4, 16, std::make_unique<QueueDelayPolicy>(4));
  std::vector<std::optional<SlotTraffic::Arrival>> arr(4);
  arr[0] = SlotTraffic::Arrival{2};
  m.step(0, arr);
  EXPECT_EQ(m.counts().dropped, 0u);
  EXPECT_EQ(m.counts().delivered, 1u);
}

TEST(AdmissionPolicies, ConservationAndAttributionHoldPerPolicy) {
  // injected == delivered + dropped + resident at every slot, for every
  // policy, with the drop split and per-output counters consistent --
  // audited by the same SharedBufferAuditor PMSB_CHECK=1 runs wire in.
  const unsigned n = 16;
  const Cycle slots = 30000;
  auto policies = [] {
    std::vector<std::unique_ptr<AdmissionPolicy>> p;
    p.push_back(std::make_unique<StaticCapPolicy>(4));
    p.push_back(std::make_unique<DynamicThresholdPolicy>(1.0));
    p.push_back(std::make_unique<QueueDelayPolicy>(8));
    return p;
  };
  for (auto& policy : policies()) {
    SCOPED_TRACE(policy->name());
    SharedBufferModel m(n, 48, std::move(policy));
    check::SharedBufferAuditor audit(m);
    IncastDest dests(n, 0, 10);
    SlotTraffic traffic(n, 0.85, &dests, Rng(31));
    m.set_warmup(slots / 5);
    for (Cycle s = 0; s < slots; ++s) {
      m.step(s, traffic.step());
      audit.after_step(s);
    }
    const FlowCounts& c = m.counts();
    EXPECT_EQ(c.injected, c.delivered + c.dropped + m.resident());
    EXPECT_GT(c.dropped, 0u);
    EXPECT_EQ(m.drop_split().total(), c.dropped);
    std::uint64_t per_output = 0;
    for (std::uint64_t d : m.drops_by_output()) per_output += d;
    EXPECT_EQ(per_output, c.dropped);
    // Incast drops concentrate on the sink output.
    EXPECT_GT(m.drops_by_output()[0], c.dropped / 2);
  }
}

TEST(AdmissionPolicies, PoolFullAttributedSeparately) {
  // An uncapped pool that overflows attributes every drop to pool_full;
  // the policy never rejected anything.
  SharedBufferModel m(4, 8, std::make_unique<StaticCapPolicy>(0));
  std::vector<std::optional<SlotTraffic::Arrival>> arr(4);
  for (unsigned i = 0; i < 4; ++i) arr[i] = SlotTraffic::Arrival{0};
  for (Cycle s = 0; s < 10; ++s) m.step(s, arr);
  EXPECT_GT(m.counts().dropped, 0u);
  EXPECT_EQ(m.drop_split().pool_full, m.counts().dropped);
  EXPECT_EQ(m.drop_split().output_cap, 0u);
  EXPECT_EQ(m.drop_split().policy_reject, 0u);
}

TEST(SlotModel, MeasuredThroughputExcludesWarmup) {
  // One input at load 1.0 through warmup, silence afterwards: every
  // delivery happens during warmup, so the measured (post-warmup)
  // throughput is exactly zero. The old whole-run accounting divided the
  // 100 warmup deliveries by all 200 slots and reported 0.5.
  SharedBufferModel m(1, 0);
  m.set_warmup(100);
  std::vector<std::optional<SlotTraffic::Arrival>> arrival(1), silence(1);
  arrival[0] = SlotTraffic::Arrival{0};
  for (Cycle s = 0; s < 100; ++s) m.step(s, arrival);
  for (Cycle s = 100; s < 200; ++s) m.step(s, silence);
  EXPECT_EQ(m.counts().delivered, 100u);  // Whole-run counter still totals.
  EXPECT_EQ(m.measured_counts().delivered, 0u);
  EXPECT_DOUBLE_EQ(measured_throughput(m, 200), 0.0);
}

TEST(SlotModel, MeasuredCountsWindowMatchesManualSnapshot) {
  // The internal warmup latch must agree with snapshotting counts() at the
  // warmup boundary by hand (the accounting run_uniform always did).
  SharedBufferModel latched(16, 48, 4);
  SharedBufferModel manual(16, 48, 4);
  const Cycle slots = 20000, warmup = 5000;
  FlowCounts at_warmup;
  {
    UniformDest dests(16);
    SlotTraffic traffic(16, 0.9, &dests, Rng(77));
    latched.set_warmup(warmup);
    for (Cycle s = 0; s < slots; ++s) latched.step(s, traffic.step());
  }
  {
    UniformDest dests(16);
    SlotTraffic traffic(16, 0.9, &dests, Rng(77));
    manual.set_warmup(warmup);
    for (Cycle s = 0; s < warmup; ++s) manual.step(s, traffic.step());
    at_warmup = manual.counts();
    for (Cycle s = warmup; s < slots; ++s) manual.step(s, traffic.step());
  }
  EXPECT_EQ(latched.measured_counts().injected, manual.counts().injected - at_warmup.injected);
  EXPECT_EQ(latched.measured_counts().delivered,
            manual.counts().delivered - at_warmup.delivered);
  EXPECT_EQ(latched.measured_counts().dropped, manual.counts().dropped - at_warmup.dropped);
  EXPECT_GT(latched.measured_counts().delivered, 0u);
}

TEST(ParetoTraffic, HitsTargetLoadAndIsHeavyTailed) {
  const unsigned n = 8;
  UniformDest dests(n);
  SlotTraffic traffic = SlotTraffic::bursty_pareto(n, 0.6, 16.0, 1.5, &dests, Rng(5));
  const Cycle slots = 200000;
  for (Cycle s = 0; s < slots; ++s) traffic.step();
  const double rate = static_cast<double>(traffic.arrivals_so_far()) /
                      (static_cast<double>(slots) * n);
  EXPECT_NEAR(rate, 0.6, 0.05);
}

TEST(ParetoTraffic, BurstsDwarfGeometricTail) {
  // Track the longest uninterrupted single-destination run on one input:
  // shape 1.5 bursts must reach far beyond the geometric model's tail at
  // the same mean.
  auto longest_run = [](SlotTraffic& t, Cycle slots) {
    std::uint64_t longest = 0, run = 0;
    bool prev = false;
    unsigned prev_dest = 0;
    for (Cycle s = 0; s < slots; ++s) {
      const auto& arr = t.step();
      if (arr[0] && (!prev || arr[0]->dest == prev_dest)) {
        ++run;
      } else {
        run = arr[0] ? 1 : 0;
      }
      if (arr[0]) prev_dest = arr[0]->dest;
      prev = arr[0].has_value();
      longest = std::max(longest, run);
    }
    return longest;
  };
  UniformDest dests(8);
  SlotTraffic pareto = SlotTraffic::bursty_pareto(8, 0.5, 8.0, 1.5, &dests, Rng(9));
  SlotTraffic geo = SlotTraffic::bursty(8, 0.5, 8.0, &dests, Rng(9));
  const Cycle slots = 300000;
  const std::uint64_t lp = longest_run(pareto, slots);
  const std::uint64_t lg = longest_run(geo, slots);
  EXPECT_GT(lp, 2 * lg);
}

}  // namespace
}  // namespace pmsb
