// Unit tests: common utilities, RNG, and the cell codec.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/cell.hpp"
#include "common/rng.hpp"
#include "common/util.hpp"

namespace pmsb {
namespace {

TEST(Util, BitsFor) {
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 1u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(4), 2u);
  EXPECT_EQ(bits_for(5), 3u);
  EXPECT_EQ(bits_for(8), 3u);
  EXPECT_EQ(bits_for(9), 4u);
  EXPECT_EQ(bits_for(256), 8u);
  EXPECT_EQ(bits_for(257), 9u);
}

TEST(Util, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(8), 0xFFu);
  EXPECT_EQ(low_mask(16), 0xFFFFu);
  EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(Util, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(12));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(13), 13u);
}

TEST(Rng, NextBelowUniform) {
  Rng r(11);
  std::vector<int> counts(8, 0);
  const int kTrials = 80000;
  for (int i = 0; i < kTrials; ++i) ++counts[r.next_below(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, kTrials / 8, 5 * std::sqrt(kTrials / 8.0));
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliMean) {
  Rng r(5);
  int hits = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += r.next_bool(0.3);
  EXPECT_NEAR(hits / double(kTrials), 0.3, 0.01);
}

TEST(Rng, BernoulliEdges) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, GeometricMean) {
  Rng r(9);
  const double p = 0.2;
  double sum = 0;
  const int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) sum += static_cast<double>(r.next_geometric(p));
  EXPECT_NEAR(sum / kTrials, (1 - p) / p, 0.05);
}

TEST(Rng, GeometricP1IsZero) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.next_geometric(1.0), 0u);
}

TEST(Rng, SplitIndependent) {
  Rng a(13);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Mix64, Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (int bit = 0; bit < 64; ++bit) {
    total += __builtin_popcountll(mix64(12345) ^ mix64(12345 ^ (1ULL << bit)));
  }
  EXPECT_NEAR(total / 64.0, 32.0, 6.0);
}

class CellCodec : public ::testing::Test {
 protected:
  CellFormat fmt{16, 3, 16};
};

TEST_F(CellCodec, HeadEncodesDest) {
  for (unsigned dest = 0; dest < 8; ++dest) {
    const Word head = cell_word(99, dest, 0, fmt);
    EXPECT_EQ(decode_dest(head, fmt), dest);
  }
}

TEST_F(CellCodec, HeadCarriesTag) {
  const Word head = cell_word(1234, 5, 0, fmt);
  EXPECT_EQ(decode_tag(head, fmt), mix64(1234) & low_mask(fmt.tag_bits()));
}

TEST_F(CellCodec, WordsFitWidth) {
  const auto words = make_cell_words(777, 3, fmt);
  ASSERT_EQ(words.size(), fmt.length_words);
  for (Word w : words) EXPECT_EQ(w & ~low_mask(fmt.word_bits), 0u);
}

TEST_F(CellCodec, MatchesItself) {
  const auto words = make_cell_words(42, 1, fmt);
  EXPECT_TRUE(cell_matches(words, 42, 1, fmt));
}

TEST_F(CellCodec, DetectsWrongId) {
  const auto words = make_cell_words(42, 1, fmt);
  EXPECT_FALSE(cell_matches(words, 43, 1, fmt));
}

TEST_F(CellCodec, DetectsCorruptedWord) {
  auto words = make_cell_words(42, 1, fmt);
  words[7] ^= 1;
  EXPECT_FALSE(cell_matches(words, 42, 1, fmt));
}

TEST_F(CellCodec, DetectsSwappedWords) {
  auto words = make_cell_words(42, 1, fmt);
  std::swap(words[3], words[4]);
  EXPECT_FALSE(cell_matches(words, 42, 1, fmt));
}

TEST_F(CellCodec, DetectsWrongLength) {
  auto words = make_cell_words(42, 1, fmt);
  words.pop_back();
  EXPECT_FALSE(cell_matches(words, 42, 1, fmt));
}

TEST_F(CellCodec, DistinctCellsDistinctPayloads) {
  std::set<std::vector<Word>> seen;
  for (std::uint64_t id = 0; id < 100; ++id) seen.insert(make_cell_words(id, 2, fmt));
  EXPECT_EQ(seen.size(), 100u);
}

TEST_F(CellCodec, NarrowWordWidth) {
  // Telegraphos I uses 8-bit words with 2 dest bits.
  CellFormat narrow{8, 2, 8};
  const auto words = make_cell_words(5, 3, narrow);
  EXPECT_EQ(decode_dest(words[0], narrow), 3u);
  for (Word w : words) EXPECT_LE(w, 0xFFu);
}

TEST(FlitStruct, Equality) {
  EXPECT_EQ((Flit{true, false, 7}), (Flit{true, false, 7}));
  EXPECT_FALSE((Flit{true, false, 7}) == (Flit{true, true, 7}));
}

}  // namespace
}  // namespace pmsb
