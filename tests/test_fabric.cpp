// Tests of the sharded fabric engine (src/fabric/) and of the
// multi-subscriber event API it rides on (core/event_hub.hpp).
//
// The load-bearing property is the determinism contract: a fabric run must
// produce bit-identical delivered-cell digests, drop counts, latencies and
// metric samples at ANY thread count. The conservative round scheme
// (lookahead = link_pipe_stages) is what makes that hold; these tests pin
// it with 1-vs-2-vs-4-thread comparisons on real topologies.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "check/invariants.hpp"
#include "core/fast_switch.hpp"
#include "core/switch.hpp"
#include "core/testbench.hpp"
#include "fabric/channel.hpp"
#include "fabric/fabric.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "sim/barrier.hpp"

namespace pmsb {
namespace {

/// All fabrics go through the one public construction path,
/// fabric::Fabric::build(topology, config).
std::unique_ptr<fabric::Fabric> make_fabric(const fabric::FabricConfig& cfg) {
  return fabric::Fabric::build(cfg.topo, cfg);
}

// ---------------------------------------------------------------------------
// EventHub: ordering, RAII, and the deprecated shim.

TEST(EventHub, FanOutInSubscriptionOrder) {
  EventHub hub;
  std::vector<int> order;
  SwitchEvents a, b, c;
  a.on_head = [&order](unsigned, Cycle, unsigned) { order.push_back(1); };
  b.on_head = [&order](unsigned, Cycle, unsigned) { order.push_back(2); };
  c.on_head = [&order](unsigned, Cycle, unsigned) { order.push_back(3); };
  const Subscription sa = hub.subscribe(std::move(a));
  const Subscription sb = hub.subscribe(std::move(b));
  const Subscription sc = hub.subscribe(std::move(c));
  hub.head(0, 0, 0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventHub, SubscriptionRaiiUnsubscribes) {
  EventHub hub;
  int hits = 0;
  {
    SwitchEvents ev;
    ev.on_accept = [&hits](unsigned, Cycle, Cycle) { ++hits; };
    const Subscription s = hub.subscribe(std::move(ev));
    EXPECT_EQ(hub.subscriber_count(), 1u);
    hub.accept(0, 0, 0);
    EXPECT_EQ(hits, 1);
  }
  EXPECT_EQ(hub.subscriber_count(), 0u);
  hub.accept(0, 0, 0);
  EXPECT_EQ(hits, 1);  // Dead subscription no longer fires.
}

TEST(EventHub, MiddleUnsubscribePreservesOrder) {
  EventHub hub;
  std::vector<int> order;
  SwitchEvents a, b, c;
  a.on_drop = [&order](unsigned, Cycle, DropReason) { order.push_back(1); };
  b.on_drop = [&order](unsigned, Cycle, DropReason) { order.push_back(2); };
  c.on_drop = [&order](unsigned, Cycle, DropReason) { order.push_back(3); };
  const Subscription sa = hub.subscribe(std::move(a));
  Subscription sb = hub.subscribe(std::move(b));
  const Subscription sc = hub.subscribe(std::move(c));
  sb.reset();
  hub.drop(0, 0, DropReason::kNoSlot);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventHub, SubscriptionOutlivingHubIsSafe) {
  Subscription s;
  {
    EventHub hub;
    SwitchEvents ev;
    ev.on_head = [](unsigned, Cycle, unsigned) {};
    s = hub.subscribe(std::move(ev));
    EXPECT_TRUE(s.active());
  }
  EXPECT_FALSE(s.active());
  s.reset();  // Must not touch the dead hub.
}

// Two independent subscribers on a live switch see the SAME event stream, in
// subscription order, and one resetting mid-run does not disturb the other.
// (This descends from the deleted set_events() shim-equivalence test: with
// the shim gone, subscribe() is the only attachment path, so the property
// worth pinning is multi-subscriber stream identity.)
TEST(EventHub, SubscribersSeeIdenticalStreamsFromLiveSwitch) {
  struct Recorder {
    std::vector<std::string> log;
    SwitchEvents events() {
      SwitchEvents ev;
      ev.on_head = [this](unsigned i, Cycle a0, unsigned d) {
        log.push_back("h" + std::to_string(i) + "," + std::to_string(a0) + "," +
                      std::to_string(d));
      };
      ev.on_accept = [this](unsigned i, Cycle a0, Cycle t0) {
        log.push_back("a" + std::to_string(i) + "," + std::to_string(a0) + "," +
                      std::to_string(t0));
      };
      ev.on_drop = [this](unsigned i, Cycle a0, DropReason w) {
        log.push_back("d" + std::to_string(i) + "," + std::to_string(a0) + "," +
                      std::to_string(static_cast<int>(w)));
      };
      ev.on_read_grant = [this](unsigned o, unsigned i, Cycle tr, Cycle, Cycle, bool) {
        log.push_back("r" + std::to_string(o) + "," + std::to_string(i) + "," +
                      std::to_string(tr));
      };
      return ev;
    }
  };

  const SwitchConfig cfg = SwitchConfig::for_ports(4);
  TrafficSpec spec;
  spec.load = 0.9;
  spec.seed = 7;

  Recorder first, second, ephemeral;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec, false);
  const Subscription sa = tb.dut().events().subscribe(first.events());
  Subscription se = tb.dut().events().subscribe(ephemeral.events());
  const Subscription sb = tb.dut().events().subscribe(second.events());
  EXPECT_EQ(tb.dut().events().subscriber_count(), 3u);

  tb.run(300);
  se.reset();  // Dropping the middle subscriber must not disturb the others.
  tb.run(300);

  ASSERT_FALSE(first.log.empty());
  EXPECT_EQ(first.log, second.log);
  // The ephemeral subscriber saw exactly the first segment's prefix.
  ASSERT_LE(ephemeral.log.size(), first.log.size());
  EXPECT_TRUE(std::equal(ephemeral.log.begin(), ephemeral.log.end(), first.log.begin()));
}

// Scoreboard + InvariantChecker + an extra user subscriber on one switch:
// the redesign's whole point. All three observe the same run without
// displacing each other.
TEST(EventHub, ScoreboardCheckerAndUserTapCoexist) {
  const SwitchConfig cfg = SwitchConfig::for_ports(4);
  TrafficSpec spec;
  spec.load = 0.8;
  spec.seed = 11;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec, /*scoreboard=*/true);

  check::InvariantChecker checker;
  checker.attach(tb.dut(), tb.engine());

  std::uint64_t taps = 0;
  SwitchEvents ev;
  ev.on_accept = [&taps](unsigned, Cycle, Cycle) { ++taps; };
  const Subscription s = tb.dut().events().subscribe(std::move(ev));
  EXPECT_GE(tb.dut().events().subscriber_count(), 3u);

  tb.run(800);
  EXPECT_TRUE(checker.ok()) << checker.total_violations();
  EXPECT_EQ(taps, tb.dut().stats().accepted);  // Tap saw every accept...
  EXPECT_TRUE(tb.scoreboard().ok());           // ...and the scoreboard still verifies.
  EXPECT_GT(tb.scoreboard().delivered(), 0u);
}

// ---------------------------------------------------------------------------
// Channel timing.

TEST(FabricChannel, ReproducesLinkPipelineDelay) {
  fabric::Channel ch(3);  // S = 3 -> total wire delay S + 1 (bridge re-drive).
  for (Cycle t = 0; t < 20; ++t) {
    ch.write(t, Flit{true, false, static_cast<Word>(100 + t)});
    const Flit& f = ch.read(t);
    if (t < 3) {
      EXPECT_FALSE(f.valid) << t;
    } else {
      EXPECT_EQ(f.data, static_cast<Word>(100 + t - 3)) << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Fabric: validation, conservation, determinism.

fabric::FabricConfig small_torus(unsigned threads) {
  fabric::FabricConfig cfg;
  cfg.topo = net::Topology{net::TopologyKind::kTorus2D, 4, 4};
  cfg.node = SwitchConfig::for_ports(4);
  cfg.link_pipe_stages = 3;
  cfg.load = 0.6;
  cfg.seed = 42;
  cfg.threads = threads;
  return cfg;
}

TEST(FabricConfigCheck, RejectsBadGeometry) {
  fabric::FabricConfig cfg = small_torus(1);
  cfg.node.n_ports = 2;  // Too few ports for a 2D torus.
  cfg.node.cell_words = 4;
  cfg.node.capacity_segments = 4 * 32;
  EXPECT_TRUE(cfg.check().has(ConfigIssue::Code::kBadPorts));

  cfg = small_torus(1);
  cfg.link_pipe_stages = 0;
  EXPECT_TRUE(cfg.check().has(ConfigIssue::Code::kBadLinkStages));

  cfg = small_torus(1);
  cfg.load = 1.5;
  EXPECT_TRUE(cfg.check().has(ConfigIssue::Code::kBadLoad));

  cfg = small_torus(1);
  cfg.topo = net::Topology{net::TopologyKind::kRing, 8, 2};
  EXPECT_TRUE(cfg.check().has(ConfigIssue::Code::kBadTopology));
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Fabric, DeliversAndConserves) {
  const auto fab = make_fabric(small_torus(1));
  fab->run(2000);
  const fabric::FabricStats st = fab->stats();
  EXPECT_EQ(st.cycles, 2000);
  EXPECT_GT(st.injected, 0u);
  EXPECT_GT(st.delivered, 0u);
  EXPECT_EQ(st.payload_errors, 0u);  // End-to-end payload integrity.
  EXPECT_EQ(st.injected, st.delivered + st.dropped() + st.backlog + st.in_network);
  // Minimum possible latency: one hop over a D+1-cycle link, plus cell
  // serialization and switch transit.
  EXPECT_GE(st.min_latency, static_cast<Cycle>(fab->config().link_pipe_stages + 1));
  EXPECT_GT(st.mean_latency, 0.0);
  // Every delivered cell took at least one link.
  ASSERT_GE(st.by_hops.size(), 2u);
  EXPECT_EQ(st.by_hops[0].cells, 0u);
}

TEST(Fabric, HopAccountingMatchesTopology) {
  const auto fab = make_fabric(small_torus(1));
  fab->run(1500);
  const fabric::FabricStats st = fab->stats();
  // 4x4 torus diameter is 4: no route is longer.
  EXPECT_LE(st.by_hops.size(), 5u);
  std::uint64_t sum = 0;
  for (const auto& row : st.by_hops) sum += row.cells;
  EXPECT_EQ(sum, st.delivered);
}

// The headline contract: bit-identical results at any thread count.
TEST(Fabric, DeterministicAcrossThreadCounts) {
  const auto f1 = make_fabric(small_torus(1));
  const auto f2 = make_fabric(small_torus(2));
  const auto f4 = make_fabric(small_torus(4));
  ASSERT_EQ(f1->threads(), 1u);
  ASSERT_EQ(f2->threads(), 2u);
  ASSERT_EQ(f4->threads(), 4u);
  f1->run(2000);
  f2->run(2000);
  f4->run(2000);
  const fabric::FabricStats a = f1->stats();
  const fabric::FabricStats b = f2->stats();
  const fabric::FabricStats c = f4->stats();

  EXPECT_EQ(a.uid_digest, b.uid_digest);
  EXPECT_EQ(a.uid_digest, c.uid_digest);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, c.delivered);
  EXPECT_EQ(a.dropped_no_addr, b.dropped_no_addr);
  EXPECT_EQ(a.dropped_no_slot, b.dropped_no_slot);
  EXPECT_EQ(a.dropped_out_limit, b.dropped_out_limit);
  EXPECT_EQ(a.backlog, c.backlog);
  EXPECT_EQ(a.in_network, c.in_network);
  EXPECT_DOUBLE_EQ(a.mean_latency, b.mean_latency);
  EXPECT_DOUBLE_EQ(a.mean_latency, c.mean_latency);
  EXPECT_EQ(a.min_latency, c.min_latency);
  EXPECT_EQ(a.max_latency, c.max_latency);
  ASSERT_EQ(a.by_hops.size(), c.by_hops.size());
  for (std::size_t h = 0; h < a.by_hops.size(); ++h) {
    EXPECT_EQ(a.by_hops[h].cells, b.by_hops[h].cells) << h;
    EXPECT_EQ(a.by_hops[h].cells, c.by_hops[h].cells) << h;
    EXPECT_DOUBLE_EQ(a.by_hops[h].mean_latency, c.by_hops[h].mean_latency) << h;
  }

  // Per-node switch statistics agree too (the partition is invisible).
  for (unsigned i = 0; i < f1->nodes(); ++i) {
    EXPECT_EQ(f1->node_switch(i).stats().accepted, f4->node_switch(i).stats().accepted) << i;
    EXPECT_EQ(f1->node_switch(i).stats().read_grants, f4->node_switch(i).stats().read_grants)
        << i;
  }
}

TEST(Fabric, DeterministicOnRing) {
  fabric::FabricConfig cfg;
  cfg.topo = net::Topology{net::TopologyKind::kRing, 8, 1};
  cfg.node = SwitchConfig::for_ports(2);
  cfg.link_pipe_stages = 2;
  cfg.load = 0.4;
  cfg.seed = 5;
  cfg.threads = 1;
  const auto f1 = make_fabric(cfg);
  cfg.threads = 3;  // Uneven shard sizes on purpose.
  const auto f3 = make_fabric(cfg);
  f1->run(1600);
  f3->run(1600);
  EXPECT_EQ(f1->stats().uid_digest, f3->stats().uid_digest);
  EXPECT_EQ(f1->stats().delivered, f3->stats().delivered);
  EXPECT_EQ(f1->stats().payload_errors, 0u);
  EXPECT_GT(f1->stats().delivered, 0u);
}

// Metric samples (taken at round barriers) follow the same contract: same
// cadence, same values, any thread count.
TEST(Fabric, MetricsSamplingIsThreadCountInvariant) {
  obs::MetricsRegistry m1, m4;
  const auto f1 = make_fabric(small_torus(1));
  const auto f4 = make_fabric(small_torus(4));
  f1->register_metrics(&m1);
  f4->register_metrics(&m4);
  f1->run(1200);
  f4->run(1200);
  for (const char* g : {"fabric.injected", "fabric.delivered", "fabric.dropped",
                        "fabric.backlog", "fabric.in_network", "fabric.latency.mean"}) {
    const obs::GaugeStats* a = m1.find_gauge(g);
    const obs::GaugeStats* b = m4.find_gauge(g);
    ASSERT_NE(a, nullptr) << g;
    ASSERT_NE(b, nullptr) << g;
    EXPECT_EQ(a->samples, b->samples) << g;
    EXPECT_DOUBLE_EQ(a->last, b->last) << g;
    EXPECT_DOUBLE_EQ(a->min, b->min) << g;
    EXPECT_DOUBLE_EQ(a->max, b->max) << g;
    EXPECT_DOUBLE_EQ(a->sum, b->sum) << g;
  }
  const obs::GaugeStats* delivered = m1.find_gauge("fabric.delivered");
  EXPECT_EQ(delivered->samples,
            (1200 + f1->config().link_pipe_stages - 1) / f1->config().link_pipe_stages);
  EXPECT_DOUBLE_EQ(delivered->last, static_cast<double>(f1->stats().delivered));
}

// Multiple run() calls continue the same simulation (rounds restart cleanly
// at the boundary).
TEST(Fabric, SplitRunMatchesSingleRun) {
  const auto whole = make_fabric(small_torus(2));
  const auto split = make_fabric(small_torus(2));
  whole->run(1400);
  split->run(500);
  split->run(137);  // Deliberately not a multiple of the lookahead.
  split->run(763);
  EXPECT_EQ(whole->stats().uid_digest, split->stats().uid_digest);
  EXPECT_EQ(whole->stats().delivered, split->stats().delivered);
  EXPECT_EQ(whole->now(), split->now());
}

// ---------------------------------------------------------------------------
// SpinBarrier under oversubscription (regression: the pure spin-then-yield
// waiter livelocked CI runners when parties > hardware threads; the sleep
// tier in sim/barrier.hpp is what this pins).

TEST(SpinBarrierTest, SurvivesMoreThreadsThanCores) {
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const unsigned parties = cores * 2 + 2;  // Guaranteed oversubscribed.
  constexpr int kEpisodes = 200;
  std::atomic<int> completions{0};
  SpinBarrier barrier(parties, [&completions] { ++completions; });

  std::vector<std::thread> threads;
  threads.reserve(parties);
  for (unsigned p = 0; p < parties; ++p) {
    threads.emplace_back([&barrier] {
      for (int e = 0; e < kEpisodes; ++e) barrier.arrive_and_wait();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(completions.load(), kEpisodes);  // Exactly one completion/episode.
}

// Regression for the wake-up path: a straggler forces every other party all
// the way into the condvar park tier, and the completion must notify them
// out of it (the old sleep-polling waiter burned 50us per wake; the condvar
// waiter is also the only reason sleepers_ accounting exists).
TEST(SpinBarrierTest, ParkedWaitersWakeOnCompletion) {
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const unsigned parties = cores * 2 + 2;
  constexpr int kEpisodes = 50;
  std::atomic<int> completions{0};
  SpinBarrier barrier(parties, [&completions] { ++completions; });

  std::vector<std::thread> threads;
  threads.reserve(parties);
  for (unsigned p = 0; p < parties; ++p) {
    threads.emplace_back([&barrier, p] {
      for (int e = 0; e < kEpisodes; ++e) {
        // Party 0 straggles past everyone's spin budget, so the rest park.
        if (p == 0 && e % 8 == 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(completions.load(), kEpisodes);
  EXPECT_EQ(barrier.sleepers(), 0u);  // Every parked waiter was released.
}

// The fabric itself must stay deterministic when its shard count exceeds the
// machine's core count (same livelock regression, end to end).
TEST(Fabric, DeterministicWhenOversubscribed) {
  fabric::FabricConfig cfg = small_torus(1);
  const auto f1 = make_fabric(cfg);
  cfg.threads = std::max(4u, std::thread::hardware_concurrency() + 2);
  const auto fmany = make_fabric(cfg);
  EXPECT_GE(fmany->threads(), 4u);
  f1->run(1200);
  fmany->run(1200);
  EXPECT_EQ(f1->stats().uid_digest, fmany->stats().uid_digest);
  EXPECT_EQ(f1->stats().delivered, fmany->stats().delivered);
  EXPECT_EQ(f1->stats().dropped(), fmany->stats().dropped());
}

// ---------------------------------------------------------------------------
// Idle skipping: bit-identical results with skipping forced on vs off.

void expect_same_stats(const fabric::FabricStats& a, const fabric::FabricStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.payload_errors, b.payload_errors);
  EXPECT_EQ(a.dropped_no_addr, b.dropped_no_addr);
  EXPECT_EQ(a.dropped_no_slot, b.dropped_no_slot);
  EXPECT_EQ(a.dropped_out_limit, b.dropped_out_limit);
  EXPECT_EQ(a.backlog, b.backlog);
  EXPECT_EQ(a.in_network, b.in_network);
  EXPECT_EQ(a.uid_digest, b.uid_digest);
  EXPECT_DOUBLE_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.min_latency, b.min_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  ASSERT_EQ(a.by_hops.size(), b.by_hops.size());
  for (std::size_t h = 0; h < a.by_hops.size(); ++h) {
    EXPECT_EQ(a.by_hops[h].cells, b.by_hops[h].cells) << h;
    EXPECT_DOUBLE_EQ(a.by_hops[h].mean_latency, b.by_hops[h].mean_latency) << h;
  }
}

fabric::FabricConfig low_load_torus(int idle_skip, unsigned threads) {
  fabric::FabricConfig cfg;
  cfg.topo = net::Topology{net::TopologyKind::kTorus2D, 4, 4};
  cfg.node = SwitchConfig::for_ports(4);
  cfg.link_pipe_stages = 3;
  cfg.load = 0.002;  // Sparse arrivals -> long skippable gaps.
  cfg.seed = 99;
  cfg.threads = threads;
  cfg.idle_skip = idle_skip;
  return cfg;
}

TEST(FabricIdleSkip, EquivalentToSteppedRunSingleThread) {
  const auto stepped = make_fabric(low_load_torus(/*idle_skip=*/0, 1));
  const auto skipped = make_fabric(low_load_torus(/*idle_skip=*/1, 1));
  obs::MetricsRegistry ms, mk;
  stepped->register_metrics(&ms);
  skipped->register_metrics(&mk);
  stepped->run(30000);
  skipped->run(30000);
  const fabric::FabricStats a = stepped->stats();
  EXPECT_GT(a.delivered, 0u);  // The run is not vacuous.
  expect_same_stats(a, skipped->stats());
  // Metric sampling cadence and values survive the skips too.
  for (const char* g : {"fabric.injected", "fabric.delivered", "fabric.dropped",
                        "fabric.backlog", "fabric.in_network", "fabric.latency.mean"}) {
    const obs::GaugeStats* x = ms.find_gauge(g);
    const obs::GaugeStats* y = mk.find_gauge(g);
    ASSERT_NE(x, nullptr) << g;
    ASSERT_NE(y, nullptr) << g;
    EXPECT_EQ(x->samples, y->samples) << g;
    EXPECT_DOUBLE_EQ(x->last, y->last) << g;
    EXPECT_DOUBLE_EQ(x->min, y->min) << g;
    EXPECT_DOUBLE_EQ(x->max, y->max) << g;
    EXPECT_DOUBLE_EQ(x->sum, y->sum) << g;
  }
}

TEST(FabricIdleSkip, EquivalentToSteppedRunSharded) {
  const auto stepped = make_fabric(low_load_torus(/*idle_skip=*/0, 2));
  const auto skipped = make_fabric(low_load_torus(/*idle_skip=*/1, 2));
  stepped->run(20000);
  skipped->run(20000);
  EXPECT_GT(stepped->stats().delivered, 0u);
  expect_same_stats(stepped->stats(), skipped->stats());
}

TEST(FabricIdleSkip, SplitRunsStillAlign) {
  const auto whole = make_fabric(low_load_torus(/*idle_skip=*/1, 1));
  const auto split = make_fabric(low_load_torus(/*idle_skip=*/1, 1));
  whole->run(9000);
  split->run(4100);  // Boundaries deliberately off the round grid.
  split->run(4900);
  EXPECT_EQ(whole->now(), split->now());
  expect_same_stats(whole->stats(), split->stats());
}

// ---------------------------------------------------------------------------
// Mixed cycle-accurate / fast-model fabrics.

fabric::FabricConfig mixed_model_torus(unsigned threads) {
  fabric::FabricConfig cfg = small_torus(threads);
  // Checkerboard: even nodes exact, odd nodes behavioural.
  cfg.fast_node = [](unsigned node) { return node % 2 == 1; };
  return cfg;
}

// ---------------------------------------------------------------------------
// Observability: per-node flight recorders, merged HDR latency, telemetry.

TEST(FabricFlight, MergedRecorderIsThreadCountInvariant) {
  auto cfg = [](unsigned threads) {
    fabric::FabricConfig c = small_torus(threads);
    c.flight_recorder = true;
    c.flight_warmup = 200;
    return c;
  };
  const auto f1 = make_fabric(cfg(1));
  const auto f4 = make_fabric(cfg(4));
  f1->run(2000);
  f4->run(2000);
  const obs::FlightRecorder a = f1->merged_flight();
  const obs::FlightRecorder b = f4->merged_flight();
  EXPECT_GT(a.completed(), 0u);
  EXPECT_EQ(a.completed(), b.completed());
  EXPECT_EQ(a.heads(), b.heads());
  for (unsigned s = 0; s < obs::kFlightStageCount; ++s) {
    const auto st = static_cast<obs::FlightStage>(s);
    EXPECT_EQ(a.stage(st).samples(), b.stage(st).samples());
    EXPECT_EQ(a.stage(st).sum(), b.stage(st).sum());
    EXPECT_EQ(a.stage(st).p50(), b.stage(st).p50());
    EXPECT_EQ(a.stage(st).p999(), b.stage(st).p999());
  }
  // The additive decomposition survives the merge.
  EXPECT_EQ(a.stage(obs::FlightStage::kTotal).sum(),
            a.stage(obs::FlightStage::kWaitGrant).sum() +
                a.stage(obs::FlightStage::kBuffer).sum() +
                a.stage(obs::FlightStage::kSerialize).sum());
  // Per-node access works and recorders exist for every node.
  for (unsigned i = 0; i < f1->nodes(); ++i) EXPECT_NE(f1->node_flight(i), nullptr);
}

TEST(FabricFlight, DisabledByDefault) {
  const auto fab = make_fabric(small_torus(1));
  fab->run(500);
  EXPECT_EQ(fab->node_flight(0), nullptr);
}

TEST(Fabric, LatencyHistogramMatchesScalarStats) {
  const auto fab = make_fabric(small_torus(2));
  fab->run(2000);
  const fabric::FabricStats st = fab->stats();
  ASSERT_GT(st.delivered, 0u);
  EXPECT_EQ(st.latency.samples(), st.delivered);
  EXPECT_EQ(st.latency.min(), static_cast<std::uint64_t>(st.min_latency));
  EXPECT_EQ(st.latency.max(), static_cast<std::uint64_t>(st.max_latency));
  EXPECT_NEAR(st.latency.mean(), st.mean_latency, 1e-9);
  EXPECT_GE(st.latency.p999(), st.latency.p50());
}

TEST(Fabric, ShardTelemetryAccountsRoundsAndRelays) {
  fabric::FabricConfig cfg = small_torus(2);
  // Round/relay accounting below is barrier-engine-specific (the dataflow
  // engine reports per-task chunks instead of lockstep rounds).
  cfg.engine = fabric::FabricEngine::kBarrier;
  const auto fab = make_fabric(cfg);
  fab->run(1200);  // 400 rounds of D = 3.
  const std::vector<fabric::ShardTelemetry> tel = fab->shard_telemetry();
  ASSERT_EQ(tel.size(), 2u);
  unsigned nodes = 0;
  std::uint64_t relayed = 0;
  for (const fabric::ShardTelemetry& sh : tel) {
    EXPECT_EQ(sh.shard, static_cast<unsigned>(&sh - tel.data()));
    EXPECT_GT(sh.nodes, 0u);
    // No idle skips at load 0.6: every shard stepped every round.
    EXPECT_EQ(sh.rounds, 1200u / 3u);
    EXPECT_GT(sh.active_ns, 0u);
    nodes += sh.nodes;
    relayed += sh.cells_relayed;
  }
  EXPECT_EQ(nodes, fab->nodes());
  EXPECT_GT(relayed, 0u);  // Multi-hop routes relay through bridges.
  EXPECT_EQ(fab->rounds_skipped(), 0u);

  obs::PerfettoTrace tr;
  fab->telemetry_to_perfetto(tr);
  // Two worker tracks, each: thread_name metadata + active + barrier_wait
  // slices; plus the stall counter track: metadata + one sample per shard.
  EXPECT_EQ(tr.event_count(), 2u * 3u + 1u + 2u);
  const std::string doc = tr.json();
  EXPECT_NE(doc.find("fabric worker 0"), std::string::npos);
  EXPECT_NE(doc.find("fabric worker 1"), std::string::npos);
  EXPECT_NE(doc.find("\"barrier_wait\""), std::string::npos);
  EXPECT_NE(doc.find("fabric shard stalls"), std::string::npos);
}

TEST(FabricFastModel, MixedFabricDeliversAndConserves) {
  const auto fab = make_fabric(mixed_model_torus(1));
  fab->run(2000);
  const fabric::FabricStats st = fab->stats();
  EXPECT_GT(st.delivered, 0u);
  EXPECT_EQ(st.payload_errors, 0u);
  EXPECT_EQ(st.injected, st.delivered + st.dropped() + st.backlog + st.in_network);
  EXPECT_TRUE(fab->node_is_fast(1));
  EXPECT_FALSE(fab->node_is_fast(0));
  EXPECT_GT(fab->node_fast_switch(1).stats().accepted, 0u);
  EXPECT_GT(fab->node_switch(0).stats().accepted, 0u);
}

TEST(FabricFastModel, MixedFabricDeterministicAcrossThreadCounts) {
  const auto f1 = make_fabric(mixed_model_torus(1));
  const auto f4 = make_fabric(mixed_model_torus(4));
  f1->run(2000);
  f4->run(2000);
  expect_same_stats(f1->stats(), f4->stats());
  for (unsigned i = 0; i < f1->nodes(); ++i) {
    if (f1->node_is_fast(i)) {
      EXPECT_EQ(f1->node_fast_switch(i).stats().accepted,
                f4->node_fast_switch(i).stats().accepted) << i;
    } else {
      EXPECT_EQ(f1->node_switch(i).stats().accepted, f4->node_switch(i).stats().accepted)
          << i;
    }
  }
}

// An all-fast low-load fabric still skips correctly (the fast model's
// quiescence hooks feed the same round planner).
TEST(FabricFastModel, AllFastIdleSkipEquivalence) {
  fabric::FabricConfig off = low_load_torus(/*idle_skip=*/0, 1);
  fabric::FabricConfig on = low_load_torus(/*idle_skip=*/1, 1);
  off.fast_node = [](unsigned) { return true; };
  on.fast_node = [](unsigned) { return true; };
  const auto stepped = make_fabric(off);
  const auto skipped = make_fabric(on);
  stepped->run(20000);
  skipped->run(20000);
  EXPECT_GT(stepped->stats().delivered, 0u);
  expect_same_stats(stepped->stats(), skipped->stats());
}

// ---------------------------------------------------------------------------
// Dataflow engine: the same determinism contract, now across ENGINES too --
// kDataflow must reproduce kBarrier's results bit-exactly at any thread
// count, under idle skipping, with mixed node models, and across run()
// splits (which also exercises mid-sequence rebalancing).

fabric::FabricConfig with_engine(fabric::FabricConfig cfg, fabric::FabricEngine e,
                                 unsigned threads) {
  cfg.engine = e;
  cfg.threads = threads;
  return cfg;
}

TEST(FabricDataflow, MatchesBarrierAcrossThreadCounts) {
  fabric::FabricConfig base = small_torus(1);
  base.flight_recorder = true;
  base.flight_warmup = 200;
  const auto ref = make_fabric(with_engine(base, fabric::FabricEngine::kBarrier, 1));
  ref->run(2000);
  const fabric::FabricStats want = ref->stats();
  ASSERT_GT(want.delivered, 0u);
  const obs::FlightRecorder want_flight = ref->merged_flight();

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const auto df = make_fabric(with_engine(base, fabric::FabricEngine::kDataflow, threads));
    EXPECT_EQ(df->engine(), fabric::FabricEngine::kDataflow);
    df->run(2000);
    const fabric::FabricStats got = df->stats();
    expect_same_stats(want, got);
    // Merged HDR latency distribution, down in the tail.
    EXPECT_EQ(want.latency.samples(), got.latency.samples()) << threads;
    EXPECT_EQ(want.latency.p50(), got.latency.p50()) << threads;
    EXPECT_EQ(want.latency.p999(), got.latency.p999()) << threads;
    // Flight-recorder per-stage sums survive the engine change.
    const obs::FlightRecorder got_flight = df->merged_flight();
    EXPECT_EQ(want_flight.completed(), got_flight.completed()) << threads;
    for (unsigned s = 0; s < obs::kFlightStageCount; ++s) {
      const auto st = static_cast<obs::FlightStage>(s);
      EXPECT_EQ(want_flight.stage(st).samples(), got_flight.stage(st).samples())
          << threads << " stage " << s;
      EXPECT_EQ(want_flight.stage(st).sum(), got_flight.stage(st).sum())
          << threads << " stage " << s;
    }
  }
}

TEST(FabricDataflow, MetricsSamplingMatchesBarrier) {
  obs::MetricsRegistry mb, md;
  const auto fb = make_fabric(with_engine(small_torus(1), fabric::FabricEngine::kBarrier, 1));
  const auto fd = make_fabric(with_engine(small_torus(1), fabric::FabricEngine::kDataflow, 4));
  fb->register_metrics(&mb);
  fd->register_metrics(&md);
  fb->run(1200);
  fd->run(1200);
  for (const char* g : {"fabric.injected", "fabric.delivered", "fabric.dropped",
                        "fabric.backlog", "fabric.in_network", "fabric.latency.mean"}) {
    const obs::GaugeStats* a = mb.find_gauge(g);
    const obs::GaugeStats* b = md.find_gauge(g);
    ASSERT_NE(a, nullptr) << g;
    ASSERT_NE(b, nullptr) << g;
    EXPECT_EQ(a->samples, b->samples) << g;
    EXPECT_DOUBLE_EQ(a->last, b->last) << g;
    EXPECT_DOUBLE_EQ(a->min, b->min) << g;
    EXPECT_DOUBLE_EQ(a->max, b->max) << g;
    EXPECT_DOUBLE_EQ(a->sum, b->sum) << g;
  }
}

// Repeated run() calls continue the simulation exactly; the second and third
// runs start from a rebalanced partition (plan from the previous run),
// which must be invisible in the results.
TEST(FabricDataflow, SplitRunMatchesSingleRunWithRebalance) {
  fabric::FabricConfig cfg = with_engine(small_torus(1), fabric::FabricEngine::kDataflow, 4);
  cfg.rebalance = true;
  const auto whole = make_fabric(cfg);
  const auto split = make_fabric(cfg);
  whole->run(1400);
  split->run(500);
  split->run(137);  // Deliberately not a multiple of the lookahead.
  split->run(763);
  EXPECT_EQ(whole->now(), split->now());
  expect_same_stats(whole->stats(), split->stats());
}

// Per-node idle skipping (the dataflow engine's chunk-granular variant)
// changes nothing, including against the barrier planner's round-granular
// skipping, and across a mid-run split.
TEST(FabricDataflow, IdleSkipEquivalentAcrossEnginesAndSplits) {
  const auto barrier_skip = make_fabric(
      with_engine(low_load_torus(/*idle_skip=*/1, 1), fabric::FabricEngine::kBarrier, 1));
  const auto df_step = make_fabric(
      with_engine(low_load_torus(/*idle_skip=*/0, 2), fabric::FabricEngine::kDataflow, 2));
  const auto df_skip = make_fabric(
      with_engine(low_load_torus(/*idle_skip=*/1, 2), fabric::FabricEngine::kDataflow, 2));
  const auto df_skip_split = make_fabric(
      with_engine(low_load_torus(/*idle_skip=*/1, 2), fabric::FabricEngine::kDataflow, 2));
  barrier_skip->run(20000);
  df_step->run(20000);
  df_skip->run(20000);
  df_skip_split->run(8100);  // Off the round grid on purpose.
  df_skip_split->run(11900);
  EXPECT_GT(df_step->stats().delivered, 0u);
  expect_same_stats(barrier_skip->stats(), df_step->stats());
  expect_same_stats(df_step->stats(), df_skip->stats());
  expect_same_stats(df_skip->stats(), df_skip_split->stats());
  EXPECT_GT(df_skip->rounds_skipped(), 0u);  // Skipping actually engaged.
}

TEST(FabricDataflow, MixedModelMatchesBarrier) {
  const auto fb = make_fabric(with_engine(mixed_model_torus(1), fabric::FabricEngine::kBarrier, 1));
  const auto fd = make_fabric(with_engine(mixed_model_torus(1), fabric::FabricEngine::kDataflow, 4));
  fb->run(2000);
  fd->run(2000);
  expect_same_stats(fb->stats(), fd->stats());
  for (unsigned i = 0; i < fb->nodes(); ++i) {
    if (fb->node_is_fast(i)) {
      EXPECT_EQ(fb->node_fast_switch(i).stats().accepted,
                fd->node_fast_switch(i).stats().accepted) << i;
    } else {
      EXPECT_EQ(fb->node_switch(i).stats().accepted, fd->node_switch(i).stats().accepted)
          << i;
    }
  }
}

TEST(FabricDataflow, DeterministicWhenOversubscribed) {
  fabric::FabricConfig cfg = with_engine(small_torus(1), fabric::FabricEngine::kDataflow, 1);
  const auto f1 = make_fabric(cfg);
  cfg.threads = std::max(4u, std::thread::hardware_concurrency() + 2);
  const auto fmany = make_fabric(cfg);
  EXPECT_GE(fmany->threads(), 4u);
  f1->run(1200);
  fmany->run(1200);
  expect_same_stats(f1->stats(), fmany->stats());
}

TEST(FabricDataflow, RebalanceNeverChangesResults) {
  fabric::FabricConfig on = with_engine(small_torus(1), fabric::FabricEngine::kDataflow, 2);
  on.rebalance = true;
  fabric::FabricConfig off = on;
  off.rebalance = false;
  const auto fon = make_fabric(on);
  const auto foff = make_fabric(off);
  // Several runs so rebalance plans actually get applied in between.
  for (int r = 0; r < 4; ++r) {
    fon->run(600);
    foff->run(600);
  }
  expect_same_stats(fon->stats(), foff->stats());
}

TEST(FabricDataflow, SchedulerStatsAndTelemetryShape) {
  const auto fab = make_fabric(with_engine(small_torus(1), fabric::FabricEngine::kDataflow, 2));
  fab->run(1200);
  const fabric::FabricSchedulerStats sched = fab->scheduler_stats();
  EXPECT_STREQ(sched.engine, "dataflow");
  EXPECT_EQ(sched.workers, 2u);
  EXPECT_GE(sched.tasks, sched.workers);
  ASSERT_EQ(sched.per_worker.size(), 2u);
  std::uint64_t active = 0;
  for (const auto& w : sched.per_worker) active += w.active_ns;
  EXPECT_GT(active, 0u);

  const std::vector<fabric::ShardTelemetry> tel = fab->shard_telemetry();
  ASSERT_EQ(tel.size(), sched.tasks);
  unsigned nodes = 0;
  std::uint64_t relayed = 0;
  std::uint64_t chunks = 0;
  for (const fabric::ShardTelemetry& t : tel) {
    EXPECT_EQ(t.barrier_wait_ns, 0u);  // kDataflow never parks at a barrier.
    nodes += t.nodes;
    relayed += t.cells_relayed;
    chunks += t.rounds;
  }
  EXPECT_EQ(nodes, fab->nodes());
  EXPECT_GT(relayed, 0u);
  EXPECT_GT(chunks, 0u);

  obs::PerfettoTrace tr;
  fab->telemetry_to_perfetto(tr);
  const std::string doc = tr.json();
  EXPECT_NE(doc.find("fabric worker 0"), std::string::npos);
  EXPECT_NE(doc.find("\"scheduler_idle\""), std::string::npos);
  EXPECT_NE(doc.find("fabric shard stalls"), std::string::npos);
  EXPECT_NE(doc.find("blocked_on_empty"), std::string::npos);
}

// The barrier engine's scheduler block is shape-compatible (degenerate
// pinned tasks), so BENCH JSON consumers need no engine-specific handling.
TEST(FabricDataflow, BarrierSchedulerStatsShape) {
  const auto fab = make_fabric(with_engine(small_torus(2), fabric::FabricEngine::kBarrier, 2));
  fab->run(600);
  const fabric::FabricSchedulerStats sched = fab->scheduler_stats();
  EXPECT_STREQ(sched.engine, "barrier");
  EXPECT_EQ(sched.workers, 2u);
  EXPECT_EQ(sched.tasks, 2u);
  EXPECT_EQ(sched.steals, 0u);
  ASSERT_EQ(sched.per_worker.size(), 2u);
  EXPECT_GT(sched.per_worker[0].active_ns + sched.per_worker[1].active_ns, 0u);
}

// ---------------------------------------------------------------------------
// Wormhole fabrics: the same determinism contract at flit granularity --
// thread counts x engines x lane counts, run splits, and idle skipping.

fabric::FabricConfig worm_banyan(fabric::FabricEngine engine, unsigned threads,
                                 unsigned lanes, const char* traffic = "uniform:0.6") {
  fabric::FabricConfig cfg;
  cfg.topo = net::Topology{net::TopologyKind::kBanyan, 16, 1};
  cfg.link_pipe_stages = 1;
  cfg.seed = 11;
  cfg.engine = engine;
  cfg.threads = threads;
  cfg.lanes = lanes;
  cfg.buffer_flits = 16;
  cfg.message_flits = 8;
  cfg.traffic = traffic;
  return cfg;
}

void expect_same_worm_stats(const fabric::FabricStats& a, const fabric::FabricStats& b) {
  expect_same_stats(a, b);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.latency.samples(), b.latency.samples());
  EXPECT_EQ(a.latency.p50(), b.latency.p50());
  EXPECT_EQ(a.latency.p999(), b.latency.p999());
}

TEST(WormDeterminism, ThreadCountsTimesEnginesTimesLanes) {
  for (const unsigned lanes : {1u, 4u}) {
    const auto ref = make_fabric(worm_banyan(fabric::FabricEngine::kBarrier, 1, lanes));
    ref->run(3000);
    const fabric::FabricStats want = ref->stats();
    ASSERT_GT(want.delivered, 0u);
    ASSERT_EQ(want.payload_errors, 0u);
    for (const auto engine :
         {fabric::FabricEngine::kBarrier, fabric::FabricEngine::kDataflow}) {
      for (const unsigned threads : {1u, 2u, 4u}) {
        const auto fab = make_fabric(worm_banyan(engine, threads, lanes));
        fab->run(3000);
        expect_same_worm_stats(want, fab->stats());
      }
    }
  }
}

TEST(WormDeterminism, SplitRunMatchesSingleRun) {
  const auto whole = make_fabric(worm_banyan(fabric::FabricEngine::kDataflow, 4, 2));
  const auto split = make_fabric(worm_banyan(fabric::FabricEngine::kDataflow, 4, 2));
  whole->run(2400);
  split->run(900);
  split->run(137);  // Deliberately off any lookahead grid.
  split->run(1363);
  EXPECT_EQ(whole->now(), split->now());
  expect_same_worm_stats(whole->stats(), split->stats());
}

/// Idle skipping must be invisible at flit granularity too: a sparse worm
/// fabric (low load, long idle stretches) run with skipping forced on
/// reproduces the stepped run bit for bit, on both engines.
TEST(WormDeterminism, IdleSkipEquivalentOnBothEngines) {
  for (const auto engine :
       {fabric::FabricEngine::kBarrier, fabric::FabricEngine::kDataflow}) {
    fabric::FabricConfig stepped_cfg = worm_banyan(engine, 2, 2, "uniform:0.002");
    stepped_cfg.idle_skip = 0;
    fabric::FabricConfig skipping_cfg = worm_banyan(engine, 2, 2, "uniform:0.002");
    skipping_cfg.idle_skip = 1;
    const auto stepped = make_fabric(stepped_cfg);
    const auto skipping = make_fabric(skipping_cfg);
    stepped->run(30000);
    skipping->run(30000);
    EXPECT_GT(stepped->stats().delivered, 0u);
    expect_same_worm_stats(stepped->stats(), skipping->stats());
    EXPECT_GT(skipping->rounds_skipped(), 0u);  // Skipping actually engaged.
  }
}

/// The hotsenders pattern keeps background sources off the hot egress:
/// with dedicated aggressors saturating endpoint 0, splitting each buffer
/// into more lanes must raise carried throughput (the virtual-channel
/// payoff the MW bench gates on).
TEST(WormDeterminism, MoreLanesCarryMoreUnderTreeSaturation) {
  std::uint64_t flits_by_lanes[2] = {};
  const unsigned lane_opts[2] = {1u, 4u};
  for (int i = 0; i < 2; ++i) {
    const auto fab = make_fabric(worm_banyan(fabric::FabricEngine::kBarrier, 1,
                                             lane_opts[i], "hotsenders:0.25,0.95"));
    fab->run(6000);
    flits_by_lanes[i] = fab->stats().flits_delivered;
  }
  EXPECT_GT(flits_by_lanes[1], flits_by_lanes[0]);
}

}  // namespace
}  // namespace pmsb
