// Tests of the PRIZMA-style interleaved shared buffer (section 5.3): full
// functional correctness -- the paper's argument against it is silicon cost,
// so the model must *work* as well as the pipelined buffer.

#include <gtest/gtest.h>

#include "arch/prizma/prizma_switch.hpp"
#include "core/testbench.hpp"

namespace pmsb {
namespace {

using PrizmaTestbench = Testbench<PrizmaSwitch, PrizmaConfig>;

PrizmaConfig prizma_cfg(unsigned n = 4, unsigned banks = 64) {
  PrizmaConfig cfg;
  cfg.n_ports = n;
  cfg.word_bits = 16;
  cfg.cell_words = 2 * n;
  cfg.n_banks = banks;
  return cfg;
}

TEST(PrizmaSwitch, SingleCellCutsThrough) {
  const PrizmaConfig cfg = prizma_cfg();
  PrizmaSwitch sw(cfg);
  Engine eng;
  eng.add(&sw);
  const CellFormat fmt = cfg.cell_format();
  const Cycle a0 = eng.now() + 1;
  std::vector<Flit> out_trace;
  for (unsigned k = 0; k < fmt.length_words + 6; ++k) {
    if (k < fmt.length_words)
      sw.in_link(0).drive_next(Flit{true, k == 0, cell_word(4, 3, k, fmt)});
    eng.step();
    out_trace.push_back(sw.out_link(3).now());
  }
  // Read starts at a0+1 (queue committed), head on the wire at a0+2.
  const Flit& head = out_trace[a0 + 1];
  EXPECT_TRUE(head.valid && head.sop);
  EXPECT_EQ(head.data, cell_word(4, 3, 0, fmt));
  EXPECT_EQ(sw.stats().cut_through_cells, 1u);
}

TEST(PrizmaSwitch, OneCellPerBankLimitsCapacity) {
  // M banks hold at most M cells: hammering one output with M+extra cells
  // drops the excess, regardless of cell size vs bank count arithmetic.
  PrizmaConfig cfg = prizma_cfg(4, 4);
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.pattern = PatternKind::kHotspot;
  spec.hot_fraction = 1.0;
  spec.load = 1.0;
  spec.seed = 7;
  PrizmaTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(10000);
  EXPECT_GT(tb.dut().stats().dropped_no_addr, 0u);
  EXPECT_TRUE(tb.drain(500000));
  EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
}

struct PrizmaCase {
  unsigned n;
  unsigned banks;
  double load;
  PatternKind pattern;
  std::uint64_t seed;
};

void PrintTo(const PrizmaCase& c, std::ostream* os) {
  *os << "n" << c.n << "_M" << c.banks << "_load" << static_cast<int>(c.load * 100) << "_pat"
      << static_cast<int>(c.pattern) << "_seed" << c.seed;
}

class PrizmaRandom : public ::testing::TestWithParam<PrizmaCase> {};

TEST_P(PrizmaRandom, ScoreboardCleanAndDrains) {
  const PrizmaCase& pc = GetParam();
  const PrizmaConfig cfg = prizma_cfg(pc.n, pc.banks);
  TrafficSpec spec;
  spec.load = pc.load;
  spec.pattern = pc.pattern;
  spec.seed = pc.seed;
  PrizmaTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(15000);
  ASSERT_TRUE(tb.drain(500000));
  EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
  EXPECT_TRUE(tb.scoreboard().fully_drained());
  const auto& st = tb.dut().stats();
  EXPECT_EQ(st.heads_seen, st.accepted + st.dropped());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PrizmaRandom,
    ::testing::Values(PrizmaCase{2, 16, 0.6, PatternKind::kUniform, 21},
                      PrizmaCase{4, 64, 0.8, PatternKind::kUniform, 22},
                      PrizmaCase{4, 8, 1.0, PatternKind::kHotspot, 23},
                      PrizmaCase{8, 256, 0.9, PatternKind::kUniform, 24},
                      PrizmaCase{8, 64, 1.0, PatternKind::kPermutation, 25}));

TEST(PrizmaSwitch, FullLoadPermutationSustainsLineRate) {
  const PrizmaConfig cfg = prizma_cfg(4, 32);
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.pattern = PatternKind::kPermutation;
  spec.load = 1.0;
  spec.seed = 26;
  PrizmaTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(8000);
  EXPECT_EQ(tb.dut().stats().dropped(), 0u);
  EXPECT_GE(tb.delivered(), 4u * (8000u / 8 - 6));
}

TEST(PrizmaSwitch, MatchesPipelinedDeliveriesStatistically) {
  // Same traffic into PRIZMA and the pipelined switch: both are full-
  // throughput shared buffers, so delivered counts should match closely
  // (identical up to boundary effects at the end of the run).
  PrizmaConfig pcfg = prizma_cfg(4, 64);
  SwitchConfig scfg;
  scfg.n_ports = 4;
  scfg.word_bits = 16;
  scfg.cell_words = 8;
  scfg.capacity_segments = 64;
  TrafficSpec spec;
  spec.load = 0.85;
  spec.seed = 27;
  PrizmaTestbench pz(pcfg, 4, pcfg.cell_format(), spec);
  PipelinedTestbench pl(scfg, 4, scfg.cell_format(), spec);
  pz.run(30000);
  pl.run(30000);
  pz.drain(500000);
  pl.drain(500000);
  ASSERT_TRUE(pz.scoreboard().ok());
  ASSERT_TRUE(pl.scoreboard().ok());
  EXPECT_EQ(pz.injected(), pl.injected());  // Same seeds, same traffic.
  EXPECT_EQ(pz.delivered() + pz.dut().stats().dropped(),
            pl.delivered() + pl.dut().stats().dropped());
}

}  // namespace
}  // namespace pmsb
