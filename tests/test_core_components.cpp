// Unit tests: free list, output queues, input latches, output row,
// reservation table, round-robin arbiter.

#include <gtest/gtest.h>

#include "core/arbiter.hpp"
#include "core/free_list.hpp"
#include "core/input_latches.hpp"
#include "core/out_queues.hpp"
#include "core/output_row.hpp"
#include "core/reservation.hpp"
#include "sim/wire.hpp"

namespace pmsb {
namespace {

// --- FreeList ---------------------------------------------------------------

TEST(FreeList, AllocatesAllAddressesOnce) {
  FreeList fl(8);
  auto got = fl.alloc(8);
  std::sort(got.begin(), got.end());
  for (std::uint32_t a = 0; a < 8; ++a) EXPECT_EQ(got[a], a);
  EXPECT_FALSE(fl.can_alloc(1));
}

TEST(FreeList, ReleasedVisibleNextCycleOnly) {
  FreeList fl(2);
  auto got = fl.alloc(2);
  fl.release(got[0]);
  EXPECT_FALSE(fl.can_alloc(1));  // Not yet clocked back.
  fl.tick();
  EXPECT_TRUE(fl.can_alloc(1));
}

TEST(FreeList, InUseAccounting) {
  FreeList fl(4);
  EXPECT_EQ(fl.in_use(), 0u);
  auto got = fl.alloc(3);
  EXPECT_EQ(fl.in_use(), 3u);
  fl.release(got[1]);
  // The staged release still occupies its address until tick() publishes it
  // (the data is live while the read wave drains), so occupancy is unchanged
  // this cycle.
  EXPECT_EQ(fl.in_use(), 3u);
  fl.tick();
  EXPECT_EQ(fl.in_use(), 2u);
  EXPECT_EQ(fl.peak_in_use(), 3u);
}

TEST(FreeList, PeakCountsStagedReleases) {
  // Regression: peak_in_use() must see same-cycle staged releases as
  // occupied. Allocate 2, release one, allocate another in the same cycle:
  // three addresses hold live data simultaneously, so the peak is 3.
  FreeList fl(4);
  auto got = fl.alloc(2);
  fl.release(got[0]);
  fl.alloc(1);
  EXPECT_EQ(fl.in_use(), 3u);
  EXPECT_EQ(fl.peak_in_use(), 3u);
  fl.tick();
  EXPECT_EQ(fl.in_use(), 2u);
  EXPECT_EQ(fl.peak_in_use(), 3u);
}

TEST(FreeListDeath, DoubleFree) {
  FreeList fl(4);
  auto got = fl.alloc(1);
  fl.release(got[0]);
  EXPECT_DEATH(fl.release(got[0]), "double free");
}

TEST(FreeListDeath, Underflow) {
  FreeList fl(1);
  fl.alloc(1);
  EXPECT_DEATH(fl.alloc(1), "underflow");
}

TEST(FreeList, RecycleStress) {
  FreeList fl(4);
  for (int round = 0; round < 100; ++round) {
    auto got = fl.alloc(4);
    for (auto a : got) fl.release(a);
    fl.tick();
  }
  EXPECT_EQ(fl.available(), 4u);
  EXPECT_EQ(fl.in_use(), 0u);
}

// --- OutQueues ---------------------------------------------------------------

BufferedCell make_cell(unsigned input, unsigned dest, Cycle a0) {
  return BufferedCell{input, dest, a0, a0 + 1, {0}};
}

TEST(OutQueues, PushVisibleAfterTick) {
  OutQueues q(4);
  q.push(make_cell(0, 2, 10));
  EXPECT_TRUE(q.empty(2));
  q.tick();
  EXPECT_FALSE(q.empty(2));
  EXPECT_EQ(q.front(2).head_arrival, 10);
}

TEST(OutQueues, FifoPerOutput) {
  OutQueues q(4);
  q.push(make_cell(0, 1, 10));
  q.push(make_cell(1, 1, 11));
  q.tick();
  EXPECT_EQ(q.pop(1).head_arrival, 10);
  EXPECT_EQ(q.pop(1).head_arrival, 11);
  EXPECT_TRUE(q.empty(1));
}

TEST(OutQueues, IndependentOutputs) {
  OutQueues q(3);
  q.push(make_cell(0, 0, 1));
  q.push(make_cell(0, 2, 2));
  q.tick();
  EXPECT_FALSE(q.empty(0));
  EXPECT_TRUE(q.empty(1));
  EXPECT_FALSE(q.empty(2));
  EXPECT_EQ(q.total_size(), 2u);
}

TEST(OutQueuesDeath, PopEmpty) {
  OutQueues q(2);
  EXPECT_DEATH(q.pop(0), "empty");
}

// --- InputLatches ------------------------------------------------------------

TEST(InputLatches, LatchCommitsAtTick) {
  InputLatches ir(2, 4, 8);
  ir.latch(1, 2, 0xAA, 0);
  EXPECT_EQ(ir.read(1, 2), 0u);
  ir.tick(0);
  EXPECT_EQ(ir.read(1, 2), 0xAAu);
}

TEST(InputLatches, OverwriteAfterWavePassesIsFine) {
  InputLatches ir(1, 4, 8);
  ir.latch(0, 0, 0x11, 0);
  ir.tick(0);
  ir.protect_for_wave(0, 1, 0);  // Wave consumes IR[0][s] at cycle 1+s.
  // Overwrite latch 0 at cycle 4 (> 1): allowed.
  ir.latch(0, 0, 0x22, 4);
  ir.tick(4);
  EXPECT_EQ(ir.read(0, 0), 0x22u);
}

TEST(InputLatchesDeath, OverwriteBeforeWaveReads) {
  InputLatches ir(1, 4, 8);
  ir.latch(0, 3, 0x11, 0);
  ir.tick(0);
  ir.protect_for_wave(0, 5, 0);  // Stage 3 consumed at cycle 5+3 = 8.
  EXPECT_DEATH(ir.latch(0, 3, 0x22, 6), "no-double-buffering");
}

TEST(InputLatches, BoundaryOverwriteExactlyAtConsumption) {
  // The paper's tightest case: the latch is overwritten at the end of the
  // very cycle the wave reads it.
  InputLatches ir(1, 4, 8);
  ir.latch(0, 2, 0x11, 0);
  ir.tick(0);
  ir.protect_for_wave(0, 3, 0);     // Stage 2 consumed during cycle 5.
  ir.latch(0, 2, 0x22, 5);          // Commits at END of 5: legal.
  EXPECT_EQ(ir.read(0, 2), 0x11u);  // During cycle 5 the old value reads.
  ir.tick(5);
  EXPECT_EQ(ir.read(0, 2), 0x22u);
}

// --- OutputRow ---------------------------------------------------------------

TEST(OutputRow, DrivesLinkNextCycle) {
  OutputRow row(4, 2, 8);
  std::vector<WireLink> links(2);
  row.load(0, 0x5A, 1, true);
  row.drive_links(links);
  for (auto& l : links) l.tick();
  EXPECT_FALSE(links[0].now().valid);
  EXPECT_TRUE(links[1].now().valid);
  EXPECT_TRUE(links[1].now().sop);
  EXPECT_EQ(links[1].now().data, 0x5Au);
}

TEST(OutputRowDeath, DoubleLoadOneStage) {
  OutputRow row(4, 2, 8);
  row.load(1, 1, 0, false);
  EXPECT_DEATH(row.load(1, 2, 1, false), "twice");
}

TEST(OutputRowDeath, TwoStagesOneLink) {
  OutputRow row(4, 2, 8);
  std::vector<WireLink> links(2);
  row.load(0, 1, 1, false);
  row.load(1, 2, 1, false);
  EXPECT_DEATH(row.drive_links(links), "two drivers");
}

TEST(OutputRow, ClearsAfterTick) {
  OutputRow row(4, 2, 8);
  std::vector<WireLink> links(2);
  row.load(2, 9, 0, false);
  row.drive_links(links);
  row.tick();
  for (auto& l : links) l.tick();
  row.load(2, 10, 0, false);  // Same stage reusable next cycle.
  row.drive_links(links);
  for (auto& l : links) l.tick();
  EXPECT_EQ(links[0].now().data, 10u);
}

// --- ReservationTable --------------------------------------------------------

TEST(Reservation, FreeUntilReserved) {
  ReservationTable rt(32);
  EXPECT_TRUE(rt.slot_free(5));
  rt.reserve_writes(5, 4, {7}, 1, 4);
  EXPECT_FALSE(rt.slot_free(5));
  EXPECT_TRUE(rt.slot_free(6));
}

TEST(Reservation, ProgressionReservesEverySegment) {
  ReservationTable rt(64);
  rt.reserve_writes(10, 8, {1, 2, 3}, 0, 9);
  EXPECT_FALSE(rt.slot_free(10));
  EXPECT_FALSE(rt.slot_free(18));
  EXPECT_FALSE(rt.slot_free(26));
  EXPECT_TRUE(rt.slot_free(34));
  EXPECT_FALSE(rt.progression_free(10, 8, 1));
  EXPECT_TRUE(rt.progression_free(11, 8, 3));
}

TEST(Reservation, TakeReturnsAndClears) {
  ReservationTable rt(32);
  rt.reserve_writes(3, 4, {9}, 2, 2);
  const SlotOp op = rt.take(3);
  EXPECT_TRUE(op.has_write);
  EXPECT_EQ(op.w_addr, 9u);
  EXPECT_EQ(op.in_link, 2);
  EXPECT_TRUE(op.w_head);
  EXPECT_TRUE(rt.slot_free(3));
  EXPECT_TRUE(rt.take(3).empty());
}

TEST(Reservation, HeadFlagOnlyOnFirstSegment) {
  ReservationTable rt(64);
  rt.reserve_reads(0, 8, {4, 5}, 1);
  EXPECT_TRUE(rt.take(0).r_head);
  EXPECT_FALSE(rt.take(8).r_head);
}

TEST(Reservation, SnoopAttachesToWrite) {
  ReservationTable rt(32);
  rt.reserve_writes(2, 4, {6}, 0, 1);
  rt.attach_snoop_reads(2, 4, {6}, 3);
  const SlotOp op = rt.take(2);
  EXPECT_TRUE(op.has_write);
  EXPECT_TRUE(op.has_read);
  EXPECT_EQ(op.w_addr, op.r_addr);
  EXPECT_EQ(op.out_link, 3);
}

TEST(ReservationDeath, SnoopNeedsMatchingWrite) {
  ReservationTable rt(32);
  rt.reserve_writes(2, 4, {6}, 0, 1);
  EXPECT_DEATH(rt.attach_snoop_reads(2, 4, {7}, 3), "address");
}

TEST(ReservationDeath, DoubleReserve) {
  ReservationTable rt(32);
  rt.reserve_reads(4, 4, {1}, 0);
  EXPECT_DEATH(rt.reserve_writes(4, 4, {2}, 1, 3), "occupied");
}

TEST(Reservation, RingReuseAfterTake) {
  ReservationTable rt(8);
  for (Cycle t = 0; t < 100; ++t) {
    rt.reserve_reads(t, 1, {static_cast<std::uint32_t>(t % 4)}, 0);
    const SlotOp op = rt.take(t);
    EXPECT_TRUE(op.has_read);
  }
}

// --- RoundRobin --------------------------------------------------------------

TEST(RoundRobin, CyclesThroughEligible) {
  RoundRobin rr(4);
  auto all = [](unsigned) { return true; };
  EXPECT_EQ(rr.pick(all), 0);
  EXPECT_EQ(rr.pick(all), 1);
  EXPECT_EQ(rr.pick(all), 2);
  EXPECT_EQ(rr.pick(all), 3);
  EXPECT_EQ(rr.pick(all), 0);
}

TEST(RoundRobin, SkipsIneligible) {
  RoundRobin rr(4);
  auto odd = [](unsigned i) { return i % 2 == 1; };
  EXPECT_EQ(rr.pick(odd), 1);
  EXPECT_EQ(rr.pick(odd), 3);
  EXPECT_EQ(rr.pick(odd), 1);
}

TEST(RoundRobin, NoneEligible) {
  RoundRobin rr(3);
  EXPECT_EQ(rr.pick([](unsigned) { return false; }), -1);
}

TEST(RoundRobin, StarvationBound) {
  // While index 0 stays continuously eligible, every other index is granted
  // at most once before 0 is granted (DESIGN.md invariant-2 dependency).
  RoundRobin rr(8);
  // Move the pointer just past 0.
  ASSERT_EQ(rr.pick([](unsigned i) { return i == 0; }), 0);
  std::vector<int> grants_before_zero;
  for (int k = 0; k < 16; ++k) {
    const int g = rr.pick([](unsigned) { return true; });
    if (g == 0) break;
    grants_before_zero.push_back(g);
  }
  EXPECT_LE(grants_before_zero.size(), 7u);
  std::sort(grants_before_zero.begin(), grants_before_zero.end());
  EXPECT_TRUE(std::adjacent_find(grants_before_zero.begin(), grants_before_zero.end()) ==
              grants_before_zero.end());
}

// --- WireLink ----------------------------------------------------------------

TEST(WireLink, UndrivenCycleIsInvalid) {
  WireLink l;
  l.drive_next(Flit{true, true, 5});
  l.tick();
  EXPECT_TRUE(l.now().valid);
  l.tick();
  EXPECT_FALSE(l.now().valid);
}

TEST(WireLinkDeath, TwoDrivers) {
  WireLink l;
  l.drive_next(Flit{true, false, 1});
  EXPECT_DEATH(l.drive_next(Flit{true, false, 2}), "two drivers");
}

}  // namespace
}  // namespace pmsb
