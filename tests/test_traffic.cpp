// Tests of the traffic generators: measured rates match the configured
// loads, framing is well-formed, patterns behave as specified.

#include <gtest/gtest.h>

#include "core/testbench.hpp"
#include "sim/engine.hpp"
#include "sim/wire.hpp"
#include "traffic/generators.hpp"
#include "traffic/messages.hpp"
#include "traffic/spec.hpp"

namespace pmsb {
namespace {

/// Count valid cycles / sop cycles on a link driven by `src` for `cycles`.
struct LinkProbe {
  std::uint64_t valid = 0;
  std::uint64_t sops = 0;
  std::uint64_t gaps_inside_cell = 0;
};

template <typename SourceT>
LinkProbe probe(SourceT& src, WireLink& link, Cycle cycles) {
  Engine eng;
  eng.add(&src);
  LinkProbe p;
  unsigned in_cell = 0;
  const unsigned L = 8;
  for (Cycle c = 0; c < cycles; ++c) {
    eng.step();
    link.tick();  // The probe owns the link clock (no switch attached).
    const Flit& f = link.now();
    if (f.valid) {
      ++p.valid;
      if (f.sop) {
        EXPECT_EQ(in_cell, 0u) << "head inside a cell";
        ++p.sops;
        in_cell = L - 1;
      } else {
        EXPECT_GT(in_cell, 0u) << "body word outside a cell";
        --in_cell;
      }
    } else if (in_cell != 0) {
      ++p.gaps_inside_cell;
    }
  }
  return p;
}

CellFormat fmt8() { return CellFormat{16, 2, 8}; }

TEST(CellSource, GeometricLoadMatches) {
  for (double load : {0.2, 0.5, 0.9}) {
    WireLink link;
    UniformDest dests(4);
    CellSource src(0, &link, fmt8(), &dests, ArrivalKind::kGeometric, load, Rng(7));
    const LinkProbe p = probe(src, link, 200000);
    EXPECT_NEAR(p.valid / 200000.0, load, 0.02) << "load " << load;
    EXPECT_EQ(p.gaps_inside_cell, 0u);
  }
}

TEST(CellSource, SlottedStartsOnBoundariesOnly) {
  WireLink link;
  UniformDest dests(4);
  CellSource src(0, &link, fmt8(), &dests, ArrivalKind::kSlotted, 0.5, Rng(8));
  Engine eng;
  eng.add(&src);
  for (Cycle c = 0; c < 20000; ++c) {
    eng.step();
    link.tick();
    if (link.now().sop) {
      EXPECT_EQ((c + 1) % 8, 0u) << "cell started off-slot";
    }
  }
}

TEST(CellSource, SaturatedIsBackToBack) {
  WireLink link;
  UniformDest dests(4);
  CellSource src(0, &link, fmt8(), &dests, ArrivalKind::kSaturated, 1.0, Rng(9));
  const LinkProbe p = probe(src, link, 8000);
  EXPECT_EQ(p.valid, 8000u - 0u);  // Every cycle busy once started... from cycle 1.
}

TEST(CellSource, InjectionCallbackMatchesWire) {
  WireLink link;
  UniformDest dests(4);
  CellSource src(0, &link, fmt8(), &dests, ArrivalKind::kGeometric, 0.4, Rng(10));
  std::vector<CellSource::Injection> injections;
  src.set_on_inject([&](const CellSource::Injection& i) { injections.push_back(i); });
  Engine eng;
  eng.add(&src);
  std::vector<Cycle> sop_cycles;
  for (Cycle c = 0; c < 5000; ++c) {
    eng.step();
    link.tick();
    if (link.now().sop) sop_cycles.push_back(c + 1);  // Wire cycle = c+1.
  }
  ASSERT_EQ(injections.size(), sop_cycles.size());
  for (std::size_t k = 0; k < sop_cycles.size(); ++k) {
    EXPECT_EQ(injections[k].head_on_wire, sop_cycles[k]);
  }
}

TEST(CellSource, DisableStopsNewCells) {
  WireLink link;
  UniformDest dests(4);
  CellSource src(0, &link, fmt8(), &dests, ArrivalKind::kSaturated, 1.0, Rng(11));
  Engine eng;
  eng.add(&src);
  for (int c = 0; c < 100; ++c) {
    eng.step();
    link.tick();
  }
  src.set_enabled(false);
  const std::uint64_t at_disable = src.cells_injected();
  for (int c = 0; c < 100; ++c) {
    eng.step();
    link.tick();
  }
  // At most the in-flight cell finishes; no new cells start.
  EXPECT_LE(src.cells_injected(), at_disable + 1);
}

TEST(BurstySource, LoadMatchesAndBurstsShareDest) {
  WireLink link;
  UniformDest dests(8);
  CellFormat fmt{16, 3, 8};
  BurstyCellSource src(0, &link, fmt, &dests, 0.6, 8.0, Rng(12));
  std::vector<unsigned> dests_seen;
  src.set_on_inject(
      [&](const CellSource::Injection& i) { dests_seen.push_back(i.dest); });
  Engine eng;
  eng.add(&src);
  std::uint64_t valid = 0;
  for (Cycle c = 0; c < 200000; ++c) {
    eng.step();
    link.tick();
    valid += link.now().valid;
  }
  EXPECT_NEAR(valid / 200000.0, 0.6, 0.03);
  // Consecutive cells repeat destinations far more often than uniform (1/8).
  std::size_t repeats = 0;
  for (std::size_t k = 1; k < dests_seen.size(); ++k)
    repeats += (dests_seen[k] == dests_seen[k - 1]);
  EXPECT_GT(static_cast<double>(repeats) / dests_seen.size(), 0.5);
}

TEST(SlotTraffic, BernoulliRateMatches) {
  UniformDest dests(8);
  SlotTraffic t(8, 0.7, &dests, Rng(13));
  std::uint64_t arrivals = 0;
  const Cycle slots = 100000;
  for (Cycle s = 0; s < slots; ++s) {
    for (const auto& a : t.step()) arrivals += a.has_value();
  }
  EXPECT_NEAR(arrivals / (8.0 * slots), 0.7, 0.01);
}

TEST(SlotTraffic, BurstyRateMatches) {
  UniformDest dests(8);
  auto t = SlotTraffic::bursty(8, 0.5, 16.0, &dests, Rng(14));
  std::uint64_t arrivals = 0;
  const Cycle slots = 200000;
  for (Cycle s = 0; s < slots; ++s) {
    for (const auto& a : t.step()) arrivals += a.has_value();
  }
  EXPECT_NEAR(arrivals / (8.0 * slots), 0.5, 0.02);
}

TEST(SlotTraffic, BurstyRunsAreLong) {
  UniformDest dests(2);
  auto t = SlotTraffic::bursty(1, 0.5, 16.0, &dests, Rng(15));
  // Measure mean run length of consecutive arrival slots on one input.
  std::uint64_t runs = 0, busy = 0;
  bool prev = false;
  for (Cycle s = 0; s < 200000; ++s) {
    const bool now = t.step()[0].has_value();
    busy += now;
    runs += (now && !prev);
    prev = now;
  }
  ASSERT_GT(runs, 0u);
  EXPECT_NEAR(static_cast<double>(busy) / runs, 16.0, 2.0);
}

TEST(Patterns, PermutationIsBijective) {
  Rng rng(16);
  for (unsigned n : {2u, 5u, 16u}) {
    const auto p = random_permutation(n, rng);
    std::vector<bool> seen(n, false);
    for (unsigned v : p) {
      ASSERT_LT(v, n);
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
    }
  }
}

TEST(Patterns, HotspotFraction) {
  Rng rng(17);
  HotspotDest h(8, 3, 0.5);
  std::uint64_t hot = 0;
  const int kTrials = 100000;
  for (int k = 0; k < kTrials; ++k) hot += (h.pick(0, rng) == 3);
  // 0.5 direct + 0.5 * 1/8 uniform share.
  EXPECT_NEAR(hot / double(kTrials), 0.5 + 0.5 / 8, 0.01);
}

TEST(Patterns, UniformCoversAllOutputs) {
  Rng rng(18);
  UniformDest u(4);
  std::vector<int> counts(4, 0);
  for (int k = 0; k < 40000; ++k) ++counts[u.pick(0, rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Patterns, HotSendersSplitAggressorsFromBackground) {
  Rng rng(19);
  HotSendersDest d(16, /*hot=*/0, /*frac=*/0.25);
  for (unsigned src = 0; src < 16; ++src) {
    const bool aggressor = src % 4 == 3;  // every round(1/0.25)-th input
    for (int k = 0; k < 200; ++k) {
      const unsigned dest = d.pick(src, rng);
      if (aggressor) {
        EXPECT_EQ(dest, 0u) << src;
      } else {
        EXPECT_NE(dest, 0u) << src;  // background never hits the hot output
        EXPECT_LT(dest, 16u);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// GeneratorSpec: the one textual workload grammar shared by benches, tests
// and the fabric config.

TEST(GeneratorSpec, ParsesEveryKindAndRoundTrips) {
  using traffic::GeneratorSpec;
  const auto uni = GeneratorSpec::parse("uniform:0.8");
  EXPECT_EQ(uni.kind, GeneratorSpec::Kind::kUniform);
  EXPECT_DOUBLE_EQ(uni.load_or(0.1), 0.8);

  const auto perm = GeneratorSpec::parse("permutation");
  EXPECT_EQ(perm.kind, GeneratorSpec::Kind::kPermutation);
  EXPECT_DOUBLE_EQ(perm.load_or(0.1), 0.1);  // no embedded load

  const auto hot = GeneratorSpec::parse("hotspot:0.25,0.9");
  EXPECT_EQ(hot.kind, GeneratorSpec::Kind::kHotspot);
  EXPECT_DOUBLE_EQ(hot.hot_fraction, 0.25);
  EXPECT_DOUBLE_EQ(hot.load_or(0.1), 0.9);

  const auto hs = GeneratorSpec::parse("hotsenders:0.25,0.95");
  EXPECT_EQ(hs.kind, GeneratorSpec::Kind::kHotSenders);
  EXPECT_DOUBLE_EQ(hs.hot_fraction, 0.25);
  EXPECT_DOUBLE_EQ(hs.load_or(0.1), 0.95);

  const auto in = GeneratorSpec::parse("incast:16");
  EXPECT_EQ(in.kind, GeneratorSpec::Kind::kIncast);
  EXPECT_EQ(in.fan_in, 16u);

  const auto par = GeneratorSpec::parse("pareto:0.6,1.4");
  EXPECT_EQ(par.kind, GeneratorSpec::Kind::kPareto);
  EXPECT_DOUBLE_EQ(par.load_or(0.1), 0.6);
  EXPECT_DOUBLE_EQ(par.shape, 1.4);

  // describe() is round-trippable: parse(describe(s)) == s, field for field.
  for (const char* text : {"uniform:0.8", "permutation", "hotspot:0.25,0.9",
                           "hotsenders:0.25,0.95", "incast:16,0.7", "bursty:0.5,12",
                           "pareto:0.6,1.4,10"}) {
    const auto a = GeneratorSpec::parse(text);
    const auto b = GeneratorSpec::parse(a.describe());
    EXPECT_EQ(a.kind, b.kind) << text;
    EXPECT_EQ(a.load.has_value(), b.load.has_value()) << text;
    if (a.load.has_value()) EXPECT_DOUBLE_EQ(*a.load, *b.load) << text;
    EXPECT_DOUBLE_EQ(a.hot_fraction, b.hot_fraction) << text;
    EXPECT_EQ(a.fan_in, b.fan_in) << text;
    EXPECT_DOUBLE_EQ(a.mean_burst, b.mean_burst) << text;
    EXPECT_DOUBLE_EQ(a.shape, b.shape) << text;
  }
}

TEST(GeneratorSpec, RejectsMalformedSpecs) {
  using traffic::GeneratorSpec;
  for (const char* text :
       {"", "nonsense", "uniform:", "uniform:1.5", "uniform:x", "hotspot",
        "hotspot:0", "hotspot:1.5", "hotsenders", "hotsenders:0",
        "incast:0.5", "incast", "bursty", "bursty:0.5,0.2", "pareto",
        "pareto:0.5,0.9", "uniform:0.5,0.6"}) {
    EXPECT_THROW(GeneratorSpec::parse(text), std::invalid_argument) << text;
  }
}

TEST(GeneratorSpec, MakeDestMatchesKind) {
  using traffic::GeneratorSpec;
  Rng rng(20);
  const auto hs = GeneratorSpec::parse("hotsenders:0.25");
  const auto dest = hs.make_dest(16, rng);
  EXPECT_EQ(dest->pick(3, rng), 0u);   // aggressor input
  EXPECT_NE(dest->pick(0, rng), 0u);   // background input
}

}  // namespace
}  // namespace pmsb
