// Tests of the section 3.5 half-quantum organization: two n-stage pipelined
// memories, cells of n words, one read plus one write initiation per cycle.

#include <gtest/gtest.h>

#include "core/dual_switch.hpp"
#include "core/testbench.hpp"

namespace pmsb {
namespace {

using DualTestbench = Testbench<DualPipelinedSwitch, DualSwitchConfig>;

DualSwitchConfig dual_cfg(unsigned n, unsigned cap = 64) {
  DualSwitchConfig cfg;
  cfg.n_ports = n;
  cfg.word_bits = 16;
  cfg.capacity_segments_per_group = cap;
  return cfg;
}

TEST(DualSwitch, HalfQuantumCellSize) {
  const DualSwitchConfig cfg = dual_cfg(8);
  EXPECT_EQ(cfg.cell_words(), 8u);   // n words, not 2n.
  EXPECT_EQ(cfg.stages(), 8u);       // Per memory group.
}

TEST(DualSwitch, SingleCellCutThroughLatencyIsTwo) {
  const DualSwitchConfig cfg = dual_cfg(4);
  DualPipelinedSwitch sw(cfg);
  Engine eng;
  eng.add(&sw);
  const CellFormat fmt = cfg.cell_format();
  const Cycle a0 = eng.now() + 1;
  std::vector<Flit> out_trace;
  for (unsigned k = 0; k < fmt.length_words + 4; ++k) {
    if (k < fmt.length_words)
      sw.in_link(0).drive_next(Flit{true, k == 0, cell_word(3, 2, k, fmt)});
    eng.step();
    out_trace.push_back(sw.out_link(2).now());
  }
  const Flit& head = out_trace[a0 + 1];  // Wire during cycle a0 + 2.
  EXPECT_TRUE(head.valid);
  EXPECT_TRUE(head.sop);
  EXPECT_EQ(head.data, cell_word(3, 2, 0, fmt));
  for (unsigned k = 1; k < fmt.length_words; ++k) {
    EXPECT_EQ(out_trace[a0 + 1 + k].data, cell_word(3, 2, k, fmt));
  }
  EXPECT_EQ(sw.stats().snoop_initiations, 1u);
}

TEST(DualSwitch, FullLoadPermutationSustainsLineRate) {
  const DualSwitchConfig cfg = dual_cfg(4);
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.pattern = PatternKind::kPermutation;
  spec.load = 1.0;
  spec.seed = 3;
  DualTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(4000);
  EXPECT_EQ(tb.dut().stats().dropped(), 0u);
  // 4000 cycles / 4 words = 1000 cells per output, minus fill transient.
  EXPECT_GE(tb.delivered(), 4u * 995u);
  EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
}

TEST(DualSwitch, SustainsOneReadPlusOneWritePerCycle) {
  // Saturated uniform traffic: the organization's defining property is that
  // a read AND a write wave can be initiated in the same cycle (section 3.5,
  // "one write operation ... and one read operation ... in each and every
  // cycle"). At full load most cycles must be dual-initiation cycles.
  const DualSwitchConfig cfg = dual_cfg(4);
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.load = 1.0;
  spec.seed = 5;
  DualTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(20000);
  const auto& st = tb.dut().stats();
  EXPECT_GT(tb.dut().dual_initiation_cycles(), st.cycles / 2);
  const double out_util =
      static_cast<double>(st.read_grants) * cfg.cell_words() / (4.0 * st.cycles);
  EXPECT_GT(out_util, 0.90);
}

struct DualCase {
  unsigned n;
  double load;
  unsigned cap;
  PatternKind pattern;
  std::uint64_t seed;
};

void PrintTo(const DualCase& c, std::ostream* os) {
  *os << "n" << c.n << "_load" << static_cast<int>(c.load * 100) << "_cap" << c.cap << "_pat"
      << static_cast<int>(c.pattern) << "_seed" << c.seed;
}

class DualRandom : public ::testing::TestWithParam<DualCase> {};

TEST_P(DualRandom, ScoreboardCleanAndDrains) {
  const DualCase& dc = GetParam();
  const DualSwitchConfig cfg = [&] {
    DualSwitchConfig c = dual_cfg(dc.n, dc.cap);
    return c;
  }();
  TrafficSpec spec;
  spec.load = dc.load;
  spec.pattern = dc.pattern;
  spec.seed = dc.seed;
  DualTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(15000);
  ASSERT_TRUE(tb.drain(500000));
  EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
  EXPECT_TRUE(tb.scoreboard().fully_drained());
  const auto& st = tb.dut().stats();
  EXPECT_EQ(st.heads_seen, st.accepted + st.dropped());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DualRandom,
    ::testing::Values(DualCase{2, 0.5, 16, PatternKind::kUniform, 61},
                      DualCase{2, 1.0, 4, PatternKind::kUniform, 62},
                      DualCase{4, 0.8, 64, PatternKind::kUniform, 63},
                      DualCase{4, 1.0, 8, PatternKind::kHotspot, 64},
                      DualCase{8, 0.7, 64, PatternKind::kUniform, 65},
                      DualCase{8, 1.0, 128, PatternKind::kPermutation, 66}));

TEST(DualSwitch, GroupsStayBalancedUnderUniformLoad) {
  const DualSwitchConfig cfg = dual_cfg(4, 32);
  TrafficSpec spec;
  spec.load = 0.9;
  spec.seed = 71;
  DualTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(20000);
  // Occupancy stays within total capacity and drains to zero.
  EXPECT_LE(tb.dut().buffer_in_use(), 64u);
  ASSERT_TRUE(tb.drain(500000));
  EXPECT_EQ(tb.dut().buffer_in_use(), 0u);
}

TEST(DualSwitch, InvalidConfigThrows) {
  DualSwitchConfig cfg = dual_cfg(4);
  cfg.word_bits = 2;  // dest_bits (2) >= word_bits.
  EXPECT_THROW(DualPipelinedSwitch{cfg}, std::invalid_argument);
  cfg = dual_cfg(4);
  cfg.capacity_segments_per_group = 0;
  EXPECT_THROW(DualPipelinedSwitch{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace pmsb
