// Tests of the behavioural slot-time architecture models (section 2): known
// asymptotics (input-queueing saturation near 2-sqrt(2), optimal output
// utilization for output/shared/crosspoint), conservation, and ordering of
// the organizations by buffer efficiency.

#include <gtest/gtest.h>

#include <memory>

#include "arch/analytic.hpp"
#include "arch/block_crosspoint.hpp"
#include "arch/crosspoint.hpp"
#include "arch/input_queueing.hpp"
#include "arch/input_smoothing.hpp"
#include "arch/knockout.hpp"
#include "arch/output_queueing.hpp"
#include "arch/shared_buffer.hpp"
#include "arch/voq_pim.hpp"

namespace pmsb {
namespace {

double throughput_at_saturation(SlotModel& model, unsigned n, std::uint64_t seed,
                                Cycle slots = 60000) {
  UniformDest dests(n);
  SlotTraffic traffic(n, 1.0, &dests, Rng(seed));
  run_slot_sim(model, traffic, slots, slots / 5);
  return measured_throughput(model, slots);
}

TEST(InputQueueing, SaturatesNearKarolHluchyjLimit) {
  // [KaHM87]: 2 - sqrt(2) = 0.586 for large n; slightly higher for small n.
  const unsigned n = 32;
  InputQueueingFifo m(n, 0, Rng(1));
  const double thr = throughput_at_saturation(m, n, 2);
  EXPECT_NEAR(thr, 0.586, 0.015);
}

TEST(InputQueueing, SmallSwitchSaturatesHigher) {
  // n = 2 saturates at 0.75 under the same model.
  InputQueueingFifo m(2, 0, Rng(1));
  const double thr = throughput_at_saturation(m, 2, 3);
  EXPECT_NEAR(thr, 0.75, 0.02);
}

TEST(OutputQueueing, ReachesFullThroughput) {
  const unsigned n = 16;
  OutputQueueing m(n, 0);
  EXPECT_GT(throughput_at_saturation(m, n, 4), 0.97);
}

TEST(SharedBuffer, ReachesFullThroughput) {
  const unsigned n = 16;
  SharedBufferModel m(n, 0);
  EXPECT_GT(throughput_at_saturation(m, n, 5), 0.97);
}

TEST(Crosspoint, ReachesFullThroughput) {
  const unsigned n = 16;
  CrosspointQueueing m(n, 0);
  EXPECT_GT(throughput_at_saturation(m, n, 6), 0.97);
}

TEST(VoqPim, BeatsFifoInputQueueing) {
  const unsigned n = 16;
  VoqPim pim(n, 0, 4, Rng(11));
  InputQueueingFifo fifo(n, 0, Rng(12));
  const double thr_pim = throughput_at_saturation(pim, n, 13);
  const double thr_fifo = throughput_at_saturation(fifo, n, 14);
  EXPECT_GT(thr_pim, 0.9);
  EXPECT_GT(thr_pim, thr_fifo + 0.2);
}

TEST(VoqPim, MoreIterationsHelp) {
  const unsigned n = 16;
  VoqPim one(n, 0, 1, Rng(21));
  VoqPim four(n, 0, 4, Rng(21));
  const double t1 = throughput_at_saturation(one, n, 22, 30000);
  const double t4 = throughput_at_saturation(four, n, 22, 30000);
  EXPECT_GT(t4, t1 - 1e-9);
  // One PIM iteration converges to ~63% (1 - 1/e); four get close to 1.
  EXPECT_NEAR(t1, 0.63, 0.03);
  EXPECT_GT(t4, 0.9);
}

TEST(AllModels, ConservationHolds) {
  const unsigned n = 8;
  UniformDest dests(n);
  std::vector<std::unique_ptr<SlotModel>> models;
  models.push_back(std::make_unique<InputQueueingFifo>(n, 16, Rng(1)));
  models.push_back(std::make_unique<OutputQueueing>(n, 16));
  models.push_back(std::make_unique<SharedBufferModel>(n, 64));
  models.push_back(std::make_unique<CrosspointQueueing>(n, 4));
  models.push_back(std::make_unique<BlockCrosspoint>(n, 2, 32));
  models.push_back(std::make_unique<InputSmoothing>(n, 16, Rng(2)));
  models.push_back(std::make_unique<VoqPim>(n, 8, 4, Rng(3)));
  for (auto& m : models) {
    SlotTraffic traffic(n, 0.9, &dests, Rng(99));
    run_slot_sim(*m, traffic, 20000, 0);
    const FlowCounts& c = m->counts();
    EXPECT_EQ(c.injected, c.delivered + c.dropped + m->resident()) << m->kind();
    EXPECT_GT(c.delivered, 0u) << m->kind();
  }
}

TEST(BufferSizing, SharedNeedsLessThanOutputQueueing) {
  // The [HlKa88] ordering (section 2.2): for equal loss, shared buffering
  // needs fewer total cells than output queueing, which needs fewer than
  // input smoothing. Measured at 16x16, load 0.8.
  const unsigned n = 16;
  const double load = 0.8;
  const Cycle slots = 200000;

  auto loss_of = [&](SlotModel& m, std::uint64_t seed) {
    UniformDest dests(n);
    SlotTraffic traffic(n, load, &dests, Rng(seed));
    run_slot_sim(m, traffic, slots, 0);
    return m.counts().loss_ratio();
  };

  SharedBufferModel shared(n, 86);
  OutputQueueing output(n, 6);  // 96 cells total: still lossy per output.
  InputSmoothing smoothing(n, 6, Rng(54));
  const double loss_shared = loss_of(shared, 51);
  const double loss_output = loss_of(output, 52);
  const double loss_smooth = loss_of(smoothing, 53);
  // With ~86 cells shared the loss is near 1e-3; output queueing with 96
  // cells total is clearly worse; input smoothing with the same per-port
  // budget is worse still.
  EXPECT_LT(loss_shared, 5e-3);
  EXPECT_GT(loss_output, loss_shared);
  EXPECT_GT(loss_smooth, loss_output);
}

TEST(BlockCrosspoint, InterpolatesBetweenSharedAndCrosspoint) {
  // Same total buffer budget, varying the partition granularity: loss gets
  // worse as the pool is split more finely.
  const unsigned n = 8;
  const double load = 0.95;
  const Cycle slots = 100000;
  auto loss_with_groups = [&](unsigned g) {
    const std::size_t per_block = 64 / (g * g);  // 64 cells total.
    BlockCrosspoint m(n, g, per_block);
    UniformDest dests(n);
    SlotTraffic traffic(n, load, &dests, Rng(77));
    run_slot_sim(m, traffic, slots, 0);
    return m.counts().loss_ratio();
  };
  const double loss_g1 = loss_with_groups(1);  // Fully shared.
  const double loss_g2 = loss_with_groups(2);
  const double loss_g8 = loss_with_groups(8);  // Crosspoint-like.
  EXPECT_LE(loss_g1, loss_g2 + 1e-4);
  EXPECT_LT(loss_g2, loss_g8);
}

TEST(BlockCrosspoint, GroupsMustDividePorts) {
  EXPECT_DEATH(BlockCrosspoint(8, 3, 4), "divide");
}

TEST(InputSmoothing, LossyOnlyAboveFrameBudget) {
  // With a frame as large as the simulation is long, nothing is lost.
  const unsigned n = 4;
  InputSmoothing m(n, 512, Rng(5));
  UniformDest dests(n);
  SlotTraffic traffic(n, 0.5, &dests, Rng(6));
  run_slot_sim(m, traffic, 400, 0);
  EXPECT_EQ(m.counts().dropped, 0u);
}

TEST(Knockout, FullConcentrationEqualsOutputQueueing) {
  // L = n: no knockout, identical behaviour class to output queueing.
  const unsigned n = 8;
  KnockoutSwitch ko(n, n, 0, Rng(71));
  OutputQueueing oq(n, 0);
  UniformDest dests(n);
  SlotTraffic t1(n, 0.9, &dests, Rng(72));
  SlotTraffic t2(n, 0.9, &dests, Rng(72));
  run_slot_sim(ko, t1, 50000, 10000);
  run_slot_sim(oq, t2, 50000, 10000);
  EXPECT_EQ(ko.counts().dropped, 0u);
  EXPECT_NEAR(ko.latency().mean(), oq.latency().mean(), 0.05 + 0.05 * oq.latency().mean());
}

TEST(Knockout, LossMatchesYehHluchyjAcamporaFormula) {
  // Knockout loss at L < n matches the binomial-tail expectation; with
  // L = 8 at load 0.9 the loss is already ~1e-6 (the [YeHA87] design point
  // "L = 8 suffices for 1e-6"), so we test at smaller L where a simulation
  // can resolve it.
  const unsigned n = 16;
  const double rho = 0.9;
  for (unsigned l : {1u, 2u, 3u}) {
    KnockoutSwitch ko(n, l, 0, Rng(73 + l));
    UniformDest dests(n);
    SlotTraffic traffic(n, rho, &dests, Rng(74));
    run_slot_sim(ko, traffic, 300000, 0);
    const double measured =
        static_cast<double>(ko.knockout_losses()) / static_cast<double>(ko.counts().injected);
    const double expected = analytic::knockout_loss(n, l, rho);
    EXPECT_NEAR(measured, expected, 0.08 * expected + 1e-5) << "L = " << l;
  }
}

TEST(Knockout, ConcentrationLossIsLoadBoundedNotBufferBounded) {
  // The knockout loss does not vanish with bigger buffers -- it is a
  // property of the concentrator, unlike queueing loss.
  const unsigned n = 16;
  KnockoutSwitch small_buf(n, 2, 4, Rng(75));
  KnockoutSwitch big_buf(n, 2, 4096, Rng(75));
  UniformDest dests(n);
  SlotTraffic t1(n, 0.8, &dests, Rng(76));
  SlotTraffic t2(n, 0.8, &dests, Rng(76));
  run_slot_sim(small_buf, t1, 100000, 0);
  run_slot_sim(big_buf, t2, 100000, 0);
  EXPECT_GT(big_buf.knockout_losses(), 0u);
  EXPECT_NEAR(static_cast<double>(big_buf.knockout_losses()),
              static_cast<double>(small_buf.knockout_losses()),
              0.05 * static_cast<double>(small_buf.knockout_losses()));
  EXPECT_GE(small_buf.counts().dropped, big_buf.counts().dropped);
}

TEST(Analytic, OutputQueueingWaitMatchesKarolHluchyj) {
  // Measured mean latency of the output-queueing simulator vs the [KaHM87]
  // closed form W = ((n-1)/n) * rho / (2(1-rho)), across loads and sizes.
  for (unsigned n : {4u, 16u}) {
    for (double rho : {0.3, 0.6, 0.8}) {
      OutputQueueing m(n, 0);
      UniformDest dests(n);
      SlotTraffic traffic(n, rho, &dests, Rng(800 + n));
      const Cycle slots = 300000;
      run_slot_sim(m, traffic, slots, slots / 5);
      const double expected = analytic::output_queueing_mean_wait(n, rho);
      EXPECT_NEAR(m.latency().mean(), expected, 0.05 + 0.06 * expected)
          << "n=" << n << " rho=" << rho;
    }
  }
}

TEST(Analytic, InputQueueingApproachesTheLimit) {
  // Saturation at n = 64 should be within ~1.5% of 2 - sqrt(2).
  const unsigned n = 64;
  InputQueueingFifo m(n, 0, Rng(801));
  const double thr = throughput_at_saturation(m, n, 802, 40000);
  EXPECT_NEAR(thr, analytic::input_queueing_saturation_limit(), 0.01);
}

TEST(Analytic, PimOneIterationNearOneMinusInvE) {
  VoqPim one(16, 0, 1, Rng(803));
  const double thr = throughput_at_saturation(one, 16, 804, 40000);
  EXPECT_NEAR(thr, analytic::pim_one_iteration_limit(), 0.035);
}

TEST(LatencyOrdering, OutputQueueingBeatsVoqPimBeatsFifo) {
  // [AOST93 fig. 3] shape: at load 0.8, output queueing has the lowest
  // latency, PIM-scheduled VOQ is higher, FIFO input queueing is unstable.
  const unsigned n = 16;
  const double load = 0.8;
  const Cycle slots = 60000;

  auto mean_latency = [&](SlotModel& m, std::uint64_t seed) {
    UniformDest dests(n);
    SlotTraffic traffic(n, load, &dests, Rng(seed));
    run_slot_sim(m, traffic, slots, slots / 5);
    return m.latency().mean();
  };
  OutputQueueing oq(n, 0);
  VoqPim pim(n, 0, 4, Rng(31));
  const double lat_oq = mean_latency(oq, 32);
  const double lat_pim = mean_latency(pim, 32);
  EXPECT_GT(lat_pim, lat_oq);
}

}  // namespace
}  // namespace pmsb
