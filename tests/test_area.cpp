// Tests of the VLSI cost models against the paper's section 4/5 numbers.
// The full-custom technology is calibrated against exactly ONE anchor (the
// ~9 mm^2 Telegraphos III peripheral area); every other figure tested here
// is a genuine model output.

#include <gtest/gtest.h>

#include "area/models.hpp"

namespace pmsb::area {
namespace {

TEST(AreaAnchor, Telegraphos3PeripheralIsNineMm2) {
  const TechParams tech = full_custom_1um();
  const PeriphInventory t3 = pipelined_inventory(8, 16, 256);
  EXPECT_NEAR(peripheral_mm2(t3, tech), 9.0, 1e-6);  // Calibration identity.
}

TEST(AreaSec52, WidePeripheralNearThirteenMm2) {
  // Section 5.2: the wide-memory peripheral, adjusted to Telegraphos III
  // parameters, would be ~13 mm^2 -- about 30% more than pipelined.
  const TechParams tech = full_custom_1um();
  const PeriphInventory wide = wide_inventory(8, 16, 256);
  const double wide_mm2 = peripheral_mm2(wide, tech);
  EXPECT_NEAR(wide_mm2, 13.0, 1.5);
  EXPECT_GT(wide_mm2 / 9.0, 1.25);
  EXPECT_LT(wide_mm2 / 9.0, 1.65);
}

TEST(AreaSec53, PrizmaCrossbarsSixteenTimes) {
  // 2n = 16, M = 256 -> 16x (section 5.3).
  EXPECT_DOUBLE_EQ(prizma_crossbar_ratio(8, 256), 16.0);
  EXPECT_DOUBLE_EQ(prizma_crossbar_ratio(4, 64), 8.0);
}

TEST(AreaSec44, StdCellQuadraticGrowth) {
  EXPECT_DOUBLE_EQ(std_cell_periph_mm2(4), 41.0);
  EXPECT_DOUBLE_EQ(std_cell_periph_mm2(8), 164.0);
  // "an 8x8 standard-cell design would be about 18 times larger".
  EXPECT_NEAR(std_cell_periph_mm2(8) / 9.0, 18.0, 0.5);
}

TEST(AreaSec44, FactorTwentyTwo) {
  const FullCustomGain g = full_custom_gain();
  EXPECT_NEAR(g.combined(), 22.5, 0.01);  // 2 x 2.5 x 4.5.
}

TEST(AreaSec42, Telegraphos2FloorplanTotals) {
  const Telegraphos2Floorplan fp = telegraphos2_floorplan();
  EXPECT_DOUBLE_EQ(fp.total_mm2(), 31.5);  // 11 + 15 + 5.5 ("32 mm^2").
  EXPECT_LT(fp.total_mm2(), fp.chip_mm2);  // Fits with room for the rest.
}

TEST(AreaSec35, QuantumThroughputArithmetic) {
  // Section 3.5: 256-1024 bit buffers at 5 ns -> 50-200 Gb/s aggregate.
  EXPECT_NEAR(aggregate_gbps(256, 5.0), 51.2, 0.1);
  EXPECT_NEAR(aggregate_gbps(1024, 5.0), 204.8, 0.1);
}

TEST(AreaSec44, Telegraphos3LinkRate) {
  // 16 bits / 16 ns worst case = 1 Gb/s per link; 10 ns typical = 1.6.
  EXPECT_DOUBLE_EQ(per_link_gbps(8, 16, 16.0), 1.0);
  EXPECT_DOUBLE_EQ(per_link_gbps(8, 16, 10.0), 1.6);
  // Aggregate through the buffer: 16 stages x 16 bits / 16 ns = 16 Gb/s.
  EXPECT_DOUBLE_EQ(aggregate_gbps(16 * 16, 16.0), 16.0);
}

TEST(AreaSec51, SharedWinsWithSmallerHeight) {
  // Figure 9: equal widths; shared needs H_s < H_i, so with the measured
  // buffer requirements (e.g. [HlKa88] 5.4 vs 80 cells/port at equal loss)
  // the shared total is clearly smaller despite its second datapath block.
  const SharedVsInput r = shared_vs_input(16, 16, 80.0, 5.4);
  EXPECT_DOUBLE_EQ(r.width_cells, 512.0);
  EXPECT_GT(r.input_total, r.shared_total);
  // The fabric terms alone favour input buffering (one crossbar vs two).
  EXPECT_LT(r.input_fabric_area, r.shared_fabric_area);
}

TEST(AreaSec51, EqualHeightsMakeSharedSlightlyLarger) {
  // Sanity direction check: if H_s == H_i the extra datapath block makes the
  // shared buffer the larger one -- the paper's win comes from H_s < H_i.
  const SharedVsInput r = shared_vs_input(16, 16, 20.0, 20.0);
  EXPECT_GT(r.shared_total, r.input_total);
}

TEST(AreaInventory, PipelinedSmallerPeripheryThanWide) {
  for (unsigned n : {4u, 8u, 16u}) {
    const TechParams tech = full_custom_1um();
    const double pipe = peripheral_mm2(pipelined_inventory(n, 16, 256), tech);
    const double wide = peripheral_mm2(wide_inventory(n, 16, 256), tech);
    EXPECT_GT(wide, pipe) << "n = " << n;
  }
}

TEST(AreaInventory, TinySwitchIsTheExceptionWideWins) {
  // An honest model artifact worth pinning down: at n = 2 the decoded
  // word-line pipeline (S-1 stages x D flip-flops) dominates the datapath
  // savings, and the wide organization's single decoder is cheaper. The
  // paper's designs (n >= 4) are on the other side of the crossover.
  const TechParams tech = full_custom_1um();
  const double pipe = peripheral_mm2(pipelined_inventory(2, 16, 256), tech);
  const double wide = peripheral_mm2(wide_inventory(2, 16, 256), tech);
  EXPECT_LT(wide, pipe);
}

TEST(AreaInventory, StdCellPenaltyAppliesEverywhere) {
  const PeriphInventory inv = pipelined_inventory(4, 16, 256);
  const double fc = peripheral_mm2(inv, full_custom_1um());
  const double sc = peripheral_mm2(inv, std_cell_1um());
  EXPECT_NEAR(sc / fc, 4.5, 0.01);
}

TEST(AreaInventory, SramAreaScalesWithBits) {
  const TechParams tech = full_custom_1um();
  EXPECT_NEAR(sram_mm2(65536, tech), 36.0, 1e-9);
  EXPECT_NEAR(sram_mm2(2 * 65536, tech), 72.0, 1e-9);
}

}  // namespace
}  // namespace pmsb::area
