// Tests of the verification scoreboard itself: a checker that cannot detect
// corruption is worse than none, so every failure mode it claims to catch is
// exercised here by feeding it hand-crafted event sequences.

#include <gtest/gtest.h>

#include "core/scoreboard.hpp"

namespace pmsb {
namespace {

CellFormat fmt() { return CellFormat{16, 2, 8}; }

CellSource::Injection inj(std::uint64_t uid, unsigned in, unsigned dest, Cycle a0) {
  return CellSource::Injection{uid, in, dest, a0};
}

CellSink::Delivery del(std::uint64_t uid, unsigned dest, Cycle head) {
  return CellSink::Delivery{dest, make_cell_words(uid, dest, fmt()), head,
                            head + fmt().length_words - 1};
}

TEST(Scoreboard, CleanLifecyclePasses) {
  Scoreboard sb(4, 4, fmt());
  sb.on_inject(inj(1, 0, 2, 10));
  sb.on_accept(0, 10, 11);
  sb.on_deliver(del(1, 2, 13));
  EXPECT_TRUE(sb.ok());
  EXPECT_TRUE(sb.fully_drained());
  EXPECT_EQ(sb.latency().min(), 3u);  // 13 - 10.
}

TEST(Scoreboard, DetectsCorruptedPayload) {
  Scoreboard sb(4, 4, fmt());
  sb.on_inject(inj(1, 0, 2, 10));
  sb.on_accept(0, 10, 11);
  CellSink::Delivery d = del(1, 2, 13);
  d.words[5] ^= 1;  // Flip one bit of one word.
  sb.on_deliver(d);
  EXPECT_FALSE(sb.ok());
  EXPECT_NE(sb.errors().front().find("matches no head-of-line"), std::string::npos);
}

TEST(Scoreboard, DetectsPerPairReordering) {
  Scoreboard sb(4, 4, fmt());
  sb.on_inject(inj(1, 0, 2, 10));
  sb.on_inject(inj(2, 0, 2, 18));
  sb.on_accept(0, 10, 11);
  sb.on_accept(0, 18, 19);
  // Cell 2 overtakes cell 1 within the same (input, output) pair.
  sb.on_deliver(del(2, 2, 21));
  EXPECT_FALSE(sb.ok());
}

TEST(Scoreboard, AllowsCrossInputInterleaving) {
  // Cells from different inputs to one output may be served in any order.
  Scoreboard sb(4, 4, fmt());
  sb.on_inject(inj(1, 0, 3, 10));
  sb.on_inject(inj(2, 1, 3, 10));
  sb.on_accept(0, 10, 11);
  sb.on_accept(1, 10, 12);
  sb.on_deliver(del(2, 3, 14));  // Input 1's cell first: fine.
  sb.on_deliver(del(1, 3, 22));
  EXPECT_TRUE(sb.ok());
  EXPECT_TRUE(sb.fully_drained());
}

TEST(Scoreboard, DetectsMisroutedCell) {
  Scoreboard sb(4, 4, fmt());
  sb.on_inject(inj(1, 0, 2, 10));
  sb.on_accept(0, 10, 11);
  // The cell appears on output 3 instead of 2: no in-flight record matches.
  sb.on_deliver(CellSink::Delivery{3, make_cell_words(1, 2, fmt()), 13, 20});
  EXPECT_FALSE(sb.ok());
}

TEST(Scoreboard, DetectsPhantomDelivery) {
  Scoreboard sb(4, 4, fmt());
  sb.on_deliver(del(9, 1, 5));  // Nothing was ever injected.
  EXPECT_FALSE(sb.ok());
}

TEST(Scoreboard, DetectsAcceptWithoutInjection) {
  Scoreboard sb(4, 4, fmt());
  sb.on_accept(2, 10, 11);
  EXPECT_FALSE(sb.ok());
  EXPECT_NE(sb.errors().front().find("no cell awaiting"), std::string::npos);
}

TEST(Scoreboard, DetectsAcceptCycleMismatch) {
  Scoreboard sb(4, 4, fmt());
  sb.on_inject(inj(1, 0, 2, 10));
  sb.on_accept(0, 12, 13);  // Claims the head arrived at 12, not 10.
  EXPECT_FALSE(sb.ok());
  EXPECT_NE(sb.errors().front().find("accept event cycle mismatch"), std::string::npos);
  EXPECT_NE(sb.errors().front().find("expected a0=10"), std::string::npos);
}

TEST(Scoreboard, DetectsGrantBeforeArrival) {
  Scoreboard sb(4, 4, fmt());
  sb.on_inject(inj(1, 0, 2, 10));
  sb.on_accept(0, 10, 10);  // t0 must be strictly after a0.
  EXPECT_FALSE(sb.ok());
  EXPECT_NE(sb.errors().front().find("before the head word was latched"),
            std::string::npos);
}

TEST(Scoreboard, DetectsOutOfRangeInjection) {
  Scoreboard sb(4, 4, fmt());
  sb.on_inject(inj(1, 7, 2, 10));  // Input 7 on a 4x4 scoreboard.
  EXPECT_FALSE(sb.ok());
  EXPECT_NE(sb.errors().front().find("injection with out-of-range ports"),
            std::string::npos);
  sb.on_inject(inj(2, 0, 9, 12));  // Destination 9.
  EXPECT_EQ(sb.errors().size(), 2u);
}

TEST(Scoreboard, DetectsAcceptOnOutOfRangeInput) {
  Scoreboard sb(4, 4, fmt());
  sb.on_inject(inj(1, 0, 2, 10));
  sb.on_accept(17, 10, 11);  // Input index past n_in: same guard as empty queue.
  EXPECT_FALSE(sb.ok());
  EXPECT_NE(sb.errors().front().find("accept event with no cell awaiting a decision"),
            std::string::npos);
}

TEST(Scoreboard, DetectsDropWithoutInjection) {
  Scoreboard sb(4, 4, fmt());
  sb.on_drop(1, 10, DropReason::kNoAddress);
  EXPECT_FALSE(sb.ok());
  EXPECT_NE(sb.errors().front().find("drop event with no cell awaiting a decision"),
            std::string::npos);
}

TEST(Scoreboard, DetectsDropCycleMismatch) {
  Scoreboard sb(4, 4, fmt());
  sb.on_inject(inj(1, 0, 2, 10));
  sb.on_drop(0, 14, DropReason::kOutputLimit);  // Head arrived at 10, not 14.
  EXPECT_FALSE(sb.ok());
  EXPECT_NE(sb.errors().front().find("drop event cycle mismatch"), std::string::npos);
}

TEST(Scoreboard, DetectsDeliveryOnOutOfRangeOutput) {
  Scoreboard sb(4, 4, fmt());
  sb.on_inject(inj(1, 0, 2, 10));
  sb.on_accept(0, 10, 11);
  sb.on_deliver(CellSink::Delivery{11, make_cell_words(1, 2, fmt()), 13, 20});
  EXPECT_FALSE(sb.ok());
  EXPECT_NE(sb.errors().front().find("delivery on out-of-range output"),
            std::string::npos);
}

TEST(Scoreboard, DropsResolveInArrivalOrder) {
  Scoreboard sb(4, 4, fmt());
  sb.on_inject(inj(1, 0, 2, 10));
  sb.on_inject(inj(2, 0, 3, 18));
  sb.on_drop(0, 10, DropReason::kNoAddress);
  sb.on_accept(0, 18, 19);
  sb.on_deliver(del(2, 3, 21));
  EXPECT_TRUE(sb.ok());
  EXPECT_TRUE(sb.fully_drained());
  EXPECT_EQ(sb.dropped(), 1u);
  EXPECT_EQ(sb.delivered(), 1u);
}

TEST(Scoreboard, FullyDrainedFalseWhileOutstanding) {
  Scoreboard sb(4, 4, fmt());
  sb.on_inject(inj(1, 0, 2, 10));
  EXPECT_FALSE(sb.fully_drained());  // Awaiting accept/drop.
  sb.on_accept(0, 10, 11);
  EXPECT_FALSE(sb.fully_drained());  // In flight.
  sb.on_deliver(del(1, 2, 13));
  EXPECT_TRUE(sb.fully_drained());
}

TEST(Scoreboard, InputWireDelayShiftsArrivalChecks) {
  Scoreboard sb(4, 4, fmt());
  sb.set_input_wire_delay(3);
  sb.on_inject(inj(1, 0, 2, 10));
  sb.on_accept(0, 13, 14);  // Head reached the switch 3 cycles later: OK.
  sb.on_deliver(del(1, 2, 16));
  EXPECT_TRUE(sb.ok()) << sb.errors().front();
}

TEST(Scoreboard, WrongLengthDeliveryFlagged) {
  Scoreboard sb(4, 4, fmt());
  sb.on_inject(inj(1, 0, 2, 10));
  sb.on_accept(0, 10, 11);
  CellSink::Delivery d = del(1, 2, 13);
  d.words.pop_back();
  sb.on_deliver(d);
  EXPECT_FALSE(sb.ok());
  EXPECT_NE(sb.errors().front().find("wrong length"), std::string::npos);
}

}  // namespace
}  // namespace pmsb
