// Tests of the verification subsystem itself (src/check/): the invariant
// checker on clean and deliberately broken switches, the differential
// harness, the failure minimizer, and .repro.json round-tripping -- the
// full detect -> minimize -> write -> replay loop the fuzzer automates.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "check/differential.hpp"
#include "check/invariants.hpp"
#include "check/minimize.hpp"
#include "check/repro.hpp"
#include "core/testbench.hpp"

namespace pmsb {
namespace {

// ---------------------------------------------------------------------------
// InvariantChecker on live switches
// ---------------------------------------------------------------------------

TEST(InvariantChecker, CleanPipelinedRunHasNoViolations) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.cell_words = 8;
  cfg.capacity_segments = 32;
  TrafficSpec spec;
  spec.load = 0.8;
  spec.seed = 7;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  check::InvariantChecker& checker = tb.attach_checker();
  tb.run(4000);
  EXPECT_TRUE(tb.drain());
  EXPECT_TRUE(checker.ok()) << checker.violations().front().message;
  EXPECT_TRUE(tb.scoreboard().ok());
  EXPECT_GT(tb.delivered(), 0u);
}

TEST(InvariantChecker, CleanMultiSegmentRunHasNoViolations) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.cell_words = 16;  // m = 2 segments per cell.
  cfg.capacity_segments = 32;
  TrafficSpec spec;
  spec.load = 0.9;
  spec.pattern = PatternKind::kHotspot;
  spec.seed = 11;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  check::InvariantChecker& checker = tb.attach_checker();
  tb.run(4000);
  tb.drain();
  EXPECT_TRUE(checker.ok()) << checker.violations().front().message;
}

TEST(InvariantChecker, CleanDualRunHasNoViolations) {
  DualSwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.capacity_segments_per_group = 16;
  TrafficSpec spec;
  spec.load = 0.9;
  spec.seed = 3;
  Testbench<DualPipelinedSwitch, DualSwitchConfig> tb(cfg, cfg.n_ports, cfg.cell_format(),
                                                      spec);
  check::InvariantChecker& checker = tb.attach_checker();
  tb.run(4000);
  tb.drain();
  EXPECT_TRUE(checker.ok()) << checker.violations().front().message;
  EXPECT_TRUE(tb.scoreboard().ok());
}

// Satellite S1: the paper's write-window guarantee implies kNoSlot can never
// fire for single-segment cells (reads occupy at most n of the 2n window
// slots, so the round-robin write arbiter always finds a slot before the
// deadline). Saturate a single-segment switch and assert the counter stays
// zero -- the checker turns any such drop into a violation as well.
TEST(InvariantChecker, SingleSegmentNeverDropsForSlotStarvation) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.cell_words = 8;
  cfg.capacity_segments = 8;  // Tiny buffer: plenty of kNoAddress drops.
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.pattern = PatternKind::kHotspot;
  spec.hot_fraction = 0.9;
  spec.seed = 13;
  spec.load = 1.0;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  check::InvariantChecker& checker = tb.attach_checker();
  tb.run(6000);
  tb.drain();
  EXPECT_TRUE(checker.ok()) << checker.violations().front().message;
  EXPECT_EQ(tb.dut().stats().dropped_no_slot, 0u);
  EXPECT_GT(tb.dut().stats().dropped(), 0u);  // The buffer did overflow.
}

TEST(InvariantChecker, FaultedArbiterIsCaught) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.cell_words = 8;
  cfg.capacity_segments = 64;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.load = 1.0;
  spec.seed = 5;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  FaultPlan fault;
  fault.suppress_write_grant_period = 2;  // Drop every 2nd eligible write grant.
  tb.dut().set_fault_plan(fault);
  check::InvariantChecker& checker = tb.attach_checker();
  obs::MetricsRegistry metrics;
  checker.register_metrics(metrics);
  tb.run(2000);
  tb.drain();
  EXPECT_FALSE(checker.ok());
  // Starved single-segment cells die as kNoSlot, which the checker flags.
  EXPECT_GT(checker.count(check::Invariant::kDropReason), 0u);
  const obs::Counter* c = metrics.find_counter("check.violations.drop_reason");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), checker.count(check::Invariant::kDropReason));
  EXPECT_FALSE(checker.violations().empty());
  EXPECT_NE(checker.violations().front().message.find("write-window"), std::string::npos);
}

TEST(InvariantChecker, ViolationsLandInTraceBuffer) {
  SwitchConfig cfg;
  cfg.n_ports = 2;
  cfg.cell_words = 4;
  cfg.capacity_segments = 16;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.load = 1.0;
  spec.seed = 9;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  FaultPlan fault;
  fault.suppress_write_grant_period = 2;
  tb.dut().set_fault_plan(fault);
  check::InvariantChecker& checker = tb.attach_checker();
  obs::TraceBuffer trace(256);
  checker.set_trace(&trace);
  tb.run(1500);
  tb.drain();
  ASSERT_FALSE(checker.ok());
  unsigned violation_records = 0;
  trace.for_each([&](const obs::TraceRecord& r) {
    if (r.event == obs::TraceEvent::kViolation) ++violation_records;
  });
  EXPECT_GT(violation_records, 0u);
}

// ---------------------------------------------------------------------------
// Differential harness
// ---------------------------------------------------------------------------

TEST(Differential, CleanSpecPasses) {
  check::FuzzSpec spec;
  spec.n = 4;
  spec.capacity_cells = 16;
  spec.load = 0.7;
  spec.slots = 80;
  spec.seed = 42;
  const check::RunOutcome out = check::run(spec);
  EXPECT_TRUE(out.ok) << out.issues.front();
  ASSERT_EQ(out.summaries.size(), 5u);
  EXPECT_GT(out.summaries[0].injected, 0u);
  // All models saw the identical schedule.
  for (const auto& s : out.summaries) {
    EXPECT_EQ(s.injected, out.summaries[0].injected) << s.model;
  }
  // The behavioural fast model rides in every differential run.
  bool has_fast = false;
  for (const auto& s : out.summaries) has_fast |= s.model == "fast";
  EXPECT_TRUE(has_fast);
}

// The fast model's delivery semantics are pinned against the cycle-accurate
// switch by the harness itself; this spot-checks that a drop-free clean run
// delivers everything through the fast model too.
TEST(Differential, FastModelMatchesOnDropFreeRun) {
  check::FuzzSpec spec;
  spec.n = 4;
  spec.capacity_cells = 64;  // Ample: no drops anywhere.
  spec.load = 0.4;
  spec.slots = 100;
  spec.seed = 5;
  const check::RunOutcome out = check::run(spec);
  EXPECT_TRUE(out.ok) << out.issues.front();
  for (const auto& s : out.summaries) {
    if (s.model != "fast") continue;
    EXPECT_GT(s.injected, 0u);
    EXPECT_EQ(s.delivered, s.injected);
    EXPECT_EQ(s.dropped, 0u);
  }
}

TEST(Differential, MultiSegmentAndHalfQuantumSpecPasses) {
  check::FuzzSpec spec;
  spec.n = 4;
  spec.segments = 2;
  spec.capacity_cells = 8;
  spec.load = 0.9;
  spec.pattern = 2;  // Hotspot: drops on at least some models.
  spec.slots = 60;
  spec.seed = 17;
  const check::RunOutcome out = check::run(spec);
  EXPECT_TRUE(out.ok) << out.issues.front();
}

TEST(Differential, InjectedFaultFails) {
  check::FuzzSpec spec;
  spec.n = 4;
  spec.capacity_cells = 32;
  spec.load = 0.9;
  spec.slots = 80;
  spec.seed = 23;
  spec.fault_suppress_write_period = 2;
  const check::RunOutcome out = check::run(spec);
  EXPECT_FALSE(out.ok);
  ASSERT_FALSE(out.issues.empty());
  EXPECT_EQ(check::issue_category(out.issues.front()), "invariant");
}

// ---------------------------------------------------------------------------
// Minimizer + repro round trip: the acceptance-criteria demo. An injected
// arbiter bug is caught, shrunk, serialized, parsed back, and replayed to
// the same failure category.
// ---------------------------------------------------------------------------

TEST(Minimizer, ShrinksAndReplaysInjectedBug) {
  check::FuzzSpec spec;
  spec.n = 4;
  spec.capacity_cells = 16;
  spec.load = 0.8;
  spec.slots = 60;
  spec.seed = 29;
  spec.fault_suppress_write_period = 3;

  const auto cells = check::generate_cells(spec);
  const check::RunOutcome out = check::run(spec, cells);
  ASSERT_FALSE(out.ok);

  check::MinimizeStats mstats;
  const check::Repro repro = check::minimize(spec, cells, out, 200, &mstats);
  EXPECT_LT(repro.cells.size(), cells.size());  // It actually shrank.
  EXPECT_EQ(repro.category, check::issue_category(out.issues.front()));

  // Serialize -> parse -> identical spec and schedule.
  const std::string doc = check::to_json(repro);
  check::Repro parsed;
  std::string err;
  ASSERT_TRUE(check::parse_repro(doc, &parsed, &err)) << err;
  EXPECT_EQ(parsed.spec.n, repro.spec.n);
  EXPECT_EQ(parsed.spec.capacity_cells, repro.spec.capacity_cells);
  EXPECT_EQ(parsed.spec.fault_suppress_write_period, 3u);
  ASSERT_EQ(parsed.cells.size(), repro.cells.size());
  for (std::size_t i = 0; i < parsed.cells.size(); ++i) {
    EXPECT_EQ(parsed.cells[i].input, repro.cells[i].input);
    EXPECT_EQ(parsed.cells[i].slot, repro.cells[i].slot);
    EXPECT_EQ(parsed.cells[i].dest, repro.cells[i].dest);
  }

  // Replay reproduces the same failure category.
  const check::ReplayResult res = check::replay(parsed);
  EXPECT_TRUE(res.reproduced);
  EXPECT_FALSE(res.outcome.ok);
  EXPECT_EQ(check::issue_category(res.outcome.issues.front()), repro.category);
}

TEST(Repro, FileRoundTrip) {
  check::Repro r;
  r.spec.n = 2;
  r.spec.slots = 4;
  r.category = "diff";
  r.first_issue = "diff: something with \"quotes\" and\nnewlines";
  r.cells = {{0, 0, 1}, {1, 0, 0}, {0, 2, 0}};
  const std::string path = testing::TempDir() + "pmsb_roundtrip.repro.json";
  std::string err;
  ASSERT_TRUE(check::write_repro_file(r, path, &err)) << err;
  check::Repro back;
  ASSERT_TRUE(check::read_repro_file(path, &back, &err)) << err;
  EXPECT_EQ(back.category, "diff");
  EXPECT_EQ(back.first_issue, r.first_issue);
  ASSERT_EQ(back.cells.size(), 3u);
  EXPECT_EQ(back.cells[2].slot, 2u);
  std::remove(path.c_str());
}

TEST(Repro, RejectsMalformedDocuments) {
  check::Repro r;
  std::string err;
  EXPECT_FALSE(check::parse_repro("", &r, &err));
  EXPECT_FALSE(check::parse_repro("{", &r, &err));
  EXPECT_FALSE(check::parse_repro("[1,2,3]", &r, &err));
  EXPECT_FALSE(check::parse_repro(R"({"pmsb_repro":2,"spec":{},"cells":[]})", &r, &err));
  // Cells out of range for the spec.
  EXPECT_FALSE(check::parse_repro(
      R"({"pmsb_repro":1,"spec":{"n":2,"segments":1,"capacity_cells":4,)"
      R"("out_queue_limit":0,"cut_through":true,"pattern":0,"load":0.5,)"
      R"("hot_fraction":0.5,"slots":4,"seed":1,"fault_suppress_write_period":0},)"
      R"("cells":[[5,0,0]]})",
      &r, &err));
  EXPECT_NE(err.find("out of range"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Satellite S2: config validation
// ---------------------------------------------------------------------------

TEST(ConfigValidation, RejectsHalfQuantumCellsWithPointerToDual) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.cell_words = 4;  // n words = half quantum: needs DualPipelinedSwitch.
  cfg.capacity_segments = 16;
  try {
    cfg.validate();
    FAIL() << "half-quantum cell_words must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("DualPipelinedSwitch"), std::string::npos);
  }
}

TEST(ConfigValidation, RejectsNonDividingCellWords) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.cell_words = 12;  // Neither multiple nor divisor of 2n = 8.
  cfg.capacity_segments = 16;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigValidation, RejectsOutQueueLimitBeyondCapacity) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.cell_words = 8;
  cfg.capacity_segments = 16;  // 16 cells.
  cfg.out_queue_limit = 17;
  try {
    cfg.validate();
    FAIL() << "out_queue_limit > capacity_cells must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("out_queue_limit"), std::string::npos);
  }
  cfg.out_queue_limit = 16;  // Exactly the capacity: legal.
  EXPECT_NO_THROW(cfg.validate());
}

}  // namespace
}  // namespace pmsb
